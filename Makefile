# Developer entry points. `make check` is the verification gate run before
# every commit: build + vet + race-enabled tests + the doc lints.

GO ?= go

.PHONY: check build vet test lint bench golden

check:
	./check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# lint fails if an exported identifier in internal/trace,
# internal/faults, or internal/spans lacks a doc comment — the trace
# schema, the fault models, and the span analysis are documented
# contracts (docs/OBSERVABILITY.md, docs/RESILIENCE.md).
lint:
	$(GO) test ./internal/trace ./internal/faults ./internal/spans -run TestExportedIdentifiersHaveDocComments -count=1

# bench runs the paper-exhibit benchmarks at reduced scale.
bench:
	$(GO) test -bench=. -benchmem

# golden regenerates the byte-stable JSONL trace golden files (healthy
# and degraded) after an intentional schema change (update
# docs/OBSERVABILITY.md / docs/RESILIENCE.md alongside).
golden:
	UPDATE_GOLDEN=1 $(GO) test ./internal/tapesys -run Golden -count=1
