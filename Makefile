# Developer entry points. `make check` is the verification gate run before
# every commit: build + vet + race-enabled tests + the trace-schema doc lint.

GO ?= go

.PHONY: check build vet test lint bench golden

check:
	./check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# lint fails if an exported identifier in internal/trace lacks a doc
# comment — the trace schema is a documented contract (docs/OBSERVABILITY.md).
lint:
	$(GO) test ./internal/trace -run TestExportedIdentifiersHaveDocComments -count=1

# bench runs the paper-exhibit benchmarks at reduced scale.
bench:
	$(GO) test -bench=. -benchmem

# golden regenerates the byte-stable JSONL trace golden file after an
# intentional schema change (update docs/OBSERVABILITY.md alongside).
golden:
	UPDATE_GOLDEN=1 $(GO) test ./internal/tapesys -run Golden -count=1
