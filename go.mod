module paralleltape

go 1.22
