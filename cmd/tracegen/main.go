// Command tracegen synthesizes a workload per the paper's §6 settings and
// writes it as a JSON trace consumable by tapesim -workload and by the
// library's model.ReadJSON.
//
// Example:
//
//	tracegen -objects 30000 -predefined 300 -alpha 0.3 -o workload.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paralleltape"
	"paralleltape/internal/metrics"
	"paralleltape/internal/model"
	"paralleltape/internal/units"
)

func main() {
	var (
		objects   = flag.Int("objects", 30000, "object population")
		requests  = flag.Int("predefined", 300, "predefined request count")
		alpha     = flag.Float64("alpha", 0.3, "Zipf request popularity skew")
		minObj    = flag.String("min-object", "256MB", "minimum object size")
		maxObj    = flag.String("max-object", "16GB", "maximum object size")
		objShape  = flag.Float64("object-shape", 1.1, "object size power-law shape")
		minLen    = flag.Int("min-request-len", 100, "minimum objects per request")
		maxLen    = flag.Int("max-request-len", 150, "maximum objects per request")
		lenShape  = flag.Float64("request-len-shape", 1.0, "request length power-law shape")
		target    = flag.String("request-size", "", "rescale to this mean request size (e.g. 213GB)")
		seed      = flag.Uint64("seed", 20060815, "random seed")
		outPath   = flag.String("o", "", "output file (default stdout)")
		statsOnly = flag.Bool("stats", false, "print workload statistics instead of the trace")
		analyze   = flag.Bool("analyze", false, "print distribution histograms instead of the trace")
	)
	flag.Parse()

	if err := run(*objects, *requests, *alpha, *minObj, *maxObj, *objShape,
		*minLen, *maxLen, *lenShape, *target, *seed, *outPath, *statsOnly, *analyze); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(objects, requests int, alpha float64, minObj, maxObj string, objShape float64,
	minLen, maxLen int, lenShape float64, target string, seed uint64,
	outPath string, statsOnly, analyze bool) error {

	p := paralleltape.DefaultWorkloadParams()
	p.NumObjects = objects
	p.NumRequests = requests
	p.Alpha = alpha
	p.ObjShape = objShape
	p.MinReqLen = minLen
	p.MaxReqLen = maxLen
	p.ReqLenShape = lenShape
	var err error
	if p.MinObjSize, err = units.ParseBytes(minObj); err != nil {
		return err
	}
	if p.MaxObjSize, err = units.ParseBytes(maxObj); err != nil {
		return err
	}

	w, err := paralleltape.GenerateWorkload(p, seed)
	if err != nil {
		return err
	}
	if target != "" {
		t, err := units.ParseBytes(target)
		if err != nil {
			return err
		}
		if _, err := paralleltape.TargetMeanRequestBytes(w, float64(t)); err != nil {
			return err
		}
	}

	if analyze {
		return writeAnalysis(os.Stdout, w)
	}
	if statsOnly {
		s := w.ComputeStats()
		fmt.Printf("objects            %d\n", s.NumObjects)
		fmt.Printf("requests           %d\n", s.NumRequests)
		fmt.Printf("total data         %s\n", units.FormatBytesSI(s.TotalBytes))
		fmt.Printf("object size        %s .. %s (mean %s)\n",
			units.FormatBytesSI(s.MinObjectSize), units.FormatBytesSI(s.MaxObjectSize),
			units.FormatBytesSI(int64(s.MeanObjectSize)))
		fmt.Printf("request length     %d .. %d (mean %.1f)\n",
			s.MinRequestLen, s.MaxRequestLen, s.MeanRequestLen)
		fmt.Printf("mean request size  %s\n", units.FormatBytesSI(int64(s.MeanRequestBytes)))
		fmt.Printf("referenced objects %d\n", s.DistinctReferenced)
		return nil
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return w.WriteJSON(out)
}

// writeAnalysis prints distribution histograms: object sizes (log2 GB
// buckets would hide the power law, so linear GB bins with overflow),
// request sizes, request popularity by rank, and per-object request
// multiplicity.
func writeAnalysis(out io.Writer, w *model.Workload) error {
	stats := w.ComputeStats()
	fmt.Fprintf(out, "objects %d, requests %d, total %s, mean request %s\n\n",
		stats.NumObjects, stats.NumRequests, units.FormatBytesSI(stats.TotalBytes),
		units.FormatBytesSI(int64(stats.MeanRequestBytes)))

	fmt.Fprintln(out, "object size distribution (GB):")
	hObj := metrics.NewHistogram(0, float64(stats.MaxObjectSize)/1e9+1e-9, 12)
	for _, o := range w.Objects {
		hObj.Add(float64(o.Size) / 1e9)
	}
	if err := hObj.Render(out, 40, "%.2f"); err != nil {
		return err
	}

	fmt.Fprintln(out, "\nrequest size distribution (GB):")
	maxReq := 0.0
	sizes := make([]float64, 0, len(w.Requests))
	for i := range w.Requests {
		s := float64(w.RequestBytes(&w.Requests[i])) / 1e9
		sizes = append(sizes, s)
		if s > maxReq {
			maxReq = s
		}
	}
	hReq := metrics.NewHistogram(0, maxReq+1e-9, 10)
	for _, s := range sizes {
		hReq.Add(s)
	}
	if err := hReq.Render(out, 40, "%.0f"); err != nil {
		return err
	}

	fmt.Fprintln(out, "\nrequests sharing an object (multiplicity):")
	counts := make([]int, len(w.Objects))
	for i := range w.Requests {
		for _, id := range w.Requests[i].Objects {
			counts[id]++
		}
	}
	maxMult := 0
	for _, c := range counts {
		if c > maxMult {
			maxMult = c
		}
	}
	hMult := metrics.NewHistogram(0, float64(maxMult)+1, maxMult+1)
	for _, c := range counts {
		hMult.Add(float64(c))
	}
	if err := hMult.Render(out, 40, "%.0f"); err != nil {
		return err
	}

	fmt.Fprintln(out, "\nrequest popularity by rank (top 10):")
	labels := make([]string, 0, 10)
	values := make([]float64, 0, 10)
	for i := 0; i < len(w.Requests) && i < 10; i++ {
		labels = append(labels, fmt.Sprintf("rank %d", i+1))
		values = append(values, w.Requests[i].Prob*100)
	}
	return metrics.BarChart(out, "", labels, values, 40)
}
