package main

import (
	"os"
	"path/filepath"
	"testing"

	"paralleltape/internal/model"
)

func TestGenerateTraceFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.json")
	err := run(300, 15, 0.3, "64MB", "512MB", 1.1, 5, 10, 1.0, "2GB", 7, out, false, false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := model.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumObjects() != 300 || w.NumRequests() != 15 {
		t.Errorf("counts: %d/%d", w.NumObjects(), w.NumRequests())
	}
	mean := w.MeanRequestBytes()
	if mean < 1.9e9 || mean > 2.1e9 {
		t.Errorf("mean request bytes = %v, want ≈2GB", mean)
	}
}

func TestAnalyzeMode(t *testing.T) {
	if err := run(200, 10, 0.3, "64MB", "256MB", 1.1, 4, 8, 1.0, "", 7, "", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestStatsMode(t *testing.T) {
	if err := run(200, 10, 0.3, "64MB", "256MB", 1.1, 4, 8, 1.0, "", 7, "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestBadInputs(t *testing.T) {
	if err := run(200, 10, 0.3, "junk", "256MB", 1.1, 4, 8, 1.0, "", 7, "", true, false); err == nil {
		t.Error("bad min size accepted")
	}
	if err := run(200, 10, 0.3, "64MB", "junk", 1.1, 4, 8, 1.0, "", 7, "", true, false); err == nil {
		t.Error("bad max size accepted")
	}
	if err := run(200, 10, 0.3, "64MB", "256MB", 1.1, 4, 8, 1.0, "bogus", 7, "", true, false); err == nil {
		t.Error("bad target accepted")
	}
	if err := run(0, 10, 0.3, "64MB", "256MB", 1.1, 4, 8, 1.0, "", 7, "", true, false); err == nil {
		t.Error("zero objects accepted")
	}
}
