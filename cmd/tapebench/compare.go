package main

// The -compare mode is the repo's performance regression gate: it diffs two
// bench-result documents (schema tapebench/bench-result/v1, typically a
// committed BENCH_NNNN.json baseline against a fresh -quick -json run),
// prints a benchstat-style table, and exits non-zero when the new run
// regresses. The gate is asymmetric by design:
//
//   - ns/op is compared against a percentage tolerance (wall time is noisy,
//     especially on shared CI runners);
//   - allocs/op is near-exact: allocation counts are deterministic except
//     for map overflow buckets, whose number depends on the per-process
//     random map hash seed. A 0.1% slack (rounded down, so zero-alloc and
//     low-alloc benchmarks stay exact) absorbs that jitter; any larger
//     increase is a real regression;
//   - bandwidth_mbps_by_scheme must match bit-for-bit: the perf work's
//     contract is that simulation results stay byte-identical, and Go's
//     float64 JSON encoding round-trips exactly.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// allocSlackPct is the allowed allocs/op growth in percent of the baseline,
// rounded down to whole allocations — 0.1% covers map hash-seed jitter
// (±2 on ~50k allocs) while staying exactly zero for allocation-free paths.
const allocSlackPct = 0.1

// readBenchResult loads and schema-checks one bench-result document.
func readBenchResult(path string) (*benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchResult
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != benchResultSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, benchResultSchema)
	}
	return &doc, nil
}

// tolerances carries the -compare gate's ns/op thresholds. Placement
// benchmarks get their own: they run a fixed iteration count (see
// setBenchtime) rather than the adaptive 1s window, so their noise profile
// differs from the simulation microbenchmarks and the gate can hold them
// tighter or looser independently.
type tolerances struct {
	nsPct          float64 // ns/op growth allowed for most benchmarks
	placementNsPct float64 // ns/op growth allowed for placement-* benchmarks
}

// nsFor returns the ns/op tolerance applying to one benchmark name.
func (t tolerances) nsFor(name string) float64 {
	if strings.HasPrefix(name, "placement-") {
		return t.placementNsPct
	}
	return t.nsPct
}

// runCompare diffs baseline oldPath against candidate newPath and returns
// the process exit code: 0 clean, 1 regression found.
func runCompare(w io.Writer, oldPath, newPath string, tol tolerances) (int, error) {
	oldDoc, err := readBenchResult(oldPath)
	if err != nil {
		return 0, err
	}
	newDoc, err := readBenchResult(newPath)
	if err != nil {
		return 0, err
	}
	failures := compareBenchResults(w, oldDoc, newDoc, tol)
	if len(failures) > 0 {
		fmt.Fprintf(w, "\nREGRESSIONS (%d):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(w, "  %s\n", f)
		}
		return 1, nil
	}
	fmt.Fprintln(w, "\nno regressions")
	return 0, nil
}

// compareBenchResults prints the comparison table and returns the list of
// regression descriptions (empty = gate passes).
func compareBenchResults(w io.Writer, oldDoc, newDoc *benchResult, tol tolerances) []string {
	var failures []string
	fmt.Fprintf(w, "baseline: commit %s (%s)\n", oldDoc.Commit, oldDoc.GoVersion)
	fmt.Fprintf(w, "new:      commit %s (%s)\n", newDoc.Commit, newDoc.GoVersion)
	fmt.Fprintf(w, "tolerance: ns/op ±%.0f%% (placement-* ±%.0f%%), allocs/op ±%.1f%% (map hash-seed jitter), bandwidth exact\n\n",
		tol.nsPct, tol.placementNsPct, allocSlackPct)

	newByName := make(map[string]benchMeasurement, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		newByName[b.Name] = b
	}
	oldNames := make(map[string]bool, len(oldDoc.Benchmarks))

	fmt.Fprintf(w, "%-28s %14s %14s %8s %10s %10s %7s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, ob := range oldDoc.Benchmarks {
		oldNames[ob.Name] = true
		nb, ok := newByName[ob.Name]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("benchmark %q missing from new document (gate cannot weaken silently)", ob.Name))
			fmt.Fprintf(w, "%-28s %14.0f %14s\n", ob.Name, ob.NsPerOp, "MISSING")
			continue
		}
		nsDelta := 0.0
		if ob.NsPerOp > 0 {
			nsDelta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		allocDelta := nb.AllocsPerOp - ob.AllocsPerOp
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%% %10d %10d %+7d\n",
			ob.Name, ob.NsPerOp, nb.NsPerOp, nsDelta, ob.AllocsPerOp, nb.AllocsPerOp, allocDelta)
		if nsTol := tol.nsFor(ob.Name); nsDelta > nsTol {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (%+.1f%% > %.0f%% tolerance)",
				ob.Name, ob.NsPerOp, nb.NsPerOp, nsDelta, nsTol))
		}
		if slack := int64(float64(ob.AllocsPerOp) * allocSlackPct / 100); allocDelta > slack {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %d -> %d (beyond the %+d map hash-seed slack)",
				ob.Name, ob.AllocsPerOp, nb.AllocsPerOp, slack))
		}
	}
	for _, nb := range newDoc.Benchmarks {
		if !oldNames[nb.Name] {
			fmt.Fprintf(w, "%-28s %14s %14.0f %8s %10s %10d\n",
				nb.Name, "(new)", nb.NsPerOp, "", "", nb.AllocsPerOp)
		}
	}

	// Bandwidth identity: the simulation must produce bit-identical
	// results; both directions (missing and changed schemes) fail.
	schemes := make([]string, 0, len(oldDoc.BandwidthMBpsByScheme)+len(newDoc.BandwidthMBpsByScheme))
	seen := map[string]bool{}
	for s := range oldDoc.BandwidthMBpsByScheme {
		schemes, seen[s] = append(schemes, s), true
	}
	for s := range newDoc.BandwidthMBpsByScheme {
		if !seen[s] {
			schemes = append(schemes, s)
		}
	}
	sort.Strings(schemes)
	fmt.Fprintf(w, "\n%-28s %20s %20s\n", "scheme", "old MB/s", "new MB/s")
	for _, s := range schemes {
		ov, oOK := oldDoc.BandwidthMBpsByScheme[s]
		nv, nOK := newDoc.BandwidthMBpsByScheme[s]
		switch {
		case !oOK:
			fmt.Fprintf(w, "%-28s %20s %20.10g\n", s, "(absent)", nv)
			failures = append(failures, fmt.Sprintf("bandwidth: scheme %q absent from baseline", s))
		case !nOK:
			fmt.Fprintf(w, "%-28s %20.10g %20s\n", s, ov, "(absent)")
			failures = append(failures, fmt.Sprintf("bandwidth: scheme %q absent from new document", s))
		case ov != nv:
			fmt.Fprintf(w, "%-28s %20.10g %20.10g  CHANGED\n", s, ov, nv)
			failures = append(failures, fmt.Sprintf(
				"bandwidth: scheme %q changed %v -> %v (simulation results must be bit-identical)", s, ov, nv))
		default:
			fmt.Fprintf(w, "%-28s %20.10g %20.10g\n", s, ov, nv)
		}
	}
	return failures
}
