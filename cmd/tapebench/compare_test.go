package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// tol40 is the default-shaped gate used by most tests: 40% general ns
// tolerance, 30% for placement-* benchmarks.
var tol40 = tolerances{nsPct: 40, placementNsPct: 30}

func benchDoc() *benchResult {
	return &benchResult{
		Schema:    benchResultSchema,
		GoVersion: "go1.22",
		Commit:    "abc123",
		Benchmarks: []benchMeasurement{
			{Name: "simulate-request", Iterations: 1000, NsPerOp: 10000, AllocsPerOp: 0, BytesPerOp: 64},
			{Name: "placement-parallel-batch", Iterations: 10, NsPerOp: 9.5e7, AllocsPerOp: 51000, BytesPerOp: 2.2e7},
		},
		BandwidthMBpsByScheme: map[string]float64{
			"parallel-batch":      153.0456754966517,
			"cluster-probability": 86.89365562054768,
		},
	}
}

func writeDoc(t *testing.T, doc *benchResult) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// A document compared against itself must pass the gate.
func TestCompareSelfIsClean(t *testing.T) {
	path := writeDoc(t, benchDoc())
	var buf bytes.Buffer
	code, err := runCompare(&buf, path, path, tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("self-compare exit code %d, want 0\n%s", code, buf.String())
	}
}

// ns/op growth beyond the tolerance must fail; growth within it must pass.
func TestCompareNsRegression(t *testing.T) {
	base := benchDoc()
	slow := benchDoc()
	slow.Benchmarks[0].NsPerOp *= 2 // +100% > 40% tolerance
	code, err := runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, slow), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatal("2x ns/op regression passed a 40% gate")
	}

	okish := benchDoc()
	okish.Benchmarks[0].NsPerOp *= 1.2 // +20% < 40% tolerance
	code, err = runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, okish), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatal("+20% ns/op failed a 40% gate")
	}
}

// placement-* benchmarks are gated by their own ns tolerance, not the
// general one: +35% passes a 40% general gate but fails the 30% placement
// gate, and a generous placement gate accepts it even when the general
// tolerance is tight.
func TestComparePlacementTolerance(t *testing.T) {
	base := benchDoc()
	slower := benchDoc()
	slower.Benchmarks[1].NsPerOp *= 1.35 // placement-parallel-batch
	code, err := runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, slower), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatal("+35% placement ns/op passed a 30% placement gate")
	}
	loosePlacement := tolerances{nsPct: 10, placementNsPct: 50}
	code, err = runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, slower), loosePlacement)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatal("+35% placement ns/op failed a 50% placement gate (general tolerance must not apply)")
	}
}

// Zero-alloc benchmarks get zero slack: any allocs/op increase fails,
// regardless of the ns tolerance.
func TestCompareAllocRegressionIsExact(t *testing.T) {
	base := benchDoc()
	leaky := benchDoc()
	leaky.Benchmarks[0].AllocsPerOp++ // 0 -> 1; slack is floor(0.1% of 0) = 0
	code, err := runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, leaky), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatal("allocs/op increase of 1 passed the gate")
	}
	// A decrease is an improvement, not a regression.
	better := benchDoc()
	better.Benchmarks[1].AllocsPerOp -= 1000
	code, err = runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, better), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatal("allocs/op decrease failed the gate")
	}
}

// Alloc-heavy benchmarks get a 0.1% slack for map hash-seed jitter (the
// per-process seed perturbs overflow-bucket counts by a few allocations),
// but anything beyond it still fails.
func TestCompareAllocHashSeedSlack(t *testing.T) {
	base := benchDoc() // Benchmarks[1] has 51000 allocs -> slack 51
	jitter := benchDoc()
	jitter.Benchmarks[1].AllocsPerOp += 2
	code, err := runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, jitter), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatal("+2 allocs on 51000 (hash-seed jitter) failed the gate")
	}

	leaky := benchDoc()
	leaky.Benchmarks[1].AllocsPerOp += 100
	code, err = runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, leaky), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatal("+100 allocs on 51000 passed the gate (slack is 51)")
	}
}

// The simulated bandwidth must round-trip bit-identically.
func TestCompareBandwidthMustBeIdentical(t *testing.T) {
	base := benchDoc()
	drifted := benchDoc()
	drifted.BandwidthMBpsByScheme["parallel-batch"] += 1e-9
	code, err := runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, drifted), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatal("a 1e-9 bandwidth drift passed the gate; comparison must be exact")
	}
}

// Dropping a benchmark from the new document fails (the gate must not
// weaken silently); adding one is fine.
func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := benchDoc()
	shrunk := benchDoc()
	shrunk.Benchmarks = shrunk.Benchmarks[:1]
	code, err := runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, shrunk), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatal("dropped benchmark passed the gate")
	}

	grown := benchDoc()
	grown.Benchmarks = append(grown.Benchmarks,
		benchMeasurement{Name: "engine-schedule", NsPerOp: 12, AllocsPerOp: 0})
	code, err = runCompare(&bytes.Buffer{}, writeDoc(t, base), writeDoc(t, grown), tol40)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatal("added benchmark failed the gate")
	}
}

// A wrong schema string is an operational error, not a regression verdict.
func TestCompareRejectsWrongSchema(t *testing.T) {
	bad := benchDoc()
	bad.Schema = "tapebench/bench-result/v0"
	if _, err := runCompare(&bytes.Buffer{}, writeDoc(t, bad), writeDoc(t, benchDoc()), tol40); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
