package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"paralleltape"
)

func tinyCfg() paralleltape.ExperimentConfig {
	cfg := paralleltape.QuickExperimentConfig()
	cfg.Requests = 5
	cfg.Workers = 2
	return cfg
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig9", tinyCfg(), false, true, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Figure 9", "parallel-batch", "completed in"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", tinyCfg(), true, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "parameter,value") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Error("CSV output contains the trailer line")
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig9", tinyCfg(), false, false, true); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string `json:"id"`
		Rows []struct {
			Scheme        string  `json:"scheme"`
			BandwidthMBps float64 `json:"bandwidth_mbps"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.ID != "fig9" || len(decoded.Rows) != 3 {
		t.Errorf("decoded: %+v", decoded)
	}
	for _, r := range decoded.Rows {
		if r.BandwidthMBps <= 0 {
			t.Errorf("row %s has no bandwidth", r.Scheme)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", tinyCfg(), false, false, false); err == nil {
		t.Error("unknown experiment accepted")
	}
}
