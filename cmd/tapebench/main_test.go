package main

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"paralleltape"
)

func tinyCfg() paralleltape.ExperimentConfig {
	cfg := paralleltape.QuickExperimentConfig()
	cfg.Requests = 5
	cfg.Workers = 2
	return cfg
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	reps, err := run(&buf, "fig9", tinyCfg(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].ID != "fig9" {
		t.Errorf("reports = %v, want one fig9", reps)
	}
	out := buf.String()
	for _, frag := range []string{"Figure 9", "parallel-batch", "completed in"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "table1", tinyCfg(), true, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "parameter,value") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Error("CSV output contains the trailer line")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "nope", tinyCfg(), false, false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestBenchResultJSON regenerates one exhibit and checks the -json
// benchmark-result document: schema identity, environment fields, the
// micro-benchmark measurements, and the per-scheme bandwidth map.
func TestBenchResultJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark (seconds)")
	}
	t.Setenv("TAPEBENCH_COMMIT", "deadbeef")
	cfg := tinyCfg()
	var tbl bytes.Buffer
	reps, err := run(&tbl, "fig9", cfg, false, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeBenchResult(&buf, "fig9", cfg, true, 1500*time.Millisecond, reps); err != nil {
		t.Fatal(err)
	}

	var res benchResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if res.Schema != benchResultSchema {
		t.Errorf("schema = %q, want %q", res.Schema, benchResultSchema)
	}
	if res.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", res.GoVersion, runtime.Version())
	}
	if res.Commit != "deadbeef" {
		t.Errorf("commit = %q, want env override", res.Commit)
	}
	if !res.Quick || res.Experiment != "fig9" || res.WallSeconds != 1.5 {
		t.Errorf("config echo wrong: %+v", res)
	}
	wantNames := []string{"simulate-request", "simulate-request-traced",
		"simulate-request-shards2", "simulate-request-shards4",
		"simulate-throughput",
		"placement-parallel-batch", "placement-cluster",
		"placement-organpipe", "placement-loadbalance",
		"engine-schedule", "engine-schedule-skewed",
		"engine-schedule-churn"}
	if len(res.Benchmarks) != len(wantNames) {
		t.Fatalf("benchmarks = %d, want %d", len(res.Benchmarks), len(wantNames))
	}
	for i, b := range res.Benchmarks {
		if b.Name != wantNames[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, wantNames[i])
		}
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Errorf("benchmark %s has no measurement: %+v", b.Name, b)
		}
	}
	// The untraced Submit path allocates strictly less than the traced one.
	if res.Benchmarks[0].AllocsPerOp > res.Benchmarks[1].AllocsPerOp {
		t.Errorf("untraced allocs %d > traced %d",
			res.Benchmarks[0].AllocsPerOp, res.Benchmarks[1].AllocsPerOp)
	}
	if bw := res.BandwidthMBpsByScheme["parallel-batch"]; bw <= 0 {
		t.Errorf("bandwidth_mbps_by_scheme missing parallel-batch: %v", res.BandwidthMBpsByScheme)
	}
	// Exhibits embed the report's own JSON form.
	if len(res.Exhibits) != 1 {
		t.Fatalf("exhibits = %d, want 1", len(res.Exhibits))
	}
	var exhibit struct {
		ID   string `json:"id"`
		Rows []struct {
			Scheme        string  `json:"scheme"`
			BandwidthMBps float64 `json:"bandwidth_mbps"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(res.Exhibits[0], &exhibit); err != nil {
		t.Fatal(err)
	}
	if exhibit.ID != "fig9" || len(exhibit.Rows) != 3 {
		t.Errorf("exhibit: %+v", exhibit)
	}
	for _, r := range exhibit.Rows {
		if r.BandwidthMBps <= 0 {
			t.Errorf("row %s has no bandwidth", r.Scheme)
		}
	}
}

func TestDetectCommitFallback(t *testing.T) {
	t.Setenv("TAPEBENCH_COMMIT", "")
	if c := detectCommit(); c == "" {
		t.Error("detectCommit returned empty string")
	}
	t.Setenv("TAPEBENCH_COMMIT", "abc123")
	if c := detectCommit(); c != "abc123" {
		t.Errorf("detectCommit = %q, want env override", c)
	}
}
