package main

// The -json flag emits a benchmark-result document so runs can be diffed
// across commits (the repo keeps baselines as BENCH_NNNN.json). The layout
// is versioned by the schema string below and documented in
// docs/OBSERVABILITY.md; adding fields is allowed, renaming or removing
// them requires a new schema version.

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"paralleltape"
	"paralleltape/internal/cluster"
	"paralleltape/internal/loadbalance"
	"paralleltape/internal/organpipe"
	"paralleltape/internal/sim"
	"paralleltape/internal/units"
)

// benchResultSchema versions the -json document layout.
const benchResultSchema = "tapebench/bench-result/v1"

// benchResult is the top-level -json document: environment identity,
// experiment configuration, harness micro-benchmarks, and the domain
// metric (effective bandwidth per scheme) for regression tracking.
type benchResult struct {
	Schema      string  `json:"schema"`
	GoVersion   string  `json:"go_version"`
	Commit      string  `json:"commit"`
	Experiment  string  `json:"experiment"`
	Quick       bool    `json:"quick"`
	Seed        uint64  `json:"seed"`
	Requests    int     `json:"requests"`
	Scale       float64 `json:"scale"`
	WallSeconds float64 `json:"wall_seconds"`
	// Benchmarks holds testing.Benchmark measurements of the simulator
	// hot paths at the configured scale.
	Benchmarks []benchMeasurement `json:"benchmarks"`
	// BandwidthMBpsByScheme is each scheme's mean effective bandwidth
	// over every exhibit row it appears in — the paper's headline metric.
	BandwidthMBpsByScheme map[string]float64 `json:"bandwidth_mbps_by_scheme"`
	// Exhibits embeds each regenerated report in its WriteJSON form.
	Exhibits []json.RawMessage `json:"exhibits"`
}

// benchMeasurement is one testing.Benchmark result.
type benchMeasurement struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// detectCommit identifies the source revision: the TAPEBENCH_COMMIT
// environment variable wins (set by scripts that know the hash), then the
// vcs.revision stamped into the binary by `go build`, then "unknown"
// (e.g. `go run` of a dirty tree).
func detectCommit() string {
	if c := os.Getenv("TAPEBENCH_COMMIT"); c != "" {
		return c
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// writeBenchResult measures the micro-benchmarks and writes the full
// bench-result document. wall is the exhibit-regeneration wall time; the
// micro-benchmarks run here, after it is measured, so they do not inflate
// it.
func writeBenchResult(w io.Writer, experiment string, cfg paralleltape.ExperimentConfig,
	quick bool, wall time.Duration, reps []*paralleltape.ExperimentReport) error {
	res := benchResult{
		Schema:                benchResultSchema,
		GoVersion:             runtime.Version(),
		Commit:                detectCommit(),
		Experiment:            experiment,
		Quick:                 quick,
		Seed:                  cfg.Seed,
		Requests:              cfg.Requests,
		Scale:                 cfg.Scale,
		WallSeconds:           wall.Seconds(),
		BandwidthMBpsByScheme: map[string]float64{},
	}
	sum := map[string]float64{}
	n := map[string]int{}
	for _, rep := range reps {
		for _, row := range rep.Rows {
			if row.Err == nil && row.Scheme != "" {
				sum[row.Scheme] += row.Stats.MeanBandwidth / 1e6
				n[row.Scheme]++
			}
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			return err
		}
		res.Exhibits = append(res.Exhibits, json.RawMessage(bytes.TrimSpace(buf.Bytes())))
	}
	for scheme := range sum {
		res.BandwidthMBpsByScheme[scheme] = sum[scheme] / float64(n[scheme])
	}
	var err error
	if res.Benchmarks, err = measureBenchmarks(cfg); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&res)
}

// testingInitOnce guards testing.Init, which registers the test.* flags
// exactly once so setBenchtime can drive testing.Benchmark's -benchtime.
var testingInitOnce sync.Once

// setBenchtime points testing.Benchmark at a benchtime value ("1s",
// "30x", ...). Placement benchmarks run a fixed iteration count instead of
// the adaptive 1s default: one placement op costs ~100 ms at full scale, so
// the time-targeted mode stops after very few iterations and the reported
// ns/op jitters more than the -compare gate tolerates. A fixed count keeps
// the measurement window identical across runs.
func setBenchtime(v string) error {
	testingInitOnce.Do(testing.Init)
	return flag.Set("test.benchtime", v)
}

// measureBenchmarks runs the reference micro-benchmarks with
// testing.Benchmark at the configured scale. The names are part of the
// schema: simulate-request is the untraced Submit hot path (the
// allocation-regression guard), simulate-request-traced adds an in-memory
// trace buffer, simulate-request-shards{2,4} run each request across
// engine shards on the persistent shard executor (bounding the handoff
// overhead; results stay byte-identical), simulate-throughput drives the
// same sharded system through the plan-ahead pipeline (SubmitStream)
// so successive requests overlap, placement-parallel-batch is the
// end-to-end placement
// cost, placement-cluster / placement-organpipe / placement-loadbalance
// isolate the pipeline's three stages (§5.1 clustering, §5.3 step 6
// alignment, §5.4 balancing), and engine-schedule / engine-schedule-skewed
// / engine-schedule-churn isolate the event-queue kernel (uniform deadlines,
// a near/far mix, and a standing population migrating through the ladder
// queue's tiers; all mirror the benchmarks in internal/sim and must stay at
// zero allocs/op).
func measureBenchmarks(cfg paralleltape.ExperimentConfig) ([]benchMeasurement, error) {
	w, err := paralleltape.GenerateWorkload(benchParams(cfg), cfg.Seed)
	if err != nil {
		return nil, err
	}
	hw := cfg.HW
	pl, err := paralleltape.Place(hw, paralleltape.NewParallelBatch(cfg.M), w)
	if err != nil {
		return nil, err
	}
	plain, err := paralleltape.NewSystem(hw, pl)
	if err != nil {
		return nil, err
	}
	traced, err := paralleltape.NewSystem(hw, pl)
	if err != nil {
		return nil, err
	}
	tbuf := traced.EnableTrace(0)
	sharded2, err := paralleltape.NewSystemWithOptions(hw, pl, paralleltape.SimOptions{Shards: 2})
	if err != nil {
		return nil, err
	}
	defer sharded2.Close()
	sharded4, err := paralleltape.NewSystemWithOptions(hw, pl, paralleltape.SimOptions{Shards: 4})
	if err != nil {
		return nil, err
	}
	defer sharded4.Close()
	reqs := w.Requests

	var opErr error
	submit := func(sys *paralleltape.System, buf *paralleltape.TraceBuffer) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Submit(&reqs[i%len(reqs)]); err != nil {
					opErr = err
					b.FailNow()
				}
				if buf != nil {
					buf.Reset() // keep memory flat; recording cost still measured
				}
			}
		}
	}
	place := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := paralleltape.Place(hw, paralleltape.NewParallelBatch(cfg.M), w); err != nil {
				opErr = err
				b.FailNow()
			}
		}
	}
	clusterStage := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Run(w, cluster.DefaultConfig()); err != nil {
				opErr = err
				b.FailNow()
			}
		}
	}
	// Alignment stage: organ-pipe one tape-sized item list drawn from the
	// workload's probability profile.
	probs := w.ObjectProbs()
	opItems := make([]organpipe.Item, 512)
	for i := range opItems {
		opItems[i] = organpipe.Item{Index: i, Weight: probs[i%len(probs)]}
	}
	var arr organpipe.Arranger
	organStage := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			arr.Arrange(opItems)
		}
	}
	// Balancing stage: zigzag one cluster-sized item list across a batch,
	// resetting the tape states each op so every iteration does the same
	// work.
	lbItems := make([]loadbalance.Item, 64)
	for i := range lbItems {
		size := int64(i%7+1) * units.MB
		lbItems[i] = loadbalance.Item{Load: probs[i%len(probs)] * float64(size), Size: size}
	}
	lbStates := make([]loadbalance.TapeState, 8)
	lbPtrs := make([]*loadbalance.TapeState, len(lbStates))
	for i := range lbStates {
		lbPtrs[i] = &lbStates[i]
	}
	var packer loadbalance.Packer
	balanceStage := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range lbStates {
				lbStates[j] = loadbalance.TapeState{Free: 1 << 40}
			}
			if _, err := packer.Zigzag(lbItems, lbPtrs, len(lbStates)); err != nil {
				opErr = err
				b.FailNow()
			}
		}
	}
	// Streaming throughput: the same sharded system driven through the
	// plan-ahead pipeline (SubmitStream), so request k+1's CPU phase
	// overlaps request k's event phase. Compare against
	// simulate-request-shards2 to see what the pipeline buys.
	throughput := func(b *testing.B) {
		b.ReportAllocs()
		i := 0
		if err := sharded2.SubmitStream(
			func() *paralleltape.Request {
				if i >= b.N {
					return nil
				}
				r := &reqs[i%len(reqs)]
				i++
				return r
			},
			nil,
		); err != nil {
			opErr = err
			b.FailNow()
		}
	}
	engSchedule := func(b *testing.B) {
		eng := sim.NewEngine()
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Schedule(1, fn)
			eng.Run()
		}
	}
	engScheduleSkewed := func(b *testing.B) {
		eng := sim.NewEngine()
		fn := func() {}
		delays := [...]float64{0.001, 1800, 0.01, 700, 0.1, 2400, 1, 300}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Schedule(delays[i%len(delays)], fn)
			if i%256 == 255 {
				eng.RunUntil(eng.Now() + 4000)
			}
		}
		eng.Run()
	}
	engScheduleChurn := func(b *testing.B) {
		eng := sim.NewEngine()
		fn := func() {}
		far := [...]float64{30000, 1200, 90000, 400, 7000, 250000, 2600, 45000}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Schedule(float64(i%13)*0.25, fn)
			eng.Schedule(far[i%len(far)], fn)
			if i%64 == 63 {
				eng.RunUntil(eng.Now() + 30)
			}
			if i%1024 == 1023 {
				eng.RunUntil(eng.Now() + 100000)
			}
		}
		eng.Run()
	}

	var out []benchMeasurement
	for _, bench := range []struct {
		name      string
		benchtime string
		fn        func(b *testing.B)
	}{
		{"simulate-request", "1s", submit(plain, nil)},
		{"simulate-request-traced", "1s", submit(traced, tbuf)},
		{"simulate-request-shards2", "1s", submit(sharded2, nil)},
		{"simulate-request-shards4", "1s", submit(sharded4, nil)},
		{"simulate-throughput", "1s", throughput},
		{"placement-parallel-batch", "30x", place},
		{"placement-cluster", "30x", clusterStage},
		{"placement-organpipe", "1s", organStage},
		{"placement-loadbalance", "1s", balanceStage},
		{"engine-schedule", "1s", engSchedule},
		{"engine-schedule-skewed", "1s", engScheduleSkewed},
		{"engine-schedule-churn", "1s", engScheduleChurn},
	} {
		if err := setBenchtime(bench.benchtime); err != nil {
			return nil, err
		}
		r := testing.Benchmark(bench.fn)
		if opErr != nil {
			return nil, opErr
		}
		out = append(out, benchMeasurement{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// benchParams mirrors the root bench harness's scaled workload parameters
// (bench_test.go) so -json measurements are comparable with
// `go test -bench`: object population and request lengths scale, the
// predefined request count stays at the paper's 300, and the object-size
// tail is capped relative to the (possibly shrunken) cartridge.
func benchParams(cfg paralleltape.ExperimentConfig) paralleltape.WorkloadParams {
	p := paralleltape.DefaultWorkloadParams()
	p.NumObjects = int(float64(p.NumObjects) * cfg.Scale)
	if p.NumObjects < 200 {
		p.NumObjects = 200
	}
	if cfg.Scale != 1 {
		p.MinReqLen = int(float64(p.MinReqLen) * cfg.Scale)
		if p.MinReqLen < 2 {
			p.MinReqLen = 2
		}
		p.MaxReqLen = int(float64(p.MaxReqLen) * cfg.Scale)
		if p.MaxReqLen < p.MinReqLen {
			p.MaxReqLen = p.MinReqLen
		}
		if cap40 := cfg.HW.Capacity / 40; p.MaxObjSize > cap40 {
			p.MaxObjSize = cap40
		}
	}
	return p
}
