// Command tapebench regenerates the paper's evaluation: Table 1 and
// Figures 5–9, plus the technology-scaling and robustness studies and the
// parallel-batch design ablation.
//
// Examples:
//
//	tapebench                      # everything, full paper scale
//	tapebench -experiment fig6     # one exhibit
//	tapebench -quick               # reduced scale (CI-sized)
//	tapebench -experiment fig9 -csv -o fig9.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"paralleltape"
	"paralleltape/internal/metrics"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"which exhibit to regenerate: all, table1, fig5, fig6, fig7, fig8, fig9, tech, robustness, ablation, striping, online, scheduler, sensitivity")
		quick    = flag.Bool("quick", false, "reduced-scale configuration (fast)")
		seed     = flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
		requests = flag.Int("requests", 0, "override simulated requests per run (0 keeps the default)")
		workers  = flag.Int("workers", 0, "parallel run workers (0 = GOMAXPROCS)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart    = flag.Bool("chart", false, "append a bandwidth bar chart to each exhibit")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		outPath  = flag.String("o", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	cfg := paralleltape.DefaultExperimentConfig()
	if *quick {
		cfg = paralleltape.QuickExperimentConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *requests != 0 {
		cfg.Requests = *requests
	}
	cfg.Workers = *workers

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	if err := run(out, *experiment, cfg, *csv, *chart, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "tapebench:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, experiment string, cfg paralleltape.ExperimentConfig, csv, chart, jsonOut bool) error {
	emit := func(rep *paralleltape.ExperimentReport) error {
		if err := rep.Err(); err != nil {
			return err
		}
		if jsonOut {
			return rep.WriteJSON(out)
		}
		if csv {
			return rep.Table.RenderCSV(out)
		}
		if err := rep.Table.Render(out); err != nil {
			return err
		}
		if chart && len(rep.Rows) > 0 {
			var labels []string
			var values []float64
			for _, r := range rep.Rows {
				label := r.Label
				if r.Scheme != "" && r.Scheme != label {
					label += " " + r.Scheme
				}
				labels = append(labels, label)
				values = append(values, r.Stats.MeanBandwidth/1e6)
			}
			fmt.Fprintln(out)
			if err := metrics.BarChart(out, "effective bandwidth (MB/s)", labels, values, 50); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(out)
		return err
	}

	start := time.Now()
	if experiment == "all" {
		reps, err := paralleltape.RunAllExperiments(cfg)
		for _, rep := range reps {
			if e := emit(rep); e != nil {
				return e
			}
		}
		if err != nil {
			return err
		}
	} else {
		rep, err := paralleltape.RunExperiment(experiment, cfg)
		if err != nil {
			return err
		}
		if err := emit(rep); err != nil {
			return err
		}
	}
	if !csv && !jsonOut {
		fmt.Fprintf(out, "completed in %s (seed %d, %d requests/run, scale %.2f)\n",
			time.Since(start).Round(time.Millisecond), cfg.Seed, cfg.Requests, cfg.Scale)
	}
	return nil
}
