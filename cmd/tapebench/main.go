// Command tapebench regenerates the paper's evaluation: Table 1 and
// Figures 5–9, plus the technology-scaling and robustness studies and the
// parallel-batch design ablation. Profiling hooks (-pprof, -cpuprofile,
// -memprofile, -gostats) expose where harness time and memory go, live
// telemetry flags (-metrics-addr, -progress) watch a sweep while it runs,
// and -json writes a versioned benchmark-result document for
// regression tracking; see docs/OBSERVABILITY.md.
//
// Examples:
//
//	tapebench                      # everything, full paper scale
//	tapebench -experiment fig6     # one exhibit
//	tapebench -quick               # reduced scale (CI-sized)
//	tapebench -experiment fig9 -csv -o fig9.csv
//	tapebench -metrics-addr :9100 -progress 10s
//	TAPEBENCH_COMMIT=$(git rev-parse HEAD) tapebench -quick -json BENCH.json
//	tapebench -compare BENCH_0003.json fresh.json   # perf regression gate
//	tapebench -pprof :6060 -gostats
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"time"

	"paralleltape"
	pmetrics "paralleltape/internal/metrics"
	"paralleltape/internal/telemetry"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"which exhibit to regenerate: all, table1, fig5, fig6, fig7, fig8, fig9, tech, robustness, ablation, striping, online, scheduler, sensitivity, chaos")
		quick    = flag.Bool("quick", false, "reduced-scale configuration (fast)")
		seed     = flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
		requests = flag.Int("requests", 0, "override simulated requests per run (0 keeps the default)")
		workers  = flag.Int("workers", 0, "parallel run workers (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0,
			"engine shards per simulated system (0 = single engine; results are byte-identical for every value)")
		pipeline = flag.Bool("pipeline", false,
			"submit each run's requests through the plan-ahead pipeline (SubmitStream; results are byte-identical either way)")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart       = flag.Bool("chart", false, "append a bandwidth bar chart to each exhibit")
		jsonOut     = flag.String("json", "", "write a machine-readable benchmark-result document (schema tapebench/bench-result/v1) to this file (- for stdout)")
		outPath     = flag.String("o", "", "write output to a file instead of stdout")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live telemetry on this address for the life of the sweep (Prometheus text at /metrics, expvar JSON at /debug/vars, net/http/pprof at /debug/pprof/)")
		progress = flag.Duration("progress", 0, "print a progress line to stderr at this interval (e.g. 10s; 0 disables)")
		compare  = flag.String("compare", "",
			"regression-gate mode: compare this baseline bench-result document against the one given as a positional argument (tapebench -compare old.json new.json), exit non-zero on regression")
		compareNsTol = flag.Float64("compare-ns-tolerance", 40,
			"-compare: allowed ns/op growth in percent (allocs/op gets a fixed 0.1% slack, bandwidth is always exact)")
		comparePlacementNsTol = flag.Float64("compare-placement-ns-tolerance", 30,
			"-compare: allowed ns/op growth in percent for the placement-* benchmarks, which run a fixed iteration count (see docs/PERFORMANCE.md)")
		faultsOn = flag.Bool("faults", false,
			"inject stochastic faults into every run of the selected exhibit (-mtbf, -timeout; docs/RESILIENCE.md); the chaos exhibit keeps its own per-point profiles")
		mtbf = flag.Float64("mtbf", 40000,
			"per-drive mean time between failures in simulated seconds (with -faults); robots get 10x")
		timeout = flag.Float64("timeout", 0,
			"per-request deadline in simulated seconds (0 = none); timed-out requests report partial results")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the life of the run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		goStats  = flag.Bool("gostats", false, "print Go runtime metrics (GC, heap, scheduler) after the run")
	)
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "tapebench: -compare needs exactly one positional argument: the new bench-result document")
			os.Exit(2)
		}
		code, err := runCompare(os.Stdout, *compare, flag.Arg(0),
			tolerances{nsPct: *compareNsTol, placementNsPct: *comparePlacementNsTol})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}

	// Create output files first so an unwritable path fails immediately,
	// not after the sweep completes.
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	var jsonW io.Writer
	if *jsonOut != "" {
		if *jsonOut == "-" {
			jsonW = os.Stdout
		} else {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tapebench:", err)
				os.Exit(1)
			}
			defer f.Close()
			jsonW = f
		}
	}

	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tapebench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "tapebench: pprof listening on http://%s/debug/pprof/\n", *pprofSrv)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := paralleltape.DefaultExperimentConfig()
	if *quick {
		cfg = paralleltape.QuickExperimentConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *requests != 0 {
		cfg.Requests = *requests
	}
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.Pipeline = *pipeline
	if *faultsOn {
		cfg.Faults = &paralleltape.FaultProfile{
			Seed:              cfg.Seed ^ 0xFA17,
			DriveMTBF:         *mtbf,
			DriveRepair:       paralleltape.Exponential{Mean: 600},
			RobotMTBF:         10 * *mtbf,
			RobotRepair:       paralleltape.Exponential{Mean: 300},
			MediaErrorPerRead: 0.002,
		}
	}
	cfg.RequestTimeout = *timeout

	// Live telemetry: one collector shared by every run in the sweep. The
	// experiment runner raises the run/request targets and streams events
	// into it; the server and progress line read concurrently.
	if *metricsAddr != "" || *progress > 0 {
		reg := telemetry.NewRegistry()
		cfg.Telemetry = telemetry.NewCollector(reg)
		if *metricsAddr != "" {
			srv, err := telemetry.Serve(*metricsAddr, reg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tapebench:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "tapebench: telemetry on http://%s/metrics\n", srv.Addr())
		}
		if *progress > 0 {
			prog := telemetry.StartProgress(telemetry.ProgressOptions{
				Interval: *progress, Collector: cfg.Telemetry, Label: "tapebench",
			})
			defer prog.Stop()
		}
	}

	start := time.Now()
	reps, err := run(out, *experiment, cfg, *csv, *chart)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapebench:", err)
		os.Exit(1)
	}
	if jsonW != nil {
		if err := writeBenchResult(jsonW, *experiment, cfg, *quick, time.Since(start), reps); err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
	}
	if *goStats {
		if err := writeRuntimeStats(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tapebench:", err)
			os.Exit(1)
		}
	}
}

// runtimeStatNames are the runtime/metrics samples -gostats reports: the
// memory footprint, GC effort, and scheduler latency of the harness.
var runtimeStatNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/sched/goroutines:goroutines",
	"/cpu/classes/gc/total:cpu-seconds",
}

// writeRuntimeStats samples and prints the selected runtime metrics.
func writeRuntimeStats(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeStatNames))
	for i, name := range runtimeStatNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	if _, err := fmt.Fprintln(w, "\nruntime metrics:"); err != nil {
		return err
	}
	for _, s := range samples {
		var val string
		switch s.Value.Kind() {
		case metrics.KindUint64:
			val = fmt.Sprintf("%d", s.Value.Uint64())
		case metrics.KindFloat64:
			val = fmt.Sprintf("%g", s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			val = fmt.Sprintf("p50=%.6gs p99=%.6gs", histQuantile(h, 0.50), histQuantile(h, 0.99))
		default:
			val = "unsupported"
		}
		if _, err := fmt.Fprintf(w, "  %-40s %s\n", s.Name, val); err != nil {
			return err
		}
	}
	return nil
}

// histQuantile approximates a quantile of a runtime/metrics histogram by
// walking bucket counts; it returns the lower bound of the bucket where
// the cumulative count crosses q.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Buckets[i] is the lower bound of bucket i.
			if i < len(h.Buckets) {
				return h.Buckets[i]
			}
			return h.Buckets[len(h.Buckets)-1]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// run regenerates the selected exhibits, rendering each to out, and
// returns the finished reports so the caller can derive the -json
// benchmark-result document from them.
func run(out io.Writer, experiment string, cfg paralleltape.ExperimentConfig, csv, chart bool) ([]*paralleltape.ExperimentReport, error) {
	emit := func(rep *paralleltape.ExperimentReport) error {
		if err := rep.Err(); err != nil {
			return err
		}
		if csv {
			return rep.Table.RenderCSV(out)
		}
		if err := rep.Table.Render(out); err != nil {
			return err
		}
		if chart && len(rep.Rows) > 0 {
			var labels []string
			var values []float64
			for _, r := range rep.Rows {
				label := r.Label
				if r.Scheme != "" && r.Scheme != label {
					label += " " + r.Scheme
				}
				labels = append(labels, label)
				values = append(values, r.Stats.MeanBandwidth/1e6)
			}
			fmt.Fprintln(out)
			if err := pmetrics.BarChart(out, "effective bandwidth (MB/s)", labels, values, 50); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(out)
		return err
	}

	start := time.Now()
	var reps []*paralleltape.ExperimentReport
	if experiment == "all" {
		all, err := paralleltape.RunAllExperiments(cfg)
		for _, rep := range all {
			if e := emit(rep); e != nil {
				return nil, e
			}
		}
		if err != nil {
			return nil, err
		}
		reps = all
	} else {
		rep, err := paralleltape.RunExperiment(experiment, cfg)
		if err != nil {
			return nil, err
		}
		if err := emit(rep); err != nil {
			return nil, err
		}
		reps = []*paralleltape.ExperimentReport{rep}
	}
	if !csv {
		fmt.Fprintf(out, "completed in %s (seed %d, %d requests/run, scale %.2f)\n",
			time.Since(start).Round(time.Millisecond), cfg.Seed, cfg.Requests, cfg.Scale)
	}
	return reps, nil
}
