// Command tapesim runs a single parallel-tape-storage simulation: it
// generates (or loads) a workload, places it with a chosen scheme, submits
// a stream of requests, and prints the paper's §6 metrics. Opt-in
// observability flags export a structured event trace (-trace) and a
// per-component run report (-report), serve live telemetry while the run
// executes (-metrics-addr), and print periodic progress (-progress); all
// formats are documented in docs/OBSERVABILITY.md.
//
// Examples:
//
//	tapesim -scheme parallel-batch -m 4 -requests 200
//	tapesim -scheme object-probability -alpha 0.7 -libraries 2
//	tapesim -scheme cluster-probability -workload workload.json -csv
//	tapesim -requests 50 -trace run.jsonl -report -
//	tapesim -requests 2000 -metrics-addr :9100 -progress 5s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"paralleltape"
	"paralleltape/internal/dist"
	"paralleltape/internal/faults"
	"paralleltape/internal/metrics"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/spans"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/telemetry"
	"paralleltape/internal/trace"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// options bundles every tapesim flag; tests drive run() through it.
type options struct {
	scheme      string
	m           int
	epochs      int
	requests    int
	seed        uint64
	alpha       float64
	objects     int
	nRequests   int
	libraries   int
	drives      int
	tapes       int
	capacity    string
	rate        string
	shards      int
	pipeline    bool
	target      string
	workload    string        // JSON workload trace to load instead of generating
	tracePath   string        // structured event trace export (.jsonl or .csv)
	report      string        // run report destination ("-" for stdout)
	metricsAddr string        // live telemetry HTTP address ("" = off)
	progress    time.Duration // progress line interval (0 = off)
	csv         bool
	verbose     bool
	util        bool
	estimate    bool
	describe    bool
	events      int
	explain     int // print the N slowest requests' causal span trees

	// Fault-injection knobs (docs/RESILIENCE.md).
	faults     bool
	mtbf       float64
	repair     float64
	mediaError float64
	faultSeed  uint64
	timeout    float64
	backoff    float64

	// Test hooks (not flags): notifyServe receives the bound telemetry
	// address once the server is up; midRun fires once after half the
	// requests have been submitted. Both are nil outside tests.
	notifyServe func(addr string)
	midRun      func()
}

func main() {
	var o options
	flag.StringVar(&o.scheme, "scheme", "parallel-batch",
		"placement scheme: parallel-batch, object-probability, cluster-probability, round-robin, online")
	flag.IntVar(&o.m, "m", 4, "switch drives per library (parallel-batch/online)")
	flag.IntVar(&o.epochs, "epochs", 4, "arrival waves for the online scheme")
	flag.IntVar(&o.requests, "requests", 200, "number of simulated request submissions")
	flag.Uint64Var(&o.seed, "seed", 20060815, "master random seed")
	flag.Float64Var(&o.alpha, "alpha", 0.3, "Zipf request popularity skew")
	flag.IntVar(&o.objects, "objects", 30000, "object population")
	flag.IntVar(&o.nRequests, "predefined", 300, "predefined request count")
	flag.IntVar(&o.libraries, "libraries", 3, "number of tape libraries")
	flag.IntVar(&o.drives, "drives", 8, "drives per library")
	flag.IntVar(&o.tapes, "tapes", 80, "tapes per library")
	flag.StringVar(&o.capacity, "capacity", "400GB", "cartridge capacity")
	flag.StringVar(&o.rate, "rate", "80MB", "native transfer rate (bytes/s)")
	flag.IntVar(&o.shards, "shards", 0,
		"partition the libraries into this many concurrent engine shards (0 = single engine; results are byte-identical either way)")
	flag.BoolVar(&o.pipeline, "pipeline", false,
		"submit through the plan-ahead pipeline: group and read-plan request k+1 while request k's events run (results are byte-identical either way)")
	flag.StringVar(&o.target, "request-size", "", "rescale object sizes to this mean request size (e.g. 213GB)")
	flag.StringVar(&o.workload, "workload", "", "load workload from a JSON trace instead of generating")
	flag.StringVar(&o.tracePath, "trace", "", "write the structured event trace to this file (JSONL; .csv extension switches to CSV)")
	flag.StringVar(&o.report, "report", "", "write the per-component run report to this file (text; .csv extension switches to CSV; - for stdout)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live telemetry on this address for the life of the run (Prometheus text at /metrics, expvar JSON at /debug/vars, net/http/pprof at /debug/pprof/)")
	flag.DurationVar(&o.progress, "progress", 0, "print a progress line to stderr at this interval (e.g. 5s; 0 disables)")
	flag.BoolVar(&o.csv, "csv", false, "emit per-request metrics as CSV")
	flag.BoolVar(&o.verbose, "v", false, "print per-request lines")
	flag.BoolVar(&o.util, "utilization", false, "print drive/robot utilization after the run")
	flag.BoolVar(&o.describe, "describe", false, "print placement diagnostics before simulating")
	flag.BoolVar(&o.estimate, "estimate", false, "print the analytic (no-simulation) estimate alongside")
	flag.IntVar(&o.events, "events", 0, "print the first N simulator events")
	flag.IntVar(&o.explain, "explain", 0,
		"after the run, print the N slowest requests with their critical path and per-phase latency attribution (reconstructed from the event trace; same analysis as tapetrace slowest)")
	flag.BoolVar(&o.faults, "faults", false,
		"enable stochastic fault injection: drive/robot failures from -mtbf, media errors from -media-error (docs/RESILIENCE.md)")
	flag.Float64Var(&o.mtbf, "mtbf", 40000,
		"per-drive mean time between failures in simulated seconds; robots get 10x (with -faults)")
	flag.Float64Var(&o.repair, "repair", 600,
		"mean drive repair time in simulated seconds; robots repair in half (with -faults)")
	flag.Float64Var(&o.mediaError, "media-error", 0.002,
		"permanent media-error probability per tape-group read (with -faults)")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 0,
		"fault-injection seed (0 = derive from -seed); same seed + config = byte-identical degraded run")
	flag.Float64Var(&o.timeout, "timeout", 0,
		"per-request timeout in simulated seconds (0 = none); timed-out requests report partial results")
	flag.Float64Var(&o.backoff, "retry-backoff", 30,
		"delay in simulated seconds before an interrupted operation is retried on a surviving drive")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "tapesim:", err)
		os.Exit(1)
	}
}

// isCSVPath reports whether an output path selects the CSV format: a
// ".csv" extension, compared case-insensitively (".CSV" works too).
func isCSVPath(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".csv")
}

func run(o options) error {
	// Create every output destination first, so an unwritable or
	// uncreatable path fails in milliseconds at flag-handling time rather
	// than after the simulation completes.
	var traceSink interface {
		trace.Recorder
		Close() error
	}
	if o.tracePath != "" {
		traceFile, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		if isCSVPath(o.tracePath) {
			traceSink = trace.NewCSVWriter(traceFile)
		} else {
			traceSink = trace.NewJSONLWriter(traceFile)
		}
	}
	var reportOut io.Writer
	reportCSV := false
	if o.report != "" {
		if o.report == "-" {
			reportOut = os.Stdout
		} else {
			reportFile, err := os.Create(o.report)
			if err != nil {
				return err
			}
			defer reportFile.Close()
			reportOut = reportFile
			reportCSV = isCSVPath(o.report)
		}
	}

	hw := paralleltape.DefaultHardware()
	hw.Libraries = o.libraries
	hw.DrivesPerLib = o.drives
	hw.TapesPerLib = o.tapes
	var err error
	if hw.Capacity, err = units.ParseBytes(o.capacity); err != nil {
		return err
	}
	rateBytes, err := units.ParseBytes(o.rate)
	if err != nil {
		return err
	}
	hw.TransferRate = float64(rateBytes)
	if err := hw.Validate(); err != nil {
		return err
	}

	var w *model.Workload
	if o.workload != "" {
		f, err := os.Open(o.workload)
		if err != nil {
			return err
		}
		defer f.Close()
		if w, err = model.ReadJSON(f); err != nil {
			return err
		}
	} else {
		p := paralleltape.DefaultWorkloadParams()
		p.NumObjects = o.objects
		p.NumRequests = o.nRequests
		p.Alpha = o.alpha
		if w, err = paralleltape.GenerateWorkload(p, o.seed); err != nil {
			return err
		}
	}
	if o.target != "" {
		t, err := units.ParseBytes(o.target)
		if err != nil {
			return err
		}
		if _, err := paralleltape.TargetMeanRequestBytes(w, float64(t)); err != nil {
			return err
		}
	}

	var scheme placement.Scheme
	switch o.scheme {
	case "parallel-batch":
		scheme = placement.ParallelBatch{M: o.m}
	case "object-probability":
		scheme = placement.ObjectProbability{}
	case "cluster-probability":
		scheme = placement.ClusterProbability{}
	case "round-robin":
		scheme = placement.RoundRobin{}
	case "online":
		scheme = placement.Online{Epochs: o.epochs, M: o.m}
	default:
		return fmt.Errorf("unknown scheme %q", o.scheme)
	}

	stats := w.ComputeStats()
	fmt.Printf("workload: %d objects (%s total), %d predefined requests, mean request %s\n",
		stats.NumObjects, units.FormatBytesSI(stats.TotalBytes), stats.NumRequests,
		units.FormatBytesSI(int64(stats.MeanRequestBytes)))
	fmt.Printf("system:   %d libraries x %d drives x %d tapes of %s at %s\n",
		hw.Libraries, hw.DrivesPerLib, hw.TapesPerLib,
		units.FormatBytesSI(hw.Capacity), units.FormatRate(hw.TransferRate))

	pl, err := paralleltape.Place(hw, scheme, w)
	if err != nil {
		return err
	}
	fmt.Printf("placement: %s using %d tapes\n\n", pl.Scheme, pl.TapesUsed)
	if o.describe {
		d, err := placement.Describe(pl, w, hw)
		if err != nil {
			return err
		}
		if err := d.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	opts := tapesys.Options{Shards: o.shards, RequestTimeout: o.timeout, RetryBackoff: o.backoff}
	if o.faults {
		fseed := o.faultSeed
		if fseed == 0 {
			fseed = o.seed ^ 0xFA17
		}
		opts.Faults = &faults.Profile{
			Seed:              fseed,
			DriveMTBF:         o.mtbf,
			DriveRepair:       dist.Exponential{Mean: o.repair},
			RobotMTBF:         10 * o.mtbf,
			RobotRepair:       dist.Exponential{Mean: o.repair / 2},
			MediaErrorPerRead: o.mediaError,
		}
		fmt.Printf("faults:   drive MTBF %.0fs (repair %.0fs), robot MTBF %.0fs, media error %.2g/read, seed %d\n",
			o.mtbf, o.repair, 10*o.mtbf, o.mediaError, fseed)
	}
	sys, err := tapesys.NewWithOptions(hw, pl, opts)
	if err != nil {
		return err
	}
	defer sys.Close()

	// Assemble the recorder stack: a streaming exporter for -trace, an
	// in-memory buffer for -report / -events, and the live-telemetry
	// collector for -metrics-addr / -progress. One Tee feeds them all —
	// the collector consumes the same event stream as the exporters, so
	// enabling telemetry cannot change what the exporters see.
	var recs trace.Tee
	if traceSink != nil {
		recs = append(recs, traceSink)
	}
	var buf *trace.Buffer
	if o.report != "" || o.events > 0 || o.explain > 0 {
		limit := 0
		if o.report == "" && o.explain == 0 {
			limit = o.events
		}
		buf = trace.NewBuffer(limit)
		recs = append(recs, buf)
	}
	if o.metricsAddr != "" || o.progress > 0 {
		reg := telemetry.NewRegistry()
		col := telemetry.NewCollector(reg)
		col.RequestsTarget.Set(int64(o.requests))
		recs = append(recs, col)
		if o.metricsAddr != "" {
			srv, err := telemetry.Serve(o.metricsAddr, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "tapesim: telemetry on http://%s/metrics\n", srv.Addr())
			if o.notifyServe != nil {
				o.notifyServe(srv.Addr())
			}
		}
		if o.progress > 0 {
			prog := telemetry.StartProgress(telemetry.ProgressOptions{
				Interval: o.progress, Collector: col, Label: "tapesim",
			})
			defer prog.Stop()
		}
	}
	if len(recs) > 0 {
		sys.SetRecorder(recs)
	}

	stream, err := workload.NewRequestStream(w, rng.New(o.seed^0xDEADBEEF))
	if err != nil {
		return err
	}
	if o.csv {
		fmt.Println("request,bytes,response_s,switch_s,seek_s,transfer_s,bandwidth_MBps,switches,tapes,drives")
	}
	ms := make([]tapesys.RequestMetrics, 0, o.requests)
	perRequest := func(mtr tapesys.RequestMetrics) error {
		ms = append(ms, mtr)
		if o.csv {
			fmt.Printf("%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%d,%d,%d\n",
				mtr.Request, mtr.Bytes, mtr.Response, mtr.Switch, mtr.Seek, mtr.Transfer,
				mtr.Bandwidth()/1e6, mtr.Switches, mtr.TapesTouched, mtr.DrivesUsed)
		} else if o.verbose {
			fmt.Printf("req %3d: %8s in %9s  (bw %s, %d switches, %d tapes, %d drives)\n",
				mtr.Request, units.FormatBytesSI(mtr.Bytes), units.FormatSeconds(mtr.Response),
				units.FormatRate(mtr.Bandwidth()), mtr.Switches, mtr.TapesTouched, mtr.DrivesUsed)
		}
		return nil
	}
	if o.pipeline {
		i := 0
		err = sys.SubmitStream(
			func() *paralleltape.Request {
				if i >= o.requests {
					return nil
				}
				if o.midRun != nil && i == o.requests/2 {
					o.midRun()
				}
				i++
				return stream.Next()
			},
			perRequest,
		)
		if err != nil {
			return err
		}
	} else {
		for i := 0; i < o.requests; i++ {
			if o.midRun != nil && i == o.requests/2 {
				o.midRun()
			}
			mtr, err := sys.Submit(stream.Next())
			if err != nil {
				return err
			}
			if err := perRequest(mtr); err != nil {
				return err
			}
		}
	}
	agg := metrics.AggregateSession(ms)
	if !o.csv {
		fmt.Println()
		fmt.Printf("requests simulated        %d (%s transferred)\n", agg.Requests, units.FormatBytesSI(agg.Bytes))
		fmt.Printf("effective bandwidth       %s (aggregate %s)\n",
			units.FormatRate(agg.MeanBandwidth), units.FormatRate(agg.AggBandwidth))
		fmt.Printf("avg response time         %s\n", units.FormatSeconds(agg.MeanResponse))
		fmt.Printf("avg tape switch time      %s\n", units.FormatSeconds(agg.MeanSwitch))
		fmt.Printf("avg data seek time        %s\n", units.FormatSeconds(agg.MeanSeek))
		fmt.Printf("avg data transfer time    %s\n", units.FormatSeconds(agg.MeanTransfer))
		fmt.Printf("avg switches per request  %.2f\n", agg.MeanSwitches)
		fmt.Printf("avg tapes per request     %.2f\n", agg.MeanTapes)
		fmt.Printf("avg drives per request    %.2f\n", agg.MeanDrivesUsed)
		fmt.Printf("p95 response time         %s\n", units.FormatSeconds(agg.Response.P95))
		if o.faults || o.timeout > 0 {
			fmt.Printf("availability              %.2f%% (%s delivered)\n",
				100*agg.Availability, units.FormatBytesSI(agg.BytesServed))
			fmt.Printf("goodput                   %s\n", units.FormatRate(agg.MeanGoodput))
			fmt.Printf("retries                   %.2f/request (%d groups failed, %d media errors)\n",
				agg.MeanRetries, agg.FailedGroups, agg.MediaErrors)
			fmt.Printf("requests timed out        %d\n", agg.TimedOut)
		}
	}
	if o.estimate {
		mod, err := paralleltape.NewAnalyticModel(hw, pl)
		if err != nil {
			return err
		}
		est, err := mod.EstimateSession(w)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Printf("analytic estimate (no simulation, stationary mounts):\n")
		fmt.Printf("  response %s  switch %s  seek %s  transfer %s  bandwidth %s\n",
			units.FormatSeconds(est.Response), units.FormatSeconds(est.Switch),
			units.FormatSeconds(est.Seek), units.FormatSeconds(est.Transfer),
			units.FormatRate(est.Bandwidth()))
		fmt.Printf("  hardware ceiling %s\n", units.FormatRate(paralleltape.IdealBandwidth(hw)))
	}
	if o.util {
		fmt.Println()
		if err := sys.WriteUtilization(os.Stdout); err != nil {
			return err
		}
	}
	if o.events > 0 && buf != nil {
		n := o.events
		if n > len(buf.Events) {
			n = len(buf.Events)
		}
		fmt.Println()
		if err := trace.WriteText(os.Stdout, buf.Events[:n]); err != nil {
			return err
		}
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			return err
		}
	}
	if o.explain > 0 && buf != nil {
		sess, err := spans.Build(buf.Events)
		if err != nil {
			return fmt.Errorf("explain: %v", err)
		}
		fmt.Printf("\nslowest %d requests (critical-path attribution):\n\n", o.explain)
		if err := spans.WriteSlowest(os.Stdout, sess, o.explain); err != nil {
			return err
		}
	}
	if o.report != "" && buf != nil {
		tl := metrics.BuildTimeline(buf.Events)
		if o.report == "-" {
			fmt.Println()
		}
		if reportCSV {
			return tl.WriteCSV(reportOut)
		}
		return tl.WriteText(reportOut)
	}
	return nil
}
