// Command tapesim runs a single parallel-tape-storage simulation: it
// generates (or loads) a workload, places it with a chosen scheme, submits
// a stream of requests, and prints the paper's §6 metrics.
//
// Examples:
//
//	tapesim -scheme parallel-batch -m 4 -requests 200
//	tapesim -scheme object-probability -alpha 0.7 -libraries 2
//	tapesim -scheme cluster-probability -trace workload.json -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"paralleltape"
	"paralleltape/internal/metrics"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

func main() {
	var (
		schemeName = flag.String("scheme", "parallel-batch",
			"placement scheme: parallel-batch, object-probability, cluster-probability, round-robin, online")
		m         = flag.Int("m", 4, "switch drives per library (parallel-batch/online)")
		epochs    = flag.Int("epochs", 4, "arrival waves for the online scheme")
		requests  = flag.Int("requests", 200, "number of simulated request submissions")
		seed      = flag.Uint64("seed", 20060815, "master random seed")
		alpha     = flag.Float64("alpha", 0.3, "Zipf request popularity skew")
		objects   = flag.Int("objects", 30000, "object population")
		nRequests = flag.Int("predefined", 300, "predefined request count")
		libraries = flag.Int("libraries", 3, "number of tape libraries")
		drives    = flag.Int("drives", 8, "drives per library")
		tapes     = flag.Int("tapes", 80, "tapes per library")
		capacity  = flag.String("capacity", "400GB", "cartridge capacity")
		rate      = flag.String("rate", "80MB", "native transfer rate (bytes/s)")
		target    = flag.String("request-size", "", "rescale object sizes to this mean request size (e.g. 213GB)")
		trace     = flag.String("trace", "", "load workload from a JSON trace instead of generating")
		csv       = flag.Bool("csv", false, "emit per-request metrics as CSV")
		verbose   = flag.Bool("v", false, "print per-request lines")
		util      = flag.Bool("utilization", false, "print drive/robot utilization after the run")
		describe  = flag.Bool("describe", false, "print placement diagnostics before simulating")
		estimate  = flag.Bool("estimate", false, "print the analytic (no-simulation) estimate alongside")
		traceN    = flag.Int("events", 0, "print the first N simulator events")
	)
	flag.Parse()

	if err := run(*schemeName, *m, *epochs, *requests, *seed, *alpha, *objects, *nRequests,
		*libraries, *drives, *tapes, *capacity, *rate, *target, *trace, *csv, *verbose,
		*util, *estimate, *describe, *traceN); err != nil {
		fmt.Fprintln(os.Stderr, "tapesim:", err)
		os.Exit(1)
	}
}

func run(schemeName string, m, epochs, requests int, seed uint64, alpha float64,
	objects, nRequests, libraries, drives, tapes int,
	capacityStr, rateStr, targetStr, trace string, csv, verbose, util, estimate, describe bool,
	traceN int) error {

	hw := paralleltape.DefaultHardware()
	hw.Libraries = libraries
	hw.DrivesPerLib = drives
	hw.TapesPerLib = tapes
	var err error
	if hw.Capacity, err = units.ParseBytes(capacityStr); err != nil {
		return err
	}
	rateBytes, err := units.ParseBytes(rateStr)
	if err != nil {
		return err
	}
	hw.TransferRate = float64(rateBytes)
	if err := hw.Validate(); err != nil {
		return err
	}

	var w *model.Workload
	if trace != "" {
		f, err := os.Open(trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if w, err = model.ReadJSON(f); err != nil {
			return err
		}
	} else {
		p := paralleltape.DefaultWorkloadParams()
		p.NumObjects = objects
		p.NumRequests = nRequests
		p.Alpha = alpha
		if w, err = paralleltape.GenerateWorkload(p, seed); err != nil {
			return err
		}
	}
	if targetStr != "" {
		t, err := units.ParseBytes(targetStr)
		if err != nil {
			return err
		}
		if _, err := paralleltape.TargetMeanRequestBytes(w, float64(t)); err != nil {
			return err
		}
	}

	var scheme placement.Scheme
	switch schemeName {
	case "parallel-batch":
		scheme = placement.ParallelBatch{M: m}
	case "object-probability":
		scheme = placement.ObjectProbability{}
	case "cluster-probability":
		scheme = placement.ClusterProbability{}
	case "round-robin":
		scheme = placement.RoundRobin{}
	case "online":
		scheme = placement.Online{Epochs: epochs, M: m}
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}

	stats := w.ComputeStats()
	fmt.Printf("workload: %d objects (%s total), %d predefined requests, mean request %s\n",
		stats.NumObjects, units.FormatBytesSI(stats.TotalBytes), stats.NumRequests,
		units.FormatBytesSI(int64(stats.MeanRequestBytes)))
	fmt.Printf("system:   %d libraries x %d drives x %d tapes of %s at %s\n",
		hw.Libraries, hw.DrivesPerLib, hw.TapesPerLib,
		units.FormatBytesSI(hw.Capacity), units.FormatRate(hw.TransferRate))

	pl, err := paralleltape.Place(hw, scheme, w)
	if err != nil {
		return err
	}
	fmt.Printf("placement: %s using %d tapes\n\n", pl.Scheme, pl.TapesUsed)
	if describe {
		d, err := placement.Describe(pl, w, hw)
		if err != nil {
			return err
		}
		if err := d.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	sys, err := tapesys.New(hw, pl)
	if err != nil {
		return err
	}
	var tr *tapesys.Trace
	if traceN > 0 {
		tr = sys.EnableTrace(traceN)
	}
	stream, err := workload.NewRequestStream(w, rng.New(seed^0xDEADBEEF))
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("request,bytes,response_s,switch_s,seek_s,transfer_s,bandwidth_MBps,switches,tapes,drives")
	}
	ms := make([]tapesys.RequestMetrics, 0, requests)
	for i := 0; i < requests; i++ {
		mtr, err := sys.Submit(stream.Next())
		if err != nil {
			return err
		}
		ms = append(ms, mtr)
		if csv {
			fmt.Printf("%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%d,%d,%d\n",
				mtr.Request, mtr.Bytes, mtr.Response, mtr.Switch, mtr.Seek, mtr.Transfer,
				mtr.Bandwidth()/1e6, mtr.Switches, mtr.TapesTouched, mtr.DrivesUsed)
		} else if verbose {
			fmt.Printf("req %3d: %8s in %9s  (bw %s, %d switches, %d tapes, %d drives)\n",
				mtr.Request, units.FormatBytesSI(mtr.Bytes), units.FormatSeconds(mtr.Response),
				units.FormatRate(mtr.Bandwidth()), mtr.Switches, mtr.TapesTouched, mtr.DrivesUsed)
		}
	}
	agg := metrics.AggregateSession(ms)
	if !csv {
		fmt.Println()
		fmt.Printf("requests simulated        %d (%s transferred)\n", agg.Requests, units.FormatBytesSI(agg.Bytes))
		fmt.Printf("effective bandwidth       %s (aggregate %s)\n",
			units.FormatRate(agg.MeanBandwidth), units.FormatRate(agg.AggBandwidth))
		fmt.Printf("avg response time         %s\n", units.FormatSeconds(agg.MeanResponse))
		fmt.Printf("avg tape switch time      %s\n", units.FormatSeconds(agg.MeanSwitch))
		fmt.Printf("avg data seek time        %s\n", units.FormatSeconds(agg.MeanSeek))
		fmt.Printf("avg data transfer time    %s\n", units.FormatSeconds(agg.MeanTransfer))
		fmt.Printf("avg switches per request  %.2f\n", agg.MeanSwitches)
		fmt.Printf("avg tapes per request     %.2f\n", agg.MeanTapes)
		fmt.Printf("avg drives per request    %.2f\n", agg.MeanDrivesUsed)
		fmt.Printf("p95 response time         %s\n", units.FormatSeconds(agg.Response.P95))
	}
	if estimate {
		mod, err := paralleltape.NewAnalyticModel(hw, pl)
		if err != nil {
			return err
		}
		est, err := mod.EstimateSession(w)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Printf("analytic estimate (no simulation, stationary mounts):\n")
		fmt.Printf("  response %s  switch %s  seek %s  transfer %s  bandwidth %s\n",
			units.FormatSeconds(est.Response), units.FormatSeconds(est.Switch),
			units.FormatSeconds(est.Seek), units.FormatSeconds(est.Transfer),
			units.FormatRate(est.Bandwidth()))
		fmt.Printf("  hardware ceiling %s\n", units.FormatRate(paralleltape.IdealBandwidth(hw)))
	}
	if util {
		fmt.Println()
		if err := sys.WriteUtilization(os.Stdout); err != nil {
			return err
		}
	}
	if tr != nil {
		fmt.Println()
		if err := tr.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
