package main

import (
	"os"
	"path/filepath"
	"testing"
)

// runArgs bundles run()'s long parameter list with small-workload defaults.
func runSmall(t *testing.T, scheme string, mutate func(args *simArgs)) error {
	t.Helper()
	a := &simArgs{
		scheme: scheme, m: 2, epochs: 2, requests: 5, seed: 1, alpha: 0.3,
		objects: 300, nRequests: 15, libraries: 2, drives: 4, tapes: 16,
		capacity: "20GB", rate: "80MB",
	}
	if mutate != nil {
		mutate(a)
	}
	return run(a.scheme, a.m, a.epochs, a.requests, a.seed, a.alpha,
		a.objects, a.nRequests, a.libraries, a.drives, a.tapes,
		a.capacity, a.rate, a.target, a.trace, a.csv, a.verbose,
		a.util, a.estimate, a.describe, a.traceN)
}

type simArgs struct {
	scheme                        string
	m, epochs, requests           int
	seed                          uint64
	alpha                         float64
	objects, nRequests, libraries int
	drives, tapes                 int
	capacity, rate, target, trace string
	csv, verbose, util, estimate  bool
	describe                      bool
	traceN                        int
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{
		"parallel-batch", "object-probability", "cluster-probability", "round-robin", "online",
	} {
		if err := runSmall(t, scheme, nil); err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if err := runSmall(t, "nope", nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunFlagsVariants(t *testing.T) {
	if err := runSmall(t, "parallel-batch", func(a *simArgs) {
		a.csv = true
	}); err != nil {
		t.Errorf("csv: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(a *simArgs) {
		a.verbose = true
		a.util = true
		a.estimate = true
		a.describe = true
		a.traceN = 5
		a.target = "30GB"
	}); err != nil {
		t.Errorf("verbose/util/estimate/trace: %v", err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := runSmall(t, "parallel-batch", func(a *simArgs) { a.capacity = "12XB" }); err == nil {
		t.Error("bad capacity accepted")
	}
	if err := runSmall(t, "parallel-batch", func(a *simArgs) { a.rate = "" }); err == nil {
		t.Error("bad rate accepted")
	}
	if err := runSmall(t, "parallel-batch", func(a *simArgs) { a.target = "zzz" }); err == nil {
		t.Error("bad target accepted")
	}
	if err := runSmall(t, "parallel-batch", func(a *simArgs) { a.libraries = 0 }); err == nil {
		t.Error("zero libraries accepted")
	}
}

func TestRunFromTrace(t *testing.T) {
	// Write a tiny trace and replay it.
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	raw := `{"objects":[{"id":0,"size":1000000000},{"id":1,"size":2000000000}],` +
		`"requests":[{"id":0,"prob":1,"objects":[0,1]}]}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSmall(t, "cluster-probability", func(a *simArgs) {
		a.trace = path
		a.requests = 3
	}); err != nil {
		t.Errorf("trace replay: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(a *simArgs) { a.trace = filepath.Join(dir, "missing.json") }); err == nil {
		t.Error("missing trace accepted")
	}
}
