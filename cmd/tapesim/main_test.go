package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runSmall drives run() with small-workload defaults, optionally mutated.
func runSmall(t *testing.T, scheme string, mutate func(o *options)) error {
	t.Helper()
	o := options{
		scheme: scheme, m: 2, epochs: 2, requests: 5, seed: 1, alpha: 0.3,
		objects: 300, nRequests: 15, libraries: 2, drives: 4, tapes: 16,
		capacity: "20GB", rate: "80MB",
	}
	if mutate != nil {
		mutate(&o)
	}
	return run(o)
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{
		"parallel-batch", "object-probability", "cluster-probability", "round-robin", "online",
	} {
		if err := runSmall(t, scheme, nil); err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if err := runSmall(t, "nope", nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunFlagsVariants(t *testing.T) {
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.csv = true
	}); err != nil {
		t.Errorf("csv: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.verbose = true
		o.util = true
		o.estimate = true
		o.describe = true
		o.events = 5
		o.target = "30GB"
	}); err != nil {
		t.Errorf("verbose/util/estimate/events: %v", err)
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

// TestRunPipelineMatchesSubmit checks the -pipeline flag changes nothing
// observable: the per-request CSV stream and session summary are
// byte-identical with and without plan-ahead submission, sharded or not.
func TestRunPipelineMatchesSubmit(t *testing.T) {
	for _, shards := range []int{0, 2} {
		plain := captureStdout(t, func() error {
			return runSmall(t, "parallel-batch", func(o *options) {
				o.csv = true
				o.shards = shards
			})
		})
		piped := captureStdout(t, func() error {
			return runSmall(t, "parallel-batch", func(o *options) {
				o.csv = true
				o.shards = shards
				o.pipeline = true
			})
		})
		if plain != piped {
			t.Errorf("shards=%d: -pipeline output diverges:\n--- plain ---\n%s--- pipeline ---\n%s",
				shards, plain, piped)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := runSmall(t, "parallel-batch", func(o *options) { o.capacity = "12XB" }); err == nil {
		t.Error("bad capacity accepted")
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.rate = "" }); err == nil {
		t.Error("bad rate accepted")
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.target = "zzz" }); err == nil {
		t.Error("bad target accepted")
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.libraries = 0 }); err == nil {
		t.Error("zero libraries accepted")
	}
}

func TestRunFromWorkloadTrace(t *testing.T) {
	// Write a tiny workload trace and replay it.
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	raw := `{"objects":[{"id":0,"size":1000000000},{"id":1,"size":2000000000}],` +
		`"requests":[{"id":0,"prob":1,"objects":[0,1]}]}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSmall(t, "cluster-probability", func(o *options) {
		o.workload = path
		o.requests = 3
	}); err != nil {
		t.Errorf("workload replay: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.workload = filepath.Join(dir, "missing.json") }); err == nil {
		t.Error("missing workload accepted")
	}
}

func TestRunTraceAndReportExports(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "run.jsonl")
	traceCSV := filepath.Join(dir, "run.csv")
	reportTxt := filepath.Join(dir, "report.txt")
	reportCSV := filepath.Join(dir, "report.csv")

	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = jsonl
		o.report = reportTxt
	}); err != nil {
		t.Fatalf("jsonl trace + text report: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = traceCSV
		o.report = reportCSV
	}); err != nil {
		t.Fatalf("csv trace + csv report: %v", err)
	}

	tr, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(tr, []byte(`{"t":0,"kind":"submit"`)) {
		t.Errorf("jsonl trace does not start with a submit event: %.80s", tr)
	}
	for _, frag := range []string{`"kind":"complete"`, `"kind":"serve-end"`} {
		if !bytes.Contains(tr, []byte(frag)) {
			t.Errorf("jsonl trace missing %s", frag)
		}
	}
	cs, err := os.ReadFile(traceCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(cs, []byte("t,kind,lib,drive,tape,req,span,bytes,dur,queue,name\n")) {
		t.Errorf("csv trace header wrong: %.80s", cs)
	}
	rep, err := os.ReadFile(reportTxt)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"run:", "components:", "per-drive timeline", "per-robot timeline",
		"per-phase breakdown (critical path)"} {
		if !strings.Contains(string(rep), frag) {
			t.Errorf("text report missing %q:\n%s", frag, rep)
		}
	}
	repCSV, err := os.ReadFile(reportCSV)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"section,key,value", "run,requests,5", "drive,", "robot,",
		"phase,name,total_s", "phase,seek,"} {
		if !strings.Contains(string(repCSV), frag) {
			t.Errorf("csv report missing %q:\n%s", frag, repCSV)
		}
	}
}

func TestRunCSVDetectionCaseInsensitive(t *testing.T) {
	dir := t.TempDir()
	traceUpper := filepath.Join(dir, "RUN.CSV")
	reportUpper := filepath.Join(dir, "REPORT.Csv")
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = traceUpper
		o.report = reportUpper
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := os.ReadFile(traceUpper)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(tr, []byte("t,kind,lib,drive,tape,req,span,bytes,dur,queue,name\n")) {
		t.Errorf("uppercase .CSV trace not written as CSV: %.80s", tr)
	}
	rep, err := os.ReadFile(reportUpper)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "section,key,value") {
		t.Errorf("mixed-case .Csv report not written as CSV: %.80s", rep)
	}
}

// TestRunExplain drives -explain and checks the causal stories land on
// stdout: one block per requested request, each with a critical path.
func TestRunExplain(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := runSmall(t, "parallel-batch", func(o *options) { o.explain = 2 })
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	text := string(out)
	if got := strings.Count(text, "critical path:"); got != 2 {
		t.Errorf("-explain 2 printed %d critical paths:\n%s", got, text)
	}
	for _, frag := range []string{"slowest 2 requests", "blame:", "seek"} {
		if !strings.Contains(text, frag) {
			t.Errorf("-explain output missing %q:\n%s", frag, text)
		}
	}
}

func TestRunFailsFastOnUnwritableOutputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "no-such-dir", "out.jsonl")
	start := time.Now()
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = bad
		o.requests = 5000 // a full run at this size takes far longer than the fail-fast budget
	}); err == nil {
		t.Error("unwritable -trace path accepted")
	}
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.report = filepath.Join(dir, "no-such-dir", "report.txt")
		o.requests = 5000
	}); err == nil {
		t.Error("unwritable -report path accepted")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("output validation took %v; should fail before simulating", elapsed)
	}
}

// TestRunMetricsMidRunScrape is the acceptance check for -metrics-addr: a
// scrape taken while the simulation is mid-flight must return well-formed
// Prometheus text and expvar JSON that reflect partial progress.
func TestRunMetricsMidRunScrape(t *testing.T) {
	var addr string
	scraped := false
	err := runSmall(t, "parallel-batch", func(o *options) {
		o.requests = 20
		o.metricsAddr = "127.0.0.1:0"
		o.notifyServe = func(a string) { addr = a }
		o.midRun = func() {
			scraped = true
			if addr == "" {
				t.Fatal("midRun fired before notifyServe")
			}
			prom := httpGet(t, "http://"+addr+"/metrics")
			for _, frag := range []string{
				"# TYPE tapesim_events_total counter",
				"tapesim_requests_target 20",
				"tapesim_requests_completed_total 10",
				"tapesim_response_seconds_count 10",
			} {
				if !strings.Contains(prom, frag) {
					t.Errorf("mid-run /metrics missing %q:\n%s", frag, prom)
				}
			}
			var vars map[string]any
			if err := json.Unmarshal([]byte(httpGet(t, "http://"+addr+"/debug/vars")), &vars); err != nil {
				t.Fatalf("mid-run /debug/vars is not valid JSON: %v", err)
			}
			tele, ok := vars["telemetry"].(map[string]any)
			if !ok {
				t.Fatalf("expvar missing telemetry object: %v", vars["telemetry"])
			}
			if got := tele["tapesim_requests_completed_total"]; got != float64(10) {
				t.Errorf("expvar completed = %v, want 10", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !scraped {
		t.Fatal("midRun hook never fired")
	}
}

// TestRunTelemetryDeterminism is the determinism guard: enabling telemetry
// must not change simulation results — the exported trace bytes for the
// same seed are identical with and without the collector attached.
func TestRunTelemetryDeterminism(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.jsonl")
	traced := filepath.Join(dir, "telemetry.jsonl")
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = plain
	}); err != nil {
		t.Fatal(err)
	}
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = traced
		o.metricsAddr = "127.0.0.1:0"
		o.progress = time.Hour // collector + progress goroutine attached, no output expected
	}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(traced)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Error("trace bytes differ when telemetry is enabled; collector must be passive")
	}
}

// httpGet fetches a URL and returns the body, failing the test on any error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
