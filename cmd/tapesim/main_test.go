package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runSmall drives run() with small-workload defaults, optionally mutated.
func runSmall(t *testing.T, scheme string, mutate func(o *options)) error {
	t.Helper()
	o := options{
		scheme: scheme, m: 2, epochs: 2, requests: 5, seed: 1, alpha: 0.3,
		objects: 300, nRequests: 15, libraries: 2, drives: 4, tapes: 16,
		capacity: "20GB", rate: "80MB",
	}
	if mutate != nil {
		mutate(&o)
	}
	return run(o)
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{
		"parallel-batch", "object-probability", "cluster-probability", "round-robin", "online",
	} {
		if err := runSmall(t, scheme, nil); err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if err := runSmall(t, "nope", nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunFlagsVariants(t *testing.T) {
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.csv = true
	}); err != nil {
		t.Errorf("csv: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.verbose = true
		o.util = true
		o.estimate = true
		o.describe = true
		o.events = 5
		o.target = "30GB"
	}); err != nil {
		t.Errorf("verbose/util/estimate/events: %v", err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := runSmall(t, "parallel-batch", func(o *options) { o.capacity = "12XB" }); err == nil {
		t.Error("bad capacity accepted")
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.rate = "" }); err == nil {
		t.Error("bad rate accepted")
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.target = "zzz" }); err == nil {
		t.Error("bad target accepted")
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.libraries = 0 }); err == nil {
		t.Error("zero libraries accepted")
	}
}

func TestRunFromWorkloadTrace(t *testing.T) {
	// Write a tiny workload trace and replay it.
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	raw := `{"objects":[{"id":0,"size":1000000000},{"id":1,"size":2000000000}],` +
		`"requests":[{"id":0,"prob":1,"objects":[0,1]}]}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSmall(t, "cluster-probability", func(o *options) {
		o.workload = path
		o.requests = 3
	}); err != nil {
		t.Errorf("workload replay: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(o *options) { o.workload = filepath.Join(dir, "missing.json") }); err == nil {
		t.Error("missing workload accepted")
	}
}

func TestRunTraceAndReportExports(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "run.jsonl")
	traceCSV := filepath.Join(dir, "run.csv")
	reportTxt := filepath.Join(dir, "report.txt")
	reportCSV := filepath.Join(dir, "report.csv")

	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = jsonl
		o.report = reportTxt
	}); err != nil {
		t.Fatalf("jsonl trace + text report: %v", err)
	}
	if err := runSmall(t, "parallel-batch", func(o *options) {
		o.tracePath = traceCSV
		o.report = reportCSV
	}); err != nil {
		t.Fatalf("csv trace + csv report: %v", err)
	}

	tr, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(tr, []byte(`{"t":0,"kind":"submit"`)) {
		t.Errorf("jsonl trace does not start with a submit event: %.80s", tr)
	}
	for _, frag := range []string{`"kind":"complete"`, `"kind":"serve-end"`} {
		if !bytes.Contains(tr, []byte(frag)) {
			t.Errorf("jsonl trace missing %s", frag)
		}
	}
	cs, err := os.ReadFile(traceCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(cs, []byte("t,kind,lib,drive,tape,req,bytes,dur,queue,name\n")) {
		t.Errorf("csv trace header wrong: %.80s", cs)
	}
	rep, err := os.ReadFile(reportTxt)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"run:", "components:", "per-drive timeline", "per-robot timeline"} {
		if !strings.Contains(string(rep), frag) {
			t.Errorf("text report missing %q:\n%s", frag, rep)
		}
	}
	repCSV, err := os.ReadFile(reportCSV)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"section,key,value", "run,requests,5", "drive,", "robot,"} {
		if !strings.Contains(string(repCSV), frag) {
			t.Errorf("csv report missing %q:\n%s", frag, repCSV)
		}
	}
}
