// Command tapetrace analyzes a structured event trace exported by tapesim
// -trace: it reconstructs the causal span tree of every request
// (internal/spans) and answers "where did the time go?" — per-phase
// critical-path breakdowns, the slowest requests with their full causal
// story, and queue-depth / component-busy time series.
//
// The analysis is deterministic: the same trace file always renders the
// same bytes, and traces of the same run captured at different shard
// counts render identical output (docs/OBSERVABILITY.md).
//
// Usage:
//
//	tapetrace breakdown [-csv] trace.jsonl
//	tapetrace slowest [-n 5] trace.jsonl
//	tapetrace timeline trace.jsonl
//
// A path of "-" reads the trace from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paralleltape/internal/spans"
	"paralleltape/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "tapetrace:", err)
		os.Exit(1)
	}
}

// usage is the top-level help text.
const usage = `usage: tapetrace <command> [flags] <trace.jsonl>

commands:
  breakdown   per-phase critical-path latency attribution for the whole run
  slowest     the slowest requests, each with its critical path
  timeline    queue-depth and component-busy time series as CSV

A trace path of "-" reads from stdin. Traces are the JSONL files written
by tapesim -trace (docs/OBSERVABILITY.md).`

// run dispatches the subcommand; out and stdin are injectable for tests.
func run(args []string, out io.Writer, stdin io.Reader) error {
	if len(args) < 1 {
		return fmt.Errorf("missing command\n%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "breakdown":
		fs := flag.NewFlagSet("breakdown", flag.ContinueOnError)
		csv := fs.Bool("csv", false, "emit the breakdown as CSV")
		s, err := parseAndBuild(fs, rest, stdin)
		if err != nil {
			return err
		}
		b := spans.Aggregate(s)
		if *csv {
			return spans.WriteBreakdownCSV(out, b)
		}
		return spans.WriteBreakdown(out, b)
	case "slowest":
		fs := flag.NewFlagSet("slowest", flag.ContinueOnError)
		n := fs.Int("n", 5, "number of requests to show")
		s, err := parseAndBuild(fs, rest, stdin)
		if err != nil {
			return err
		}
		return spans.WriteSlowest(out, s, *n)
	case "timeline":
		fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
		s, err := parseAndBuild(fs, rest, stdin)
		if err != nil {
			return err
		}
		return spans.WriteTimelineCSV(out, s)
	case "help", "-h", "-help", "--help":
		fmt.Fprintln(out, usage)
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

// parseAndBuild parses subcommand flags, reads the trace argument, and
// reconstructs the session.
func parseAndBuild(fs *flag.FlagSet, args []string, stdin io.Reader) (*spans.Session, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one trace file argument\n%s", usage)
	}
	path := fs.Arg(0)
	var r io.Reader
	if path == "-" {
		r = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ParseJSONL(r)
	if err != nil {
		return nil, err
	}
	return spans.Build(events)
}
