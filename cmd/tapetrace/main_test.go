package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/trace"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// genTrace runs a small fixed simulation through the public API and
// writes its JSONL trace to a temp file. Same seed, same bytes — the
// breakdown golden below pins the analysis of this exact run.
func genTrace(t *testing.T) string {
	t.Helper()
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 20
	hw.Capacity = 32 * units.MB
	w, err := workload.Generate(workload.Params{
		NumObjects:  300,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   4,
		MaxReqLen:   12,
		ReqLenShape: 1,
		Alpha:       0.3,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := placement.ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tapesys.New(hw, pr)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.EnableTrace(0)
	stream, err := workload.NewRequestStream(w, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := s.Submit(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := trace.WriteJSONL(&out, buf.Events); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// analyze runs the CLI and returns its output.
func analyze(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, nil); err != nil {
		t.Fatalf("tapetrace %v: %v", args, err)
	}
	return out.String()
}

func TestBreakdownGolden(t *testing.T) {
	got := analyze(t, "breakdown", genTrace(t))
	golden := filepath.Join("testdata", "breakdown_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden breakdown updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("breakdown differs from golden — the analysis output changed.\n"+
			"If intentional, regenerate with UPDATE_GOLDEN=1.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestBreakdownCSV(t *testing.T) {
	out := analyze(t, "breakdown", "-csv", genTrace(t))
	if !strings.HasPrefix(out, "phase,total_s,share,mean_s,p50_s,p95_s,p99_s,max_s\n") {
		t.Errorf("csv header wrong: %.80s", out)
	}
	for _, frag := range []string{"\nqueue,", "\ntransfer,", "\nrobot-move,"} {
		if !strings.Contains(out, frag) {
			t.Errorf("csv breakdown missing %q:\n%s", frag, out)
		}
	}
}

func TestSlowest(t *testing.T) {
	out := analyze(t, "slowest", "-n", "2", genTrace(t))
	if got := strings.Count(out, "request "); got != 2 {
		t.Errorf("slowest -n 2 printed %d requests:\n%s", got, out)
	}
	for _, frag := range []string{"critical path:", "blame:", "serve", "tape "} {
		if !strings.Contains(out, frag) {
			t.Errorf("slowest output missing %q:\n%s", frag, out)
		}
	}
}

func TestTimeline(t *testing.T) {
	out := analyze(t, "timeline", genTrace(t))
	if !strings.HasPrefix(out, "series,name,t,depth,start,end\n") {
		t.Errorf("timeline header wrong: %.80s", out)
	}
	for _, frag := range []string{"busy,L0.D", "busy,robot-0,"} {
		if !strings.Contains(out, frag) {
			t.Errorf("timeline missing %q:\n%s", frag, out)
		}
	}
}

func TestStdinDash(t *testing.T) {
	raw, err := os.ReadFile(genTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"breakdown", "-"}, &out, bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "requests: 25") {
		t.Errorf("stdin breakdown wrong:\n%s", out.String())
	}
}

func TestHelp(t *testing.T) {
	out := analyze(t, "help")
	for _, frag := range []string{"breakdown", "slowest", "timeline"} {
		if !strings.Contains(out, frag) {
			t.Errorf("help missing %q", frag)
		}
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, nil); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"nope", "x.jsonl"}, &out, nil); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"breakdown"}, &out, nil); err == nil {
		t.Error("missing trace argument accepted")
	}
	if err := run([]string{"breakdown", "does-not-exist.jsonl"}, &out, nil); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"breakdown", bad}, &out, nil); err == nil {
		t.Error("malformed trace accepted")
	}
	truncated := filepath.Join(t.TempDir(), "trunc.jsonl")
	if err := os.WriteFile(truncated, []byte(`{"t":0,"kind":"submit","req":0,"bytes":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"breakdown", truncated}, &out, nil); err == nil {
		t.Error("trace with unterminated request accepted")
	}
}

// TestAnalysisDeterminism renders the same trace twice and across the two
// entry paths (file vs stdin); bytes must match.
func TestAnalysisDeterminism(t *testing.T) {
	path := genTrace(t)
	a := analyze(t, "breakdown", path)
	b := analyze(t, "breakdown", path)
	if a != b {
		t.Error("breakdown not deterministic")
	}
}
