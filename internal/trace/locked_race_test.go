package trace

import (
	"sync"
	"testing"
)

// TestLockedConcurrentEmit hammers one Locked recorder from several
// goroutines — the shape of the sharded simulator's persistent shard
// workers all emitting into a single stream — and checks under the race
// detector that every event lands exactly once.
func TestLockedConcurrentEmit(t *testing.T) {
	buf := NewBuffer(0)
	l := NewLocked(buf)
	const workers = 4
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Record(Event{Kind: KindServeEnd, Lib: w, Drive: i, Req: int64(w)})
			}
		}(w)
	}
	wg.Wait()
	if got := buf.Len(); got != workers*perWorker {
		t.Fatalf("recorded %d events, want %d", got, workers*perWorker)
	}
	perLib := make([]int, workers)
	for _, ev := range buf.Events {
		perLib[ev.Lib]++
	}
	for w, n := range perLib {
		if n != perWorker {
			t.Fatalf("worker %d recorded %d events, want %d", w, n, perWorker)
		}
	}
}

// TestLockedEmitWithMidRunReset models the simulator's request cycle with
// persistent shard workers: phases of concurrent emits through a Locked,
// separated by barriers at which the coordinator resets the underlying
// buffer (exactly what System.Reset does between requests, when no shard
// worker is running). The race detector checks the barrier + mutex
// combination establishes the needed happens-before edges in both
// directions — emits before the reset, reset before the next emits.
func TestLockedEmitWithMidRunReset(t *testing.T) {
	buf := NewBuffer(0)
	l := NewLocked(buf)
	if l.Unwrap() != Recorder(buf) {
		t.Fatal("Unwrap did not return the wrapped recorder")
	}
	const workers = 4
	const phases = 50
	const perPhase = 100

	start := make([]chan struct{}, phases)
	for p := range start {
		start[p] = make(chan struct{})
	}
	var wg sync.WaitGroup
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				<-start[p]
				for i := 0; i < perPhase; i++ {
					l.Record(Event{Kind: KindRobot, Lib: w, Drive: p, Queue: i})
				}
				done <- struct{}{}
			}
		}(w)
	}
	for p := 0; p < phases; p++ {
		close(start[p]) // release the phase
		for w := 0; w < workers; w++ {
			<-done // barrier: all workers finished emitting
		}
		if got := buf.Len(); got != workers*perPhase {
			t.Fatalf("phase %d recorded %d events, want %d", p, got, workers*perPhase)
		}
		buf.Reset() // mid-run reset with no emitter running
		if buf.Len() != 0 {
			t.Fatalf("phase %d: buffer not empty after Reset", p)
		}
	}
	wg.Wait()
}
