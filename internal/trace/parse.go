package trace

// Trace re-import: the offline analyzers (cmd/tapetrace, internal/spans)
// consume traces exported earlier in a run or a different process, so the
// schema needs a reader to match the JSONL writer. Parsing restores the
// writer's omission rules exactly — an absent index key becomes -1, an
// absent numeric key becomes 0 — so Parse(Write(events)) round-trips every
// event field.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent mirrors Event for decoding: the index fields are pointers so
// an omitted key (meaning -1 under the schema's omission rules) is
// distinguishable from an explicit 0.
type jsonEvent struct {
	T     float64 `json:"t"`
	Kind  string  `json:"kind"`
	Lib   *int    `json:"lib"`
	Drive *int    `json:"drive"`
	Tape  *int    `json:"tape"`
	Req   *int64  `json:"req"`
	Span  int64   `json:"span"`
	Bytes int64   `json:"bytes"`
	Dur   float64 `json:"dur"`
	Queue int     `json:"queue"`
	Name  string  `json:"name"`
}

// ParseJSONL reads a JSONL trace (as written by JSONLWriter) back into an
// event slice. Blank lines are skipped; a malformed line fails with its
// 1-based line number. Unknown keys are ignored so newer schema revisions
// still parse.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		ev := Event{
			T: je.T, Kind: Kind(je.Kind),
			Lib: -1, Drive: -1, Tape: -1, Req: -1,
			Span: je.Span, Bytes: je.Bytes, Dur: je.Dur, Queue: je.Queue, Name: je.Name,
		}
		if je.Lib != nil {
			ev.Lib = *je.Lib
		}
		if je.Drive != nil {
			ev.Drive = *je.Drive
		}
		if je.Tape != nil {
			ev.Tape = *je.Tape
		}
		if je.Req != nil {
			ev.Req = *je.Req
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}
