package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{T: 0, Kind: KindSubmit, Lib: -1, Drive: -1, Tape: -1, Req: 7, Bytes: 300},
		{T: 1.5, Kind: KindSeek, Lib: 0, Drive: 1, Tape: 3, Req: 7, Span: 4294967297, Dur: 2.25},
		{T: 3.75, Kind: KindResourceWait, Lib: -1, Drive: -1, Tape: -1, Req: -1, Queue: 2, Name: "robot-0"},
		{T: 9, Kind: KindComplete, Lib: -1, Drive: -1, Tape: -1, Req: 7, Bytes: 300, Dur: 9},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// Every line is valid JSON with the documented keys.
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["kind"] != "submit" || first["req"] != float64(7) || first["bytes"] != float64(300) {
		t.Errorf("line 0 fields: %v", first)
	}
	if _, has := first["lib"]; has {
		t.Error("lib=-1 should be omitted")
	}
	var wait map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &wait); err != nil {
		t.Fatal(err)
	}
	if wait["name"] != "robot-0" || wait["queue"] != float64(2) {
		t.Errorf("wait fields: %v", wait)
	}
	if _, has := wait["req"]; has {
		t.Error("req=-1 should be omitted")
	}
}

func TestJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSONL output not byte-stable")
	}
}

func TestCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want header + 4", len(lines))
	}
	if lines[0] != strings.Join(CSVColumns, ",") {
		t.Errorf("header = %q", lines[0])
	}
	for i, line := range lines {
		if got := strings.Count(line, ","); got != len(CSVColumns)-1 {
			t.Errorf("line %d has %d commas: %q", i, got, line)
		}
	}
	if lines[1] != "0,submit,,,,7,,300,,," {
		t.Errorf("submit row = %q", lines[1])
	}
	if lines[2] != "1.5,seek,0,1,3,7,4294967297,,2.25,," {
		t.Errorf("seek row = %q", lines[2])
	}
	if lines[3] != "3.75,resource-wait,,,,,,,,2,robot-0" {
		t.Errorf("wait row = %q", lines[3])
	}
}

func TestParseJSONLRoundTrip(t *testing.T) {
	want := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: parsed %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseJSONLBadLine(t *testing.T) {
	_, err := ParseJSONL(strings.NewReader("{\"t\":0,\"kind\":\"submit\"}\nnot-json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse failure", err)
	}
}

func TestKindsComplete(t *testing.T) {
	ks := Kinds()
	seen := map[Kind]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Errorf("Kinds lists %q twice", k)
		}
		seen[k] = true
	}
	if len(ks) != 21 {
		t.Errorf("Kinds lists %d kinds, want 21 (update the list and this pin together)", len(ks))
	}
}

func TestBufferLimit(t *testing.T) {
	b := NewBuffer(2)
	for _, ev := range sampleEvents() {
		b.Record(ev)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
	b.Record(Event{Kind: KindSubmit})
	if b.Len() != 1 {
		t.Errorf("Len after re-record = %d", b.Len())
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewBuffer(0), NewBuffer(0)
	tee := Tee{a, b}
	for _, ev := range sampleEvents() {
		tee.Record(ev)
	}
	if a.Len() != 4 || b.Len() != 4 {
		t.Errorf("tee lengths: %d, %d", a.Len(), b.Len())
	}
}

func TestCountByKind(t *testing.T) {
	m := CountByKind(sampleEvents())
	if m[KindSubmit] != 1 || m[KindSeek] != 1 || m[KindComplete] != 1 {
		t.Errorf("counts: %v", m)
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"submit", "seek", "L0.D1 (tape 3)", "robot-0", "queue=2", "dur=2.25s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("text missing %q:\n%s", frag, out)
		}
	}
}
