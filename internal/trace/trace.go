// Package trace is the structured event-tracing layer of the simulator:
// a stable, documented stream of typed events (see docs/OBSERVABILITY.md)
// emitted by the discrete-event kernel (internal/sim) and the tape-system
// simulator (internal/tapesys).
//
// Tracing is opt-in and zero-cost when disabled: every emit site guards on
// a nil Recorder before building the event, so the simulation hot path
// performs no extra allocations or calls when no recorder is attached.
// When enabled, each event is a flat value (no pointers, no maps) whose
// JSONL encoding is byte-deterministic for a given simulation seed — the
// determinism contract in docs/ARCHITECTURE.md extends to traces: same
// seed, same configuration, same trace bytes.
//
// The package provides three recorders:
//
//   - Buffer: an in-memory ring with an optional event cap, used by the
//     run-report aggregation (internal/metrics) and by tests;
//   - JSONLWriter: a streaming one-JSON-object-per-line exporter
//     (cmd/tapesim -trace out.jsonl);
//   - CSVWriter: a streaming CSV exporter with a fixed column set
//     (cmd/tapesim -trace out.csv).
//
// Recorders compose with Tee for simultaneous export and aggregation.
package trace

import "sync"

// Kind labels one simulator event. The string values are part of the
// exported trace schema documented in docs/OBSERVABILITY.md; do not
// renumber or rename without updating the document and the golden trace.
type Kind string

// Event kinds emitted by internal/tapesys (request lifecycle and the
// mount pipeline) and internal/sim (resource contention and latches).
const (
	// KindSubmit marks a request submission (Req, Bytes set).
	KindSubmit Kind = "submit"
	// KindServeStart marks a drive beginning to seek+read one tape group.
	KindServeStart Kind = "serve-start"
	// KindSeek carries the planned total seek time of one tape-group
	// service in Dur; emitted at serve start.
	KindSeek Kind = "seek"
	// KindTransfer carries the planned total transfer time of one
	// tape-group service in Dur; emitted at serve start.
	KindTransfer Kind = "transfer"
	// KindServeEnd marks a drive finishing a tape group; Dur is the whole
	// service span (seek + transfer).
	KindServeEnd Kind = "serve-end"
	// KindRewind marks the start of a switch chain; Dur is the planned
	// rewind+unload time of the outgoing cartridge. Emitted for every
	// switch — an empty drive carries Tape -1 and Dur 0 — so each switch
	// span has an observable start.
	KindRewind Kind = "rewind"
	// KindRobot marks the robot beginning the stow+fetch cartridge moves;
	// Dur is the planned arm occupancy.
	KindRobot Kind = "robot"
	// KindLoad marks the drive loading/threading the incoming tape; Dur
	// is the planned load+thread time.
	KindLoad Kind = "load"
	// KindMounted marks the incoming tape ready at BOT; Dur is the full
	// switch latency for this drive (rewind start to mount, including
	// robot queueing).
	KindMounted Kind = "mounted"
	// KindComplete marks request completion; Dur is the response time.
	KindComplete Kind = "complete"
	// KindDriveFailed marks a drive taken out of service. Manual
	// (FailDrive) failures carry Tape/Req −1; injected failures carry the
	// interrupted request and, for mid-service failures, the tape being
	// read (docs/RESILIENCE.md).
	KindDriveFailed Kind = "drive-failed"
	// KindDriveRepaired marks a failed drive returning to service, stamped
	// at the instant the simulator observes the repair.
	KindDriveRepaired Kind = "drive-repaired"
	// KindRobotFailed marks a robot-arm outage observed by a switch
	// holding the arm; Dur is the remaining outage the holder rides out.
	KindRobotFailed Kind = "robot-failed"
	// KindRobotRepaired marks the robot arm returning to service.
	KindRobotRepaired Kind = "robot-repaired"
	// KindMediaError marks a permanent media error: the read of Tape for
	// Req is lost (Bytes = the abandoned group's payload, Dur = the time
	// already spent in the failed service).
	KindMediaError Kind = "media-error"
	// KindOpRetried marks an interrupted tape-group operation being
	// re-dispatched to a surviving drive; Queue is the attempt number
	// (1 = first retry) and Dur the retry backoff applied.
	KindOpRetried Kind = "op-retried"
	// KindRequestTimedOut marks a request exceeding its timeout
	// (Options.RequestTimeout); stamped at the deadline, with Bytes = the
	// payload delivered by then and Dur = the timeout.
	KindRequestTimedOut Kind = "request-timeout"

	// KindResourceWait marks an acquire that found the resource busy and
	// queued; Queue is the queue depth after enqueueing.
	KindResourceWait Kind = "resource-wait"
	// KindResourceGrant marks a grant firing; Dur is the time the grantee
	// spent queued and Queue the remaining queue depth.
	KindResourceGrant Kind = "resource-grant"
	// KindResourceRelease marks a holder releasing; Dur is the hold time
	// and Queue the number of waiters left behind.
	KindResourceRelease Kind = "resource-release"
	// KindLatchOpen marks a countdown latch reaching zero (the last of a
	// set of parallel activities finished).
	KindLatchOpen Kind = "latch-open"
)

// Kinds returns every declared event kind, in declaration order. The list
// is the schema's source of truth for completeness checks: the golden
// fixtures and docs/OBSERVABILITY.md kind tables are tested against it, so
// a new kind cannot ship unexercised or undocumented.
func Kinds() []Kind {
	return []Kind{
		KindSubmit, KindServeStart, KindSeek, KindTransfer, KindServeEnd,
		KindRewind, KindRobot, KindLoad, KindMounted, KindComplete,
		KindDriveFailed, KindDriveRepaired, KindRobotFailed, KindRobotRepaired,
		KindMediaError, KindOpRetried, KindRequestTimedOut,
		KindResourceWait, KindResourceGrant, KindResourceRelease, KindLatchOpen,
	}
}

// Event is one recorded simulator event. It is a flat value type: emitting
// one performs no heap allocation, and the zero value of every field means
// "not applicable" except where noted. Integer fields use -1 for "not
// scoped to this dimension".
type Event struct {
	// T is the simulated time of the event in seconds from run start.
	T float64
	// Kind is the event type (schema constant, see docs/OBSERVABILITY.md).
	Kind Kind
	// Lib is the library index, -1 when the event is not library-scoped.
	Lib int
	// Drive is the library-local drive index, -1 when not drive-scoped.
	Drive int
	// Tape is the library-local tape index, -1 when not tape-scoped.
	Tape int
	// Req is the request ID being served, -1 when not request-scoped.
	Req int64
	// Span identifies the operation (one drive's serve or switch chain)
	// this event belongs to; 0 when the event is not part of an operation
	// (request lifecycle markers, resource contention, boundary fault
	// sweeps). Span values are opaque, unique within a run, and identical
	// at every shard count, so internal/spans reconstructs operation trees
	// without heuristics.
	Span int64
	// Bytes is the payload size associated with the event, 0 when none.
	Bytes int64
	// Dur is the span duration in seconds for span-style events, 0 for
	// instantaneous markers.
	Dur float64
	// Queue is the relevant queue depth for contention events.
	Queue int
	// Name is the diagnostic name of the emitting component (for
	// sim-level events, the resource name such as "robot-0").
	Name string
}

// Recorder receives simulator events. Implementations must not retain
// references into the event (it is a value) and must tolerate events
// arriving in simulated-time order with ties.
//
// Hot-path contract: emit sites hold a Recorder in a nil-checked field;
// Record is only ever called when tracing is enabled, so implementations
// may allocate freely.
type Recorder interface {
	// Record consumes one event.
	Record(Event)
}

// Buffer is an in-memory Recorder keeping events in emission order, with
// an optional cap on the number retained.
type Buffer struct {
	// Events holds the recorded events in emission order.
	Events []Event
	limit  int
}

// NewBuffer returns a Buffer retaining at most limit events; limit <= 0
// means unbounded.
func NewBuffer(limit int) *Buffer { return &Buffer{limit: limit} }

// Record appends the event, dropping it if the cap is reached.
func (b *Buffer) Record(ev Event) {
	if b.limit > 0 && len(b.Events) >= b.limit {
		return
	}
	b.Events = append(b.Events, ev)
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.Events) }

// Reset discards all retained events, keeping the cap.
func (b *Buffer) Reset() { b.Events = b.Events[:0] }

// Locked wraps a Recorder with a mutex, making it safe for concurrent use
// by multiple emitters. The sharded simulator (tapesys.Options.Shards > 1)
// installs one around any attached recorder so shard goroutines can emit
// into a single stream; single-engine runs never pay the lock.
type Locked struct {
	mu sync.Mutex
	r  Recorder
}

// NewLocked returns a Locked serializing all Record calls onto r.
func NewLocked(r Recorder) *Locked { return &Locked{r: r} }

// Record forwards the event to the wrapped recorder under the mutex.
func (l *Locked) Record(ev Event) {
	l.mu.Lock()
	l.r.Record(ev)
	l.mu.Unlock()
}

// Unwrap returns the recorder serialized by this Locked.
func (l *Locked) Unwrap() Recorder { return l.r }

// Tee is a Recorder fanning each event out to every child recorder.
type Tee []Recorder

// Record forwards the event to every child in order.
func (t Tee) Record(ev Event) {
	for _, r := range t {
		r.Record(ev)
	}
}

// CountByKind tallies events per kind — a convenience for tests and
// report summaries.
func CountByKind(events []Event) map[Kind]int {
	m := make(map[Kind]int)
	for _, ev := range events {
		m[ev.Kind]++
	}
	return m
}
