package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exporters render events in the three documented formats
// (docs/OBSERVABILITY.md): JSONL for machine consumption, CSV for
// spreadsheets, and aligned text for eyeballs. Both JSONL and CSV encode
// floats with strconv's shortest round-trip representation, so a trace is
// byte-identical across runs with the same seed and configuration.

// JSONLWriter is a streaming Recorder writing one JSON object per event
// per line. Close flushes; errors are sticky and surfaced by Close.
type JSONLWriter struct {
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL event sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Record writes the event as one JSON line.
func (j *JSONLWriter) Record(ev Event) {
	if j.err != nil {
		return
	}
	var b []byte
	b = appendJSON(b, ev)
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Close flushes buffered lines and reports the first write error.
func (j *JSONLWriter) Close() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// appendJSON encodes one event with a fixed key order, omitting fields
// that are not applicable (-1 indices, zero durations, empty names). The
// key order and omission rules are part of the documented schema.
func appendJSON(b []byte, ev Event) []byte {
	b = append(b, `{"t":`...)
	b = appendFloat(b, ev.T)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind...)
	b = append(b, '"')
	if ev.Lib >= 0 {
		b = append(b, `,"lib":`...)
		b = strconv.AppendInt(b, int64(ev.Lib), 10)
	}
	if ev.Drive >= 0 {
		b = append(b, `,"drive":`...)
		b = strconv.AppendInt(b, int64(ev.Drive), 10)
	}
	if ev.Tape >= 0 {
		b = append(b, `,"tape":`...)
		b = strconv.AppendInt(b, int64(ev.Tape), 10)
	}
	if ev.Req >= 0 {
		b = append(b, `,"req":`...)
		b = strconv.AppendInt(b, ev.Req, 10)
	}
	if ev.Span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendInt(b, ev.Span, 10)
	}
	if ev.Bytes != 0 {
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
	}
	if ev.Dur != 0 {
		b = append(b, `,"dur":`...)
		b = appendFloat(b, ev.Dur)
	}
	if ev.Queue != 0 {
		b = append(b, `,"queue":`...)
		b = strconv.AppendInt(b, int64(ev.Queue), 10)
	}
	if ev.Name != "" {
		b = append(b, `,"name":`...)
		b = strconv.AppendQuote(b, ev.Name)
	}
	b = append(b, '}', '\n')
	return b
}

// appendFloat appends the shortest decimal that round-trips to v.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// CSVColumns is the fixed CSV header: every event populates the same
// column set, with empty cells for not-applicable fields.
var CSVColumns = []string{
	"t", "kind", "lib", "drive", "tape", "req", "span", "bytes", "dur", "queue", "name",
}

// CSVWriter is a streaming Recorder writing one CSV row per event under a
// fixed header. Close flushes; errors are sticky and surfaced by Close.
type CSVWriter struct {
	w      *bufio.Writer
	err    error
	header bool
}

// NewCSVWriter wraps w in a buffered CSV event sink. The header row is
// written before the first event.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: bufio.NewWriter(w)}
}

// Record writes the event as one CSV row.
func (c *CSVWriter) Record(ev Event) {
	if c.err != nil {
		return
	}
	if !c.header {
		c.header = true
		if _, err := c.w.WriteString(strings.Join(CSVColumns, ",") + "\n"); err != nil {
			c.err = err
			return
		}
	}
	var b []byte
	b = appendFloat(b, ev.T)
	b = append(b, ',')
	b = append(b, ev.Kind...)
	b = appendOptInt(b, int64(ev.Lib), ev.Lib >= 0)
	b = appendOptInt(b, int64(ev.Drive), ev.Drive >= 0)
	b = appendOptInt(b, int64(ev.Tape), ev.Tape >= 0)
	b = appendOptInt(b, ev.Req, ev.Req >= 0)
	b = appendOptInt(b, ev.Span, ev.Span != 0)
	b = appendOptInt(b, ev.Bytes, ev.Bytes != 0)
	b = append(b, ',')
	if ev.Dur != 0 {
		b = appendFloat(b, ev.Dur)
	}
	b = appendOptInt(b, int64(ev.Queue), ev.Queue != 0)
	b = append(b, ',')
	b = append(b, ev.Name...) // resource names contain no commas/quotes
	b = append(b, '\n')
	if _, err := c.w.Write(b); err != nil {
		c.err = err
	}
}

// appendOptInt appends ",v" when present, "," otherwise.
func appendOptInt(b []byte, v int64, present bool) []byte {
	b = append(b, ',')
	if present {
		b = strconv.AppendInt(b, v, 10)
	}
	return b
}

// Close flushes buffered rows and reports the first write error.
func (c *CSVWriter) Close() error {
	if c.err != nil {
		return c.err
	}
	return c.w.Flush()
}

// WriteJSONL renders a recorded event slice as JSONL in one call.
func WriteJSONL(w io.Writer, events []Event) error {
	jw := NewJSONLWriter(w)
	for _, ev := range events {
		jw.Record(ev)
	}
	return jw.Close()
}

// WriteCSV renders a recorded event slice as CSV in one call.
func WriteCSV(w io.Writer, events []Event) error {
	cw := NewCSVWriter(w)
	for _, ev := range events {
		cw.Record(ev)
	}
	return cw.Close()
}

// WriteText renders events as aligned human-readable lines, one per event.
func WriteText(w io.Writer, events []Event) error {
	for _, ev := range events {
		var loc string
		switch {
		case ev.Drive >= 0 && ev.Tape >= 0:
			loc = fmt.Sprintf("L%d.D%d (tape %d)", ev.Lib, ev.Drive, ev.Tape)
		case ev.Drive >= 0:
			loc = fmt.Sprintf("L%d.D%d", ev.Lib, ev.Drive)
		case ev.Name != "":
			loc = ev.Name
		default:
			loc = "-"
		}
		extra := ""
		if ev.Dur > 0 {
			extra = fmt.Sprintf("  dur=%.2fs", ev.Dur)
		}
		if ev.Queue > 0 {
			extra += fmt.Sprintf("  queue=%d", ev.Queue)
		}
		if _, err := fmt.Fprintf(w, "%10.2fs  %-16s req=%-4d %-18s bytes=%d%s\n",
			ev.T, ev.Kind, ev.Req, loc, ev.Bytes, extra); err != nil {
			return err
		}
	}
	return nil
}
