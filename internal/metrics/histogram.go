package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram with text rendering, used by the
// workload analyzer and placement diagnostics.
//
// Out-of-range contract (shared with telemetry.Histogram): observations
// below Lo or at/above Hi are never lost — they are tallied in the under-
// and overflow edge counters and included in Total. NaN carries no
// ordering information, so it is dropped: counted in NaNs but excluded
// from Total. ±Inf land in the edge counters like any out-of-range value.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	nans   int
	total  int
}

// NewHistogram builds a histogram over [lo, hi) with bins buckets. It
// panics on a degenerate range or bin count (a construction bug).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("metrics: bad histogram [%v,%v)x%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation; values outside the range are tallied in
// under/overflow counters, NaN is dropped (see the type contract).
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		// Without this check NaN would fail both range comparisons and
		// reach the int conversion below, which is undefined for NaN and
		// can produce a negative index.
		h.nans++
		return
	}
	h.total++
	switch {
	case v < h.Lo:
		h.under++
	case v >= h.Hi:
		h.over++
	default:
		idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) { // guard the float edge
			idx = len(h.Counts) - 1
		}
		if idx < 0 { // unreachable given v >= Lo, but never panic on a stat
			idx = 0
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations, including out-of-range ones
// but excluding dropped NaNs.
func (h *Histogram) Total() int { return h.total }

// Under returns the count of observations below Lo.
func (h *Histogram) Under() int { return h.under }

// Over returns the count of observations at or above Hi.
func (h *Histogram) Over() int { return h.over }

// NaNs returns the count of dropped NaN observations.
func (h *Histogram) NaNs() int { return h.nans }

// Render writes the histogram as labeled text bars, scaled to width
// characters. format renders bin boundaries (e.g. "%.0f").
func (h *Histogram) Render(w io.Writer, width int, format string) error {
	if width < 1 {
		width = 40
	}
	maxCount := h.under
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.over > maxCount {
		maxCount = h.over
	}
	if maxCount == 0 {
		maxCount = 1
	}
	bar := func(c int) string {
		n := int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		if c > 0 && n == 0 {
			n = 1
		}
		return strings.Repeat("#", n)
	}
	if h.under > 0 {
		if _, err := fmt.Fprintf(w, "%14s  %6d %s\n", "< "+fmt.Sprintf(format, h.Lo), h.under, bar(h.under)); err != nil {
			return err
		}
	}
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*binW
		label := fmt.Sprintf(format, lo)
		if _, err := fmt.Fprintf(w, "%14s  %6d %s\n", label, c, bar(c)); err != nil {
			return err
		}
	}
	if h.over > 0 {
		if _, err := fmt.Fprintf(w, "%14s  %6d %s\n", ">= "+fmt.Sprintf(format, h.Hi), h.over, bar(h.over)); err != nil {
			return err
		}
	}
	return nil
}

// BarChart renders labeled values as proportional text bars (the poor
// man's figure for tapebench output).
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("metrics: %d labels for %d values", len(labels), len(values))
	}
	if width < 1 {
		width = 50
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(math.Round(v / maxV * float64(width)))
		if v > 0 && n == 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "%-*s %10.1f %s\n", maxLabel, labels[i], v, strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	return nil
}
