package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"paralleltape/internal/tapesys"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.P50 != 7 {
		t.Errorf("single summary: %+v", s)
	}
	if s.Std != 0 || s.CI95() != 0 {
		t.Errorf("single-element spread: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample std of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("range: %+v", s)
	}
	if s.P50 != 4.5 {
		t.Errorf("p50 = %v", s.P50)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Errorf("percentile 0.5 = %v", got)
	}
	if got := percentile(sorted, 0); got != 0 {
		t.Errorf("percentile 0 = %v", got)
	}
	if got := percentile(sorted, 1); got != 10 {
		t.Errorf("percentile 1 = %v", got)
	}
}

func TestSummarizeQuickBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateSession(t *testing.T) {
	ms := []tapesys.RequestMetrics{
		{Bytes: 100, Response: 10, Seek: 1, Transfer: 5, Switch: 4, Switches: 2, TapesTouched: 3, DrivesUsed: 2, MountedRatio: 0.5},
		{Bytes: 300, Response: 20, Seek: 2, Transfer: 10, Switch: 8, Switches: 4, TapesTouched: 5, DrivesUsed: 4, MountedRatio: 1.0},
	}
	st := AggregateSession(ms)
	if st.Requests != 2 || st.Bytes != 400 {
		t.Errorf("totals: %+v", st)
	}
	if st.MeanResponse != 15 || st.MeanSeek != 1.5 || st.MeanTransfer != 7.5 || st.MeanSwitch != 6 {
		t.Errorf("means: %+v", st)
	}
	// Mean of per-request bandwidths: (10 + 15)/2 = 12.5.
	if math.Abs(st.MeanBandwidth-12.5) > 1e-9 {
		t.Errorf("MeanBandwidth = %v", st.MeanBandwidth)
	}
	// Aggregate: 400/30.
	if math.Abs(st.AggBandwidth-400.0/30) > 1e-9 {
		t.Errorf("AggBandwidth = %v", st.AggBandwidth)
	}
	if st.MeanSwitches != 3 || st.MeanTapes != 4 || st.MeanDrivesUsed != 3 {
		t.Errorf("diagnostics: %+v", st)
	}
	if math.Abs(st.MeanMountedPct-0.75) > 1e-9 {
		t.Errorf("MeanMountedPct = %v", st.MeanMountedPct)
	}
}

func TestAggregateSessionEmpty(t *testing.T) {
	st := AggregateSession(nil)
	if st.Requests != 0 || st.MeanBandwidth != 0 || st.AggBandwidth != 0 {
		t.Errorf("empty session: %+v", st)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("longer-name", "22")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// Aligned: "value" column starts at the same offset in all data rows.
	head := strings.Index(lines[1], "value")
	if head < 0 {
		t.Fatalf("no header: %q", lines[1])
	}
	if lines[3][head:head+1] != "1" || lines[4][head:head+2] != "22" {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<nil>") {
		t.Errorf("padding failed:\n%s", buf.String())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.AddRow("plain", `with,comma`)
	tab.AddRow(`quote"inside`, "x")
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with,comma\"\n\"quote\"\"inside\",x\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
