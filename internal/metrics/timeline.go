package metrics

// Timeline aggregation: reduce a recorded trace (internal/trace) to
// per-component activity summaries — busy/idle utilization per drive,
// robot-arm occupancy and queueing per library, and a queue-depth time
// series per robot. This is the data behind the run report exported by
// cmd/tapesim -report and documented in docs/OBSERVABILITY.md.

import (
	"fmt"
	"io"
	"slices"
	"strings"

	"paralleltape/internal/spans"
	"paralleltape/internal/trace"
)

// DriveTimeline summarizes one drive's activity over a trace.
type DriveTimeline struct {
	Library, Drive  int
	Services        int     // tape groups served
	Mounts          int     // switches completed onto this drive
	SeekSeconds     float64 // planned seek time across services
	TransferSeconds float64 // planned transfer time across services
	ServeSeconds    float64 // serve spans (seek + transfer)
	SwitchSeconds   float64 // rewind→mounted spans, incl. robot queueing
	IdleSeconds     float64 // horizon − serve − switch
	BytesMoved      int64
}

// Utilization returns the fraction of the horizon the drive was active
// (serving or switching), in [0, 1].
func (d DriveTimeline) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return (d.ServeSeconds + d.SwitchSeconds) / horizon
}

// RobotTimeline summarizes one library's robot arm over a trace.
type RobotTimeline struct {
	Library     int
	Grants      int     // ownership periods
	MoveSeconds float64 // cartridge stow+fetch motion
	HoldSeconds float64 // total arm-held time (≥ MoveSeconds)
	WaitSeconds float64 // total time acquirers spent queued
	MaxQueue    int     // peak queue depth observed
}

// QueueSample is one point of a queue-depth time series: the depth of a
// robot's wait queue immediately after the event at time T.
type QueueSample struct {
	T     float64
	Depth int
}

// QueueSeries is the queue-depth time series of one named resource.
type QueueSeries struct {
	Name    string
	Samples []QueueSample
}

// Timeline is the per-component aggregation of one recorded trace.
type Timeline struct {
	Horizon  float64 // simulated time of the last event
	Requests int     // submit events seen
	Switches int     // mounted events seen

	// Component totals across all drives (sums of span durations).
	TotalSeek, TotalTransfer, TotalSwitch float64

	Drives []DriveTimeline // sorted by (library, drive)
	Robots []RobotTimeline // sorted by library
	Queues []QueueSeries   // sorted by resource name

	// Phases is the critical-path phase attribution of the run,
	// reconstructed from the same trace by internal/spans. Nil when the
	// trace is not reconstructible (for example a ring buffer that dropped
	// the head of the stream); the report then omits the phase section.
	Phases *spans.Breakdown
}

// BuildTimeline reduces a trace to per-component timelines. Events must be
// in emission order (as any Recorder receives them). Unknown event kinds
// are ignored, so traces from newer schema revisions still aggregate.
func BuildTimeline(events []trace.Event) *Timeline {
	tl := &Timeline{}
	type dk struct{ lib, drive int }
	drives := make(map[dk]*DriveTimeline)
	robots := make(map[int]*RobotTimeline)
	queues := make(map[string]*QueueSeries)

	driveOf := func(ev trace.Event) *DriveTimeline {
		k := dk{ev.Lib, ev.Drive}
		d := drives[k]
		if d == nil {
			d = &DriveTimeline{Library: ev.Lib, Drive: ev.Drive}
			drives[k] = d
		}
		return d
	}
	robotOf := func(lib int) *RobotTimeline {
		r := robots[lib]
		if r == nil {
			r = &RobotTimeline{Library: lib}
			robots[lib] = r
		}
		return r
	}
	sample := func(ev trace.Event) {
		q := queues[ev.Name]
		if q == nil {
			q = &QueueSeries{Name: ev.Name}
			queues[ev.Name] = q
		}
		q.Samples = append(q.Samples, QueueSample{T: ev.T, Depth: ev.Queue})
	}

	for _, ev := range events {
		if ev.T > tl.Horizon {
			tl.Horizon = ev.T
		}
		switch ev.Kind {
		case trace.KindSubmit:
			tl.Requests++
		case trace.KindSeek:
			driveOf(ev).SeekSeconds += ev.Dur
			tl.TotalSeek += ev.Dur
		case trace.KindTransfer:
			driveOf(ev).TransferSeconds += ev.Dur
			tl.TotalTransfer += ev.Dur
		case trace.KindServeEnd:
			d := driveOf(ev)
			d.Services++
			d.ServeSeconds += ev.Dur
			d.BytesMoved += ev.Bytes
		case trace.KindMounted:
			d := driveOf(ev)
			d.Mounts++
			d.SwitchSeconds += ev.Dur
			tl.TotalSwitch += ev.Dur
			tl.Switches++
		case trace.KindResourceWait, trace.KindResourceGrant, trace.KindResourceRelease:
			// Robot arms are the only Resources in the simulator; key the
			// aggregate by name and fold per-library stats below.
			sample(ev)
			lib := -1
			if n, ok := robotLibrary(ev.Name); ok {
				lib = n
			}
			if lib >= 0 {
				r := robotOf(lib)
				switch ev.Kind {
				case trace.KindResourceWait:
					if ev.Queue > r.MaxQueue {
						r.MaxQueue = ev.Queue
					}
				case trace.KindResourceGrant:
					r.Grants++
					r.WaitSeconds += ev.Dur
				case trace.KindResourceRelease:
					r.HoldSeconds += ev.Dur
				}
			}
		case trace.KindRobot:
			robotOf(ev.Lib).MoveSeconds += ev.Dur
		}
	}

	for _, d := range drives {
		d.IdleSeconds = tl.Horizon - d.ServeSeconds - d.SwitchSeconds
		if d.IdleSeconds < 0 {
			d.IdleSeconds = 0
		}
		tl.Drives = append(tl.Drives, *d)
	}
	// One entry per drive / library / queue name, so each key below is a
	// total order and the unstable slices.SortFunc is deterministic.
	slices.SortFunc(tl.Drives, func(a, b DriveTimeline) int {
		if a.Library != b.Library {
			return a.Library - b.Library
		}
		return a.Drive - b.Drive
	})
	for _, r := range robots {
		tl.Robots = append(tl.Robots, *r)
	}
	slices.SortFunc(tl.Robots, func(a, b RobotTimeline) int { return a.Library - b.Library })
	for _, q := range queues {
		tl.Queues = append(tl.Queues, *q)
	}
	slices.SortFunc(tl.Queues, func(a, b QueueSeries) int { return strings.Compare(a.Name, b.Name) })
	// Phase attribution is best-effort: a complete trace reconstructs into
	// span trees, a truncated one (capped buffer) simply drops the section.
	if sess, err := spans.Build(events); err == nil {
		tl.Phases = spans.Aggregate(sess)
	}
	return tl
}

// robotLibrary parses the library index out of a "robot-N" resource name.
func robotLibrary(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "robot-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// WriteText renders the run report in the documented text format: a run
// summary, the response-time component totals, per-drive and per-robot
// timelines, and the robot queue-depth series (docs/OBSERVABILITY.md).
func (tl *Timeline) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"run: %d requests, %d switches, horizon %.2fs\ncomponents: seek %.2fs  transfer %.2fs  switch %.2fs\n\n",
		tl.Requests, tl.Switches, tl.Horizon, tl.TotalSeek, tl.TotalTransfer, tl.TotalSwitch); err != nil {
		return err
	}
	dt := NewTable("per-drive timeline",
		"drive", "services", "mounts", "seek_s", "transfer_s", "switch_s", "idle_s", "util%", "moved_GB")
	for _, d := range tl.Drives {
		dt.AddRow(
			fmt.Sprintf("L%d.D%d", d.Library, d.Drive),
			fmt.Sprintf("%d", d.Services),
			fmt.Sprintf("%d", d.Mounts),
			fmt.Sprintf("%.2f", d.SeekSeconds),
			fmt.Sprintf("%.2f", d.TransferSeconds),
			fmt.Sprintf("%.2f", d.SwitchSeconds),
			fmt.Sprintf("%.2f", d.IdleSeconds),
			fmt.Sprintf("%.1f", 100*d.Utilization(tl.Horizon)),
			fmt.Sprintf("%.2f", float64(d.BytesMoved)/1e9),
		)
	}
	if err := dt.Render(w); err != nil {
		return err
	}
	rt := NewTable("\nper-robot timeline",
		"robot", "grants", "move_s", "hold_s", "wait_s", "max_queue")
	for _, r := range tl.Robots {
		rt.AddRow(
			fmt.Sprintf("L%d", r.Library),
			fmt.Sprintf("%d", r.Grants),
			fmt.Sprintf("%.2f", r.MoveSeconds),
			fmt.Sprintf("%.2f", r.HoldSeconds),
			fmt.Sprintf("%.2f", r.WaitSeconds),
			fmt.Sprintf("%d", r.MaxQueue),
		)
	}
	if err := rt.Render(w); err != nil {
		return err
	}
	if tl.Phases != nil {
		pt := NewTable("\nper-phase breakdown (critical path)",
			"phase", "total_s", "share%", "mean_s", "p50_s", "p95_s")
		for _, p := range spans.AllPhases() {
			d := tl.Phases.Phases[p]
			pt.AddRow(
				p.String(),
				fmt.Sprintf("%.2f", d.Total),
				fmt.Sprintf("%.2f", 100*tl.Phases.Share(p)),
				fmt.Sprintf("%.2f", d.Mean),
				fmt.Sprintf("%.2f", d.P50),
				fmt.Sprintf("%.2f", d.P95),
			)
		}
		if err := pt.Render(w); err != nil {
			return err
		}
	}
	for _, q := range tl.Queues {
		peak := 0
		for _, s := range q.Samples {
			if s.Depth > peak {
				peak = s.Depth
			}
		}
		if _, err := fmt.Fprintf(w, "\nqueue %s: %d samples, peak depth %d\n",
			q.Name, len(q.Samples), peak); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the run report as sectioned CSV: every row starts with
// a section tag (run, component, drive, robot, queue) so one file carries
// all report tables (docs/OBSERVABILITY.md documents each column set).
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "section,key,value\nrun,requests,%d\nrun,switches,%d\nrun,horizon_s,%g\n",
		tl.Requests, tl.Switches, tl.Horizon); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "component,seek_s,%g\ncomponent,transfer_s,%g\ncomponent,switch_s,%g\n",
		tl.TotalSeek, tl.TotalTransfer, tl.TotalSwitch); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "drive,library,drive,services,mounts,seek_s,transfer_s,switch_s,idle_s,moved_bytes"); err != nil {
		return err
	}
	for _, d := range tl.Drives {
		if _, err := fmt.Fprintf(w, "drive,%d,%d,%d,%d,%g,%g,%g,%g,%d\n",
			d.Library, d.Drive, d.Services, d.Mounts,
			d.SeekSeconds, d.TransferSeconds, d.SwitchSeconds, d.IdleSeconds, d.BytesMoved); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "robot,library,grants,move_s,hold_s,wait_s,max_queue"); err != nil {
		return err
	}
	for _, r := range tl.Robots {
		if _, err := fmt.Fprintf(w, "robot,%d,%d,%g,%g,%g,%d\n",
			r.Library, r.Grants, r.MoveSeconds, r.HoldSeconds, r.WaitSeconds, r.MaxQueue); err != nil {
			return err
		}
	}
	if tl.Phases != nil {
		if _, err := fmt.Fprintln(w, "phase,name,total_s,share,mean_s,p50_s,p95_s,p99_s,max_s"); err != nil {
			return err
		}
		for _, p := range spans.AllPhases() {
			d := tl.Phases.Phases[p]
			if _, err := fmt.Fprintf(w, "phase,%s,%g,%g,%g,%g,%g,%g,%g\n",
				p.String(), d.Total, tl.Phases.Share(p), d.Mean, d.P50, d.P95, d.P99, d.Max); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(w, "queue,name,t_s,depth"); err != nil {
		return err
	}
	for _, q := range tl.Queues {
		for _, s := range q.Samples {
			if _, err := fmt.Fprintf(w, "queue,%s,%g,%d\n", q.Name, s.T, s.Depth); err != nil {
				return err
			}
		}
	}
	return nil
}
