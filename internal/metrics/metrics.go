// Package metrics aggregates simulator measurements into reportable
// quantities, at two granularities:
//
//   - Session statistics (Summarize, AggregateSession): the paper's §6
//     figures — effective bandwidth, average response time, and the tape
//     switch / data seek / data transfer decomposition — with percentile
//     summaries and confidence intervals.
//   - Per-component timelines (BuildTimeline): busy/idle utilization per
//     drive, robot-arm occupancy and queue-depth series per library,
//     reduced from a recorded event trace (internal/trace) and rendered
//     in the run-report format documented in docs/OBSERVABILITY.md.
//
// Rendering helpers (Table, Histogram, BarChart) produce aligned text and
// CSV for the CLIs and the bench harness.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"paralleltape/internal/tapesys"
)

// Summary is a univariate statistical summary.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary of xs. An empty input yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// percentile interpolates linearly on a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SessionStats aggregates a simulated request session — the paper's "repeat
// 200 times and average" loop.
type SessionStats struct {
	Requests int
	Bytes    int64

	// The four §6 metrics, averaged over requests.
	MeanResponse float64
	MeanSwitch   float64
	MeanSeek     float64
	MeanTransfer float64

	// Effective bandwidth: mean of per-request bandwidths (the paper's
	// averaging) plus the aggregate ratio for reference.
	MeanBandwidth float64 // mean over requests of bytes/response
	AggBandwidth  float64 // Σbytes / Σresponse

	// Diagnostics.
	MeanSwitches   float64
	MeanTapes      float64
	MeanDrivesUsed float64
	MeanRobotWait  float64
	MeanMountedPct float64

	// Degraded-mode aggregates (docs/RESILIENCE.md). On a failure-free
	// untimed session Availability is 1, MeanGoodput equals MeanBandwidth,
	// and the counters stay zero.
	BytesServed  int64   // payload delivered within request deadlines
	Availability float64 // BytesServed / Bytes — the delivered fraction
	MeanGoodput  float64 // mean over requests of BytesServed/response
	MeanRetries  float64 // fault-interrupted operations retried, per request
	TimedOut     int     // requests that exceeded their timeout
	FailedGroups int     // tape groups abandoned across the session
	MediaErrors  int     // tape groups lost to permanent media errors

	Response Summary
	Switch   Summary
	Seek     Summary
	Transfer Summary
}

// AggregateSession reduces per-request metrics to session statistics.
func AggregateSession(ms []tapesys.RequestMetrics) SessionStats {
	st := SessionStats{Requests: len(ms)}
	if len(ms) == 0 {
		return st
	}
	var responses, switches, seeks, xfers, bws []float64
	var totalResp float64
	for _, m := range ms {
		st.Bytes += m.Bytes
		responses = append(responses, m.Response)
		switches = append(switches, m.Switch)
		seeks = append(seeks, m.Seek)
		xfers = append(xfers, m.Transfer)
		bws = append(bws, m.Bandwidth())
		totalResp += m.Response
		st.MeanSwitches += float64(m.Switches)
		st.MeanTapes += float64(m.TapesTouched)
		st.MeanDrivesUsed += float64(m.DrivesUsed)
		st.MeanRobotWait += m.RobotWait
		st.MeanMountedPct += m.MountedRatio
		st.BytesServed += m.BytesServed
		st.MeanGoodput += m.Goodput()
		st.MeanRetries += float64(m.Retries)
		if m.TimedOut {
			st.TimedOut++
		}
		st.FailedGroups += m.FailedGroups
		st.MediaErrors += m.MediaErrors
	}
	n := float64(len(ms))
	st.Response = Summarize(responses)
	st.Switch = Summarize(switches)
	st.Seek = Summarize(seeks)
	st.Transfer = Summarize(xfers)
	st.MeanResponse = st.Response.Mean
	st.MeanSwitch = st.Switch.Mean
	st.MeanSeek = st.Seek.Mean
	st.MeanTransfer = st.Transfer.Mean
	st.MeanBandwidth = Summarize(bws).Mean
	if totalResp > 0 {
		st.AggBandwidth = float64(st.Bytes) / totalResp
	}
	st.MeanSwitches /= n
	st.MeanTapes /= n
	st.MeanDrivesUsed /= n
	st.MeanRobotWait /= n
	st.MeanMountedPct /= n
	st.MeanGoodput /= n
	st.MeanRetries /= n
	if st.Bytes > 0 {
		st.Availability = float64(st.BytesServed) / float64(st.Bytes)
	}
	return st
}

// Table is a simple aligned text table with an optional CSV view.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if l := len([]rune(cell)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len([]rune(cell)); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no title line), quoting cells that
// contain commas or quotes.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
