package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 42} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	want := []int{2, 1, 1, 0, 1} // [0,2): {0,1.9}; [2,4): {2}; [4,6): {5}; [8,10): {9.99}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if h.under != 1 || h.over != 2 {
		t.Errorf("under/over = %d/%d", h.under, h.over)
	}
}

func TestHistogramEdgeIntoLastBin(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(0.999999999999) // float edge must not index out of range
	if h.Counts[2] != 1 {
		t.Errorf("edge value bin: %v", h.Counts)
	}
}

// TestHistogramNonFinite pins the out-of-range contract: NaN is dropped
// (counted in NaNs, excluded from Total) instead of computing an undefined
// int conversion, and ±Inf land in the edge counters.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	h.Add(math.NaN()) // must not panic or disturb the bins
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(5)
	if h.NaNs() != 1 {
		t.Errorf("NaNs = %d, want 1", h.NaNs())
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3 (NaN excluded)", h.Total())
	}
	if h.Under() != 1 || h.Over() != 1 {
		t.Errorf("under/over = %d/%d, want 1/1 (±Inf)", h.Under(), h.Over())
	}
	for i, c := range h.Counts {
		want := 0
		if i == 2 { // 5 ∈ [5, 7.5)
			want = 1
		}
		if c != want {
			t.Errorf("bin %d = %d, want %d", i, c, want)
		}
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram accepted")
				}
			}()
			f()
		}()
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	for _, v := range []float64{0.5, 0.6, 2.5, -1, 9} {
		h.Add(v)
	}
	var buf bytes.Buffer
	if err := h.Render(&buf, 10, "%.0f"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"< 0", ">= 4", "#"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // under + 2 bins + over
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	var buf bytes.Buffer
	if err := h.Render(&buf, 10, "%.0f"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Errorf("empty histogram drew bars:\n%s", buf.String())
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, "Bandwidth", []string{"parallel-batch", "cluster-prob"}, []float64{300, 150}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Bandwidth\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	longBar := strings.Count(lines[1], "#")
	shortBar := strings.Count(lines[2], "#")
	if longBar != 20 || shortBar != 10 {
		t.Errorf("bar lengths %d/%d, want 20/10", longBar, shortBar)
	}
}

func TestBarChartMismatch(t *testing.T) {
	if err := BarChart(&bytes.Buffer{}, "", []string{"a"}, nil, 10); err == nil {
		t.Error("mismatched inputs accepted")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChart(&buf, "", []string{"a", "b"}, []float64{0, 0}, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Errorf("zero values drew bars:\n%s", buf.String())
	}
}
