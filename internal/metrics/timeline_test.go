package metrics

import (
	"bytes"
	"strings"
	"testing"

	"paralleltape/internal/trace"
)

// timelineEvents is a hand-built trace: one request, two drives in
// library 0 (drive 0 serves from a mounted tape, drive 1 switches first),
// with robot contention samples. Operation events carry span IDs so the
// phase-attribution section reconstructs: the critical chain is drive 1's
// switch (robot-wait 3 + move 2) into its serve (seek 0.5 + transfer 20).
func timelineEvents() []trace.Event {
	return []trace.Event{
		{T: 0, Kind: trace.KindSubmit, Lib: -1, Drive: -1, Tape: -1, Req: 0, Bytes: 300},
		{T: 0, Kind: trace.KindSeek, Lib: 0, Drive: 0, Tape: 0, Req: 0, Span: 100, Dur: 1},
		{T: 0, Kind: trace.KindTransfer, Lib: 0, Drive: 0, Tape: 0, Req: 0, Span: 100, Bytes: 100, Dur: 10},
		{T: 0, Kind: trace.KindResourceWait, Lib: -1, Drive: -1, Tape: -1, Req: -1, Queue: 1, Name: "robot-0"},
		{T: 0, Kind: trace.KindResourceGrant, Lib: -1, Drive: -1, Tape: -1, Req: -1, Name: "robot-0"},
		{T: 0, Kind: trace.KindRobot, Lib: 0, Drive: 1, Tape: 3, Req: 0, Span: 201, Dur: 2},
		{T: 2, Kind: trace.KindResourceRelease, Lib: -1, Drive: -1, Tape: -1, Req: -1, Dur: 2, Name: "robot-0"},
		{T: 2, Kind: trace.KindResourceGrant, Lib: -1, Drive: -1, Tape: -1, Req: -1, Dur: 2, Queue: 0, Name: "robot-0"},
		{T: 5, Kind: trace.KindMounted, Lib: 0, Drive: 1, Tape: 3, Req: 0, Span: 201, Dur: 5},
		{T: 5, Kind: trace.KindSeek, Lib: 0, Drive: 1, Tape: 3, Req: 0, Span: 202, Dur: 0.5},
		{T: 5, Kind: trace.KindTransfer, Lib: 0, Drive: 1, Tape: 3, Req: 0, Span: 202, Bytes: 200, Dur: 20},
		{T: 11, Kind: trace.KindServeEnd, Lib: 0, Drive: 0, Tape: 0, Req: 0, Span: 100, Bytes: 100, Dur: 11},
		{T: 25.5, Kind: trace.KindServeEnd, Lib: 0, Drive: 1, Tape: 3, Req: 0, Span: 202, Bytes: 200, Dur: 20.5},
		{T: 25.5, Kind: trace.KindComplete, Lib: -1, Drive: -1, Tape: -1, Req: 0, Bytes: 300, Dur: 25.5},
	}
}

func TestBuildTimeline(t *testing.T) {
	tl := BuildTimeline(timelineEvents())
	if tl.Requests != 1 || tl.Switches != 1 {
		t.Errorf("requests=%d switches=%d", tl.Requests, tl.Switches)
	}
	if tl.Horizon != 25.5 {
		t.Errorf("horizon = %g", tl.Horizon)
	}
	if tl.TotalSeek != 1.5 || tl.TotalTransfer != 30 || tl.TotalSwitch != 5 {
		t.Errorf("components: seek=%g transfer=%g switch=%g", tl.TotalSeek, tl.TotalTransfer, tl.TotalSwitch)
	}
	if len(tl.Drives) != 2 {
		t.Fatalf("drives = %d", len(tl.Drives))
	}
	d0, d1 := tl.Drives[0], tl.Drives[1]
	if d0.Drive != 0 || d0.Services != 1 || d0.ServeSeconds != 11 || d0.SwitchSeconds != 0 {
		t.Errorf("drive 0: %+v", d0)
	}
	if d0.IdleSeconds != 25.5-11 {
		t.Errorf("drive 0 idle = %g", d0.IdleSeconds)
	}
	if d1.Mounts != 1 || d1.SwitchSeconds != 5 || d1.ServeSeconds != 20.5 || d1.BytesMoved != 200 {
		t.Errorf("drive 1: %+v", d1)
	}
	if u := d1.Utilization(tl.Horizon); u <= 0.99 || u > 1 {
		t.Errorf("drive 1 utilization = %g", u)
	}
	if len(tl.Robots) != 1 {
		t.Fatalf("robots = %d", len(tl.Robots))
	}
	r := tl.Robots[0]
	if r.Library != 0 || r.Grants != 2 || r.MoveSeconds != 2 || r.HoldSeconds != 2 || r.WaitSeconds != 2 || r.MaxQueue != 1 {
		t.Errorf("robot: %+v", r)
	}
	if len(tl.Queues) != 1 || tl.Queues[0].Name != "robot-0" || len(tl.Queues[0].Samples) != 4 {
		t.Errorf("queues: %+v", tl.Queues)
	}
}

func TestTimelineRendering(t *testing.T) {
	tl := BuildTimeline(timelineEvents())
	var txt bytes.Buffer
	if err := tl.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"run: 1 requests", "components:", "L0.D0", "L0.D1", "per-robot timeline",
		"per-phase breakdown (critical path)", "robot-move", "repair-stall", "queue robot-0"} {
		if !strings.Contains(txt.String(), frag) {
			t.Errorf("text report missing %q:\n%s", frag, txt.String())
		}
	}
	var csv bytes.Buffer
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"section,key,value", "run,requests,1", "component,seek_s,1.5", "drive,0,1,",
		"robot,0,2,2,2,2,1", "phase,name,total_s", "phase,robot-move,2,", "phase,transfer,20,", "queue,robot-0,0,1"} {
		if !strings.Contains(csv.String(), frag) {
			t.Errorf("csv report missing %q:\n%s", frag, csv.String())
		}
	}
	// The CSV is byte-deterministic.
	var csv2 bytes.Buffer
	if err := tl.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv.Bytes(), csv2.Bytes()) {
		t.Error("CSV report not deterministic")
	}
}

func TestBuildTimelineEmpty(t *testing.T) {
	tl := BuildTimeline(nil)
	if tl.Requests != 0 || len(tl.Drives) != 0 || len(tl.Robots) != 0 {
		t.Errorf("empty timeline: %+v", tl)
	}
	var buf bytes.Buffer
	if err := tl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	// Zero horizon must not divide by zero in utilization or the renders.
	if u := (DriveTimeline{ServeSeconds: 5}).Utilization(tl.Horizon); u != 0 {
		t.Errorf("utilization at zero horizon = %g, want 0", u)
	}
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTimelineSingleEvent(t *testing.T) {
	tl := BuildTimeline([]trace.Event{
		{T: 0, Kind: trace.KindSubmit, Lib: -1, Drive: -1, Tape: -1, Req: 0},
	})
	if tl.Requests != 1 || tl.Horizon != 0 || len(tl.Drives) != 0 {
		t.Errorf("single-event timeline: %+v", tl)
	}
	var txt, csv bytes.Buffer
	if err := tl.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "run: 1 requests, 0 switches, horizon 0.00s") {
		t.Errorf("text: %s", txt.String())
	}
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "run,requests,1") {
		t.Errorf("csv: %s", csv.String())
	}
}

// TestBuildTimelineOutOfOrderSpanClose covers a span-close event (serve-end)
// whose duration exceeds the trace horizon: the drive's busy time is larger
// than the observation window, so idle clamps to zero and utilization tops
// out above 1 rather than going negative or dividing by zero.
func TestBuildTimelineOutOfOrderSpanClose(t *testing.T) {
	tl := BuildTimeline([]trace.Event{
		{T: 5, Kind: trace.KindServeEnd, Lib: 0, Drive: 0, Tape: 0, Req: 0, Bytes: 10, Dur: 30},
		{T: 4, Kind: trace.KindMounted, Lib: 0, Drive: 0, Tape: 1, Req: 0, Dur: 4},
	})
	if tl.Horizon != 5 {
		t.Errorf("horizon = %g, want 5 (max T, not last T)", tl.Horizon)
	}
	d := tl.Drives[0]
	if d.IdleSeconds != 0 {
		t.Errorf("idle = %g, want clamp to 0 when spans exceed the horizon", d.IdleSeconds)
	}
	if u := d.Utilization(tl.Horizon); u <= 1 {
		t.Errorf("utilization = %g, want > 1 for an over-subscribed window", u)
	}
	var buf bytes.Buffer
	if err := tl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestBuildTimelineIdleDrive covers a drive that appears in the trace only
// through a zero-duration plan: utilization is exactly zero, idle spans the
// whole horizon, and nothing divides by zero on the way.
func TestBuildTimelineIdleDrive(t *testing.T) {
	tl := BuildTimeline([]trace.Event{
		{T: 0, Kind: trace.KindSeek, Lib: 1, Drive: 3, Tape: 0, Req: 0, Dur: 0},
		{T: 8, Kind: trace.KindComplete, Lib: -1, Drive: -1, Tape: -1, Req: 0, Dur: 8},
	})
	if len(tl.Drives) != 1 {
		t.Fatalf("drives = %d", len(tl.Drives))
	}
	d := tl.Drives[0]
	if u := d.Utilization(tl.Horizon); u != 0 {
		t.Errorf("idle drive utilization = %g, want 0", u)
	}
	if d.IdleSeconds != 8 {
		t.Errorf("idle = %g, want full horizon", d.IdleSeconds)
	}
	var buf bytes.Buffer
	if err := tl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "L1.D3") {
		t.Errorf("idle drive missing from report:\n%s", buf.String())
	}
}
