// Package rng provides a small, fast, deterministic pseudo-random number
// generator for the simulator. Every simulation run is seeded explicitly so
// experiments reproduce bit-for-bit; Split derives statistically independent
// child streams so concurrent experiment workers never share generator
// state.
//
// The core generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14), which
// passes BigCrush, has a 2^64 period per stream, and whose whole state is a
// single uint64 — ideal for cheaply forking one stream per (experiment,
// scheme, repetition) triple.
package rng

import "math"

// golden is the odd constant 2^64/φ used by SplitMix64 to advance state.
const golden = 0x9E3779B97F4A7C15

// Source is a deterministic SplitMix64 stream. The zero value is a valid
// generator seeded with 0. Source is not safe for concurrent use; use Split
// to give each goroutine its own stream.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield decorrelated
// streams thanks to the finalizer's avalanche behaviour.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's future output. The receiver is advanced once.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// SplitN returns n independent child sources, advancing the receiver n
// times. Useful for fanning one master seed out to parallel workers.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Rejection sampling on the top of the range to remove bias.
	// threshold = 2^64 mod n computed as (-n) mod n.
	threshold := (-n) % n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (s *Source) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range called with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// IntRange returns a uniform int in [lo, hi] inclusive. Panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. Used by a few synthetic-workload extensions; the paper's core
// workloads are power-law and Zipf only.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place uniformly at random.
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// SampleInts returns k distinct integers drawn uniformly without
// replacement from [0, n). It panics if k > n or k < 0. The result is in
// random order. For k much smaller than n it uses a hash-set rejection
// loop; otherwise a partial Fisher–Yates over a dense index slice.
func (s *Source) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleInts called with k < 0 or k > n")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
