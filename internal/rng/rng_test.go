package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds produced %d identical values", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	v1 := s.Uint64()
	v2 := s.Uint64()
	if v1 == v2 {
		t.Error("zero-value Source repeated a value immediately")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent must not mirror each other.
	mirror := 0
	for i := 0; i < 256; i++ {
		if parent.Uint64() == child.Uint64() {
			mirror++
		}
	}
	if mirror != 0 {
		t.Errorf("%d mirrored outputs between parent and child", mirror)
	}
}

func TestSplitNDeterministic(t *testing.T) {
	a := New(99).SplitN(4)
	b := New(99).SplitN(4)
	for i := range a {
		for j := 0; j < 16; j++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("SplitN child %d not reproducible", i)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(13)
	const n, draws = 8, 160000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestInt63n(t *testing.T) {
	s := New(17)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := s.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestRange(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Range(5,8) = %v", v)
		}
	}
}

func TestIntRangeInclusive(t *testing.T) {
	s := New(23)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.IntRange(100, 150)
		if v < 100 || v > 150 {
			t.Fatalf("IntRange(100,150) = %d", v)
		}
		seen[v] = true
	}
	if !seen[100] || !seen[150] {
		t.Error("IntRange endpoints never drawn in 10k samples")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(31)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(37)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShuffleAllPositionsMove(t *testing.T) {
	// Statistically, position 0 should host each value ~uniformly.
	s := New(41)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		p := []int{0, 1, 2, 3, 4}
		s.ShuffleInts(p)
		counts[p[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.07 {
			t.Errorf("value %d appeared at position 0 in %d/%d shuffles", v, c, trials)
		}
	}
}

func TestSampleIntsDistinct(t *testing.T) {
	s := New(43)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 10}, {1000, 5}, {100, 60}} {
		got := s.SampleInts(tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("SampleInts(%d,%d) len=%d", tc.n, tc.k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("SampleInts(%d,%d) element %d out of range", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("SampleInts(%d,%d) duplicate %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleIntsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SampleInts(3,4) did not panic")
		}
	}()
	New(1).SampleInts(3, 4)
}

func TestSampleIntsCoverage(t *testing.T) {
	// Every element of [0,n) must be reachable.
	s := New(47)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		for _, v := range s.SampleInts(20, 3) {
			seen[v] = true
		}
	}
	if len(seen) != 20 {
		t.Errorf("SampleInts(20,3) covered only %d/20 values", len(seen))
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	s := New(53)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := s.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}
