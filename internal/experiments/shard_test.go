package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/tape"
)

// sweepJSON renders the full sweep (every exhibit) to one JSON blob — the
// byte-level identity carrier for the determinism tests.
func sweepJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	reps, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, rep := range reps {
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSweepDeterminismAcrossShardsAndWorkers is the sweep-level half of
// the determinism contract: the full Quick sweep's report JSON must be
// byte-identical for every (Shards, Workers) combination — neither run
// parallelism nor intra-run engine sharding may change a single byte of
// any exhibit. Request count is reduced to keep the 6-sweep matrix inside
// the test budget; every exhibit still runs.
func TestSweepDeterminismAcrossShardsAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("6 full sweeps; skipped in -short")
	}
	cfg := Quick()
	cfg.Requests = 8
	cfg.Seeds = 1
	shardCounts := []int{1, 2, 4}
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	pipelines := []bool{false, true}
	if raceEnabled {
		// The race detector slows the sweep ~10x; one sharded+parallel
		// pipelined combination against the serial baseline still crosses
		// every goroutine boundary the full matrix does.
		cfg.Requests = 4
		shardCounts = []int{4}
		workerCounts = []int{runtime.GOMAXPROCS(0)}
		pipelines = []bool{true}
	}

	base := cfg
	base.Shards = 1
	base.Workers = 1
	want := sweepJSON(t, base)

	for _, shards := range shardCounts {
		for _, workers := range workerCounts {
			for _, pipeline := range pipelines {
				c := cfg
				c.Shards = shards
				c.Workers = workers
				c.Pipeline = pipeline
				got := sweepJSON(t, c)
				if !bytes.Equal(got, want) {
					t.Errorf("sweep JSON diverges at shards=%d workers=%d pipeline=%v (%d vs %d bytes)",
						shards, workers, pipeline, len(got), len(want))
				}
			}
		}
	}
}

// countingScheme wraps a placement scheme and counts Place invocations; it
// is a comparable value, so the placement cache can key on it.
type countingScheme struct {
	placement.Scheme
	calls *atomic.Int64
}

func (cs countingScheme) Place(w *model.Workload, hw tape.Hardware) (*placement.Result, error) {
	cs.calls.Add(1)
	return cs.Scheme.Place(w, hw)
}

// TestPlacementMemoized checks that runs sharing a (scheme, workload,
// hardware) triple within one RunAll sweep compute the placement once and
// still produce identical rows — the scheduler study's shape, where nine
// policy points share one placement.
func TestPlacementMemoized(t *testing.T) {
	cfg := quickCfg()
	cfg.Requests = 5
	w, err := cfg.baseWorkload(0)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	scheme := countingScheme{Scheme: placement.ParallelBatch{M: cfg.M, K: cfg.K}, calls: &calls}
	var runs []Run
	for i := 0; i < 6; i++ {
		runs = append(runs, Run{
			Label:  fmt.Sprintf("point-%d", i),
			Scheme: scheme,
			W:      w,
			HW:     cfg.HW,
			X:      float64(i),
		})
	}
	cfg.Workers = 4
	rows := cfg.RunAll(runs)
	if got := calls.Load(); got != 1 {
		t.Errorf("Place called %d times for 6 identical runs, want 1", got)
	}
	for i, r := range rows {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
		if r.Stats != rows[0].Stats {
			t.Errorf("row %d stats diverge from row 0 despite identical runs", i)
		}
	}
}

// TestPlacementCacheDistinguishesKeys checks the cache does not conflate
// distinct schemes or hardware: different keys recompute.
func TestPlacementCacheDistinguishesKeys(t *testing.T) {
	cfg := quickCfg()
	cfg.Requests = 5
	w, err := cfg.baseWorkload(0)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	hw2 := cfg.HW
	hw2.DrivesPerLib++
	runs := []Run{
		{Label: "a", Scheme: countingScheme{Scheme: placement.ParallelBatch{M: 2, K: cfg.K}, calls: &calls}, W: w, HW: cfg.HW},
		{Label: "b", Scheme: countingScheme{Scheme: placement.ParallelBatch{M: 3, K: cfg.K}, calls: &calls}, W: w, HW: cfg.HW},
		{Label: "c", Scheme: countingScheme{Scheme: placement.ParallelBatch{M: 2, K: cfg.K}, calls: &calls}, W: w, HW: hw2},
	}
	rows := cfg.RunAll(runs)
	for i, r := range rows {
		if r.Err != nil {
			t.Fatalf("row %d: %v", i, r.Err)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("Place called %d times for 3 distinct keys, want 3", got)
	}
}
