package experiments

// phases.go is the critical-path phase-attribution exhibit
// (EXPERIMENTS.md "Critical-path phase attribution"): where Figure 9
// decomposes the *sum* of mechanical work per request, this exhibit
// replays the three schemes with tracing enabled, reconstructs every
// request's causal span tree (internal/spans), and blames each second of
// response time on exactly one phase of the critical path — the chain of
// operations that actually bounded the request. The two views disagree
// exactly where parallelism hides work: mechanical seconds that overlap
// the critical path of another drive cost nothing, and the blame table
// shows which phases the schemes truly pay for.

import (
	"fmt"

	"paralleltape/internal/metrics"
	"paralleltape/internal/rng"
	"paralleltape/internal/spans"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// phaseBreakdown replays one scheme's placement with tracing on and
// returns the span-level aggregate. The request stream matches seed 0 of
// the shared runner (Config.execute), so the simulated work is the same
// work the other exhibits measure.
func (c Config) phaseBreakdown(run Run) (*spans.Breakdown, error) {
	pr, err := run.Scheme.Place(run.W, run.HW)
	if err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	if run.Opts.Shards == 0 {
		run.Opts.Shards = c.Shards
	}
	sys, err := tapesys.NewWithOptions(run.HW, pr, run.Opts)
	if err != nil {
		return nil, err
	}
	buf := sys.EnableTrace(0)
	stream, err := workload.NewRequestStream(run.W, rng.New(c.Seed^0x9E3779B97F4A7C15))
	if err != nil {
		return nil, err
	}
	n := c.Requests
	if n <= 0 {
		n = 200
	}
	for i := 0; i < n; i++ {
		if _, err := sys.Submit(stream.Next()); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	sess, err := spans.Build(buf.Events)
	if err != nil {
		return nil, fmt.Errorf("span reconstruction: %w", err)
	}
	return spans.Aggregate(sess), nil
}

// Phases runs the critical-path attribution exhibit for the paper's
// three schemes at the Figure 9 request size (≈160 GB), so the blame
// shares are directly comparable with Figure 9's component sums.
func Phases(cfg Config) (*Report, error) {
	w, err := cfg.baseWorkload(cfg.target(fig9ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(w)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		"Critical-path phase attribution (avg request ≈ 160 GB): share of response time blamed on each phase",
		"scheme", "response p95 s", "queue", "rewind", "robot-wait", "robot-move", "load", "seek", "transfer")
	var rows []Row
	for _, sch := range cfg.threeSchemes(cl) {
		b, err := cfg.phaseBreakdown(Run{Scheme: sch, W: w, HW: cfg.HW})
		row := Row{Label: "phases", Scheme: sch.Name(), Err: err}
		if err != nil {
			t.AddRow(sch.Name(), "ERROR: "+err.Error())
			rows = append(rows, row)
			continue
		}
		t.AddRow(sch.Name(), fmt.Sprintf("%.0f", b.Response.P95),
			units.Percent(b.Share(spans.PhaseQueue)),
			units.Percent(b.Share(spans.PhaseRewind)),
			units.Percent(b.Share(spans.PhaseRobotWait)),
			units.Percent(b.Share(spans.PhaseRobotMove)),
			units.Percent(b.Share(spans.PhaseLoad)),
			units.Percent(b.Share(spans.PhaseSeek)),
			units.Percent(b.Share(spans.PhaseTransfer)))
		// X carries the transfer blame share: the scheme separator in the
		// all-mounted regime and the quantity shape tests pin.
		row.X = b.Share(spans.PhaseTransfer)
		rows = append(rows, row)
	}
	return &Report{ID: "phases", Caption: "Critical-path phase attribution", Table: t, Rows: rows}, nil
}
