package experiments

// chaos.go is the degraded-mode sweep (docs/RESILIENCE.md, EXPERIMENTS.md
// "Degraded-mode sweep"): the paper's three placement schemes compared
// under increasing stochastic failure rates. The paper itself only
// simulates healthy hardware; this exhibit asks how much of each scheme's
// bandwidth advantage survives when drives fail mid-request, robots go
// down, and reads hit bad media.

import (
	"fmt"

	"paralleltape/internal/dist"
	"paralleltape/internal/faults"
	"paralleltape/internal/metrics"
	"paralleltape/internal/tapesys"
)

// chaosPoint is one failure-rate setting of the chaos sweep.
type chaosPoint struct {
	name string
	// mtbf is the per-drive mean time between failures in simulated
	// seconds; 0 disables fault injection entirely (the healthy baseline).
	mtbf float64
}

// chaosProfile builds the fault profile for one sweep point. Robots are an
// order of magnitude more reliable than drives (one arm serves a whole
// library), repairs are exponential, and a small permanent media-error
// rate rides along so every failure class is exercised.
func chaosProfile(seed uint64, mtbf float64) *faults.Profile {
	return &faults.Profile{
		Seed:              seed,
		DriveMTBF:         mtbf,
		DriveRepair:       dist.Exponential{Mean: 600},
		RobotMTBF:         10 * mtbf,
		RobotRepair:       dist.Exponential{Mean: 300},
		MediaErrorPerRead: 0.002,
	}
}

// Chaos runs the degraded-mode sweep: for each drive-MTBF point the three
// schemes replay the same workload with the same fault seed, and the table
// reports delivered availability and goodput next to the nominal bandwidth
// so the cost of failures is directly readable. All placements are
// memoized across points (the fault profile does not change where objects
// live), and the whole sweep is byte-deterministic per Config for every
// (Shards, Workers) combination.
func Chaos(cfg Config) (*Report, error) {
	w, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(w)
	if err != nil {
		return nil, err
	}
	points := []chaosPoint{
		{"healthy", 0},
		{"mtbf 40000s", 40000},
		{"mtbf 10000s", 10000},
		{"mtbf 2500s", 2500},
	}
	var runs []Run
	for _, pt := range points {
		opts := tapesys.Options{RetryBackoff: 30}
		if pt.mtbf > 0 {
			opts.Faults = chaosProfile(cfg.Seed^0xC4A05, pt.mtbf)
		}
		for _, sch := range cfg.threeSchemes(cl) {
			runs = append(runs, Run{
				Label:  pt.name,
				Scheme: sch,
				W:      w,
				HW:     cfg.HW,
				Opts:   opts,
				X:      pt.mtbf,
			})
		}
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Degraded-mode sweep: scheme comparison under increasing failure rates",
		"failure rate", "scheme", "bandwidth MB/s", "goodput MB/s", "avail %",
		"retries/req", "failed groups")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, r.Scheme, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, r.Scheme,
			mbps(r.Stats.MeanBandwidth), mbps(r.Stats.MeanGoodput),
			fmt.Sprintf("%.2f", 100*r.Stats.Availability),
			fmt.Sprintf("%.2f", r.Stats.MeanRetries),
			fmt.Sprintf("%d", r.Stats.FailedGroups))
	}
	return &Report{ID: "chaos", Caption: "Degraded-mode scheme comparison", Table: t, Rows: rows}, nil
}
