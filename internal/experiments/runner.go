// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the hardware table (Table 1) and Figures 5–9, plus the
// technology-scaling and robustness studies the paper mentions in passing,
// an ablation of the parallel-batch design choices, and four extension
// studies (RAIT-style striping, online placement, scheduler policies,
// clustering sensitivity).
//
// Each experiment expands into a set of independent simulation runs
// (scheme × parameter point), executed by a goroutine worker pool; each
// run is itself a deterministic simulation seeded from the experiment
// seed — optionally sharded across library-partitioned engines
// (Config.Shards) with a deterministic join — so reports reproduce
// exactly for a given Config: neither the worker count nor the shard
// count changes a single byte of output, only wall-clock time (the
// determinism contract in docs/ARCHITECTURE.md).
//
// Runs within one sweep that share the same (scheme, workload, hardware)
// triple — e.g. the scheduler study's nine policy points — also share one
// memoized placement: Scheme.Place runs once per distinct triple and the
// read-only PlacementResult is reused, concurrently, by every run.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"paralleltape/internal/cluster"
	"paralleltape/internal/faults"
	"paralleltape/internal/metrics"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/telemetry"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// Config scopes an experiment batch.
type Config struct {
	// Seed drives workload generation and request sampling.
	Seed uint64
	// Requests is the number of simulated request submissions per run
	// (the paper uses 200).
	Requests int
	// Workers bounds concurrent runs; 0 means GOMAXPROCS.
	Workers int
	// Shards partitions each simulated system's libraries into this many
	// engine shards running concurrently within every request
	// (tapesys.Options.Shards). 0 keeps the single-engine path. Results
	// are byte-identical for every value; a run that sets its own
	// Options.Shards wins over this default.
	Shards int
	// Pipeline submits each run's request stream through
	// tapesys.System.SubmitStream, overlapping the grouping/read-planning
	// of the next request with the event phase of the current one. Results
	// are byte-identical to the plain Submit loop at every shard count —
	// the pipelined phase depends only on the placement — so this is a
	// pure throughput knob.
	Pipeline bool
	// Scale shrinks the experiment for quick runs (1.0 = the paper's
	// full scale). The object population, the request length range, the
	// figure request-size targets, and (via Quick) the cartridge capacity
	// all scale together, while the predefined request count stays at the
	// paper's 300; this preserves the four ratios that set the regime —
	// total data : mountable capacity, object : cartridge,
	// request : cartridge, and requests sharing an object — so the
	// scheme-comparison shapes survive scaling.
	Scale float64
	// HW is the hardware template (Figure 8 and the tech study override
	// fields per point).
	HW tape.Hardware
	// M is the default number of switch drives per library (paper: 4).
	M int
	// K is the capacity utilization coefficient.
	K float64
	// Seeds is the number of independent request streams simulated per
	// run (each Requests long, against a fresh system on the same
	// placement); their metrics are pooled. More seeds damp sampling
	// noise in the figures.
	Seeds int
	// Faults applies a fault-injection profile to every run that does not
	// carry its own Options.Faults (the chaos exhibit sets per-point
	// profiles and wins). Nil keeps runs failure-free. See
	// docs/RESILIENCE.md for how degraded runs stay deterministic.
	Faults *faults.Profile
	// RequestTimeout is the per-request deadline in simulated seconds
	// applied to runs that do not set their own (0 = none).
	RequestTimeout float64
	// Telemetry, when non-nil, streams live metrics from the sweep: every
	// simulated system gets the collector as its trace recorder, and
	// RunAll maintains the runs/requests targets and the completion
	// counter, so a -progress reporter or a /metrics scrape can follow a
	// long sweep. One collector is safely shared by all workers (its
	// updates are atomic). Nil keeps the hot path recorder-free — the
	// simulator's emit sites stay nil-check-only, with no allocations.
	Telemetry *telemetry.Collector
}

// Default returns the paper's full-scale configuration.
func Default() Config {
	return Config{
		Seed:     20060815, // ICPP 2006 vintage
		Requests: 200,
		Scale:    1.0,
		HW:       tape.DefaultHardware(),
		M:        4,
		K:        placement.DefaultK,
		Seeds:    3,
	}
}

// Quick returns a reduced-scale configuration for CI and testing.B runs:
// one fifth of the population, 60 simulated requests. Cartridge capacity
// shrinks with the population so the paper's regime — total data several
// times the always-mountable capacity — is preserved; absolute bandwidths
// drop accordingly, but the scheme comparison shapes survive.
func Quick() Config {
	c := Default()
	c.Scale = 0.2
	c.Requests = 60
	c.Seeds = 1
	c.HW.Capacity = int64(float64(c.HW.Capacity) * c.Scale)
	return c
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// baseParams derives workload generation parameters at the config's scale.
func (c Config) baseParams() (workload.Params, error) {
	if c.Scale <= 0 {
		return workload.Params{}, fmt.Errorf("experiments: scale must be positive, got %v", c.Scale)
	}
	p := workload.Defaults()
	p.NumObjects = max(200, int(float64(p.NumObjects)*c.Scale))
	if c.Scale != 1 {
		// Request lengths scale with the population (keeping co-access
		// density at the paper's ~1.2 requests per referenced object,
		// since the predefined request count stays at 300).
		p.MinReqLen = max(2, int(float64(p.MinReqLen)*c.Scale))
		p.MaxReqLen = max(p.MinReqLen, int(float64(p.MaxReqLen)*c.Scale))
		// Cap the size tail at 1/40 of the (possibly shrunken) cartridge
		// so the post-retargeting maximum object still fits tape slack.
		if cap40 := c.HW.Capacity / 40; p.MaxObjSize > cap40 && cap40 > 0 {
			p.MaxObjSize = cap40
			if p.MinObjSize > p.MaxObjSize {
				p.MinObjSize = max64(1024, p.MaxObjSize/64)
			}
		}
	}
	// Keep request length below the population at tiny scales.
	if p.MaxReqLen > p.NumObjects/4 {
		p.MaxReqLen = p.NumObjects / 4
		if p.MinReqLen > p.MaxReqLen {
			p.MinReqLen = p.MaxReqLen / 2
			if p.MinReqLen < 1 {
				p.MinReqLen = 1
			}
		}
	}
	return p, nil
}

// baseWorkload generates the scaled base workload (α = 0.3) and rescales
// object sizes to hit targetReqBytes (0 keeps natural sizes).
func (c Config) baseWorkload(targetReqBytes float64) (*model.Workload, error) {
	p, err := c.baseParams()
	if err != nil {
		return nil, err
	}
	w, err := workload.Generate(p, rng.New(c.Seed))
	if err != nil {
		return nil, err
	}
	if targetReqBytes > 0 {
		if _, err := workload.TargetMeanRequestBytes(w, targetReqBytes); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Run is one simulation job: place the workload with the scheme, then
// submit Requests sampled requests.
type Run struct {
	Label  string
	Scheme placement.Scheme
	W      *model.Workload
	HW     tape.Hardware
	// Opts tunes the simulator's scheduling; the zero value is the
	// paper's behavior.
	Opts tapesys.Options
	// X is the experiment's independent variable at this point (m, α,
	// request GB, library count, ...), carried through to the row.
	X float64
}

// Row is the outcome of one Run.
type Row struct {
	Label     string
	Scheme    string
	X         float64
	Stats     metrics.SessionStats
	TapesUsed int
	Err       error
}

// placeKey identifies a placement computation: same scheme value, same
// workload instance, same hardware → same (deterministic) result. The
// scheme is held as an interface value, so the key is only usable when the
// scheme's dynamic type is comparable (all built-in schemes are).
type placeKey struct {
	scheme placement.Scheme
	w      *model.Workload
	hw     tape.Hardware
}

// placeEntry is one memoized placement; Once gates the single Place call
// while concurrent runs needing the same key wait on it.
type placeEntry struct {
	once sync.Once
	pr   *placement.Result
	err  error
}

// placeCache memoizes Scheme.Place per (scheme, workload, hardware) triple
// for the duration of one RunAll sweep. Placement is deterministic and its
// Result is read-only during simulation, so sharing one Result across
// concurrent runs is safe and changes no output — it only removes
// repeated placement work (the scheduler study runs nine simulations off
// one placement).
type placeCache struct {
	mu sync.Mutex
	m  map[placeKey]*placeEntry
}

func newPlaceCache() *placeCache {
	return &placeCache{m: make(map[placeKey]*placeEntry)}
}

// place returns the memoized placement for the run, computing it on first
// use. Runs whose scheme has a non-comparable dynamic type bypass the
// cache.
func (pc *placeCache) place(r Run) (*placement.Result, error) {
	if pc == nil || !reflect.TypeOf(r.Scheme).Comparable() {
		return r.Scheme.Place(r.W, r.HW)
	}
	key := placeKey{scheme: r.Scheme, w: r.W, hw: r.HW}
	pc.mu.Lock()
	e, ok := pc.m[key]
	if !ok {
		e = &placeEntry{}
		pc.m[key] = e
	}
	pc.mu.Unlock()
	e.once.Do(func() {
		e.pr, e.err = r.Scheme.Place(r.W, r.HW)
	})
	return e.pr, e.err
}

// execute performs one run start to finish. pc may be nil (no memoization).
func (c Config) execute(r Run, pc *placeCache) Row {
	row := Row{Label: r.Label, Scheme: r.Scheme.Name(), X: r.X}
	if r.Opts.Shards == 0 {
		r.Opts.Shards = c.Shards
	}
	if r.Opts.Faults == nil {
		r.Opts.Faults = c.Faults
	}
	if r.Opts.RequestTimeout == 0 {
		r.Opts.RequestTimeout = c.RequestTimeout
	}
	pr, err := pc.place(r)
	if err != nil {
		row.Err = fmt.Errorf("place: %w", err)
		return row
	}
	row.TapesUsed = pr.TapesUsed
	n := c.Requests
	if n <= 0 {
		n = 200
	}
	seeds := c.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	ms := make([]tapesys.RequestMetrics, 0, n*seeds)
	// One System serves every seed: Reset replays the placement's initial
	// state on the same engine, so the event queue, grouping arenas, and
	// operation pools grown during seed 0 are reused instead of
	// reallocated per run.
	var sys *tapesys.System
	for si := 0; si < seeds; si++ {
		if sys == nil {
			sys, err = tapesys.NewWithOptions(r.HW, pr, r.Opts)
			if err == nil && c.Telemetry != nil {
				sys.SetRecorder(c.Telemetry)
			}
		} else {
			err = sys.Reset(pr)
		}
		if err != nil {
			row.Err = fmt.Errorf("init: %w", err)
			return row
		}
		stream, err := workload.NewRequestStream(r.W,
			rng.New((c.Seed+uint64(si))^0x9E3779B97F4A7C15))
		if err != nil {
			row.Err = err
			return row
		}
		if c.Pipeline {
			i := 0
			err = sys.SubmitStream(
				func() *model.Request {
					if i >= n {
						return nil
					}
					i++
					return stream.Next()
				},
				func(m tapesys.RequestMetrics) error {
					ms = append(ms, m)
					return nil
				},
			)
			if err != nil {
				row.Err = fmt.Errorf("seed %d request %d: %w", si, i-1, err)
				return row
			}
		} else {
			for i := 0; i < n; i++ {
				m, err := sys.Submit(stream.Next())
				if err != nil {
					row.Err = fmt.Errorf("seed %d request %d: %w", si, i, err)
					return row
				}
				ms = append(ms, m)
			}
		}
	}
	// Release the executor and pipeline workers now rather than waiting
	// for the GC cleanup: a sweep executes many runs back to back.
	_ = sys.Close()
	row.Stats = metrics.AggregateSession(ms)
	return row
}

// RunAll executes runs on the worker pool, preserving input order.
func (c Config) RunAll(runs []Run) []Row {
	if c.Telemetry != nil {
		// Raise the sweep targets before dispatch so a progress line or
		// scrape mid-sweep sees a stable denominator. Targets accumulate
		// across sequential sweeps sharing one collector (tapebench
		// -experiment all).
		n := c.Requests
		if n <= 0 {
			n = 200
		}
		seeds := c.Seeds
		if seeds <= 0 {
			seeds = 1
		}
		c.Telemetry.RunsTarget.Add(int64(len(runs)))
		c.Telemetry.RequestsTarget.Add(int64(len(runs) * n * seeds))
	}
	rows := make([]Row, len(runs))
	pc := newPlaceCache()
	// Job dispatch is an atomic claim counter: workers pull the next index
	// lock-free until the list is drained, with no dispatcher goroutine
	// and no per-job channel operation.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				rows[i] = c.execute(runs[i], pc)
				if c.Telemetry != nil {
					c.Telemetry.RunsCompleted.Inc()
				}
			}
		}()
	}
	wg.Wait()
	return rows
}

// clusterOnce computes the default clustering for w a single time so both
// cluster-using schemes share it.
func clusterOnce(w *model.Workload) (*cluster.Result, error) {
	return cluster.Run(w, cluster.DefaultConfig())
}

// threeSchemes returns the paper's three comparison schemes, sharing a
// precomputed clustering.
func (c Config) threeSchemes(cl *cluster.Result) []placement.Scheme {
	return []placement.Scheme{
		placement.ObjectProbability{K: c.K},
		placement.ClusterProbability{K: c.K, Precomputed: cl},
		placement.ParallelBatch{M: c.M, K: c.K, Precomputed: cl},
	}
}

// Report is a finished experiment: a rendered table plus machine-readable
// rows for assertions and plotting.
type Report struct {
	ID      string
	Caption string
	Table   *metrics.Table
	Rows    []Row
}

// Err returns the first run error inside the report, if any.
func (r *Report) Err() error {
	for _, row := range r.Rows {
		if row.Err != nil {
			return fmt.Errorf("%s [%s %s]: %w", r.ID, row.Label, row.Scheme, row.Err)
		}
	}
	return nil
}

// mbps renders a byte rate as the paper's MB/s axis unit.
func mbps(bytesPerSecond float64) string {
	return fmt.Sprintf("%.1f", bytesPerSecond/1e6)
}

func gb(bytes float64) string {
	return fmt.Sprintf("%.0f", bytes/float64(units.GB))
}

func secs(s float64) string {
	return fmt.Sprintf("%.1f", s)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// target maps a paper-quoted request size onto the config's scale:
// requests shrink with cartridges so a request still spans the same
// fraction of a tape.
func (c Config) target(bytes float64) float64 {
	return bytes * c.Scale
}

// reportJSON is the wire form of a Report.
type reportJSON struct {
	ID      string    `json:"id"`
	Caption string    `json:"caption"`
	Rows    []rowJSON `json:"rows"`
}

type rowJSON struct {
	Label         string  `json:"label"`
	Scheme        string  `json:"scheme,omitempty"`
	X             float64 `json:"x,omitempty"`
	TapesUsed     int     `json:"tapes_used,omitempty"`
	Error         string  `json:"error,omitempty"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	ResponseS     float64 `json:"response_s"`
	SwitchS       float64 `json:"switch_s"`
	SeekS         float64 `json:"seek_s"`
	TransferS     float64 `json:"transfer_s"`
	Switches      float64 `json:"switches_per_req"`
	Tapes         float64 `json:"tapes_per_req"`
	Drives        float64 `json:"drives_per_req"`
	// Degraded-mode fields (docs/RESILIENCE.md); on a failure-free run
	// availability is 100, goodput equals bandwidth, and the counters are
	// omitted.
	AvailabilityPct float64 `json:"availability_pct,omitempty"`
	GoodputMBps     float64 `json:"goodput_mbps,omitempty"`
	RetriesPerReq   float64 `json:"retries_per_req,omitempty"`
	FailedGroups    int     `json:"failed_groups,omitempty"`
	MediaErrors     int     `json:"media_errors,omitempty"`
	TimedOut        int     `json:"timed_out,omitempty"`
}

// WriteJSON emits the report's rows as a machine-readable series for
// external plotting.
func (r *Report) WriteJSON(w io.Writer) error {
	out := reportJSON{ID: r.ID, Caption: r.Caption}
	for _, row := range r.Rows {
		j := rowJSON{
			Label:     row.Label,
			Scheme:    row.Scheme,
			X:         row.X,
			TapesUsed: row.TapesUsed,
		}
		if row.Err != nil {
			j.Error = row.Err.Error()
		} else {
			j.BandwidthMBps = row.Stats.MeanBandwidth / 1e6
			j.ResponseS = row.Stats.MeanResponse
			j.SwitchS = row.Stats.MeanSwitch
			j.SeekS = row.Stats.MeanSeek
			j.TransferS = row.Stats.MeanTransfer
			j.Switches = row.Stats.MeanSwitches
			j.Tapes = row.Stats.MeanTapes
			j.Drives = row.Stats.MeanDrivesUsed
			j.AvailabilityPct = 100 * row.Stats.Availability
			j.GoodputMBps = row.Stats.MeanGoodput / 1e6
			j.RetriesPerReq = row.Stats.MeanRetries
			j.FailedGroups = row.Stats.FailedGroups
			j.MediaErrors = row.Stats.MediaErrors
			j.TimedOut = row.Stats.TimedOut
		}
		out.Rows = append(out.Rows, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}
