package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestPhasesShape checks the critical-path attribution exhibit: all
// three schemes produce a full blame table, the transfer blame share is
// a valid fraction, and cluster probability — which serves whole
// requests from few mounted tapes — carries at least as much transfer
// blame as parallel batch, whose transfers overlap across drives.
func TestPhasesShape(t *testing.T) {
	rep, err := Phases(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("phases rows = %d, want 3", len(rep.Rows))
	}
	shares := map[string]float64{}
	for _, r := range rep.Rows {
		if r.X < 0 || r.X > 1 {
			t.Errorf("%s: transfer blame share %v outside [0,1]", r.Scheme, r.X)
		}
		shares[r.Scheme] = r.X
	}
	if shares["cluster-probability"] < shares["parallel-batch"] {
		t.Errorf("cluster-probability transfer blame %v below parallel-batch %v",
			shares["cluster-probability"], shares["parallel-batch"])
	}
	var buf bytes.Buffer
	if err := rep.Table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"robot-wait", "rewind", "seek", "transfer", "parallel-batch"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("phases table missing %q:\n%s", frag, buf.String())
		}
	}
}

// TestPhasesDeterministic renders the exhibit twice; the tables must be
// byte-identical (the span analyzer inherits the runner's determinism
// contract).
func TestPhasesDeterministic(t *testing.T) {
	render := func() string {
		rep, err := Phases(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Table.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("phases exhibit not deterministic:\n%s\nvs\n%s", a, b)
	}
}
