package experiments

import (
	"bytes"
	"strings"
	"testing"

	"paralleltape/internal/telemetry"
)

// quickCfg returns the reduced-scale config used for all tests here; full
// paper scale is exercised by cmd/tapebench and the root bench harness.
func quickCfg() Config {
	c := Quick()
	c.Workers = 2
	return c
}

// statsBy collects rows of a report into scheme → X → stats.
func statsBy(rep *Report) map[string]map[float64]Row {
	out := map[string]map[float64]Row{}
	for _, r := range rep.Rows {
		if out[r.Scheme] == nil {
			out[r.Scheme] = map[float64]Row{}
		}
		out[r.Scheme][r.X] = r
	}
	return out
}

func TestTable1(t *testing.T) {
	rep, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"7.6", "80.00 MB/s", "98/49", "8", "3"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("table1 missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rep, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// The paper's headline for Figure 5: m=1 starves the switch path; the
	// jump to m=2 is large. Check per alpha curve.
	curves := map[string][]Row{}
	for _, r := range rep.Rows {
		curves[r.Label] = append(curves[r.Label], r)
	}
	if len(curves) < 2 {
		t.Fatalf("expected several alpha curves, got %d", len(curves))
	}
	sawBigJump := false
	for label, rows := range curves {
		var m1, m2 float64
		for _, r := range rows {
			if r.X == 1 {
				m1 = r.Stats.MeanBandwidth
			}
			if r.X == 2 {
				m2 = r.Stats.MeanBandwidth
			}
		}
		if m1 <= 0 || m2 <= 0 {
			t.Fatalf("%s: missing m=1/m=2 points", label)
		}
		// Every curve improves from m=1 to m=2; the low-skew curves jump
		// hard (the paper's headline), high skew less so.
		if m2 < m1 {
			t.Errorf("%s: m=2 below m=1: %v vs %v", label, m1, m2)
		}
		if m2 > m1*1.2 {
			sawBigJump = true
		}
	}
	if !sawBigJump {
		t.Error("no alpha curve shows the m=1→2 jump")
	}
}

func TestFig6Shape(t *testing.T) {
	rep, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	by := statsBy(rep)
	pb := by["parallel-batch"]
	op := by["object-probability"]
	cp := by["cluster-probability"]
	if len(pb) == 0 || len(op) == 0 || len(cp) == 0 {
		t.Fatal("missing scheme rows")
	}
	// Parallel batch must beat both baselines at every alpha (small
	// tolerance for the reduced-scale noise floor).
	for alpha, r := range pb {
		if r.Stats.MeanBandwidth < op[alpha].Stats.MeanBandwidth*0.97 {
			t.Errorf("alpha=%v: parallel-batch %v below object-probability %v",
				alpha, r.Stats.MeanBandwidth, op[alpha].Stats.MeanBandwidth)
		}
		if r.Stats.MeanBandwidth < cp[alpha].Stats.MeanBandwidth {
			t.Errorf("alpha=%v: parallel-batch %v below cluster-probability %v",
				alpha, r.Stats.MeanBandwidth, cp[alpha].Stats.MeanBandwidth)
		}
	}
	// Skew helps parallel batch: alpha=1 beats alpha=0 clearly.
	if pb[1.0].Stats.MeanBandwidth < pb[0.0].Stats.MeanBandwidth*1.1 {
		t.Errorf("parallel-batch does not benefit from skew: %v vs %v",
			pb[0.0].Stats.MeanBandwidth, pb[1.0].Stats.MeanBandwidth)
	}
	// Cluster probability is insensitive to skew relative to parallel
	// batch's gain.
	cpGain := cp[1.0].Stats.MeanBandwidth / cp[0.0].Stats.MeanBandwidth
	pbGain := pb[1.0].Stats.MeanBandwidth / pb[0.0].Stats.MeanBandwidth
	if cpGain > pbGain {
		t.Errorf("cluster-probability gained more from skew (%v) than parallel batch (%v)", cpGain, pbGain)
	}
}

func TestFig7Shape(t *testing.T) {
	rep, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	var extremeRows []Row
	bySize := map[string]map[string]Row{}
	for _, r := range rep.Rows {
		if r.Label == "extreme(all-mounted)" {
			extremeRows = append(extremeRows, r)
			continue
		}
		if bySize[r.Label] == nil {
			bySize[r.Label] = map[string]Row{}
		}
		bySize[r.Label][r.Scheme] = r
	}
	// Parallel batch best at every size point (5% tolerance at this
	// reduced scale; the full-scale margins are wider, see
	// EXPERIMENTS.md).
	for size, rows := range bySize {
		pb := rows["parallel-batch"].Stats.MeanBandwidth
		for scheme, r := range rows {
			if scheme == "parallel-batch" {
				continue
			}
			if pb < r.Stats.MeanBandwidth*0.95 {
				t.Errorf("%s: parallel-batch %v below %s %v", size, pb, scheme, r.Stats.MeanBandwidth)
			}
		}
	}
	// Extreme case: everything fits mounted → no switches for any scheme,
	// and cluster probability's transfer share far exceeds parallel
	// batch's (the paper reports 62% vs 19%).
	if len(extremeRows) != 3 {
		t.Fatalf("extreme rows: %d", len(extremeRows))
	}
	var cpShare, pbShare float64
	for _, r := range extremeRows {
		if r.Stats.MeanSwitches > 0.01 {
			t.Errorf("extreme case: %s still switches (%v/request)", r.Scheme, r.Stats.MeanSwitches)
		}
		share := r.Stats.MeanTransfer / r.Stats.MeanResponse
		switch r.Scheme {
		case "cluster-probability":
			cpShare = share
		case "parallel-batch":
			pbShare = share
		}
	}
	// At full scale cluster probability's transfer share far exceeds
	// parallel batch's (paper: 62% vs 19%; our full-scale run: 64% vs
	// 36% — see EXPERIMENTS.md). At this reduced scale requests shrink
	// quadratically relative to seek distances, compressing the contrast,
	// so only the ordering is asserted.
	if cpShare < pbShare-0.05 {
		t.Errorf("extreme transfer shares: cluster-probability %v below parallel-batch %v",
			cpShare, pbShare)
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	by := statsBy(rep)
	pb := by["parallel-batch"]
	op := by["object-probability"]
	cp := by["cluster-probability"]
	// Scaling: parallel batch and object probability gain substantially
	// from 1 → 5 libraries; cluster probability gains far less.
	pbGain := pb[5].Stats.MeanBandwidth / pb[1].Stats.MeanBandwidth
	opGain := op[5].Stats.MeanBandwidth / op[1].Stats.MeanBandwidth
	cpGain := cp[5].Stats.MeanBandwidth / cp[1].Stats.MeanBandwidth
	if pbGain < 1.5 {
		t.Errorf("parallel-batch does not scale with libraries: gain %v", pbGain)
	}
	if opGain < 1.3 {
		t.Errorf("object-probability does not scale with libraries: gain %v", opGain)
	}
	if cpGain > pbGain*0.75 {
		t.Errorf("cluster-probability scales too well: gain %v vs parallel batch %v", cpGain, pbGain)
	}
	// Parallel batch is best at 1–2 libraries and within 10% of the best
	// beyond that: Figure 8's fit-one-library constraint lowers capacity
	// pressure as libraries are added, which flatters object
	// probability's full-width scatter in our motion model (see
	// EXPERIMENTS.md).
	for n, r := range pb {
		tolerance := 0.97
		if n >= 3 {
			tolerance = 0.90
		}
		if r.Stats.MeanBandwidth < op[n].Stats.MeanBandwidth*tolerance ||
			r.Stats.MeanBandwidth < cp[n].Stats.MeanBandwidth*tolerance {
			t.Errorf("libraries=%v: parallel-batch %v too far below best (op %v, cp %v)",
				n, r.Stats.MeanBandwidth, op[n].Stats.MeanBandwidth, cp[n].Stats.MeanBandwidth)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rep, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	rows := map[string]Row{}
	for _, r := range rep.Rows {
		rows[r.Scheme] = r
	}
	op, cp, pb := rows["object-probability"], rows["cluster-probability"], rows["parallel-batch"]
	// Object probability: the longest switch time of the three, the best
	// (smallest) transfer time, and more switches than anyone.
	if op.Stats.MeanSwitch < cp.Stats.MeanSwitch || op.Stats.MeanSwitch < pb.Stats.MeanSwitch {
		t.Errorf("object-probability switch time %v not the worst (cp %v, pb %v)",
			op.Stats.MeanSwitch, cp.Stats.MeanSwitch, pb.Stats.MeanSwitch)
	}
	if op.Stats.MeanTransfer > cp.Stats.MeanTransfer || op.Stats.MeanTransfer > pb.Stats.MeanTransfer {
		t.Errorf("object-probability transfer time %v not the best (cp %v, pb %v)",
			op.Stats.MeanTransfer, cp.Stats.MeanTransfer, pb.Stats.MeanTransfer)
	}
	if op.Stats.MeanSwitches <= pb.Stats.MeanSwitches {
		t.Errorf("object-probability switches %v not above parallel batch %v",
			op.Stats.MeanSwitches, pb.Stats.MeanSwitches)
	}
	// Cluster probability: transfer-dominated response.
	if cp.Stats.MeanTransfer < 0.5*cp.Stats.MeanResponse {
		t.Errorf("cluster-probability not transfer-dominated: %v of %v",
			cp.Stats.MeanTransfer, cp.Stats.MeanResponse)
	}
	// Parallel batch: best response time.
	if pb.Stats.MeanResponse > op.Stats.MeanResponse*1.03 || pb.Stats.MeanResponse > cp.Stats.MeanResponse {
		t.Errorf("parallel-batch response %v not the best (op %v, cp %v)",
			pb.Stats.MeanResponse, op.Stats.MeanResponse, cp.Stats.MeanResponse)
	}
}

func TestTechShape(t *testing.T) {
	rep, err := Tech(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// Faster drives must increase every scheme's bandwidth.
	base := map[string]float64{}
	fast := map[string]float64{}
	for _, r := range rep.Rows {
		if r.Label == "rate x1, capacity x1" {
			base[r.Scheme] = r.Stats.MeanBandwidth
		}
		if r.Label == "rate x4, capacity x1" {
			fast[r.Scheme] = r.Stats.MeanBandwidth
		}
	}
	for scheme, b := range base {
		if fast[scheme] <= b {
			t.Errorf("%s: 4x transfer rate did not help (%v -> %v)", scheme, b, fast[scheme])
		}
	}
	// Parallel batch stays the best scheme at every technology point.
	byLabel := map[string]map[string]float64{}
	for _, r := range rep.Rows {
		if byLabel[r.Label] == nil {
			byLabel[r.Label] = map[string]float64{}
		}
		byLabel[r.Label][r.Scheme] = r.Stats.MeanBandwidth
	}
	for label, schemes := range byLabel {
		pb := schemes["parallel-batch"]
		for scheme, bw := range schemes {
			if scheme == "parallel-batch" {
				continue
			}
			if pb < bw*0.95 {
				t.Errorf("%s: parallel-batch %v below %s %v", label, pb, scheme, bw)
			}
		}
	}
}

func TestRobustnessShape(t *testing.T) {
	rep, err := Robustness(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// Relative order invariant: parallel batch ≥ both baselines in every
	// variant (tolerance for reduced scale).
	byVariant := map[string]map[string]Row{}
	for _, r := range rep.Rows {
		if byVariant[r.Label] == nil {
			byVariant[r.Label] = map[string]Row{}
		}
		byVariant[r.Label][r.Scheme] = r
	}
	for variant, rows := range byVariant {
		if strings.Contains(variant, "denser") {
			// Densified co-access changes the regime (see EXPERIMENTS.md);
			// only completion is asserted for it.
			continue
		}
		pb := rows["parallel-batch"].Stats.MeanBandwidth
		for scheme, r := range rows {
			if scheme == "parallel-batch" {
				continue
			}
			if pb < r.Stats.MeanBandwidth*0.95 {
				t.Errorf("%s: parallel-batch %v below %s %v",
					variant, pb, scheme, r.Stats.MeanBandwidth)
			}
		}
	}
}

func TestAblationShape(t *testing.T) {
	rep, err := Ablation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	rows := map[string]Row{}
	for _, r := range rep.Rows {
		rows[r.Label] = r
	}
	full := rows["full parallel-batch"].Stats.MeanBandwidth
	if full <= 0 {
		t.Fatal("full parallel-batch missing")
	}
	// Removing clustering must hurt: the refinement is the scheme's core.
	if noc := rows["no clustering (density only)"].Stats.MeanBandwidth; noc > full*1.02 {
		t.Errorf("removing clustering helped: %v vs %v", noc, full)
	}
	// Never splitting clusters sacrifices parallel transfer.
	if nos := rows["no cluster splitting"].Stats.MeanBandwidth; nos > full*1.02 {
		t.Errorf("disabling cluster splitting helped: %v vs %v", nos, full)
	}
	// Naive round-robin spread must not beat the full scheme.
	if rr := rows["round-robin spread"].Stats.MeanBandwidth; rr > full {
		t.Errorf("round-robin spread beat parallel batch: %v vs %v", rr, full)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nope", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestReportErrPropagation(t *testing.T) {
	rep := &Report{ID: "x", Rows: []Row{{Label: "l", Scheme: "s"}}}
	if rep.Err() != nil {
		t.Error("clean report reported error")
	}
	rep.Rows = append(rep.Rows, Row{Label: "bad", Scheme: "s", Err: errBoom{}})
	if rep.Err() == nil {
		t.Error("error row not propagated")
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestConfigBadScale(t *testing.T) {
	cfg := quickCfg()
	cfg.Scale = 0
	if _, err := Fig6(cfg); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestDeterministicReports(t *testing.T) {
	a, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.Table.Render(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Table.Render(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Errorf("fig9 not reproducible:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

// TestSweepTelemetry checks the live-metric plumbing: a sweep with a
// shared collector maintains the run/request targets and completion
// counters, and — the determinism guard at the sweep level — produces
// exactly the same rows as the same sweep with telemetry off.
func TestSweepTelemetry(t *testing.T) {
	cfg := quickCfg()
	cfg.Requests = 5

	base, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	cfg.Telemetry = telemetry.NewCollector(reg)
	traced, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}

	col := cfg.Telemetry
	runs := int64(len(traced.Rows))
	if got := col.RunsTarget.Value(); got != runs {
		t.Errorf("runs target = %d, want %d", got, runs)
	}
	if got := col.RunsCompleted.Value(); got != uint64(runs) {
		t.Errorf("runs completed = %d, want %d", got, runs)
	}
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	wantReqs := uint64(len(traced.Rows) * cfg.Requests * seeds)
	if got := col.Completed.Value(); got != wantReqs {
		t.Errorf("requests completed = %d, want %d", got, wantReqs)
	}
	if got := col.RequestsTarget.Value(); got != int64(wantReqs) {
		t.Errorf("requests target = %d, want %d", got, wantReqs)
	}
	if col.Events.Value() == 0 || col.BytesMoved.Value() == 0 {
		t.Error("collector saw no events/bytes")
	}
	if col.ResponseSeconds.Count() != wantReqs {
		t.Errorf("response histogram count = %d, want %d", col.ResponseSeconds.Count(), wantReqs)
	}

	if len(base.Rows) != len(traced.Rows) {
		t.Fatalf("row count changed with telemetry: %d vs %d", len(base.Rows), len(traced.Rows))
	}
	for i := range base.Rows {
		if base.Rows[i].Stats != traced.Rows[i].Stats {
			t.Errorf("row %d stats changed with telemetry on:\n%+v\nvs\n%+v",
				i, base.Rows[i].Stats, traced.Rows[i].Stats)
		}
	}
}
