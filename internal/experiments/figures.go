package experiments

import (
	"fmt"

	"paralleltape/internal/metrics"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// Paper-quoted average request sizes (figure captions).
const (
	fig6ReqBytes = 213 * float64(units.GB)
	fig8ReqBytes = 240 * float64(units.GB)
	fig9ReqBytes = 160 * float64(units.GB)
)

// Table1 renders the hardware configuration table (the paper's Table 1).
func Table1(cfg Config) (*Report, error) {
	t := metrics.NewTable("Table 1. Tape drive/library specifications", "parameter", "value")
	hw := cfg.HW
	t.AddRow("Average cell to drive time", fmt.Sprintf("%.1fs", hw.CellToDrive))
	t.AddRow("Tape load and thread to ready", fmt.Sprintf("%.0fs", hw.LoadThread))
	t.AddRow("Data transfer rate, native", units.FormatRate(hw.TransferRate))
	t.AddRow("Maximum/average rewind time", fmt.Sprintf("%.0f/%.0fs", hw.MaxRewind, hw.MaxRewind/2))
	t.AddRow("Unload time", fmt.Sprintf("%.0fs", hw.Unload))
	t.AddRow("Average file access time (first file)", fmt.Sprintf("%.0fs", hw.AvgFileSeek))
	t.AddRow("Number of tapes per library", fmt.Sprintf("%d", hw.TapesPerLib))
	t.AddRow("Tape capacity", units.FormatBytesSI(hw.Capacity))
	t.AddRow("Tape drives per library", fmt.Sprintf("%d", hw.DrivesPerLib))
	t.AddRow("Number of tape libraries", fmt.Sprintf("%d", hw.Libraries))
	return &Report{ID: "table1", Caption: "Tape drive/library specifications", Table: t}, nil
}

// Fig5 reproduces Figure 5: effective bandwidth of parallel batch placement
// versus the number of switch drives m, for several Zipf α values. The
// paper's findings: a jump from m=1 to m=2, a maximum for m in [2,4], and
// decline beyond as always-mounted capacity shrinks.
func Fig5(cfg Config) (*Report, error) {
	base, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	alphas := []float64{0.1, 0.3, 0.7}
	maxM := cfg.HW.DrivesPerLib - 1
	var runs []Run
	for _, alpha := range alphas {
		w, err := workload.ReplaceAlpha(base, alpha)
		if err != nil {
			return nil, err
		}
		cl, err := clusterOnce(w)
		if err != nil {
			return nil, err
		}
		for m := 1; m <= maxM; m++ {
			runs = append(runs, Run{
				Label:  fmt.Sprintf("alpha=%.1f", alpha),
				Scheme: placement.ParallelBatch{M: m, K: cfg.K, Precomputed: cl},
				W:      w,
				HW:     cfg.HW,
				X:      float64(m),
			})
		}
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Figure 5. Bandwidth vs. number of drives used for tape switch (parallel batch placement)",
		"m", "alpha", "bandwidth MB/s", "avg response s", "avg switch s", "switches/req")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(fmt.Sprintf("%.0f", r.X), r.Label, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(fmt.Sprintf("%.0f", r.X), r.Label, mbps(r.Stats.MeanBandwidth),
			secs(r.Stats.MeanResponse), secs(r.Stats.MeanSwitch),
			fmt.Sprintf("%.1f", r.Stats.MeanSwitches))
	}
	return &Report{
		ID:      "fig5",
		Caption: "Bandwidth vs. number of switch drives m",
		Table:   t,
		Rows:    rows,
	}, nil
}

// Fig6 reproduces Figure 6: bandwidth versus the request popularity skew α
// for the three schemes at ≈213 GB average request size. Findings: skew
// helps parallel batch and object probability; cluster probability is
// nearly flat; parallel batch always wins.
func Fig6(cfg Config) (*Report, error) {
	base, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	alphas := []float64{0, 0.1, 0.3, 0.5, 0.7, 1.0}
	var runs []Run
	for _, alpha := range alphas {
		w, err := workload.ReplaceAlpha(base, alpha)
		if err != nil {
			return nil, err
		}
		cl, err := clusterOnce(w)
		if err != nil {
			return nil, err
		}
		for _, sch := range cfg.threeSchemes(cl) {
			runs = append(runs, Run{
				Label:  fmt.Sprintf("alpha=%.1f", alpha),
				Scheme: sch,
				W:      w,
				HW:     cfg.HW,
				X:      alpha,
			})
		}
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Figure 6. Bandwidth vs. alpha (avg request ≈ 213 GB)",
		"alpha", "scheme", "bandwidth MB/s", "avg response s", "avg switch s")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(fmt.Sprintf("%.1f", r.X), r.Scheme, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(fmt.Sprintf("%.1f", r.X), r.Scheme, mbps(r.Stats.MeanBandwidth),
			secs(r.Stats.MeanResponse), secs(r.Stats.MeanSwitch))
	}
	return &Report{ID: "fig6", Caption: "Bandwidth vs. alpha", Table: t, Rows: rows}, nil
}

// Fig7 reproduces Figure 7: bandwidth versus average request size (object
// sizes are scaled, as in the paper), plus the paper's extreme case where
// every object fits on the n×d keep-mounted tapes so no switches occur and
// the transfer-time share separates the schemes (cluster probability ≈62%
// vs parallel batch ≈19% in the paper).
func Fig7(cfg Config) (*Report, error) {
	targets := []float64{
		80 * float64(units.GB), 120 * float64(units.GB), 160 * float64(units.GB),
		213 * float64(units.GB), 240 * float64(units.GB), 320 * float64(units.GB),
	}
	var runs []Run
	for _, target := range targets {
		target = cfg.target(target)
		w, err := cfg.baseWorkload(target)
		if err != nil {
			return nil, err
		}
		cl, err := clusterOnce(w)
		if err != nil {
			return nil, err
		}
		for _, sch := range cfg.threeSchemes(cl) {
			runs = append(runs, Run{
				Label:  "size=" + gb(target) + "GB",
				Scheme: sch,
				W:      w,
				HW:     cfg.HW,
				X:      target,
			})
		}
	}
	// Extreme case: shrink objects until the whole population fits on the
	// n×d drives' tapes.
	extreme, err := cfg.baseWorkload(0)
	if err != nil {
		return nil, err
	}
	mountedCap := float64(cfg.HW.TotalDrives()) * float64(cfg.HW.Capacity) * cfg.K * 0.95
	factor := mountedCap / float64(extreme.TotalObjectBytes())
	if factor < 1 {
		if err := extreme.ScaleObjectSizes(factor); err != nil {
			return nil, err
		}
	}
	clEx, err := clusterOnce(extreme)
	if err != nil {
		return nil, err
	}
	for _, sch := range cfg.threeSchemes(clEx) {
		runs = append(runs, Run{
			Label:  "extreme(all-mounted)",
			Scheme: sch,
			W:      extreme,
			HW:     cfg.HW,
			X:      extreme.MeanRequestBytes(),
		})
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Figure 7. Bandwidth vs. average request size",
		"request", "scheme", "bandwidth MB/s", "avg response s", "switch s", "transfer share")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, r.Scheme, "ERROR: "+r.Err.Error())
			continue
		}
		share := 0.0
		if r.Stats.MeanResponse > 0 {
			share = r.Stats.MeanTransfer / r.Stats.MeanResponse
		}
		t.AddRow(r.Label, r.Scheme, mbps(r.Stats.MeanBandwidth),
			secs(r.Stats.MeanResponse), secs(r.Stats.MeanSwitch), units.Percent(share))
	}
	return &Report{ID: "fig7", Caption: "Bandwidth vs. average request size", Table: t, Rows: rows}, nil
}

// Fig8 reproduces Figure 8: bandwidth versus the number of tape libraries
// at ≈240 GB average request size. The workload is shrunk so it fits even
// a single library (the paper varies the object population across
// experiments; see EXPERIMENTS.md). Findings: parallel batch and object
// probability scale with libraries; cluster probability does not (beyond
// the 1→3 robot-contention relief).
func Fig8(cfg Config) (*Report, error) {
	libCounts := []int{1, 2, 3, 4, 5}
	// Build a workload that fits one library at utilization cfg.K with
	// ~15% headroom.
	p, err := cfg.baseParams()
	if err != nil {
		return nil, err
	}
	oneLib := cfg.HW
	oneLib.Libraries = 1
	budget := 0.85 * cfg.K * float64(oneLib.TotalCapacity())
	var w *model.Workload
	for attempt := 0; attempt < 8; attempt++ {
		w, err = workload.Generate(p, rng.New(cfg.Seed+uint64(attempt)))
		if err != nil {
			return nil, err
		}
		if _, err := workload.TargetMeanRequestBytes(w, cfg.target(fig8ReqBytes)); err != nil {
			return nil, err
		}
		total := float64(w.TotalObjectBytes())
		if total <= budget {
			break
		}
		// Shrink objects AND predefined requests proportionally so the
		// co-access density (how many requests share an object) matches
		// the other figures' workloads.
		shrink := budget / total * 0.98
		p.NumObjects = int(float64(p.NumObjects) * shrink)
		if p.NumObjects < p.MaxReqLen*2 {
			p.NumObjects = p.MaxReqLen * 2
		}
		p.NumRequests = max(10, int(float64(p.NumRequests)*shrink))
		w = nil
	}
	if w == nil {
		return nil, fmt.Errorf("experiments: could not shrink fig8 workload into one library")
	}
	cl, err := clusterOnce(w)
	if err != nil {
		return nil, err
	}
	var runs []Run
	for _, n := range libCounts {
		hw := cfg.HW
		hw.Libraries = n
		for _, sch := range cfg.threeSchemes(cl) {
			runs = append(runs, Run{
				Label:  fmt.Sprintf("libraries=%d", n),
				Scheme: sch,
				W:      w,
				HW:     hw,
				X:      float64(n),
			})
		}
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Figure 8. Bandwidth vs. number of tape libraries (avg request ≈ 240 GB)",
		"libraries", "scheme", "bandwidth MB/s", "avg response s", "drives used/req")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(fmt.Sprintf("%.0f", r.X), r.Scheme, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(fmt.Sprintf("%.0f", r.X), r.Scheme, mbps(r.Stats.MeanBandwidth),
			secs(r.Stats.MeanResponse), fmt.Sprintf("%.1f", r.Stats.MeanDrivesUsed))
	}
	return &Report{ID: "fig8", Caption: "Bandwidth vs. number of tape libraries", Table: t, Rows: rows}, nil
}

// Fig9 reproduces Figure 9: the response-time decomposition (average tape
// switch / data seek / data transfer time) for the three schemes at
// ≈160 GB average request size. Findings: object probability is
// switch-dominated, seek time is negligible everywhere, object probability
// has the best transfer time.
func Fig9(cfg Config) (*Report, error) {
	w, err := cfg.baseWorkload(cfg.target(fig9ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(w)
	if err != nil {
		return nil, err
	}
	var runs []Run
	for _, sch := range cfg.threeSchemes(cl) {
		runs = append(runs, Run{Label: "components", Scheme: sch, W: w, HW: cfg.HW})
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Figure 9. Response time component comparison (avg request ≈ 160 GB)",
		"scheme", "switch s", "seek s", "transfer s", "response s", "switch share", "transfer share")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Scheme, "ERROR: "+r.Err.Error())
			continue
		}
		resp := r.Stats.MeanResponse
		switchShare, xferShare := 0.0, 0.0
		if resp > 0 {
			switchShare = r.Stats.MeanSwitch / resp
			xferShare = r.Stats.MeanTransfer / resp
		}
		t.AddRow(r.Scheme, secs(r.Stats.MeanSwitch), secs(r.Stats.MeanSeek),
			secs(r.Stats.MeanTransfer), secs(resp),
			units.Percent(switchShare), units.Percent(xferShare))
	}
	return &Report{ID: "fig9", Caption: "Response time component comparison", Table: t, Rows: rows}, nil
}

// Tech reproduces the closing §6 remark: when tape technology improves
// (higher transfer rate, larger cartridges), parallel batch placement
// gains more than the baselines.
func Tech(cfg Config) (*Report, error) {
	base, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(base)
	if err != nil {
		return nil, err
	}
	points := []struct {
		rate float64
		cap  float64
	}{{1, 1}, {2, 1}, {4, 1}, {1, 2}, {2, 2}}
	var runs []Run
	for _, pt := range points {
		hw := cfg.HW
		hw.TransferRate *= pt.rate
		hw.Capacity = int64(float64(hw.Capacity) * pt.cap)
		for _, sch := range cfg.threeSchemes(cl) {
			runs = append(runs, Run{
				Label:  fmt.Sprintf("rate x%.0f, capacity x%.0f", pt.rate, pt.cap),
				Scheme: sch,
				W:      base,
				HW:     hw,
				X:      pt.rate,
			})
		}
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Technology scaling (§6 closing remark): improved drives/cartridges",
		"technology", "scheme", "bandwidth MB/s", "avg response s")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, r.Scheme, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, r.Scheme, mbps(r.Stats.MeanBandwidth), secs(r.Stats.MeanResponse))
	}
	return &Report{ID: "tech", Caption: "Technology scaling", Table: t, Rows: rows}, nil
}

// Robustness reproduces the §6 robustness remark: varying the object
// population, the predefined request count, and the simulated request
// count does not change the relative order of the schemes.
func Robustness(cfg Config) (*Report, error) {
	type variant struct {
		name     string
		objects  float64 // population multiplier
		requests float64 // predefined request multiplier
		sim      float64 // simulated request multiplier
	}
	// The first group of variants preserves the workload's co-access
	// density (requests per object); the paper's invariance claim holds
	// there. "requests x2" deliberately densifies co-access — see
	// EXPERIMENTS.md for why that regime behaves differently.
	variants := []variant{
		{"baseline", 1, 1, 1},
		{"population x0.5", 0.5, 0.5, 1},
		{"requests x0.5", 1, 0.5, 1},
		{"requests x2 (denser)", 1, 2, 1},
		{"simulated x0.5", 1, 1, 0.5},
		{"simulated x2", 1, 1, 2},
	}
	var runs []Run
	var perRunRequests []int
	for vi, v := range variants {
		p, err := cfg.baseParams()
		if err != nil {
			return nil, err
		}
		p.NumObjects = max(p.MaxReqLen*2, int(float64(p.NumObjects)*v.objects))
		p.NumRequests = max(10, int(float64(p.NumRequests)*v.requests))
		w, err := workload.Generate(p, rng.New(cfg.Seed+uint64(vi)*101))
		if err != nil {
			return nil, err
		}
		if _, err := workload.TargetMeanRequestBytes(w, cfg.target(fig6ReqBytes)); err != nil {
			return nil, err
		}
		cl, err := clusterOnce(w)
		if err != nil {
			return nil, err
		}
		nSim := max(10, int(float64(cfg.Requests)*v.sim))
		for _, sch := range cfg.threeSchemes(cl) {
			runs = append(runs, Run{Label: v.name, Scheme: sch, W: w, HW: cfg.HW})
			perRunRequests = append(perRunRequests, nSim)
		}
	}
	// Execute with per-run request counts by grouping runs that share one
	// count into a sub-config batch.
	rows := make([]Row, len(runs))
	byN := map[int][]int{}
	for i, n := range perRunRequests {
		byN[n] = append(byN[n], i)
	}
	for n, idxs := range byN {
		sub := cfg
		sub.Requests = n
		subRuns := make([]Run, len(idxs))
		for j, i := range idxs {
			subRuns[j] = runs[i]
		}
		subRows := sub.RunAll(subRuns)
		for j, i := range idxs {
			rows[i] = subRows[j]
		}
	}
	t := metrics.NewTable(
		"Robustness (§6): relative scheme order under workload variations",
		"variant", "scheme", "bandwidth MB/s", "avg response s")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, r.Scheme, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, r.Scheme, mbps(r.Stats.MeanBandwidth), secs(r.Stats.MeanResponse))
	}
	return &Report{ID: "robustness", Caption: "Robustness to workload variation", Table: t, Rows: rows}, nil
}

// Ablation quantifies each parallel-batch design choice (§5) by switching
// one off at a time, plus the naive round-robin spread as a floor.
func Ablation(cfg Config) (*Report, error) {
	w, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(w)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		sch  placement.Scheme
	}{
		{"full parallel-batch", placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl}},
		{"no clustering (density only)", placement.ParallelBatch{M: cfg.M, K: cfg.K, NoRefine: true}},
		{"no organ-pipe alignment", placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl, NoOrganPipe: true}},
		{"first-fit balancing", placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl, FirstFitBalance: true}},
		{"no cluster splitting", placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl, SplitThreshold: 1 << 62}},
		{"wide hot batch (1+2)", placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl, WideHotBatch: true}},
		{"round-robin spread", placement.RoundRobin{K: cfg.K}},
	}
	var runs []Run
	for _, v := range variants {
		runs = append(runs, Run{Label: v.name, Scheme: v.sch, W: w, HW: cfg.HW})
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Ablation: parallel batch placement design choices",
		"variant", "bandwidth MB/s", "avg response s", "switch s", "seek s", "transfer s")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, mbps(r.Stats.MeanBandwidth), secs(r.Stats.MeanResponse),
			secs(r.Stats.MeanSwitch), secs(r.Stats.MeanSeek), secs(r.Stats.MeanTransfer))
	}
	return &Report{ID: "ablation", Caption: "Parallel batch design ablation", Table: t, Rows: rows}, nil
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Report, error) {
	type fn struct {
		name string
		f    func(Config) (*Report, error)
	}
	fns := []fn{
		{"table1", Table1}, {"fig5", Fig5}, {"fig6", Fig6}, {"fig7", Fig7},
		{"fig8", Fig8}, {"fig9", Fig9}, {"tech", Tech},
		{"robustness", Robustness}, {"ablation", Ablation},
		{"striping", Striping}, {"online", Online}, {"scheduler", Scheduler},
		{"sensitivity", Sensitivity}, {"chaos", Chaos}, {"phases", Phases},
	}
	var out []*Report
	for _, f := range fns {
		rep, err := f.f(cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", f.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// ByID dispatches one experiment by identifier.
func ByID(id string, cfg Config) (*Report, error) {
	switch id {
	case "table1":
		return Table1(cfg)
	case "fig5":
		return Fig5(cfg)
	case "fig6":
		return Fig6(cfg)
	case "fig7":
		return Fig7(cfg)
	case "fig8":
		return Fig8(cfg)
	case "fig9":
		return Fig9(cfg)
	case "tech":
		return Tech(cfg)
	case "robustness":
		return Robustness(cfg)
	case "ablation":
		return Ablation(cfg)
	case "striping":
		return Striping(cfg)
	case "online":
		return Online(cfg)
	case "scheduler":
		return Scheduler(cfg)
	case "sensitivity":
		return Sensitivity(cfg)
	case "chaos":
		return Chaos(cfg)
	case "phases":
		return Phases(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want table1, fig5..fig9, tech, robustness, ablation, striping, online, scheduler, sensitivity, chaos, phases)", id)
	}
}
