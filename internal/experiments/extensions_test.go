package experiments

import (
	"strings"
	"testing"
)

func TestStripingShape(t *testing.T) {
	rep, err := Striping(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	var noStripe float64
	var stripedBest float64
	var stripedTapes, plainTapes float64
	for _, r := range rep.Rows {
		if r.Label == "no striping" {
			noStripe = r.Stats.MeanBandwidth
			plainTapes = r.Stats.MeanTapes
			continue
		}
		if r.Stats.MeanBandwidth > stripedBest {
			stripedBest = r.Stats.MeanBandwidth
		}
		if r.Stats.MeanTapes > stripedTapes {
			stripedTapes = r.Stats.MeanTapes
		}
	}
	if noStripe <= 0 || stripedBest <= 0 {
		t.Fatal("missing rows")
	}
	// The paper's §2 position: striped placement does not beat the
	// relationship-aware scheme.
	if stripedBest > noStripe {
		t.Errorf("striping beat parallel batch: %v vs %v", stripedBest, noStripe)
	}
	// Striping drags requests across more cartridges.
	if stripedTapes <= plainTapes {
		t.Errorf("striping did not widen tape touch: %v vs %v", stripedTapes, plainTapes)
	}
}

func TestOnlineExperimentShape(t *testing.T) {
	rep, err := Online(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	var offline, oneEpoch, eightEpochs float64
	for _, r := range rep.Rows {
		switch {
		case r.Label == "full knowledge (offline)":
			offline = r.Stats.MeanBandwidth
		case r.X == 1:
			oneEpoch = r.Stats.MeanBandwidth
		case r.X == 8:
			eightEpochs = r.Stats.MeanBandwidth
		}
	}
	if offline <= 0 || oneEpoch <= 0 || eightEpochs <= 0 {
		t.Fatal("missing rows")
	}
	// One epoch sees everything: it should be close to offline quality.
	if oneEpoch < offline*0.85 {
		t.Errorf("1-epoch online %v far below offline %v", oneEpoch, offline)
	}
	// Fragmenting knowledge across 8 epochs must not outperform full
	// knowledge meaningfully.
	if eightEpochs > offline*1.05 {
		t.Errorf("8-epoch online %v beat offline %v", eightEpochs, offline)
	}
}

func TestSchedulerShape(t *testing.T) {
	rep, err := Scheduler(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 9 {
		t.Fatalf("rows = %d, want 3x3 policy grid", len(rep.Rows))
	}
	byLabel := map[string]float64{}
	for _, r := range rep.Rows {
		byLabel[r.Label] = r.Stats.MeanResponse
	}
	def := byLabel["largest-first / least-popular"]
	if def <= 0 {
		t.Fatal("default policy row missing")
	}
	// The paper's implicit default must be competitive with every
	// alternative (within 20% of the best response).
	for label, resp := range byLabel {
		if def > resp*1.2 {
			t.Errorf("default policy (%.1fs) much worse than %s (%.1fs)", def, label, resp)
		}
	}
}

func TestSensitivityShape(t *testing.T) {
	rep, err := Sensitivity(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range rep.Rows {
		byLabel[r.Label] = r.Stats.MeanBandwidth
	}
	auto := byLabel["average / auto"]
	if auto <= 0 {
		t.Fatal("auto setting missing")
	}
	// The default must be within 10% of the best swept setting — i.e. the
	// auto threshold is well chosen.
	for label, bw := range byLabel {
		if auto < bw*0.9 {
			t.Errorf("auto setting (%v) much worse than %s (%v)", auto, label, bw)
		}
	}
}

func TestAllIncludesExtensions(t *testing.T) {
	// Cheap check on the registry rather than running everything twice.
	for _, id := range []string{"striping", "online", "scheduler", "sensitivity"} {
		if _, err := ByID(id, Config{}); err != nil && strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("%s not registered: %v", id, err)
		}
	}
}
