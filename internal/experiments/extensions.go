package experiments

import (
	"fmt"

	"paralleltape/internal/cluster"
	"paralleltape/internal/metrics"
	"paralleltape/internal/placement"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// Striping regenerates the §2 argument the paper makes against tape
// striping [10,13,14,15,9,19]: objects are split into stripe shards dealt
// round-robin across cartridges, giving every transfer full parallelism
// but forcing every request to synchronize across many tapes. The
// experiment compares parallel batch placement on the original workload
// against striped placements at several stripe units.
func Striping(cfg Config) (*Report, error) {
	base, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(base)
	if err != nil {
		return nil, err
	}
	var runs []Run
	runs = append(runs, Run{
		Label:  "no striping",
		Scheme: placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl},
		W:      base,
		HW:     cfg.HW,
	})
	// Stripe units relative to cartridge capacity (the regime, not the
	// absolute number, is what matters across scales).
	for _, frac := range []int64{64, 256, 1024} {
		unit := cfg.HW.Capacity / frac
		if unit < 1 {
			unit = 1
		}
		striped, _, err := workload.Stripe(base, unit)
		if err != nil {
			return nil, err
		}
		runs = append(runs, Run{
			Label:  fmt.Sprintf("stripe unit %s", units.FormatBytesSI(unit)),
			Scheme: placement.RoundRobin{K: cfg.K},
			W:      striped,
			HW:     cfg.HW,
			X:      float64(unit),
		})
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Striping comparison (§2): parallel batch vs. RAIT-style striped placement",
		"placement", "bandwidth MB/s", "avg response s", "switch s", "tapes/req")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, mbps(r.Stats.MeanBandwidth), secs(r.Stats.MeanResponse),
			secs(r.Stats.MeanSwitch), fmt.Sprintf("%.1f", r.Stats.MeanTapes))
	}
	return &Report{ID: "striping", Caption: "Striped vs. parallel batch placement", Table: t, Rows: rows}, nil
}

// Online regenerates the paper's §7 future-work question: how much does
// placing objects with only per-epoch (local) knowledge cost relative to
// the full-knowledge parallel batch placement?
func Online(cfg Config) (*Report, error) {
	base, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(base)
	if err != nil {
		return nil, err
	}
	var runs []Run
	runs = append(runs, Run{
		Label:  "full knowledge (offline)",
		Scheme: placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl},
		W:      base,
		HW:     cfg.HW,
		X:      0,
	})
	for _, epochs := range []int{1, 2, 4, 8} {
		runs = append(runs, Run{
			Label:  fmt.Sprintf("online, %d epochs", epochs),
			Scheme: placement.Online{Epochs: epochs, M: cfg.M, K: cfg.K},
			W:      base,
			HW:     cfg.HW,
			X:      float64(epochs),
		})
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Online placement (§7 future work): per-epoch local knowledge vs. full knowledge",
		"placement", "bandwidth MB/s", "avg response s", "switch s", "switches/req")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, mbps(r.Stats.MeanBandwidth), secs(r.Stats.MeanResponse),
			secs(r.Stats.MeanSwitch), fmt.Sprintf("%.1f", r.Stats.MeanSwitches))
	}
	return &Report{ID: "online", Caption: "Online vs. offline parallel batch placement", Table: t, Rows: rows}, nil
}

// Scheduler sweeps the simulator's scheduling policies (pending-queue
// order × victim selection) on a fixed parallel-batch placement,
// validating the paper's implicit choices (largest-first service,
// least-popular replacement [11]).
func Scheduler(cfg Config) (*Report, error) {
	base, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	cl, err := clusterOnce(base)
	if err != nil {
		return nil, err
	}
	scheme := placement.ParallelBatch{M: cfg.M, K: cfg.K, Precomputed: cl}
	var runs []Run
	for _, po := range []tapesys.PendingOrder{tapesys.LargestFirst, tapesys.SmallestFirst, tapesys.SlotOrder} {
		for _, vp := range []tapesys.VictimPolicy{tapesys.LeastPopular, tapesys.MostPopular, tapesys.DriveOrder} {
			runs = append(runs, Run{
				Label:  po.String() + " / " + vp.String(),
				Scheme: scheme,
				W:      base,
				HW:     cfg.HW,
				Opts:   tapesys.Options{Pending: po, Victim: vp},
			})
		}
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Scheduler policy sweep (parallel batch placement)",
		"pending / victim", "bandwidth MB/s", "avg response s", "switch s", "robot wait s")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, mbps(r.Stats.MeanBandwidth), secs(r.Stats.MeanResponse),
			secs(r.Stats.MeanSwitch), secs(r.Stats.MeanRobotWait))
	}
	return &Report{ID: "scheduler", Caption: "Scheduling policy sweep", Table: t, Rows: rows}, nil
}

// Sensitivity sweeps the §5.1 clustering knobs (linkage criterion and the
// "preset probability value" threshold) and reports their effect on the
// parallel batch placement. The paper fixes neither; this experiment shows
// how much they matter.
func Sensitivity(cfg Config) (*Report, error) {
	base, err := cfg.baseWorkload(cfg.target(fig6ReqBytes))
	if err != nil {
		return nil, err
	}
	// The automatic threshold is 0.9x the smallest positive request
	// probability; sweep absolute thresholds around it.
	minProb := 1.0
	for i := range base.Requests {
		if p := base.Requests[i].Prob; p > 0 && p < minProb {
			minProb = p
		}
	}
	type point struct {
		name string
		ccfg cluster.Config
	}
	points := []point{
		{"average / auto", cluster.Config{Linkage: cluster.Average}},
		{"single / auto", cluster.Config{Linkage: cluster.Single}},
		{"complete / auto", cluster.Config{Linkage: cluster.Complete}},
		{"average / 0.1x", cluster.Config{Linkage: cluster.Average, Threshold: 0.09 * minProb}},
		{"average / 2x", cluster.Config{Linkage: cluster.Average, Threshold: 1.8 * minProb}},
		{"average / 10x", cluster.Config{Linkage: cluster.Average, Threshold: 9 * minProb}},
	}
	var runs []Run
	for _, pt := range points {
		runs = append(runs, Run{
			Label:  pt.name,
			Scheme: placement.ParallelBatch{M: cfg.M, K: cfg.K, Clustering: pt.ccfg},
			W:      base,
			HW:     cfg.HW,
		})
	}
	rows := cfg.RunAll(runs)
	t := metrics.NewTable(
		"Clustering sensitivity (linkage / threshold vs. the auto setting)",
		"linkage / threshold", "bandwidth MB/s", "avg response s", "switch s", "tapes/req")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(r.Label, "ERROR: "+r.Err.Error())
			continue
		}
		t.AddRow(r.Label, mbps(r.Stats.MeanBandwidth), secs(r.Stats.MeanResponse),
			secs(r.Stats.MeanSwitch), fmt.Sprintf("%.1f", r.Stats.MeanTapes))
	}
	return &Report{ID: "sensitivity", Caption: "Clustering parameter sensitivity", Table: t, Rows: rows}, nil
}
