//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; heavy
// sweep-matrix tests shrink their load under it so the CI race job stays
// inside its time budget while still exercising every code path.
const raceEnabled = true
