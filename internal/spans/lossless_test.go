package spans_test

// Lossless-reconstruction property test: for real simulator runs —
// healthy and fault-injected, at shard counts {0, 1, 2, 4} — every trace
// event must be claimed by exactly one request (or the boundary bucket),
// every request's phase attribution must sum to its mechanical span, and
// the rendered breakdown must be byte-identical at every shard count and
// across a JSONL export/parse round trip. This is the analyzer-level half
// of the determinism contract in docs/ARCHITECTURE.md.

import (
	"bytes"
	"math"
	"testing"

	"paralleltape/internal/dist"
	"paralleltape/internal/faults"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/spans"
	"paralleltape/internal/tape"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/trace"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// scenarioShards are the shard counts every scenario is replayed at; the
// derived breakdown must be byte-identical across all of them.
var scenarioShards = []int{0, 1, 2, 4}

// runScenario executes a fixed 60-request workload on a 4-library system
// and returns the raw trace plus the per-request metrics the simulator
// reported.
func runScenario(t *testing.T, shards int, faulty bool) ([]trace.Event, []tapesys.RequestMetrics) {
	t.Helper()
	hw := tape.DefaultHardware()
	hw.Libraries = 4
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 20
	hw.Capacity = 32 * units.MB
	w, err := workload.Generate(workload.Params{
		NumObjects:  500,
		NumRequests: 40,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   6,
		MaxReqLen:   18,
		ReqLenShape: 1,
		Alpha:       0.3,
	}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := placement.ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	opts := tapesys.Options{Shards: shards}
	if faulty {
		opts.Faults = &faults.Profile{
			Seed:              77,
			DriveMTBF:         2000,
			DriveRepair:       dist.Exponential{Mean: 300},
			RobotMTBF:         8000,
			RobotRepair:       dist.Exponential{Mean: 120},
			MediaErrorPerRead: 0.02,
		}
		opts.RequestTimeout = 3000
		opts.RetryBackoff = 30
	}
	s, err := tapesys.NewWithOptions(hw, pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.EnableTrace(0)
	stream, err := workload.NewRequestStream(w, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var ms []tapesys.RequestMetrics
	for i := 0; i < 60; i++ {
		m, err := s.Submit(stream.Next())
		if err != nil {
			t.Fatalf("shards=%d request %d: %v", shards, i, err)
		}
		ms = append(ms, m)
	}
	return buf.Events, ms
}

// checkLossless builds the session and asserts the reconstruction
// invariants, returning the session for further checks.
func checkLossless(t *testing.T, events []trace.Event, ms []tapesys.RequestMetrics) *spans.Session {
	t.Helper()
	s, err := spans.Build(events)
	if err != nil {
		t.Fatal(err)
	}
	// Every event claimed exactly once: request claims plus the boundary
	// bucket partition the stream.
	claimed := len(s.Boundary) + s.Latches
	for _, r := range s.Requests {
		claimed += r.Events
	}
	if claimed != len(events) || s.Events != len(events)-s.Latches {
		t.Fatalf("claimed %d of %d events (boundary %d, latches %d)",
			claimed, len(events), len(s.Boundary), s.Latches)
	}
	if len(s.Requests) != len(ms) {
		t.Fatalf("reconstructed %d requests, simulator reported %d", len(s.Requests), len(ms))
	}
	for i, r := range s.Requests {
		// The reconstructed response must be bit-exact against the
		// simulator's own metric (floats round-trip losslessly).
		if r.Response != ms[i].Response {
			t.Errorf("request %d: reconstructed response %v, simulator reported %v",
				r.ID, r.Response, ms[i].Response)
		}
		if r.TimedOut != ms[i].TimedOut {
			t.Errorf("request %d: timeout flag mismatch", r.ID)
		}
		var sum float64
		for _, v := range r.PhaseTotals {
			sum += v
		}
		if math.Abs(sum-r.Wall()) > 1e-6*math.Max(1, r.Wall()) {
			t.Errorf("request %d: phase attribution %v != wall %v", r.ID, sum, r.Wall())
		}
		for _, op := range r.Ops {
			if op.Events == 0 {
				t.Errorf("request %d: span %d claimed no events", r.ID, op.Span)
			}
		}
	}
	return s
}

// renderAll produces every deterministic rendering of a session for
// byte-comparison across shard counts.
func renderAll(t *testing.T, s *spans.Session) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := spans.WriteBreakdown(&out, spans.Aggregate(s)); err != nil {
		t.Fatal(err)
	}
	if err := spans.WriteBreakdownCSV(&out, spans.Aggregate(s)); err != nil {
		t.Fatal(err)
	}
	if err := spans.WriteSlowest(&out, s, 3); err != nil {
		t.Fatal(err)
	}
	if err := spans.WriteTimelineCSV(&out, s); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestLosslessReconstruction(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		name := "healthy"
		if faulty {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			var base []byte
			for _, shards := range scenarioShards {
				events, ms := runScenario(t, shards, faulty)
				s := checkLossless(t, events, ms)
				if faulty {
					degraded := false
					for _, r := range s.Requests {
						for _, op := range r.Ops {
							if op.Failed || op.MediaError || op.RetryOf != nil {
								degraded = true
							}
						}
					}
					if !degraded {
						t.Fatal("fault profile too tame: no degraded operations reconstructed")
					}
				}
				got := renderAll(t, s)
				if base == nil {
					base = got
					continue
				}
				if !bytes.Equal(base, got) {
					t.Fatalf("shards=%d: rendered analysis diverges from shards=%d baseline", shards, scenarioShards[0])
				}
			}
		})
	}
}

// TestJSONLRoundTripAnalysis re-analyzes a trace after an export/parse
// round trip: the breakdown must be byte-identical to the in-memory one,
// proving the file path (cmd/tapetrace) and the in-memory path (tapesim
// -explain) see the same trees.
func TestJSONLRoundTripAnalysis(t *testing.T) {
	events, ms := runScenario(t, 2, true)
	direct := checkLossless(t, events, ms)
	var file bytes.Buffer
	if err := trace.WriteJSONL(&file, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ParseJSONL(&file)
	if err != nil {
		t.Fatal(err)
	}
	reparsed := checkLossless(t, parsed, ms)
	if !bytes.Equal(renderAll(t, direct), renderAll(t, reparsed)) {
		t.Fatal("analysis differs after JSONL round trip")
	}
}
