package spans

// Critical-path analysis: walk backward from the operation that finished
// last — the one that bounded the request's response time — through
// same-drive continuation (an operation starting the instant its
// predecessor ended) and explicit retry edges, closing with the dispatch
// wait back to the submit instant. Forward in time, the resulting step
// chain covers [Submit, End] exactly, so the per-phase attribution sums
// to the request's mechanical span.

import "paralleltape/internal/trace"

// Phase labels one slice of a request's critical-path time.
type Phase int

// The critical-path phases, in the fixed presentation order used by
// every breakdown table.
const (
	// PhaseQueue is time an operation chain waited to be dispatched
	// (all of the library's drives busy, or initial dispatch).
	PhaseQueue Phase = iota
	// PhaseRewind is rewind+unload time of outgoing cartridges.
	PhaseRewind
	// PhaseRobotWait is time spent queued for a library's robot arm.
	PhaseRobotWait
	// PhaseRobotOutage is robot-arm failure time ridden out while holding
	// the arm (degraded mode).
	PhaseRobotOutage
	// PhaseRobotMove is robot stow+fetch motion time.
	PhaseRobotMove
	// PhaseLoad is cartridge load+thread time.
	PhaseLoad
	// PhaseSeek is tape seek time within serves.
	PhaseSeek
	// PhaseTransfer is data transfer time within serves.
	PhaseTransfer
	// PhaseRetryWait is backoff time between an interrupted operation and
	// its re-dispatch (degraded mode).
	PhaseRetryWait
	// PhaseStall is time a request sat waiting on a drive repair with no
	// alive drive to dispatch to (degraded mode).
	PhaseStall
	// NumPhases is the number of phases (array sizing).
	NumPhases
)

// phaseNames indexes Phase presentation names.
var phaseNames = [NumPhases]string{
	"queue", "rewind", "robot-wait", "robot-outage", "robot-move",
	"load", "seek", "transfer", "retry-wait", "repair-stall",
}

// String returns the phase's presentation name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// AllPhases returns every phase in presentation order.
func AllPhases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Step is one link of a request's critical path: an operation, or a gap
// (queue wait, retry backoff, repair stall) between operations.
type Step struct {
	// Op is the operation this step runs, nil for a gap step.
	Op *Op
	// Phase is the gap's phase when Op is nil (queue, retry-wait, or
	// repair-stall); unset for operation steps.
	Phase Phase
	// Start is the step's start time.
	Start float64
	// End is the step's end time.
	End float64
	// Parts attributes the step's duration to phases; operation steps
	// split across their mechanical phases, gap steps put everything into
	// Phase.
	Parts [NumPhases]float64
}

// parts decomposes an operation's elapsed time into phases. Serves split
// into seek then transfer; switches into rewind, robot wait (the
// residual after the known stage durations), outage, move, and load.
// The entries sum exactly to Elapsed, so truncated operations (failures,
// media errors) attribute only the time they actually consumed.
func (op *Op) parts() [NumPhases]float64 {
	var p [NumPhases]float64
	el := op.End - op.Start
	if el <= 0 {
		return p
	}
	if op.Serve {
		seek := op.Seek
		if seek > el {
			seek = el
		}
		p[PhaseSeek] = seek
		p[PhaseTransfer] = el - seek
		return p
	}
	rewind := op.Rewind
	if rewind > el {
		rewind = el
	}
	p[PhaseRewind] = rewind
	p[PhaseRobotOutage] = op.RobotOutage
	p[PhaseRobotMove] = op.RobotMove
	p[PhaseLoad] = op.Load
	wait := el - rewind - op.RobotOutage - op.RobotMove - op.Load
	if wait < 0 {
		// Stages are recorded only when fully consumed, so a negative
		// residual is float rounding (−1e-14 scale), not a real phase —
		// clamp it rather than render "-0.00s" blame.
		wait = 0
	}
	p[PhaseRobotWait] = wait
	return p
}

// computeCritical builds the request's critical path and accumulates its
// per-phase attribution. Deterministic by construction: every choice
// (final operation, predecessor, retry link) is resolved on timestamps,
// indices, and span IDs, all of which are shard-count-invariant.
func (r *Request) computeCritical() {
	r.Critical = r.Critical[:0]
	if len(r.Ops) == 0 {
		if r.End > r.Submit {
			r.gapStep(PhaseQueue, r.Submit, r.End)
		}
		r.accumulate()
		return
	}
	// The chain's head: the operation that ended last. Ops are sorted, so
	// taking the strictly-greatest End keeps ties deterministic.
	final := r.Ops[0]
	for _, op := range r.Ops[1:] {
		if op.End > final.End {
			final = op
		}
	}
	var rev []Step
	// Trailing gap: the request can outlive its last operation when an
	// interrupted group's retry backoff expired into an abandoned queue.
	if r.End > final.End {
		rev = append(rev, gap(PhaseRetryWait, final.End, r.End))
	}
	seen := make(map[*Op]bool)
	cur := final
	for cur != nil && !seen[cur] {
		seen[cur] = true
		rev = append(rev, opStep(cur))
		if cur.RetryOf != nil && cur.RetryOf.End <= cur.Start {
			if cur.Start > cur.RetryOf.End {
				rev = append(rev, gap(PhaseRetryWait, cur.RetryOf.End, cur.Start))
			}
			cur = cur.RetryOf
			continue
		}
		if pred := r.predecessor(cur); pred != nil {
			cur = pred
			continue
		}
		if cur.Start > r.Submit {
			ph := PhaseQueue
			if r.repairedIn(r.Submit, cur.Start) {
				ph = PhaseStall
			}
			rev = append(rev, gap(ph, r.Submit, cur.Start))
		}
		break
	}
	for i := len(rev) - 1; i >= 0; i-- {
		r.Critical = append(r.Critical, rev[i])
	}
	r.accumulate()
}

// predecessor finds the operation whose end is exactly cur's start on the
// same drive — the continuation chain the simulator schedules at a single
// instant (serve → switch → serve). Latest start wins ties.
func (r *Request) predecessor(cur *Op) *Op {
	var best *Op
	for _, op := range r.Ops {
		if op == cur || op.Lib != cur.Lib || op.Drive != cur.Drive {
			continue
		}
		if op.End != cur.Start || op.Start > cur.Start {
			continue
		}
		if best == nil || op.Start > best.Start || (op.Start == best.Start && op.Span > best.Span) {
			best = op
		}
	}
	return best
}

// repairedIn reports whether a mid-request drive repair landed in the
// half-open interval (from, to] — the signature of a repair stall.
func (r *Request) repairedIn(from, to float64) bool {
	for _, ev := range r.Incidents {
		if ev.Kind == trace.KindDriveRepaired && ev.T > from && ev.T <= to {
			return true
		}
	}
	return false
}

// gap builds a gap step attributed entirely to one phase.
func gap(ph Phase, start, end float64) Step {
	st := Step{Phase: ph, Start: start, End: end}
	st.Parts[ph] = end - start
	return st
}

// gapStep appends a gap step to the critical path.
func (r *Request) gapStep(ph Phase, start, end float64) {
	r.Critical = append(r.Critical, gap(ph, start, end))
}

// opStep builds an operation step with its phase decomposition.
func opStep(op *Op) Step {
	return Step{Op: op, Start: op.Start, End: op.End, Parts: op.parts()}
}

// accumulate folds the critical path's step parts into PhaseTotals.
func (r *Request) accumulate() {
	var tot [NumPhases]float64
	for _, st := range r.Critical {
		for i, v := range st.Parts {
			tot[i] += v
		}
	}
	r.PhaseTotals = tot
}
