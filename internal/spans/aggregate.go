package spans

// Aggregation: fold a Session's per-request critical-path attributions
// into per-phase distributions and blame shares, extract the slowest
// requests, and derive utilization time series from span boundaries. The
// package deliberately carries its own percentile helper instead of
// importing internal/metrics, so metrics can build its report sections on
// top of spans without an import cycle.

import (
	"math"
	"slices"
	"sort"
	"strconv"

	"paralleltape/internal/trace"
)

// Dist summarizes one per-request quantity across a session.
type Dist struct {
	// Count is the number of samples.
	Count int
	// Total is the sum of samples.
	Total float64
	// Mean is Total / Count (0 for an empty distribution).
	Mean float64
	// P50 is the median (nearest-rank).
	P50 float64
	// P95 is the 95th percentile (nearest-rank).
	P95 float64
	// P99 is the 99th percentile (nearest-rank).
	P99 float64
	// Max is the largest sample.
	Max float64
}

// newDist summarizes a sample slice (consumed: sorted in place).
func newDist(samples []float64) Dist {
	d := Dist{Count: len(samples)}
	if len(samples) == 0 {
		return d
	}
	sort.Float64s(samples)
	for _, v := range samples {
		d.Total += v
	}
	d.Mean = d.Total / float64(len(samples))
	d.P50 = percentile(samples, 0.50)
	d.P95 = percentile(samples, 0.95)
	d.P99 = percentile(samples, 0.99)
	d.Max = samples[len(samples)-1]
	return d
}

// percentile returns the nearest-rank percentile of a sorted sample set.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Breakdown is a session's critical-path phase attribution: where the
// response time of the average (and tail) request actually went.
type Breakdown struct {
	// Requests is the number of requests aggregated.
	Requests int
	// TimedOut counts requests that exceeded their deadline.
	TimedOut int
	// Events is the total number of trace events behind the aggregation.
	Events int
	// Horizon is the simulated time of the last request completion.
	Horizon float64
	// Response is the distribution of reported response times (§6).
	Response Dist
	// Wall is the distribution of mechanical spans (End − Submit); equal
	// to Response unless requests timed out.
	Wall Dist
	// Phases holds one distribution per critical-path phase, indexed by
	// Phase, over the per-request attribution seconds.
	Phases [NumPhases]Dist
}

// Share returns the phase's critical-path blame share in [0, 1]: its
// summed attribution over the summed mechanical span.
func (b *Breakdown) Share(p Phase) float64 {
	if b.Wall.Total <= 0 {
		return 0
	}
	return b.Phases[p].Total / b.Wall.Total
}

// Aggregate folds a session into its phase breakdown.
func Aggregate(s *Session) *Breakdown {
	b := &Breakdown{Requests: len(s.Requests), Events: s.Events}
	resp := make([]float64, 0, len(s.Requests))
	wall := make([]float64, 0, len(s.Requests))
	phase := make([][]float64, NumPhases)
	for i := range phase {
		phase[i] = make([]float64, 0, len(s.Requests))
	}
	for _, r := range s.Requests {
		if r.TimedOut {
			b.TimedOut++
		}
		if r.End > b.Horizon {
			b.Horizon = r.End
		}
		resp = append(resp, r.Response)
		wall = append(wall, r.Wall())
		for i, v := range r.PhaseTotals {
			phase[i] = append(phase[i], v)
		}
	}
	b.Response = newDist(resp)
	b.Wall = newDist(wall)
	for i := range phase {
		b.Phases[i] = newDist(phase[i])
	}
	return b
}

// Slowest returns the session's k slowest requests by reported response
// time, ties broken by request ID, slowest first.
func (s *Session) Slowest(k int) []*Request {
	reqs := slices.Clone(s.Requests)
	slices.SortFunc(reqs, func(a, b *Request) int {
		if a.Response != b.Response {
			if a.Response > b.Response {
				return -1
			}
			return 1
		}
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
	if k > len(reqs) {
		k = len(reqs)
	}
	if k < 0 {
		k = 0
	}
	return reqs[:k]
}

// QueuePoint is one sample of a robot wait-queue depth series, taken at
// a contention event (enqueue, grant, release).
type QueuePoint struct {
	// Name is the resource name ("robot-N").
	Name string
	// T is the sample time.
	T float64
	// Depth is the wait-queue depth immediately after the event.
	Depth int
}

// QueueDepthPoints extracts the robot queue-depth series from the
// session's contention events, stably sorted by (name, time) — each
// resource's events come from one shard in deterministic order, so the
// per-name series is shard-count-invariant.
func (s *Session) QueueDepthPoints() []QueuePoint {
	var pts []QueuePoint
	for _, r := range s.Requests {
		for _, ev := range r.Contention {
			switch ev.Kind {
			case trace.KindResourceWait, trace.KindResourceGrant, trace.KindResourceRelease:
				pts = append(pts, QueuePoint{Name: ev.Name, T: ev.T, Depth: ev.Queue})
			}
		}
	}
	slices.SortStableFunc(pts, func(a, b QueuePoint) int {
		if a.Name != b.Name {
			if a.Name < b.Name {
				return -1
			}
			return 1
		}
		if a.T != b.T {
			if a.T < b.T {
				return -1
			}
			return 1
		}
		return 0
	})
	return pts
}

// driveName renders the canonical "L<lib>.D<drive>" component label used
// across the repo's reports.
func driveName(lib, drive int) string {
	return "L" + strconv.Itoa(lib) + ".D" + strconv.Itoa(drive)
}

// BusyInterval is one span of drive or robot activity derived from
// operation boundaries.
type BusyInterval struct {
	// Name is the component ("L<lib>.D<drive>" or "robot-<lib>").
	Name string
	// Start is when the component became busy.
	Start float64
	// End is when the component went idle again.
	End float64
}

// BusyIntervals derives per-drive activity intervals (every operation's
// [Start, End]) and per-robot occupancy intervals (each release event's
// hold span) from the session, sorted by (name, start, end).
func (s *Session) BusyIntervals() []BusyInterval {
	var out []BusyInterval
	for _, r := range s.Requests {
		for _, op := range r.Ops {
			if op.End > op.Start {
				out = append(out, BusyInterval{Name: driveName(op.Lib, op.Drive), Start: op.Start, End: op.End})
			}
		}
		for _, ev := range r.Contention {
			if ev.Kind == trace.KindResourceRelease && ev.Dur > 0 {
				out = append(out, BusyInterval{Name: ev.Name, Start: ev.T - ev.Dur, End: ev.T})
			}
		}
	}
	slices.SortFunc(out, func(a, b BusyInterval) int {
		if a.Name != b.Name {
			if a.Name < b.Name {
				return -1
			}
			return 1
		}
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		if a.End != b.End {
			if a.End < b.End {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}
