// Package spans reconstructs causal span trees from the simulator's flat
// trace-event stream (internal/trace) and attributes each request's
// latency to its mechanical phases.
//
// The simulator serves one request at a time (the paper's zero-queueing
// assumption), and every operation-scoped event carries a span ID assigned
// deterministically per drive, so reconstruction needs no heuristics:
//
//   - the submit event opens a request window and the complete event
//     closes it; every event of the request — including robot contention
//     events that carry no request ID — lies between the two in any
//     recorder stream, sharded or not;
//   - events with a span ID group into operations: a serve (seek +
//     transfer on one drive) or a switch chain (rewind → robot wait →
//     robot move → load → mounted), including the degraded-mode endings
//     of docs/RESILIENCE.md (drive failures, media errors, retries);
//   - op-retried events link an interrupted operation to the operation
//     that re-dispatched its tape group, so retry chains are explicit
//     edges, not guesses.
//
// Build consumes a stream and returns a Session of fully analyzed
// Requests: per-operation phase decompositions, the critical path (the
// chain of operations and waits that actually bounded the response time),
// and per-phase latency attribution whose sum equals the request's
// mechanical span. Every event is claimed by exactly one request (or the
// boundary bucket for events between requests, or the latch tally for
// shard-join markers); an unclaimable event is an error, not a silent
// drop.
//
// Because span IDs and event timestamps are identical at every shard
// count, the reconstruction — and everything derived from it, including
// the cmd/tapetrace breakdown tables — is byte-identical for shards
// {0,1,2,4,...} even though the raw cross-shard event interleaving is
// scheduling-dependent.
package spans

import (
	"fmt"
	"slices"

	"paralleltape/internal/trace"
)

// Op is one reconstructed drive operation: a serve (seek + transfer of
// one tape group) or a switch chain (rewind → robot → load → mounted).
type Op struct {
	// Span is the operation's trace span ID (opaque, unique per run).
	Span int64
	// Serve is true for a seek+transfer service, false for a switch chain.
	Serve bool
	// Lib is the library index of the operating drive.
	Lib int
	// Drive is the library-local index of the operating drive.
	Drive int
	// Tape is the library-local tape index the operation targeted, -1 when
	// the operation aborted before any event revealed it.
	Tape int
	// Start is the simulated time the operation began.
	Start float64
	// End is the simulated time the operation ended (completion, failure,
	// or its last observed event).
	End float64
	// Bytes is the payload of the tape group being served (serves only).
	Bytes int64
	// Seek is the planned seek time of a serve.
	Seek float64
	// Transfer is the planned transfer time of a serve.
	Transfer float64
	// Rewind is the planned rewind+unload time of a switch (0 when the
	// drive was empty).
	Rewind float64
	// RobotMove is the planned robot stow+fetch motion time of a switch.
	RobotMove float64
	// Load is the planned load+thread time of a switch.
	Load float64
	// RobotOutage is the robot-arm outage time this switch rode out while
	// holding the arm (kind "robot-failed").
	RobotOutage float64
	// Done is true when a serve finished normally (kind "serve-end").
	Done bool
	// Mounted is true when a switch completed its mount (kind "mounted").
	Mounted bool
	// Failed is true when the operation ended with its drive failing
	// (kind "drive-failed" carrying this span).
	Failed bool
	// MediaError is true when a serve ended on a permanent media error.
	MediaError bool
	// Retried is true when this operation's tape group was re-dispatched
	// after the operation was interrupted (kind "op-retried").
	Retried bool
	// RetryOf points at the interrupted operation this one re-dispatched,
	// nil for first dispatches.
	RetryOf *Op
	// Attempt is the 1-based retry attempt number when RetryOf is set.
	Attempt int
	// Events counts the trace events claimed by this operation.
	Events int

	lastT    float64
	tapeHint int // target tape revealed by the op's own retry edge
}

// Elapsed returns the operation's wall-clock span in simulated seconds.
func (op *Op) Elapsed() float64 { return op.End - op.Start }

// TargetTape returns the operation's target tape, falling back to the
// tape named by its retry edge when the operation aborted before any
// stage revealed it; -1 when unknown.
func (op *Op) TargetTape() int {
	if op.Tape >= 0 {
		return op.Tape
	}
	return op.tapeHint
}

// retryEdge is one op-retried event: the interrupted span and the group
// it re-dispatched.
type retryEdge struct {
	t       float64
	lib     int
	tape    int
	span    int64
	attempt int
}

// Request is one reconstructed request: its lifecycle, every operation
// executed on its behalf, and the critical-path phase attribution.
type Request struct {
	// ID is the request ID.
	ID int64
	// Submit is the simulated submission time.
	Submit float64
	// End is the simulated time the mechanical work finished (the
	// complete event's timestamp).
	End float64
	// Response is the reported response time (§6); it equals End − Submit
	// unless the request timed out, in which case it is the timeout.
	Response float64
	// Bytes is the request's total payload.
	Bytes int64
	// BytesServed is the payload delivered by the deadline of a timed-out
	// request (equals Bytes otherwise).
	BytesServed int64
	// TimedOut is true when the request exceeded its deadline.
	TimedOut bool
	// Ops lists every operation run for this request, sorted by
	// (library, drive, start time, span).
	Ops []*Op
	// Incidents holds request-scoped degraded-mode events not tied to an
	// operation span (e.g. drive failures observed between operations,
	// mid-request repairs).
	Incidents []trace.Event
	// Contention holds the robot-queue and latch events that occurred
	// inside the request's window.
	Contention []trace.Event
	// Critical is the request's critical path: the chronological chain of
	// operations and waits that bounded End − Submit.
	Critical []Step
	// PhaseTotals is the critical-path latency attribution; the entries
	// sum to End − Submit (up to floating-point rounding).
	PhaseTotals [NumPhases]float64
	// Events counts every trace event claimed by this request.
	Events int

	edges []retryEdge
	ops   map[int64]*Op
}

// Wall returns the request's mechanical wall-clock span End − Submit
// (equal to Response unless the request timed out).
func (r *Request) Wall() float64 { return r.End - r.Submit }

// Session is the reconstruction of one trace: every request in
// submission order plus the events that fell between request windows.
type Session struct {
	// Requests holds the reconstructed requests in submission order.
	Requests []*Request
	// Boundary holds events outside any request window: fault sweeps at
	// request boundaries and manual drive failures between requests.
	Boundary []trace.Event
	// Events is the number of events analyzed: every event consumed except
	// the shard-join latch markers counted in Latches.
	Events int
	// Latches counts latch-open events. They are claimed but excluded from
	// all analysis and counters: one fires per engine shard per request, so
	// their multiplicity is a scheduling artifact, and including them would
	// break the shard-count invariance of every derived output.
	Latches int
}

// Build reconstructs a Session from a trace-event stream in recorder
// order (in-memory buffer or trace.ParseJSONL output). Every event must
// be claimable under the schema's windowing rules; a span event outside a
// request window, a mismatched request ID, or an unterminated window is
// an error.
func Build(events []trace.Event) (*Session, error) {
	s := &Session{}
	var cur *Request
	for i, ev := range events {
		switch {
		case ev.Kind == trace.KindLatchOpen:
			s.Latches++
			continue
		case ev.Kind == trace.KindSubmit:
			if cur != nil {
				return nil, fmt.Errorf("spans: event %d: submit of request %d inside open request %d", i, ev.Req, cur.ID)
			}
			cur = &Request{ID: ev.Req, Submit: ev.T, ops: make(map[int64]*Op)}
			cur.Events++
		case ev.Kind == trace.KindComplete:
			if cur == nil || cur.ID != ev.Req {
				return nil, fmt.Errorf("spans: event %d: complete of request %d without matching submit", i, ev.Req)
			}
			cur.Events++
			cur.End = ev.T
			cur.Response = ev.Dur
			cur.Bytes = ev.Bytes
			if !cur.TimedOut {
				cur.BytesServed = ev.Bytes
			}
			cur.finalize()
			s.Requests = append(s.Requests, cur)
			cur = nil
		case ev.Kind == trace.KindRequestTimedOut:
			if cur == nil || cur.ID != ev.Req {
				return nil, fmt.Errorf("spans: event %d: request-timeout outside request %d's window", i, ev.Req)
			}
			cur.Events++
			cur.TimedOut = true
			cur.BytesServed = ev.Bytes
		case ev.Span != 0:
			if cur == nil {
				return nil, fmt.Errorf("spans: event %d: span %d event %q outside any request window", i, ev.Span, ev.Kind)
			}
			if ev.Req >= 0 && ev.Req != cur.ID {
				return nil, fmt.Errorf("spans: event %d: request %d event inside request %d's window", i, ev.Req, cur.ID)
			}
			cur.claimOp(ev)
		case ev.Req >= 0:
			if cur == nil || cur.ID != ev.Req {
				return nil, fmt.Errorf("spans: event %d: request %d event %q outside its window", i, ev.Req, ev.Kind)
			}
			cur.Events++
			cur.Incidents = append(cur.Incidents, ev)
		case cur != nil:
			cur.Events++
			cur.Contention = append(cur.Contention, ev)
		default:
			s.Boundary = append(s.Boundary, ev)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("spans: request %d has no complete event", cur.ID)
	}
	s.Events = len(events) - s.Latches
	return s, nil
}

// claimOp folds one span-carrying event into its request's operation.
func (r *Request) claimOp(ev trace.Event) {
	op := r.ops[ev.Span]
	if op == nil {
		op = &Op{Span: ev.Span, Lib: ev.Lib, Drive: ev.Drive, Tape: -1, tapeHint: -1, Start: ev.T}
		r.ops[ev.Span] = op
		r.Ops = append(r.Ops, op)
	}
	r.Events++
	op.Events++
	if ev.T > op.lastT {
		op.lastT = ev.T
	}
	switch ev.Kind {
	case trace.KindServeStart:
		op.Serve = true
		op.Start = ev.T
		op.Tape = ev.Tape
		op.Bytes = ev.Bytes
	case trace.KindSeek:
		op.Serve = true
		op.Seek = ev.Dur
	case trace.KindTransfer:
		op.Serve = true
		op.Transfer = ev.Dur
	case trace.KindServeEnd:
		op.Done = true
		op.End = ev.T
	case trace.KindRewind:
		op.Start = ev.T
		op.Rewind = ev.Dur
	case trace.KindRobot:
		op.Tape = ev.Tape
		op.RobotMove = ev.Dur
	case trace.KindLoad:
		op.Tape = ev.Tape
		op.Load = ev.Dur
	case trace.KindMounted:
		op.Tape = ev.Tape
		op.Mounted = true
		op.End = ev.T
	case trace.KindRobotFailed:
		op.RobotOutage += ev.Dur
	case trace.KindMediaError:
		op.MediaError = true
		op.End = ev.T
	case trace.KindDriveFailed:
		op.Failed = true
		op.End = ev.T
	case trace.KindOpRetried:
		op.Retried = true
		op.tapeHint = ev.Tape
		r.edges = append(r.edges, retryEdge{t: ev.T, lib: ev.Lib, tape: ev.Tape, span: ev.Span, attempt: ev.Queue})
	}
}

// finalize closes a request at its complete event: operation end times
// are settled, operations sorted into a deterministic order, retry edges
// resolved into links, and the critical path computed.
func (r *Request) finalize() {
	for _, op := range r.Ops {
		if !op.Done && !op.Mounted && !op.Failed && !op.MediaError {
			op.End = op.lastT
		}
	}
	slices.SortFunc(r.Ops, func(a, b *Op) int {
		if a.Lib != b.Lib {
			return a.Lib - b.Lib
		}
		if a.Drive != b.Drive {
			return a.Drive - b.Drive
		}
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		if a.Span < b.Span {
			return -1
		}
		if a.Span > b.Span {
			return 1
		}
		return 0
	})
	r.linkRetries()
	r.computeCritical()
}

// linkRetries connects each op-retried edge to the operation that
// re-dispatched the interrupted group: the earliest-starting unlinked
// switch in the same library targeting the same tape at or after the
// retry instant. An edge may stay unlinked when the retry was abandoned
// in queue (no surviving drive ever picked it up). The resolution only
// reads deterministic fields (timestamps, indices, span IDs), so links
// are identical at every shard count.
func (r *Request) linkRetries() {
	if len(r.edges) == 0 {
		return
	}
	slices.SortFunc(r.edges, func(a, b retryEdge) int {
		if a.t != b.t {
			if a.t < b.t {
				return -1
			}
			return 1
		}
		if a.lib != b.lib {
			return a.lib - b.lib
		}
		if a.tape != b.tape {
			return a.tape - b.tape
		}
		if a.span < b.span {
			return -1
		}
		if a.span > b.span {
			return 1
		}
		return 0
	})
	for _, e := range r.edges {
		failed := r.ops[e.span]
		var best *Op
		for _, op := range r.Ops {
			if op.Serve || op.RetryOf != nil || op.Lib != e.lib || op.Span == e.span {
				continue
			}
			if op.Start < e.t || op.TargetTape() != e.tape {
				continue
			}
			if best == nil || op.Start < best.Start || (op.Start == best.Start && op.Span < best.Span) {
				best = op
			}
		}
		if best != nil && failed != nil {
			best.RetryOf = failed
			best.Attempt = e.attempt
		}
	}
}
