package spans

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"paralleltape/internal/trace"
)

// ev builds a trace event with the recorder's unset-index conventions
// (-1 for absent lib/drive/tape/req).
func ev(t float64, kind trace.Kind) trace.Event {
	return trace.Event{T: t, Kind: kind, Lib: -1, Drive: -1, Tape: -1, Req: -1}
}

// healthyStream is a hand-written single-request trace: a switch chain on
// drive L0.D1 (robot contention included) followed by a serve of the
// mounted tape. Every timestamp is chosen so the critical path must chain
// switch → serve with no gaps.
func healthyStream() []trace.Event {
	const s1, s2 = int64(1<<32 | 1), int64(1<<32 | 2)
	sub := ev(0, trace.KindSubmit)
	sub.Req = 7
	sub.Bytes = 300
	rw := ev(0, trace.KindRewind)
	rw.Lib, rw.Drive, rw.Req, rw.Span = 0, 1, 7, s1
	grant := ev(0, trace.KindResourceGrant)
	grant.Name = "robot-0"
	rb := ev(0, trace.KindRobot)
	rb.Lib, rb.Drive, rb.Tape, rb.Req, rb.Span, rb.Dur = 0, 1, 3, 7, s1, 2
	rel := ev(2, trace.KindResourceRelease)
	rel.Name, rel.Dur = "robot-0", 2
	ld := ev(2, trace.KindLoad)
	ld.Lib, ld.Drive, ld.Tape, ld.Req, ld.Span, ld.Dur = 0, 1, 3, 7, s1, 3
	mt := ev(5, trace.KindMounted)
	mt.Lib, mt.Drive, mt.Tape, mt.Req, mt.Span, mt.Dur = 0, 1, 3, 7, s1, 5
	ss := ev(5, trace.KindServeStart)
	ss.Lib, ss.Drive, ss.Tape, ss.Req, ss.Span, ss.Bytes = 0, 1, 3, 7, s2, 300
	sk := ev(5, trace.KindSeek)
	sk.Lib, sk.Drive, sk.Tape, sk.Req, sk.Span, sk.Dur = 0, 1, 3, 7, s2, 1
	tf := ev(5, trace.KindTransfer)
	tf.Lib, tf.Drive, tf.Tape, tf.Req, tf.Span, tf.Dur = 0, 1, 3, 7, s2, 10
	se := ev(16, trace.KindServeEnd)
	se.Lib, se.Drive, se.Tape, se.Req, se.Span, se.Dur = 0, 1, 3, 7, s2, 11
	latch := ev(16, trace.KindLatchOpen)
	latch.Name = "req-7"
	cp := ev(16, trace.KindComplete)
	cp.Req, cp.Bytes, cp.Dur = 7, 300, 16
	return []trace.Event{sub, rw, grant, rb, rel, ld, mt, ss, sk, tf, se, latch, cp}
}

func TestBuildHealthyRequest(t *testing.T) {
	events := healthyStream()
	s, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Requests) != 1 || len(s.Boundary) != 0 {
		t.Fatalf("requests %d boundary %d", len(s.Requests), len(s.Boundary))
	}
	r := s.Requests[0]
	if r.ID != 7 || r.Submit != 0 || r.End != 16 || r.Response != 16 || r.Bytes != 300 {
		t.Errorf("request header: %+v", r)
	}
	// The latch-open marker is tallied separately (shard-join artifact).
	if r.Events != len(events)-1 || s.Latches != 1 {
		t.Errorf("claimed %d events + %d latches, stream has %d", r.Events, s.Latches, len(events))
	}
	if len(r.Ops) != 2 {
		t.Fatalf("ops: %d", len(r.Ops))
	}
	sw, sv := r.Ops[0], r.Ops[1]
	if sw.Serve || !sw.Mounted || sw.Start != 0 || sw.End != 5 || sw.Tape != 3 {
		t.Errorf("switch op: %+v", sw)
	}
	if !sv.Serve || !sv.Done || sv.Start != 5 || sv.End != 16 || sv.Bytes != 300 {
		t.Errorf("serve op: %+v", sv)
	}
	if len(r.Contention) != 2 {
		t.Errorf("contention events: %d", len(r.Contention))
	}
	// Critical path: switch then serve, no gaps, covering [0, 16].
	if len(r.Critical) != 2 || r.Critical[0].Op != sw || r.Critical[1].Op != sv {
		t.Fatalf("critical path: %+v", r.Critical)
	}
	want := [NumPhases]float64{}
	want[PhaseRobotMove] = 2
	want[PhaseLoad] = 3
	want[PhaseSeek] = 1
	want[PhaseTransfer] = 10
	if r.PhaseTotals != want {
		t.Errorf("phase totals = %v, want %v", r.PhaseTotals, want)
	}
	if sum := phaseSum(r); math.Abs(sum-r.Wall()) > 1e-9 {
		t.Errorf("phase attribution sums to %v, wall is %v", sum, r.Wall())
	}
}

// phaseSum adds up a request's phase attribution.
func phaseSum(r *Request) float64 {
	var s float64
	for _, v := range r.PhaseTotals {
		s += v
	}
	return s
}

// degradedStream extends the synthetic scenario with a mid-switch drive
// failure, a retry edge, and a timeout: switch span s1 on L0.D0 dies at
// t=4, its group is re-dispatched after a 30 s backoff as switch s2 +
// serve s3 on L0.D1, and the request times out at t=50 before finishing
// at t=55.
func degradedStream() []trace.Event {
	const s1, s2, s3 = int64(1<<32 | 1), int64(2<<32 | 1), int64(2<<32 | 2)
	sub := ev(0, trace.KindSubmit)
	sub.Req = 9
	sub.Bytes = 400
	rw1 := ev(0, trace.KindRewind)
	rw1.Lib, rw1.Drive, rw1.Req, rw1.Span = 0, 0, 9, s1
	df := ev(4, trace.KindDriveFailed)
	df.Lib, df.Drive, df.Tape, df.Req, df.Span = 0, 0, 3, 9, s1
	rt := ev(4, trace.KindOpRetried)
	rt.Lib, rt.Tape, rt.Req, rt.Span, rt.Queue, rt.Dur = 0, 3, 9, s1, 1, 30
	rw2 := ev(34, trace.KindRewind)
	rw2.Lib, rw2.Drive, rw2.Req, rw2.Span = 0, 1, 9, s2
	rb := ev(34, trace.KindRobot)
	rb.Lib, rb.Drive, rb.Tape, rb.Req, rb.Span, rb.Dur = 0, 1, 3, 9, s2, 2
	ld := ev(36, trace.KindLoad)
	ld.Lib, ld.Drive, ld.Tape, ld.Req, ld.Span, ld.Dur = 0, 1, 3, 9, s2, 3
	mt := ev(39, trace.KindMounted)
	mt.Lib, mt.Drive, mt.Tape, mt.Req, mt.Span, mt.Dur = 0, 1, 3, 9, s2, 5
	ss := ev(39, trace.KindServeStart)
	ss.Lib, ss.Drive, ss.Tape, ss.Req, ss.Span, ss.Bytes = 0, 1, 3, 9, s3, 400
	sk := ev(39, trace.KindSeek)
	sk.Lib, sk.Drive, sk.Tape, sk.Req, sk.Span, sk.Dur = 0, 1, 3, 9, s3, 2
	tf := ev(39, trace.KindTransfer)
	tf.Lib, tf.Drive, tf.Tape, tf.Req, tf.Span, tf.Dur = 0, 1, 3, 9, s3, 14
	to := ev(50, trace.KindRequestTimedOut)
	to.Req, to.Bytes, to.Dur = 9, 100, 50
	se := ev(55, trace.KindServeEnd)
	se.Lib, se.Drive, se.Tape, se.Req, se.Span, se.Dur = 0, 1, 3, 9, s3, 16
	cp := ev(55, trace.KindComplete)
	cp.Req, cp.Bytes, cp.Dur = 9, 400, 50
	return []trace.Event{sub, rw1, df, rt, rw2, rb, ld, mt, ss, sk, tf, to, se, cp}
}

func TestBuildDegradedRequest(t *testing.T) {
	s, err := Build(degradedStream())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Requests[0]
	if !r.TimedOut || r.Response != 50 || r.BytesServed != 100 || r.End != 55 {
		t.Errorf("timeout accounting: %+v", r)
	}
	if len(r.Ops) != 3 {
		t.Fatalf("ops: %d", len(r.Ops))
	}
	failed, retry := r.Ops[0], r.Ops[1]
	if !failed.Failed || failed.End != 4 || !failed.Retried {
		t.Errorf("failed op: %+v", failed)
	}
	if failed.TargetTape() != 3 {
		t.Errorf("aborted op's retry edge should reveal its tape, got %d", failed.TargetTape())
	}
	if retry.RetryOf != failed || retry.Attempt != 1 {
		t.Errorf("retry link: RetryOf=%v Attempt=%d", retry.RetryOf, retry.Attempt)
	}
	// Critical path: failed switch [0,4] → retry-wait gap [4,34] → switch
	// [34,39] → serve [39,55].
	if len(r.Critical) != 4 {
		t.Fatalf("critical steps: %+v", r.Critical)
	}
	gapStep := r.Critical[1]
	if gapStep.Op != nil || gapStep.Phase != PhaseRetryWait || gapStep.Start != 4 || gapStep.End != 34 {
		t.Errorf("retry gap step: %+v", gapStep)
	}
	if r.PhaseTotals[PhaseRetryWait] != 30 {
		t.Errorf("retry-wait attribution = %v", r.PhaseTotals[PhaseRetryWait])
	}
	if sum := phaseSum(r); math.Abs(sum-r.Wall()) > 1e-9 {
		t.Errorf("phase attribution sums to %v, wall is %v", sum, r.Wall())
	}
}

func TestBuildRejectsMalformedStreams(t *testing.T) {
	healthy := healthyStream()
	cases := map[string][]trace.Event{
		"span outside window":    healthy[1:],
		"unterminated window":    healthy[:len(healthy)-1],
		"double submit":          append([]trace.Event{healthy[0]}, healthy...),
		"complete without open":  {healthy[len(healthy)-1]},
		"request event mismatch": nil,
	}
	wrongReq := make([]trace.Event, len(healthy))
	copy(wrongReq, healthy)
	wrongReq[1].Req = 8
	cases["request event mismatch"] = wrongReq
	for name, events := range cases {
		if _, err := Build(events); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildBoundaryEvents(t *testing.T) {
	fail := ev(100, trace.KindDriveFailed)
	fail.Lib, fail.Drive = 1, 1
	events := append(healthyStream(), fail)
	s, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Boundary) != 1 || s.Boundary[0].Kind != trace.KindDriveFailed {
		t.Errorf("boundary bucket: %+v", s.Boundary)
	}
	if claimed := s.Requests[0].Events + len(s.Boundary) + s.Latches; claimed != len(events) {
		t.Errorf("claimed %d of %d events", claimed, len(events))
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}} {
		if got := percentile(samples, tc.p); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestAggregateAndShares(t *testing.T) {
	s, err := Build(append(healthyStream(), degradedStream()...))
	if err != nil {
		t.Fatal(err)
	}
	b := Aggregate(s)
	if b.Requests != 2 || b.TimedOut != 1 || b.Events != s.Events {
		t.Errorf("breakdown header: %+v", b)
	}
	if b.Horizon != 55 {
		t.Errorf("horizon = %v", b.Horizon)
	}
	if b.Response.Count != 2 || b.Response.Max != 50 || b.Response.Total != 66 {
		t.Errorf("response dist: %+v", b.Response)
	}
	var shares float64
	for _, p := range AllPhases() {
		shares += b.Share(p)
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("phase shares sum to %v, want 1", shares)
	}
}

func TestSlowestOrdering(t *testing.T) {
	s, err := Build(append(healthyStream(), degradedStream()...))
	if err != nil {
		t.Fatal(err)
	}
	slow := s.Slowest(5)
	if len(slow) != 2 || slow[0].ID != 9 || slow[1].ID != 7 {
		t.Fatalf("slowest: %+v", slow)
	}
	if got := s.Slowest(1); len(got) != 1 || got[0].ID != 9 {
		t.Errorf("slowest(1): %+v", got)
	}
}

func TestTimelineSeries(t *testing.T) {
	s, err := Build(healthyStream())
	if err != nil {
		t.Fatal(err)
	}
	pts := s.QueueDepthPoints()
	if len(pts) != 2 || pts[0].Name != "robot-0" || pts[0].T != 0 || pts[1].T != 2 {
		t.Errorf("queue points: %+v", pts)
	}
	busy := s.BusyIntervals()
	// Two drive ops + one robot hold.
	if len(busy) != 3 {
		t.Fatalf("busy intervals: %+v", busy)
	}
	if busy[0].Name != "L0.D1" || busy[0].Start != 0 || busy[0].End != 5 {
		t.Errorf("first interval: %+v", busy[0])
	}
	if busy[2].Name != "robot-0" || busy[2].Start != 0 || busy[2].End != 2 {
		t.Errorf("robot interval: %+v", busy[2])
	}
}

func TestRenderersDeterministic(t *testing.T) {
	s, err := Build(append(healthyStream(), degradedStream()...))
	if err != nil {
		t.Fatal(err)
	}
	b := Aggregate(s)
	render := func() (string, string, string, string) {
		var t1, t2, t3, t4 bytes.Buffer
		if err := WriteBreakdown(&t1, b); err != nil {
			t.Fatal(err)
		}
		if err := WriteBreakdownCSV(&t2, b); err != nil {
			t.Fatal(err)
		}
		if err := WriteSlowest(&t3, s, 2); err != nil {
			t.Fatal(err)
		}
		if err := WriteTimelineCSV(&t4, s); err != nil {
			t.Fatal(err)
		}
		return t1.String(), t2.String(), t3.String(), t4.String()
	}
	a1, a2, a3, a4 := render()
	b1, b2, b3, b4 := render()
	if a1 != b1 || a2 != b2 || a3 != b3 || a4 != b4 {
		t.Fatal("renderers not deterministic")
	}
	for frag, out := range map[string]string{
		"requests: 2":    a1,
		"retry-wait":     a1,
		"phase,total_s":  a2,
		"request 9":      a3,
		"TIMED-OUT":      a3,
		"series,name":    a4,
		"queue,robot-0":  a4,
		"busy,L0.D1":     a4,
		"critical path:": a3,
		"drive-failed":   a3,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered output missing %q:\n%s", frag, out)
		}
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseQueue.String() != "queue" || PhaseStall.String() != "repair-stall" {
		t.Error("phase names wrong")
	}
	if Phase(-1).String() != "unknown" || NumPhases.String() != "unknown" {
		t.Error("out-of-range phase should be unknown")
	}
	if len(AllPhases()) != int(NumPhases) {
		t.Error("AllPhases incomplete")
	}
}
