package spans

// Rendering: fixed-format text and CSV views over breakdowns, critical
// paths, and derived time series. Every renderer prints with fixed
// precision and canonical ordering so output is byte-identical for
// byte-identical inputs — the tapetrace CLI, tapesim -explain, and the CI
// golden diff all share these functions.

import (
	"fmt"
	"io"
)

// WriteBreakdown renders a session phase breakdown as a fixed-width text
// table: a run header, the response-time distribution, and one row per
// phase with its critical-path blame share and distribution.
func WriteBreakdown(w io.Writer, b *Breakdown) error {
	if _, err := fmt.Fprintf(w, "requests: %d  timed-out: %d  events: %d  horizon: %.2fs\n",
		b.Requests, b.TimedOut, b.Events, b.Horizon); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "response (s): mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n\n",
		b.Response.Mean, b.Response.P50, b.Response.P95, b.Response.P99, b.Response.Max); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s %10s %8s %10s %10s %10s %10s\n",
		"phase", "total-s", "share", "mean-s", "p50-s", "p95-s", "max-s"); err != nil {
		return err
	}
	for _, p := range AllPhases() {
		d := b.Phases[p]
		if _, err := fmt.Fprintf(w, "%-14s %10.2f %7.2f%% %10.2f %10.2f %10.2f %10.2f\n",
			p.String(), d.Total, 100*b.Share(p), d.Mean, d.P50, d.P95, d.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteBreakdownCSV renders the phase breakdown as CSV with a fixed
// header: one row per phase, preceded by summary rows.
func WriteBreakdownCSV(w io.Writer, b *Breakdown) error {
	if _, err := fmt.Fprintln(w, "phase,total_s,share,mean_s,p50_s,p95_s,p99_s,max_s"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "response,%.4f,,%.4f,%.4f,%.4f,%.4f,%.4f\n",
		b.Response.Total, b.Response.Mean, b.Response.P50, b.Response.P95, b.Response.P99, b.Response.Max); err != nil {
		return err
	}
	for _, p := range AllPhases() {
		d := b.Phases[p]
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			p.String(), d.Total, b.Share(p), d.Mean, d.P50, d.P95, d.P99, d.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteSlowest renders the k slowest requests with their phase blame, one
// block per request, each followed by its critical path.
func WriteSlowest(w io.Writer, s *Session, k int) error {
	for i, r := range s.Slowest(k) {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := WriteExplain(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteExplain renders one request's causal story: the header line, the
// phase attribution, and the critical path step by step.
func WriteExplain(w io.Writer, r *Request) error {
	status := ""
	if r.TimedOut {
		status = "  TIMED-OUT"
	}
	if _, err := fmt.Fprintf(w, "request %d: response %.2fs  bytes %d  ops %d  events %d%s\n",
		r.ID, r.Response, r.Bytes, len(r.Ops), r.Events, status); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  submitted %.2fs  finished %.2fs  span %.2fs\n",
		r.Submit, r.End, r.Wall()); err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, "  blame:"); err != nil {
		return err
	}
	for _, p := range AllPhases() {
		// Skip phases below the %.2f display precision: a float-rounding
		// residual of ~1e-13 would otherwise print as a confusing "0.00s".
		if r.PhaseTotals[p] < 0.005 {
			continue
		}
		if _, err := fmt.Fprintf(w, " %s %.2fs", p.String(), r.PhaseTotals[p]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  critical path:"); err != nil {
		return err
	}
	for _, st := range r.Critical {
		if err := writeStep(w, st); err != nil {
			return err
		}
	}
	return nil
}

// writeStep renders one critical-path step line.
func writeStep(w io.Writer, st Step) error {
	if st.Op == nil {
		_, err := fmt.Fprintf(w, "    %8.2f .. %8.2f  %-12s %.2fs\n",
			st.Start, st.End, st.Phase.String(), st.End-st.Start)
		return err
	}
	op := st.Op
	kind := "switch"
	detail := fmt.Sprintf("tape %d", op.TargetTape())
	if op.Serve {
		kind = "serve"
		detail = fmt.Sprintf("tape %d  seek %.2fs  transfer %.2fs  bytes %d",
			op.Tape, op.Seek, op.Transfer, op.Bytes)
	}
	flags := ""
	if op.Retried {
		flags += "  interrupted"
	}
	if op.MediaError {
		flags += "  media-error"
	}
	if op.Failed {
		flags += "  drive-failed"
	}
	if op.Attempt > 0 {
		flags += fmt.Sprintf("  retry#%d", op.Attempt)
	}
	_, err := fmt.Fprintf(w, "    %8.2f .. %8.2f  %-12s %s  %s%s\n",
		st.Start, st.End, kind, driveName(op.Lib, op.Drive), detail, flags)
	return err
}

// WriteTimelineCSV renders the session's derived time series as CSV: the
// robot queue-depth samples followed by the component busy intervals.
// Rows are tagged by series so one file carries both.
func WriteTimelineCSV(w io.Writer, s *Session) error {
	if _, err := fmt.Fprintln(w, "series,name,t,depth,start,end"); err != nil {
		return err
	}
	for _, pt := range s.QueueDepthPoints() {
		if _, err := fmt.Fprintf(w, "queue,%s,%.4f,%d,,\n", pt.Name, pt.T, pt.Depth); err != nil {
			return err
		}
	}
	for _, iv := range s.BusyIntervals() {
		if _, err := fmt.Fprintf(w, "busy,%s,,,%.4f,%.4f\n", iv.Name, iv.Start, iv.End); err != nil {
			return err
		}
	}
	return nil
}
