package model

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tiny returns a small valid workload used across tests:
// 4 objects, 2 requests with probabilities 0.75/0.25.
func tiny() *Workload {
	return &Workload{
		Objects: []Object{
			{ID: 0, Size: 100},
			{ID: 1, Size: 200},
			{ID: 2, Size: 300},
			{ID: 3, Size: 400},
		},
		Requests: []Request{
			{ID: 0, Prob: 0.75, Objects: []ObjectID{0, 1}},
			{ID: 1, Prob: 0.25, Objects: []ObjectID{1, 2, 3}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
}

func TestValidateEmptyWorkload(t *testing.T) {
	w := &Workload{}
	if err := w.Validate(); err != nil {
		t.Errorf("empty workload should be valid: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]func(w *Workload){
		"non-dense object ID":  func(w *Workload) { w.Objects[1].ID = 7 },
		"zero size":            func(w *Workload) { w.Objects[0].Size = 0 },
		"negative size":        func(w *Workload) { w.Objects[0].Size = -5 },
		"non-dense request ID": func(w *Workload) { w.Requests[0].ID = 3 },
		"negative prob":        func(w *Workload) { w.Requests[0].Prob = -0.1 },
		"NaN prob":             func(w *Workload) { w.Requests[0].Prob = math.NaN() },
		"empty request":        func(w *Workload) { w.Requests[0].Objects = nil },
		"unknown object":       func(w *Workload) { w.Requests[0].Objects = []ObjectID{99} },
		"negative object ref":  func(w *Workload) { w.Requests[0].Objects = []ObjectID{-1} },
		"duplicate object":     func(w *Workload) { w.Requests[0].Objects = []ObjectID{1, 1} },
		"prob sum != 1":        func(w *Workload) { w.Requests[0].Prob = 0.1 },
	}
	for name, mutate := range cases {
		w := tiny()
		mutate(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestTotals(t *testing.T) {
	w := tiny()
	if got := w.TotalObjectBytes(); got != 1000 {
		t.Errorf("TotalObjectBytes = %d, want 1000", got)
	}
	if got := w.NumObjects(); got != 4 {
		t.Errorf("NumObjects = %d", got)
	}
	if got := w.NumRequests(); got != 2 {
		t.Errorf("NumRequests = %d", got)
	}
}

func TestRequestBytes(t *testing.T) {
	w := tiny()
	if got := w.RequestBytes(&w.Requests[0]); got != 300 {
		t.Errorf("RequestBytes(R0) = %d, want 300", got)
	}
	if got := w.RequestBytes(&w.Requests[1]); got != 900 {
		t.Errorf("RequestBytes(R1) = %d, want 900", got)
	}
}

func TestMeanRequestBytes(t *testing.T) {
	w := tiny()
	want := 0.75*300 + 0.25*900
	if got := w.MeanRequestBytes(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanRequestBytes = %v, want %v", got, want)
	}
}

func TestMeanRequestBytesEmpty(t *testing.T) {
	w := &Workload{}
	if got := w.MeanRequestBytes(); got != 0 {
		t.Errorf("MeanRequestBytes on empty = %v", got)
	}
}

func TestObjectProbs(t *testing.T) {
	w := tiny()
	probs := w.ObjectProbs()
	want := []float64{0.75, 1.0, 0.25, 0.25}
	for i, p := range want {
		if math.Abs(probs[i]-p) > 1e-12 {
			t.Errorf("ObjectProbs[%d] = %v, want %v", i, probs[i], p)
		}
	}
}

func TestRequestsByObject(t *testing.T) {
	w := tiny()
	idx := w.RequestsByObject()
	if len(idx[0]) != 1 || idx[0][0] != 0 {
		t.Errorf("idx[0] = %v", idx[0])
	}
	if len(idx[1]) != 2 || idx[1][0] != 0 || idx[1][1] != 1 {
		t.Errorf("idx[1] = %v", idx[1])
	}
	if len(idx[3]) != 1 || idx[3][0] != 1 {
		t.Errorf("idx[3] = %v", idx[3])
	}
}

func TestComputeStats(t *testing.T) {
	w := tiny()
	s := w.ComputeStats()
	if s.NumObjects != 4 || s.NumRequests != 2 {
		t.Errorf("counts: %+v", s)
	}
	if s.MinObjectSize != 100 || s.MaxObjectSize != 400 {
		t.Errorf("object size range: %+v", s)
	}
	if s.MeanObjectSize != 250 {
		t.Errorf("MeanObjectSize = %v", s.MeanObjectSize)
	}
	if s.MinRequestLen != 2 || s.MaxRequestLen != 3 || s.MeanRequestLen != 2.5 {
		t.Errorf("request lengths: %+v", s)
	}
	if s.DistinctReferenced != 4 {
		t.Errorf("DistinctReferenced = %d", s.DistinctReferenced)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := tiny()
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumObjects() != 4 || got.NumRequests() != 2 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Requests[1].Objects[2] != 3 {
		t.Errorf("round trip object list: %v", got.Requests[1].Objects)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	// Request references unknown object 9.
	bad := `{"objects":[{"id":0,"size":10}],"requests":[{"id":0,"prob":1,"objects":[9]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{garbage")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := tiny()
	c := w.Clone()
	c.Objects[0].Size = 999
	c.Requests[0].Objects[0] = 3
	if w.Objects[0].Size != 100 {
		t.Error("Clone shares object slice")
	}
	if w.Requests[0].Objects[0] != 0 {
		t.Error("Clone shares request object slice")
	}
}

func TestScaleObjectSizes(t *testing.T) {
	w := tiny()
	if err := w.ScaleObjectSizes(2); err != nil {
		t.Fatal(err)
	}
	if w.Objects[0].Size != 200 || w.Objects[3].Size != 800 {
		t.Errorf("scaled sizes: %+v", w.Objects)
	}
}

func TestScaleObjectSizesFloorOne(t *testing.T) {
	w := tiny()
	if err := w.ScaleObjectSizes(1e-9); err != nil {
		t.Fatal(err)
	}
	for _, o := range w.Objects {
		if o.Size < 1 {
			t.Errorf("object %d scaled below 1 byte: %d", o.ID, o.Size)
		}
	}
}

func TestScaleObjectSizesInvalid(t *testing.T) {
	for _, f := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := tiny().ScaleObjectSizes(f); err == nil {
			t.Errorf("ScaleObjectSizes(%v): want error", f)
		}
	}
}
