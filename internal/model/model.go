// Package model defines the domain types the whole system shares: data
// objects, retrieval requests, and workloads (the paper's §3 problem
// formulation). A Workload is the unit handed to placement schemes and to
// the simulator; it can be serialized as a JSON trace for offline study
// (cmd/tracegen).
package model

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"
)

// ObjectID identifies one data object (0-based, dense).
type ObjectID int32

// RequestID identifies one predefined request (0-based, dense).
type RequestID int32

// Object is one whole-object-sequential-access data object (§3 assumption
// 3: the entire object is retrieved when requested).
type Object struct {
	ID   ObjectID `json:"id"`
	Size int64    `json:"size"` // bytes
}

// Request is one predefined retrieval request: a popularity and the set of
// objects it retrieves (§3 assumption 2). Objects lists IDs without
// duplicates; order carries no meaning.
type Request struct {
	ID      RequestID  `json:"id"`
	Prob    float64    `json:"prob"` // access probability, Σ over requests = 1
	Objects []ObjectID `json:"objects"`
}

// Workload bundles the object population and the predefined request set.
type Workload struct {
	Objects  []Object  `json:"objects"`
	Requests []Request `json:"requests"`
}

// Validate checks structural invariants:
//   - object IDs are dense 0..N-1 in slice order, sizes positive;
//   - request IDs are dense 0..M-1 in slice order;
//   - request probabilities are non-negative, finite, and sum to ~1;
//   - every referenced object exists;
//   - no request lists the same object twice or is empty.
func (w *Workload) Validate() error {
	for i, o := range w.Objects {
		if int(o.ID) != i {
			return fmt.Errorf("model: object at index %d has ID %d (IDs must be dense)", i, o.ID)
		}
		if o.Size <= 0 {
			return fmt.Errorf("model: object %d has non-positive size %d", o.ID, o.Size)
		}
	}
	probSum := 0.0
	for i, r := range w.Requests {
		if int(r.ID) != i {
			return fmt.Errorf("model: request at index %d has ID %d (IDs must be dense)", i, r.ID)
		}
		if r.Prob < 0 || math.IsNaN(r.Prob) || math.IsInf(r.Prob, 0) {
			return fmt.Errorf("model: request %d has invalid probability %v", r.ID, r.Prob)
		}
		if len(r.Objects) == 0 {
			return fmt.Errorf("model: request %d is empty", r.ID)
		}
		seen := make(map[ObjectID]struct{}, len(r.Objects))
		for _, id := range r.Objects {
			if id < 0 || int(id) >= len(w.Objects) {
				return fmt.Errorf("model: request %d references unknown object %d", r.ID, id)
			}
			if _, dup := seen[id]; dup {
				return fmt.Errorf("model: request %d lists object %d twice", r.ID, id)
			}
			seen[id] = struct{}{}
		}
		probSum += r.Prob
	}
	if len(w.Requests) > 0 && math.Abs(probSum-1) > 1e-6 {
		return fmt.Errorf("model: request probabilities sum to %v, want 1", probSum)
	}
	return nil
}

// NumObjects returns the object count.
func (w *Workload) NumObjects() int { return len(w.Objects) }

// NumRequests returns the predefined request count.
func (w *Workload) NumRequests() int { return len(w.Requests) }

// TotalObjectBytes returns the summed size of all objects.
func (w *Workload) TotalObjectBytes() int64 {
	var total int64
	for _, o := range w.Objects {
		total += o.Size
	}
	return total
}

// RequestBytes returns the total bytes request r transfers.
func (w *Workload) RequestBytes(r *Request) int64 {
	var total int64
	for _, id := range r.Objects {
		total += w.Objects[id].Size
	}
	return total
}

// MeanRequestBytes returns the popularity-weighted mean request size, the
// quantity the paper's Figures 6–9 captions quote ("average request size of
// around 213 GB").
func (w *Workload) MeanRequestBytes() float64 {
	if len(w.Requests) == 0 {
		return 0
	}
	var sum, probSum float64
	for i := range w.Requests {
		r := &w.Requests[i]
		sum += r.Prob * float64(w.RequestBytes(r))
		probSum += r.Prob
	}
	if probSum == 0 {
		return 0
	}
	return sum / probSum
}

// ObjectProbs computes per-object access probabilities
// P(O) = Σ_{R ∋ O} P(R) — §5.3 Step 1. The result is indexed by ObjectID.
func (w *Workload) ObjectProbs() []float64 {
	probs := make([]float64, len(w.Objects))
	for i := range w.Requests {
		r := &w.Requests[i]
		for _, id := range r.Objects {
			probs[id] += r.Prob
		}
	}
	return probs
}

// RequestsByObject builds the inverted index object → requests containing
// it. The per-object request lists are sorted by request ID.
func (w *Workload) RequestsByObject() [][]RequestID {
	idx := make([][]RequestID, len(w.Objects))
	for i := range w.Requests {
		r := &w.Requests[i]
		for _, id := range r.Objects {
			idx[id] = append(idx[id], r.ID)
		}
	}
	for _, l := range idx {
		slices.Sort(l)
	}
	return idx
}

// Stats summarizes a workload for reports and trace headers.
type Stats struct {
	NumObjects         int     `json:"num_objects"`
	NumRequests        int     `json:"num_requests"`
	TotalBytes         int64   `json:"total_bytes"`
	MinObjectSize      int64   `json:"min_object_size"`
	MaxObjectSize      int64   `json:"max_object_size"`
	MeanObjectSize     float64 `json:"mean_object_size"`
	MinRequestLen      int     `json:"min_request_len"`
	MaxRequestLen      int     `json:"max_request_len"`
	MeanRequestLen     float64 `json:"mean_request_len"`
	MeanRequestBytes   float64 `json:"mean_request_bytes"`
	DistinctReferenced int     `json:"distinct_referenced"`
}

// ComputeStats derives summary statistics.
func (w *Workload) ComputeStats() Stats {
	s := Stats{
		NumObjects:  len(w.Objects),
		NumRequests: len(w.Requests),
	}
	if len(w.Objects) > 0 {
		s.MinObjectSize = math.MaxInt64
	}
	for _, o := range w.Objects {
		s.TotalBytes += o.Size
		if o.Size < s.MinObjectSize {
			s.MinObjectSize = o.Size
		}
		if o.Size > s.MaxObjectSize {
			s.MaxObjectSize = o.Size
		}
	}
	if len(w.Objects) > 0 {
		s.MeanObjectSize = float64(s.TotalBytes) / float64(len(w.Objects))
	}
	referenced := make(map[ObjectID]struct{})
	if len(w.Requests) > 0 {
		s.MinRequestLen = math.MaxInt
	}
	lenSum := 0
	for i := range w.Requests {
		r := &w.Requests[i]
		if len(r.Objects) < s.MinRequestLen {
			s.MinRequestLen = len(r.Objects)
		}
		if len(r.Objects) > s.MaxRequestLen {
			s.MaxRequestLen = len(r.Objects)
		}
		lenSum += len(r.Objects)
		for _, id := range r.Objects {
			referenced[id] = struct{}{}
		}
	}
	if len(w.Requests) > 0 {
		s.MeanRequestLen = float64(lenSum) / float64(len(w.Requests))
	}
	s.MeanRequestBytes = w.MeanRequestBytes()
	s.DistinctReferenced = len(referenced)
	return s
}

// WriteJSON serializes the workload as a compact JSON trace.
func (w *Workload) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	return enc.Encode(w)
}

// ReadJSON parses a workload trace produced by WriteJSON and validates it.
func ReadJSON(in io.Reader) (*Workload, error) {
	var w Workload
	dec := json.NewDecoder(in)
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("model: decoding workload: %w", err)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// Clone deep-copies the workload so callers can mutate (e.g. scale object
// sizes for the Figure 7 sweep) without aliasing.
func (w *Workload) Clone() *Workload {
	out := &Workload{
		Objects:  make([]Object, len(w.Objects)),
		Requests: make([]Request, len(w.Requests)),
	}
	copy(out.Objects, w.Objects)
	for i, r := range w.Requests {
		nr := r
		nr.Objects = make([]ObjectID, len(r.Objects))
		copy(nr.Objects, r.Objects)
		out.Requests[i] = nr
	}
	return out
}

// ScaleObjectSizes multiplies every object size by factor (rounded, floor 1
// byte). The paper's Figure 7 varies average request size exactly this way:
// "the request size is changed by changing the object size".
func (w *Workload) ScaleObjectSizes(factor float64) error {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return fmt.Errorf("model: invalid size scale factor %v", factor)
	}
	for i := range w.Objects {
		ns := int64(math.Round(float64(w.Objects[i].Size) * factor))
		if ns < 1 {
			ns = 1
		}
		w.Objects[i].Size = ns
	}
	return nil
}
