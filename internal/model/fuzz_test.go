package model

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks the trace reader never panics and never accepts a
// workload that fails validation.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	w := &Workload{
		Objects:  []Object{{ID: 0, Size: 10}, {ID: 1, Size: 20}},
		Requests: []Request{{ID: 0, Prob: 1, Objects: []ObjectID{0, 1}}},
	}
	_ = w.WriteJSON(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte(`{"objects":[{"id":0,"size":-1}],"requests":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"objects":[],"requests":[{"id":0,"prob":1,"objects":[5]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid workload: %v", err)
		}
		// Accepted workloads must survive a round trip.
		var out bytes.Buffer
		if err := w.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadJSON(&out); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
