package placement

import (
	"fmt"
	"runtime"

	"paralleltape/internal/cluster"
	"paralleltape/internal/model"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
)

// ParallelBatch is the paper's contribution (§5): tape batches spanning all
// libraries, an always-mounted batch of n×(d−m) drives plus m switch drives
// per library, density-sorted sublists refined to keep co-access clusters
// within one batch, zigzag load balancing within a batch, and organ-pipe
// alignment within each tape.
type ParallelBatch struct {
	// M is the number of switch drives per library, 1 ≤ M ≤ d−1 (§5: the
	// always-mounted batch keeps d−M drives loaded forever). Zero means
	// the paper's simulation default of 4.
	M int
	// K is the tape capacity utilization coefficient (§5.3 step 3); zero
	// means DefaultK.
	K float64
	// Clustering configures §5.1; the zero value means
	// cluster.DefaultConfig().
	Clustering cluster.Config
	// Precomputed, if non-nil, supplies a clustering result computed for
	// exactly this workload, skipping the internal cluster.Run call.
	Precomputed *cluster.Result
	// SplitThreshold is the cluster size (bytes) above which a cluster is
	// split across multiple tapes for transfer parallelism (§5.3 step 5).
	// Zero means DefaultSplitThreshold.
	SplitThreshold int64

	// Ablation switches (all default off = full scheme).
	NoRefine        bool // skip cluster refinement: cut sublists purely by object density
	NoOrganPipe     bool // keep insertion order instead of organ-pipe alignment
	FirstFitBalance bool // replace the Figure 3 zigzag with space-driven first-fit
	// WideHotBatch sizes the first sublist to every startup-mounted tape
	// (batch 1 plus batch 2, k·n·d·C_t; §5.2 mounts both at startup),
	// letting the hottest clusters transfer at full n×d width at the cost
	// of the m-trade-off the paper's Figure 5 studies. The default is the
	// literal §5.3 step 3 sizing, k·n·(d−m)·C_t.
	WideHotBatch bool

	// Parallel fans the placement pipeline across runtime.GOMAXPROCS
	// workers: similarity-edge aggregation inside the internal cluster.Run
	// call (ignored when Precomputed is set) and the per-tape alignment in
	// the finish step. The placement is bit-identical with the knob on or
	// off — see docs/PERFORMANCE.md for the determinism argument.
	Parallel bool
}

// DefaultSplitThreshold is the cluster size above which splitting across
// tapes pays: at 80 MB/s a switch-sized chunk (~102 s average switch)
// transfers ~8 GB, so clusters below that ride one tape (§5.3 step 5:
// "simply putting them on the same tape does not change data transfer time
// a lot but reduces tape switch time").
const DefaultSplitThreshold = 8 * units.GB

// Name implements Scheme.
func (s ParallelBatch) Name() string { return "parallel-batch" }

// unit is one indivisible allocation group: a refined cluster or a
// singleton cold object.
type unit struct {
	objects  []model.ObjectID
	bytes    int64
	probMass float64 // Σ P(O) over members (object-probability mass)
}

func (u unit) density() float64 {
	if u.bytes == 0 {
		return 0
	}
	return u.probMass / float64(u.bytes)
}

// Place implements Scheme.
func (s ParallelBatch) Place(w *model.Workload, hw tape.Hardware) (*Result, error) {
	m := s.M
	if m == 0 {
		m = 4
	}
	if hw.DrivesPerLib < 2 {
		return nil, fmt.Errorf("placement: parallel batch needs at least 2 drives per library, have %d", hw.DrivesPerLib)
	}
	if m < 1 || m > hw.DrivesPerLib-1 {
		return nil, fmt.Errorf("placement: switch drives m=%d outside [1,%d]", m, hw.DrivesPerLib-1)
	}
	k := s.K
	if k == 0 {
		k = DefaultK
	}
	if err := checkFits(w, hw, k); err != nil {
		return nil, err
	}
	split := s.SplitThreshold
	if split == 0 {
		split = DefaultSplitThreshold
	}

	probs := w.ObjectProbs()
	unitsList, err := s.buildUnits(w, probs)
	if err != nil {
		return nil, err
	}

	// §5.3 steps 2–4: order units by probability density and cut into
	// sublists sized to the tape batches. Operating at unit (cluster)
	// granularity realizes step 4's refinement — objects with a strong
	// relationship stay in one sublist — while the density ordering keeps
	// the batch probabilities skewed (batch₁ ≥ batch₂ ≥ …).
	sortUnitsByDensity(unitsList)

	n := hw.Libraries
	hotTapesPerLib := hw.DrivesPerLib - m // literal §5.3: batch 1 only
	if s.WideHotBatch {
		hotTapesPerLib = hw.DrivesPerLib // batches 1+2 (all startup-mounted)
	}
	cap1 := int64(k * float64(n*hotTapesPerLib) * float64(hw.Capacity))
	capLater := int64(k * float64(n*m) * float64(hw.Capacity))

	sublists, err := cutSublists(unitsList, cap1, capLater, w)
	if err != nil {
		return nil, err
	}

	// §5.3 step 5 + §5.4: allocate each sublist onto its tape batch with
	// the greedy zigzag balancer. Units that cannot fit a batch's
	// remaining space (large objects on small cartridges) carry over to
	// the next batch.
	b := newBuilder(w, hw, probs)
	var as allocScratch
	tapesUsed := 0
	var carry []unit
	bi := 0
	for si := 0; si < len(sublists) || len(carry) > 0; si++ {
		var sub []unit
		if si < len(sublists) {
			sub = append(carry, sublists[si]...)
		} else {
			sub = carry
		}
		carry = nil
		keys, err := batchKeys(bi, m, hotTapesPerLib, hw)
		if err != nil {
			return nil, fmt.Errorf("placement: workload needs more tape batches than the %d-cartridge system holds: %w",
				hw.TotalTapes(), err)
		}
		bi++
		// Allocate hot units first so the balancer spreads them widest.
		deferred, err := allocateSublist(b, w, probs, sub, keys, split, s.FirstFitBalance, &as)
		if err != nil {
			return nil, fmt.Errorf("placement: batch %d: %w", bi-1, err)
		}
		if si >= len(sublists) && len(deferred) == len(sub) {
			return nil, fmt.Errorf("placement: %d units fit no fresh batch (objects too large for %s cartridges)",
				len(deferred), units.FormatBytesSI(hw.Capacity))
		}
		carry = deferred
		tapesUsed += len(keys)
	}

	// §5.3 step 6: seek-minimizing alignment per [11], which prescribes
	// different arrangements by rewind position. Batch-1 tapes stay
	// mounted with the head resting mid-tape → organ-pipe; switch-batch
	// tapes always (re)mount with the head at BOT → popularity descending
	// from BOT, which also keeps their rewinds short because the hot
	// region sits near the hub.
	dmTapes := hw.DrivesPerLib - m
	align := func(key tape.Key) Alignment {
		if s.NoOrganPipe {
			return AlignInsertion
		}
		if key.Index < dmTapes {
			return AlignOrganPipe
		}
		return AlignBOTDescending
	}
	workers := 1
	if s.Parallel {
		if n := runtime.GOMAXPROCS(0); n > workers {
			workers = n
		}
	}
	cat, tapeProb, err := b.finishWorkers(align, workers)
	if err != nil {
		return nil, err
	}

	// Mount tables: per library, drives 0..d−m−1 pin the batch-1 tapes,
	// drives d−m..d−1 start with the batch-2 tapes (if any).
	mounts := make([][]int, n)
	pinned := make([][]bool, n)
	dm := hw.DrivesPerLib - m
	for lib := 0; lib < n; lib++ {
		mounts[lib] = make([]int, hw.DrivesPerLib)
		pinned[lib] = make([]bool, hw.DrivesPerLib)
		for d := 0; d < hw.DrivesPerLib; d++ {
			var ti int
			if d < dm {
				ti = d // batch-1 slot
				pinned[lib][d] = true
			} else {
				ti = dm + (d - dm) // batch-2 slot
			}
			if b.has(tape.Key{Library: lib, Index: ti}) {
				mounts[lib][d] = ti
			} else {
				mounts[lib][d] = -1
				pinned[lib][d] = false
			}
		}
	}

	return &Result{
		Scheme:        s.Name(),
		Catalog:       cat,
		InitialMounts: mounts,
		Pinned:        pinned,
		TapeProb:      tapeProb,
		TapesUsed:     tapesUsed,
	}, nil
}

// buildUnits derives the allocation units: refined clusters (the default)
// or per-object singletons (NoRefine ablation). Unreferenced objects are
// always singleton units with zero probability mass.
func (s ParallelBatch) buildUnits(w *model.Workload, probs []float64) ([]unit, error) {
	if s.NoRefine {
		// One ID arena for every singleton instead of a one-element slice
		// allocation per object.
		all := make([]model.ObjectID, w.NumObjects())
		out := make([]unit, w.NumObjects())
		for i := range out {
			all[i] = model.ObjectID(i)
			out[i] = unit{
				objects:  all[i : i+1 : i+1],
				bytes:    w.Objects[i].Size,
				probMass: probs[i],
			}
		}
		return out, nil
	}
	res := s.Precomputed
	if res == nil {
		cfg := s.Clustering
		cfg.Parallel = cfg.Parallel || s.Parallel
		var err error
		if res, err = cluster.Run(w, cfg); err != nil {
			return nil, err
		}
	}
	out := make([]unit, 0, len(res.Clusters)+len(res.Unreferenced))
	for _, c := range res.Clusters {
		u := unit{objects: c.Objects, bytes: c.Bytes}
		for _, id := range c.Objects {
			u.probMass += probs[id]
		}
		out = append(out, u)
	}
	for i, id := range res.Unreferenced {
		// Singletons subslice the result's own Unreferenced list — no
		// per-object allocation.
		out = append(out, unit{
			objects:  res.Unreferenced[i : i+1 : i+1],
			bytes:    w.Objects[id].Size,
			probMass: probs[id],
		})
	}
	return out, nil
}

// cutSublists fills sublist 0 up to cap1 and later sublists up to capLater
// with whole units in the given order; a unit larger than a whole sublist
// spills across sublists at object granularity (clusters wider than a
// batch are split regardless — §5.3 step 5).
func cutSublists(unitsList []unit, cap1, capLater int64, w *model.Workload) ([][]unit, error) {
	if cap1 <= 0 || capLater <= 0 {
		return nil, fmt.Errorf("placement: non-positive batch capacity")
	}
	var sublists [][]unit
	var cur []unit
	capacity := cap1
	budget := cap1
	closeSublist := func() {
		sublists = append(sublists, cur)
		cur = nil
		capacity = capLater
		budget = capLater
	}
	for _, u := range unitsList {
		if u.bytes <= budget {
			cur = append(cur, u)
			budget -= u.bytes
			continue
		}
		if u.bytes <= capacity && float64(budget) < 0.5*float64(capacity) {
			// The unit would fit a fresh sublist and this one is mostly
			// full: close it rather than fragment the cluster.
			closeSublist()
			cur = append(cur, u)
			budget -= u.bytes
			continue
		}
		// Fragment the unit at object granularity across sublists.
		part := unit{}
		for _, id := range u.objects {
			size := w.Objects[id].Size
			if size > budget {
				if len(part.objects) > 0 {
					cur = append(cur, part)
					part = unit{}
				}
				closeSublist()
			}
			part.objects = append(part.objects, id)
			part.bytes += size
			part.probMass += 0 // mass is only used for intra-batch ordering; fragments inherit none
			budget -= size
		}
		if len(part.objects) > 0 {
			cur = append(cur, part)
		}
	}
	if len(cur) > 0 {
		sublists = append(sublists, cur)
	}
	if len(sublists) == 0 {
		sublists = [][]unit{nil}
	}
	return sublists, nil
}

// batchKeys returns the cartridge keys of batch bi: batch 0 holds the hot
// tapes (hotTapesPerLib per library, slots 0..hot−1), batches 1.. hold m
// per library after them.
func batchKeys(bi, m, hotTapesPerLib int, hw tape.Hardware) ([]tape.Key, error) {
	var keys []tape.Key
	for lib := 0; lib < hw.Libraries; lib++ {
		if bi == 0 {
			for t := 0; t < hotTapesPerLib; t++ {
				keys = append(keys, tape.Key{Library: lib, Index: t})
			}
		} else {
			base := hotTapesPerLib + (bi-1)*m
			for t := base; t < base+m; t++ {
				if t >= hw.TapesPerLib {
					return nil, fmt.Errorf("batch %d needs tape slot %d of %d", bi, t, hw.TapesPerLib)
				}
				keys = append(keys, tape.Key{Library: lib, Index: t})
			}
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("batch %d is empty (m=%d, d=%d)", bi, m, hw.DrivesPerLib)
	}
	return keys, nil
}
