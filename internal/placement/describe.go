package placement

import (
	"fmt"
	"io"
	"sort"

	"paralleltape/internal/model"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
)

// Description summarizes the structure of a finished placement: how full
// and how hot each cartridge is, how skewed probability is across the
// mount order, and how well requests stay together.
type Description struct {
	Scheme    string
	TapesUsed int

	// Fill statistics over used cartridges (bytes).
	FillMin, FillMax, FillMean int64

	// Probability skew: share of total access probability held by the
	// initially mounted tapes, and the Gini coefficient over per-tape
	// probabilities (0 = uniform, →1 = concentrated).
	MountedProbShare float64
	ProbGini         float64

	// Request locality: popularity-weighted mean number of cartridges a
	// predefined request touches, and the mean share of its bytes on
	// initially mounted cartridges.
	MeanTapesPerRequest  float64
	MountedBytesShare    float64
	MaxTapesOfAnyRequest int
}

// Describe computes placement diagnostics against its workload.
func Describe(res *Result, w *model.Workload, hw tape.Hardware) (*Description, error) {
	if res == nil || res.Catalog == nil {
		return nil, fmt.Errorf("placement: nil result")
	}
	d := &Description{Scheme: res.Scheme, TapesUsed: res.TapesUsed}

	// Fill stats.
	keys := res.Catalog.Tapes()
	if len(keys) == 0 {
		return nil, fmt.Errorf("placement: empty catalog")
	}
	d.FillMin = int64(1) << 62
	var fillSum int64
	for _, k := range keys {
		l, _ := res.Catalog.Layout(k)
		used := l.Used()
		if used < d.FillMin {
			d.FillMin = used
		}
		if used > d.FillMax {
			d.FillMax = used
		}
		fillSum += used
	}
	d.FillMean = fillSum / int64(len(keys))

	// Probability skew.
	mounted := make(map[tape.Key]bool)
	for lib := range res.InitialMounts {
		for _, ti := range res.InitialMounts[lib] {
			if ti >= 0 {
				mounted[tape.Key{Library: lib, Index: ti}] = true
			}
		}
	}
	var probs []float64
	var totalProb, mountedProb float64
	for _, k := range keys {
		p := res.TapeProb[k]
		probs = append(probs, p)
		totalProb += p
		if mounted[k] {
			mountedProb += p
		}
	}
	if totalProb > 0 {
		d.MountedProbShare = mountedProb / totalProb
	}
	d.ProbGini = gini(probs)

	// Request locality.
	var probSum float64
	for i := range w.Requests {
		r := &w.Requests[i]
		groups, err := res.Catalog.GroupRequest(r)
		if err != nil {
			return nil, err
		}
		var mountedBytes, bytes int64
		for _, g := range groups {
			bytes += g.Bytes
			if mounted[g.Tape] {
				mountedBytes += g.Bytes
			}
		}
		p := r.Prob
		probSum += p
		d.MeanTapesPerRequest += p * float64(len(groups))
		if bytes > 0 {
			d.MountedBytesShare += p * float64(mountedBytes) / float64(bytes)
		}
		if len(groups) > d.MaxTapesOfAnyRequest {
			d.MaxTapesOfAnyRequest = len(groups)
		}
	}
	if probSum > 0 {
		d.MeanTapesPerRequest /= probSum
		d.MountedBytesShare /= probSum
	}
	_ = hw
	return d, nil
}

// gini computes the Gini coefficient of non-negative values.
func gini(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, vals)
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, v := range sorted {
		cum += v
		weighted += float64(i+1) * v
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}

// Write renders the description as aligned text.
func (d *Description) Write(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"placement diagnostics (%s)\n"+
			"  cartridges used           %d\n"+
			"  fill min/mean/max         %s / %s / %s\n"+
			"  mounted probability share %s\n"+
			"  tape probability Gini     %.3f\n"+
			"  tapes per request (mean)  %.1f (max %d)\n"+
			"  mounted bytes share       %s\n",
		d.Scheme, d.TapesUsed,
		units.FormatBytesSI(d.FillMin), units.FormatBytesSI(d.FillMean), units.FormatBytesSI(d.FillMax),
		units.Percent(d.MountedProbShare), d.ProbGini,
		d.MeanTapesPerRequest, d.MaxTapesOfAnyRequest,
		units.Percent(d.MountedBytesShare))
	return err
}
