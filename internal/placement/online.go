package placement

import (
	"fmt"
	"slices"

	"paralleltape/internal/cluster"
	"paralleltape/internal/loadbalance"
	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

// Online is the paper's §7 future-work problem made concrete: "In a real
// system, objects are moved to tapes periodically. When we place objects
// on tapes, we only have the local knowledge of object probability and
// relationship."
//
// Objects arrive in Epochs equal waves (by ID, modeling backup cycles).
// Each wave is placed knowing only the co-access relationships among
// objects that have arrived so far, and nothing already written can move:
//
//   - wave 0 fills the always-mounted batch and initial switch batches
//     exactly like ParallelBatch;
//   - later waves append new switch batches only — a later wave's hot
//     cluster can never displace earlier, colder content from the
//     always-mounted batch, and a request whose objects span waves is
//     split across batches.
//
// Comparing Online{Epochs: k} against the full-knowledge ParallelBatch
// quantifies how much the paper's open problem costs (the "online"
// experiment).
type Online struct {
	// Epochs is the number of arrival waves (1 = full knowledge,
	// identical information to ParallelBatch). Zero means 4.
	Epochs int
	// M, K, SplitThreshold as in ParallelBatch.
	M              int
	K              float64
	SplitThreshold int64
}

// Name implements Scheme.
func (s Online) Name() string { return "online-parallel-batch" }

// Place implements Scheme.
func (s Online) Place(w *model.Workload, hw tape.Hardware) (*Result, error) {
	epochs := s.Epochs
	if epochs == 0 {
		epochs = 4
	}
	if epochs < 1 {
		return nil, fmt.Errorf("placement: online epochs must be >= 1, got %d", epochs)
	}
	m := s.M
	if m == 0 {
		m = 4
	}
	if hw.DrivesPerLib < 2 || m < 1 || m > hw.DrivesPerLib-1 {
		return nil, fmt.Errorf("placement: online switch drives m=%d invalid for %d drives", m, hw.DrivesPerLib)
	}
	k := s.K
	if k == 0 {
		k = DefaultK
	}
	if err := checkFits(w, hw, k); err != nil {
		return nil, err
	}
	split := s.SplitThreshold
	if split == 0 {
		split = DefaultSplitThreshold
	}

	n := hw.Libraries
	dm := hw.DrivesPerLib - m
	cap1 := int64(k * float64(n*dm) * float64(hw.Capacity))
	capLater := int64(k * float64(n*m) * float64(hw.Capacity))

	probs := w.ObjectProbs()
	b := newBuilder(w, hw, probs)
	var as allocScratch

	waveSize := (w.NumObjects() + epochs - 1) / epochs
	// Switch batches persist across waves: a new wave first appends to the
	// partially-filled batch left open by the previous wave (real backup
	// systems append to open media) before cutting fresh batches.
	nextBatch := 0 // next switch-batch index to open (1-based after batch 0)
	var openKeys []tape.Key
	var openBudget int64
	openFresh := func() error {
		nextBatch++
		keys, err := batchKeys(nextBatch, m, dm, hw)
		if err != nil {
			return fmt.Errorf("placement: online waves exhaust the %d-cartridge system: %w",
				hw.TotalTapes(), err)
		}
		openKeys = keys
		openBudget = capLater
		return nil
	}
	sublistBytes := func(sub []unit) int64 {
		var total int64
		for _, u := range sub {
			total += u.bytes
		}
		return total
	}
	firstWave := true
	for start := 0; start < w.NumObjects(); start += waveSize {
		end := start + waveSize
		if end > w.NumObjects() {
			end = w.NumObjects()
		}
		units, err := waveUnits(w, probs, start, end)
		if err != nil {
			return nil, err
		}
		// The wave's first sublist fills the always-mounted batch (wave 0)
		// or the remaining space of the open switch batch.
		var c1 int64
		if firstWave {
			c1 = cap1
		} else {
			if openBudget <= 0 {
				if err := openFresh(); err != nil {
					return nil, err
				}
			}
			c1 = openBudget
		}
		sublists, err := cutSublists(units, c1, capLater, w)
		if err != nil {
			return nil, err
		}
		for si, sub := range sublists {
			var keys []tape.Key
			switch {
			case firstWave && si == 0:
				if keys, err = batchKeys(0, m, dm, hw); err != nil {
					return nil, err
				}
			case !firstWave && si == 0:
				keys = openKeys
				openBudget -= sublistBytes(sub)
			default:
				if err := openFresh(); err != nil {
					return nil, err
				}
				keys = openKeys
				openBudget -= sublistBytes(sub)
			}
			carry, err := allocateSublist(b, w, probs, sub, keys, split, false, &as)
			if err != nil {
				return nil, err
			}
			// Units that did not fit roll into fresh batches immediately.
			for len(carry) > 0 {
				if err := openFresh(); err != nil {
					return nil, err
				}
				next, err := allocateSublist(b, w, probs, carry, openKeys, split, false, &as)
				if err != nil {
					return nil, err
				}
				if len(next) == len(carry) {
					return nil, fmt.Errorf("placement: unit of %d objects fits no fresh batch", len(next[0].objects))
				}
				openBudget = 0 // conservatively treat the batch as consumed
				carry = next
			}
		}
		firstWave = false
	}

	align := func(key tape.Key) Alignment {
		if key.Index < dm {
			return AlignOrganPipe
		}
		return AlignBOTDescending
	}
	cat, tapeProb, err := b.finish(align)
	if err != nil {
		return nil, err
	}

	mounts := make([][]int, n)
	pinned := make([][]bool, n)
	for lib := 0; lib < n; lib++ {
		mounts[lib] = make([]int, hw.DrivesPerLib)
		pinned[lib] = make([]bool, hw.DrivesPerLib)
		for d := 0; d < hw.DrivesPerLib; d++ {
			ti := d
			if d < dm {
				pinned[lib][d] = true
			}
			if b.has(tape.Key{Library: lib, Index: ti}) {
				mounts[lib][d] = ti
			} else {
				mounts[lib][d] = -1
				pinned[lib][d] = false
			}
		}
	}

	return &Result{
		Scheme:        s.Name(),
		Catalog:       cat,
		InitialMounts: mounts,
		Pinned:        pinned,
		TapeProb:      tapeProb,
		TapesUsed:     b.numTapes(),
	}, nil
}

// waveUnits clusters the objects of one arrival wave using only the
// co-access structure visible within the wave (requests restricted to wave
// members), ordered by probability density.
func waveUnits(w *model.Workload, probs []float64, start, end int) ([]unit, error) {
	inWave := func(id model.ObjectID) bool { return int(id) >= start && int(id) < end }
	view := &model.Workload{Objects: w.Objects}
	for i := range w.Requests {
		r := &w.Requests[i]
		var members []model.ObjectID
		for _, id := range r.Objects {
			if inWave(id) {
				members = append(members, id)
			}
		}
		if len(members) > 0 {
			view.Requests = append(view.Requests, model.Request{
				ID:      model.RequestID(len(view.Requests)),
				Prob:    r.Prob,
				Objects: members,
			})
		}
	}
	var units []unit
	if len(view.Requests) > 0 {
		res, err := cluster.Run(view, cluster.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for _, c := range res.Clusters {
			u := unit{objects: c.Objects, bytes: c.Bytes}
			for _, id := range c.Objects {
				u.probMass += probs[id]
			}
			units = append(units, u)
		}
		for _, id := range res.Unreferenced {
			if inWave(id) {
				units = append(units, unit{
					objects:  []model.ObjectID{id},
					bytes:    w.Objects[id].Size,
					probMass: probs[id],
				})
			}
		}
	} else {
		for i := start; i < end; i++ {
			id := model.ObjectID(i)
			units = append(units, unit{
				objects:  []model.ObjectID{id},
				bytes:    w.Objects[id].Size,
				probMass: probs[id],
			})
		}
	}
	sortUnitsByDensity(units)
	return units, nil
}

// sortUnitsByDensity orders units by decreasing probability density with
// deterministic ties.
func sortUnitsByDensity(units []unit) {
	sortSliceStable(units, func(a, b unit) bool {
		da, db := a.density(), b.density()
		if da != db {
			return da > db
		}
		return a.objects[0] < b.objects[0]
	})
}

// allocScratch holds the buffers allocateSublist reuses across calls: the
// tape-state arrays, the unit ordering, the balancer item list, and the
// balancer's own Packer. A placement run threads one scratch through every
// sublist it allocates, so the per-sublist cost is a handful of slice
// reslices rather than five allocations.
type allocScratch struct {
	packer loadbalance.Packer
	states []loadbalance.TapeState
	ptrs   []*loadbalance.TapeState
	order  []int
	items  []loadbalance.Item
}

// allocateSublist spreads one sublist's units over the batch keys with the
// zigzag balancer (or first-fit when firstFit is set), hottest units
// first. Units whose largest object cannot fit any tape of the batch
// (large objects on small cartridges leave bin-packing slack short) are
// returned as deferred so the caller can carry them into the next batch.
func allocateSublist(b *builder, w *model.Workload, probs []float64,
	sub []unit, keys []tape.Key, split int64, firstFit bool, as *allocScratch) ([]unit, error) {
	// One backing array for the tape states instead of len(keys) separate
	// allocations; the pointer slice view is what the balancer mutates.
	if cap(as.states) < len(keys) {
		as.states = make([]loadbalance.TapeState, len(keys))
		as.ptrs = make([]*loadbalance.TapeState, len(keys))
	}
	stateArr := as.states[:len(keys)]
	states := as.ptrs[:len(keys)]
	for i, key := range keys {
		stateArr[i] = loadbalance.TapeState{Free: b.free(key)}
		states[i] = &stateArr[i]
	}
	if cap(as.order) < len(sub) {
		as.order = make([]int, len(sub))
	}
	order := as.order[:len(sub)]
	for i := range order {
		order[i] = i
	}
	sortSliceStable(order, func(x, y int) bool {
		ux, uy := sub[x], sub[y]
		if ux.probMass != uy.probMass {
			return ux.probMass > uy.probMass
		}
		return ux.objects[0] < uy.objects[0]
	})
	// items is sized once to the sublist's widest unit and reused for every
	// unit, instead of a fresh slice per unit.
	maxObjs := 0
	for i := range sub {
		if n := len(sub[i].objects); n > maxObjs {
			maxObjs = n
		}
	}
	if cap(as.items) < maxObjs {
		as.items = make([]loadbalance.Item, maxObjs)
	}
	var deferred []unit
	for _, ui := range order {
		u := sub[ui]
		// Feasibility: every object of the unit must fit somewhere given
		// the batch's current free space, assuming the largest objects go
		// to the freest tapes.
		if !unitFeasible(w, u, states) {
			deferred = append(deferred, u)
			continue
		}
		items := as.items[:len(u.objects)]
		for i, id := range u.objects {
			items[i] = loadbalance.Item{
				Load: probs[id] * float64(w.Objects[id].Size),
				Size: w.Objects[id].Size,
			}
		}
		var asg []int
		var err error
		if firstFit {
			asg, err = as.packer.FirstFit(items, states)
		} else {
			ndrv := loadbalance.ChooseSpread(u.bytes, len(u.objects), len(keys), split)
			asg, err = as.packer.Zigzag(items, states, ndrv)
		}
		if err != nil {
			return nil, err
		}
		// Items the balancer reported as unplaceable (-1) spill to the
		// next batch as a residual unit.
		var spill unit
		for i, ti := range asg {
			if ti < 0 {
				id := u.objects[i]
				spill.objects = append(spill.objects, id)
				spill.bytes += w.Objects[id].Size
				spill.probMass += probs[id]
				continue
			}
			if err := b.add(keys[ti], u.objects[i]); err != nil {
				return nil, err
			}
		}
		if len(spill.objects) > 0 {
			deferred = append(deferred, spill)
		}
	}
	return deferred, nil
}

// unitFeasible conservatively checks that the unit's objects can be packed
// into the batch's free space: total bytes fit, and the single largest
// object fits the freest tape.
func unitFeasible(w *model.Workload, u unit, states []*loadbalance.TapeState) bool {
	var freeTotal, freeMax int64
	for _, st := range states {
		freeTotal += st.Free
		if st.Free > freeMax {
			freeMax = st.Free
		}
	}
	if u.bytes > freeTotal {
		return false
	}
	var largest int64
	for _, id := range u.objects {
		if s := w.Objects[id].Size; s > largest {
			largest = s
		}
	}
	return largest <= freeMax
}

// sortSliceStable adapts a less-style comparator to slices.SortStableFunc,
// which — unlike sort.SliceStable — sorts through the concrete element type
// with no reflection and no allocation.
func sortSliceStable[T any](s []T, less func(a, b T) bool) {
	slices.SortStableFunc(s, func(a, b T) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
}
