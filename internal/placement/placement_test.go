package placement

import (
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// smallHW is a shrunken but structurally faithful system: 2 libraries,
// 4 drives each, 10 tapes of 100 KB.
func smallHW() tape.Hardware {
	h := tape.DefaultHardware()
	h.Libraries = 2
	h.DrivesPerLib = 4
	h.TapesPerLib = 10
	h.Capacity = 100 * units.KB
	return h
}

// smallWL generates a workload that fits smallHW: 200 objects of 1–4 KB,
// 20 requests of 5–10 objects.
func smallWL(t *testing.T, seed uint64) *model.Workload {
	t.Helper()
	p := workload.Params{
		NumObjects:  200,
		NumRequests: 20,
		MinObjSize:  1 * units.KB,
		MaxObjSize:  4 * units.KB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   10,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func allSchemes() []Scheme {
	return []Scheme{
		ObjectProbability{},
		ClusterProbability{},
		ParallelBatch{M: 2},
		RoundRobin{},
	}
}

func TestAllSchemesProduceValidPlacements(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 1)
	for _, s := range allSchemes() {
		res, err := s.Place(w, hw)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if err := res.Validate(w, hw); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
		if res.TapesUsed <= 0 {
			t.Errorf("%s: TapesUsed = %d", s.Name(), res.TapesUsed)
		}
	}
}

func TestSchemesDeterministic(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 2)
	for _, s := range allSchemes() {
		a, err := s.Place(w, hw)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := s.Place(w, hw)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for i := 0; i < w.NumObjects(); i++ {
			la, _ := a.Catalog.Lookup(model.ObjectID(i))
			lb, _ := b.Catalog.Lookup(model.ObjectID(i))
			if la != lb {
				t.Fatalf("%s: object %d at %v vs %v across runs", s.Name(), i, la, lb)
			}
		}
	}
}

func TestObjectProbabilityHottestTapesFirst(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 3)
	res, err := ObjectProbability{}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// The hottest object must sit on one of the first tapes created
	// (rank 0 → L0.T0 or rank 1 → L1.T0 by round-robin).
	probs := w.ObjectProbs()
	hottest := model.ObjectID(0)
	for i := range probs {
		if probs[i] > probs[hottest] {
			hottest = model.ObjectID(i)
		}
	}
	loc, ok := res.Catalog.Lookup(hottest)
	if !ok {
		t.Fatal("hottest object unplaced")
	}
	if loc.Tape.Index != 0 || loc.Tape.Library != 0 {
		t.Errorf("hottest object on %v, want the first tape of the first group", loc.Tape)
	}
	// Group-level probability must decrease: the first group of n×d tapes
	// accumulates more probability than the second, and so on.
	groupWidth := hw.TotalDrives()
	groupProb := map[int]float64{}
	for k, p := range res.TapeProb {
		rank := k.Index*hw.Libraries + k.Library // inverse of roundRobinKey
		groupProb[rank/groupWidth] += p
	}
	for g := 1; g < len(groupProb); g++ {
		if groupProb[g] > groupProb[g-1]+1e-9 {
			t.Errorf("group %d prob %v exceeds group %d prob %v",
				g, groupProb[g], g-1, groupProb[g-1])
		}
	}
}

func TestObjectProbabilityMountsHottest(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 4)
	res, err := ObjectProbability{}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	for lib := range res.InitialMounts {
		mounted := map[int]bool{}
		for _, ti := range res.InitialMounts[lib] {
			if ti >= 0 {
				mounted[ti] = true
			}
		}
		// Every unmounted tape in this library must have probability no
		// greater than the least popular mounted tape.
		minMounted := 2.0
		for ti := range mounted {
			if p := res.TapeProb[tape.Key{Library: lib, Index: ti}]; p < minMounted {
				minMounted = p
			}
		}
		for idx := 0; idx < hw.TapesPerLib; idx++ {
			if mounted[idx] {
				continue
			}
			if p, ok := res.TapeProb[tape.Key{Library: lib, Index: idx}]; ok && p > minMounted+1e-9 {
				t.Errorf("library %d: unmounted tape %d prob %v exceeds mounted minimum %v",
					lib, idx, p, minMounted)
			}
		}
	}
}

func TestClusterProbabilityKeepsClustersTogether(t *testing.T) {
	// A workload of disjoint requests: each request's objects form one
	// cluster and must land on a single tape.
	w := &model.Workload{}
	for i := 0; i < 30; i++ {
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 5 * units.KB})
	}
	for r := 0; r < 3; r++ {
		var ids []model.ObjectID
		for o := 0; o < 10; o++ {
			ids = append(ids, model.ObjectID(r*10+o))
		}
		w.Requests = append(w.Requests, model.Request{ID: model.RequestID(r), Prob: 1.0 / 3, Objects: ids})
	}
	hw := smallHW() // 100 KB tapes: a 50 KB cluster fits
	res, err := ClusterProbability{}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(w, hw); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		first, _ := res.Catalog.Lookup(model.ObjectID(r * 10))
		for o := 1; o < 10; o++ {
			loc, _ := res.Catalog.Lookup(model.ObjectID(r*10 + o))
			if loc.Tape != first.Tape {
				t.Errorf("request %d split across %v and %v", r, first.Tape, loc.Tape)
			}
		}
	}
}

func TestClusterProbabilityOversizedClusterSpills(t *testing.T) {
	// One request whose objects exceed a cartridge must still place.
	w := &model.Workload{}
	var ids []model.ObjectID
	for i := 0; i < 40; i++ { // 40 × 5 KB = 200 KB > 100 KB cartridge
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 5 * units.KB})
		ids = append(ids, model.ObjectID(i))
	}
	w.Requests = []model.Request{{ID: 0, Prob: 1, Objects: ids}}
	hw := smallHW()
	res, err := ClusterProbability{}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(w, hw); err != nil {
		t.Fatal(err)
	}
	if res.TapesUsed < 3 {
		t.Errorf("TapesUsed = %d, want >= 3 for a 200 KB cluster on 90 KB-usable tapes", res.TapesUsed)
	}
}

func TestParallelBatchPinnedLayout(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 5)
	res, err := ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(w, hw); err != nil {
		t.Fatal(err)
	}
	dm := hw.DrivesPerLib - 2
	for lib := 0; lib < hw.Libraries; lib++ {
		for d := 0; d < hw.DrivesPerLib; d++ {
			if d < dm {
				if !res.Pinned[lib][d] && res.InitialMounts[lib][d] != -1 {
					t.Errorf("library %d drive %d should be pinned", lib, d)
				}
				if got := res.InitialMounts[lib][d]; got != -1 && got != d {
					t.Errorf("library %d pinned drive %d mounts tape %d, want %d", lib, d, got, d)
				}
			} else if res.Pinned[lib][d] {
				t.Errorf("library %d switch drive %d is pinned", lib, d)
			}
		}
	}
}

func TestParallelBatchSkewedBatchProbability(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 6)
	res, err := ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1 (always mounted: tape indices 0..d-m-1 in each library) must
	// accumulate more probability than any later batch (§5.3 step 4).
	dm := hw.DrivesPerLib - 2
	batchProb := map[int]float64{}
	for k, p := range res.TapeProb {
		var bi int
		if k.Index < dm {
			bi = 0
		} else {
			bi = 1 + (k.Index-dm)/2
		}
		batchProb[bi] += p
	}
	if batchProb[0] <= batchProb[1] {
		t.Errorf("batch probabilities not skewed: batch0=%v batch1=%v", batchProb[0], batchProb[1])
	}
}

func TestParallelBatchClusterWithinOneBatch(t *testing.T) {
	// Disjoint-request workload: each request's cluster must stay within
	// one tape batch (possibly split across that batch's tapes).
	w := &model.Workload{}
	for i := 0; i < 40; i++ {
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 4 * units.KB})
	}
	for r := 0; r < 4; r++ {
		var ids []model.ObjectID
		for o := 0; o < 10; o++ {
			ids = append(ids, model.ObjectID(r*10+o))
		}
		prob := []float64{0.4, 0.3, 0.2, 0.1}[r]
		w.Requests = append(w.Requests, model.Request{ID: model.RequestID(r), Prob: prob, Objects: ids})
	}
	hw := smallHW()
	res, err := ParallelBatch{M: 2, SplitThreshold: 8 * units.KB}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Default narrow hot region: batch 0 spans tape slots 0..d-m-1; later
	// batches hold m=2 slots each.
	hot := hw.DrivesPerLib - 2
	batchOf := func(idx int) int {
		if idx < hot {
			return 0
		}
		return 1 + (idx-hot)/2
	}
	for r := 0; r < 4; r++ {
		batches := map[int]bool{}
		for o := 0; o < 10; o++ {
			loc, _ := res.Catalog.Lookup(model.ObjectID(r*10 + o))
			batches[batchOf(loc.Tape.Index)] = true
		}
		if len(batches) != 1 {
			t.Errorf("request %d spread across batches %v", r, batches)
		}
	}
}

func TestParallelBatchSplitsLargeClusters(t *testing.T) {
	// One hot 40 KB cluster with a low split threshold must be spread over
	// several tapes of its batch for parallel transfer.
	w := &model.Workload{}
	var ids []model.ObjectID
	for i := 0; i < 10; i++ {
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 4 * units.KB})
		ids = append(ids, model.ObjectID(i))
	}
	w.Requests = []model.Request{{ID: 0, Prob: 1, Objects: ids}}
	hw := smallHW()
	res, err := ParallelBatch{M: 2, SplitThreshold: 8 * units.KB}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	tapes := map[tape.Key]bool{}
	for _, id := range ids {
		loc, _ := res.Catalog.Lookup(id)
		tapes[loc.Tape] = true
	}
	if len(tapes) < 3 {
		t.Errorf("hot cluster on %d tapes, want spread across the batch", len(tapes))
	}
}

func TestParallelBatchSmallClusterStaysTogether(t *testing.T) {
	// With a huge split threshold the cluster must stay on one tape.
	w := &model.Workload{}
	var ids []model.ObjectID
	for i := 0; i < 10; i++ {
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 4 * units.KB})
		ids = append(ids, model.ObjectID(i))
	}
	w.Requests = []model.Request{{ID: 0, Prob: 1, Objects: ids}}
	hw := smallHW()
	res, err := ParallelBatch{M: 2, SplitThreshold: 1 * units.MB}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	tapes := map[tape.Key]bool{}
	for _, id := range ids {
		loc, _ := res.Catalog.Lookup(id)
		tapes[loc.Tape] = true
	}
	if len(tapes) != 1 {
		t.Errorf("small cluster on %d tapes, want 1", len(tapes))
	}
}

func TestParallelBatchRejectsBadM(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 7)
	for _, m := range []int{-1, hw.DrivesPerLib, hw.DrivesPerLib + 3} {
		if _, err := (ParallelBatch{M: m}).Place(w, hw); err == nil {
			t.Errorf("m=%d accepted", m)
		}
	}
}

func TestParallelBatchAblationsValid(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 8)
	variants := []ParallelBatch{
		{M: 2, NoRefine: true},
		{M: 2, NoOrganPipe: true},
		{M: 2, FirstFitBalance: true},
		{M: 2, NoRefine: true, NoOrganPipe: true, FirstFitBalance: true},
	}
	for _, v := range variants {
		res, err := v.Place(w, hw)
		if err != nil {
			t.Errorf("%+v: %v", v, err)
			continue
		}
		if err := res.Validate(w, hw); err != nil {
			t.Errorf("%+v: %v", v, err)
		}
	}
}

func TestRoundRobinSpreadsWide(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 9)
	res, err := RoundRobin{}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(w, hw); err != nil {
		t.Fatal(err)
	}
	// Consecutive objects land on different tapes.
	a, _ := res.Catalog.Lookup(0)
	bLoc, _ := res.Catalog.Lookup(1)
	if res.TapesUsed > 1 && a.Tape == bLoc.Tape {
		t.Errorf("objects 0 and 1 on the same tape %v", a.Tape)
	}
}

func TestCheckFitsRejections(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 10)
	if err := checkFits(w, hw, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if err := checkFits(w, hw, 1.5); err == nil {
		t.Error("k>1 accepted")
	}
	// Oversized object.
	w2 := &model.Workload{
		Objects:  []model.Object{{ID: 0, Size: hw.Capacity + 1}},
		Requests: []model.Request{{ID: 0, Prob: 1, Objects: []model.ObjectID{0}}},
	}
	if err := checkFits(w2, hw, 0.9); err == nil {
		t.Error("object larger than a cartridge accepted")
	}
	// Workload larger than the whole system.
	var big model.Workload
	for i := 0; i < 30; i++ {
		big.Objects = append(big.Objects, model.Object{ID: model.ObjectID(i), Size: hw.Capacity})
	}
	big.Requests = []model.Request{{ID: 0, Prob: 1, Objects: []model.ObjectID{0}}}
	if err := checkFits(&big, hw, 0.9); err == nil {
		t.Error("oversized workload accepted")
	}
}

func TestSchemeNames(t *testing.T) {
	want := map[string]bool{
		"object-probability": true, "cluster-probability": true,
		"parallel-batch": true, "round-robin": true,
	}
	for _, s := range allSchemes() {
		if !want[s.Name()] {
			t.Errorf("unexpected scheme name %q", s.Name())
		}
	}
}

func TestBatchKeys(t *testing.T) {
	hw := smallHW() // 2 libs, 4 drives, 10 tapes
	keys, err := batchKeys(0, 1, 3, hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 6 { // 2 libs × 3 hot tapes
		t.Errorf("batch 0 has %d keys", len(keys))
	}
	keys, err = batchKeys(2, 1, 3, hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Index != 4 {
		t.Errorf("batch 2 keys: %v", keys)
	}
	if _, err := batchKeys(99, 1, 3, hw); err == nil {
		t.Error("out-of-range batch accepted")
	}
}

func TestCutSublistsRespectsCapacities(t *testing.T) {
	w := &model.Workload{}
	for i := 0; i < 20; i++ {
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 10})
	}
	var us []unit
	for i := 0; i < 20; i++ {
		us = append(us, unit{objects: []model.ObjectID{model.ObjectID(i)}, bytes: 10, probMass: 1})
	}
	subs, err := cutSublists(us, 50, 30, w)
	if err != nil {
		t.Fatal(err)
	}
	byteSizes := func(s []unit) int64 {
		var total int64
		for _, u := range s {
			total += u.bytes
		}
		return total
	}
	if byteSizes(subs[0]) > 50 {
		t.Errorf("sublist 0 holds %d bytes, cap 50", byteSizes(subs[0]))
	}
	for i := 1; i < len(subs); i++ {
		if byteSizes(subs[i]) > 30 {
			t.Errorf("sublist %d holds %d bytes, cap 30", i, byteSizes(subs[i]))
		}
	}
	// All 20 units accounted for.
	n := 0
	for _, s := range subs {
		for _, u := range s {
			n += len(u.objects)
		}
	}
	if n != 20 {
		t.Errorf("sublists hold %d objects, want 20", n)
	}
}

func TestCutSublistsFragmentsOversizedUnit(t *testing.T) {
	w := &model.Workload{}
	var ids []model.ObjectID
	for i := 0; i < 10; i++ {
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 10})
		ids = append(ids, model.ObjectID(i))
	}
	big := unit{objects: ids, bytes: 100, probMass: 1}
	subs, err := cutSublists([]unit{big}, 30, 30, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) < 3 {
		t.Errorf("oversized unit in %d sublists, want >= 3", len(subs))
	}
}

func TestPaperScalePlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale placement in -short mode")
	}
	hw := tape.DefaultHardware()
	w, err := workload.Generate(workload.Defaults(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{ObjectProbability{}, ParallelBatch{M: 4}} {
		res, err := s.Place(w, hw)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Validate(w, hw); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.TapesUsed > hw.TotalTapes() {
			t.Errorf("%s: used %d tapes of %d", s.Name(), res.TapesUsed, hw.TotalTapes())
		}
	}
}
