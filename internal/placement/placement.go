// Package placement implements the paper's object placement schemes:
//
//   - ParallelBatch — the paper's contribution (§5): density-sorted
//     sublists matched to tape batches, cluster-preserving refinement,
//     zigzag load balancing, organ-pipe alignment, and a pinned/switch
//     drive split per library.
//   - ObjectProbability — the [11] baseline: rank-dealt placement by
//     independent object probability with organ-pipe alignment and
//     least-popular replacement.
//   - ClusterProbability — the [20] baseline: one co-access cluster per
//     tape to minimize switches, no transfer parallelism.
//   - RoundRobin — an extension baseline that stripes objects across all
//     tapes with no popularity or relationship awareness, isolating the
//     value of the paper's heuristics.
//   - Online — the §7 future-work variant: requests arrive in epochs and
//     each epoch is placed with only the knowledge accumulated so far.
//
// Every scheme consumes a model.Workload plus a tape.Hardware and produces
// a Result: a fully indexed catalog plus the mount policy (which tapes the
// drives hold at startup, which drives are pinned, and each tape's
// accumulated probability for least-popular replacement).
package placement

import (
	"fmt"
	"sort"

	"paralleltape/internal/catalog"
	"paralleltape/internal/model"
	"paralleltape/internal/organpipe"
	"paralleltape/internal/tape"
)

// DefaultK is the default tape capacity utilization coefficient k (§5.3
// step 3, k < 1): tapes are filled to this fraction so refinements have
// slack.
const DefaultK = 0.9

// Result is a finished placement.
type Result struct {
	Scheme  string
	Catalog *catalog.Catalog
	// InitialMounts[lib][drive] is the library-local tape index mounted at
	// startup, or -1 for an empty drive.
	InitialMounts [][]int
	// Pinned[lib][drive] marks drives whose tape is never switched (the
	// paper's always-mounted batch). Baselines leave all drives false.
	Pinned [][]bool
	// TapeProb accumulates object probability per cartridge; the
	// least-popular replacement policy consults it.
	TapeProb map[tape.Key]float64
	// TapesUsed counts non-empty cartridges.
	TapesUsed int
}

// Scheme places a workload onto a tape-library system.
type Scheme interface {
	Name() string
	Place(w *model.Workload, hw tape.Hardware) (*Result, error)
}

// Validate checks the structural soundness of a placement against the
// workload and hardware: complete single-copy coverage, geometry, and
// mount-table shape.
func (r *Result) Validate(w *model.Workload, hw tape.Hardware) error {
	if r.Catalog == nil {
		return fmt.Errorf("placement: %s produced no catalog", r.Scheme)
	}
	if err := r.Catalog.Validate(w, hw); err != nil {
		return fmt.Errorf("placement %s: %w", r.Scheme, err)
	}
	if len(r.InitialMounts) != hw.Libraries || len(r.Pinned) != hw.Libraries {
		return fmt.Errorf("placement %s: mount tables sized %d/%d, want %d libraries",
			r.Scheme, len(r.InitialMounts), len(r.Pinned), hw.Libraries)
	}
	for lib := 0; lib < hw.Libraries; lib++ {
		if len(r.InitialMounts[lib]) != hw.DrivesPerLib || len(r.Pinned[lib]) != hw.DrivesPerLib {
			return fmt.Errorf("placement %s: library %d mount tables sized %d/%d, want %d drives",
				r.Scheme, lib, len(r.InitialMounts[lib]), len(r.Pinned[lib]), hw.DrivesPerLib)
		}
		seen := make(map[int]bool)
		for d, ti := range r.InitialMounts[lib] {
			if ti == -1 {
				if r.Pinned[lib][d] {
					return fmt.Errorf("placement %s: library %d drive %d pinned but empty", r.Scheme, lib, d)
				}
				continue
			}
			if ti < 0 || ti >= hw.TapesPerLib {
				return fmt.Errorf("placement %s: library %d drive %d mounts tape %d out of range",
					r.Scheme, lib, d, ti)
			}
			if seen[ti] {
				return fmt.Errorf("placement %s: library %d mounts tape %d on two drives", r.Scheme, lib, ti)
			}
			seen[ti] = true
		}
	}
	return nil
}

// builder accumulates per-tape object lists and finalizes them into
// organ-pipe-aligned layouts registered in a catalog.
type builder struct {
	w        *model.Workload
	hw       tape.Hardware
	probs    []float64 // per-object probability
	contents map[tape.Key][]model.ObjectID
	used     map[tape.Key]int64
	order    []tape.Key // creation order, for determinism
}

func newBuilder(w *model.Workload, hw tape.Hardware) *builder {
	return &builder{
		w:        w,
		hw:       hw,
		probs:    w.ObjectProbs(),
		contents: make(map[tape.Key][]model.ObjectID),
		used:     make(map[tape.Key]int64),
	}
}

// add places one object on a cartridge, enforcing the physical capacity.
func (b *builder) add(k tape.Key, id model.ObjectID) error {
	size := b.w.Objects[id].Size
	if b.used[k]+size > b.hw.Capacity {
		return fmt.Errorf("placement: object %d (%d bytes) overflows %s", id, size, k)
	}
	if _, exists := b.contents[k]; !exists {
		b.order = append(b.order, k)
	}
	b.contents[k] = append(b.contents[k], id)
	b.used[k] += size
	return nil
}

// free returns the remaining physical capacity on a cartridge.
func (b *builder) free(k tape.Key) int64 {
	return b.hw.Capacity - b.used[k]
}

// Alignment selects how objects are ordered along one cartridge.
type Alignment int

const (
	// AlignOrganPipe is [11]'s arrangement for tapes whose head rests
	// mid-tape between accesses: hottest object central, popularity
	// falling towards both ends.
	AlignOrganPipe Alignment = iota
	// AlignBOTDescending is [11]'s arrangement for tapes that are always
	// (re)mounted with the head at the beginning of tape: popularity
	// descending from BOT, so fresh mounts seek little and rewinds from
	// the hot region are short.
	AlignBOTDescending
	// AlignInsertion keeps the insertion order (ablation baseline).
	AlignInsertion
)

// finish aligns each cartridge according to align(key) (§5.3 step 6) and
// builds the catalog plus the per-tape probability table.
func (b *builder) finish(align func(tape.Key) Alignment) (*catalog.Catalog, map[tape.Key]float64, error) {
	cat := catalog.New(b.w.NumObjects())
	tapeProb := make(map[tape.Key]float64, len(b.contents))
	for _, k := range b.order {
		ids := b.contents[k]
		ordered := ids
		switch align(k) {
		case AlignOrganPipe:
			items := make([]organpipe.Item, len(ids))
			for i, id := range ids {
				items[i] = organpipe.Item{Index: i, Weight: b.probs[id]}
			}
			arranged := organpipe.Arrange(items)
			ordered = make([]model.ObjectID, len(ids))
			for i, it := range arranged {
				ordered[i] = ids[it.Index]
			}
		case AlignBOTDescending:
			ordered = make([]model.ObjectID, len(ids))
			copy(ordered, ids)
			sort.SliceStable(ordered, func(x, y int) bool {
				px, py := b.probs[ordered[x]], b.probs[ordered[y]]
				if px != py {
					return px > py
				}
				return ordered[x] < ordered[y]
			})
		case AlignInsertion:
			// keep insertion order
		}
		l := tape.NewLayout(k)
		var prob float64
		for _, id := range ordered {
			if _, err := l.Append(id, b.w.Objects[id].Size, b.hw.Capacity); err != nil {
				return nil, nil, err
			}
			prob += b.probs[id]
		}
		if err := cat.AddLayout(l); err != nil {
			return nil, nil, err
		}
		tapeProb[k] = prob
	}
	return cat, tapeProb, nil
}

// alignAll returns an alignment function applying one mode everywhere.
func alignAll(a Alignment) func(tape.Key) Alignment {
	return func(tape.Key) Alignment { return a }
}

// roundRobinKey maps a global tape rank to a cartridge, spreading ranks
// across libraries (rank r → library r mod n, slot r div n) so hot tapes
// are mountable in parallel.
func roundRobinKey(rank int, hw tape.Hardware) (tape.Key, error) {
	k := tape.Key{Library: rank % hw.Libraries, Index: rank / hw.Libraries}
	if k.Index >= hw.TapesPerLib {
		return tape.Key{}, fmt.Errorf("placement: rank %d exceeds the %d-cartridge system", rank, hw.TotalTapes())
	}
	return k, nil
}

// hottestMounts builds the baseline mount table: each library mounts its d
// highest-probability cartridges, no drive pinned.
func hottestMounts(hw tape.Hardware, tapeProb map[tape.Key]float64) ([][]int, [][]bool) {
	mounts := make([][]int, hw.Libraries)
	pinned := make([][]bool, hw.Libraries)
	for lib := 0; lib < hw.Libraries; lib++ {
		type tp struct {
			idx  int
			prob float64
		}
		var cands []tp
		for k, p := range tapeProb {
			if k.Library == lib {
				cands = append(cands, tp{idx: k.Index, prob: p})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].prob != cands[j].prob {
				return cands[i].prob > cands[j].prob
			}
			return cands[i].idx < cands[j].idx
		})
		mounts[lib] = make([]int, hw.DrivesPerLib)
		pinned[lib] = make([]bool, hw.DrivesPerLib)
		for d := 0; d < hw.DrivesPerLib; d++ {
			if d < len(cands) {
				mounts[lib][d] = cands[d].idx
			} else {
				mounts[lib][d] = -1
			}
		}
	}
	return mounts, pinned
}

// densityOrder returns object IDs sorted by decreasing probability density
// P(O)/size(O) (§5.3 step 2), ties broken by ID.
func densityOrder(w *model.Workload, probs []float64) []model.ObjectID {
	ids := make([]model.ObjectID, w.NumObjects())
	for i := range ids {
		ids[i] = model.ObjectID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		da := probs[ids[a]] / float64(w.Objects[ids[a]].Size)
		db := probs[ids[b]] / float64(w.Objects[ids[b]].Size)
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids
}

// probOrder returns object IDs sorted by decreasing probability (the [11]
// baseline sorts by raw probability, not density), ties broken by ID.
func probOrder(w *model.Workload, probs []float64) []model.ObjectID {
	ids := make([]model.ObjectID, w.NumObjects())
	for i := range ids {
		ids[i] = model.ObjectID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if probs[ids[a]] != probs[ids[b]] {
			return probs[ids[a]] > probs[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}

// checkFits verifies the workload fits the system at utilization k.
func checkFits(w *model.Workload, hw tape.Hardware, k float64) error {
	if k <= 0 || k > 1 {
		return fmt.Errorf("placement: utilization coefficient k=%v outside (0,1]", k)
	}
	budget := int64(float64(hw.TotalCapacity()) * k)
	if total := w.TotalObjectBytes(); total > budget {
		return fmt.Errorf("placement: workload (%d bytes) exceeds k-scaled capacity (%d bytes)", total, budget)
	}
	for i := range w.Objects {
		if w.Objects[i].Size > hw.Capacity {
			return fmt.Errorf("placement: object %d (%d bytes) larger than a cartridge", i, w.Objects[i].Size)
		}
	}
	return nil
}
