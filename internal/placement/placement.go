// Package placement implements the paper's object placement schemes:
//
//   - ParallelBatch — the paper's contribution (§5): density-sorted
//     sublists matched to tape batches, cluster-preserving refinement,
//     zigzag load balancing, organ-pipe alignment, and a pinned/switch
//     drive split per library.
//   - ObjectProbability — the [11] baseline: rank-dealt placement by
//     independent object probability with organ-pipe alignment and
//     least-popular replacement.
//   - ClusterProbability — the [20] baseline: one co-access cluster per
//     tape to minimize switches, no transfer parallelism.
//   - RoundRobin — an extension baseline that stripes objects across all
//     tapes with no popularity or relationship awareness, isolating the
//     value of the paper's heuristics.
//   - Online — the §7 future-work variant: requests arrive in epochs and
//     each epoch is placed with only the knowledge accumulated so far.
//
// Every scheme consumes a model.Workload plus a tape.Hardware and produces
// a Result: a fully indexed catalog plus the mount policy (which tapes the
// drives hold at startup, which drives are pinned, and each tape's
// accumulated probability for least-popular replacement).
package placement

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"paralleltape/internal/catalog"
	"paralleltape/internal/model"
	"paralleltape/internal/organpipe"
	"paralleltape/internal/tape"
)

// DefaultK is the default tape capacity utilization coefficient k (§5.3
// step 3, k < 1): tapes are filled to this fraction so refinements have
// slack.
const DefaultK = 0.9

// Result is a finished placement.
type Result struct {
	Scheme  string
	Catalog *catalog.Catalog
	// InitialMounts[lib][drive] is the library-local tape index mounted at
	// startup, or -1 for an empty drive.
	InitialMounts [][]int
	// Pinned[lib][drive] marks drives whose tape is never switched (the
	// paper's always-mounted batch). Baselines leave all drives false.
	Pinned [][]bool
	// TapeProb accumulates object probability per cartridge; the
	// least-popular replacement policy consults it.
	TapeProb map[tape.Key]float64
	// TapesUsed counts non-empty cartridges.
	TapesUsed int
}

// Scheme places a workload onto a tape-library system.
type Scheme interface {
	Name() string
	Place(w *model.Workload, hw tape.Hardware) (*Result, error)
}

// Validate checks the structural soundness of a placement against the
// workload and hardware: complete single-copy coverage, geometry, and
// mount-table shape.
func (r *Result) Validate(w *model.Workload, hw tape.Hardware) error {
	if r.Catalog == nil {
		return fmt.Errorf("placement: %s produced no catalog", r.Scheme)
	}
	if err := r.Catalog.Validate(w, hw); err != nil {
		return fmt.Errorf("placement %s: %w", r.Scheme, err)
	}
	if len(r.InitialMounts) != hw.Libraries || len(r.Pinned) != hw.Libraries {
		return fmt.Errorf("placement %s: mount tables sized %d/%d, want %d libraries",
			r.Scheme, len(r.InitialMounts), len(r.Pinned), hw.Libraries)
	}
	for lib := 0; lib < hw.Libraries; lib++ {
		if len(r.InitialMounts[lib]) != hw.DrivesPerLib || len(r.Pinned[lib]) != hw.DrivesPerLib {
			return fmt.Errorf("placement %s: library %d mount tables sized %d/%d, want %d drives",
				r.Scheme, lib, len(r.InitialMounts[lib]), len(r.Pinned[lib]), hw.DrivesPerLib)
		}
		seen := make(map[int]bool)
		for d, ti := range r.InitialMounts[lib] {
			if ti == -1 {
				if r.Pinned[lib][d] {
					return fmt.Errorf("placement %s: library %d drive %d pinned but empty", r.Scheme, lib, d)
				}
				continue
			}
			if ti < 0 || ti >= hw.TapesPerLib {
				return fmt.Errorf("placement %s: library %d drive %d mounts tape %d out of range",
					r.Scheme, lib, d, ti)
			}
			if seen[ti] {
				return fmt.Errorf("placement %s: library %d mounts tape %d on two drives", r.Scheme, lib, ti)
			}
			seen[ti] = true
		}
	}
	return nil
}

// builderTape is one opened cartridge inside a builder: its identity, the
// objects in insertion order, and the bytes written so far.
type builderTape struct {
	key  tape.Key
	ids  []model.ObjectID
	used int64
}

// builder accumulates per-tape object lists and finalizes them into
// organ-pipe-aligned layouts registered in a catalog. Cartridges live in a
// flat slice in creation order, addressed through a dense
// library×slot index — no map operations on the add hot path.
type builder struct {
	w       *model.Workload
	hw      tape.Hardware
	probs   []float64 // per-object probability
	tapeIdx []int32   // dense key index → slot in tapes, -1 when unopened
	tapes   []builderTape
}

// newBuilder wraps a workload for placement; probs must be w.ObjectProbs()
// (passed in so schemes that already computed it don't pay twice).
func newBuilder(w *model.Workload, hw tape.Hardware, probs []float64) *builder {
	idx := make([]int32, hw.TotalTapes())
	for i := range idx {
		idx[i] = -1
	}
	return &builder{w: w, hw: hw, probs: probs, tapeIdx: idx}
}

func (b *builder) slot(k tape.Key) int {
	return k.Library*b.hw.TapesPerLib + k.Index
}

// add places one object on a cartridge, enforcing the physical capacity.
// A cartridge is opened (joins the creation order) only by a successful
// first add.
func (b *builder) add(k tape.Key, id model.ObjectID) error {
	size := b.w.Objects[id].Size
	si := b.slot(k)
	ti := b.tapeIdx[si]
	var used int64
	if ti >= 0 {
		used = b.tapes[ti].used
	}
	if used+size > b.hw.Capacity {
		return fmt.Errorf("placement: object %d (%d bytes) overflows %s", id, size, k)
	}
	if ti < 0 {
		ti = int32(len(b.tapes))
		b.tapeIdx[si] = ti
		b.tapes = append(b.tapes, builderTape{key: k})
	}
	t := &b.tapes[ti]
	t.ids = append(t.ids, id)
	t.used += size
	return nil
}

// free returns the remaining physical capacity on a cartridge.
func (b *builder) free(k tape.Key) int64 {
	if ti := b.tapeIdx[b.slot(k)]; ti >= 0 {
		return b.hw.Capacity - b.tapes[ti].used
	}
	return b.hw.Capacity
}

// has reports whether the cartridge holds at least one object.
func (b *builder) has(k tape.Key) bool {
	return b.tapeIdx[b.slot(k)] >= 0
}

// numTapes returns the number of opened cartridges.
func (b *builder) numTapes() int { return len(b.tapes) }

// Alignment selects how objects are ordered along one cartridge.
type Alignment int

const (
	// AlignOrganPipe is [11]'s arrangement for tapes whose head rests
	// mid-tape between accesses: hottest object central, popularity
	// falling towards both ends.
	AlignOrganPipe Alignment = iota
	// AlignBOTDescending is [11]'s arrangement for tapes that are always
	// (re)mounted with the head at the beginning of tape: popularity
	// descending from BOT, so fresh mounts seek little and rewinds from
	// the hot region are short.
	AlignBOTDescending
	// AlignInsertion keeps the insertion order (ablation baseline).
	AlignInsertion
)

// finish aligns each cartridge according to align(key) (§5.3 step 6) and
// builds the catalog plus the per-tape probability table.
func (b *builder) finish(align func(tape.Key) Alignment) (*catalog.Catalog, map[tape.Key]float64, error) {
	return b.finishWorkers(align, 1)
}

// alignWorker holds one worker's reusable alignment buffers.
type alignWorker struct {
	arr   organpipe.Arranger
	items []organpipe.Item
}

// alignTape writes tape i's aligned object order into dst and returns the
// tape's accumulated probability (summed in the aligned order, exactly as
// the pre-rework finish did inside its append loop).
func (b *builder) alignTape(wk *alignWorker, i int, dst []model.ObjectID, align func(tape.Key) Alignment) float64 {
	t := &b.tapes[i]
	switch align(t.key) {
	case AlignOrganPipe:
		if cap(wk.items) < len(t.ids) {
			wk.items = make([]organpipe.Item, len(t.ids))
		}
		items := wk.items[:len(t.ids)]
		for j, id := range t.ids {
			items[j] = organpipe.Item{Index: j, Weight: b.probs[id]}
		}
		for j, it := range wk.arr.Arrange(items) {
			dst[j] = t.ids[it.Index]
		}
	case AlignBOTDescending:
		copy(dst, t.ids)
		slices.SortStableFunc(dst, func(x, y model.ObjectID) int {
			px, py := b.probs[x], b.probs[y]
			if px != py {
				return cmp.Compare(py, px)
			}
			return cmp.Compare(x, y)
		})
	default: // AlignInsertion keeps insertion order
		copy(dst, t.ids)
	}
	var prob float64
	for _, id := range dst {
		prob += b.probs[id]
	}
	return prob
}

// finishWorkers is finish with the per-tape alignment fanned across
// workers goroutines. Tapes are independent — each worker owns its scratch
// buffers and writes a disjoint region of one output arena — and the
// catalog assembly below stays sequential in cartridge creation order, so
// the result is bit-identical at any worker count.
func (b *builder) finishWorkers(align func(tape.Key) Alignment, workers int) (*catalog.Catalog, map[tape.Key]float64, error) {
	cat := catalog.New(b.w.NumObjects())
	nt := len(b.tapes)
	tapeProb := make(map[tape.Key]float64, nt)
	offs := make([]int, nt+1)
	for i := range b.tapes {
		offs[i+1] = offs[i] + len(b.tapes[i].ids)
	}
	ordered := make([]model.ObjectID, offs[nt])
	probsOut := make([]float64, nt)
	if workers > 1 && nt > 1 {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var wk alignWorker
				for {
					i := int(next.Add(1)) - 1
					if i >= nt {
						return
					}
					probsOut[i] = b.alignTape(&wk, i, ordered[offs[i]:offs[i+1]], align)
				}
			}()
		}
		wg.Wait()
	} else {
		var wk alignWorker
		for i := 0; i < nt; i++ {
			probsOut[i] = b.alignTape(&wk, i, ordered[offs[i]:offs[i+1]], align)
		}
	}
	for i := range b.tapes {
		t := &b.tapes[i]
		l := tape.NewLayoutWithCapacity(t.key, len(t.ids))
		for _, id := range ordered[offs[i]:offs[i+1]] {
			if _, err := l.Append(id, b.w.Objects[id].Size, b.hw.Capacity); err != nil {
				return nil, nil, err
			}
		}
		if err := cat.AddLayout(l); err != nil {
			return nil, nil, err
		}
		tapeProb[t.key] = probsOut[i]
	}
	return cat, tapeProb, nil
}

// alignAll returns an alignment function applying one mode everywhere.
func alignAll(a Alignment) func(tape.Key) Alignment {
	return func(tape.Key) Alignment { return a }
}

// roundRobinKey maps a global tape rank to a cartridge, spreading ranks
// across libraries (rank r → library r mod n, slot r div n) so hot tapes
// are mountable in parallel.
func roundRobinKey(rank int, hw tape.Hardware) (tape.Key, error) {
	k := tape.Key{Library: rank % hw.Libraries, Index: rank / hw.Libraries}
	if k.Index >= hw.TapesPerLib {
		return tape.Key{}, fmt.Errorf("placement: rank %d exceeds the %d-cartridge system", rank, hw.TotalTapes())
	}
	return k, nil
}

// hottestMounts builds the baseline mount table: each library mounts its d
// highest-probability cartridges, no drive pinned.
func hottestMounts(hw tape.Hardware, tapeProb map[tape.Key]float64) ([][]int, [][]bool) {
	mounts := make([][]int, hw.Libraries)
	pinned := make([][]bool, hw.Libraries)
	for lib := 0; lib < hw.Libraries; lib++ {
		type tp struct {
			idx  int
			prob float64
		}
		var cands []tp
		for k, p := range tapeProb {
			if k.Library == lib {
				cands = append(cands, tp{idx: k.Index, prob: p})
			}
		}
		// idx is unique within a library, so (prob desc, idx) is a total
		// order and the unstable sort is safe.
		slices.SortFunc(cands, func(a, b tp) int {
			if a.prob != b.prob {
				return cmp.Compare(b.prob, a.prob)
			}
			return cmp.Compare(a.idx, b.idx)
		})
		mounts[lib] = make([]int, hw.DrivesPerLib)
		pinned[lib] = make([]bool, hw.DrivesPerLib)
		for d := 0; d < hw.DrivesPerLib; d++ {
			if d < len(cands) {
				mounts[lib][d] = cands[d].idx
			} else {
				mounts[lib][d] = -1
			}
		}
	}
	return mounts, pinned
}

// densityOrder returns object IDs sorted by decreasing probability density
// P(O)/size(O) (§5.3 step 2), ties broken by ID.
func densityOrder(w *model.Workload, probs []float64) []model.ObjectID {
	ids := make([]model.ObjectID, w.NumObjects())
	for i := range ids {
		ids[i] = model.ObjectID(i)
	}
	sortSliceStable(ids, func(a, b model.ObjectID) bool {
		da := probs[a] / float64(w.Objects[a].Size)
		db := probs[b] / float64(w.Objects[b].Size)
		if da != db {
			return da > db
		}
		return a < b
	})
	return ids
}

// probOrder returns object IDs sorted by decreasing probability (the [11]
// baseline sorts by raw probability, not density), ties broken by ID.
func probOrder(w *model.Workload, probs []float64) []model.ObjectID {
	ids := make([]model.ObjectID, w.NumObjects())
	for i := range ids {
		ids[i] = model.ObjectID(i)
	}
	sortSliceStable(ids, func(a, b model.ObjectID) bool {
		if probs[a] != probs[b] {
			return probs[a] > probs[b]
		}
		return a < b
	})
	return ids
}

// checkFits verifies the workload fits the system at utilization k.
func checkFits(w *model.Workload, hw tape.Hardware, k float64) error {
	if k <= 0 || k > 1 {
		return fmt.Errorf("placement: utilization coefficient k=%v outside (0,1]", k)
	}
	budget := int64(float64(hw.TotalCapacity()) * k)
	if total := w.TotalObjectBytes(); total > budget {
		return fmt.Errorf("placement: workload (%d bytes) exceeds k-scaled capacity (%d bytes)", total, budget)
	}
	for i := range w.Objects {
		if w.Objects[i].Size > hw.Capacity {
			return fmt.Errorf("placement: object %d (%d bytes) larger than a cartridge", i, w.Objects[i].Size)
		}
	}
	return nil
}
