package placement

import "testing"

// TestPlaceAllocBudget pins the steady-state allocation count of the full
// ParallelBatch pipeline at the small test scale. The pipeline allocates
// only its outputs (catalog, layouts, mount tables) plus a bounded handful
// of working slices; the per-object and per-edge intermediates come from
// the cluster scratch pool and the placement allocScratch. A regression
// that reintroduces per-unit or per-tape allocations trips this budget
// immediately — at this scale the pre-rework pipeline cost several
// thousand allocations per run.
func TestPlaceAllocBudget(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 1)
	s := ParallelBatch{M: 2}
	// Warm the cluster scratch pool so the measurement sees steady state.
	if _, err := s.Place(w, hw); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := s.Place(w, hw); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 160 // measured ~100; slack for runtime noise
	if n > budget {
		t.Fatalf("ParallelBatch.Place allocates %.0f/run, budget %d", n, budget)
	}
}
