package placement

import (
	"math"
	"runtime"
	"testing"

	"paralleltape/internal/cluster"
	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

// requireSameResult asserts two placements are byte-identical: every object
// location, every layout extent, the mount tables, the per-tape probability
// table (compared through Float64bits — bit-identical, not approximately
// equal), and the tape count.
func requireSameResult(t *testing.T, w *model.Workload, a, b *Result) {
	t.Helper()
	if a.Scheme != b.Scheme {
		t.Fatalf("scheme %q vs %q", a.Scheme, b.Scheme)
	}
	if a.TapesUsed != b.TapesUsed {
		t.Fatalf("TapesUsed %d vs %d", a.TapesUsed, b.TapesUsed)
	}
	for i := 0; i < w.NumObjects(); i++ {
		la, oka := a.Catalog.Lookup(model.ObjectID(i))
		lb, okb := b.Catalog.Lookup(model.ObjectID(i))
		if oka != okb || la != lb {
			t.Fatalf("object %d at %v/%v vs %v/%v", i, la, oka, lb, okb)
		}
	}
	ta, tb := a.Catalog.Tapes(), b.Catalog.Tapes()
	if len(ta) != len(tb) {
		t.Fatalf("%d vs %d cartridges", len(ta), len(tb))
	}
	for i, k := range ta {
		if k != tb[i] {
			t.Fatalf("cartridge %d: %s vs %s", i, k, tb[i])
		}
		lla, _ := a.Catalog.Layout(k)
		llb, _ := b.Catalog.Layout(k)
		ea, eb := lla.Extents(), llb.Extents()
		if len(ea) != len(eb) {
			t.Fatalf("%s: %d vs %d extents", k, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("%s extent %d: %+v vs %+v", k, j, ea[j], eb[j])
			}
		}
	}
	for lib := range a.InitialMounts {
		for d := range a.InitialMounts[lib] {
			if a.InitialMounts[lib][d] != b.InitialMounts[lib][d] {
				t.Fatalf("mount L%d.D%d: %d vs %d", lib, d, a.InitialMounts[lib][d], b.InitialMounts[lib][d])
			}
			if a.Pinned[lib][d] != b.Pinned[lib][d] {
				t.Fatalf("pin L%d.D%d: %v vs %v", lib, d, a.Pinned[lib][d], b.Pinned[lib][d])
			}
		}
	}
	if len(a.TapeProb) != len(b.TapeProb) {
		t.Fatalf("TapeProb sized %d vs %d", len(a.TapeProb), len(b.TapeProb))
	}
	for k, pa := range a.TapeProb {
		pb, ok := b.TapeProb[k]
		if !ok || math.Float64bits(pa) != math.Float64bits(pb) {
			t.Fatalf("TapeProb[%s] = %x vs %x (present=%v)", k,
				math.Float64bits(pa), math.Float64bits(pb), ok)
		}
	}
}

// TestParallelBatchParallelKnobBitIdentical runs every interesting
// ParallelBatch configuration — the three linkages, cluster caps, and the
// ablation switches — with Parallel off and on and requires byte-identical
// results. GOMAXPROCS is raised so the Parallel runs genuinely fan out even
// on a single-CPU machine.
func TestParallelBatchParallelKnobBitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	hw := smallHW()
	configs := map[string]ParallelBatch{
		"default":  {M: 2},
		"single":   {M: 2, Clustering: cluster.Config{Linkage: cluster.Single}},
		"complete": {M: 2, Clustering: cluster.Config{Linkage: cluster.Complete}},
		"capped": {M: 2, Clustering: cluster.Config{
			Linkage: cluster.Average, MaxObjects: 4, MaxBytes: 12 << 10}},
		"threshold": {M: 2, Clustering: cluster.Config{
			Linkage: cluster.Average, Threshold: 0.02}},
		"no-refine": {M: 2, NoRefine: true},
		"first-fit": {M: 2, FirstFitBalance: true},
		"wide-hot":  {M: 2, WideHotBatch: true},
		"bot-only":  {M: 2, NoOrganPipe: true},
	}
	for _, seed := range []uint64{3, 17} {
		w := smallWL(t, seed)
		for name, cfg := range configs {
			seq, err := cfg.Place(w, hw)
			if err != nil {
				t.Fatalf("seed %d %s sequential: %v", seed, name, err)
			}
			cfg.Parallel = true
			par, err := cfg.Place(w, hw)
			if err != nil {
				t.Fatalf("seed %d %s parallel: %v", seed, name, err)
			}
			requireSameResult(t, w, seq, par)
		}
	}
}

// TestFinishWorkersBitIdentical drives the builder's finish step directly at
// several worker counts (the Place path can only reach GOMAXPROCS) and
// requires identical catalogs and probability tables.
func TestFinishWorkersBitIdentical(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 5)
	probs := w.ObjectProbs()
	fill := func() *builder {
		b := newBuilder(w, hw, probs)
		for i := range w.Objects {
			k := tape.Key{Library: i % hw.Libraries, Index: (i / hw.Libraries) % hw.TapesPerLib}
			if err := b.add(k, model.ObjectID(i)); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	align := func(k tape.Key) Alignment {
		if k.Index%2 == 0 {
			return AlignOrganPipe
		}
		return AlignBOTDescending
	}
	catSeq, probSeq, err := fill().finishWorkers(align, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		catPar, probPar, err := fill().finishWorkers(align, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		a := &Result{Scheme: "x", Catalog: catSeq, TapeProb: probSeq}
		b := &Result{Scheme: "x", Catalog: catPar, TapeProb: probPar}
		requireSameResult(t, w, a, b)
	}
}

// TestOnlineAndBaselinesUnchangedByRework is a belt-and-braces determinism
// check across the builder rework: every scheme placed twice yields
// byte-identical results (the golden tests pin absolute outputs; this pins
// run-to-run stability including TapeProb bits).
func TestOnlineAndBaselinesUnchangedByRework(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 9)
	schemes := []Scheme{
		ObjectProbability{},
		ClusterProbability{},
		ParallelBatch{M: 2},
		RoundRobin{},
		Online{Epochs: 3, M: 2},
	}
	for _, s := range schemes {
		a, err := s.Place(w, hw)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := s.Place(w, hw)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		requireSameResult(t, w, a, b)
	}
}
