package placement

import (
	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

// ObjectProbability is the [11] (Christodoulakis et al., VLDB'97) baseline:
// placement driven purely by independent per-object access probabilities,
// with no knowledge of object relationships.
//
// Objects are sorted by probability and dealt round-robin by rank across
// the capacity-minimal tape set (the multi-tape generalization of the
// paper's Figure 4 schematic: neighboring ranks on neighboring tapes, so
// per-tape probability and seek load stay balanced while the top ranks
// concentrate whatever probability the mounted set can hold). Objects
// within each tape are organ-pipe aligned.
//
// Because co-requested objects carry unrelated probabilities, a request's
// objects scatter across nearly as many tapes as it has objects: the
// scheme transfers with maximal parallelism but pays the heaviest switch
// traffic of the three schemes — the paper's Figure 9 behavior.
type ObjectProbability struct {
	// K is the capacity utilization coefficient; zero means DefaultK.
	K float64
	// GroupWidth narrows the dealing to rank bands of this many
	// cartridges (an ablation knob); zero deals across the whole
	// capacity-minimal tape set.
	GroupWidth int
}

// Name implements Scheme.
func (s ObjectProbability) Name() string { return "object-probability" }

// Place implements Scheme.
func (s ObjectProbability) Place(w *model.Workload, hw tape.Hardware) (*Result, error) {
	k := s.K
	if k == 0 {
		k = DefaultK
	}
	if err := checkFits(w, hw, k); err != nil {
		return nil, err
	}
	b := newBuilder(w, hw, w.ObjectProbs())
	kCap := int64(float64(hw.Capacity) * k)
	groupWidth := s.GroupWidth
	if groupWidth <= 0 {
		// Capacity-minimal tape set: just enough cartridges at
		// utilization k to hold everything.
		total := w.TotalObjectBytes()
		groupWidth = int(total / kCap)
		if total%kCap != 0 || groupWidth == 0 {
			groupWidth++
		}
	}
	if groupWidth > hw.TotalTapes() {
		groupWidth = hw.TotalTapes()
	}

	// Active group of cartridges accepting objects, each with a k-budget.
	type slot struct {
		key    tape.Key
		budget int64
	}
	var group []slot
	nextRank := 0
	tapesUsed := 0
	openGroup := func() error {
		group = group[:0]
		for i := 0; i < groupWidth; i++ {
			key, err := roundRobinKey(nextRank, hw)
			if err != nil {
				return err
			}
			nextRank++
			group = append(group, slot{key: key, budget: kCap})
		}
		tapesUsed += groupWidth
		return nil
	}
	if err := openGroup(); err != nil {
		return nil, err
	}
	deal := 0
	for _, id := range probOrder(w, b.probs) {
		size := w.Objects[id].Size
		placed := false
		for try := 0; try < len(group); try++ {
			sl := &group[(deal+try)%len(group)]
			// A fresh cartridge takes any object the hardware can hold,
			// even one above the k-budget.
			if sl.budget >= size || sl.budget == kCap {
				if err := b.add(sl.key, id); err != nil {
					return nil, err
				}
				sl.budget -= size
				deal = (deal + try + 1) % len(group)
				placed = true
				break
			}
		}
		if !placed {
			// Spill: extend the tape set by one cartridge rather than a
			// whole group, so packing slack never overruns the library.
			key, err := roundRobinKey(nextRank, hw)
			if err != nil {
				return nil, err
			}
			nextRank++
			tapesUsed++
			group = append(group, slot{key: key, budget: kCap - size})
			if err := b.add(key, id); err != nil {
				return nil, err
			}
		}
	}
	cat, tapeProb, err := b.finish(alignAll(AlignOrganPipe))
	if err != nil {
		return nil, err
	}
	mounts, pinned := hottestMounts(hw, tapeProb)
	return &Result{
		Scheme:        s.Name(),
		Catalog:       cat,
		InitialMounts: mounts,
		Pinned:        pinned,
		TapeProb:      tapeProb,
		TapesUsed:     tapesUsed,
	}, nil
}
