package placement

import (
	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

// RoundRobin is an extension baseline (not from the paper): objects are
// dealt across all cartridges of the system in ID order like cards, with
// no popularity or relationship awareness. It maximizes transfer
// parallelism the naive way — every request touches nearly every tape — and
// therefore shows what the paper's heuristics buy over raw striping-style
// spreading (§2 discusses why whole-request striping underperforms on
// tape).
type RoundRobin struct {
	// K is the capacity utilization coefficient; zero means DefaultK.
	K float64
}

// Name implements Scheme.
func (s RoundRobin) Name() string { return "round-robin" }

// Place implements Scheme.
func (s RoundRobin) Place(w *model.Workload, hw tape.Hardware) (*Result, error) {
	k := s.K
	if k == 0 {
		k = DefaultK
	}
	if err := checkFits(w, hw, k); err != nil {
		return nil, err
	}
	b := newBuilder(w, hw, w.ObjectProbs())
	kCap := int64(float64(hw.Capacity) * k)
	// Estimate the stripe width from the bytes that must land on each
	// cartridge, then deal objects across exactly that many cartridges.
	total := w.TotalObjectBytes()
	width := int(total/kCap) + 1
	if width > hw.TotalTapes() {
		width = hw.TotalTapes()
	}
	budgets := make([]int64, width)
	keys := make([]tape.Key, width)
	for i := range keys {
		var err error
		if keys[i], err = roundRobinKey(i, hw); err != nil {
			return nil, err
		}
		budgets[i] = kCap
	}
	next := 0
	for i := range w.Objects {
		id := model.ObjectID(i)
		size := w.Objects[i].Size
		placed := false
		for tries := 0; tries < width; tries++ {
			slot := (next + tries) % width
			if budgets[slot] >= size || budgets[slot] == kCap {
				if err := b.add(keys[slot], id); err != nil {
					return nil, err
				}
				budgets[slot] -= size
				next = (slot + 1) % width
				placed = true
				break
			}
		}
		if !placed {
			// All stripes full: widen onto a fresh cartridge.
			key, err := roundRobinKey(width, hw)
			if err != nil {
				return nil, err
			}
			keys = append(keys, key)
			budgets = append(budgets, kCap-size)
			width++
			if err := b.add(key, id); err != nil {
				return nil, err
			}
		}
	}
	cat, tapeProb, err := b.finish(alignAll(AlignOrganPipe))
	if err != nil {
		return nil, err
	}
	mounts, pinned := hottestMounts(hw, tapeProb)
	return &Result{
		Scheme:        s.Name(),
		Catalog:       cat,
		InitialMounts: mounts,
		Pinned:        pinned,
		TapeProb:      tapeProb,
		TapesUsed:     width,
	}, nil
}
