package placement

import (
	"paralleltape/internal/cluster"
	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

// ClusterProbability is the [20] (Li & Prabhakar, MSS'02) baseline: objects
// with strong access relationships are clustered and each cluster is placed
// on a single tape, minimizing tape switches under the assumption that
// media switch time dominates. Clusters are packed onto tapes in
// decreasing cluster-probability order; a cluster that does not fit the
// remaining space of any open tape spills onto a new one (and, if larger
// than a whole cartridge, across several). There is deliberately no
// transfer parallelism — that is the scheme's documented weakness in the
// paper's Figures 8 and 9.
type ClusterProbability struct {
	// K is the capacity utilization coefficient; zero means DefaultK.
	K float64
	// Clustering configures §5.1 clustering; the zero value means
	// cluster.DefaultConfig().
	Clustering cluster.Config
	// Precomputed, if non-nil, supplies a clustering result computed for
	// exactly this workload, skipping the internal cluster.Run call. The
	// experiment harness uses it to share one clustering across schemes.
	Precomputed *cluster.Result
}

// Name implements Scheme.
func (s ClusterProbability) Name() string { return "cluster-probability" }

// Place implements Scheme.
func (s ClusterProbability) Place(w *model.Workload, hw tape.Hardware) (*Result, error) {
	k := s.K
	if k == 0 {
		k = DefaultK
	}
	if err := checkFits(w, hw, k); err != nil {
		return nil, err
	}
	res := s.Precomputed
	if res == nil {
		var err error
		if res, err = cluster.Run(w, s.Clustering); err != nil {
			return nil, err
		}
	}

	b := newBuilder(w, hw, w.ObjectProbs())
	kCap := int64(float64(hw.Capacity) * k)
	nextRank := 0
	// Open tapes still eligible for packing, in creation order. Keys are
	// retired once too full to be useful, keeping the fit scan short.
	type open struct {
		key    tape.Key
		budget int64
	}
	var opens []open
	newTape := func() (int, error) {
		key, err := roundRobinKey(nextRank, hw)
		if err != nil {
			return -1, err
		}
		nextRank++
		opens = append(opens, open{key: key, budget: kCap})
		return len(opens) - 1, nil
	}
	// place puts ids onto the first open tape with room for all of them,
	// else onto a new tape, spilling greedily if even a fresh cartridge
	// cannot hold the whole set.
	place := func(ids []model.ObjectID, bytes int64) error {
		if bytes <= kCap {
			slot := -1
			for i := range opens {
				if opens[i].budget >= bytes {
					slot = i
					break
				}
			}
			if slot < 0 {
				var err error
				if slot, err = newTape(); err != nil {
					return err
				}
			}
			for _, id := range ids {
				if err := b.add(opens[slot].key, id); err != nil {
					return err
				}
			}
			opens[slot].budget -= bytes
			return nil
		}
		// Oversized cluster: fill fresh cartridges back to back.
		slot, err := newTape()
		if err != nil {
			return err
		}
		for _, id := range ids {
			size := w.Objects[id].Size
			if opens[slot].budget < size {
				if slot, err = newTape(); err != nil {
					return err
				}
			}
			if err := b.add(opens[slot].key, id); err != nil {
				return err
			}
			opens[slot].budget -= size
		}
		return nil
	}

	// Clusters arrive sorted by decreasing probability from cluster.Run.
	for _, c := range res.Clusters {
		if err := place(c.Objects, c.Bytes); err != nil {
			return nil, err
		}
	}
	// Unreferenced (probability-zero) objects fill remaining space.
	for _, id := range res.Unreferenced {
		if err := place([]model.ObjectID{id}, w.Objects[id].Size); err != nil {
			return nil, err
		}
	}

	cat, tapeProb, err := b.finish(alignAll(AlignOrganPipe))
	if err != nil {
		return nil, err
	}
	mounts, pinned := hottestMounts(hw, tapeProb)
	return &Result{
		Scheme:        s.Name(),
		Catalog:       cat,
		InitialMounts: mounts,
		Pinned:        pinned,
		TapeProb:      tapeProb,
		TapesUsed:     nextRank,
	}, nil
}
