package placement

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDescribeSchemes(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 40)
	for _, s := range allSchemes() {
		res, err := s.Place(w, hw)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		d, err := Describe(res, w, hw)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if d.Scheme != s.Name() {
			t.Errorf("scheme label %q", d.Scheme)
		}
		if d.FillMin < 0 || d.FillMax > hw.Capacity || d.FillMean > d.FillMax || d.FillMin > d.FillMean {
			t.Errorf("%s: fill stats inconsistent: %+v", s.Name(), d)
		}
		if d.MountedProbShare < 0 || d.MountedProbShare > 1+1e-9 {
			t.Errorf("%s: MountedProbShare = %v", s.Name(), d.MountedProbShare)
		}
		if d.ProbGini < -1e-9 || d.ProbGini > 1 {
			t.Errorf("%s: Gini = %v", s.Name(), d.ProbGini)
		}
		if d.MeanTapesPerRequest < 1 || d.MeanTapesPerRequest > float64(d.MaxTapesOfAnyRequest) {
			t.Errorf("%s: tapes/request %v (max %d)", s.Name(), d.MeanTapesPerRequest, d.MaxTapesOfAnyRequest)
		}
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), s.Name()) {
			t.Errorf("description text missing scheme name:\n%s", buf.String())
		}
	}
}

func TestDescribeStructuralContrasts(t *testing.T) {
	// The diagnostics must expose the defining structural differences:
	// cluster probability keeps requests on few tapes; object probability
	// scatters them widest.
	hw := smallHW()
	w := smallWL(t, 41)
	tapesPer := map[string]float64{}
	gini := map[string]float64{}
	for _, s := range allSchemes() {
		res, err := s.Place(w, hw)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Describe(res, w, hw)
		if err != nil {
			t.Fatal(err)
		}
		tapesPer[s.Name()] = d.MeanTapesPerRequest
		gini[s.Name()] = d.ProbGini
	}
	if tapesPer["cluster-probability"] >= tapesPer["object-probability"] {
		t.Errorf("cluster-probability touches %v tapes/request, object-probability %v — expected fewer",
			tapesPer["cluster-probability"], tapesPer["object-probability"])
	}
	// Cluster packing concentrates probability far more than rank dealing.
	if gini["cluster-probability"] <= gini["round-robin"] {
		t.Errorf("Gini ordering unexpected: cluster %v vs round-robin %v",
			gini["cluster-probability"], gini["round-robin"])
	}
}

func TestGini(t *testing.T) {
	if g := gini(nil); g != 0 {
		t.Errorf("gini(nil) = %v", g)
	}
	if g := gini([]float64{0, 0, 0}); g != 0 {
		t.Errorf("gini(zeros) = %v", g)
	}
	if g := gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Errorf("gini(uniform) = %v, want 0", g)
	}
	// All mass on one element of n: Gini = (n-1)/n.
	if g := gini([]float64{0, 0, 0, 10}); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("gini(concentrated) = %v, want 0.75", g)
	}
	// More skew → higher Gini.
	if gini([]float64{1, 2, 3, 4}) >= gini([]float64{0.1, 0.2, 0.3, 10}) {
		t.Error("gini ordering violated")
	}
}

func TestDescribeErrors(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 42)
	if _, err := Describe(nil, w, hw); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := Describe(&Result{Scheme: "x"}, w, hw); err == nil {
		t.Error("result without catalog accepted")
	}
}
