package placement

import (
	"testing"

	"paralleltape/internal/model"
)

func TestOnlineValidPlacement(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 30)
	for _, epochs := range []int{1, 2, 4, 8} {
		s := Online{Epochs: epochs, M: 2}
		res, err := s.Place(w, hw)
		if err != nil {
			t.Fatalf("epochs=%d: %v", epochs, err)
		}
		if err := res.Validate(w, hw); err != nil {
			t.Fatalf("epochs=%d: %v", epochs, err)
		}
	}
}

func TestOnlineDeterministic(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 31)
	s := Online{Epochs: 3, M: 2}
	a, err := s.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.NumObjects(); i++ {
		la, _ := a.Catalog.Lookup(model.ObjectID(i))
		lb, _ := b.Catalog.Lookup(model.ObjectID(i))
		if la != lb {
			t.Fatalf("object %d differs across runs", i)
		}
	}
}

func TestOnlineLaterWavesCannotEnterPinnedBatch(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 32)
	s := Online{Epochs: 4, M: 2}
	res, err := s.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned slots are tape indices < d−m = 2. Only wave-0 objects (the
	// first quarter of IDs) may live there.
	waveSize := (w.NumObjects() + 3) / 4
	for i := 0; i < w.NumObjects(); i++ {
		loc, ok := res.Catalog.Lookup(model.ObjectID(i))
		if !ok {
			t.Fatalf("object %d unplaced", i)
		}
		if loc.Tape.Index < hw.DrivesPerLib-2 && i >= waveSize {
			t.Errorf("wave-%d object %d in the always-mounted batch (%v)",
				i/waveSize, i, loc.Tape)
		}
	}
}

func TestOnlineEpochsOneMatchesStructure(t *testing.T) {
	// Epochs=1 sees everything at once; its pinned-batch content must
	// carry at least as much probability as any multi-epoch run's.
	hw := smallHW()
	w := smallWL(t, 33)
	probOfPinned := func(res *Result, dm int) float64 {
		total := 0.0
		for k, p := range res.TapeProb {
			if k.Index < dm {
				total += p
			}
		}
		return total
	}
	one, err := Online{Epochs: 1, M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Online{Epochs: 4, M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if probOfPinned(one, 2) < probOfPinned(four, 2)-1e-9 {
		t.Errorf("full knowledge pinned probability %v below 4-epoch %v",
			probOfPinned(one, 2), probOfPinned(four, 2))
	}
}

func TestOnlineRejectsBadConfig(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 34)
	if _, err := (Online{Epochs: -1, M: 2}).Place(w, hw); err == nil {
		t.Error("negative epochs accepted")
	}
	if _, err := (Online{Epochs: 2, M: hw.DrivesPerLib}).Place(w, hw); err == nil {
		t.Error("m = d accepted")
	}
}

func TestOnlineName(t *testing.T) {
	if (Online{}).Name() != "online-parallel-batch" {
		t.Errorf("name = %q", Online{}.Name())
	}
}

func TestWaveUnitsRestrictsToWave(t *testing.T) {
	w := &model.Workload{
		Objects: []model.Object{
			{ID: 0, Size: 10}, {ID: 1, Size: 10}, {ID: 2, Size: 10}, {ID: 3, Size: 10},
		},
		Requests: []model.Request{
			{ID: 0, Prob: 0.6, Objects: []model.ObjectID{0, 1, 2}},
			{ID: 1, Prob: 0.4, Objects: []model.ObjectID{3}},
		},
	}
	probs := w.ObjectProbs()
	units, err := waveUnits(w, probs, 2, 4) // wave = {2, 3}
	if err != nil {
		t.Fatal(err)
	}
	seen := map[model.ObjectID]bool{}
	for _, u := range units {
		for _, id := range u.objects {
			if id < 2 || id > 3 {
				t.Errorf("unit contains out-of-wave object %d", id)
			}
			if seen[id] {
				t.Errorf("object %d in two units", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 2 {
		t.Errorf("wave covered %d objects, want 2", len(seen))
	}
}

func TestWaveUnitsNoRequests(t *testing.T) {
	w := &model.Workload{
		Objects: []model.Object{{ID: 0, Size: 10}, {ID: 1, Size: 20}},
	}
	units, err := waveUnits(w, []float64{0, 0}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Errorf("units = %d, want 2 singletons", len(units))
	}
}

func TestOnlinePinnedLayoutShape(t *testing.T) {
	hw := smallHW()
	w := smallWL(t, 35)
	res, err := Online{Epochs: 2, M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	dm := hw.DrivesPerLib - 2
	for lib := 0; lib < hw.Libraries; lib++ {
		for d := 0; d < hw.DrivesPerLib; d++ {
			if d < dm && res.InitialMounts[lib][d] >= 0 && !res.Pinned[lib][d] {
				t.Errorf("library %d drive %d mounted but not pinned", lib, d)
			}
			if d >= dm && res.Pinned[lib][d] {
				t.Errorf("library %d switch drive %d pinned", lib, d)
			}
		}
	}
}
