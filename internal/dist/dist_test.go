package dist

import (
	"math"
	"testing"
	"testing/quick"

	"paralleltape/internal/rng"
)

func TestZipfNormalized(t *testing.T) {
	for _, alpha := range []float64{0, 0.3, 0.5, 1, 2} {
		z := NewZipf(300, alpha)
		sum := 0.0
		for r := 1; r <= 300; r++ {
			sum += z.Prob(r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: probabilities sum to %v", alpha, sum)
		}
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z := NewZipf(100, 0)
	for r := 1; r <= 100; r++ {
		if math.Abs(z.Prob(r)-0.01) > 1e-12 {
			t.Fatalf("alpha=0 rank %d prob %v != 0.01", r, z.Prob(r))
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z := NewZipf(50, 0.7)
	for r := 2; r <= 50; r++ {
		if z.Prob(r) > z.Prob(r-1) {
			t.Fatalf("Zipf not decreasing at rank %d", r)
		}
	}
}

func TestZipfRatioMatchesPowerLaw(t *testing.T) {
	z := NewZipf(10, 1)
	// P(1)/P(2) should equal 2^1.
	ratio := z.Prob(1) / z.Prob(2)
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("P(1)/P(2) = %v, want 2", ratio)
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	src := rng.New(1)
	z := NewZipf(10, 1)
	const n = 400000
	counts := make([]int, 11)
	for i := 0; i < n; i++ {
		r := z.Sample(src)
		if r < 1 || r > 10 {
			t.Fatalf("sample out of range: %d", r)
		}
		counts[r]++
	}
	for r := 1; r <= 10; r++ {
		got := float64(counts[r]) / n
		want := z.Prob(r)
		if math.Abs(got-want) > 0.004 {
			t.Errorf("rank %d frequency %v, want %v", r, got, want)
		}
	}
}

func TestZipfProbsCopy(t *testing.T) {
	z := NewZipf(5, 0.5)
	p := z.Probs()
	p[0] = 99
	if z.Prob(1) == 99 {
		t.Error("Probs returned internal slice")
	}
}

func TestZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":          func() { NewZipf(0, 1) },
		"alpha<0":      func() { NewZipf(10, -1) },
		"rank=0":       func() { NewZipf(10, 1).Prob(0) },
		"rank too big": func() { NewZipf(10, 1).Prob(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBoundedParetoRange(t *testing.T) {
	src := rng.New(2)
	p, err := NewBoundedPareto(256e6, 16e9, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		v := p.Sample(src)
		if v < p.Lo || v > p.Hi {
			t.Fatalf("sample %v outside [%v,%v]", v, p.Lo, p.Hi)
		}
	}
}

func TestBoundedParetoMeanEmpirical(t *testing.T) {
	src := rng.New(3)
	p, err := NewBoundedPareto(1, 1000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Sample(src)
	}
	emp := sum / n
	if ana := p.Mean(); math.Abs(emp-ana)/ana > 0.02 {
		t.Errorf("empirical mean %v vs analytic %v", emp, ana)
	}
}

func TestBoundedParetoMeanShapeOne(t *testing.T) {
	src := rng.New(4)
	p, err := NewBoundedPareto(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Sample(src)
	}
	emp := sum / n
	if ana := p.Mean(); math.Abs(emp-ana)/ana > 0.02 {
		t.Errorf("shape=1 empirical mean %v vs analytic %v", emp, ana)
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	// A power law must put most mass near the lower bound.
	src := rng.New(5)
	p, _ := NewBoundedPareto(1, 1000, 1.2)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.Sample(src) < 10 {
			below++
		}
	}
	if frac := float64(below) / n; frac < 0.8 {
		t.Errorf("only %v of samples below 10x the lower bound; power law should be heavily skewed", frac)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	src := rng.New(6)
	p, err := NewBoundedPareto(5, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Sample(src); v != 5 {
		t.Errorf("degenerate sample = %v", v)
	}
	if m := p.Mean(); m != 5 {
		t.Errorf("degenerate mean = %v", m)
	}
}

func TestBoundedParetoErrors(t *testing.T) {
	cases := []struct{ lo, hi, shape float64 }{
		{0, 10, 1},
		{-1, 10, 1},
		{10, 5, 1},
		{1, 10, 0},
		{1, 10, -2},
		{math.NaN(), 10, 1},
	}
	for _, c := range cases {
		if _, err := NewBoundedPareto(c.lo, c.hi, c.shape); err == nil {
			t.Errorf("NewBoundedPareto(%v,%v,%v): want error", c.lo, c.hi, c.shape)
		}
	}
}

func TestBoundedParetoSampleInt(t *testing.T) {
	src := rng.New(7)
	p, _ := NewBoundedPareto(100, 150, 0.8)
	for i := 0; i < 5000; i++ {
		v := p.SampleInt(src)
		if v < 100 || v > 150 {
			t.Fatalf("SampleInt out of range: %d", v)
		}
	}
}

func TestDiscreteMatchesWeights(t *testing.T) {
	src := rng.New(8)
	w := []float64{1, 2, 3, 4}
	d, err := NewDiscrete(w)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		counts[d.Sample(src)]++
	}
	for i := range w {
		got := float64(counts[i]) / n
		want := w[i] / 10
		if math.Abs(got-want) > 0.005 {
			t.Errorf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestDiscreteProbNormalized(t *testing.T) {
	d, err := NewDiscrete([]float64{3, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Prob(0)-0.3) > 1e-12 || d.Prob(1) != 0 || math.Abs(d.Prob(2)-0.7) > 1e-12 {
		t.Errorf("normalized probs wrong: %v %v %v", d.Prob(0), d.Prob(1), d.Prob(2))
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestDiscreteZeroWeightNeverSampled(t *testing.T) {
	src := rng.New(9)
	d, _ := NewDiscrete([]float64{1, 0, 1})
	for i := 0; i < 50000; i++ {
		if d.Sample(src) == 1 {
			t.Fatal("sampled a zero-weight outcome")
		}
	}
}

func TestDiscreteSingleOutcome(t *testing.T) {
	src := rng.New(10)
	d, _ := NewDiscrete([]float64{5})
	for i := 0; i < 100; i++ {
		if d.Sample(src) != 0 {
			t.Fatal("single-outcome sampler returned nonzero index")
		}
	}
}

func TestDiscreteErrors(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := NewDiscrete(w); err == nil {
			t.Errorf("NewDiscrete(%v): want error", w)
		}
	}
}

func TestDiscreteQuickValidIndex(t *testing.T) {
	src := rng.New(11)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		sum := 0.0
		for i, r := range raw {
			w[i] = float64(r)
			sum += w[i]
		}
		if sum == 0 {
			return true
		}
		d, err := NewDiscrete(w)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			idx := d.Sample(src)
			if idx < 0 || idx >= len(w) || w[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPowerLawIntRangeAndSkew(t *testing.T) {
	src := rng.New(12)
	p, err := NewPowerLawInt(100, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	lowHalf := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := p.Sample(src)
		if v < 100 || v > 150 {
			t.Fatalf("sample out of range: %d", v)
		}
		if v <= 125 {
			lowHalf++
		}
	}
	if frac := float64(lowHalf) / n; frac <= 0.5 {
		t.Errorf("power law should favor small values; low-half fraction %v", frac)
	}
}

func TestPowerLawIntUniformShapeZero(t *testing.T) {
	p, err := NewPowerLawInt(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := p.Mean(); math.Abs(m-2.5) > 1e-9 {
		t.Errorf("uniform mean = %v, want 2.5", m)
	}
}

func TestPowerLawIntMeanEmpirical(t *testing.T) {
	src := rng.New(13)
	p, _ := NewPowerLawInt(100, 150, 1.5)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(p.Sample(src))
	}
	emp := sum / n
	if ana := p.Mean(); math.Abs(emp-ana) > 0.2 {
		t.Errorf("empirical mean %v vs analytic %v", emp, ana)
	}
}

func TestPowerLawIntErrors(t *testing.T) {
	for _, c := range []struct{ lo, hi int }{{0, 5}, {-3, 5}, {10, 9}} {
		if _, err := NewPowerLawInt(c.lo, c.hi, 1); err == nil {
			t.Errorf("NewPowerLawInt(%d,%d): want error", c.lo, c.hi)
		}
	}
}

func BenchmarkZipfSample(b *testing.B) {
	src := rng.New(1)
	z := NewZipf(300, 0.3)
	for i := 0; i < b.N; i++ {
		z.Sample(src)
	}
}

func BenchmarkDiscreteSample(b *testing.B) {
	src := rng.New(1)
	w := make([]float64, 300)
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	d, _ := NewDiscrete(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(src)
	}
}
