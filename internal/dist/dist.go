// Package dist implements the probability distributions the paper's
// workload generator needs: Zipf request popularity, bounded power-law
// (Pareto) object sizes and request lengths, and a discrete sampler (Walker
// alias method) for drawing requests by their popularity during simulation.
//
// All samplers draw from an injected *rng.Source so simulations stay
// deterministic and parallel experiment workers can use independent streams.
package dist

import (
	"fmt"
	"math"

	"paralleltape/internal/rng"
)

// Zipf describes the paper's request-popularity model
// P_r = c · r^(-alpha) for rank r = 1..N, where c normalizes the mass to 1.
// alpha = 0 yields the uniform distribution; alpha = 1 the most skewed case
// the paper evaluates.
type Zipf struct {
	N     int
	Alpha float64
	probs []float64 // probs[i] is the probability of rank i+1
	cdf   []float64
}

// NewZipf builds a Zipf distribution over n ranks. It panics if n <= 0 or
// alpha < 0 (the paper only uses alpha in [0,1], larger values are legal).
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("dist: NewZipf with n <= 0")
	}
	if alpha < 0 || math.IsNaN(alpha) {
		panic("dist: NewZipf with negative or NaN alpha")
	}
	z := &Zipf{N: n, Alpha: alpha}
	z.probs = make([]float64, n)
	sum := 0.0
	for r := 1; r <= n; r++ {
		p := math.Pow(float64(r), -alpha)
		z.probs[r-1] = p
		sum += p
	}
	z.cdf = make([]float64, n)
	acc := 0.0
	for i := range z.probs {
		z.probs[i] /= sum
		acc += z.probs[i]
		z.cdf[i] = acc
	}
	z.cdf[n-1] = 1 // guard against float drift
	return z
}

// Prob returns the probability of rank r (1-based).
func (z *Zipf) Prob(r int) float64 {
	if r < 1 || r > z.N {
		panic(fmt.Sprintf("dist: Zipf rank %d out of [1,%d]", r, z.N))
	}
	return z.probs[r-1]
}

// Probs returns a copy of the full probability vector indexed by rank-1.
func (z *Zipf) Probs() []float64 {
	out := make([]float64, len(z.probs))
	copy(out, z.probs)
	return out
}

// Sample draws a rank in [1, N] with probability P_r.
func (z *Zipf) Sample(src *rng.Source) int {
	u := src.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.N-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// BoundedPareto is a power-law distribution truncated to [Lo, Hi] with
// shape parameter Shape > 0. Its density is f(x) ∝ x^(-Shape-1) on the
// interval. The paper states object sizes and request lengths "follow a
// power law distribution within a pre-defined range"; this is the standard
// such distribution.
type BoundedPareto struct {
	Lo, Hi float64
	Shape  float64
}

// NewBoundedPareto validates and returns a bounded Pareto distribution.
func NewBoundedPareto(lo, hi, shape float64) (*BoundedPareto, error) {
	switch {
	case !(lo > 0):
		return nil, fmt.Errorf("dist: bounded Pareto lo must be > 0, got %v", lo)
	case !(hi >= lo):
		return nil, fmt.Errorf("dist: bounded Pareto needs hi >= lo, got [%v,%v]", lo, hi)
	case !(shape > 0):
		return nil, fmt.Errorf("dist: bounded Pareto shape must be > 0, got %v", shape)
	}
	return &BoundedPareto{Lo: lo, Hi: hi, Shape: shape}, nil
}

// Sample draws one variate by inverse-CDF transform.
func (p *BoundedPareto) Sample(src *rng.Source) float64 {
	if p.Hi == p.Lo {
		return p.Lo
	}
	u := src.Float64()
	la := math.Pow(p.Lo, p.Shape)
	ha := math.Pow(p.Hi, p.Shape)
	// Inverse CDF of the truncated Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Shape)
	if x < p.Lo {
		x = p.Lo
	}
	if x > p.Hi {
		x = p.Hi
	}
	return x
}

// Mean returns the analytic mean of the bounded Pareto.
func (p *BoundedPareto) Mean() float64 {
	if p.Hi == p.Lo {
		return p.Lo
	}
	a := p.Shape
	l, h := p.Lo, p.Hi
	if a == 1 {
		// Limit case: mean = ln(h/l) · l·h/(h-l).
		return math.Log(h/l) * l * h / (h - l)
	}
	num := math.Pow(l, a) / (1 - math.Pow(l/h, a))
	return num * a / (a - 1) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// SampleInt draws an integer variate (rounded) clamped to [Lo, Hi].
func (p *BoundedPareto) SampleInt(src *rng.Source) int64 {
	v := int64(math.Round(p.Sample(src)))
	if v < int64(math.Ceil(p.Lo)) {
		v = int64(math.Ceil(p.Lo))
	}
	if v > int64(math.Floor(p.Hi)) {
		v = int64(math.Floor(p.Hi))
	}
	return v
}

// Exponential is the memoryless distribution with the given mean — the
// classic model for times between independent failures and for repair
// durations. The fault injector (internal/faults) uses it for both device
// up-times (mean = MTBF) and default repair times.
type Exponential struct {
	// Mean is the distribution mean, in whatever unit the caller works in
	// (the fault models use simulated seconds). Must be positive.
	Mean float64
}

// NewExponential validates and returns an exponential distribution.
func NewExponential(mean float64) (Exponential, error) {
	if !(mean > 0) || math.IsInf(mean, 0) {
		return Exponential{}, fmt.Errorf("dist: exponential mean must be positive and finite, got %v", mean)
	}
	return Exponential{Mean: mean}, nil
}

// Sample draws one variate: Mean · Exp(1).
func (e Exponential) Sample(src *rng.Source) float64 {
	return e.Mean * src.ExpFloat64()
}

// Discrete is a Walker-alias-method sampler over an arbitrary finite
// probability vector. Building is O(n); sampling is O(1). The simulator
// uses it to draw which of the paper's 300 predefined requests to submit.
type Discrete struct {
	n     int
	prob  []float64 // scaled acceptance probability per bucket
	alias []int
	orig  []float64 // normalized input probabilities
}

// NewDiscrete builds an alias table from weights (need not be normalized).
// It returns an error if weights is empty, contains a negative or non-finite
// value, or sums to zero.
func NewDiscrete(weights []float64) (*Discrete, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("dist: NewDiscrete with no weights")
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: weight[%d] = %v invalid", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("dist: weights sum to zero")
	}
	d := &Discrete{
		n:     n,
		prob:  make([]float64, n),
		alias: make([]int, n),
		orig:  make([]float64, n),
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		d.orig[i] = w / sum
		scaled[i] = d.orig[i] * float64(n)
	}
	var small, large []int
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.prob[s] = scaled[s]
		d.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		d.prob[i] = 1
		d.alias[i] = i
	}
	for _, i := range small {
		d.prob[i] = 1
		d.alias[i] = i
	}
	return d, nil
}

// Sample draws an index in [0, len(weights)) with the normalized
// probability of its weight.
func (d *Discrete) Sample(src *rng.Source) int {
	i := src.Intn(d.n)
	if src.Float64() < d.prob[i] {
		return i
	}
	return d.alias[i]
}

// Prob returns the normalized probability of index i.
func (d *Discrete) Prob(i int) float64 {
	return d.orig[i]
}

// Len returns the number of outcomes.
func (d *Discrete) Len() int { return d.n }

// PowerLawInt samples integers in [lo, hi] with probability ∝ v^(-shape),
// the paper's model for the number of objects per request (range 100–150).
type PowerLawInt struct {
	Lo, Hi int
	d      *Discrete
}

// NewPowerLawInt builds the sampler. shape 0 degenerates to uniform.
func NewPowerLawInt(lo, hi int, shape float64) (*PowerLawInt, error) {
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("dist: PowerLawInt needs 0 < lo <= hi, got [%d,%d]", lo, hi)
	}
	w := make([]float64, hi-lo+1)
	for i := range w {
		w[i] = math.Pow(float64(lo+i), -shape)
	}
	d, err := NewDiscrete(w)
	if err != nil {
		return nil, err
	}
	return &PowerLawInt{Lo: lo, Hi: hi, d: d}, nil
}

// Sample draws one value in [Lo, Hi].
func (p *PowerLawInt) Sample(src *rng.Source) int {
	return p.Lo + p.d.Sample(src)
}

// Mean returns the analytic mean of the sampler.
func (p *PowerLawInt) Mean() float64 {
	m := 0.0
	for i := 0; i < p.d.Len(); i++ {
		m += float64(p.Lo+i) * p.d.Prob(i)
	}
	return m
}
