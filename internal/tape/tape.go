// Package tape models the physical substrate: tape cartridges, the linear
// head-positioning cost model of [Johnson & Miller, VLDB'98], and the
// drive/library timing constants of Table 1 (IBM LTO Gen 3 drives in
// StorageTek L80 libraries).
//
// Positions on a tape are byte offsets from the beginning of tape (BOT).
// The motion model is linear: positioning time is proportional to the
// distance between the head start and end positions; rewind is a (faster)
// linear motion back to BOT; transfer is streaming at the native rate once
// the head sits at the start of an object.
package tape

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"paralleltape/internal/model"
	"paralleltape/internal/units"
)

// Hardware collects the paper's Table 1 configuration plus the derived
// linear motion rates.
type Hardware struct {
	// Robot and drive mechanics (seconds).
	CellToDrive float64 // average robot move between a storage cell and a drive
	LoadThread  float64 // tape load + thread to ready
	Unload      float64 // drive unload/eject
	MaxRewind   float64 // full-tape rewind (98 s); average (half tape) is half of it
	AvgFileSeek float64 // average first-file access time after load (72 s)

	// Data path.
	TransferRate float64 // bytes/second native streaming rate

	// Library geometry.
	Capacity     int64 // bytes per cartridge
	TapesPerLib  int
	DrivesPerLib int
	Libraries    int
}

// DefaultHardware returns Table 1 exactly: LTO-3 drives (80 MB/s native,
// 400 GB cartridges) in L80 libraries (80 cartridges, 8 drives, one robot,
// 7.6 s average cell↔drive move), three libraries.
func DefaultHardware() Hardware {
	return Hardware{
		CellToDrive:  7.6,
		LoadThread:   19,
		Unload:       19,
		MaxRewind:    98,
		AvgFileSeek:  72,
		TransferRate: 80 * 1e6,
		Capacity:     400 * units.GB,
		TapesPerLib:  80,
		DrivesPerLib: 8,
		Libraries:    3,
	}
}

// Validate checks physical plausibility.
func (h Hardware) Validate() error {
	switch {
	case h.CellToDrive < 0 || h.LoadThread < 0 || h.Unload < 0:
		return fmt.Errorf("tape: negative robot/drive timing")
	case h.MaxRewind <= 0:
		return fmt.Errorf("tape: MaxRewind must be positive, got %v", h.MaxRewind)
	case h.AvgFileSeek <= 0:
		return fmt.Errorf("tape: AvgFileSeek must be positive, got %v", h.AvgFileSeek)
	case h.TransferRate <= 0:
		return fmt.Errorf("tape: TransferRate must be positive, got %v", h.TransferRate)
	case h.Capacity <= 0:
		return fmt.Errorf("tape: Capacity must be positive, got %d", h.Capacity)
	case h.TapesPerLib <= 0:
		return fmt.Errorf("tape: TapesPerLib must be positive, got %d", h.TapesPerLib)
	case h.DrivesPerLib <= 0:
		return fmt.Errorf("tape: DrivesPerLib must be positive, got %d", h.DrivesPerLib)
	case h.DrivesPerLib > h.TapesPerLib:
		return fmt.Errorf("tape: more drives (%d) than tapes (%d); the paper assumes d << t",
			h.DrivesPerLib, h.TapesPerLib)
	case h.Libraries <= 0:
		return fmt.Errorf("tape: Libraries must be positive, got %d", h.Libraries)
	}
	return nil
}

// RewindRate returns the rewind speed in bytes/second of tape travelled:
// a full cartridge rewinds in MaxRewind seconds.
func (h Hardware) RewindRate() float64 {
	return float64(h.Capacity) / h.MaxRewind
}

// LocateRate returns the forward/backward locate speed in bytes/second of
// tape travelled. Calibrated from the Table 1 "average file access time
// (first file)" figure: a random first file sits half a tape from BOT on
// average, so locate covers Capacity/2 bytes in AvgFileSeek seconds.
func (h Hardware) LocateRate() float64 {
	return float64(h.Capacity) / 2 / h.AvgFileSeek
}

// SeekTime returns the time to move the head between two byte positions
// (linear positioning model).
func (h Hardware) SeekTime(from, to int64) float64 {
	d := to - from
	if d < 0 {
		d = -d
	}
	return float64(d) / h.LocateRate()
}

// RewindTime returns the time to rewind the head from pos to BOT.
func (h Hardware) RewindTime(pos int64) float64 {
	if pos < 0 {
		pos = 0
	}
	return float64(pos) / h.RewindRate()
}

// TransferTime returns the streaming read time for size bytes.
func (h Hardware) TransferTime(size int64) float64 {
	if size < 0 {
		return 0
	}
	return float64(size) / h.TransferRate
}

// TotalTapes returns the cartridge count of the whole system.
func (h Hardware) TotalTapes() int { return h.TapesPerLib * h.Libraries }

// TotalDrives returns the drive count of the whole system.
func (h Hardware) TotalDrives() int { return h.DrivesPerLib * h.Libraries }

// TotalCapacity returns the raw byte capacity of the whole system.
func (h Hardware) TotalCapacity() int64 {
	return h.Capacity * int64(h.TotalTapes())
}

// Key identifies one cartridge in the system.
type Key struct {
	Library int // 0-based library index
	Index   int // 0-based cartridge index within the library
}

func (k Key) String() string { return fmt.Sprintf("L%d.T%d", k.Library, k.Index) }

// Extent is one object's run of bytes on a cartridge. Objects are written
// contiguously (§3 assumption 3: whole-object sequential access).
type Extent struct {
	Object model.ObjectID
	Start  int64 // byte offset of the first byte from BOT
	Size   int64
}

// End returns the offset one past the extent's last byte.
func (e Extent) End() int64 { return e.Start + e.Size }

// Layout is the ordered content of one cartridge, extents sorted by Start
// with no overlap. The zero value is an empty tape.
type Layout struct {
	key     Key
	extents []Extent
	used    int64
}

// NewLayout returns an empty layout for the cartridge k.
func NewLayout(k Key) *Layout { return &Layout{key: k} }

// NewLayoutWithCapacity returns an empty layout for the cartridge k sized
// for n appends, so callers that know the object count up front (the
// placement builder) avoid the append-growth reallocations.
func NewLayoutWithCapacity(k Key, n int) *Layout {
	return &Layout{key: k, extents: make([]Extent, 0, n)}
}

// Key returns the cartridge identity.
func (l *Layout) Key() Key { return l.key }

// Used returns the number of bytes written.
func (l *Layout) Used() int64 { return l.used }

// Len returns the number of objects on the tape.
func (l *Layout) Len() int { return len(l.extents) }

// Extents returns the extents in tape order. The returned slice is the
// layout's own storage; callers must not modify it.
func (l *Layout) Extents() []Extent { return l.extents }

// Append writes an object at the current end of tape and returns its
// extent. It fails if the object would not fit within capacity.
func (l *Layout) Append(id model.ObjectID, size int64, capacity int64) (Extent, error) {
	if size <= 0 {
		return Extent{}, fmt.Errorf("tape: appending object %d with non-positive size %d", id, size)
	}
	if l.used+size > capacity {
		return Extent{}, fmt.Errorf("tape: object %d (%s) does not fit on %s (%s of %s used)",
			id, units.FormatBytesSI(size), l.key,
			units.FormatBytesSI(l.used), units.FormatBytesSI(capacity))
	}
	e := Extent{Object: id, Start: l.used, Size: size}
	l.extents = append(l.extents, e)
	l.used += size
	return e, nil
}

// Find returns the extent of object id, if present.
func (l *Layout) Find(id model.ObjectID) (Extent, bool) {
	for _, e := range l.extents {
		if e.Object == id {
			return e, true
		}
	}
	return Extent{}, false
}

// Validate checks extent ordering, non-overlap, and capacity.
func (l *Layout) Validate(capacity int64) error {
	var pos int64
	seen := make(map[model.ObjectID]struct{}, len(l.extents))
	for i, e := range l.extents {
		if e.Size <= 0 {
			return fmt.Errorf("tape: %s extent %d has size %d", l.key, i, e.Size)
		}
		if e.Start < pos {
			return fmt.Errorf("tape: %s extent %d overlaps or is out of order", l.key, i)
		}
		if _, dup := seen[e.Object]; dup {
			return fmt.Errorf("tape: %s stores object %d twice", l.key, e.Object)
		}
		seen[e.Object] = struct{}{}
		pos = e.End()
	}
	if pos > capacity {
		return fmt.Errorf("tape: %s uses %d of %d bytes", l.key, pos, capacity)
	}
	if pos != l.used {
		return fmt.Errorf("tape: %s bookkeeping mismatch: used=%d, extents end at %d", l.key, l.used, pos)
	}
	return nil
}

// ReadPlan is a seek-optimal read schedule for a set of extents on one tape.
type ReadPlan struct {
	Order     []Extent // extents in service order
	SeekTotal float64  // seconds of head positioning
	XferTotal float64  // seconds of streaming transfer
	EndPos    int64    // head position after the last transfer
}

// PlanReads computes the minimal-seek order to read the given extents
// starting from head position start. On a linear medium this is the
// classic two-sweep problem: the optimal tour visits all targets on one
// side first, then the other; we evaluate both sweep orders and keep the
// cheaper. Reading an extent moves the head to its end.
//
// Transfers are accounted at the hardware streaming rate; the returned
// totals are what the simulator charges the drive.
func PlanReads(h Hardware, start int64, extents []Extent) ReadPlan {
	if len(extents) == 0 {
		return ReadPlan{EndPos: start}
	}
	sorted := make([]Extent, len(extents))
	copy(sorted, extents)
	// Starts are unique on one tape, so the unstable sort is deterministic.
	slices.SortFunc(sorted, func(a, b Extent) int { return cmp.Compare(a.Start, b.Start) })

	eval := func(order []Extent) ReadPlan {
		pos := start
		var seek, xfer float64
		for _, e := range order {
			seek += h.SeekTime(pos, e.Start)
			xfer += h.TransferTime(e.Size)
			pos = e.End()
		}
		return ReadPlan{Order: order, SeekTotal: seek, XferTotal: xfer, EndPos: pos}
	}

	// Split into extents left of the head and right of (or at) the head.
	// Reads always move the head forward (start → end), so within either
	// group ascending-start order is cheapest: any other order re-traverses
	// extents it has already read past. The only real choice is which side
	// to sweep first.
	var left, right []Extent
	for _, e := range sorted {
		if e.Start < start {
			left = append(left, e)
		} else {
			right = append(right, e)
		}
	}
	// Sweep A: serve the right side ascending, then jump back to the
	// leftmost unserved extent and ascend through the left side.
	orderA := make([]Extent, 0, len(sorted))
	orderA = append(orderA, right...)
	orderA = append(orderA, left...)
	// Sweep B: jump to the leftmost extent first and ascend through
	// everything (identical to plain ascending-start order).
	orderB := make([]Extent, 0, len(sorted))
	orderB = append(orderB, left...)
	orderB = append(orderB, right...)

	planA, planB := eval(orderA), eval(orderB)
	if planA.SeekTotal <= planB.SeekTotal {
		return planA
	}
	return planB
}

// Planner computes read-plan totals with reusable scratch. The simulator
// charges drives only the totals (seek seconds, transfer seconds, final
// head position), so Plan skips materializing the service order PlanReads
// returns — making the per-request hot path allocation-free once the
// scratch buffer has grown to the largest group seen. A Planner is not safe
// for concurrent use; the single-threaded simulation engine owns one.
type Planner struct {
	buf []Extent
}

// Plan returns the same SeekTotal/XferTotal/EndPos as PlanReads(h, start,
// extents) with Order left nil. The input slice is not modified.
func (p *Planner) Plan(h Hardware, start int64, extents []Extent) ReadPlan {
	return p.PlanRates(h.LocateRate(), h.TransferRate, start, extents)
}

// PlanRates is Plan with the two hardware-derived rates already in hand
// (locate must be Hardware.LocateRate and rate the transfer rate, so the
// result is bit-identical to Plan's). Per-event callers use it to avoid
// copying the whole Hardware struct per call.
func (p *Planner) PlanRates(locate, rate float64, start int64, extents []Extent) ReadPlan {
	if len(extents) == 0 {
		return ReadPlan{EndPos: start}
	}
	// The simulator hands Plan extent groups the catalog already ordered by
	// start, so check sortedness first: a sorted input is used in place —
	// Plan never mutates it — skipping both the scratch copy and the sort.
	sorted := extents
	for i := 1; i < len(extents); i++ {
		if extents[i].Start < extents[i-1].Start {
			p.buf = append(p.buf[:0], extents...)
			sorted = p.buf
			slices.SortFunc(sorted, func(a, b Extent) int {
				// Starts are unique on one cartridge, so the order is total.
				if a.Start < b.Start {
					return -1
				}
				if a.Start > b.Start {
					return 1
				}
				return 0
			})
			break
		}
	}
	// split is the first extent at or right of the head; see PlanReads for
	// the two-sweep argument.
	split := sort.Search(len(sorted), func(i int) bool { return sorted[i].Start >= start })
	planA := evalSweep(locate, rate, start, sorted[split:], sorted[:split]) // right side first
	planB := evalSweep(locate, rate, start, sorted[:split], sorted[split:]) // leftmost first
	if planA.SeekTotal <= planB.SeekTotal {
		return planA
	}
	return planB
}

// evalSweep accumulates the cost of serving seg1 then seg2 in order,
// mirroring PlanReads' eval loop exactly (same accumulation order and the
// same divisors — locate must be Hardware.LocateRate and rate the transfer
// rate — so the floating-point results are bit-identical). The rates come
// in as scalars: SeekTime and TransferTime are value methods on the
// many-field Hardware struct, and calling them per extent (or passing the
// struct per sweep) copies the whole struct on the simulator's hottest path.
func evalSweep(locate, rate float64, start int64, seg1, seg2 []Extent) ReadPlan {
	pos := start
	var seek, xfer float64
	for i := range seg1 {
		e := &seg1[i]
		d := e.Start - pos
		if d < 0 {
			d = -d
		}
		seek += float64(d) / locate
		if e.Size >= 0 {
			xfer += float64(e.Size) / rate
		}
		pos = e.End()
	}
	for i := range seg2 {
		e := &seg2[i]
		d := e.Start - pos
		if d < 0 {
			d = -d
		}
		seek += float64(d) / locate
		if e.Size >= 0 {
			xfer += float64(e.Size) / rate
		}
		pos = e.End()
	}
	return ReadPlan{SeekTotal: seek, XferTotal: xfer, EndPos: pos}
}

// SwitchCost returns the fixed (position-independent) portion of one tape
// switch: unload + robot stow + robot fetch + load/thread. The rewind
// portion depends on head position and is charged separately.
func (h Hardware) SwitchCost() float64 {
	return h.Unload + 2*h.CellToDrive + h.LoadThread
}

// AverageSwitchTime returns the paper-style expected full switch cost
// assuming an average (half-tape) rewind. Useful for back-of-envelope
// reporting, not used by the simulator itself.
func (h Hardware) AverageSwitchTime() float64 {
	return h.MaxRewind/2 + h.SwitchCost()
}

// MaxObjectSize returns the largest object this hardware can store.
func (h Hardware) MaxObjectSize() int64 { return h.Capacity }

// FormatSummary renders the hardware configuration as the Table 1 block.
func (h Hardware) FormatSummary() string {
	return fmt.Sprintf(
		"Average cell to drive time          %ss\n"+
			"Tape load and thread to ready       %ss\n"+
			"Data transfer rate, native          %s\n"+
			"Maximum/average rewind time         %s/%ss\n"+
			"Unload time                         %ss\n"+
			"Average file access time (1st file) %ss\n"+
			"Number of tapes per library         %d\n"+
			"Tape capacity                       %s\n"+
			"Tape drives per library             %d\n"+
			"Number of tape libraries            %d\n",
		trimFloat(h.CellToDrive), trimFloat(h.LoadThread), units.FormatRate(h.TransferRate),
		trimFloat(h.MaxRewind), trimFloat(h.MaxRewind/2), trimFloat(h.Unload),
		trimFloat(h.AvgFileSeek), h.TapesPerLib, units.FormatBytesSI(h.Capacity),
		h.DrivesPerLib, h.Libraries)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}
