package tape

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"paralleltape/internal/model"
	"paralleltape/internal/rng"
	"paralleltape/internal/units"
)

func TestDefaultHardwareMatchesTable1(t *testing.T) {
	h := DefaultHardware()
	if err := h.Validate(); err != nil {
		t.Fatalf("default hardware invalid: %v", err)
	}
	if h.CellToDrive != 7.6 || h.LoadThread != 19 || h.Unload != 19 {
		t.Errorf("robot/drive timings: %+v", h)
	}
	if h.TransferRate != 80e6 {
		t.Errorf("TransferRate = %v", h.TransferRate)
	}
	if h.MaxRewind != 98 || h.AvgFileSeek != 72 {
		t.Errorf("motion timings: %+v", h)
	}
	if h.Capacity != 400*units.GB || h.TapesPerLib != 80 || h.DrivesPerLib != 8 || h.Libraries != 3 {
		t.Errorf("geometry: %+v", h)
	}
}

func TestHardwareTotals(t *testing.T) {
	h := DefaultHardware()
	if h.TotalTapes() != 240 {
		t.Errorf("TotalTapes = %d", h.TotalTapes())
	}
	if h.TotalDrives() != 24 {
		t.Errorf("TotalDrives = %d", h.TotalDrives())
	}
	if h.TotalCapacity() != 96*units.TB {
		t.Errorf("TotalCapacity = %d", h.TotalCapacity())
	}
}

func TestHardwareValidateRejections(t *testing.T) {
	mutations := map[string]func(*Hardware){
		"negative robot": func(h *Hardware) { h.CellToDrive = -1 },
		"zero rewind":    func(h *Hardware) { h.MaxRewind = 0 },
		"zero seek":      func(h *Hardware) { h.AvgFileSeek = 0 },
		"zero rate":      func(h *Hardware) { h.TransferRate = 0 },
		"zero capacity":  func(h *Hardware) { h.Capacity = 0 },
		"zero tapes":     func(h *Hardware) { h.TapesPerLib = 0 },
		"zero drives":    func(h *Hardware) { h.DrivesPerLib = 0 },
		"drives > tapes": func(h *Hardware) { h.DrivesPerLib = h.TapesPerLib + 1 },
		"zero libraries": func(h *Hardware) { h.Libraries = 0 },
	}
	for name, mutate := range mutations {
		h := DefaultHardware()
		mutate(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestMotionModelCalibration(t *testing.T) {
	h := DefaultHardware()
	// Full-tape rewind takes exactly MaxRewind.
	if got := h.RewindTime(h.Capacity); math.Abs(got-98) > 1e-9 {
		t.Errorf("full rewind = %v, want 98", got)
	}
	// Half-tape rewind is the Table 1 average 49 s.
	if got := h.RewindTime(h.Capacity / 2); math.Abs(got-49) > 1e-9 {
		t.Errorf("half rewind = %v, want 49", got)
	}
	// Locate to a half-tape-away file takes the Table 1 average 72 s.
	if got := h.SeekTime(0, h.Capacity/2); math.Abs(got-72) > 1e-9 {
		t.Errorf("half-tape seek = %v, want 72", got)
	}
	// Seek is symmetric.
	if f, b := h.SeekTime(0, 1e9), h.SeekTime(1e9, 0); f != b {
		t.Errorf("seek asymmetric: %v vs %v", f, b)
	}
	// Transfer of 80 MB takes 1 s.
	if got := h.TransferTime(80 * units.MB); math.Abs(got-1) > 1e-9 {
		t.Errorf("80 MB transfer = %v, want 1s", got)
	}
	if h.TransferTime(-5) != 0 {
		t.Error("negative size transfer should be 0")
	}
	if h.RewindTime(-5) != 0 {
		t.Error("negative position rewind should be 0")
	}
}

func TestSwitchCost(t *testing.T) {
	h := DefaultHardware()
	// unload 19 + 2*7.6 robot + 19 load/thread = 53.2
	if got := h.SwitchCost(); math.Abs(got-53.2) > 1e-9 {
		t.Errorf("SwitchCost = %v, want 53.2", got)
	}
	if got := h.AverageSwitchTime(); math.Abs(got-(49+53.2)) > 1e-9 {
		t.Errorf("AverageSwitchTime = %v, want 102.2", got)
	}
}

func TestLayoutAppendAndFind(t *testing.T) {
	h := DefaultHardware()
	l := NewLayout(Key{Library: 1, Index: 5})
	e1, err := l.Append(10, 1000, h.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Start != 0 || e1.Size != 1000 || e1.End() != 1000 {
		t.Errorf("first extent: %+v", e1)
	}
	e2, err := l.Append(20, 500, h.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Start != 1000 {
		t.Errorf("second extent start = %d", e2.Start)
	}
	if l.Used() != 1500 || l.Len() != 2 {
		t.Errorf("Used=%d Len=%d", l.Used(), l.Len())
	}
	got, ok := l.Find(20)
	if !ok || got != e2 {
		t.Errorf("Find(20) = %+v, %v", got, ok)
	}
	if _, ok := l.Find(99); ok {
		t.Error("Find(99) found a missing object")
	}
	if err := l.Validate(h.Capacity); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if l.Key() != (Key{Library: 1, Index: 5}) {
		t.Errorf("Key = %v", l.Key())
	}
}

func TestLayoutCapacityEnforced(t *testing.T) {
	l := NewLayout(Key{})
	if _, err := l.Append(1, 300, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(2, 800, 1000); err == nil {
		t.Error("overfull append accepted")
	}
	// Failed append must not corrupt state.
	if l.Used() != 300 || l.Len() != 1 {
		t.Errorf("state after failed append: Used=%d Len=%d", l.Used(), l.Len())
	}
	if _, err := l.Append(3, 700, 1000); err != nil {
		t.Errorf("exact-fit append rejected: %v", err)
	}
}

func TestLayoutAppendRejectsBadSize(t *testing.T) {
	l := NewLayout(Key{})
	if _, err := l.Append(1, 0, 100); err == nil {
		t.Error("zero-size append accepted")
	}
	if _, err := l.Append(1, -10, 100); err == nil {
		t.Error("negative-size append accepted")
	}
}

func TestKeyString(t *testing.T) {
	if got := (Key{Library: 2, Index: 17}).String(); got != "L2.T17" {
		t.Errorf("Key.String = %q", got)
	}
}

func TestPlanReadsEmpty(t *testing.T) {
	h := DefaultHardware()
	p := PlanReads(h, 123, nil)
	if p.SeekTotal != 0 || p.XferTotal != 0 || p.EndPos != 123 || len(p.Order) != 0 {
		t.Errorf("empty plan: %+v", p)
	}
}

func TestPlanReadsSingle(t *testing.T) {
	h := DefaultHardware()
	e := Extent{Object: 1, Start: 1e9, Size: 8e8}
	p := PlanReads(h, 0, []Extent{e})
	if len(p.Order) != 1 || p.Order[0] != e {
		t.Fatalf("order: %+v", p.Order)
	}
	wantSeek := h.SeekTime(0, 1e9)
	if math.Abs(p.SeekTotal-wantSeek) > 1e-9 {
		t.Errorf("seek = %v, want %v", p.SeekTotal, wantSeek)
	}
	wantXfer := h.TransferTime(8e8)
	if math.Abs(p.XferTotal-wantXfer) > 1e-9 {
		t.Errorf("xfer = %v, want %v", p.XferTotal, wantXfer)
	}
	if p.EndPos != e.End() {
		t.Errorf("EndPos = %d, want %d", p.EndPos, e.End())
	}
}

func TestPlanReadsAscendingWhenHeadAtBOT(t *testing.T) {
	h := DefaultHardware()
	exts := []Extent{
		{Object: 3, Start: 3e9, Size: 1e8},
		{Object: 1, Start: 1e9, Size: 1e8},
		{Object: 2, Start: 2e9, Size: 1e8},
	}
	p := PlanReads(h, 0, exts)
	for i := 1; i < len(p.Order); i++ {
		if p.Order[i].Start < p.Order[i-1].Start {
			t.Fatalf("head at BOT should sweep forward: %+v", p.Order)
		}
	}
}

func TestPlanReadsPicksCheaperSweep(t *testing.T) {
	h := DefaultHardware()
	// Head in the middle; one extent slightly left, one far right. Optimal:
	// grab the near-left extent first, then the right one (sweep-left-first).
	left := Extent{Object: 1, Start: 10e9 - 2e8, Size: 1e8}
	right := Extent{Object: 2, Start: 30e9, Size: 1e8}
	p := PlanReads(h, 10e9, []Extent{left, right})
	if p.Order[0].Object != 1 {
		t.Errorf("expected near-left extent first, got %+v", p.Order)
	}
	// And the total seek must not exceed the naive ascending order's cost.
	naive := h.SeekTime(10e9, left.Start) + h.SeekTime(left.End(), right.Start)
	if p.SeekTotal > naive+1e-9 {
		t.Errorf("plan seek %v worse than naive %v", p.SeekTotal, naive)
	}
}

func TestPlanReadsServesAllExactlyOnce(t *testing.T) {
	h := DefaultHardware()
	src := rng.New(5)
	f := func(startRaw uint32, sizes []uint8) bool {
		var exts []Extent
		pos := int64(0)
		for i, s := range sizes {
			size := int64(s)%100 + 1
			gap := int64(i%7) * 1e6
			exts = append(exts, Extent{Object: model.ObjectID(i), Start: pos + gap, Size: size * 1e6})
			pos += gap + size*1e6
		}
		start := int64(startRaw) % (pos + 1)
		// Shuffle input order; plan must not depend on it.
		src.Shuffle(len(exts), func(i, j int) { exts[i], exts[j] = exts[j], exts[i] })
		p := PlanReads(h, start, exts)
		if len(p.Order) != len(exts) {
			return false
		}
		seen := map[model.ObjectID]bool{}
		for _, e := range p.Order {
			if seen[e.Object] {
				return false
			}
			seen[e.Object] = true
		}
		return len(seen) == len(exts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPlanReadsSeekNeverWorseThanSortedOrder(t *testing.T) {
	h := DefaultHardware()
	f := func(startRaw uint32, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var exts []Extent
		pos := int64(0)
		for i, r := range raw {
			size := int64(r)%1000 + 1
			exts = append(exts, Extent{Object: model.ObjectID(i), Start: pos, Size: size * 1e6})
			pos += size * 1e6
		}
		start := int64(startRaw) % (pos + 1)
		p := PlanReads(h, start, exts)
		// Cost of naive ascending-start order.
		sorted := make([]Extent, len(exts))
		copy(sorted, exts)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		cur := start
		naive := 0.0
		for _, e := range sorted {
			naive += h.SeekTime(cur, e.Start)
			cur = e.End()
		}
		return p.SeekTotal <= naive+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	l := NewLayout(Key{})
	l.extents = []Extent{{Object: 1, Start: 0, Size: 100}, {Object: 2, Start: 50, Size: 100}}
	l.used = 150
	if err := l.Validate(1000); err == nil {
		t.Error("overlapping extents accepted")
	}
	l2 := NewLayout(Key{})
	l2.extents = []Extent{{Object: 1, Start: 0, Size: 100}, {Object: 1, Start: 100, Size: 100}}
	l2.used = 200
	if err := l2.Validate(1000); err == nil {
		t.Error("duplicate object accepted")
	}
	l3 := NewLayout(Key{})
	l3.extents = []Extent{{Object: 1, Start: 0, Size: 100}}
	l3.used = 999
	if err := l3.Validate(1000); err == nil {
		t.Error("bookkeeping mismatch accepted")
	}
}

func TestFormatSummaryMentionsKeyNumbers(t *testing.T) {
	s := DefaultHardware().FormatSummary()
	for _, frag := range []string{"7.6", "19", "80.00 MB/s", "98", "400.00 GB", "80", "8", "3"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}
