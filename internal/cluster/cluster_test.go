package cluster

import (
	"math"
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/rng"
	"paralleltape/internal/workload"
)

// wl builds a workload from explicit request memberships; all objects have
// size 10 unless resized by tests. Probabilities are normalized.
func wl(numObjects int, reqs ...[]model.ObjectID) *model.Workload {
	return wlWeighted(numObjects, nil, reqs...)
}

func wlWeighted(numObjects int, weights []float64, reqs ...[]model.ObjectID) *model.Workload {
	w := &model.Workload{}
	for i := 0; i < numObjects; i++ {
		w.Objects = append(w.Objects, model.Object{ID: model.ObjectID(i), Size: 10})
	}
	total := 0.0
	for i := range reqs {
		p := 1.0
		if weights != nil {
			p = weights[i]
		}
		total += p
		w.Requests = append(w.Requests, model.Request{ID: model.RequestID(i), Prob: p, Objects: reqs[i]})
	}
	for i := range w.Requests {
		w.Requests[i].Prob /= total
	}
	return w
}

func objectsOf(c Cluster) map[model.ObjectID]bool {
	m := map[model.ObjectID]bool{}
	for _, id := range c.Objects {
		m[id] = true
	}
	return m
}

func TestSingleRequestFormsOneCluster(t *testing.T) {
	w := wl(5, []model.ObjectID{0, 1, 2}, []model.ObjectID{3, 4})
	res, err := Run(w, Config{Threshold: 0.01, Linkage: Average})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(w); err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %+v", res.Clusters)
	}
	a := objectsOf(res.Clusters[0])
	b := objectsOf(res.Clusters[1])
	if len(a)+len(b) != 5 {
		t.Errorf("cluster sizes %d + %d", len(a), len(b))
	}
	// {0,1,2} must be together; {3,4} must be together.
	if !(a[0] && a[1] && a[2]) && !(b[0] && b[1] && b[2]) {
		t.Errorf("request 0's objects split: %v %v", a, b)
	}
}

func TestThresholdCutsWeakRelations(t *testing.T) {
	// Request 0 (hot) covers {0,1}; request 1 (cold) covers {1,2}.
	// With a threshold between the two probabilities, only the hot pair
	// merges.
	w := wlWeighted(3, []float64{0.9, 0.1},
		[]model.ObjectID{0, 1}, []model.ObjectID{1, 2})
	res, err := Run(w, Config{Threshold: 0.5, Linkage: Average})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("want 2 clusters, got %+v", res.Clusters)
	}
	hot := objectsOf(res.Clusters[0])
	if !(hot[0] && hot[1]) || hot[2] {
		t.Errorf("hot cluster = %v, want {0,1}", hot)
	}
}

func TestLowThresholdMergesChain(t *testing.T) {
	// Two requests sharing object 1 chain everything together when the
	// threshold is below both request probabilities (single linkage).
	w := wl(3, []model.ObjectID{0, 1}, []model.ObjectID{1, 2})
	res, err := Run(w, Config{Threshold: 0.01, Linkage: Single})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || len(res.Clusters[0].Objects) != 3 {
		t.Fatalf("single linkage should chain: %+v", res.Clusters)
	}
}

func TestCompleteLinkageRefusesChain(t *testing.T) {
	// Objects 0 and 2 never co-occur, so complete linkage (min pair sim)
	// cannot merge {0,1} with {2}: the 0–2 pair has similarity 0.
	w := wl(3, []model.ObjectID{0, 1}, []model.ObjectID{1, 2})
	res, err := Run(w, Config{Threshold: 0.01, Linkage: Complete})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("complete linkage chained anyway: %+v", res.Clusters)
	}
}

func TestUnreferencedSeparated(t *testing.T) {
	w := wl(6, []model.ObjectID{0, 1})
	res, err := Run(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unreferenced) != 4 {
		t.Errorf("Unreferenced = %v", res.Unreferenced)
	}
	if err := res.Validate(w); err != nil {
		t.Error(err)
	}
}

func TestClusterProbIsRequestUnionProb(t *testing.T) {
	// Cluster {0,1,2} is touched by requests 0 and 1 (prob 0.6+0.3);
	// request 2 (prob 0.1) touches only object 3.
	w := wlWeighted(4, []float64{0.6, 0.3, 0.1},
		[]model.ObjectID{0, 1}, []model.ObjectID{1, 2}, []model.ObjectID{3})
	res, err := Run(w, Config{Threshold: 0.01, Linkage: Single})
	if err != nil {
		t.Fatal(err)
	}
	var big *Cluster
	for i := range res.Clusters {
		if len(res.Clusters[i].Objects) == 3 {
			big = &res.Clusters[i]
		}
	}
	if big == nil {
		t.Fatalf("no merged cluster: %+v", res.Clusters)
	}
	if math.Abs(big.Prob-0.9) > 1e-9 {
		t.Errorf("cluster prob = %v, want 0.9", big.Prob)
	}
}

func TestMaxObjectsCap(t *testing.T) {
	w := wl(4, []model.ObjectID{0, 1, 2, 3})
	res, err := Run(w, Config{Threshold: 0.01, Linkage: Average, MaxObjects: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if len(c.Objects) > 2 {
			t.Errorf("cluster exceeds MaxObjects: %+v", c)
		}
	}
}

func TestMaxBytesCap(t *testing.T) {
	w := wl(4, []model.ObjectID{0, 1, 2, 3}) // each object 10 bytes
	res, err := Run(w, Config{Threshold: 0.01, Linkage: Average, MaxBytes: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if c.Bytes > 25 {
			t.Errorf("cluster exceeds MaxBytes: %+v", c)
		}
	}
	if err := res.Validate(w); err != nil {
		t.Error(err)
	}
}

func TestAtomCollapse(t *testing.T) {
	// Objects 0..3 all belong to exactly requests {0,1}: one atom. The
	// result must still report them as one cluster at low threshold.
	w := wl(4, []model.ObjectID{0, 1, 2, 3}, []model.ObjectID{0, 1, 2, 3})
	atoms, unref := buildAtoms(w)
	if len(atoms) != 1 {
		t.Fatalf("atoms = %d, want 1", len(atoms))
	}
	if len(unref) != 0 {
		t.Errorf("unref = %v", unref)
	}
	if len(atoms[0].objects) != 4 || atoms[0].bytes != 40 {
		t.Errorf("atom = %+v", atoms[0])
	}
}

func TestAtomsSplitBySignature(t *testing.T) {
	// 0,1 in request 0 only; 2 in both; 3 in request 1 only → 3 atoms.
	w := wl(4, []model.ObjectID{0, 1, 2}, []model.ObjectID{2, 3})
	atoms, _ := buildAtoms(w)
	if len(atoms) != 3 {
		t.Fatalf("atoms = %+v", atoms)
	}
}

func TestBuildEdgesSimilarity(t *testing.T) {
	// Atoms: A={0,1} (req 0), B={2} (reqs 0,1), C={3} (req 1).
	// s(A,B)=P0, s(B,C)=P1, s(A,C)=0 (no shared request).
	w := wlWeighted(4, []float64{0.7, 0.3},
		[]model.ObjectID{0, 1, 2}, []model.ObjectID{2, 3})
	atoms, _ := buildAtoms(w)
	edges := buildEdges(w, atoms)
	if len(edges) != 2 {
		t.Fatalf("edges = %+v", edges)
	}
	sims := map[float64]bool{}
	for _, e := range edges {
		sims[math.Round(e.sim*1e9)/1e9] = true
	}
	if !sims[0.7] || !sims[0.3] {
		t.Errorf("edge sims = %+v", edges)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	w := wl(2, []model.ObjectID{0, 1})
	if _, err := Run(w, Config{Threshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Run(w, Config{Threshold: 0.1, Linkage: Linkage(9)}); err == nil {
		t.Error("bad linkage accepted")
	}
}

func TestLinkageString(t *testing.T) {
	if Average.String() != "average" || Single.String() != "single" || Complete.String() != "complete" {
		t.Error("linkage names wrong")
	}
	if Linkage(9).String() == "" {
		t.Error("unknown linkage has empty name")
	}
}

func TestSummarize(t *testing.T) {
	w := wl(5, []model.ObjectID{0, 1, 2}, []model.ObjectID{3})
	res, err := Run(w, Config{Threshold: 0.01, Linkage: Average})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summarize()
	if s.NumClusters != 2 {
		t.Errorf("NumClusters = %d", s.NumClusters)
	}
	if s.NumSingletons != 1 {
		t.Errorf("NumSingletons = %d", s.NumSingletons)
	}
	if s.MaxObjects != 3 {
		t.Errorf("MaxObjects = %d", s.MaxObjects)
	}
	if s.Unreferenced != 1 {
		t.Errorf("Unreferenced = %d", s.Unreferenced)
	}
	if s.TotalBytes != 40 {
		t.Errorf("TotalBytes = %d", s.TotalBytes)
	}
}

func TestValidateCatchesCorruptResult(t *testing.T) {
	w := wl(3, []model.ObjectID{0, 1, 2})
	res, _ := Run(w, DefaultConfig())
	res.Clusters[0].Objects[0] = res.Clusters[0].Objects[1] // duplicate
	if err := res.Validate(w); err == nil {
		t.Error("duplicate object accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := workload.Defaults()
	p.NumObjects = 3000
	p.NumRequests = 60
	p.MinReqLen = 20
	p.MaxReqLen = 30
	w, err := workload.Generate(p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(w, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		ca, cb := a.Clusters[i], b.Clusters[i]
		if len(ca.Objects) != len(cb.Objects) || ca.Bytes != cb.Bytes || ca.Prob != cb.Prob {
			t.Fatalf("cluster %d differs: %+v vs %+v", i, ca, cb)
		}
		for j := range ca.Objects {
			if ca.Objects[j] != cb.Objects[j] {
				t.Fatalf("cluster %d member %d differs", i, j)
			}
		}
	}
}

func TestGeneratedWorkloadClusterQuality(t *testing.T) {
	// On a paper-shaped workload, hot requests should cohere: the hottest
	// request's exclusive objects must land in a single cluster.
	p := workload.Defaults()
	p.NumObjects = 5000
	p.NumRequests = 50
	p.MinReqLen = 30
	p.MaxReqLen = 40
	p.Alpha = 0.5
	w, err := workload.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(w); err != nil {
		t.Fatal(err)
	}
	// Locate clusters containing each of request 0's objects; objects of
	// the same request should concentrate in very few clusters.
	clusterOf := map[model.ObjectID]int{}
	for i, c := range res.Clusters {
		for _, id := range c.Objects {
			clusterOf[id] = i
		}
	}
	distinct := map[int]bool{}
	for _, id := range w.Requests[0].Objects {
		distinct[clusterOf[id]] = true
	}
	if len(distinct) > 3 {
		t.Errorf("hottest request scattered across %d clusters", len(distinct))
	}
}

func BenchmarkClusterPaperScale(b *testing.B) {
	w, err := workload.Generate(workload.Defaults(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(w, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
