package cluster

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/rng"
	"paralleltape/internal/workload"
)

// This file pins the CSR/scratch rewrite of the clustering pipeline to the
// original map-based implementation, kept here verbatim as referenceRun.
// The contract is bit-identity — every float64 in the result compared by
// its bit pattern — across all linkages, cap settings, and edge-aggregation
// worker counts.

// referenceRun is the pre-rewrite Run: map-grouped atoms, a
// map[int64]float64 edge accumulator, and map[int]linkInfo neighbor sets.
func referenceRun(w *model.Workload, cfg Config) (*Result, error) {
	if cfg.Threshold < 0 || math.IsNaN(cfg.Threshold) {
		return nil, fmt.Errorf("cluster: threshold must be non-negative, got %v", cfg.Threshold)
	}
	if cfg.Threshold == 0 {
		minProb := math.Inf(1)
		for i := range w.Requests {
			if p := w.Requests[i].Prob; p > 0 && p < minProb {
				minProb = p
			}
		}
		if math.IsInf(minProb, 1) {
			minProb = 1
		}
		cfg.Threshold = 0.9 * minProb
	}
	atoms, unreferenced := refBuildAtoms(w)
	atoms = refSplitAtoms(w, atoms, cfg)
	merged := refAgglomerate(w, atoms, cfg)
	res := &Result{Clusters: merged, Unreferenced: unreferenced}
	sort.Slice(res.Clusters, func(i, j int) bool {
		a, b := &res.Clusters[i], &res.Clusters[j]
		if a.Prob != b.Prob {
			return a.Prob > b.Prob
		}
		return a.Objects[0] < b.Objects[0]
	})
	return res, nil
}

func refBuildAtoms(w *model.Workload) ([]atom, []model.ObjectID) {
	byObject := w.RequestsByObject()
	sigKey := func(reqs []model.RequestID) string {
		b := make([]byte, 0, len(reqs)*4)
		for _, r := range reqs {
			b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		}
		return string(b)
	}
	var unreferenced []model.ObjectID
	groups := make(map[string]*atom)
	var order []string
	for i := range w.Objects {
		id := model.ObjectID(i)
		reqs := byObject[i]
		if len(reqs) == 0 {
			unreferenced = append(unreferenced, id)
			continue
		}
		k := sigKey(reqs)
		a := groups[k]
		if a == nil {
			a = &atom{reqs: reqs}
			groups[k] = a
			order = append(order, k)
		}
		a.objects = append(a.objects, id)
		a.bytes += w.Objects[i].Size
	}
	atoms := make([]atom, 0, len(order))
	for _, k := range order {
		atoms = append(atoms, *groups[k])
	}
	return atoms, unreferenced
}

func refSplitAtoms(w *model.Workload, atoms []atom, cfg Config) []atom {
	if cfg.MaxObjects <= 0 && cfg.MaxBytes <= 0 {
		return atoms
	}
	var out []atom
	for _, a := range atoms {
		cur := atom{reqs: a.reqs}
		flush := func() {
			if len(cur.objects) > 0 {
				out = append(out, cur)
				cur = atom{reqs: a.reqs}
			}
		}
		for _, id := range a.objects {
			size := w.Objects[id].Size
			overObjects := cfg.MaxObjects > 0 && len(cur.objects)+1 > cfg.MaxObjects
			overBytes := cfg.MaxBytes > 0 && len(cur.objects) > 0 && cur.bytes+size > cfg.MaxBytes
			if overObjects || overBytes {
				flush()
			}
			cur.objects = append(cur.objects, id)
			cur.bytes += size
		}
		flush()
	}
	return out
}

func refBuildEdges(w *model.Workload, atoms []atom) []pairEdge {
	atomsByReq := make([][]int32, len(w.Requests))
	for ai := range atoms {
		for _, r := range atoms[ai].reqs {
			atomsByReq[r] = append(atomsByReq[r], int32(ai))
		}
	}
	acc := make(map[int64]float64)
	for ri := range w.Requests {
		p := w.Requests[ri].Prob
		members := atomsByReq[ri]
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				acc[int64(a)<<32|int64(b)] += p
			}
		}
	}
	edges := make([]pairEdge, 0, len(acc))
	for k, s := range acc {
		edges = append(edges, pairEdge{a: int(k >> 32), b: int(k & 0xFFFFFFFF), sim: s})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	return edges
}

// refLiveCluster mirrors the old map-based liveCluster.
type refLiveCluster struct {
	alive     bool
	version   int32
	atoms     []int
	objects   int64
	bytes     int64
	reqBits   []uint64
	cohesion  float64
	neighbors map[int]linkInfo
}

// refCandidate and refCandHeap are the pre-rewrite heap kept verbatim: a
// binary max-heap with swap-based sifting and separate (a, b) tie fields.
// The production heap is 4-ary with a packed pair key; sharing a heap here
// would let a heap-order bug cancel out of the comparison, and keeping the
// original also pins the argument that heap shape cannot affect the merge
// sequence (equal-keyed candidates are interchangeable).
type refCandidate struct {
	sim        float64
	a, b       int32
	verA, verB int32
}

type refCandHeap []refCandidate

func refCandLess(x, y refCandidate) bool {
	if x.sim != y.sim {
		return x.sim > y.sim
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

func (h *refCandHeap) push(c refCandidate) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !refCandLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *refCandHeap) pop() refCandidate {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && refCandLess(s[l], s[best]) {
			best = l
		}
		if r < n && refCandLess(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

func refAgglomerate(w *model.Workload, atoms []atom, cfg Config) []Cluster {
	nReq := len(w.Requests)
	words := (nReq + 63) / 64
	edges := refBuildEdges(w, atoms)
	degree := make([]int, len(atoms))
	for _, e := range edges {
		degree[e.a]++
		degree[e.b]++
	}
	arena := make([]refLiveCluster, len(atoms))
	bits := make([]uint64, words*len(atoms))
	clusters := make([]*refLiveCluster, len(atoms))
	for i, a := range atoms {
		c := &arena[i]
		*c = refLiveCluster{
			alive:     true,
			atoms:     []int{i},
			objects:   int64(len(a.objects)),
			bytes:     a.bytes,
			reqBits:   bits[i*words : (i+1)*words : (i+1)*words],
			cohesion:  math.Inf(1),
			neighbors: make(map[int]linkInfo, degree[i]),
		}
		for _, r := range a.reqs {
			c.reqBits[int(r)/64] |= 1 << (uint(r) % 64)
		}
		clusters[i] = c
	}

	parent := make([]int, len(atoms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	h := make(refCandHeap, 0, len(edges))
	push := func(a, b int) {
		if a == b {
			return
		}
		ca, cb := clusters[a], clusters[b]
		li, ok := ca.neighbors[b]
		if !ok {
			return
		}
		sim := li.value(cfg.Linkage, ca.objects, cb.objects)
		if sim < cfg.Threshold {
			return
		}
		if cfg.MaxObjects > 0 && ca.objects+cb.objects > int64(cfg.MaxObjects) {
			return
		}
		if cfg.MaxBytes > 0 && ca.bytes+cb.bytes > cfg.MaxBytes {
			return
		}
		h.push(refCandidate{sim: sim, a: int32(a), b: int32(b), verA: ca.version, verB: cb.version})
	}

	for _, e := range edges {
		ca, cb := clusters[e.a], clusters[e.b]
		li := linkInfo{
			sumSim: e.sim * float64(ca.objects*cb.objects),
			minSim: e.sim,
			maxSim: e.sim,
			pairs:  ca.objects * cb.objects,
		}
		ca.neighbors[e.b] = li
		cb.neighbors[e.a] = li
		push(e.a, e.b)
	}

	var keys []int
	for len(h) > 0 {
		c := h.pop()
		a, b := find(int(c.a)), find(int(c.b))
		if a == b {
			continue
		}
		ca, cb := clusters[a], clusters[b]
		if a != int(c.a) || b != int(c.b) || ca.version != c.verA || cb.version != c.verB {
			if a > b {
				a, b = b, a
			}
			push(a, b)
			continue
		}
		if len(cb.neighbors) > len(ca.neighbors) {
			a, b = b, a
			ca, cb = cb, ca
		}
		parent[b] = a
		ca.version++
		ca.atoms = append(ca.atoms, cb.atoms...)
		ca.objects += cb.objects
		ca.bytes += cb.bytes
		for wi := range ca.reqBits {
			ca.reqBits[wi] |= cb.reqBits[wi]
		}
		ca.cohesion = c.sim
		cb.alive = false
		delete(ca.neighbors, b)
		delete(cb.neighbors, a)
		keys = keys[:0]
		for k := range cb.neighbors {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			li := cb.neighbors[k]
			if prev, ok := ca.neighbors[k]; ok {
				li = mergeLink(prev, li)
			}
			ca.neighbors[k] = li
			delete(clusters[k].neighbors, b)
			clusters[k].neighbors[a] = li
			if clusters[k].alive {
				if a < k {
					push(a, k)
				} else {
					push(k, a)
				}
			}
		}
		cb.neighbors = nil
	}

	var out []Cluster
	for _, c := range clusters {
		if !c.alive {
			continue
		}
		cl := Cluster{Bytes: c.bytes, Cohesion: c.cohesion,
			Objects: make([]model.ObjectID, 0, c.objects)}
		for _, ai := range c.atoms {
			cl.Objects = append(cl.Objects, atoms[ai].objects...)
		}
		sort.Slice(cl.Objects, func(i, j int) bool { return cl.Objects[i] < cl.Objects[j] })
		for ri := range w.Requests {
			if c.reqBits[ri/64]&(1<<(uint(ri)%64)) != 0 {
				cl.Prob += w.Requests[ri].Prob
			}
		}
		out = append(out, cl)
	}
	return out
}

// requireBitIdentical fails unless got and want agree field for field, with
// float64s compared by bit pattern.
func requireBitIdentical(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("cluster count: got %d, want %d", len(got.Clusters), len(want.Clusters))
	}
	if len(got.Unreferenced) != len(want.Unreferenced) {
		t.Fatalf("unreferenced count: got %d, want %d", len(got.Unreferenced), len(want.Unreferenced))
	}
	for i := range want.Unreferenced {
		if got.Unreferenced[i] != want.Unreferenced[i] {
			t.Fatalf("unreferenced[%d]: got %d, want %d", i, got.Unreferenced[i], want.Unreferenced[i])
		}
	}
	for i := range want.Clusters {
		g, w := &got.Clusters[i], &want.Clusters[i]
		if g.Bytes != w.Bytes {
			t.Fatalf("cluster %d bytes: got %d, want %d", i, g.Bytes, w.Bytes)
		}
		if math.Float64bits(g.Prob) != math.Float64bits(w.Prob) {
			t.Fatalf("cluster %d prob bits: got %x (%v), want %x (%v)",
				i, math.Float64bits(g.Prob), g.Prob, math.Float64bits(w.Prob), w.Prob)
		}
		if math.Float64bits(g.Cohesion) != math.Float64bits(w.Cohesion) {
			t.Fatalf("cluster %d cohesion bits: got %x (%v), want %x (%v)",
				i, math.Float64bits(g.Cohesion), g.Cohesion, math.Float64bits(w.Cohesion), w.Cohesion)
		}
		if len(g.Objects) != len(w.Objects) {
			t.Fatalf("cluster %d size: got %d, want %d", i, len(g.Objects), len(w.Objects))
		}
		for j := range w.Objects {
			if g.Objects[j] != w.Objects[j] {
				t.Fatalf("cluster %d object %d: got %d, want %d", i, j, g.Objects[j], w.Objects[j])
			}
		}
	}
}

// equivalenceWorkloads returns the workload matrix the rewrite is pinned
// on: a paper-shaped generated workload plus crafted shapes that exercise
// atom collapse, unreferenced objects, shared objects, and cap splits.
func equivalenceWorkloads(t *testing.T) map[string]*model.Workload {
	t.Helper()
	p := workload.Defaults()
	p.NumObjects = 4000
	p.NumRequests = 80
	p.MinReqLen = 20
	p.MaxReqLen = 40
	gen, err := workload.Generate(p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	p2 := workload.Defaults()
	p2.NumObjects = 1500
	p2.NumRequests = 120
	p2.MinReqLen = 5
	p2.MaxReqLen = 60
	p2.Alpha = 0.4
	dense, err := workload.Generate(p2, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*model.Workload{
		"paper":  gen,
		"dense":  dense,
		"chains": wl(6, []model.ObjectID{0, 1}, []model.ObjectID{1, 2}, []model.ObjectID{2, 3}, []model.ObjectID{4, 5}),
		"collapse": wlWeighted(8, []float64{0.5, 0.3, 0.2},
			[]model.ObjectID{0, 1, 2, 3}, []model.ObjectID{0, 1, 2, 3}, []model.ObjectID{4, 5}),
	}
}

func TestRunMatchesReference(t *testing.T) {
	configs := map[string]Config{
		"average-auto":    {Linkage: Average},
		"single-auto":     {Linkage: Single},
		"complete-auto":   {Linkage: Complete},
		"average-thresh":  {Linkage: Average, Threshold: 0.01},
		"single-thresh":   {Linkage: Single, Threshold: 0.005},
		"complete-thresh": {Linkage: Complete, Threshold: 0.002},
		"average-capped":  {Linkage: Average, MaxObjects: 64, MaxBytes: 1 << 20},
		"single-capped":   {Linkage: Single, MaxObjects: 16},
		"complete-capped": {Linkage: Complete, MaxBytes: 1 << 18},
	}
	for wname, w := range equivalenceWorkloads(t) {
		for cname, cfg := range configs {
			want, err := referenceRun(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 5} {
				got, err := runWorkers(w, cfg, workers)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(wname+"/"+cname, func(t *testing.T) {
					requireBitIdentical(t, got, want)
				})
				if err := got.Validate(w); err != nil {
					t.Fatalf("%s/%s workers=%d: %v", wname, cname, workers, err)
				}
			}
			// Parallel=true through the public API must agree too.
			cfg.Parallel = true
			got, err := Run(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, got, want)
		}
	}
}

// TestRunScratchReuseStable re-runs the same clustering many times so every
// scratch buffer is recycled (and the adjacency arena compaction path is
// hit) and demands bit-identical output each time.
func TestRunScratchReuseStable(t *testing.T) {
	w := equivalenceWorkloads(t)["paper"]
	want, err := referenceRun(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := Run(w, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, got, want)
	}
}
