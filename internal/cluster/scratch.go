package cluster

import (
	"sync"

	"paralleltape/internal/model"
)

// scratch holds every reusable intermediate buffer one Run needs. Placement
// runs clustering once per (workload, config) point, but sweeps and
// benchmarks call Run thousands of times; recycling the buffers through a
// free list (mirroring the tapesys Submit scratch pattern) keeps the
// steady-state allocation count independent of workload size. Nothing in a
// scratch escapes into the returned Result — outputs are freshly allocated.
type scratch struct {
	// buildAtoms: object→request CSR index, signature-sorted ids, atoms.
	objReqOff []int32
	objReqs   []model.RequestID
	cursor    []int32
	ids       []int32
	atomObjs  []model.ObjectID
	atoms     []atom
	split     []atom

	// buildEdges: request→atom CSR index, flat pair contributions (plus
	// radix-sort temporaries and count arrays), edges.
	reqOff      []int32
	reqAtoms    []int32
	entries     []edgeEntry
	entriesTmp  []edgeEntry
	counts      []int32
	chunkBufs   [][]edgeEntry
	chunkTmps   [][]edgeEntry
	chunkCounts [][]int32
	edges       []pairEdge

	// agglomerate: cluster table, adjacency arena, request bitsets, heap.
	clusters []liveCluster
	degree   []int32
	parent   []int32
	atomNext []int32
	bits     []uint64
	nbrs     []int32
	links    []linkInfo
	spareN   []int32
	spareL   []linkInfo
	heap     candHeap
}

// The free list is a mutex-guarded stack rather than a sync.Pool: pool
// entries can vanish at any GC, which would make the AllocsPerRun budget
// tests (and the tapebench allocs/op gate) flake. Retention is bounded by
// the number of concurrent Run calls, which the experiment sweep caps at
// its worker count.
var (
	scratchMu   sync.Mutex
	scratchFree []*scratch
)

func getScratch() *scratch {
	scratchMu.Lock()
	defer scratchMu.Unlock()
	if n := len(scratchFree); n > 0 {
		s := scratchFree[n-1]
		scratchFree = scratchFree[:n-1]
		return s
	}
	return &scratch{}
}

func putScratch(s *scratch) {
	scratchMu.Lock()
	defer scratchMu.Unlock()
	if len(scratchFree) < 8 {
		scratchFree = append(scratchFree, s)
	}
}

// growI32 returns a zeroed int32 slice of length n, reusing buf's backing
// array when it is large enough.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growSlice returns s resized to length n (contents undefined), reusing the
// backing array when possible.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
