// Package cluster implements §5.1: hierarchical clustering of objects by
// co-access similarity. The similarity of a set of objects is the total
// probability of the requests that contain the whole set; following
// Johnson's agglomerative scheme [17], objects are merged bottom-up and the
// hierarchy is cut at a preset probability threshold.
//
// # Atoms
//
// The paper notes that "requests information are used to reduce the
// clustering computation costs". We push that idea to its limit: two
// objects contained in exactly the same set of requests are
// indistinguishable to every linkage criterion, so they are collapsed into
// one atom before any pairwise work. In the paper's workload (30,000
// objects, 300 requests, ~120 objects each) most objects appear in exactly
// one request, so the ~21,000 referenced objects collapse into a few
// thousand atoms and the pairwise similarity graph shrinks from millions of
// object pairs to a few hundred thousand atom pairs — with bit-identical
// results to object-level clustering.
//
// # Data layout
//
// The whole pipeline runs on flat, index-addressed storage recycled across
// calls through a scratch free list: object→request and request→atom
// incidence as CSR index pairs, pairwise similarities as a sorted flat
// entry slice aggregated by a single scan, and live-cluster adjacency as
// spans into one arena that is compacted when merges strand too many dead
// entries. docs/PERFORMANCE.md ("Placement pipeline") sketches the layout
// and the argument for why every transformation — including the optional
// parallel edge aggregation behind Config.Parallel — reproduces the
// original map-based results bit for bit.
package cluster

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"paralleltape/internal/model"
)

// Linkage selects how inter-cluster similarity is derived from object-pair
// similarities when clusters grow beyond single objects.
type Linkage int

const (
	// Average linkage: mean pairwise similarity between members (default;
	// robust for the paper's request-cluster structure).
	Average Linkage = iota
	// Single linkage: maximum pairwise similarity (merges chains eagerly).
	Single
	// Complete linkage: minimum pairwise similarity (most conservative).
	Complete
)

func (l Linkage) String() string {
	switch l {
	case Average:
		return "average"
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Config controls clustering.
type Config struct {
	// Threshold is the preset probability value the hierarchy is cut at:
	// merging stops when no cluster pair's linkage similarity reaches it.
	// Zero selects an automatic threshold of 0.9× the smallest positive
	// request probability: every request's exclusive objects then cohere
	// (their pairwise similarity is exactly that request's probability)
	// while chains across requests require genuinely shared mass. The
	// automatic value adapts to the workload's request count and skew.
	Threshold float64
	// Linkage selects the inter-cluster similarity criterion.
	Linkage Linkage
	// MaxObjects, if positive, refuses merges that would produce a cluster
	// with more objects (placement sometimes wants clusters bounded near
	// the batch width; §5.1's "general rule").
	MaxObjects int
	// MaxBytes, if positive, refuses merges that would exceed this total
	// size (a cluster must fit its tape batch).
	MaxBytes int64
	// Parallel fans the similarity-edge aggregation across
	// runtime.GOMAXPROCS workers. The result is bit-identical to the
	// sequential path at any worker count: workers only generate and sort
	// their chunk's pair contributions; every floating-point sum happens in
	// one sequential scan over the chunk-merged stream, which visits
	// contributions in global request order.
	Parallel bool
}

// DefaultConfig returns the configuration used by the paper reproduction:
// average linkage with the automatic (workload-relative) threshold.
func DefaultConfig() Config {
	return Config{Linkage: Average}
}

// Cluster is one output group.
type Cluster struct {
	Objects []model.ObjectID // sorted ascending
	Bytes   int64            // total size of member objects
	// Prob is the cluster access probability: the total probability of
	// requests touching at least one member (what cluster-probability
	// placement sorts by).
	Prob float64
	// Cohesion is the linkage similarity at which the final merge forming
	// this cluster happened (+Inf for singletons).
	Cohesion float64
}

// Result is the clustering output.
type Result struct {
	Clusters []Cluster
	// Unreferenced lists objects in no request at all (probability 0);
	// they are excluded from clustering and placed by schemes as cold
	// filler.
	Unreferenced []model.ObjectID
}

// atom is a maximal set of objects sharing one request signature.
type atom struct {
	objects []model.ObjectID
	bytes   int64
	reqs    []model.RequestID // sorted signature
}

// Run clusters the workload's objects under cfg.
func Run(w *model.Workload, cfg Config) (*Result, error) {
	workers := 1
	if cfg.Parallel {
		if n := runtime.GOMAXPROCS(0); n > workers {
			workers = n
		}
	}
	return runWorkers(w, cfg, workers)
}

// runWorkers is Run with an explicit edge-aggregation worker count; tests
// use it to exercise the parallel path regardless of GOMAXPROCS.
func runWorkers(w *model.Workload, cfg Config, workers int) (*Result, error) {
	if cfg.Threshold < 0 || math.IsNaN(cfg.Threshold) {
		return nil, fmt.Errorf("cluster: threshold must be non-negative, got %v", cfg.Threshold)
	}
	if cfg.Threshold == 0 {
		minProb := math.Inf(1)
		for i := range w.Requests {
			if p := w.Requests[i].Prob; p > 0 && p < minProb {
				minProb = p
			}
		}
		if math.IsInf(minProb, 1) {
			minProb = 1
		}
		cfg.Threshold = 0.9 * minProb
	}
	if cfg.Linkage != Average && cfg.Linkage != Single && cfg.Linkage != Complete {
		return nil, fmt.Errorf("cluster: unknown linkage %d", int(cfg.Linkage))
	}
	s := getScratch()
	defer putScratch(s)
	atoms, unreferenced := buildAtomsInto(w, s)
	atoms = splitAtomsInto(w, atoms, cfg, s)
	merged := agglomerateInto(w, atoms, cfg, s, workers)
	res := &Result{Clusters: merged, Unreferenced: unreferenced}
	// Objects[0] is unique per cluster (the clusters partition the
	// referenced objects), so this comparison is a total order and the
	// unstable sort cannot reorder equals.
	slices.SortFunc(res.Clusters, func(a, b Cluster) int {
		if a.Prob != b.Prob {
			return cmp.Compare(b.Prob, a.Prob)
		}
		return cmp.Compare(a.Objects[0], b.Objects[0])
	})
	return res, nil
}

// buildAtoms groups objects by request signature. Test-only compatibility
// shim over buildAtomsInto; the returned atoms reference the scratch, which
// is deliberately not recycled.
func buildAtoms(w *model.Workload) ([]atom, []model.ObjectID) {
	return buildAtomsInto(w, &scratch{})
}

// buildAtomsInto groups objects by request signature using s for every
// intermediate. The returned atoms alias s (objects and reqs point into
// scratch arenas) and are valid until the next use of s; unreferenced is
// freshly allocated.
//
// Atoms come out ordered by their smallest member object ID, which is
// exactly the first-seen order of the old map-based grouping (objects are
// scanned in ascending ID order, so a group is first seen at its minimum
// member).
func buildAtomsInto(w *model.Workload, s *scratch) ([]atom, []model.ObjectID) {
	nObj := len(w.Objects)
	// Object → request CSR index (replaces model.RequestsByObject, which
	// allocates one slice per object).
	off := growI32(s.objReqOff, nObj+1)
	for i := range w.Requests {
		for _, id := range w.Requests[i].Objects {
			off[id+1]++
		}
	}
	for i := 0; i < nObj; i++ {
		off[i+1] += off[i]
	}
	reqs := growSlice(s.objReqs, int(off[nObj]))
	cur := growSlice(s.cursor, nObj)
	copy(cur, off[:nObj])
	for i := range w.Requests {
		rid := w.Requests[i].ID
		for _, id := range w.Requests[i].Objects {
			reqs[cur[id]] = rid
			cur[id]++
		}
	}
	nRef, nUnref := 0, 0
	for i := 0; i < nObj; i++ {
		span := reqs[off[i]:off[i+1]]
		if len(span) == 0 {
			nUnref++
			continue
		}
		nRef++
		if len(span) > 1 {
			slices.Sort(span)
		}
	}
	var unreferenced []model.ObjectID
	if nUnref > 0 {
		unreferenced = make([]model.ObjectID, 0, nUnref)
		for i := 0; i < nObj; i++ {
			if off[i] == off[i+1] {
				unreferenced = append(unreferenced, model.ObjectID(i))
			}
		}
	}
	// Sort the referenced IDs by (signature, ID): equal signatures become
	// contiguous runs — the atoms — and the ID tiebreak keeps each atom's
	// member list ascending.
	ids := growSlice(s.ids, nRef)
	ids = ids[:0]
	for i := 0; i < nObj; i++ {
		if off[i] != off[i+1] {
			ids = append(ids, int32(i))
		}
	}
	slices.SortFunc(ids, func(x, y int32) int {
		if c := slices.Compare(reqs[off[x]:off[x+1]], reqs[off[y]:off[y+1]]); c != 0 {
			return c
		}
		return cmp.Compare(x, y)
	})
	objArena := growSlice(s.atomObjs, nRef)
	for i, id := range ids {
		objArena[i] = model.ObjectID(id)
	}
	atoms := s.atoms[:0]
	for lo := 0; lo < len(ids); {
		x := ids[lo]
		sig := reqs[off[x]:off[x+1]]
		hi := lo + 1
		for hi < len(ids) {
			y := ids[hi]
			if !slices.Equal(sig, reqs[off[y]:off[y+1]]) {
				break
			}
			hi++
		}
		a := atom{objects: objArena[lo:hi:hi], reqs: sig}
		for _, id := range a.objects {
			a.bytes += w.Objects[id].Size
		}
		atoms = append(atoms, a)
		lo = hi
	}
	slices.SortFunc(atoms, func(a, b atom) int {
		return cmp.Compare(a.objects[0], b.objects[0])
	})
	s.objReqOff, s.objReqs, s.cursor = off, reqs, cur
	s.ids, s.atomObjs, s.atoms = ids, objArena, atoms
	return atoms, unreferenced
}

// splitAtomsInto breaks atoms that already violate the configured caps into
// compliant chunks. Objects within an atom are interchangeable, so any
// split preserves clustering semantics; merges between the chunks are then
// refused by the same caps during agglomeration. Chunks are contiguous
// subslices of the parent atom's member list, so no object storage moves.
func splitAtomsInto(w *model.Workload, atoms []atom, cfg Config, s *scratch) []atom {
	if cfg.MaxObjects <= 0 && cfg.MaxBytes <= 0 {
		return atoms
	}
	out := s.split[:0]
	for _, a := range atoms {
		lo := 0
		var bytes int64
		for i, id := range a.objects {
			size := w.Objects[id].Size
			overObjects := cfg.MaxObjects > 0 && i-lo+1 > cfg.MaxObjects
			overBytes := cfg.MaxBytes > 0 && i > lo && bytes+size > cfg.MaxBytes
			if overObjects || overBytes {
				out = append(out, atom{objects: a.objects[lo:i:i], bytes: bytes, reqs: a.reqs})
				lo, bytes = i, 0
			}
			bytes += size
		}
		if lo < len(a.objects) {
			n := len(a.objects)
			out = append(out, atom{objects: a.objects[lo:n:n], bytes: bytes, reqs: a.reqs})
		}
	}
	s.split = out
	return out
}

// pairEdge accumulates the similarity structure between two atoms: every
// cross-object pair between atoms a and b has the identical similarity
// s(a,b) = Σ P(R) over requests containing both atoms.
type pairEdge struct {
	a, b int // atom indices, a < b
	sim  float64
}

// edgeEntry is one request's probability contribution to one atom pair,
// keyed by the packed pair (a<<32 | b). The flat entry stream replaces the
// old map[int64]float64 accumulator: a stable sort by key groups each
// pair's contributions while preserving their request order, so the scan
// in scanEntries performs the identical floating-point additions in the
// identical order.
type edgeEntry struct {
	key int64
	p   float64
}

// buildEdges computes s(a,b) for all co-occurring atom pairs. Test-only
// compatibility shim over buildEdgesInto.
func buildEdges(w *model.Workload, atoms []atom) []pairEdge {
	s := &scratch{}
	return slices.Clone(buildEdgesInto(w, atoms, s, 1))
}

// buildEdgesInto computes s(a,b) for all co-occurring atom pairs into
// s.edges, fanning pair generation across workers chunks when workers > 1.
// Output is sorted by (a, b) and bit-identical at any worker count.
func buildEdgesInto(w *model.Workload, atoms []atom, s *scratch, workers int) []pairEdge {
	nReq := len(w.Requests)
	// Request → atom CSR index. Atoms are scanned in index order, so each
	// request's member span comes out ascending; pair keys within one
	// request are then generated in ascending order too.
	rOff := growI32(s.reqOff, nReq+1)
	for ai := range atoms {
		for _, r := range atoms[ai].reqs {
			rOff[r+1]++
		}
	}
	for i := 0; i < nReq; i++ {
		rOff[i+1] += rOff[i]
	}
	rAtoms := growSlice(s.reqAtoms, int(rOff[nReq]))
	cur := growSlice(s.cursor, nReq)
	copy(cur, rOff[:nReq])
	for ai := range atoms {
		for _, r := range atoms[ai].reqs {
			rAtoms[cur[r]] = int32(ai)
			cur[r]++
		}
	}
	pairs := 0
	for ri := 0; ri < nReq; ri++ {
		m := int(rOff[ri+1] - rOff[ri])
		pairs += m * (m - 1) / 2
	}
	s.reqOff, s.reqAtoms, s.cursor = rOff, rAtoms, cur

	// genEntries emits every pair contribution for requests [lo, hi) into
	// dst (sized exactly) and stable-sorts them by key, so equal keys stay
	// in request order. tmp and count are scratch for the radix sort; count
	// must hold len(atoms) slots.
	genEntries := func(dst, tmp []edgeEntry, count []int32, lo, hi int) {
		pos := 0
		for ri := lo; ri < hi; ri++ {
			members := rAtoms[rOff[ri]:rOff[ri+1]]
			p := w.Requests[ri].Prob
			for i := 0; i < len(members); i++ {
				a := int64(members[i]) << 32
				for j := i + 1; j < len(members); j++ {
					dst[pos] = edgeEntry{key: a | int64(members[j]), p: p}
					pos++
				}
			}
		}
		radixSortEntries(dst, tmp, count)
	}

	if workers <= 1 || pairs == 0 {
		entries := growSlice(s.entries, pairs)
		tmp := growSlice(s.entriesTmp, pairs)
		count := growSlice(s.counts, len(atoms))
		genEntries(entries, tmp, count, 0, nReq)
		s.entries, s.entriesTmp, s.counts = entries, tmp, count
		s.edges = scanEntries(s.edges[:0], entries)
		return s.edges
	}

	// Cut the request range into ≤ workers contiguous chunks of roughly
	// equal pair weight. Chunking only affects scheduling: the merge below
	// replays contributions in global request order regardless of where
	// the cuts land.
	type chunk struct{ lo, hi, pairs int }
	chunks := make([]chunk, 0, workers)
	target := (pairs + workers - 1) / workers
	c := chunk{lo: 0}
	for ri := 0; ri < nReq; ri++ {
		m := int(rOff[ri+1] - rOff[ri])
		c.pairs += m * (m - 1) / 2
		if c.pairs >= target && len(chunks) < workers-1 {
			c.hi = ri + 1
			chunks = append(chunks, c)
			c = chunk{lo: ri + 1}
		}
	}
	c.hi = nReq
	chunks = append(chunks, c)

	for len(s.chunkBufs) < len(chunks) {
		s.chunkBufs = append(s.chunkBufs, nil)
		s.chunkTmps = append(s.chunkTmps, nil)
		s.chunkCounts = append(s.chunkCounts, nil)
	}
	var wg sync.WaitGroup
	for ci := 1; ci < len(chunks); ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			s.chunkBufs[ci] = growSlice(s.chunkBufs[ci], chunks[ci].pairs)
			s.chunkTmps[ci] = growSlice(s.chunkTmps[ci], chunks[ci].pairs)
			s.chunkCounts[ci] = growSlice(s.chunkCounts[ci], len(atoms))
			genEntries(s.chunkBufs[ci], s.chunkTmps[ci], s.chunkCounts[ci], chunks[ci].lo, chunks[ci].hi)
		}(ci)
	}
	s.chunkBufs[0] = growSlice(s.chunkBufs[0], chunks[0].pairs)
	s.chunkTmps[0] = growSlice(s.chunkTmps[0], chunks[0].pairs)
	s.chunkCounts[0] = growSlice(s.chunkCounts[0], len(atoms))
	genEntries(s.chunkBufs[0], s.chunkTmps[0], s.chunkCounts[0], chunks[0].lo, chunks[0].hi)
	wg.Wait()

	// Sequential merge-aggregate: for each key (ascending), sum its
	// contributions chunk by chunk in chunk-index order. Chunks cover
	// contiguous ascending request ranges and each chunk's equal-key run
	// is in request order (stable sort), so the summation order is the
	// global request order — the same order the sequential scan (and the
	// old map accumulator) used.
	cursors := make([]int, len(chunks))
	edges := s.edges[:0]
	for {
		bestKey := int64(0)
		found := false
		for ci := range chunks {
			buf := s.chunkBufs[ci]
			if cursors[ci] < len(buf) {
				if k := buf[cursors[ci]].key; !found || k < bestKey {
					bestKey, found = k, true
				}
			}
		}
		if !found {
			break
		}
		sum, first := 0.0, true
		for ci := range chunks {
			buf := s.chunkBufs[ci]
			for cursors[ci] < len(buf) && buf[cursors[ci]].key == bestKey {
				if first {
					sum, first = buf[cursors[ci]].p, false
				} else {
					sum += buf[cursors[ci]].p
				}
				cursors[ci]++
			}
		}
		edges = append(edges, pairEdge{
			a: int(bestKey >> 32), b: int(bestKey & 0xFFFFFFFF), sim: sum,
		})
	}
	s.edges = edges
	return edges
}

// radixSortEntries stable-sorts entries by key with two counting passes —
// low half (b), then high half (a) of the packed pair key. Both halves are
// atom indices, so one count array of len(atoms) slots serves both passes
// and stays cache-resident; being a stable sort, equal keys keep their
// request order exactly as the comparison sort it replaced did. tmp must
// be at least len(entries) long.
func radixSortEntries(entries, tmp []edgeEntry, count []int32) {
	tmp = tmp[:len(entries)]
	for pass := 0; pass < 2; pass++ {
		shift := uint(32 * pass)
		for i := range count {
			count[i] = 0
		}
		for i := range entries {
			count[int32(entries[i].key>>shift)]++
		}
		sum := int32(0)
		for d := range count {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range entries {
			d := int32(entries[i].key >> shift)
			tmp[count[d]] = entries[i]
			count[d]++
		}
		entries, tmp = tmp, entries
	}
	// Two swaps: the sorted data ended up back in the caller's slice.
}

// scanEntries aggregates a key-sorted entry stream into edges. Entries with
// equal keys are summed left to right, which by the stable sort is their
// request order — matching the old map accumulator addition for addition.
func scanEntries(edges []pairEdge, entries []edgeEntry) []pairEdge {
	for i := 0; i < len(entries); {
		k := entries[i].key
		sum := entries[i].p
		j := i + 1
		for j < len(entries) && entries[j].key == k {
			sum += entries[j].p
			j++
		}
		edges = append(edges, pairEdge{a: int(k >> 32), b: int(k & 0xFFFFFFFF), sim: sum})
		i = j
	}
	return edges
}

// linkInfo tracks the object-level pair-similarity aggregate between two
// live clusters, sufficient to evaluate any of the three linkages.
type linkInfo struct {
	sumSim float64 // Σ over cross object pairs of their similarity
	minSim float64
	maxSim float64
	pairs  int64 // number of cross object pairs with nonzero similarity
}

func (li linkInfo) value(l Linkage, sizeA, sizeB int64) float64 {
	switch l {
	case Single:
		return li.maxSim
	case Complete:
		// Pairs with zero similarity drag the minimum to zero.
		if li.pairs < sizeA*sizeB {
			return 0
		}
		return li.minSim
	default: // Average: zero-sim pairs count in the denominator.
		return li.sumSim / float64(sizeA*sizeB)
	}
}

func mergeLink(x, y linkInfo) linkInfo {
	out := linkInfo{
		sumSim: x.sumSim + y.sumSim,
		pairs:  x.pairs + y.pairs,
		minSim: x.minSim,
		maxSim: x.maxSim,
	}
	if y.minSim < out.minSim {
		out.minSim = y.minSim
	}
	if y.maxSim > out.maxSim {
		out.maxSim = y.maxSim
	}
	return out
}

// candidate is a heap entry proposing to merge clusters a and b. The
// indices and versions are int32 — atom counts and merge counts both fit
// comfortably — so a candidate packs into 24 bytes instead of 40, which at
// ~10^6 heap entries is the difference between the heap fitting in cache
// or not (and a 40% cut in its backing-array bytes).
type candidate struct {
	sim        float64
	ab         uint64 // packed pair a<<32 | b; one compare breaks (a, b) ties
	verA, verB int32  // cluster versions at proposal time (lazy invalidation)
}

func (c candidate) pair() (int32, int32) {
	return int32(c.ab >> 32), int32(uint32(c.ab))
}

// candHeap is a hand-rolled 4-ary max-heap on (sim, a, b); avoiding
// container/heap's interface boxing matters at ~10^6 candidates, and the
// wider nodes halve the tree depth (fewer dependent sift steps, and the
// four children of a node sit in at most two cache lines).
//
// Heap shape does not affect the merge sequence: candLess is strict on
// (sim, a, b), so pop order is fully determined up to entries for the same
// pair at the same similarity, which differ only in their version stamps.
// Of those, at most one matches the clusters' current versions, and the
// stale ones either skip (roots already joined) or re-propose a candidate
// identical to the surviving one — the same merges fire in the same order
// whichever of the equal entries surfaces first (TestRunMatchesReference
// pins this against the reference implementation's binary heap).
type candHeap []candidate

// candLess orders by descending sim, then ascending packed pair — the
// cluster indices are non-negative, so the uint64 comparison is exactly
// the (a, b) lexicographic order.
func candLess(x, y candidate) bool {
	if x.sim != y.sim {
		return x.sim > y.sim
	}
	return x.ab < y.ab
}

// push and pop sift a hole rather than swapping: the displaced element is
// written once at its final slot, halving the stores per sift step.
func (h *candHeap) push(c candidate) {
	s := append(*h, c)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !candLess(c, s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = c
	*h = s
}

func (h *candHeap) pop() candidate {
	s := *h
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		best := first
		for j := first + 1; j < end; j++ {
			if candLess(s[j], s[best]) {
				best = j
			}
		}
		if !candLess(s[best], last) {
			break
		}
		s[i] = s[best]
		i = best
	}
	if n > 0 {
		s[i] = last
	}
	return top
}

// The adjacency arena stores neighbor records as two parallel arrays: the
// neighbor cluster indices (nbrs, the search keys) and the pair-similarity
// aggregates (links, the payloads). A live cluster's neighbors occupy one
// nbr-sorted span [adjOff, adjOff+adjLen) of both arrays, so lookups are
// binary searches and the deterministic "fold b's neighbors in ascending
// key order" of the old map implementation becomes a linear merge walk.
// Splitting keys from the 40-byte payloads keeps the searched data dense —
// sixteen int32 keys per cache line instead of one or two full records —
// which is most of the lookup cost at ~10^5 searches per run.

// liveCluster is one active cluster during agglomeration. Member atoms are
// kept as an intrusive linked list through agg.atomNext (head/tail splice
// on merge, no copying); neighbors are the arena span [adjOff, adjOff+adjLen).
type liveCluster struct {
	objects  int64 // object count
	bytes    int64
	cohesion float64 // linkage value of the last merge
	adjOff   int32
	adjLen   int32
	atomHead int32
	atomTail int32
	version  int32
	alive    bool
}

// agg bundles the agglomeration state so merge steps can be methods.
type agg struct {
	cfg      Config
	words    int // request-bitset words per cluster
	clusters []liveCluster
	parent   []int32 // union-find with path halving
	atomNext []int32
	bits     []uint64
	nbrs     []int32    // adjacency keys (parallel to links)
	links    []linkInfo // adjacency payloads
	spareN   []int32    // compaction targets, swapped with nbrs/links
	spareL   []linkInfo
	live     int // live entries in the arena (for the compaction trigger)
	heap     *candHeap
}

func (g *agg) find(x int32) int32 {
	for g.parent[x] != x {
		g.parent[x] = g.parent[g.parent[x]]
		x = g.parent[x]
	}
	return x
}

// lowerBound returns the first index in the sorted keys not less than nbr.
func lowerBound(keys []int32, nbr int32) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < nbr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findKey returns the index of nbr within the sorted keys, or -1.
func findKey(keys []int32, nbr int32) int {
	if lo := lowerBound(keys, nbr); lo < len(keys) && keys[lo] == nbr {
		return lo
	}
	return -1
}

// propose pushes a merge candidate for live clusters a and b (any order)
// whose current link aggregate is li, if the linkage value clears the
// threshold and the caps allow the union.
func (g *agg) propose(a, b int32, li linkInfo) {
	if a > b {
		a, b = b, a
	}
	ca, cb := &g.clusters[a], &g.clusters[b]
	if !ca.alive || !cb.alive {
		return
	}
	sim := li.value(g.cfg.Linkage, ca.objects, cb.objects)
	if sim < g.cfg.Threshold {
		return
	}
	if g.cfg.MaxObjects > 0 && ca.objects+cb.objects > int64(g.cfg.MaxObjects) {
		return
	}
	if g.cfg.MaxBytes > 0 && ca.bytes+cb.bytes > g.cfg.MaxBytes {
		return
	}
	g.heap.push(candidate{
		sim:  sim,
		ab:   uint64(uint32(a))<<32 | uint64(uint32(b)),
		verA: ca.version, verB: cb.version,
	})
}

// proposeLookup re-proposes the pair (a, b) from its stored adjacency, if
// the clusters are still linked; used when a stale heap entry surfaces.
func (g *agg) proposeLookup(a, b int32) {
	if a == b {
		return
	}
	cl := &g.clusters[a]
	p := findKey(g.nbrs[cl.adjOff:cl.adjOff+cl.adjLen], b)
	if p < 0 {
		return
	}
	g.propose(a, b, g.links[int(cl.adjOff)+p])
}

// renameNbr rewrites k's entry for old to refer to new with aggregate li,
// keeping k's span sorted. new must not already be present in the span
// (guaranteed: renames happen only for neighbors adjacent to exactly one
// of the merging pair). The entry is rotated directly from old's slot to
// new's sorted slot, moving only the records between the two positions.
func (g *agg) renameNbr(k, old, new int32, li linkInfo) {
	cl := &g.clusters[k]
	off, n := int(cl.adjOff), int(cl.adjLen)
	keys := g.nbrs[off : off+n]
	lis := g.links[off : off+n]
	po := findKey(keys, old)
	lb := lowerBound(keys, new)
	if lb > po {
		lb--
		copy(keys[po:lb], keys[po+1:lb+1])
		copy(lis[po:lb], lis[po+1:lb+1])
	} else {
		copy(keys[lb+1:po+1], keys[lb:po])
		copy(lis[lb+1:po+1], lis[lb:po])
	}
	keys[lb] = new
	lis[lb] = li
}

// mergeNbr collapses k's entries for the merging pair (a absorbs b): a's
// entry takes the merged aggregate li and b's entry is removed, shrinking
// k's span by one.
func (g *agg) mergeNbr(k, a, b int32, li linkInfo) {
	cl := &g.clusters[k]
	off, n := int(cl.adjOff), int(cl.adjLen)
	keys := g.nbrs[off : off+n]
	lis := g.links[off : off+n]
	lis[findKey(keys, a)] = li
	pb := findKey(keys, b)
	copy(keys[pb:], keys[pb+1:])
	copy(lis[pb:], lis[pb+1:])
	cl.adjLen--
	g.live--
}

// ensure guarantees capacity for need appended entries without moving the
// arena backing mid-merge. When at least half the arena is dead it compacts
// live spans into the spare buffer (swapping the two), otherwise it grows.
func (g *agg) ensure(need int) {
	if len(g.nbrs)+need <= cap(g.nbrs) {
		return
	}
	if g.live <= len(g.nbrs)/2 {
		want := g.live + need
		if cap(g.spareN) < want {
			g.spareN = make([]int32, 0, 2*want)
			g.spareL = make([]linkInfo, 0, 2*want)
		}
		dstN, dstL := g.spareN[:0], g.spareL[:0]
		for i := range g.clusters {
			c := &g.clusters[i]
			if !c.alive || c.adjLen == 0 {
				continue
			}
			off := int32(len(dstN))
			dstN = append(dstN, g.nbrs[c.adjOff:c.adjOff+c.adjLen]...)
			dstL = append(dstL, g.links[c.adjOff:c.adjOff+c.adjLen]...)
			c.adjOff = off
		}
		oldN, oldL := g.nbrs, g.links
		g.nbrs, g.links = dstN, dstL
		g.spareN, g.spareL = oldN[:0], oldL[:0]
		if len(g.nbrs)+need <= cap(g.nbrs) {
			return
		}
	}
	grownN := make([]int32, len(g.nbrs), 2*cap(g.nbrs)+need)
	grownL := make([]linkInfo, len(g.links), 2*cap(g.nbrs)+need)
	copy(grownN, g.nbrs)
	copy(grownL, g.links)
	g.nbrs, g.links = grownN, grownL
}

// union merges cluster b into a (a keeps its index), assuming a, b are live
// roots and the caller already validated the merge. The new adjacency span
// for a is written at the arena tail by a linear merge of a's and b's spans
// in ascending neighbor order; for each neighbor taken from b's side the
// reverse edge is retargeted and the refreshed pair proposed — the same
// visit order, aggregate values, and heap pushes as the old map fold over
// b's sorted keys.
func (g *agg) union(a, b int32, sim float64) {
	ca, cb := &g.clusters[a], &g.clusters[b]
	// Reserve arena room first: a compaction here still sees both spans as
	// live and relocates them coherently before we capture them below.
	g.ensure(int(ca.adjLen) + int(cb.adjLen))
	g.parent[b] = a
	ca.version++
	g.atomNext[ca.atomTail] = cb.atomHead
	ca.atomTail = cb.atomTail
	ca.objects += cb.objects
	ca.bytes += cb.bytes
	wa := g.bits[int(a)*g.words : (int(a)+1)*g.words]
	wb := g.bits[int(b)*g.words : (int(b)+1)*g.words]
	for wi := range wa {
		wa[wi] |= wb[wi]
	}
	ca.cohesion = sim
	cb.alive = false

	ka := g.nbrs[ca.adjOff : ca.adjOff+ca.adjLen]
	la := g.links[ca.adjOff : ca.adjOff+ca.adjLen]
	kb := g.nbrs[cb.adjOff : cb.adjOff+cb.adjLen]
	lb := g.links[cb.adjOff : cb.adjOff+cb.adjLen]
	base := len(g.nbrs)
	g.live -= len(ka) + len(kb)
	ia, ib := 0, 0
	for ia < len(ka) && ib < len(kb) {
		if ka[ia] == b {
			ia++
			continue
		}
		if kb[ib] == a {
			ib++
			continue
		}
		switch {
		case ka[ia] < kb[ib]:
			// Run of a-only neighbors: aggregates unchanged and no side
			// effects, so the whole run up to the next b-side key (or b's
			// own entry, which must be skipped) is one bulk copy. a is the
			// larger adjacency, so this is the common case.
			lim := kb[ib]
			if b > ka[ia] && b < lim {
				lim = b
			}
			run := ia + 1
			for run < len(ka) && ka[run] < lim {
				run++
			}
			g.nbrs = append(g.nbrs, ka[ia:run]...)
			g.links = append(g.links, la[ia:run]...)
			g.live += run - ia
			ia = run
		case kb[ib] < ka[ia]:
			// Neighbor of b only: a inherits the aggregate; retarget the
			// reverse edge and propose the refreshed pair.
			k, li := kb[ib], lb[ib]
			g.nbrs = append(g.nbrs, k)
			g.links = append(g.links, li)
			g.live++
			g.renameNbr(k, b, a, li)
			g.propose(a, k, li)
			ib++
		default:
			// Shared neighbor: merge the aggregates (a's first, matching
			// the old fold's mergeLink(prev, li) argument order).
			k := ka[ia]
			li := mergeLink(la[ia], lb[ib])
			g.nbrs = append(g.nbrs, k)
			g.links = append(g.links, li)
			g.live++
			g.mergeNbr(k, a, b, li)
			g.propose(a, k, li)
			ia++
			ib++
		}
	}
	// a's tail: one or two bulk copies around b's entry if it is still ahead.
	if ia < len(ka) {
		pb := len(ka)
		if b >= ka[ia] {
			pb = ia + lowerBound(ka[ia:], b)
		}
		g.nbrs = append(g.nbrs, ka[ia:pb]...)
		g.links = append(g.links, la[ia:pb]...)
		g.live += pb - ia
		if pb < len(ka) {
			g.nbrs = append(g.nbrs, ka[pb+1:]...)
			g.links = append(g.links, la[pb+1:]...)
			g.live += len(ka) - pb - 1
		}
	}
	// b's tail: still needs the per-entry retarget and refresh.
	for ; ib < len(kb); ib++ {
		if kb[ib] == a {
			continue
		}
		k, li := kb[ib], lb[ib]
		g.nbrs = append(g.nbrs, k)
		g.links = append(g.links, li)
		g.live++
		g.renameNbr(k, b, a, li)
		g.propose(a, k, li)
	}
	ca.adjOff = int32(base)
	ca.adjLen = int32(len(g.nbrs) - base)
	cb.adjLen = 0
}

func agglomerateInto(w *model.Workload, atoms []atom, cfg Config, s *scratch, workers int) []Cluster {
	nReq := len(w.Requests)
	words := (nReq + 63) / 64
	edges := buildEdgesInto(w, atoms, s, workers)
	n := len(atoms)

	// Pre-count adjacency degrees so every span is born at its final
	// initial size inside one arena.
	degree := growI32(s.degree, n)
	for _, e := range edges {
		degree[e.a]++
		degree[e.b]++
	}
	clusters := growSlice(s.clusters, n)
	atomNext := growSlice(s.atomNext, n)
	parent := growSlice(s.parent, n)
	bitsArena := growSlice(s.bits, words*n)
	for i := range bitsArena {
		bitsArena[i] = 0
	}
	nbrs := growSlice(s.nbrs, 2*len(edges))
	links := growSlice(s.links, 2*len(edges))
	off := int32(0)
	for i := range atoms {
		clusters[i] = liveCluster{
			objects:  int64(len(atoms[i].objects)),
			bytes:    atoms[i].bytes,
			cohesion: math.Inf(1),
			adjOff:   off,
			adjLen:   degree[i],
			atomHead: int32(i),
			atomTail: int32(i),
			alive:    true,
		}
		off += degree[i]
		atomNext[i] = -1
		parent[i] = int32(i)
		cw := bitsArena[i*words : (i+1)*words]
		for _, r := range atoms[i].reqs {
			cw[int(r)/64] |= 1 << (uint(r) % 64)
		}
	}
	// The heap sees at most one initial proposal per edge plus lazy
	// refreshes; starting at edge capacity removes nearly all regrowth.
	if cap(s.heap) < len(edges) {
		s.heap = make(candHeap, 0, len(edges))
	}
	s.heap = s.heap[:0]

	g := &agg{
		cfg: cfg, words: words,
		clusters: clusters, parent: parent, atomNext: atomNext,
		bits: bitsArena, nbrs: nbrs, links: links,
		spareN: s.spareN[:0], spareL: s.spareL[:0],
		live: 2 * len(edges), heap: &s.heap,
	}
	// Initial fill: edges are sorted by (a, b), so filling both directions
	// in edge order leaves every span sorted by neighbor.
	cur := growSlice(s.cursor, n)
	for i := range clusters {
		cur[i] = clusters[i].adjOff
	}
	for _, e := range edges {
		ca, cb := &clusters[e.a], &clusters[e.b]
		li := linkInfo{
			sumSim: e.sim * float64(ca.objects*cb.objects),
			minSim: e.sim,
			maxSim: e.sim,
			pairs:  ca.objects * cb.objects,
		}
		g.nbrs[cur[e.a]], g.links[cur[e.a]] = int32(e.b), li
		cur[e.a]++
		g.nbrs[cur[e.b]], g.links[cur[e.b]] = int32(e.a), li
		cur[e.b]++
		g.propose(int32(e.a), int32(e.b), li)
	}
	s.cursor = cur

	for len(*g.heap) > 0 {
		c := g.heap.pop()
		pa, pb := c.pair()
		a, b := g.find(pa), g.find(pb)
		if a == b {
			continue
		}
		ca, cb := &clusters[a], &clusters[b]
		if a != pa || b != pb || ca.version != c.verA || cb.version != c.verB {
			// Stale: the endpoints merged or changed since this proposal.
			// Re-evaluate the surviving pair lazily (no proactive fan-out
			// after merges keeps the heap small).
			if a > b {
				a, b = b, a
			}
			g.proposeLookup(a, b)
			continue
		}
		// Merge the smaller adjacency into the larger.
		if cb.adjLen > ca.adjLen {
			a, b = b, a
		}
		g.union(a, b, c.sim)
	}

	// Write the scratch-owned state back (the arena may have been swapped
	// or regrown) before materializing the freshly allocated output.
	s.clusters, s.parent, s.atomNext = g.clusters, g.parent, g.atomNext
	s.bits, s.degree = g.bits, degree
	s.nbrs, s.links, s.spareN, s.spareL = g.nbrs, g.links, g.spareN, g.spareL

	nAlive, totObjs := 0, 0
	for i := range clusters {
		if clusters[i].alive {
			nAlive++
			totObjs += int(clusters[i].objects)
		}
	}
	out := make([]Cluster, 0, nAlive)
	objArena := make([]model.ObjectID, 0, totObjs)
	for i := range clusters {
		c := &clusters[i]
		if !c.alive {
			continue
		}
		start := len(objArena)
		for ai := c.atomHead; ; ai = atomNext[ai] {
			objArena = append(objArena, atoms[ai].objects...)
			if ai == c.atomTail {
				break
			}
		}
		objs := objArena[start:len(objArena):len(objArena)]
		slices.Sort(objs)
		cl := Cluster{Objects: objs, Bytes: c.bytes, Cohesion: c.cohesion}
		cw := bitsArena[i*words : (i+1)*words]
		for wi, word := range cw {
			for word != 0 {
				ri := wi*64 + bits.TrailingZeros64(word)
				cl.Prob += w.Requests[ri].Prob
				word &= word - 1
			}
		}
		out = append(out, cl)
	}
	return out
}

// Summary describes a clustering result for reports.
type Summary struct {
	NumClusters   int
	NumSingletons int
	MaxObjects    int
	MeanObjects   float64
	TotalBytes    int64
	Unreferenced  int
}

// Summarize computes result statistics.
func (r *Result) Summarize() Summary {
	s := Summary{NumClusters: len(r.Clusters), Unreferenced: len(r.Unreferenced)}
	total := 0
	for _, c := range r.Clusters {
		n := len(c.Objects)
		total += n
		if n == 1 {
			s.NumSingletons++
		}
		if n > s.MaxObjects {
			s.MaxObjects = n
		}
		s.TotalBytes += c.Bytes
	}
	if len(r.Clusters) > 0 {
		s.MeanObjects = float64(total) / float64(len(r.Clusters))
	}
	return s
}

// Validate checks that the result partitions the referenced objects of w:
// every object appears exactly once across clusters + unreferenced.
func (r *Result) Validate(w *model.Workload) error {
	seen := make([]bool, w.NumObjects())
	mark := func(id model.ObjectID) error {
		if int(id) < 0 || int(id) >= len(seen) {
			return fmt.Errorf("cluster: unknown object %d in result", id)
		}
		if seen[id] {
			return fmt.Errorf("cluster: object %d appears twice in result", id)
		}
		seen[id] = true
		return nil
	}
	for _, c := range r.Clusters {
		if len(c.Objects) == 0 {
			return fmt.Errorf("cluster: empty cluster in result")
		}
		var bytes int64
		for _, id := range c.Objects {
			if err := mark(id); err != nil {
				return err
			}
			bytes += w.Objects[id].Size
		}
		if bytes != c.Bytes {
			return fmt.Errorf("cluster: byte count mismatch (%d vs %d)", bytes, c.Bytes)
		}
	}
	for _, id := range r.Unreferenced {
		if err := mark(id); err != nil {
			return err
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("cluster: object %d missing from result", i)
		}
	}
	return nil
}
