// Package cluster implements §5.1: hierarchical clustering of objects by
// co-access similarity. The similarity of a set of objects is the total
// probability of the requests that contain the whole set; following
// Johnson's agglomerative scheme [17], objects are merged bottom-up and the
// hierarchy is cut at a preset probability threshold.
//
// # Atoms
//
// The paper notes that "requests information are used to reduce the
// clustering computation costs". We push that idea to its limit: two
// objects contained in exactly the same set of requests are
// indistinguishable to every linkage criterion, so they are collapsed into
// one atom before any pairwise work. In the paper's workload (30,000
// objects, 300 requests, ~120 objects each) most objects appear in exactly
// one request, so the ~21,000 referenced objects collapse into a few
// thousand atoms and the pairwise similarity graph shrinks from millions of
// object pairs to a few hundred thousand atom pairs — with bit-identical
// results to object-level clustering.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"paralleltape/internal/model"
)

// Linkage selects how inter-cluster similarity is derived from object-pair
// similarities when clusters grow beyond single objects.
type Linkage int

const (
	// Average linkage: mean pairwise similarity between members (default;
	// robust for the paper's request-cluster structure).
	Average Linkage = iota
	// Single linkage: maximum pairwise similarity (merges chains eagerly).
	Single
	// Complete linkage: minimum pairwise similarity (most conservative).
	Complete
)

func (l Linkage) String() string {
	switch l {
	case Average:
		return "average"
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Config controls clustering.
type Config struct {
	// Threshold is the preset probability value the hierarchy is cut at:
	// merging stops when no cluster pair's linkage similarity reaches it.
	// Zero selects an automatic threshold of 0.9× the smallest positive
	// request probability: every request's exclusive objects then cohere
	// (their pairwise similarity is exactly that request's probability)
	// while chains across requests require genuinely shared mass. The
	// automatic value adapts to the workload's request count and skew.
	Threshold float64
	// Linkage selects the inter-cluster similarity criterion.
	Linkage Linkage
	// MaxObjects, if positive, refuses merges that would produce a cluster
	// with more objects (placement sometimes wants clusters bounded near
	// the batch width; §5.1's "general rule").
	MaxObjects int
	// MaxBytes, if positive, refuses merges that would exceed this total
	// size (a cluster must fit its tape batch).
	MaxBytes int64
}

// DefaultConfig returns the configuration used by the paper reproduction:
// average linkage with the automatic (workload-relative) threshold.
func DefaultConfig() Config {
	return Config{Linkage: Average}
}

// Cluster is one output group.
type Cluster struct {
	Objects []model.ObjectID // sorted ascending
	Bytes   int64            // total size of member objects
	// Prob is the cluster access probability: the total probability of
	// requests touching at least one member (what cluster-probability
	// placement sorts by).
	Prob float64
	// Cohesion is the linkage similarity at which the final merge forming
	// this cluster happened (+Inf for singletons).
	Cohesion float64
}

// Result is the clustering output.
type Result struct {
	Clusters []Cluster
	// Unreferenced lists objects in no request at all (probability 0);
	// they are excluded from clustering and placed by schemes as cold
	// filler.
	Unreferenced []model.ObjectID
}

// atom is a maximal set of objects sharing one request signature.
type atom struct {
	objects []model.ObjectID
	bytes   int64
	reqs    []model.RequestID // sorted signature
}

// Run clusters the workload's objects under cfg.
func Run(w *model.Workload, cfg Config) (*Result, error) {
	if cfg.Threshold < 0 || math.IsNaN(cfg.Threshold) {
		return nil, fmt.Errorf("cluster: threshold must be non-negative, got %v", cfg.Threshold)
	}
	if cfg.Threshold == 0 {
		minProb := math.Inf(1)
		for i := range w.Requests {
			if p := w.Requests[i].Prob; p > 0 && p < minProb {
				minProb = p
			}
		}
		if math.IsInf(minProb, 1) {
			minProb = 1
		}
		cfg.Threshold = 0.9 * minProb
	}
	if cfg.Linkage != Average && cfg.Linkage != Single && cfg.Linkage != Complete {
		return nil, fmt.Errorf("cluster: unknown linkage %d", int(cfg.Linkage))
	}
	atoms, unreferenced := buildAtoms(w)
	atoms = splitAtoms(w, atoms, cfg)
	merged := agglomerate(w, atoms, cfg)
	res := &Result{Clusters: merged, Unreferenced: unreferenced}
	sort.Slice(res.Clusters, func(i, j int) bool {
		a, b := &res.Clusters[i], &res.Clusters[j]
		if a.Prob != b.Prob {
			return a.Prob > b.Prob
		}
		return a.Objects[0] < b.Objects[0]
	})
	return res, nil
}

// buildAtoms groups objects by request signature.
func buildAtoms(w *model.Workload) ([]atom, []model.ObjectID) {
	byObject := w.RequestsByObject()
	sigKey := func(reqs []model.RequestID) string {
		// Request IDs fit in 32 bits; pack the sorted list into a string key.
		b := make([]byte, 0, len(reqs)*4)
		for _, r := range reqs {
			b = append(b, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		}
		return string(b)
	}
	var unreferenced []model.ObjectID
	groups := make(map[string]*atom)
	var order []string // first-seen order for determinism
	for i := range w.Objects {
		id := model.ObjectID(i)
		reqs := byObject[i]
		if len(reqs) == 0 {
			unreferenced = append(unreferenced, id)
			continue
		}
		k := sigKey(reqs)
		a := groups[k]
		if a == nil {
			a = &atom{reqs: reqs}
			groups[k] = a
			order = append(order, k)
		}
		a.objects = append(a.objects, id)
		a.bytes += w.Objects[i].Size
	}
	atoms := make([]atom, 0, len(order))
	for _, k := range order {
		atoms = append(atoms, *groups[k])
	}
	return atoms, unreferenced
}

// splitAtoms breaks atoms that already violate the configured caps into
// compliant chunks. Objects within an atom are interchangeable, so any
// split preserves clustering semantics; merges between the chunks are then
// refused by the same caps during agglomeration.
func splitAtoms(w *model.Workload, atoms []atom, cfg Config) []atom {
	if cfg.MaxObjects <= 0 && cfg.MaxBytes <= 0 {
		return atoms
	}
	var out []atom
	for _, a := range atoms {
		cur := atom{reqs: a.reqs}
		flush := func() {
			if len(cur.objects) > 0 {
				out = append(out, cur)
				cur = atom{reqs: a.reqs}
			}
		}
		for _, id := range a.objects {
			size := w.Objects[id].Size
			overObjects := cfg.MaxObjects > 0 && len(cur.objects)+1 > cfg.MaxObjects
			overBytes := cfg.MaxBytes > 0 && len(cur.objects) > 0 && cur.bytes+size > cfg.MaxBytes
			if overObjects || overBytes {
				flush()
			}
			cur.objects = append(cur.objects, id)
			cur.bytes += size
		}
		flush()
	}
	return out
}

// pairEdge accumulates the similarity structure between two atoms: every
// cross-object pair between atoms a and b has the identical similarity
// s(a,b) = Σ P(R) over requests containing both atoms.
type pairEdge struct {
	a, b int // atom indices, a < b
	sim  float64
}

// buildEdges computes s(a,b) for all co-occurring atom pairs.
func buildEdges(w *model.Workload, atoms []atom) []pairEdge {
	// Invert: request -> atoms containing it.
	atomsByReq := make([][]int32, len(w.Requests))
	for ai := range atoms {
		for _, r := range atoms[ai].reqs {
			atomsByReq[r] = append(atomsByReq[r], int32(ai))
		}
	}
	acc := make(map[int64]float64)
	for ri := range w.Requests {
		p := w.Requests[ri].Prob
		members := atomsByReq[ri]
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				acc[int64(a)<<32|int64(b)] += p
			}
		}
	}
	edges := make([]pairEdge, 0, len(acc))
	for k, s := range acc {
		edges = append(edges, pairEdge{a: int(k >> 32), b: int(k & 0xFFFFFFFF), sim: s})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	return edges
}

// linkInfo tracks the object-level pair-similarity aggregate between two
// live clusters, sufficient to evaluate any of the three linkages.
type linkInfo struct {
	sumSim float64 // Σ over cross object pairs of their similarity
	minSim float64
	maxSim float64
	pairs  int64 // number of cross object pairs with nonzero similarity
}

func (li linkInfo) value(l Linkage, sizeA, sizeB int64) float64 {
	switch l {
	case Single:
		return li.maxSim
	case Complete:
		// Pairs with zero similarity drag the minimum to zero.
		if li.pairs < sizeA*sizeB {
			return 0
		}
		return li.minSim
	default: // Average: zero-sim pairs count in the denominator.
		return li.sumSim / float64(sizeA*sizeB)
	}
}

func mergeLink(x, y linkInfo) linkInfo {
	out := linkInfo{
		sumSim: x.sumSim + y.sumSim,
		pairs:  x.pairs + y.pairs,
		minSim: x.minSim,
		maxSim: x.maxSim,
	}
	if y.minSim < out.minSim {
		out.minSim = y.minSim
	}
	if y.maxSim > out.maxSim {
		out.maxSim = y.maxSim
	}
	return out
}

// candidate is a heap entry proposing to merge clusters a and b. The
// indices and versions are int32 — atom counts and merge counts both fit
// comfortably — so a candidate packs into 24 bytes instead of 40, which at
// ~10^6 heap entries is the difference between the heap fitting in cache
// or not (and a 40% cut in its backing-array bytes).
type candidate struct {
	sim        float64
	a, b       int32
	verA, verB int32 // cluster versions at proposal time (lazy invalidation)
}

// candHeap is a hand-rolled max-heap on (sim, a, b); avoiding
// container/heap's interface boxing matters at ~10^6 candidates.
type candHeap []candidate

func candLess(x, y candidate) bool {
	if x.sim != y.sim {
		return x.sim > y.sim
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

func (h *candHeap) push(c candidate) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *candHeap) pop() candidate {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && candLess(s[l], s[best]) {
			best = l
		}
		if r < n && candLess(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// liveCluster is one active cluster during agglomeration.
type liveCluster struct {
	alive     bool
	version   int32
	atoms     []int // member atom indices
	objects   int64 // object count
	bytes     int64
	reqBits   []uint64 // bitset over request IDs touched by any member
	cohesion  float64  // linkage value of the last merge
	neighbors map[int]linkInfo
}

func agglomerate(w *model.Workload, atoms []atom, cfg Config) []Cluster {
	nReq := len(w.Requests)
	words := (nReq + 63) / 64
	edges := buildEdges(w, atoms)
	// Pre-count adjacency degrees so every neighbor map is born at its
	// final initial size: growing thousands of small maps insert-by-insert
	// was the single largest allocation source in clustering.
	degree := make([]int, len(atoms))
	for _, e := range edges {
		degree[e.a]++
		degree[e.b]++
	}
	// One arena for the cluster structs and one for all request bitsets —
	// 2 allocations in place of 2·len(atoms).
	arena := make([]liveCluster, len(atoms))
	bits := make([]uint64, words*len(atoms))
	clusters := make([]*liveCluster, len(atoms))
	for i, a := range atoms {
		c := &arena[i]
		*c = liveCluster{
			alive:     true,
			atoms:     []int{i},
			objects:   int64(len(a.objects)),
			bytes:     a.bytes,
			reqBits:   bits[i*words : (i+1)*words : (i+1)*words],
			cohesion:  math.Inf(1),
			neighbors: make(map[int]linkInfo, degree[i]),
		}
		for _, r := range a.reqs {
			c.reqBits[int(r)/64] |= 1 << (uint(r) % 64)
		}
		clusters[i] = c
	}

	// Union-find so stale heap entries can be retargeted to the clusters
	// that absorbed their endpoints.
	parent := make([]int, len(atoms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// The heap sees at most one initial proposal per edge plus lazy
	// refreshes; starting at edge capacity removes nearly all regrowth.
	h := make(candHeap, 0, len(edges))
	// push proposes merging live clusters a and b if their current linkage
	// clears the threshold and the caps allow the union.
	push := func(a, b int) {
		if a == b {
			return
		}
		ca, cb := clusters[a], clusters[b]
		li, ok := ca.neighbors[b]
		if !ok {
			return
		}
		sim := li.value(cfg.Linkage, ca.objects, cb.objects)
		if sim < cfg.Threshold {
			return
		}
		if cfg.MaxObjects > 0 && ca.objects+cb.objects > int64(cfg.MaxObjects) {
			return
		}
		if cfg.MaxBytes > 0 && ca.bytes+cb.bytes > cfg.MaxBytes {
			return
		}
		h.push(candidate{sim: sim, a: int32(a), b: int32(b), verA: ca.version, verB: cb.version})
	}

	for _, e := range edges {
		ca, cb := clusters[e.a], clusters[e.b]
		li := linkInfo{
			sumSim: e.sim * float64(ca.objects*cb.objects),
			minSim: e.sim,
			maxSim: e.sim,
			pairs:  ca.objects * cb.objects,
		}
		ca.neighbors[e.b] = li
		cb.neighbors[e.a] = li
		push(e.a, e.b)
	}

	// keys is reused across merges for the deterministic adjacency fold.
	var keys []int
	for len(h) > 0 {
		c := h.pop()
		a, b := find(int(c.a)), find(int(c.b))
		if a == b {
			continue
		}
		ca, cb := clusters[a], clusters[b]
		if a != int(c.a) || b != int(c.b) || ca.version != c.verA || cb.version != c.verB {
			// Stale: the endpoints merged or changed since this proposal.
			// Re-evaluate the surviving pair lazily (no proactive fan-out
			// after merges keeps the heap small).
			if a > b {
				a, b = b, a
			}
			push(a, b)
			continue
		}
		// Merge the smaller adjacency into the larger.
		if len(cb.neighbors) > len(ca.neighbors) {
			a, b = b, a
			ca, cb = cb, ca
		}
		parent[b] = a
		ca.version++
		ca.atoms = append(ca.atoms, cb.atoms...)
		ca.objects += cb.objects
		ca.bytes += cb.bytes
		for wi := range ca.reqBits {
			ca.reqBits[wi] |= cb.reqBits[wi]
		}
		ca.cohesion = c.sim
		cb.alive = false
		delete(ca.neighbors, b)
		delete(cb.neighbors, a)
		// Fold b's adjacency into a's, deterministically.
		keys = keys[:0]
		for k := range cb.neighbors {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			li := cb.neighbors[k]
			if prev, ok := ca.neighbors[k]; ok {
				li = mergeLink(prev, li)
			}
			ca.neighbors[k] = li
			delete(clusters[k].neighbors, b)
			clusters[k].neighbors[a] = li
			// Propose the refreshed pair once; further refreshes happen
			// lazily when stale entries surface.
			if clusters[k].alive {
				if a < k {
					push(a, k)
				} else {
					push(k, a)
				}
			}
		}
		cb.neighbors = nil
	}

	// Materialize clusters.
	var out []Cluster
	for _, c := range clusters {
		if !c.alive {
			continue
		}
		cl := Cluster{Bytes: c.bytes, Cohesion: c.cohesion,
			Objects: make([]model.ObjectID, 0, c.objects)}
		for _, ai := range c.atoms {
			cl.Objects = append(cl.Objects, atoms[ai].objects...)
		}
		sort.Slice(cl.Objects, func(i, j int) bool { return cl.Objects[i] < cl.Objects[j] })
		for ri := range w.Requests {
			if c.reqBits[ri/64]&(1<<(uint(ri)%64)) != 0 {
				cl.Prob += w.Requests[ri].Prob
			}
		}
		out = append(out, cl)
	}
	return out
}

// Summary describes a clustering result for reports.
type Summary struct {
	NumClusters   int
	NumSingletons int
	MaxObjects    int
	MeanObjects   float64
	TotalBytes    int64
	Unreferenced  int
}

// Summarize computes result statistics.
func (r *Result) Summarize() Summary {
	s := Summary{NumClusters: len(r.Clusters), Unreferenced: len(r.Unreferenced)}
	total := 0
	for _, c := range r.Clusters {
		n := len(c.Objects)
		total += n
		if n == 1 {
			s.NumSingletons++
		}
		if n > s.MaxObjects {
			s.MaxObjects = n
		}
		s.TotalBytes += c.Bytes
	}
	if len(r.Clusters) > 0 {
		s.MeanObjects = float64(total) / float64(len(r.Clusters))
	}
	return s
}

// Validate checks that the result partitions the referenced objects of w:
// every object appears exactly once across clusters + unreferenced.
func (r *Result) Validate(w *model.Workload) error {
	seen := make([]bool, w.NumObjects())
	mark := func(id model.ObjectID) error {
		if int(id) < 0 || int(id) >= len(seen) {
			return fmt.Errorf("cluster: unknown object %d in result", id)
		}
		if seen[id] {
			return fmt.Errorf("cluster: object %d appears twice in result", id)
		}
		seen[id] = true
		return nil
	}
	for _, c := range r.Clusters {
		if len(c.Objects) == 0 {
			return fmt.Errorf("cluster: empty cluster in result")
		}
		var bytes int64
		for _, id := range c.Objects {
			if err := mark(id); err != nil {
				return err
			}
			bytes += w.Objects[id].Size
		}
		if bytes != c.Bytes {
			return fmt.Errorf("cluster: byte count mismatch (%d vs %d)", bytes, c.Bytes)
		}
	}
	for _, id := range r.Unreferenced {
		if err := mark(id); err != nil {
			return err
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("cluster: object %d missing from result", i)
		}
	}
	return nil
}
