package cluster

import (
	"testing"

	"paralleltape/internal/rng"
	"paralleltape/internal/workload"
)

// TestRunAllocBudget pins the steady-state allocation count of Run: with
// the scratch pool warm, a run allocates only its result (the Result
// struct, the cluster slice, one object arena, and the unreferenced list)
// — a constant handful, independent of workload size. The pre-rework
// implementation allocated per atom, per edge, and per merge (tens of
// thousands at paper scale).
func TestRunAllocBudget(t *testing.T) {
	p := workload.Defaults()
	p.NumObjects = 600
	p.NumRequests = 40
	p.MinReqLen = 5
	p.MaxReqLen = 15
	w, err := workload.Generate(p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if _, err := Run(w, cfg); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		if _, err := Run(w, cfg); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 16 // measured ~5; slack for runtime noise
	if n > budget {
		t.Fatalf("Run allocates %.0f/run after warm-up, budget %d", n, budget)
	}
}
