// Package catalog implements the simulator's indexing database (§6): given
// a request it resolves which cartridges hold the requested objects and at
// which byte positions, so the scheduler can plan tape mounts and
// seek-optimal reads. It also validates that a placement covers every
// object exactly once — the structural contract every placement scheme
// must satisfy.
package catalog

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"slices"

	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

// Location records where one object lives.
type Location struct {
	Tape   tape.Key
	Extent tape.Extent
}

// Catalog is the object→location index plus per-cartridge layouts.
type Catalog struct {
	numObjects int
	locs       []Location // dense, indexed by ObjectID
	present    []bool
	layouts    map[tape.Key]*tape.Layout
}

// New returns an empty catalog sized for numObjects objects.
func New(numObjects int) *Catalog {
	return &Catalog{
		numObjects: numObjects,
		locs:       make([]Location, numObjects),
		present:    make([]bool, numObjects),
		layouts:    make(map[tape.Key]*tape.Layout),
	}
}

// AddLayout registers a finished cartridge layout, indexing every extent.
// It fails on a duplicate cartridge or an object already indexed elsewhere.
func (c *Catalog) AddLayout(l *tape.Layout) error {
	k := l.Key()
	if _, dup := c.layouts[k]; dup {
		return fmt.Errorf("catalog: cartridge %s registered twice", k)
	}
	for _, e := range l.Extents() {
		if int(e.Object) < 0 || int(e.Object) >= c.numObjects {
			return fmt.Errorf("catalog: cartridge %s stores unknown object %d", k, e.Object)
		}
		if c.present[e.Object] {
			prev := c.locs[e.Object]
			return fmt.Errorf("catalog: object %d on both %s and %s", e.Object, prev.Tape, k)
		}
		c.present[e.Object] = true
		c.locs[e.Object] = Location{Tape: k, Extent: e}
	}
	c.layouts[k] = l
	return nil
}

// Lookup returns the location of object id.
func (c *Catalog) Lookup(id model.ObjectID) (Location, bool) {
	if int(id) < 0 || int(id) >= c.numObjects || !c.present[id] {
		return Location{}, false
	}
	return c.locs[id], true
}

// Layout returns the layout of cartridge k, if registered.
func (c *Catalog) Layout(k tape.Key) (*tape.Layout, bool) {
	l, ok := c.layouts[k]
	return l, ok
}

// Tapes returns the registered cartridge keys sorted by (library, index).
func (c *Catalog) Tapes() []tape.Key {
	keys := make([]tape.Key, 0, len(c.layouts))
	for k := range c.layouts {
		keys = append(keys, k)
	}
	// Keys are unique, so (Library, Index) is a total order and the
	// unstable slices.SortFunc is deterministic.
	slices.SortFunc(keys, func(a, b tape.Key) int {
		if a.Library != b.Library {
			return a.Library - b.Library
		}
		return a.Index - b.Index
	})
	return keys
}

// NumPlaced returns how many objects have a location.
func (c *Catalog) NumPlaced() int {
	n := 0
	for _, p := range c.present {
		if p {
			n++
		}
	}
	return n
}

// TapeGroup is the portion of one request living on one cartridge.
type TapeGroup struct {
	Tape    tape.Key
	Extents []tape.Extent
	Bytes   int64
}

// GroupRequest resolves a request into per-cartridge groups, sorted by
// cartridge key (deterministic scheduling input). It fails if any object
// is unplaced.
func (c *Catalog) GroupRequest(r *model.Request) ([]TapeGroup, error) {
	byTape := make(map[tape.Key]*TapeGroup)
	for _, id := range r.Objects {
		loc, ok := c.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("catalog: request %d needs unplaced object %d", r.ID, id)
		}
		g := byTape[loc.Tape]
		if g == nil {
			g = &TapeGroup{Tape: loc.Tape}
			byTape[loc.Tape] = g
		}
		g.Extents = append(g.Extents, loc.Extent)
		g.Bytes += loc.Extent.Size
	}
	groups := make([]TapeGroup, 0, len(byTape))
	for _, g := range byTape {
		// Starts are unique per cartridge: total order, unstable sort OK.
		slices.SortFunc(g.Extents, func(a, b tape.Extent) int {
			return cmp.Compare(a.Start, b.Start)
		})
		groups = append(groups, *g)
	}
	slices.SortFunc(groups, func(a, b TapeGroup) int {
		if a.Tape.Library != b.Tape.Library {
			return a.Tape.Library - b.Tape.Library
		}
		return a.Tape.Index - b.Tape.Index
	})
	return groups, nil
}

// Grouper resolves requests into per-cartridge groups with reusable
// scratch. It produces output identical to Catalog.GroupRequest — same
// groups, same ordering — but amortizes all bookkeeping across calls: the
// per-group extent slices are carved out of one shared arena, so a caller
// that issues many requests (the simulator's Submit hot path) performs no
// steady-state allocations here. The returned slice and everything it
// references are owned by the Grouper and valid only until the next Group
// call. A Grouper is not safe for concurrent use.
type Grouper struct {
	c      *Catalog
	groups []TapeGroup
	counts []int
	gidx   []int32       // per-object group index, avoids a second map lookup
	exts   []tape.Extent // per-object extent, avoids a second catalog lookup
	arena  []tape.Extent
	keys   []uint64    // packed (slot, group index) sort keys
	sorted []TapeGroup // key-ordered permutation of groups, the returned slice

	// Dense cartridge→group index, replacing the map the old Grouper
	// hashed on every object: a cartridge key flattens to
	// Library·tapesPer + Index, slot holds its group index for the current
	// request, and stamp says which request (generation) the slot belongs
	// to — bumping gen invalidates the whole table in O(1), so there is no
	// per-request clear and no hashing on the Submit hot path.
	slots    []int32
	stamp    []uint32
	gen      uint32
	tapesPer int
}

// NewGrouper returns a Grouper over c.
func NewGrouper(c *Catalog) *Grouper {
	maxLib, maxIdx := 0, 0
	for k := range c.layouts {
		if k.Library >= maxLib {
			maxLib = k.Library + 1
		}
		if k.Index >= maxIdx {
			maxIdx = k.Index + 1
		}
	}
	n := maxLib * maxIdx
	return &Grouper{
		c:        c,
		slots:    make([]int32, n),
		stamp:    make([]uint32, n),
		tapesPer: maxIdx,
	}
}

// Group is GroupRequest with scratch reuse; see the Grouper doc comment for
// the aliasing contract.
func (gr *Grouper) Group(r *model.Request) ([]TapeGroup, error) {
	c := gr.c
	gr.gen++
	if gr.gen == 0 { // generation counter wrapped: really clear once
		clear(gr.stamp)
		gr.gen = 1
	}
	gen, slots, stamp := gr.gen, gr.slots, gr.stamp
	groups := gr.groups[:0]
	counts := gr.counts[:0]
	gidx := gr.gidx[:0]
	exts := gr.exts[:0]
	for _, id := range r.Objects {
		// Inlined Catalog.Lookup, by pointer: copying the Location struct per
		// object is measurable at Submit-hot-path call rates.
		if uint(int(id)) >= uint(len(c.locs)) || !c.present[id] {
			gr.groups, gr.counts, gr.gidx, gr.exts = groups, counts, gidx, exts
			return nil, fmt.Errorf("catalog: request %d needs unplaced object %d", r.ID, id)
		}
		loc := &c.locs[id]
		// Every placed object's key came from a registered layout, so the
		// flattened slot is always in range.
		slot := loc.Tape.Library*gr.tapesPer + loc.Tape.Index
		var gi int32
		if stamp[slot] == gen {
			gi = slots[slot]
		} else {
			gi = int32(len(groups))
			stamp[slot] = gen
			slots[slot] = gi
			groups = append(groups, TapeGroup{Tape: loc.Tape})
			counts = append(counts, 0)
		}
		counts[gi]++
		groups[gi].Bytes += loc.Extent.Size
		gidx = append(gidx, gi)
		exts = append(exts, loc.Extent)
	}
	// Carve per-group extent slices out of the shared arena at their final
	// lengths, then scatter the extents through per-group write cursors
	// (counts doubles as the cursor array) — direct indexed stores instead of
	// a slice-header read-modify-write per extent.
	if cap(gr.arena) < len(r.Objects) {
		gr.arena = make([]tape.Extent, 0, len(r.Objects))
	}
	arena := gr.arena[:0]
	off := 0
	for gi := range groups {
		n := counts[gi]
		groups[gi].Extents = arena[off : off+n : off+n]
		counts[gi] = off
		off += n
	}
	arena = arena[:off]
	for i := range exts {
		gi := gidx[i]
		arena[counts[gi]] = exts[i]
		counts[gi]++
	}
	for gi := range groups {
		// Starts are unique per cartridge, so any correct sort yields the
		// same order GroupRequest's sort.Slice did.
		sortExtentsByStart(groups[gi].Extents)
	}
	out := gr.sortGroups(groups)
	gr.groups, gr.counts, gr.gidx, gr.exts, gr.arena = groups, counts, gidx, exts, arena
	return out, nil
}

// sortGroups returns the groups ordered by (library, index). The flattened
// slot — library·tapesPer + index — preserves that lexicographic order, so
// sorting packed slot<<32|group-index words and permuting once moves 8-byte
// keys instead of shuffling 48-byte TapeGroup structs; cartridge keys are
// unique within a request, so every correct sort agrees on the result. The
// returned slice is Grouper-owned scratch, like everything else Group hands
// out.
func (gr *Grouper) sortGroups(groups []TapeGroup) []TapeGroup {
	n := len(groups)
	if n <= 1 {
		return groups
	}
	keys := gr.keys[:0]
	for gi := range groups {
		k := groups[gi].Tape
		keys = append(keys, uint64(k.Library*gr.tapesPer+k.Index)<<32|uint64(gi))
	}
	gr.keys = keys
	if n <= 32 {
		for i := 1; i < n; i++ {
			k := keys[i]
			j := i - 1
			for j >= 0 && keys[j] > k {
				keys[j+1] = keys[j]
				j--
			}
			keys[j+1] = k
		}
	} else {
		slices.Sort(keys) // slots are unique, so the packed words are too
	}
	if cap(gr.sorted) < n {
		gr.sorted = make([]TapeGroup, 0, max(n, 2*cap(gr.sorted)))
	}
	out := gr.sorted[:n]
	for i, k := range keys {
		out[i] = groups[uint32(k)]
	}
	return out
}

// sortExtentsByStart orders extents by ascending start. Starts are unique on
// one cartridge, so the order is a total order and every correct sort agrees
// on it; the direct insertion sort avoids the generic sort machinery (and
// its per-compare closure calls) for the small, nearly-sorted groups the
// Submit hot path produces, falling back to the library sort for large ones.
func sortExtentsByStart(s []tape.Extent) {
	// Groups assemble in object order, which placement schemes lay out along
	// the tape, so most groups arrive already sorted: confirm with a
	// read-only scan before dirtying any cache lines.
	sortedAlready := true
	for i := 1; i < len(s); i++ {
		if s[i].Start < s[i-1].Start {
			sortedAlready = false
			break
		}
	}
	if sortedAlready {
		return
	}
	if len(s) > 32 {
		slices.SortFunc(s, func(a, b tape.Extent) int {
			if a.Start < b.Start {
				return -1
			}
			if a.Start > b.Start {
				return 1
			}
			return 0
		})
		return
	}
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && s[j].Start > e.Start {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// Validate checks that the catalog covers the workload completely and that
// every layout is internally consistent and within capacity, and that no
// cartridge key exceeds the hardware geometry.
func (c *Catalog) Validate(w *model.Workload, hw tape.Hardware) error {
	if c.numObjects != w.NumObjects() {
		return fmt.Errorf("catalog: sized for %d objects, workload has %d", c.numObjects, w.NumObjects())
	}
	for i := range w.Objects {
		if !c.present[i] {
			return fmt.Errorf("catalog: object %d not placed", i)
		}
		if got, want := c.locs[i].Extent.Size, w.Objects[i].Size; got != want {
			return fmt.Errorf("catalog: object %d placed with size %d, workload says %d", i, got, want)
		}
	}
	for k, l := range c.layouts {
		if k.Library < 0 || k.Library >= hw.Libraries {
			return fmt.Errorf("catalog: cartridge %s outside %d libraries", k, hw.Libraries)
		}
		if k.Index < 0 || k.Index >= hw.TapesPerLib {
			return fmt.Errorf("catalog: cartridge %s outside %d slots", k, hw.TapesPerLib)
		}
		if err := l.Validate(hw.Capacity); err != nil {
			return err
		}
	}
	return nil
}

// snapshot is the JSON wire form of the catalog.
type snapshot struct {
	NumObjects int            `json:"num_objects"`
	Tapes      []tapeSnapshot `json:"tapes"`
}

type tapeSnapshot struct {
	Library int            `json:"library"`
	Index   int            `json:"index"`
	Extents []extentRecord `json:"extents"`
}

type extentRecord struct {
	Object model.ObjectID `json:"object"`
	Start  int64          `json:"start"`
	Size   int64          `json:"size"`
}

// WriteJSON serializes the catalog (the paper's "indexing database" on
// disk) for offline inspection.
func (c *Catalog) WriteJSON(out io.Writer) error {
	snap := snapshot{NumObjects: c.numObjects}
	for _, k := range c.Tapes() {
		l := c.layouts[k]
		ts := tapeSnapshot{Library: k.Library, Index: k.Index}
		for _, e := range l.Extents() {
			ts.Extents = append(ts.Extents, extentRecord{Object: e.Object, Start: e.Start, Size: e.Size})
		}
		snap.Tapes = append(snap.Tapes, ts)
	}
	return json.NewEncoder(out).Encode(&snap)
}

// ReadJSON rebuilds a catalog written by WriteJSON.
func ReadJSON(in io.Reader) (*Catalog, error) {
	var snap snapshot
	if err := json.NewDecoder(in).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: decoding: %w", err)
	}
	c := New(snap.NumObjects)
	for _, ts := range snap.Tapes {
		l := tape.NewLayout(tape.Key{Library: ts.Library, Index: ts.Index})
		for _, e := range ts.Extents {
			// Reconstruct via Append to re-establish layout invariants;
			// extents were serialized in tape order so Start must line up.
			got, err := l.Append(e.Object, e.Size, 1<<62)
			if err != nil {
				return nil, err
			}
			if got.Start != e.Start {
				return nil, fmt.Errorf("catalog: cartridge L%d.T%d has non-contiguous extents", ts.Library, ts.Index)
			}
		}
		if err := c.AddLayout(l); err != nil {
			return nil, err
		}
	}
	return c, nil
}
