// Package catalog implements the simulator's indexing database (§6): given
// a request it resolves which cartridges hold the requested objects and at
// which byte positions, so the scheduler can plan tape mounts and
// seek-optimal reads. It also validates that a placement covers every
// object exactly once — the structural contract every placement scheme
// must satisfy.
package catalog

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"slices"

	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

// Location records where one object lives.
type Location struct {
	Tape   tape.Key
	Extent tape.Extent
}

// Catalog is the object→location index plus per-cartridge layouts.
type Catalog struct {
	numObjects int
	locs       []Location // dense, indexed by ObjectID
	present    []bool
	layouts    map[tape.Key]*tape.Layout
}

// New returns an empty catalog sized for numObjects objects.
func New(numObjects int) *Catalog {
	return &Catalog{
		numObjects: numObjects,
		locs:       make([]Location, numObjects),
		present:    make([]bool, numObjects),
		layouts:    make(map[tape.Key]*tape.Layout),
	}
}

// AddLayout registers a finished cartridge layout, indexing every extent.
// It fails on a duplicate cartridge or an object already indexed elsewhere.
func (c *Catalog) AddLayout(l *tape.Layout) error {
	k := l.Key()
	if _, dup := c.layouts[k]; dup {
		return fmt.Errorf("catalog: cartridge %s registered twice", k)
	}
	for _, e := range l.Extents() {
		if int(e.Object) < 0 || int(e.Object) >= c.numObjects {
			return fmt.Errorf("catalog: cartridge %s stores unknown object %d", k, e.Object)
		}
		if c.present[e.Object] {
			prev := c.locs[e.Object]
			return fmt.Errorf("catalog: object %d on both %s and %s", e.Object, prev.Tape, k)
		}
		c.present[e.Object] = true
		c.locs[e.Object] = Location{Tape: k, Extent: e}
	}
	c.layouts[k] = l
	return nil
}

// Lookup returns the location of object id.
func (c *Catalog) Lookup(id model.ObjectID) (Location, bool) {
	if int(id) < 0 || int(id) >= c.numObjects || !c.present[id] {
		return Location{}, false
	}
	return c.locs[id], true
}

// Layout returns the layout of cartridge k, if registered.
func (c *Catalog) Layout(k tape.Key) (*tape.Layout, bool) {
	l, ok := c.layouts[k]
	return l, ok
}

// Tapes returns the registered cartridge keys sorted by (library, index).
func (c *Catalog) Tapes() []tape.Key {
	keys := make([]tape.Key, 0, len(c.layouts))
	for k := range c.layouts {
		keys = append(keys, k)
	}
	// Keys are unique, so (Library, Index) is a total order and the
	// unstable slices.SortFunc is deterministic.
	slices.SortFunc(keys, func(a, b tape.Key) int {
		if a.Library != b.Library {
			return a.Library - b.Library
		}
		return a.Index - b.Index
	})
	return keys
}

// NumPlaced returns how many objects have a location.
func (c *Catalog) NumPlaced() int {
	n := 0
	for _, p := range c.present {
		if p {
			n++
		}
	}
	return n
}

// TapeGroup is the portion of one request living on one cartridge.
type TapeGroup struct {
	Tape    tape.Key
	Extents []tape.Extent
	Bytes   int64
}

// GroupRequest resolves a request into per-cartridge groups, sorted by
// cartridge key (deterministic scheduling input). It fails if any object
// is unplaced.
func (c *Catalog) GroupRequest(r *model.Request) ([]TapeGroup, error) {
	byTape := make(map[tape.Key]*TapeGroup)
	for _, id := range r.Objects {
		loc, ok := c.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("catalog: request %d needs unplaced object %d", r.ID, id)
		}
		g := byTape[loc.Tape]
		if g == nil {
			g = &TapeGroup{Tape: loc.Tape}
			byTape[loc.Tape] = g
		}
		g.Extents = append(g.Extents, loc.Extent)
		g.Bytes += loc.Extent.Size
	}
	groups := make([]TapeGroup, 0, len(byTape))
	for _, g := range byTape {
		// Starts are unique per cartridge: total order, unstable sort OK.
		slices.SortFunc(g.Extents, func(a, b tape.Extent) int {
			return cmp.Compare(a.Start, b.Start)
		})
		groups = append(groups, *g)
	}
	slices.SortFunc(groups, func(a, b TapeGroup) int {
		if a.Tape.Library != b.Tape.Library {
			return a.Tape.Library - b.Tape.Library
		}
		return a.Tape.Index - b.Tape.Index
	})
	return groups, nil
}

// Grouper resolves requests into per-cartridge groups with reusable
// scratch. It produces output identical to Catalog.GroupRequest — same
// groups, same ordering — but amortizes all bookkeeping across calls: the
// per-group extent slices are carved out of one shared arena, so a caller
// that issues many requests (the simulator's Submit hot path) performs no
// steady-state allocations here. The returned slice and everything it
// references are owned by the Grouper and valid only until the next Group
// call. A Grouper is not safe for concurrent use.
type Grouper struct {
	c      *Catalog
	groups []TapeGroup
	counts []int
	gidx   []int32 // per-object group index, avoids a second map lookup
	idx    map[tape.Key]int32
	arena  []tape.Extent
}

// NewGrouper returns a Grouper over c.
func NewGrouper(c *Catalog) *Grouper {
	return &Grouper{c: c, idx: make(map[tape.Key]int32)}
}

// Group is GroupRequest with scratch reuse; see the Grouper doc comment for
// the aliasing contract.
func (gr *Grouper) Group(r *model.Request) ([]TapeGroup, error) {
	c := gr.c
	clear(gr.idx)
	groups := gr.groups[:0]
	counts := gr.counts[:0]
	gidx := gr.gidx[:0]
	for _, id := range r.Objects {
		loc, ok := c.Lookup(id)
		if !ok {
			gr.groups, gr.counts, gr.gidx = groups, counts, gidx
			return nil, fmt.Errorf("catalog: request %d needs unplaced object %d", r.ID, id)
		}
		gi, seen := gr.idx[loc.Tape]
		if !seen {
			gi = int32(len(groups))
			gr.idx[loc.Tape] = gi
			groups = append(groups, TapeGroup{Tape: loc.Tape})
			counts = append(counts, 0)
		}
		counts[gi]++
		groups[gi].Bytes += loc.Extent.Size
		gidx = append(gidx, gi)
	}
	// Carve per-group extent slices out of the shared arena. Three-index
	// slicing caps each group at its exact count, so the appends below can
	// never spill into a neighbour.
	if cap(gr.arena) < len(r.Objects) {
		gr.arena = make([]tape.Extent, 0, len(r.Objects))
	}
	arena := gr.arena[:0]
	off := 0
	for gi := range groups {
		groups[gi].Extents = arena[off : off : off+counts[gi]]
		off += counts[gi]
	}
	for i, id := range r.Objects {
		loc, _ := c.Lookup(id)
		g := &groups[gidx[i]]
		g.Extents = append(g.Extents, loc.Extent)
	}
	for gi := range groups {
		// Starts are unique per cartridge, so the unstable sort yields the
		// same order GroupRequest's sort.Slice did.
		slices.SortFunc(groups[gi].Extents, func(a, b tape.Extent) int {
			if a.Start < b.Start {
				return -1
			}
			if a.Start > b.Start {
				return 1
			}
			return 0
		})
	}
	slices.SortFunc(groups, func(a, b TapeGroup) int {
		if a.Tape.Library != b.Tape.Library {
			return a.Tape.Library - b.Tape.Library
		}
		return a.Tape.Index - b.Tape.Index
	})
	gr.groups, gr.counts, gr.gidx, gr.arena = groups, counts, gidx, arena
	return groups, nil
}

// Validate checks that the catalog covers the workload completely and that
// every layout is internally consistent and within capacity, and that no
// cartridge key exceeds the hardware geometry.
func (c *Catalog) Validate(w *model.Workload, hw tape.Hardware) error {
	if c.numObjects != w.NumObjects() {
		return fmt.Errorf("catalog: sized for %d objects, workload has %d", c.numObjects, w.NumObjects())
	}
	for i := range w.Objects {
		if !c.present[i] {
			return fmt.Errorf("catalog: object %d not placed", i)
		}
		if got, want := c.locs[i].Extent.Size, w.Objects[i].Size; got != want {
			return fmt.Errorf("catalog: object %d placed with size %d, workload says %d", i, got, want)
		}
	}
	for k, l := range c.layouts {
		if k.Library < 0 || k.Library >= hw.Libraries {
			return fmt.Errorf("catalog: cartridge %s outside %d libraries", k, hw.Libraries)
		}
		if k.Index < 0 || k.Index >= hw.TapesPerLib {
			return fmt.Errorf("catalog: cartridge %s outside %d slots", k, hw.TapesPerLib)
		}
		if err := l.Validate(hw.Capacity); err != nil {
			return err
		}
	}
	return nil
}

// snapshot is the JSON wire form of the catalog.
type snapshot struct {
	NumObjects int            `json:"num_objects"`
	Tapes      []tapeSnapshot `json:"tapes"`
}

type tapeSnapshot struct {
	Library int            `json:"library"`
	Index   int            `json:"index"`
	Extents []extentRecord `json:"extents"`
}

type extentRecord struct {
	Object model.ObjectID `json:"object"`
	Start  int64          `json:"start"`
	Size   int64          `json:"size"`
}

// WriteJSON serializes the catalog (the paper's "indexing database" on
// disk) for offline inspection.
func (c *Catalog) WriteJSON(out io.Writer) error {
	snap := snapshot{NumObjects: c.numObjects}
	for _, k := range c.Tapes() {
		l := c.layouts[k]
		ts := tapeSnapshot{Library: k.Library, Index: k.Index}
		for _, e := range l.Extents() {
			ts.Extents = append(ts.Extents, extentRecord{Object: e.Object, Start: e.Start, Size: e.Size})
		}
		snap.Tapes = append(snap.Tapes, ts)
	}
	return json.NewEncoder(out).Encode(&snap)
}

// ReadJSON rebuilds a catalog written by WriteJSON.
func ReadJSON(in io.Reader) (*Catalog, error) {
	var snap snapshot
	if err := json.NewDecoder(in).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: decoding: %w", err)
	}
	c := New(snap.NumObjects)
	for _, ts := range snap.Tapes {
		l := tape.NewLayout(tape.Key{Library: ts.Library, Index: ts.Index})
		for _, e := range ts.Extents {
			// Reconstruct via Append to re-establish layout invariants;
			// extents were serialized in tape order so Start must line up.
			got, err := l.Append(e.Object, e.Size, 1<<62)
			if err != nil {
				return nil, err
			}
			if got.Start != e.Start {
				return nil, fmt.Errorf("catalog: cartridge L%d.T%d has non-contiguous extents", ts.Library, ts.Index)
			}
		}
		if err := c.AddLayout(l); err != nil {
			return nil, err
		}
	}
	return c, nil
}
