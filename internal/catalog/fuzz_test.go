package catalog

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks the catalog reader never panics and only accepts
// catalogs whose layouts are contiguous and non-overlapping.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"num_objects":2,"tapes":[{"library":0,"index":0,"extents":[{"object":0,"start":0,"size":5},{"object":1,"start":5,"size":3}]}]}`))
	f.Add([]byte(`{"num_objects":1,"tapes":[{"library":0,"index":0,"extents":[{"object":0,"start":9,"size":5}]}]}`))
	f.Add([]byte(`{"num_objects":1,"tapes":[{"library":0,"index":0,"extents":[{"object":0,"start":0,"size":-5}]}]}`))
	f.Add([]byte(`nope`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted catalogs must round-trip.
		var out bytes.Buffer
		if err := c.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		c2, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if c2.NumPlaced() != c.NumPlaced() {
			t.Fatalf("round trip changed placement count: %d vs %d", c.NumPlaced(), c2.NumPlaced())
		}
	})
}
