package catalog

import (
	"bytes"
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/tape"
)

func hw() tape.Hardware {
	h := tape.DefaultHardware()
	h.Capacity = 1000
	h.TapesPerLib = 4
	h.DrivesPerLib = 2
	h.Libraries = 2
	return h
}

// build places objects {0:100, 1:200, 2:300, 3:150} on two cartridges.
func build(t *testing.T) *Catalog {
	t.Helper()
	c := New(4)
	l0 := tape.NewLayout(tape.Key{Library: 0, Index: 0})
	mustAppend(t, l0, 0, 100)
	mustAppend(t, l0, 1, 200)
	l1 := tape.NewLayout(tape.Key{Library: 1, Index: 2})
	mustAppend(t, l1, 2, 300)
	mustAppend(t, l1, 3, 150)
	if err := c.AddLayout(l0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLayout(l1); err != nil {
		t.Fatal(err)
	}
	return c
}

func mustAppend(t *testing.T, l *tape.Layout, id model.ObjectID, size int64) {
	t.Helper()
	if _, err := l.Append(id, size, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestLookup(t *testing.T) {
	c := build(t)
	loc, ok := c.Lookup(1)
	if !ok {
		t.Fatal("object 1 not found")
	}
	if loc.Tape != (tape.Key{Library: 0, Index: 0}) {
		t.Errorf("tape = %v", loc.Tape)
	}
	if loc.Extent.Start != 100 || loc.Extent.Size != 200 {
		t.Errorf("extent = %+v", loc.Extent)
	}
	if _, ok := c.Lookup(99); ok {
		t.Error("unknown object found")
	}
	if _, ok := c.Lookup(-1); ok {
		t.Error("negative object found")
	}
}

func TestNumPlacedAndTapes(t *testing.T) {
	c := build(t)
	if got := c.NumPlaced(); got != 4 {
		t.Errorf("NumPlaced = %d", got)
	}
	keys := c.Tapes()
	if len(keys) != 2 {
		t.Fatalf("Tapes = %v", keys)
	}
	if keys[0] != (tape.Key{Library: 0, Index: 0}) || keys[1] != (tape.Key{Library: 1, Index: 2}) {
		t.Errorf("tape order: %v", keys)
	}
	if _, ok := c.Layout(keys[1]); !ok {
		t.Error("Layout lookup failed")
	}
}

func TestAddLayoutRejectsDuplicateCartridge(t *testing.T) {
	c := build(t)
	if err := c.AddLayout(tape.NewLayout(tape.Key{Library: 0, Index: 0})); err == nil {
		t.Error("duplicate cartridge accepted")
	}
}

func TestAddLayoutRejectsDuplicateObject(t *testing.T) {
	c := build(t)
	l := tape.NewLayout(tape.Key{Library: 0, Index: 3})
	mustAppend(t, l, 0, 100) // object 0 already on L0.T0
	if err := c.AddLayout(l); err == nil {
		t.Error("object placed twice accepted")
	}
}

func TestAddLayoutRejectsUnknownObject(t *testing.T) {
	c := New(2)
	l := tape.NewLayout(tape.Key{})
	mustAppend(t, l, 7, 100)
	if err := c.AddLayout(l); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestGroupRequest(t *testing.T) {
	c := build(t)
	r := &model.Request{ID: 0, Prob: 1, Objects: []model.ObjectID{0, 2, 3}}
	groups, err := c.GroupRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Tape.Library != 0 || len(groups[0].Extents) != 1 || groups[0].Bytes != 100 {
		t.Errorf("group 0: %+v", groups[0])
	}
	if groups[1].Tape.Library != 1 || len(groups[1].Extents) != 2 || groups[1].Bytes != 450 {
		t.Errorf("group 1: %+v", groups[1])
	}
	// Extents within a group sorted by start.
	if groups[1].Extents[0].Start > groups[1].Extents[1].Start {
		t.Error("group extents unsorted")
	}
}

func TestGroupRequestUnplaced(t *testing.T) {
	c := New(5)
	r := &model.Request{ID: 0, Prob: 1, Objects: []model.ObjectID{4}}
	if _, err := c.GroupRequest(r); err == nil {
		t.Error("unplaced object grouped without error")
	}
}

func workload4() *model.Workload {
	return &model.Workload{
		Objects: []model.Object{
			{ID: 0, Size: 100}, {ID: 1, Size: 200}, {ID: 2, Size: 300}, {ID: 3, Size: 150},
		},
		Requests: []model.Request{
			{ID: 0, Prob: 1, Objects: []model.ObjectID{0, 1, 2, 3}},
		},
	}
}

func TestValidateComplete(t *testing.T) {
	c := build(t)
	if err := c.Validate(workload4(), hw()); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateDetectsMissingObject(t *testing.T) {
	c := New(4)
	l := tape.NewLayout(tape.Key{})
	mustAppend(t, l, 0, 100)
	if err := c.AddLayout(l); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(workload4(), hw()); err == nil {
		t.Error("incomplete placement accepted")
	}
}

func TestValidateDetectsSizeMismatch(t *testing.T) {
	c := New(4)
	l := tape.NewLayout(tape.Key{})
	mustAppend(t, l, 0, 999) // workload says 100
	mustAppend(t, l, 1, 1)
	l2 := tape.NewLayout(tape.Key{Index: 1})
	mustAppend(t, l2, 2, 300)
	mustAppend(t, l2, 3, 150)
	c.AddLayout(l)
	c.AddLayout(l2)
	if err := c.Validate(workload4(), hw()); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestValidateDetectsGeometryViolation(t *testing.T) {
	c := build(t)
	// hw with only 1 library: cartridge L1.T2 is out of range.
	h := hw()
	h.Libraries = 1
	if err := c.Validate(workload4(), h); err == nil {
		t.Error("out-of-range library accepted")
	}
	h2 := hw()
	h2.TapesPerLib = 2
	if err := c.Validate(workload4(), h2); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := build(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPlaced() != 4 {
		t.Errorf("NumPlaced after round trip = %d", got.NumPlaced())
	}
	loc, ok := got.Lookup(3)
	if !ok || loc.Tape != (tape.Key{Library: 1, Index: 2}) || loc.Extent.Start != 300 {
		t.Errorf("Lookup(3) after round trip = %+v, %v", loc, ok)
	}
	if err := got.Validate(workload4(), hw()); err != nil {
		t.Errorf("round-tripped catalog invalid: %v", err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadJSONRejectsNonContiguous(t *testing.T) {
	raw := `{"num_objects":1,"tapes":[{"library":0,"index":0,"extents":[{"object":0,"start":50,"size":10}]}]}`
	if _, err := ReadJSON(bytes.NewBufferString(raw)); err == nil {
		t.Error("non-contiguous extent accepted")
	}
}
