package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a log-bucketed streaming histogram in the HDR/DDSketch
// family: fixed memory, lock-free atomic updates, and quantile queries
// with a guaranteed relative-error bound.
//
// Buckets grow geometrically by γ = (1+α)/(1−α): bucket i covers the
// value interval (Min·γ^(i−1), Min·γ^i], and a quantile query returns the
// bucket's worst-case-optimal representative 2·Min·γ^i/(γ+1). For any
// observed value v with Min ≤ v ≤ Max this bounds the relative error:
//
//	|Quantile(q) − exact| / exact ≤ α
//
// where "exact" is the sample quantile at the same rank (rank =
// ⌈q·count⌉ over the sorted observations). The contract at the edges —
// shared with metrics.Histogram (see its Add contract):
//
//   - v == 0 is recorded exactly in a dedicated zero bucket;
//   - 0 < v < Min·γ^(-1) clamps into the first bucket, v > Max into the
//     last (counted, but the α bound no longer holds for them);
//   - NaN and negative observations are dropped and tallied in Dropped.
//
// The default α = 1% over [1e-9, 1e12] costs ~2.4k buckets (≈19 KiB) per
// histogram. Concurrent Observe/Quantile are safe; a quantile read during
// heavy concurrent writes sees a slightly torn but monotone snapshot.
type Histogram struct {
	alpha   float64
	gamma   float64
	lnGamma float64
	min     float64
	max     float64

	zero    atomic.Uint64
	dropped atomic.Uint64
	count   atomic.Uint64
	sum     FloatCounter
	buckets []atomic.Uint64
}

// HistogramOptions configures a Histogram; zero fields take defaults.
type HistogramOptions struct {
	// Alpha is the relative-error bound for quantile queries (default
	// 0.01, i.e. 1%). Must be in (0, 1).
	Alpha float64
	// Min is the smallest value resolved with the α guarantee (default
	// 1e-9); smaller positive values clamp into the first bucket.
	Min float64
	// Max is the largest value resolved with the α guarantee (default
	// 1e12); larger values clamp into the last bucket.
	Max float64
}

// DefaultSummaryQuantiles are the quantiles exposed for each histogram by
// the Prometheus and expvar handlers.
var DefaultSummaryQuantiles = []float64{0.5, 0.9, 0.99}

// NewHistogram builds a histogram; it panics on nonsensical options (a
// construction bug, like metrics.NewHistogram).
func NewHistogram(opt HistogramOptions) *Histogram {
	if opt.Alpha == 0 {
		opt.Alpha = 0.01
	}
	if opt.Min == 0 {
		opt.Min = 1e-9
	}
	if opt.Max == 0 {
		opt.Max = 1e12
	}
	if opt.Alpha <= 0 || opt.Alpha >= 1 || opt.Min <= 0 || opt.Max <= opt.Min {
		panic(fmt.Sprintf("telemetry: bad histogram options %+v", opt))
	}
	gamma := (1 + opt.Alpha) / (1 - opt.Alpha)
	lnGamma := math.Log(gamma)
	n := int(math.Ceil(math.Log(opt.Max/opt.Min)/lnGamma)) + 1
	return &Histogram{
		alpha:   opt.Alpha,
		gamma:   gamma,
		lnGamma: lnGamma,
		min:     opt.Min,
		max:     opt.Max,
		buckets: make([]atomic.Uint64, n),
	}
}

// Alpha returns the configured relative-error bound.
func (h *Histogram) Alpha() float64 { return h.alpha }

// Buckets returns the number of log-spaced buckets (fixed at creation).
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Observe records one value under the edge contract in the type comment.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		h.dropped.Add(1)
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	if v == 0 {
		h.zero.Add(1)
		return
	}
	h.buckets[h.index(v)].Add(1)
}

// index maps a positive value to its bucket, clamping out-of-range values
// into the edge buckets.
func (h *Histogram) index(v float64) int {
	i := int(math.Ceil(math.Log(v/h.min) / h.lnGamma))
	if i < 0 {
		return 0
	}
	if i >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return i
}

// rep returns bucket i's representative value: the point minimizing the
// worst-case relative error over the bucket's interval.
func (h *Histogram) rep(i int) float64 {
	return 2 * h.min * math.Pow(h.gamma, float64(i)) / (h.gamma + 1)
}

// Count returns the number of recorded observations (dropped excluded).
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Dropped returns the number of NaN/negative observations discarded.
func (h *Histogram) Dropped() uint64 { return h.dropped.Load() }

// Quantile returns the q-quantile estimate (q clamped to [0, 1]): the
// representative of the bucket holding the observation of rank ⌈q·count⌉.
// It returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := h.zero.Load()
	if rank <= cum {
		return 0
	}
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return h.rep(i)
		}
	}
	// Concurrent writers can leave count ahead of the bucket sums for a
	// moment; answer with the highest populated bucket.
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			return h.rep(i)
		}
	}
	return 0
}
