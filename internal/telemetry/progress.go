package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Progress periodically prints a one-line status of a running simulation
// or sweep, derived from a Collector's counters: completed/total
// requests, wall-clock event rate, simulated-time rate, and an ETA. It
// backs the -progress flag of cmd/tapesim and cmd/tapebench.
//
// The reporter only reads atomic counters; it never perturbs the
// simulation, so enabling it cannot change results (asserted by the
// telemetry determinism test in cmd/tapesim).
type Progress struct {
	out      io.Writer
	interval time.Duration
	col      *Collector
	label    string

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// rate window state (only touched by the reporter goroutine and the
	// final Stop line, which runs after the goroutine exits)
	start         time.Time
	lastWall      time.Time
	lastEvents    uint64
	lastCompleted uint64
	lastSim       float64
}

// ProgressOptions configures a Progress reporter; zero fields take
// defaults.
type ProgressOptions struct {
	// Out receives one line per tick (default os.Stderr).
	Out io.Writer
	// Interval is the tick period (default 10s).
	Interval time.Duration
	// Collector supplies the counters (required).
	Collector *Collector
	// Label prefixes every line (default "progress").
	Label string
}

// StartProgress launches the reporter goroutine and returns its handle;
// call Stop to halt it and print a final line.
func StartProgress(opt ProgressOptions) *Progress {
	if opt.Collector == nil {
		panic("telemetry: StartProgress without a Collector")
	}
	if opt.Out == nil {
		opt.Out = os.Stderr
	}
	if opt.Interval <= 0 {
		opt.Interval = 10 * time.Second
	}
	if opt.Label == "" {
		opt.Label = "progress"
	}
	now := time.Now()
	p := &Progress{
		out: opt.Out, interval: opt.Interval, col: opt.Collector, label: opt.Label,
		stop: make(chan struct{}), done: make(chan struct{}),
		start: now, lastWall: now,
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case now := <-t.C:
			fmt.Fprintln(p.out, p.line(now))
		}
	}
}

// Stop halts the reporter and prints one final line (so short runs still
// produce a summary). Safe to call more than once.
func (p *Progress) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
		fmt.Fprintln(p.out, p.line(time.Now()))
	})
}

// line renders one progress line and advances the rate window.
func (p *Progress) line(now time.Time) string {
	events := p.col.Events.Value()
	completed := p.col.Completed.Value()
	target := p.col.RequestsTarget.Value()
	sim := p.col.SimTime.Value()

	dt := now.Sub(p.lastWall).Seconds()
	if dt <= 0 {
		dt = 1e-9
	}
	evRate := float64(events-p.lastEvents) / dt
	reqRate := float64(completed-p.lastCompleted) / dt
	simRate := (sim - p.lastSim) / dt
	p.lastWall, p.lastEvents, p.lastCompleted, p.lastSim = now, events, completed, sim

	s := fmt.Sprintf("%s:", p.label)
	if runsTarget := p.col.RunsTarget.Value(); runsTarget > 0 {
		s += fmt.Sprintf(" runs %d/%d", p.col.RunsCompleted.Value(), runsTarget)
	}
	if target > 0 {
		pct := 100 * float64(completed) / float64(target)
		s += fmt.Sprintf(" %d/%d requests (%.1f%%)", completed, target, pct)
	} else {
		s += fmt.Sprintf(" %d requests", completed)
	}
	s += fmt.Sprintf("  %.0f events/s  sim %.1fs (x%.0f)", evRate, sim, simRate)
	if target > 0 && completed > 0 && uint64(target) > completed {
		// Prefer the current window's request rate; fall back to the
		// lifetime average when the window saw no completions.
		rate := reqRate
		if rate <= 0 {
			if lifetime := now.Sub(p.start).Seconds(); lifetime > 0 {
				rate = float64(completed) / lifetime
			}
		}
		if rate > 0 {
			eta := time.Duration(float64(uint64(target)-completed) / rate * float64(time.Second))
			s += fmt.Sprintf("  eta %s", eta.Round(time.Second))
		}
	}
	return s
}
