package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistogramQuantileErrorBound is the property test behind the
// documented contract: for in-range samples, every quantile estimate is
// within the configured relative error of the exact sample quantile at
// the same rank.
func TestHistogramQuantileErrorBound(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.05} {
		h := NewHistogram(HistogramOptions{Alpha: alpha})
		r := rand.New(rand.NewSource(1))
		samples := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			// Log-uniform over nine decades, the shape of simulated
			// durations (milliseconds to weeks).
			v := math.Pow(10, -3+9*r.Float64())
			samples = append(samples, v)
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q * float64(len(samples))))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			est := h.Quantile(q)
			rel := math.Abs(est-exact) / exact
			// Tiny slack over alpha for float rounding at bucket edges.
			if rel > alpha*1.0001 {
				t.Errorf("alpha=%v q=%v: est %v vs exact %v (rel err %v)", alpha, q, est, exact, rel)
			}
		}
	}
}

func TestHistogramEdgeContract(t *testing.T) {
	h := NewHistogram(HistogramOptions{Alpha: 0.01, Min: 1e-3, Max: 1e3})
	h.Observe(math.NaN())
	h.Observe(-1)
	if h.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", h.Dropped())
	}
	if h.Count() != 0 {
		t.Errorf("count after drops = %d, want 0", h.Count())
	}
	if h.Quantile(0.5) != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", h.Quantile(0.5))
	}

	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("all-zero quantile = %v, want 0", got)
	}

	// Clamped observations are counted, in the edge buckets.
	h.Observe(1e-9) // below Min
	h.Observe(1e9)  // above Max
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	lo, hi := h.Quantile(0.5), h.Quantile(1)
	if !(lo < 1e-2) {
		t.Errorf("clamped underflow quantile %v not near Min", lo)
	}
	if !(hi > 1e2) {
		t.Errorf("clamped overflow quantile %v not near Max", hi)
	}

	if h.Sum() <= 0 {
		t.Errorf("sum = %v, want > 0", h.Sum())
	}
}

func TestHistogramFixedMemory(t *testing.T) {
	h := NewHistogram(HistogramOptions{})
	before := h.Buckets()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		h.Observe(r.Float64() * 1e6)
	}
	if h.Buckets() != before {
		t.Errorf("bucket count changed %d -> %d", before, h.Buckets())
	}
	if h.Count() != 100000 {
		t.Errorf("count = %d, want 100000", h.Count())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(HistogramOptions{})
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(r.Float64() * 100)
				_ = h.Quantile(0.9) // concurrent reads must be safe
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestHistogramBadOptionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad options did not panic")
		}
	}()
	NewHistogram(HistogramOptions{Min: 10, Max: 1})
}
