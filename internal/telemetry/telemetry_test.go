package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var fc FloatCounter
	fc.Add(1.5)
	fc.Add(2.25)
	if fc.Value() != 3.75 {
		t.Errorf("float counter = %v, want 3.75", fc.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	var fg FloatGauge
	fg.Set(2.5)
	fg.SetMax(1.0) // lower: ignored
	if fg.Value() != 2.5 {
		t.Errorf("float gauge after SetMax(1.0) = %v, want 2.5", fg.Value())
	}
	fg.SetMax(9.5)
	if fg.Value() != 9.5 {
		t.Errorf("float gauge after SetMax(9.5) = %v, want 9.5", fg.Value())
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counter
	var fc FloatCounter
	var fg FloatGauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				fc.Add(0.5)
				fg.SetMax(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if fc.Value() != workers*per*0.5 {
		t.Errorf("float counter = %v, want %v", fc.Value(), workers*per*0.5)
	}
	if fg.Value() != workers*per-1 {
		t.Errorf("float gauge = %v, want %v", fg.Value(), workers*per-1)
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name did not panic")
		}
	}()
	reg.NewCounter("x", "second")
}
