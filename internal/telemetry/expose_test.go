package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	feedScenario(c)
	var sb strings.Builder
	if err := reg.WritePrometheus(bufio.NewWriter(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"# TYPE tapesim_events_total counter",
		"tapesim_events_total 9",
		"# TYPE tapesim_requests_target gauge",
		"tapesim_seek_seconds_total 2.5",
		"# TYPE tapesim_response_seconds summary",
		`tapesim_response_seconds{quantile="0.5"}`,
		"tapesim_response_seconds_count 1",
		"tapesim_sim_time_seconds 10",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("prometheus output missing %q:\n%s", frag, out)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestExpvarJSONParses(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	feedScenario(c)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := get(t, "http://"+srv.Addr()+"/debug/vars")
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	if _, ok := decoded["memstats"]; !ok {
		t.Error("expvar output missing standard memstats var")
	}
	tele, ok := decoded["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("expvar output missing telemetry object: %v", decoded["telemetry"])
	}
	if got := tele["tapesim_requests_completed_total"]; got != float64(1) {
		t.Errorf("completed = %v, want 1", got)
	}
	hist, ok := tele["tapesim_response_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("response histogram = %v", tele["tapesim_response_seconds"])
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	NewCollector(reg)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	metrics := get(t, base+"/metrics")
	if !strings.Contains(string(metrics), "tapesim_events_total") {
		t.Errorf("/metrics missing series:\n%s", metrics)
	}
	pprofIndex := get(t, base+"/debug/pprof/")
	if !strings.Contains(string(pprofIndex), "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.200s", pprofIndex)
	}
}

// get fetches a URL and returns its body, failing the test on any error.
func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func ExampleRegistry_WritePrometheus() {
	reg := NewRegistry()
	reqs := reg.NewCounter("demo_requests_total", "requests served")
	reqs.Add(3)
	var sb strings.Builder
	_ = reg.WritePrometheus(bufio.NewWriter(&sb))
	fmt.Print(sb.String())
	// Output:
	// # HELP demo_requests_total requests served
	// # TYPE demo_requests_total counter
	// demo_requests_total 3
}
