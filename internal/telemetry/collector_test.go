package telemetry

import (
	"bufio"
	"strings"
	"testing"
	"time"

	"paralleltape/internal/trace"
)

// feedScenario plays a small synthetic request through the collector:
// submit → seek/transfer plans → robot contention → mount → serve-end →
// complete.
func feedScenario(c *Collector) {
	events := []trace.Event{
		{T: 0, Kind: trace.KindSubmit, Lib: -1, Drive: -1, Tape: -1, Req: 1},
		{T: 0, Kind: trace.KindSeek, Lib: 0, Drive: 0, Tape: 3, Req: 1, Dur: 2.5},
		{T: 0, Kind: trace.KindTransfer, Lib: 0, Drive: 0, Tape: 3, Req: 1, Bytes: 1000, Dur: 7.5},
		{T: 1, Kind: trace.KindResourceWait, Lib: -1, Drive: -1, Tape: -1, Req: -1, Queue: 2, Name: "robot-0"},
		{T: 2, Kind: trace.KindResourceGrant, Lib: -1, Drive: -1, Tape: -1, Req: -1, Dur: 1.0, Queue: 1, Name: "robot-0"},
		{T: 3, Kind: trace.KindResourceRelease, Lib: -1, Drive: -1, Tape: -1, Req: -1, Dur: 1.0, Queue: 0, Name: "robot-0"},
		{T: 4, Kind: trace.KindMounted, Lib: 0, Drive: 1, Tape: 5, Req: 1, Dur: 4.0},
		{T: 10, Kind: trace.KindServeEnd, Lib: 0, Drive: 0, Tape: 3, Req: 1, Bytes: 1000, Dur: 10},
		{T: 10, Kind: trace.KindComplete, Lib: -1, Drive: -1, Tape: -1, Req: 1, Bytes: 1000, Dur: 10},
	}
	for _, ev := range events {
		c.Record(ev)
	}
}

func TestCollectorSeries(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	feedScenario(c)

	if c.Events.Value() != 9 {
		t.Errorf("events = %d, want 9", c.Events.Value())
	}
	if c.Submitted.Value() != 1 || c.Completed.Value() != 1 {
		t.Errorf("submitted/completed = %d/%d, want 1/1", c.Submitted.Value(), c.Completed.Value())
	}
	if c.BytesMoved.Value() != 1000 {
		t.Errorf("bytes moved = %d, want 1000", c.BytesMoved.Value())
	}
	if c.Switches.Value() != 1 {
		t.Errorf("switches = %d, want 1", c.Switches.Value())
	}
	if c.SeekSeconds.Value() != 2.5 || c.TransferSeconds.Value() != 7.5 || c.SwitchSeconds.Value() != 4.0 {
		t.Errorf("seek/transfer/switch = %v/%v/%v, want 2.5/7.5/4",
			c.SeekSeconds.Value(), c.TransferSeconds.Value(), c.SwitchSeconds.Value())
	}
	if c.RobotWaitSeconds.Value() != 1.0 {
		t.Errorf("robot wait = %v, want 1", c.RobotWaitSeconds.Value())
	}
	if c.RobotQueueDepth.Value() != 0 {
		t.Errorf("robot queue depth = %d, want 0 (after release)", c.RobotQueueDepth.Value())
	}
	if c.SimTime.Value() != 10 {
		t.Errorf("sim time = %v, want 10", c.SimTime.Value())
	}
	if c.ResponseSeconds.Count() != 1 || c.SwitchLatencySeconds.Count() != 1 || c.RequestBytes.Count() != 1 {
		t.Errorf("histogram counts = %d/%d/%d, want 1/1/1",
			c.ResponseSeconds.Count(), c.SwitchLatencySeconds.Count(), c.RequestBytes.Count())
	}
	// Histogram quantile of a single sample is within 1% of it.
	if got := c.ResponseSeconds.Quantile(0.5); got < 9.9 || got > 10.1 {
		t.Errorf("response p50 = %v, want ~10", got)
	}
}

func TestProgressLine(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	c.RequestsTarget.Set(4)
	var sb strings.Builder
	p := StartProgress(ProgressOptions{Out: &sb, Interval: time.Hour, Collector: c, Label: "progress"})
	feedScenario(c)

	line := p.line(p.lastWall.Add(2 * time.Second))
	for _, frag := range []string{"progress:", "1/4 requests (25.0%)", "events/s", "sim 10.0s", "eta"} {
		if !strings.Contains(line, frag) {
			t.Errorf("line missing %q: %s", frag, line)
		}
	}
	// Second window with no new events: rates drop to zero, ETA falls
	// back to the lifetime average and the line still renders.
	line = p.line(p.lastWall.Add(2 * time.Second))
	if !strings.Contains(line, "0 events/s") {
		t.Errorf("stalled window line: %s", line)
	}
	p.Stop()
	p.Stop() // idempotent
	if !strings.Contains(sb.String(), "progress:") {
		t.Errorf("Stop did not print a final line: %q", sb.String())
	}
}

func TestProgressSweepLine(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	c.RunsTarget.Set(6)
	c.RunsCompleted.Add(2)
	p := StartProgress(ProgressOptions{Out: &strings.Builder{}, Interval: time.Hour, Collector: c})
	defer p.Stop()
	line := p.line(p.lastWall.Add(time.Second))
	if !strings.Contains(line, "runs 2/6") {
		t.Errorf("sweep line missing runs: %s", line)
	}
}

// TestCollectorSpanSeries exercises the span-boundary series: the
// in-flight operation gauge and the lazily registered per-drive
// busy-fraction gauges.
func TestCollectorSpanSeries(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	span := func(ev trace.Event) int64 {
		c.Record(ev)
		return c.QueueDepth.Value()
	}
	// Two overlapping operations: a switch on L0.D1 (rewind → mounted)
	// and a serve on L0.D0 (serve-start → serve-end).
	if d := span(trace.Event{T: 0, Kind: trace.KindRewind, Lib: 0, Drive: 1, Tape: -1, Req: 3, Span: 201}); d != 1 {
		t.Errorf("depth after rewind = %d, want 1", d)
	}
	if d := span(trace.Event{T: 2, Kind: trace.KindServeStart, Lib: 0, Drive: 0, Tape: 4, Req: 3, Span: 100}); d != 2 {
		t.Errorf("depth after serve-start = %d, want 2", d)
	}
	// Interior span events must not change the depth.
	if d := span(trace.Event{T: 2, Kind: trace.KindSeek, Lib: 0, Drive: 0, Tape: 4, Req: 3, Span: 100, Dur: 1}); d != 2 {
		t.Errorf("depth after seek = %d, want 2", d)
	}
	if d := span(trace.Event{T: 4, Kind: trace.KindMounted, Lib: 0, Drive: 1, Tape: 7, Req: 3, Span: 201, Dur: 4}); d != 1 {
		t.Errorf("depth after mounted = %d, want 1", d)
	}
	if d := span(trace.Event{T: 10, Kind: trace.KindServeEnd, Lib: 0, Drive: 0, Tape: 4, Req: 3, Span: 100, Bytes: 5}); d != 0 {
		t.Errorf("depth after serve-end = %d, want 0", d)
	}
	// Busy fractions: L0.D1 was busy [0,4] of 4s (1.0); L0.D0 was busy
	// [2,10] of 10s (0.8).
	if got := c.driveGauges[driveKey{lib: 0, drive: 1}].Value(); got != 1.0 {
		t.Errorf("L0.D1 busy fraction = %v, want 1.0", got)
	}
	if got := c.driveGauges[driveKey{lib: 0, drive: 0}].Value(); got != 0.8 {
		t.Errorf("L0.D0 busy fraction = %v, want 0.8", got)
	}
	// A close for an unknown span (ring-buffer truncation) is ignored.
	c.Record(trace.Event{T: 11, Kind: trace.KindServeEnd, Lib: 0, Drive: 0, Tape: 4, Req: 4, Span: 999})
	if d := c.QueueDepth.Value(); d != 0 {
		t.Errorf("depth after orphan close = %d, want 0", d)
	}
	// The lazily registered gauges are exposed on the registry.
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	if err := reg.WritePrometheus(bw); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	for _, frag := range []string{"tapesim_queue_depth 0", "tapesim_drive_busy_fraction_L0_D0 0.8", "tapesim_drive_busy_fraction_L0_D1 1"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("exposition missing %q:\n%s", frag, sb.String())
		}
	}
}
