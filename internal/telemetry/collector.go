package telemetry

import (
	"fmt"
	"sync"

	"paralleltape/internal/trace"
)

// Collector folds the simulator's trace event stream into the standard
// live-metric series. It implements trace.Recorder, so it attaches
// exactly where the exporters do (System.SetRecorder, or one arm of a
// trace.Tee) — the simulator has a single instrumentation path, and with
// no recorder attached the emit sites stay nil-check-only.
//
// All updates are atomic: one Collector may be shared by every worker
// goroutine of an experiment sweep (each worker's System gets the same
// Collector as its recorder). Series semantics and names are documented
// in docs/OBSERVABILITY.md ("Live metrics").
type Collector struct {
	// Events counts every trace event consumed.
	Events *Counter
	// Submitted counts request submissions (kind "submit").
	Submitted *Counter
	// Completed counts request completions (kind "complete").
	Completed *Counter
	// RequestsTarget is the planned total number of request submissions,
	// set by the driver (tapesim's -requests, or runs × requests × seeds
	// for a sweep); the progress reporter derives ETA from it. Zero means
	// unknown.
	RequestsTarget *Gauge
	// BytesMoved sums payload bytes over finished tape-group services
	// (kind "serve-end").
	BytesMoved *Counter
	// Switches counts completed tape switches (kind "mounted").
	Switches *Counter
	// SeekSeconds sums planned seek time over services (kind "seek").
	SeekSeconds *FloatCounter
	// TransferSeconds sums planned transfer time (kind "transfer").
	TransferSeconds *FloatCounter
	// SwitchSeconds sums full switch latencies (kind "mounted").
	SwitchSeconds *FloatCounter
	// RobotWaitSeconds sums time acquirers spent queued for robot arms
	// (kind "resource-grant").
	RobotWaitSeconds *FloatCounter
	// RobotQueueDepth is the queue depth carried by the most recent robot
	// contention event (wait/grant/release).
	RobotQueueDepth *Gauge
	// SimTime is the high-water mark of the simulated clock across all
	// systems feeding this collector.
	SimTime *FloatGauge
	// RunsCompleted counts finished sweep runs (incremented by
	// internal/experiments, not by trace events).
	RunsCompleted *Counter
	// RunsTarget is the planned total number of sweep runs (gauge, set by
	// internal/experiments). Zero outside sweeps.
	RunsTarget *Gauge
	// ResponseSeconds is the streaming histogram of request response
	// times (kind "complete", Dur).
	ResponseSeconds *Histogram
	// SwitchLatencySeconds is the streaming histogram of full switch
	// latencies (kind "mounted", Dur).
	SwitchLatencySeconds *Histogram
	// RequestBytes is the streaming histogram of request payload sizes
	// (kind "complete", Bytes).
	RequestBytes *Histogram

	// Resilience series (docs/RESILIENCE.md); all stay zero on a
	// failure-free run.

	// DriveFailures counts drives taken out of service (kind
	// "drive-failed", manual or injected).
	DriveFailures *Counter
	// DriveRepairs counts failed drives returned to service (kind
	// "drive-repaired").
	DriveRepairs *Counter
	// RobotOutages counts robot-arm outages observed by switches (kind
	// "robot-failed").
	RobotOutages *Counter
	// MediaErrors counts tape groups lost to permanent media errors (kind
	// "media-error").
	MediaErrors *Counter
	// OpRetries counts fault-interrupted operations re-dispatched to
	// surviving drives (kind "op-retried").
	OpRetries *Counter
	// RequestTimeouts counts requests that exceeded their deadline (kind
	// "request-timeout").
	RequestTimeouts *Counter
	// FailedBytes sums the payload of tape groups lost to media errors
	// (kind "media-error", Bytes).
	FailedBytes *Counter

	// QueueDepth is the number of drive operations (serve or switch
	// spans) currently in flight, sampled at span boundaries: a
	// span-stamped start event ("serve-start", "rewind") raises it, the
	// matching end event ("serve-end", "mounted", or a span-stamped
	// "drive-failed"/"media-error" interruption) lowers it.
	QueueDepth *Gauge

	// reg is retained for lazy registration of the per-drive
	// busy-fraction gauges (tapesim_drive_busy_fraction_L<lib>_D<drive>)
	// as span boundaries reveal drives.
	reg *Registry
	// mu guards the span-boundary state below. Every other series is
	// atomic and lock-free; only span-carrying boundary events (a few
	// per request) take this lock. When several concurrent systems of a
	// sweep share one collector their span IDs may collide, so the busy
	// fractions are approximate in that mode; single-run tapesim values
	// are exact.
	mu sync.Mutex
	// openSpans maps an in-flight span ID to its start state.
	openSpans map[int64]spanStart
	// driveBusy accumulates per-drive busy seconds over closed spans.
	driveBusy map[driveKey]float64
	// driveGauges holds the lazily registered busy-fraction gauges.
	driveGauges map[driveKey]*FloatGauge
}

// spanStart records where and when an operation span opened.
type spanStart struct {
	lib, drive int
	t          float64
}

// driveKey identifies one drive across libraries.
type driveKey struct{ lib, drive int }

// NewCollector registers the standard series on reg and returns the
// collector updating them.
func NewCollector(reg *Registry) *Collector {
	return &Collector{
		Events:           reg.NewCounter("tapesim_events_total", "trace events consumed"),
		Submitted:        reg.NewCounter("tapesim_requests_submitted_total", "request submissions"),
		Completed:        reg.NewCounter("tapesim_requests_completed_total", "request completions"),
		RequestsTarget:   reg.NewGauge("tapesim_requests_target", "planned total request submissions (0 = unknown)"),
		BytesMoved:       reg.NewCounter("tapesim_bytes_moved_total", "payload bytes transferred by finished services"),
		Switches:         reg.NewCounter("tapesim_tape_switches_total", "completed tape switches"),
		SeekSeconds:      reg.NewFloatCounter("tapesim_seek_seconds_total", "summed planned seek time"),
		TransferSeconds:  reg.NewFloatCounter("tapesim_transfer_seconds_total", "summed planned transfer time"),
		SwitchSeconds:    reg.NewFloatCounter("tapesim_switch_seconds_total", "summed full switch latency"),
		RobotWaitSeconds: reg.NewFloatCounter("tapesim_robot_wait_seconds_total", "summed robot queue wait time"),
		RobotQueueDepth:  reg.NewGauge("tapesim_robot_queue_depth", "robot queue depth after the last contention event"),
		SimTime:          reg.NewFloatGauge("tapesim_sim_time_seconds", "simulated clock high-water mark"),
		RunsCompleted:    reg.NewCounter("tapesim_runs_completed_total", "finished experiment sweep runs"),
		RunsTarget:       reg.NewGauge("tapesim_runs_target", "planned experiment sweep runs (0 = not a sweep)"),
		ResponseSeconds: reg.NewHistogram("tapesim_response_seconds",
			"request response time distribution", HistogramOptions{}),
		SwitchLatencySeconds: reg.NewHistogram("tapesim_switch_latency_seconds",
			"full tape-switch latency distribution", HistogramOptions{}),
		RequestBytes: reg.NewHistogram("tapesim_request_bytes",
			"request payload size distribution", HistogramOptions{Min: 1, Max: 1e15}),
		DriveFailures:   reg.NewCounter("tapesim_drive_failures_total", "drives taken out of service"),
		DriveRepairs:    reg.NewCounter("tapesim_drive_repairs_total", "failed drives returned to service"),
		RobotOutages:    reg.NewCounter("tapesim_robot_outages_total", "robot-arm outages observed by switches"),
		MediaErrors:     reg.NewCounter("tapesim_media_errors_total", "tape groups lost to permanent media errors"),
		OpRetries:       reg.NewCounter("tapesim_op_retries_total", "fault-interrupted operations re-dispatched"),
		RequestTimeouts: reg.NewCounter("tapesim_request_timeouts_total", "requests that exceeded their deadline"),
		FailedBytes:     reg.NewCounter("tapesim_failed_bytes_total", "payload bytes lost to media errors"),
		QueueDepth: reg.NewGauge("tapesim_queue_depth",
			"drive operations (serve or switch spans) in flight, sampled at span boundaries"),
		reg:         reg,
		openSpans:   make(map[int64]spanStart),
		driveBusy:   make(map[driveKey]float64),
		driveGauges: make(map[driveKey]*FloatGauge),
	}
}

// Record consumes one trace event (trace.Recorder).
func (c *Collector) Record(ev trace.Event) {
	c.Events.Inc()
	c.SimTime.SetMax(ev.T)
	if ev.Span != 0 {
		c.spanBoundary(ev)
	}
	switch ev.Kind {
	case trace.KindSubmit:
		c.Submitted.Inc()
	case trace.KindComplete:
		c.Completed.Inc()
		c.ResponseSeconds.Observe(ev.Dur)
		c.RequestBytes.Observe(float64(ev.Bytes))
	case trace.KindSeek:
		c.SeekSeconds.Add(ev.Dur)
	case trace.KindTransfer:
		c.TransferSeconds.Add(ev.Dur)
	case trace.KindServeEnd:
		if ev.Bytes > 0 {
			c.BytesMoved.Add(uint64(ev.Bytes))
		}
	case trace.KindMounted:
		c.Switches.Inc()
		c.SwitchSeconds.Add(ev.Dur)
		c.SwitchLatencySeconds.Observe(ev.Dur)
	case trace.KindResourceWait, trace.KindResourceRelease:
		c.RobotQueueDepth.Set(int64(ev.Queue))
	case trace.KindResourceGrant:
		c.RobotQueueDepth.Set(int64(ev.Queue))
		c.RobotWaitSeconds.Add(ev.Dur)
	case trace.KindDriveFailed:
		c.DriveFailures.Inc()
	case trace.KindDriveRepaired:
		c.DriveRepairs.Inc()
	case trace.KindRobotFailed:
		c.RobotOutages.Inc()
	case trace.KindMediaError:
		c.MediaErrors.Inc()
		if ev.Bytes > 0 {
			c.FailedBytes.Add(uint64(ev.Bytes))
		}
	case trace.KindOpRetried:
		c.OpRetries.Inc()
	case trace.KindRequestTimedOut:
		c.RequestTimeouts.Inc()
	}
}

// spanBoundary folds one span-stamped event into the span-fed series:
// the in-flight operation gauge and the per-drive busy fractions. Only
// boundary kinds change state — interior span events (seek, transfer,
// robot, load, ...) pass through.
func (c *Collector) spanBoundary(ev trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case trace.KindServeStart, trace.KindRewind:
		c.openSpans[ev.Span] = spanStart{lib: ev.Lib, drive: ev.Drive, t: ev.T}
	case trace.KindServeEnd, trace.KindMounted, trace.KindDriveFailed, trace.KindMediaError:
		st, ok := c.openSpans[ev.Span]
		if !ok {
			return
		}
		delete(c.openSpans, ev.Span)
		k := driveKey{lib: st.lib, drive: st.drive}
		c.driveBusy[k] += ev.T - st.t
		g := c.driveGauges[k]
		if g == nil {
			g = c.reg.NewFloatGauge(
				fmt.Sprintf("tapesim_drive_busy_fraction_L%d_D%d", k.lib, k.drive),
				fmt.Sprintf("fraction of simulated time drive %d of library %d spent serving or switching", k.drive, k.lib))
			c.driveGauges[k] = g
		}
		if ev.T > 0 {
			g.Set(c.driveBusy[k] / ev.T)
		}
	default:
		return
	}
	c.QueueDepth.Set(int64(len(c.openSpans)))
}
