// Package telemetry is the live-metrics layer of the simulator: a
// registry of atomic counters, gauges, and streaming histograms that can
// be scraped while a long simulation or experiment sweep is running —
// where internal/trace and internal/metrics explain a run after the fact,
// this package answers "how far along is it, and how fast is it going"
// during the run.
//
// The package has four parts:
//
//   - Registry, Counter, FloatCounter, Gauge, FloatGauge, Histogram: the
//     metric primitives. All updates are atomic, so one Collector may be
//     shared by every worker goroutine of an experiment sweep.
//   - Collector: a trace.Recorder that folds the existing simulator event
//     stream (internal/trace) into the standard series — there is one
//     instrumentation path, and with telemetry disabled the simulator's
//     emit sites remain nil-check-only with zero allocations.
//   - Server (expose.go): HTTP exposition — Prometheus text format at
//     /metrics, expvar-style JSON at /debug/vars, and net/http/pprof at
//     /debug/pprof/ — behind the -metrics-addr flag of cmd/tapesim and
//     cmd/tapebench.
//   - Progress (progress.go): a periodic stderr progress line (events/sec,
//     sim-time rate, completed/total requests, ETA) behind the -progress
//     flag.
//
// Every exported series name, its type, and the histogram quantile error
// bound are documented in docs/OBSERVABILITY.md ("Live metrics").
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric (for summed
// durations). The zero value is ready to use; Add is lock-free (CAS).
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds delta, which must be non-negative for the counter to stay
// monotonic (not enforced — callers feed span durations, which are
// non-negative by the simulator's causality checks).
func (c *FloatCounter) Add(delta float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current sum.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous integer value (queue depth, target counts).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float value (the simulated clock). The
// zero value is ready to use.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax raises the gauge to v if v is larger (a monotonic high-water
// mark; used for the simulated clock, which several concurrent runs may
// advance independently).
func (g *FloatGauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is an ordered, named set of metrics. Metrics are created
// through the New* methods; names must be unique and are exposed verbatim
// by the Prometheus and expvar handlers (expose.go). Registration is
// mutex-guarded; the metrics themselves are atomic.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	names   map[string]bool
}

// entry pairs a metric with its exposition metadata.
type entry struct {
	name, help string
	metric     any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: make(map[string]bool)} }

// register adds a metric under a unique name; a duplicate name is a
// construction bug and panics.
func (r *Registry) register(name, help string, m any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
	r.entries = append(r.entries, entry{name: name, help: help, metric: m})
}

// snapshot copies the entry list for lock-free iteration by exporters.
func (r *Registry) snapshot() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]entry(nil), r.entries...)
}

// NewCounter registers and returns a Counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// NewFloatCounter registers and returns a FloatCounter.
func (r *Registry) NewFloatCounter(name, help string) *FloatCounter {
	c := &FloatCounter{}
	r.register(name, help, c)
	return c
}

// NewGauge registers and returns a Gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// NewFloatGauge registers and returns a FloatGauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.register(name, help, g)
	return g
}

// NewHistogram registers and returns a streaming Histogram with the given
// options (zero value = defaults; see HistogramOptions).
func (r *Registry) NewHistogram(name, help string, opt HistogramOptions) *Histogram {
	h := NewHistogram(opt)
	r.register(name, help, h)
	return h
}
