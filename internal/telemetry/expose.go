package telemetry

import (
	"bufio"
	"expvar"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// HTTP exposition of a Registry: Prometheus text format at /metrics,
// expvar-style JSON at /debug/vars (the standard published vars —
// cmdline, memstats — plus a "telemetry" object holding every registered
// series), and the net/http/pprof handlers at /debug/pprof/. Serve binds
// them all on one address; ":0" picks a free port, reported by Addr.

// promFloat renders a float in Prometheus/JSON-safe form.
func promFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges map directly;
// histograms are exposed as summaries: one {quantile="q"} sample per
// DefaultSummaryQuantiles entry plus _sum and _count.
func (r *Registry) WritePrometheus(w *bufio.Writer) error {
	for _, e := range r.snapshot() {
		var typ string
		switch e.metric.(type) {
		case *Counter, *FloatCounter:
			typ = "counter"
		case *Gauge, *FloatGauge:
			typ = "gauge"
		case *Histogram:
			typ = "summary"
		default:
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, typ)
		switch m := e.metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s %d\n", e.name, m.Value())
		case *FloatCounter:
			fmt.Fprintf(w, "%s %s\n", e.name, promFloat(m.Value()))
		case *Gauge:
			fmt.Fprintf(w, "%s %d\n", e.name, m.Value())
		case *FloatGauge:
			fmt.Fprintf(w, "%s %s\n", e.name, promFloat(m.Value()))
		case *Histogram:
			for _, q := range DefaultSummaryQuantiles {
				fmt.Fprintf(w, "%s{quantile=\"%s\"} %s\n",
					e.name, promFloat(q), promFloat(m.Quantile(q)))
			}
			fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", e.name, promFloat(m.Sum()), e.name, m.Count())
		}
	}
	return w.Flush()
}

// writeVarsJSON renders the registry as one JSON object: counters and
// gauges as numbers, histograms as {count, sum, dropped, pXX} objects.
// Key order is registration order.
func (r *Registry) writeVarsJSON(w *bufio.Writer) {
	w.WriteString("{")
	for i, e := range r.snapshot() {
		if i > 0 {
			w.WriteString(",")
		}
		fmt.Fprintf(w, "\n%q: ", e.name)
		switch m := e.metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "%d", m.Value())
		case *FloatCounter:
			w.WriteString(promFloat(m.Value()))
		case *Gauge:
			fmt.Fprintf(w, "%d", m.Value())
		case *FloatGauge:
			w.WriteString(promFloat(m.Value()))
		case *Histogram:
			fmt.Fprintf(w, "{\"count\": %d, \"sum\": %s, \"dropped\": %d",
				m.Count(), promFloat(m.Sum()), m.Dropped())
			for _, q := range DefaultSummaryQuantiles {
				fmt.Fprintf(w, ", \"p%g\": %s", q*100, promFloat(m.Quantile(q)))
			}
			w.WriteString("}")
		default:
			w.WriteString("null")
		}
	}
	w.WriteString("\n}")
}

// PrometheusHandler serves WritePrometheus.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		_ = r.WritePrometheus(bw)
	})
}

// ExpvarHandler serves /debug/vars-style JSON: every var published
// through the standard expvar package (cmdline, memstats, and anything
// the process added), plus a "telemetry" member holding this registry.
// The registry is merged in here rather than expvar.Publish'ed globally
// so several registries (e.g. in tests) never collide.
func (r *Registry) ExpvarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		bw := bufio.NewWriter(w)
		bw.WriteString("{")
		expvar.Do(func(kv expvar.KeyValue) {
			fmt.Fprintf(bw, "\n%q: %s,", kv.Key, kv.Value)
		})
		bw.WriteString("\n\"telemetry\": ")
		r.writeVarsJSON(bw)
		bw.WriteString("\n}\n")
		_ = bw.Flush()
	})
}

// Server is a live-metrics HTTP server bound to one registry.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving reg on addr (":0" picks a free port) and returns
// once the listener is bound; requests are handled on a background
// goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.PrometheusHandler())
	mux.Handle("/debug/vars", reg.ExpvarHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (host:port), useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
