// Package organpipe implements the classic organ-pipe arrangement used by
// §5.3 step 6 and by the object-probability baseline [11][24]: the most
// popular item sits in the middle of the tape and popularity decreases
// towards both ends, minimizing expected head travel between consecutive
// accesses under independent access probabilities.
package organpipe

import (
	"cmp"
	"slices"
)

// Item is anything alignable: a weight (access probability) plus an opaque
// payload index the caller maps back to its objects.
type Item struct {
	Index  int     // caller's identifier (e.g. position in an input slice)
	Weight float64 // access probability / popularity
}

// Arrange returns the organ-pipe permutation of items: the heaviest item in
// the center, subsequent items alternating right and left of it, ties
// broken by Index for determinism. The input slice is not modified.
//
// Formally, for input sorted by decreasing weight w1 ≥ w2 ≥ w3 ≥ …, the
// output order along the tape is …, w5, w3, w1, w2, w4, … — wave heights
// falling off from the middle like organ pipes.
func Arrange(items []Item) []Item {
	n := len(items)
	if n == 0 {
		return nil
	}
	var a Arranger
	return a.Arrange(items)
}

// Arranger is an allocation-free Arrange: its two work buffers are reused
// across calls, so a caller aligning many tapes (placement's finish step)
// pays for the buffers once. The slice returned by Arrange is owned by the
// Arranger and valid until the next call.
type Arranger struct {
	sorted []Item
	out    []Item
}

// Arrange computes the organ-pipe permutation of items into the Arranger's
// reused output buffer. Identical results to the package-level Arrange.
func (a *Arranger) Arrange(items []Item) []Item {
	n := len(items)
	if n == 0 {
		return nil
	}
	if cap(a.sorted) < n {
		a.sorted = make([]Item, n)
		a.out = make([]Item, n)
	}
	sorted, out := a.sorted[:n], a.out[:n]
	copy(sorted, items)
	slices.SortStableFunc(sorted, func(x, y Item) int {
		if x.Weight != y.Weight {
			return cmp.Compare(y.Weight, x.Weight)
		}
		return cmp.Compare(x.Index, y.Index)
	})
	// Center placement: for n items the center slot is (n-1)/2; items
	// 2,3,4,... alternate right, left, right, ...
	center := (n - 1) / 2
	out[center] = sorted[0]
	left, right := center-1, center+1
	for k := 1; k < n; k++ {
		if k%2 == 1 { // odd ranks go right of center first
			if right < n {
				out[right] = sorted[k]
				right++
			} else {
				out[left] = sorted[k]
				left--
			}
		} else {
			if left >= 0 {
				out[left] = sorted[k]
				left--
			} else {
				out[right] = sorted[k]
				right++
			}
		}
	}
	return out
}

// Indices is a convenience wrapper: it organ-pipes weights and returns only
// the permuted caller indices.
func Indices(weights []float64) []int {
	items := make([]Item, len(weights))
	for i, w := range weights {
		items[i] = Item{Index: i, Weight: w}
	}
	arranged := Arrange(items)
	out := make([]int, len(arranged))
	for i, it := range arranged {
		out[i] = it.Index
	}
	return out
}

// ExpectedTravel computes the probability-weighted mean absolute distance
// between the positions of consecutive independent accesses, given item
// weights in tape order and unit item spacing. It is the objective the
// organ-pipe arrangement minimizes (for equal-size items); exported for
// tests and ablations.
func ExpectedTravel(weightsInOrder []float64) float64 {
	total := 0.0
	for _, w := range weightsInOrder {
		total += w
	}
	if total == 0 {
		return 0
	}
	travel := 0.0
	for i, wi := range weightsInOrder {
		for j, wj := range weightsInOrder {
			d := i - j
			if d < 0 {
				d = -d
			}
			travel += (wi / total) * (wj / total) * float64(d)
		}
	}
	return travel
}
