package organpipe

import (
	"math"
	"testing"
	"testing/quick"

	"paralleltape/internal/rng"
)

func weightsOf(items []Item) []float64 {
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = it.Weight
	}
	return out
}

func TestArrangeEmpty(t *testing.T) {
	if got := Arrange(nil); got != nil {
		t.Errorf("Arrange(nil) = %v", got)
	}
}

func TestArrangeSingle(t *testing.T) {
	got := Arrange([]Item{{Index: 3, Weight: 0.5}})
	if len(got) != 1 || got[0].Index != 3 {
		t.Errorf("Arrange single = %v", got)
	}
}

func TestArrangeShape(t *testing.T) {
	// Weights 5,4,3,2,1 → organ pipe: increases to the peak then decreases.
	items := []Item{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
	}
	got := weightsOf(Arrange(items))
	peak := 0
	for i, w := range got {
		if w > got[peak] {
			peak = i
		}
	}
	for i := 1; i <= peak; i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not increasing to the peak: %v", got)
		}
	}
	for i := peak + 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Fatalf("not decreasing after the peak: %v", got)
		}
	}
	// The heaviest element must be at the peak.
	if got[peak] != 5 {
		t.Errorf("peak weight = %v", got[peak])
	}
}

func TestArrangePreservesMultiset(t *testing.T) {
	f := func(raw []uint8) bool {
		items := make([]Item, len(raw))
		for i, r := range raw {
			items[i] = Item{Index: i, Weight: float64(r)}
		}
		got := Arrange(items)
		if len(got) != len(items) {
			return false
		}
		seen := map[int]bool{}
		for _, it := range got {
			if seen[it.Index] {
				return false
			}
			seen[it.Index] = true
		}
		return len(seen) == len(items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrangeIsUnimodal(t *testing.T) {
	f := func(raw []uint16) bool {
		items := make([]Item, len(raw))
		for i, r := range raw {
			items[i] = Item{Index: i, Weight: float64(r)}
		}
		got := weightsOf(Arrange(items))
		if len(got) == 0 {
			return true
		}
		peak := 0
		for i, w := range got {
			if w > got[peak] {
				peak = i
			}
		}
		for i := 1; i <= peak; i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		for i := peak + 1; i < len(got); i++ {
			if got[i] > got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrangeDeterministicWithTies(t *testing.T) {
	items := []Item{{0, 1}, {1, 1}, {2, 1}, {3, 1}}
	a, b := Arrange(items), Arrange(items)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie handling nondeterministic")
		}
	}
}

func TestIndices(t *testing.T) {
	got := Indices([]float64{0.1, 0.9, 0.5})
	// Heaviest (index 1) must be central.
	if got[1] != 1 {
		t.Errorf("Indices = %v, want heaviest central", got)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestExpectedTravelOrganPipeBeatsSorted(t *testing.T) {
	// Zipf-ish weights; organ-pipe must yield lower expected travel than
	// sorted-descending order and than a random shuffle.
	src := rng.New(1)
	weights := make([]float64, 31)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	pipeOrder := Indices(weights)
	pipe := make([]float64, len(weights))
	for pos, idx := range pipeOrder {
		pipe[pos] = weights[idx]
	}
	sortedTravel := ExpectedTravel(weights) // already descending
	pipeTravel := ExpectedTravel(pipe)
	if pipeTravel >= sortedTravel {
		t.Errorf("organ pipe travel %v not better than sorted %v", pipeTravel, sortedTravel)
	}
	for trial := 0; trial < 10; trial++ {
		shuf := make([]float64, len(weights))
		copy(shuf, weights)
		src.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		if pipeTravel > ExpectedTravel(shuf)+1e-12 {
			t.Errorf("organ pipe travel %v beaten by random order %v", pipeTravel, ExpectedTravel(shuf))
		}
	}
}

func TestExpectedTravelZeroWeights(t *testing.T) {
	if got := ExpectedTravel([]float64{0, 0, 0}); got != 0 {
		t.Errorf("ExpectedTravel zeros = %v", got)
	}
	if got := ExpectedTravel(nil); got != 0 {
		t.Errorf("ExpectedTravel(nil) = %v", got)
	}
}

func TestExpectedTravelSymmetricPair(t *testing.T) {
	// Two equal weights at distance 1: travel = 2 * 0.25 * 1 = 0.5.
	got := ExpectedTravel([]float64{1, 1})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ExpectedTravel pair = %v, want 0.5", got)
	}
}
