package organpipe

import "testing"

// TestArrangerZeroAllocs pins the Arranger's steady-state behavior: once its
// two buffers are sized, Arrange performs no allocations. The placement
// finish step calls it once per cartridge, so any per-call allocation here
// multiplies across the whole system.
func TestArrangerZeroAllocs(t *testing.T) {
	items := make([]Item, 64)
	for i := range items {
		items[i] = Item{Index: i, Weight: float64((i * 37) % 13)}
	}
	var a Arranger
	a.Arrange(items) // size the buffers
	n := testing.AllocsPerRun(100, func() {
		a.Arrange(items)
	})
	if n != 0 {
		t.Fatalf("Arranger.Arrange allocates %.0f/run after warm-up, want 0", n)
	}
}
