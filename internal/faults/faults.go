// Package faults provides the seed-deterministic fault models behind the
// simulator's resilience layer (docs/RESILIENCE.md): stochastic drive and
// robot outage timelines driven by MTBF and repair-time distributions,
// scripted outages for reproducible scenarios, and permanent media errors
// drawn per cartridge read.
//
// # Determinism contract
//
// Every random draw comes from a private SplitMix64 stream derived from
// Profile.Seed and the identity of the device alone — never from the
// workload, the wall clock, or the engine shard layout — so a device's
// failure schedule is a pure function of (seed, device). The tape-system
// simulator queries the injector with non-decreasing per-device times
// (operation boundaries on that device's engine), which keeps the lazily
// sampled timelines O(1) amortized per query and the resulting traces and
// exhibit tables byte-identical at every shard count
// (docs/ARCHITECTURE.md).
//
// # Concurrency
//
// The injector mutates only per-device state (one timeline per drive and
// robot, one read counter per cartridge), and every device belongs to
// exactly one library — hence to exactly one engine shard — so concurrent
// shard goroutines never touch the same state and the injector needs no
// locks. The shared Profile is read-only after New.
package faults

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"paralleltape/internal/dist"
	"paralleltape/internal/rng"
)

// Sampler draws positive durations (simulated seconds) from an injected
// deterministic stream. dist.Exponential and dist.BoundedPareto satisfy it.
type Sampler interface {
	// Sample draws one duration from src.
	Sample(src *rng.Source) float64
}

// Default repair-time means (simulated seconds) used when a Profile enables
// stochastic failures without naming a repair distribution.
const (
	// DefaultDriveRepairMean is the default mean drive repair time: 30
	// simulated minutes (swap in a hot spare, rethread, recalibrate).
	DefaultDriveRepairMean = 1800.0
	// DefaultRobotRepairMean is the default mean robot repair time: 15
	// simulated minutes (clear a picker jam).
	DefaultRobotRepairMean = 900.0
)

// DriveOutage scripts one down interval for a specific drive. Scripted
// outages make failure scenarios exactly reproducible in tests, golden
// traces, and examples; a drive with any scripted outage ignores the
// stochastic DriveMTBF stream entirely.
type DriveOutage struct {
	// Library is the library index of the drive.
	Library int
	// Drive is the library-local drive index.
	Drive int
	// At is the failure instant in simulated seconds.
	At float64
	// Duration is the repair time; the drive returns to service at
	// At+Duration. Must be positive.
	Duration float64
}

// RobotOutage scripts one down interval for a library's robot arm, with the
// same semantics as DriveOutage (scripted robots ignore RobotMTBF).
type RobotOutage struct {
	// Library is the library whose robot fails.
	Library int
	// At is the failure instant in simulated seconds.
	At float64
	// Duration is the repair time. Must be positive.
	Duration float64
}

// MediaFault scripts one permanent media error: the Read-th read of the
// named cartridge fails partway through, independent of the stochastic
// MediaErrorPerRead draw.
type MediaFault struct {
	// Library is the library index of the cartridge.
	Library int
	// Tape is the library-local cartridge index.
	Tape int
	// Read is the 1-based ordinal of the failing read (1 = the first read
	// of this cartridge in the run).
	Read int
	// Frac is where within the service span the error surfaces, in (0, 1].
	Frac float64
}

// Profile configures the fault models. The zero value injects nothing;
// attach a profile through tapesys.Options.Faults. All times are simulated
// seconds.
type Profile struct {
	// Seed derives every stochastic failure stream. Schedules are a pure
	// function of (Seed, device identity); two systems sharing a profile
	// replay identical fault timelines.
	Seed uint64
	// DriveMTBF is the mean up-time between drive failures (exponentially
	// distributed); 0 disables stochastic drive failures.
	DriveMTBF float64
	// DriveRepair samples drive repair durations; nil selects
	// dist.Exponential{Mean: DefaultDriveRepairMean}.
	DriveRepair Sampler
	// RobotMTBF is the mean up-time between robot-arm failures; 0 disables
	// stochastic robot failures.
	RobotMTBF float64
	// RobotRepair samples robot repair durations; nil selects
	// dist.Exponential{Mean: DefaultRobotRepairMean}.
	RobotRepair Sampler
	// MediaErrorPerRead is the probability that one cartridge read hits a
	// permanent media error (each read of each cartridge draws
	// independently and deterministically); 0 disables.
	MediaErrorPerRead float64
	// DriveOutages are scripted drive down intervals (reproducible
	// scenarios). A drive listed here ignores DriveMTBF.
	DriveOutages []DriveOutage
	// RobotOutages are scripted robot down intervals. A robot listed here
	// ignores RobotMTBF.
	RobotOutages []RobotOutage
	// MediaFaults are scripted per-read media errors, applied on top of
	// MediaErrorPerRead.
	MediaFaults []MediaFault
}

// Enabled reports whether the profile can inject any fault at all.
func (p *Profile) Enabled() bool {
	return p.DriveMTBF > 0 || p.RobotMTBF > 0 || p.MediaErrorPerRead > 0 ||
		len(p.DriveOutages) > 0 || len(p.RobotOutages) > 0 || len(p.MediaFaults) > 0
}

// Validate checks profile sanity independent of any hardware geometry
// (index bounds are checked against the geometry by New).
func (p *Profile) Validate() error {
	switch {
	case p.DriveMTBF < 0 || math.IsNaN(p.DriveMTBF):
		return fmt.Errorf("faults: DriveMTBF must be >= 0, got %v", p.DriveMTBF)
	case p.RobotMTBF < 0 || math.IsNaN(p.RobotMTBF):
		return fmt.Errorf("faults: RobotMTBF must be >= 0, got %v", p.RobotMTBF)
	case p.MediaErrorPerRead < 0 || p.MediaErrorPerRead > 1 || math.IsNaN(p.MediaErrorPerRead):
		return fmt.Errorf("faults: MediaErrorPerRead must be in [0,1], got %v", p.MediaErrorPerRead)
	}
	for i, o := range p.DriveOutages {
		if o.At < 0 || !(o.Duration > 0) {
			return fmt.Errorf("faults: DriveOutages[%d] needs At >= 0 and Duration > 0, got (%v, %v)", i, o.At, o.Duration)
		}
	}
	for i, o := range p.RobotOutages {
		if o.At < 0 || !(o.Duration > 0) {
			return fmt.Errorf("faults: RobotOutages[%d] needs At >= 0 and Duration > 0, got (%v, %v)", i, o.At, o.Duration)
		}
	}
	for i, m := range p.MediaFaults {
		if m.Read < 1 || !(m.Frac > 0) || m.Frac > 1 {
			return fmt.Errorf("faults: MediaFaults[%d] needs Read >= 1 and Frac in (0,1], got (%d, %v)", i, m.Read, m.Frac)
		}
	}
	return nil
}

// window is one down interval [at, until).
type window struct{ at, until float64 }

// timeline is one device's alternating up/down schedule, extended lazily as
// the simulation advances. A device is down during [failAt, repairAt) and
// up otherwise; advance moves the pair forward so queries with
// non-decreasing times are O(1) amortized.
type timeline struct {
	seed     uint64
	src      rng.Source
	mtbf     float64
	repair   Sampler
	script   []window // sorted, non-overlapping; non-nil overrides mtbf
	cursor   int
	failAt   float64
	repairAt float64
}

// reset rewinds the timeline to simulated time zero, replaying the same
// schedule (scripted windows, or the same seeded stochastic stream).
func (tl *timeline) reset() {
	tl.cursor = 0
	if tl.script != nil {
		tl.failAt, tl.repairAt = tl.script[0].at, tl.script[0].until
		return
	}
	if tl.mtbf <= 0 {
		tl.failAt = math.Inf(1)
		tl.repairAt = math.Inf(1)
		return
	}
	tl.src = *rng.New(tl.seed)
	tl.failAt = tl.mtbf * tl.src.ExpFloat64()
	tl.repairAt = tl.failAt + tl.repair.Sample(&tl.src)
}

// advance moves the current down interval forward until it ends after t.
func (tl *timeline) advance(t float64) {
	for tl.repairAt <= t {
		if tl.script != nil {
			tl.cursor++
			if tl.cursor >= len(tl.script) {
				tl.failAt = math.Inf(1)
				tl.repairAt = math.Inf(1)
				return
			}
			tl.failAt, tl.repairAt = tl.script[tl.cursor].at, tl.script[tl.cursor].until
			continue
		}
		tl.failAt = tl.repairAt + tl.mtbf*tl.src.ExpFloat64()
		tl.repairAt = tl.failAt + tl.repair.Sample(&tl.src)
	}
}

// mediaKey identifies one scripted per-read media fault.
type mediaKey struct{ lib, tape, read int }

// Injector evaluates a Profile against a concrete hardware geometry. The
// tape-system simulator owns one per System and consults it at operation
// boundaries; see the package comment for the determinism and concurrency
// contracts.
type Injector struct {
	prof         Profile
	drivesPerLib int
	drives       []timeline // indexed by global drive index lib*drivesPerLib+d
	robots       []timeline // indexed by library
	reads        [][]int32  // per-library per-cartridge read counts
	media        map[mediaKey]float64
	mediaSeed    uint64
}

// New builds an injector for the given geometry. The profile is validated,
// scripted outages are bounds-checked, sorted, and checked for overlap.
func New(p Profile, libraries, drivesPerLib, tapesPerLib int) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if libraries <= 0 || drivesPerLib <= 0 || tapesPerLib <= 0 {
		return nil, fmt.Errorf("faults: geometry must be positive, got %d libraries × %d drives × %d tapes",
			libraries, drivesPerLib, tapesPerLib)
	}
	in := &Injector{
		prof:         p,
		drivesPerLib: drivesPerLib,
		drives:       make([]timeline, libraries*drivesPerLib),
		robots:       make([]timeline, libraries),
		reads:        make([][]int32, libraries),
	}
	for lib := range in.reads {
		in.reads[lib] = make([]int32, tapesPerLib)
	}
	driveRepair := p.DriveRepair
	if driveRepair == nil {
		driveRepair = dist.Exponential{Mean: DefaultDriveRepairMean}
	}
	robotRepair := p.RobotRepair
	if robotRepair == nil {
		robotRepair = dist.Exponential{Mean: DefaultRobotRepairMean}
	}
	// Device streams are seeded from one master stream in fixed device
	// order, so a device's schedule depends only on (Seed, device).
	master := rng.New(p.Seed)
	for g := range in.drives {
		in.drives[g] = timeline{seed: master.Uint64(), mtbf: p.DriveMTBF, repair: driveRepair}
	}
	for lib := range in.robots {
		in.robots[lib] = timeline{seed: master.Uint64(), mtbf: p.RobotMTBF, repair: robotRepair}
	}
	in.mediaSeed = master.Uint64()
	for _, o := range p.DriveOutages {
		if o.Library < 0 || o.Library >= libraries || o.Drive < 0 || o.Drive >= drivesPerLib {
			return nil, fmt.Errorf("faults: scripted outage names drive L%d.D%d outside the %d×%d geometry",
				o.Library, o.Drive, libraries, drivesPerLib)
		}
		tl := &in.drives[o.Library*drivesPerLib+o.Drive]
		tl.script = append(tl.script, window{at: o.At, until: o.At + o.Duration})
	}
	for _, o := range p.RobotOutages {
		if o.Library < 0 || o.Library >= libraries {
			return nil, fmt.Errorf("faults: scripted outage names robot %d outside %d libraries", o.Library, libraries)
		}
		tl := &in.robots[o.Library]
		tl.script = append(tl.script, window{at: o.At, until: o.At + o.Duration})
	}
	for g := range in.drives {
		if err := sortScript(in.drives[g].script); err != nil {
			return nil, fmt.Errorf("faults: drive L%d.D%d: %w", g/drivesPerLib, g%drivesPerLib, err)
		}
	}
	for lib := range in.robots {
		if err := sortScript(in.robots[lib].script); err != nil {
			return nil, fmt.Errorf("faults: robot %d: %w", lib, err)
		}
	}
	if len(p.MediaFaults) > 0 {
		in.media = make(map[mediaKey]float64, len(p.MediaFaults))
		for _, m := range p.MediaFaults {
			if m.Library < 0 || m.Library >= libraries || m.Tape < 0 || m.Tape >= tapesPerLib {
				return nil, fmt.Errorf("faults: scripted media fault names tape L%d.T%d outside the %d×%d geometry",
					m.Library, m.Tape, libraries, tapesPerLib)
			}
			in.media[mediaKey{m.Library, m.Tape, m.Read}] = m.Frac
		}
	}
	in.Reset()
	return in, nil
}

// sortScript orders one device's scripted windows and rejects overlap.
func sortScript(ws []window) error {
	if len(ws) == 0 {
		return nil
	}
	// Windows may share a start time (the overlap check below rejects any
	// such pair with positive duration), so break ties on until to keep the
	// unstable sort deterministic.
	slices.SortFunc(ws, func(a, b window) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		return cmp.Compare(a.until, b.until)
	})
	for i := 1; i < len(ws); i++ {
		if ws[i].at < ws[i-1].until {
			return fmt.Errorf("scripted outages overlap at t=%v", ws[i].at)
		}
	}
	return nil
}

// Reset rewinds every timeline and read counter to simulated time zero.
// The same schedules replay — tapesys.System.Reset calls this so repeated
// seed runs on one system see identical fault timelines.
func (in *Injector) Reset() {
	for g := range in.drives {
		in.drives[g].reset()
	}
	for lib := range in.robots {
		in.robots[lib].reset()
	}
	for lib := range in.reads {
		clear(in.reads[lib])
	}
}

// Profile returns a copy of the injector's profile (diagnostics).
func (in *Injector) Profile() Profile { return in.prof }

// DriveDown reports whether global drive g (lib·drivesPerLib+drive) is down
// at time t, and if so when it returns to service. Per-device query times
// must be non-decreasing.
func (in *Injector) DriveDown(g int, t float64) (down bool, repairAt float64) {
	tl := &in.drives[g]
	tl.advance(t)
	if t >= tl.failAt {
		return true, tl.repairAt
	}
	return false, 0
}

// NextDriveFailure returns the start of drive g's current or next down
// interval at or after the current position — callers compare it against
// an operation's end time to decide whether the op is interrupted. Returns
// +Inf when the drive never fails again. Per-device query times must be
// non-decreasing.
func (in *Injector) NextDriveFailure(g int, t float64) float64 {
	tl := &in.drives[g]
	tl.advance(t)
	return tl.failAt
}

// RobotDown reports whether library lib's robot arm is down at time t, and
// if so when it returns to service. Per-device query times must be
// non-decreasing.
func (in *Injector) RobotDown(lib int, t float64) (down bool, repairAt float64) {
	tl := &in.robots[lib]
	tl.advance(t)
	if t >= tl.failAt {
		return true, tl.repairAt
	}
	return false, 0
}

// MediaRead draws the outcome of the next read of cartridge (lib, tape):
// whether this read hits a permanent media error and, if so, the fraction
// of the service span after which it surfaces. Each call consumes one read
// ordinal; the draw depends only on (Seed, lib, tape, ordinal).
func (in *Injector) MediaRead(lib, tape int) (failed bool, frac float64) {
	n := in.reads[lib][tape] + 1
	in.reads[lib][tape] = n
	if f, ok := in.media[mediaKey{lib, tape, int(n)}]; ok {
		return true, f
	}
	if in.prof.MediaErrorPerRead <= 0 {
		return false, 0
	}
	src := *rng.New(in.mediaSeed ^ mix3(lib, tape, int(n)))
	if src.Float64() >= in.prof.MediaErrorPerRead {
		return false, 0
	}
	// Surface the error somewhere inside the span, away from the edges.
	return true, 0.05 + 0.9*src.Float64()
}

// mix3 combines three small non-negative integers into a well-spread 64-bit
// hash (distinct odd multipliers per coordinate, SplitMix64-style).
func mix3(a, b, c int) uint64 {
	h := (uint64(a) + 1) * 0x9E3779B97F4A7C15
	h ^= (uint64(b) + 1) * 0xC2B2AE3D27D4EB4F
	h ^= (uint64(c) + 1) * 0x165667B19E3779F9
	return h
}
