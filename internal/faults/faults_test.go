package faults

import (
	"math"
	"testing"

	"paralleltape/internal/dist"
	"paralleltape/internal/rng"
)

func TestExponentialMean(t *testing.T) {
	e := dist.Exponential{Mean: 250}
	src := rng.New(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := e.Sample(src)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-250)/250 > 0.02 {
		t.Errorf("empirical mean %v, want ≈250", mean)
	}
}

func TestNewExponentialValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := dist.NewExponential(bad); err == nil {
			t.Errorf("NewExponential(%v): want error", bad)
		}
	}
	if e, err := dist.NewExponential(3); err != nil || e.Mean != 3 {
		t.Errorf("NewExponential(3) = %v, %v", e, err)
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{DriveMTBF: -1},
		{RobotMTBF: -1},
		{MediaErrorPerRead: 1.5},
		{MediaErrorPerRead: -0.1},
		{DriveOutages: []DriveOutage{{At: -1, Duration: 5}}},
		{DriveOutages: []DriveOutage{{At: 1, Duration: 0}}},
		{RobotOutages: []RobotOutage{{At: 0, Duration: -2}}},
		{MediaFaults: []MediaFault{{Read: 0, Frac: 0.5}}},
		{MediaFaults: []MediaFault{{Read: 1, Frac: 0}}},
		{MediaFaults: []MediaFault{{Read: 1, Frac: 1.5}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d: want validation error", i)
		}
	}
	good := Profile{Seed: 1, DriveMTBF: 100, RobotMTBF: 50, MediaErrorPerRead: 0.01}
	if err := good.Validate(); err != nil {
		t.Errorf("good profile: %v", err)
	}
	if !good.Enabled() {
		t.Error("good profile should be enabled")
	}
	if (&Profile{}).Enabled() {
		t.Error("zero profile should be disabled")
	}
}

func TestNewRejectsOutOfRangeScripts(t *testing.T) {
	cases := []Profile{
		{DriveOutages: []DriveOutage{{Library: 2, Drive: 0, At: 1, Duration: 1}}},
		{DriveOutages: []DriveOutage{{Library: 0, Drive: 3, At: 1, Duration: 1}}},
		{RobotOutages: []RobotOutage{{Library: -1, At: 1, Duration: 1}}},
		{MediaFaults: []MediaFault{{Library: 0, Tape: 9, Read: 1, Frac: 0.5}}},
		// Overlapping windows on one drive.
		{DriveOutages: []DriveOutage{
			{Library: 0, Drive: 0, At: 10, Duration: 20},
			{Library: 0, Drive: 0, At: 15, Duration: 5},
		}},
	}
	for i, p := range cases {
		if _, err := New(p, 2, 3, 5); err == nil {
			t.Errorf("case %d: want geometry/overlap error", i)
		}
	}
}

func TestScriptedTimeline(t *testing.T) {
	p := Profile{DriveOutages: []DriveOutage{
		{Library: 1, Drive: 0, At: 100, Duration: 50},
		{Library: 1, Drive: 0, At: 400, Duration: 25},
	}}
	in, err := New(p, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := 1*2 + 0
	if down, _ := in.DriveDown(g, 99); down {
		t.Error("down before scripted outage")
	}
	if down, until := in.DriveDown(g, 100); !down || until != 150 {
		t.Errorf("DriveDown(100) = %v, %v; want down until 150", down, until)
	}
	if next := in.NextDriveFailure(g, 200); next != 400 {
		t.Errorf("NextDriveFailure(200) = %v, want 400", next)
	}
	if down, until := in.DriveDown(g, 410); !down || until != 425 {
		t.Errorf("DriveDown(410) = %v, %v; want down until 425", down, until)
	}
	if next := in.NextDriveFailure(g, 500); !math.IsInf(next, 1) {
		t.Errorf("NextDriveFailure(500) = %v, want +Inf", next)
	}
	// Other drives stay failure-free.
	if down, _ := in.DriveDown(0, 1e9); down {
		t.Error("unscripted drive failed without MTBF")
	}
}

func TestStochasticScheduleDeterminism(t *testing.T) {
	p := Profile{Seed: 42, DriveMTBF: 1000, RobotMTBF: 5000, MediaErrorPerRead: 0.1}
	a, err := New(p, 3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(p, 3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 12; g++ {
		for _, tt := range []float64{0, 500, 1500, 9000, 50000} {
			an := a.NextDriveFailure(g, tt)
			bn := b.NextDriveFailure(g, tt)
			if an != bn {
				t.Fatalf("drive %d t=%v: schedules diverge (%v vs %v)", g, tt, an, bn)
			}
		}
	}
	for lib := 0; lib < 3; lib++ {
		ad, au := a.RobotDown(lib, 12345)
		bd, bu := b.RobotDown(lib, 12345)
		if ad != bd || au != bu {
			t.Fatalf("robot %d schedules diverge", lib)
		}
	}
	for i := 0; i < 50; i++ {
		af, afr := a.MediaRead(1, 3)
		bf, bfr := b.MediaRead(1, 3)
		if af != bf || afr != bfr {
			t.Fatalf("media draw %d diverges", i)
		}
	}
}

func TestResetReplaysSchedule(t *testing.T) {
	p := Profile{Seed: 9, DriveMTBF: 2000, MediaErrorPerRead: 0.2,
		MediaFaults: []MediaFault{{Library: 0, Tape: 1, Read: 2, Frac: 0.5}}}
	in, err := New(p, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	type draw struct {
		failed bool
		frac   float64
	}
	var first []draw
	var firstFail []float64
	for i := 0; i < 10; i++ {
		f, fr := in.MediaRead(0, 1)
		first = append(first, draw{f, fr})
	}
	for _, tt := range []float64{0, 3000, 9000} {
		firstFail = append(firstFail, in.NextDriveFailure(0, tt))
	}
	if !first[1].failed || first[1].frac != 0.5 {
		t.Errorf("scripted media fault on read 2 not applied: %+v", first[1])
	}
	in.Reset()
	for i := 0; i < 10; i++ {
		f, fr := in.MediaRead(0, 1)
		if (draw{f, fr}) != first[i] {
			t.Fatalf("media draw %d not replayed after Reset", i)
		}
	}
	for i, tt := range []float64{0, 3000, 9000} {
		if got := in.NextDriveFailure(0, tt); got != firstFail[i] {
			t.Fatalf("drive schedule not replayed after Reset: %v vs %v", got, firstFail[i])
		}
	}
}

func TestStochasticMTBFRoughlyCalibrated(t *testing.T) {
	// Over a long horizon the number of failures of one drive should be
	// near horizon/(MTBF+repairMean).
	p := Profile{Seed: 5, DriveMTBF: 1000, DriveRepair: dist.Exponential{Mean: 100}}
	in, err := New(p, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4.4e6 // ≈4000 expected cycles
	count := 0
	t0 := 0.0
	for {
		f := in.NextDriveFailure(0, t0)
		if f > horizon {
			break
		}
		count++
		_, until := in.DriveDown(0, f)
		t0 = until
	}
	expect := horizon / 1100
	if math.Abs(float64(count)-expect)/expect > 0.1 {
		t.Errorf("observed %d failure cycles, want ≈%.0f", count, expect)
	}
}
