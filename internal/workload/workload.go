// Package workload generates the paper's synthetic workloads (§6
// "Simulation Settings"):
//
//   - a fixed population of objects (default 30,000) whose sizes follow a
//     power law within a predefined range;
//   - a fixed set of predefined requests (default 300) whose lengths follow
//     a power law in [100, 150] and whose member objects are chosen
//     uniformly at random (an object may appear in several requests);
//   - request popularities following Zipf: P_r = c·r^(−α).
//
// The paper's figures quote the resulting average request size ("around
// 213 GB"); TargetMeanRequestBytes rescales object sizes to hit such a
// target exactly, which is how the Figure 7 request-size sweep is driven.
package workload

import (
	"fmt"

	"paralleltape/internal/dist"
	"paralleltape/internal/model"
	"paralleltape/internal/rng"
	"paralleltape/internal/units"
)

// Params configures generation. The zero value is not useful; start from
// Defaults().
type Params struct {
	NumObjects  int     // population size (paper: 30,000)
	NumRequests int     // predefined request count (paper: 300)
	MinObjSize  int64   // bytes, lower bound of the object-size power law
	MaxObjSize  int64   // bytes, upper bound
	ObjShape    float64 // power-law (bounded Pareto) shape for sizes
	MinReqLen   int     // min objects per request (paper: 100)
	MaxReqLen   int     // max objects per request (paper: 150)
	ReqLenShape float64 // power-law shape for request lengths
	Alpha       float64 // Zipf skew of request popularity (paper default 0.3)
}

// Defaults returns the paper's settings. The object-size bounds are chosen
// so the default mean request size lands near the ≈213 GB the paper quotes
// for Figure 6 (the paper does not publish its exact bounds or exponents;
// see DESIGN.md §6 "Substitutions"). With shape 1.1 on [256 MB, 16 GB] the
// mean object size is ≈1.7 GB, giving ≈209 GB per 120-object request, and
// 30,000 objects total ≈51 TB against 96 TB of raw tape capacity — the same
// "objects cannot all stay mounted" regime as the paper.
func Defaults() Params {
	return Params{
		NumObjects:  30000,
		NumRequests: 300,
		MinObjSize:  256 * units.MB,
		MaxObjSize:  16 * units.GB,
		ObjShape:    1.1,
		MinReqLen:   100,
		MaxReqLen:   150,
		ReqLenShape: 1.0,
		Alpha:       0.3,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.NumObjects <= 0:
		return fmt.Errorf("workload: NumObjects must be positive, got %d", p.NumObjects)
	case p.NumRequests <= 0:
		return fmt.Errorf("workload: NumRequests must be positive, got %d", p.NumRequests)
	case p.MinObjSize <= 0 || p.MaxObjSize < p.MinObjSize:
		return fmt.Errorf("workload: bad object size range [%d,%d]", p.MinObjSize, p.MaxObjSize)
	case p.ObjShape <= 0:
		return fmt.Errorf("workload: ObjShape must be positive, got %v", p.ObjShape)
	case p.MinReqLen <= 0 || p.MaxReqLen < p.MinReqLen:
		return fmt.Errorf("workload: bad request length range [%d,%d]", p.MinReqLen, p.MaxReqLen)
	case p.MaxReqLen > p.NumObjects:
		return fmt.Errorf("workload: MaxReqLen %d exceeds object population %d", p.MaxReqLen, p.NumObjects)
	case p.ReqLenShape < 0:
		return fmt.Errorf("workload: ReqLenShape must be non-negative, got %v", p.ReqLenShape)
	case p.Alpha < 0:
		return fmt.Errorf("workload: Alpha must be non-negative, got %v", p.Alpha)
	}
	return nil
}

// Generate builds a workload from p using the given random stream.
func Generate(p Params, src *rng.Source) (*model.Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sizeDist, err := dist.NewBoundedPareto(float64(p.MinObjSize), float64(p.MaxObjSize), p.ObjShape)
	if err != nil {
		return nil, err
	}
	lenDist, err := dist.NewPowerLawInt(p.MinReqLen, p.MaxReqLen, p.ReqLenShape)
	if err != nil {
		return nil, err
	}
	zipf := dist.NewZipf(p.NumRequests, p.Alpha)

	w := &model.Workload{
		Objects:  make([]model.Object, p.NumObjects),
		Requests: make([]model.Request, p.NumRequests),
	}
	for i := range w.Objects {
		w.Objects[i] = model.Object{
			ID:   model.ObjectID(i),
			Size: sizeDist.SampleInt(src),
		}
	}
	for i := range w.Requests {
		nObj := lenDist.Sample(src)
		members := src.SampleInts(p.NumObjects, nObj)
		ids := make([]model.ObjectID, nObj)
		for j, m := range members {
			ids[j] = model.ObjectID(m)
		}
		w.Requests[i] = model.Request{
			ID:      model.RequestID(i),
			Prob:    zipf.Prob(i + 1), // request i has popularity rank i+1
			Objects: ids,
		}
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated workload invalid: %w", err)
	}
	return w, nil
}

// TargetMeanRequestBytes rescales all object sizes in w so that the
// popularity-weighted mean request size equals target bytes. Figure 7's
// sweep ("the request size is changed by changing the object size") and the
// fixed averages quoted for Figures 6/8/9 are produced this way. Returns
// the scale factor applied.
func TargetMeanRequestBytes(w *model.Workload, target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("workload: target mean request size must be positive, got %v", target)
	}
	cur := w.MeanRequestBytes()
	if cur <= 0 {
		return 0, fmt.Errorf("workload: workload has zero mean request size")
	}
	factor := target / cur
	if err := w.ScaleObjectSizes(factor); err != nil {
		return 0, err
	}
	return factor, nil
}

// ReplaceAlpha returns a copy of w with request popularities reassigned
// from a Zipf distribution with the given alpha (same ranking: request ID i
// keeps rank i+1). The object membership of each request is unchanged, so
// Figure 6's alpha sweep isolates popularity skew from workload structure.
func ReplaceAlpha(w *model.Workload, alpha float64) (*model.Workload, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("workload: alpha must be non-negative, got %v", alpha)
	}
	out := w.Clone()
	z := dist.NewZipf(len(out.Requests), alpha)
	for i := range out.Requests {
		out.Requests[i].Prob = z.Prob(i + 1)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// RequestStream draws simulated request arrivals from the workload's
// popularity distribution. The paper submits 200 requests one at a time
// (no queuing) and averages the metrics.
type RequestStream struct {
	w   *model.Workload
	d   *dist.Discrete
	src *rng.Source
}

// NewRequestStream builds a stream over w's requests using src.
func NewRequestStream(w *model.Workload, src *rng.Source) (*RequestStream, error) {
	weights := make([]float64, len(w.Requests))
	for i := range w.Requests {
		weights[i] = w.Requests[i].Prob
	}
	d, err := dist.NewDiscrete(weights)
	if err != nil {
		return nil, fmt.Errorf("workload: building request sampler: %w", err)
	}
	return &RequestStream{w: w, d: d, src: src}, nil
}

// Next draws the next request to submit.
func (s *RequestStream) Next() *model.Request {
	return &s.w.Requests[s.d.Sample(s.src)]
}

// Draw returns n request draws.
func (s *RequestStream) Draw(n int) []*model.Request {
	out := make([]*model.Request, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
