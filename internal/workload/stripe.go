package workload

import (
	"fmt"

	"paralleltape/internal/model"
)

// Stripe splits every object of w into shards of at most unit bytes and
// rewrites every request to reference all shards of its objects. Placing
// the shard workload with a round-robin scheme reproduces tape striping
// (RAIT-style): consecutive shards land on consecutive cartridges and one
// logical object streams from several drives at once.
//
// The paper's §2 surveys striping on tape [10,13,14,15] and argues it can
// lose to non-striped placement because a striped request must synchronize
// across all member tapes; the striping experiment regenerates that
// comparison.
//
// The returned workload is fully independent of w. Parent returns, for
// each shard, the original object it came from.
func Stripe(w *model.Workload, unit int64) (*model.Workload, []model.ObjectID, error) {
	if unit <= 0 {
		return nil, nil, fmt.Errorf("workload: stripe unit must be positive, got %d", unit)
	}
	out := &model.Workload{}
	var parent []model.ObjectID
	// firstShard[o] is the shard ID of object o's first shard; shards of
	// one object are consecutive.
	firstShard := make([]model.ObjectID, len(w.Objects))
	shardCount := make([]int32, len(w.Objects))
	var next model.ObjectID
	for i := range w.Objects {
		o := &w.Objects[i]
		firstShard[i] = next
		remaining := o.Size
		for remaining > 0 {
			size := unit
			if remaining < unit {
				size = remaining
			}
			out.Objects = append(out.Objects, model.Object{ID: next, Size: size})
			parent = append(parent, o.ID)
			next++
			shardCount[i]++
			remaining -= size
		}
	}
	for i := range w.Requests {
		r := &w.Requests[i]
		nr := model.Request{ID: r.ID, Prob: r.Prob}
		for _, id := range r.Objects {
			base := firstShard[id]
			for s := int32(0); s < shardCount[id]; s++ {
				nr.Objects = append(nr.Objects, base+model.ObjectID(s))
			}
		}
		out.Requests = append(out.Requests, nr)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: striped workload invalid: %w", err)
	}
	return out, parent, nil
}
