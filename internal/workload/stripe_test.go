package workload

import (
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/rng"
)

func stripeBase() *model.Workload {
	return &model.Workload{
		Objects: []model.Object{
			{ID: 0, Size: 250}, // 3 shards at unit 100
			{ID: 1, Size: 100}, // 1 shard
			{ID: 2, Size: 101}, // 2 shards
		},
		Requests: []model.Request{
			{ID: 0, Prob: 0.5, Objects: []model.ObjectID{0, 1}},
			{ID: 1, Prob: 0.5, Objects: []model.ObjectID{2}},
		},
	}
}

func TestStripeShardSizes(t *testing.T) {
	sw, parent, err := Stripe(stripeBase(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if sw.NumObjects() != 6 {
		t.Fatalf("shards = %d, want 6", sw.NumObjects())
	}
	wantSizes := []int64{100, 100, 50, 100, 100, 1}
	wantParent := []model.ObjectID{0, 0, 0, 1, 2, 2}
	for i, o := range sw.Objects {
		if o.Size != wantSizes[i] {
			t.Errorf("shard %d size %d, want %d", i, o.Size, wantSizes[i])
		}
		if parent[i] != wantParent[i] {
			t.Errorf("shard %d parent %d, want %d", i, parent[i], wantParent[i])
		}
	}
	// Total bytes conserved.
	if sw.TotalObjectBytes() != stripeBase().TotalObjectBytes() {
		t.Errorf("striping changed total bytes")
	}
}

func TestStripeRequestsExpand(t *testing.T) {
	sw, _, err := Stripe(stripeBase(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Requests[0].Objects) != 4 { // 3 shards of obj 0 + 1 of obj 1
		t.Errorf("request 0 shards: %v", sw.Requests[0].Objects)
	}
	if len(sw.Requests[1].Objects) != 2 {
		t.Errorf("request 1 shards: %v", sw.Requests[1].Objects)
	}
	// Byte volume per request preserved.
	base := stripeBase()
	for i := range base.Requests {
		if sw.RequestBytes(&sw.Requests[i]) != base.RequestBytes(&base.Requests[i]) {
			t.Errorf("request %d bytes changed", i)
		}
	}
}

func TestStripeUnitLargerThanObjects(t *testing.T) {
	sw, parent, err := Stripe(stripeBase(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sw.NumObjects() != 3 {
		t.Errorf("oversized unit should keep objects whole: %d", sw.NumObjects())
	}
	for i, p := range parent {
		if int(p) != i {
			t.Errorf("identity mapping broken: %v", parent)
		}
	}
}

func TestStripeRejectsBadUnit(t *testing.T) {
	for _, unit := range []int64{0, -5} {
		if _, _, err := Stripe(stripeBase(), unit); err == nil {
			t.Errorf("unit %d accepted", unit)
		}
	}
}

func TestStripeGeneratedWorkloadValid(t *testing.T) {
	p := smallParams()
	w, err := Generate(p, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	sw, parent, err := Stripe(w, p.MinObjSize) // aggressive striping
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(parent) != sw.NumObjects() {
		t.Errorf("parent len %d vs %d shards", len(parent), sw.NumObjects())
	}
	if sw.NumObjects() <= w.NumObjects() {
		t.Errorf("aggressive striping produced no extra shards")
	}
	if sw.TotalObjectBytes() != w.TotalObjectBytes() {
		t.Errorf("bytes not conserved")
	}
}
