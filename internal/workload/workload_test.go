package workload

import (
	"math"
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/rng"
	"paralleltape/internal/units"
)

// smallParams keeps unit tests fast while preserving the paper's structure.
func smallParams() Params {
	p := Defaults()
	p.NumObjects = 2000
	p.NumRequests = 50
	p.MinReqLen = 10
	p.MaxReqLen = 15
	return p
}

func TestDefaultsValid(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Errorf("Defaults invalid: %v", err)
	}
}

func TestGenerateStructure(t *testing.T) {
	w, err := Generate(smallParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("generated workload invalid: %v", err)
	}
	if w.NumObjects() != 2000 || w.NumRequests() != 50 {
		t.Errorf("counts: %d objects, %d requests", w.NumObjects(), w.NumRequests())
	}
	p := smallParams()
	for _, o := range w.Objects {
		if o.Size < p.MinObjSize || o.Size > p.MaxObjSize {
			t.Fatalf("object %d size %d outside [%d,%d]", o.ID, o.Size, p.MinObjSize, p.MaxObjSize)
		}
	}
	for _, r := range w.Requests {
		if len(r.Objects) < p.MinReqLen || len(r.Objects) > p.MaxReqLen {
			t.Fatalf("request %d has %d objects", r.ID, len(r.Objects))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallParams(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallParams(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Fatalf("objects diverge at %d", i)
		}
	}
	for i := range a.Requests {
		if len(a.Requests[i].Objects) != len(b.Requests[i].Objects) {
			t.Fatalf("request %d lengths diverge", i)
		}
		for j := range a.Requests[i].Objects {
			if a.Requests[i].Objects[j] != b.Requests[i].Objects[j] {
				t.Fatalf("request %d member %d diverges", i, j)
			}
		}
	}
}

func TestGenerateZipfPopularity(t *testing.T) {
	w, err := Generate(smallParams(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Probabilities decrease with rank and follow r^-alpha.
	for i := 1; i < len(w.Requests); i++ {
		if w.Requests[i].Prob > w.Requests[i-1].Prob {
			t.Fatalf("popularity not decreasing at rank %d", i+1)
		}
	}
	ratio := w.Requests[0].Prob / w.Requests[1].Prob
	want := math.Pow(2, smallParams().Alpha)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("P(1)/P(2) = %v, want %v", ratio, want)
	}
}

func TestGenerateObjectSizeSkew(t *testing.T) {
	w, err := Generate(smallParams(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Power law: median far below midpoint of the range.
	small := 0
	mid := (smallParams().MinObjSize + smallParams().MaxObjSize) / 2
	for _, o := range w.Objects {
		if o.Size < mid {
			small++
		}
	}
	if frac := float64(small) / float64(len(w.Objects)); frac < 0.8 {
		t.Errorf("object sizes not power-law-skewed: fraction below midpoint = %v", frac)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := map[string]func(*Params){
		"objects<=0":     func(p *Params) { p.NumObjects = 0 },
		"requests<=0":    func(p *Params) { p.NumRequests = 0 },
		"minsize<=0":     func(p *Params) { p.MinObjSize = 0 },
		"max<min size":   func(p *Params) { p.MaxObjSize = p.MinObjSize - 1 },
		"shape<=0":       func(p *Params) { p.ObjShape = 0 },
		"minlen<=0":      func(p *Params) { p.MinReqLen = 0 },
		"max<min len":    func(p *Params) { p.MaxReqLen = p.MinReqLen - 1 },
		"len>population": func(p *Params) { p.MaxReqLen = p.NumObjects + 1 },
		"reqshape<0":     func(p *Params) { p.ReqLenShape = -1 },
		"alpha<0":        func(p *Params) { p.Alpha = -0.5 },
	}
	for name, mutate := range mutations {
		p := smallParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
		if _, err := Generate(p, rng.New(1)); err == nil {
			t.Errorf("%s: Generate accepted invalid params", name)
		}
	}
}

func TestTargetMeanRequestBytes(t *testing.T) {
	w, err := Generate(smallParams(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	target := float64(213 * units.GB)
	factor, err := TargetMeanRequestBytes(w, target)
	if err != nil {
		t.Fatal(err)
	}
	if factor <= 0 {
		t.Errorf("factor = %v", factor)
	}
	got := w.MeanRequestBytes()
	if math.Abs(got-target)/target > 0.001 {
		t.Errorf("mean request bytes = %v, want %v", got, target)
	}
}

func TestTargetMeanRequestBytesErrors(t *testing.T) {
	w, _ := Generate(smallParams(), rng.New(5))
	if _, err := TargetMeanRequestBytes(w, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := TargetMeanRequestBytes(w, -1); err == nil {
		t.Error("negative target accepted")
	}
}

func TestReplaceAlpha(t *testing.T) {
	w, _ := Generate(smallParams(), rng.New(6))
	flat, err := ReplaceAlpha(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat.Requests {
		if math.Abs(flat.Requests[i].Prob-1.0/50) > 1e-12 {
			t.Fatalf("alpha=0 request %d prob %v", i, flat.Requests[i].Prob)
		}
	}
	// Original untouched.
	if w.Requests[0].Prob == flat.Requests[0].Prob {
		t.Error("ReplaceAlpha mutated input (or alpha had no effect)")
	}
	// Membership preserved.
	for i := range w.Requests {
		if len(w.Requests[i].Objects) != len(flat.Requests[i].Objects) {
			t.Fatalf("request %d membership changed", i)
		}
	}
	if _, err := ReplaceAlpha(w, -1); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestRequestStreamFrequencies(t *testing.T) {
	w := &model.Workload{
		Objects: []model.Object{{ID: 0, Size: 1}},
		Requests: []model.Request{
			{ID: 0, Prob: 0.8, Objects: []model.ObjectID{0}},
			{ID: 1, Prob: 0.2, Objects: []model.ObjectID{0}},
		},
	}
	s, err := NewRequestStream(w, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	count0 := 0
	for i := 0; i < n; i++ {
		if s.Next().ID == 0 {
			count0++
		}
	}
	if frac := float64(count0) / n; math.Abs(frac-0.8) > 0.01 {
		t.Errorf("request 0 drawn with frequency %v, want 0.8", frac)
	}
}

func TestRequestStreamDraw(t *testing.T) {
	w, _ := Generate(smallParams(), rng.New(9))
	s, err := NewRequestStream(w, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	reqs := s.Draw(200)
	if len(reqs) != 200 {
		t.Fatalf("Draw(200) returned %d", len(reqs))
	}
	for _, r := range reqs {
		if r == nil || int(r.ID) >= w.NumRequests() {
			t.Fatal("stream returned invalid request")
		}
	}
}

func TestPaperScaleGeneration(t *testing.T) {
	// Full paper-scale generation (30k objects, 300 requests) must work and
	// produce a mean request size in the hundreds of GB.
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	w, err := Generate(Defaults(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	mean := w.MeanRequestBytes()
	if mean < float64(100*units.GB) || mean > float64(400*units.GB) {
		t.Errorf("default mean request size = %s, want order of the paper's ≈213 GB",
			units.FormatBytesSI(int64(mean)))
	}
	stats := w.ComputeStats()
	if stats.MeanRequestLen < 100 || stats.MeanRequestLen > 150 {
		t.Errorf("mean request length %v outside [100,150]", stats.MeanRequestLen)
	}
	// Total data must exceed always-mountable capacity but fit on
	// 3 libraries × 80 tapes × 400 GB.
	if stats.TotalBytes > 96*units.TB {
		t.Errorf("total bytes %s exceed raw capacity 96 TB", units.FormatBytesSI(stats.TotalBytes))
	}
	if stats.TotalBytes < 10*units.TB {
		t.Errorf("total bytes %s too small to exercise tape switching", units.FormatBytesSI(stats.TotalBytes))
	}
}
