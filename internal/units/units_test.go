package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1.00 KiB"},
		{1536, "1.50 KiB"},
		{MiB, "1.00 MiB"},
		{GiB + GiB/2, "1.50 GiB"},
		{TiB, "1.00 TiB"},
		{3 * PiB, "3.00 PiB"},
		{-2 * GiB, "-2.00 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatBytesSI(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{400 * GB, "400.00 GB"},
		{80 * MB, "80.00 MB"},
		{999, "999 B"},
		{KB, "1.00 kB"},
		{96 * TB, "96.00 TB"},
		{2 * PB, "2.00 PB"},
		{-400 * GB, "-400.00 GB"},
	}
	for _, c := range cases {
		if got := FormatBytesSI(c.in); got != c.want {
			t.Errorf("FormatBytesSI(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{80e6, "80.00 MB/s"},
		{1.5e9, "1.50 GB/s"},
		{2e12, "2.00 TB/s"},
		{500, "500.00 B/s"},
		{3.2e3, "3.20 kB/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.in); got != c.want {
			t.Errorf("FormatRate(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0.00s"},
		{7.6, "7.60s"},
		{72, "1m12.0s"},
		{98, "1m38.0s"},
		{3600, "1h00m"},
		{3912, "1h05m"},
		{-5, "-5.00s"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSecondsNonFinite(t *testing.T) {
	if got := FormatSeconds(math.NaN()); got != "NaN" {
		t.Errorf("FormatSeconds(NaN) = %q", got)
	}
	if got := FormatSeconds(math.Inf(1)); !strings.Contains(got, "Inf") {
		t.Errorf("FormatSeconds(+Inf) = %q", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"400GB", 400 * GB},
		{"400 GB", 400 * GB},
		{"80MB", 80 * MB},
		{"1.5TB", 1500 * GB},
		{"512MiB", 512 * MiB},
		{"2KiB", 2 * KiB},
		{"1024", 1024},
		{"0", 0},
		{"1e3", 1000},
		{"1e3 kB", 1000 * KB},
		{"3g", 3 * GB},
		{"7 t", 7 * TB},
		{"2pb", 2 * PB},
		{"1pib", PiB},
		{"-1kb", -KB},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "  ", "GB", "12XB", "1.2.3GB", "9e99GB", "nanGB", "1 flargs"} {
		if got, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", in, got)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	// FormatBytesSI output of exact multiples must re-parse to same value.
	for _, n := range []int64{0, 400 * GB, 96 * TB, 80 * MB, 5 * KB} {
		s := FormatBytesSI(n)
		got, err := ParseBytes(s)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", s, err)
		}
		if got != n {
			t.Errorf("round trip %d -> %q -> %d", n, s, got)
		}
	}
}

func TestParseBytesQuick(t *testing.T) {
	// Property: for any non-negative GiB count below 8 PiB, formatting via
	// FormatBytes and reparsing loses at most 0.5% (two decimal places).
	f := func(gib uint16) bool {
		n := int64(gib) * GiB
		got, err := ParseBytes(FormatBytes(n))
		if err != nil {
			return false
		}
		if n == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-n)) / float64(n)
		return rel < 0.005
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.62); got != "62.0%" {
		t.Errorf("Percent(0.62) = %q", got)
	}
	if got := Percent(0.191); got != "19.1%" {
		t.Errorf("Percent(0.191) = %q", got)
	}
	if got := Percent(1); got != "100.0%" {
		t.Errorf("Percent(1) = %q", got)
	}
}
