package units

import (
	"strings"
	"testing"
)

// FuzzParseBytes checks ParseBytes never panics and that accepted inputs
// re-format/re-parse consistently.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{"400GB", "1.5 TiB", "", "nan", "1e3 kB", "-2MiB", "9e999", "12", "GB", "1 flargs"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		n, err := ParseBytes(in)
		if err != nil {
			return
		}
		// Any accepted value must format without panicking, and exact SI
		// multiples must round-trip.
		_ = FormatBytes(n)
		s := FormatBytesSI(n)
		// Only exact-GB values below 1 TB render losslessly at two
		// decimals ("999.00 GB"); larger values switch units and truncate.
		if n >= 0 && n%GB == 0 && n < 1000*GB {
			back, err := ParseBytes(s)
			if err != nil {
				t.Fatalf("reparse of %q (from %q = %d) failed: %v", s, in, n, err)
			}
			if back != n {
				t.Fatalf("round trip %q -> %d -> %q -> %d", in, n, s, back)
			}
		}
	})
}

// FuzzFormatSeconds ensures no input crashes the duration formatter.
func FuzzFormatSeconds(f *testing.F) {
	for _, seed := range []float64{0, -1, 59.9, 3600, 1e18, -1e18} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s float64) {
		out := FormatSeconds(s)
		if out == "" {
			t.Fatal("empty formatting")
		}
		if s >= 0 && s < 1e15 && strings.HasPrefix(out, "-") {
			t.Fatalf("non-negative %v formatted negative: %q", s, out)
		}
	})
}
