// Package units provides byte-size and duration helpers used throughout the
// simulator. Tape capacities and transfer sizes are held as int64 byte
// counts; simulated time is held as float64 seconds. This package formats
// and parses both.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Byte size constants (IEC, powers of 1024). Tape vendors quote decimal
// units, but the paper's arithmetic (400 GB tapes, 80 MB/s drives) works out
// the same either way; we standardize on IEC internally.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
	PiB int64 = 1 << 50
)

// Decimal byte constants (SI, powers of 1000) for matching vendor specs
// such as "400 GB" cartridges and "80 MB/s" native transfer rates.
const (
	KB int64 = 1e3
	MB int64 = 1e6
	GB int64 = 1e9
	TB int64 = 1e12
	PB int64 = 1e15
)

// FormatBytes renders n as a human readable IEC string, e.g. "1.50 GiB".
// Values below 1 KiB are rendered as plain bytes.
func FormatBytes(n int64) string {
	neg := ""
	un := uint64(n)
	if n < 0 {
		neg = "-"
		un = uint64(-n)
	}
	switch {
	case un >= uint64(PiB):
		return fmt.Sprintf("%s%.2f PiB", neg, float64(un)/float64(PiB))
	case un >= uint64(TiB):
		return fmt.Sprintf("%s%.2f TiB", neg, float64(un)/float64(TiB))
	case un >= uint64(GiB):
		return fmt.Sprintf("%s%.2f GiB", neg, float64(un)/float64(GiB))
	case un >= uint64(MiB):
		return fmt.Sprintf("%s%.2f MiB", neg, float64(un)/float64(MiB))
	case un >= uint64(KiB):
		return fmt.Sprintf("%s%.2f KiB", neg, float64(un)/float64(KiB))
	default:
		return fmt.Sprintf("%s%d B", neg, un)
	}
}

// FormatBytesSI renders n using decimal multiples, e.g. "400.00 GB", which
// matches how the paper and tape vendors quote capacities.
func FormatBytesSI(n int64) string {
	neg := ""
	un := uint64(n)
	if n < 0 {
		neg = "-"
		un = uint64(-n)
	}
	switch {
	case un >= uint64(PB):
		return fmt.Sprintf("%s%.2f PB", neg, float64(un)/float64(PB))
	case un >= uint64(TB):
		return fmt.Sprintf("%s%.2f TB", neg, float64(un)/float64(TB))
	case un >= uint64(GB):
		return fmt.Sprintf("%s%.2f GB", neg, float64(un)/float64(GB))
	case un >= uint64(MB):
		return fmt.Sprintf("%s%.2f MB", neg, float64(un)/float64(MB))
	case un >= uint64(KB):
		return fmt.Sprintf("%s%.2f kB", neg, float64(un)/float64(KB))
	default:
		return fmt.Sprintf("%s%d B", neg, un)
	}
}

// FormatRate renders a bandwidth in bytes/second, e.g. "80.00 MB/s".
func FormatRate(bytesPerSecond float64) string {
	abs := math.Abs(bytesPerSecond)
	switch {
	case abs >= float64(TB):
		return fmt.Sprintf("%.2f TB/s", bytesPerSecond/float64(TB))
	case abs >= float64(GB):
		return fmt.Sprintf("%.2f GB/s", bytesPerSecond/float64(GB))
	case abs >= float64(MB):
		return fmt.Sprintf("%.2f MB/s", bytesPerSecond/float64(MB))
	case abs >= float64(KB):
		return fmt.Sprintf("%.2f kB/s", bytesPerSecond/float64(KB))
	default:
		return fmt.Sprintf("%.2f B/s", bytesPerSecond)
	}
}

// FormatSeconds renders a simulated duration in seconds with an adaptive
// unit: "482.1s", "12m02s" or "1h03m" for long restores.
func FormatSeconds(s float64) string {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Sprintf("%v", s)
	}
	neg := ""
	if s < 0 {
		neg = "-"
		s = -s
	}
	switch {
	case s >= 3600:
		h := int(s) / 3600
		m := (int(s) % 3600) / 60
		return fmt.Sprintf("%s%dh%02dm", neg, h, m)
	case s >= 60:
		m := int(s) / 60
		sec := s - float64(m*60)
		return fmt.Sprintf("%s%dm%04.1fs", neg, m, sec)
	default:
		return fmt.Sprintf("%s%.2fs", neg, s)
	}
}

// ParseBytes parses strings like "400GB", "1.5 TiB", "512 MiB", "80MB" into
// a byte count. Both SI (kB/MB/GB/TB/PB) and IEC (KiB/MiB/GiB/TiB/PiB)
// suffixes are accepted; a bare number is bytes. Parsing is
// case-insensitive except that SI "kB" and IEC "KiB" resolve by the
// presence of the 'i'.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	// Split numeric prefix from unit suffix.
	i := 0
	for i < len(t) && (t[i] == '+' || t[i] == '-' || t[i] == '.' || (t[i] >= '0' && t[i] <= '9') || t[i] == 'e' || t[i] == 'E') {
		// Stop treating 'e'/'E' as numeric if it begins the unit (e.g. "1EB"
		// is not supported anyway; bail at a letter that isn't scientific
		// notation). Scientific notation requires a digit after e/±.
		if t[i] == 'e' || t[i] == 'E' {
			if i+1 >= len(t) {
				break
			}
			c := t[i+1]
			if !(c == '+' || c == '-' || (c >= '0' && c <= '9')) {
				break
			}
		}
		i++
	}
	numStr := strings.TrimSpace(t[:i])
	unitStr := strings.TrimSpace(t[i:])
	val, err := strconv.ParseFloat(numStr, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad byte size %q: %v", s, err)
	}
	mult := float64(1)
	switch strings.ToLower(unitStr) {
	case "", "b":
		mult = 1
	case "kb", "k":
		mult = float64(KB)
	case "mb", "m":
		mult = float64(MB)
	case "gb", "g":
		mult = float64(GB)
	case "tb", "t":
		mult = float64(TB)
	case "pb", "p":
		mult = float64(PB)
	case "kib":
		mult = float64(KiB)
	case "mib":
		mult = float64(MiB)
	case "gib":
		mult = float64(GiB)
	case "tib":
		mult = float64(TiB)
	case "pib":
		mult = float64(PiB)
	default:
		return 0, fmt.Errorf("units: unknown byte unit %q in %q", unitStr, s)
	}
	out := val * mult
	if math.IsNaN(out) || out > math.MaxInt64 || out < math.MinInt64 {
		return 0, fmt.Errorf("units: byte size %q out of range", s)
	}
	return int64(out), nil
}

// Percent formats a ratio in [0,1] as "NN.N%".
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", 100*ratio)
}
