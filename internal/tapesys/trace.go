package tapesys

import (
	"fmt"
	"io"
	"sort"

	"paralleltape/internal/sim"
)

// EventKind labels one simulator event in a recorded trace.
type EventKind int

const (
	// EvSubmit marks a request submission.
	EvSubmit EventKind = iota
	// EvServeStart marks a drive beginning to seek+read a tape group.
	EvServeStart
	// EvServeEnd marks a drive finishing a tape group.
	EvServeEnd
	// EvRewindStart marks the beginning of a switch's rewind+unload phase.
	EvRewindStart
	// EvRobotStart marks the robot beginning the stow+fetch moves.
	EvRobotStart
	// EvLoadStart marks the drive loading/threading the incoming tape.
	EvLoadStart
	// EvMounted marks the incoming tape ready at BOT.
	EvMounted
	// EvComplete marks request completion.
	EvComplete
	// EvDriveFailed marks a drive taken out of service.
	EvDriveFailed
)

func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvServeStart:
		return "serve-start"
	case EvServeEnd:
		return "serve-end"
	case EvRewindStart:
		return "rewind"
	case EvRobotStart:
		return "robot"
	case EvLoadStart:
		return "load"
	case EvMounted:
		return "mounted"
	case EvComplete:
		return "complete"
	case EvDriveFailed:
		return "drive-failed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one recorded simulator event.
type Event struct {
	Time    float64
	Kind    EventKind
	Library int
	Drive   int // -1 when not drive-scoped
	Tape    int // library-local tape index, -1 when not tape-scoped
	Request int32
	Bytes   int64
}

// Trace records simulator events when enabled via System.EnableTrace.
type Trace struct {
	Events []Event
	limit  int
}

// EnableTrace starts recording events (keeping at most limit events;
// limit <= 0 means unbounded). It returns the live trace.
func (s *System) EnableTrace(limit int) *Trace {
	s.trace = &Trace{limit: limit}
	return s.trace
}

// DisableTrace stops recording.
func (s *System) DisableTrace() { s.trace = nil }

func (s *System) emit(ev Event) {
	t := s.trace
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.Events) >= t.limit {
		return
	}
	ev.Time = s.eng.Now()
	t.Events = append(t.Events, ev)
}

// WriteText renders the trace as one line per event.
func (t *Trace) WriteText(w io.Writer) error {
	for _, ev := range t.Events {
		var loc string
		switch {
		case ev.Drive >= 0 && ev.Tape >= 0:
			loc = fmt.Sprintf("L%d.D%d (tape %d)", ev.Library, ev.Drive, ev.Tape)
		case ev.Drive >= 0:
			loc = fmt.Sprintf("L%d.D%d", ev.Library, ev.Drive)
		default:
			loc = "-"
		}
		if _, err := fmt.Fprintf(w, "%10.2fs  %-12s req=%-4d %-18s bytes=%d\n",
			ev.Time, ev.Kind, ev.Request, loc, ev.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// DriveStats summarizes one drive's lifetime activity.
type DriveStats struct {
	Library, Drive int
	BusySeconds    float64 // seeking + transferring
	SwitchSeconds  float64 // rewind/unload/robot-wait/load time
	BytesMoved     int64
	Mounts         int
	Failed         bool
}

// DriveReport returns per-drive statistics in (library, drive) order.
func (s *System) DriveReport() []DriveStats {
	var out []DriveStats
	for _, l := range s.libs {
		for _, d := range l.drives {
			out = append(out, DriveStats{
				Library:       d.lib,
				Drive:         d.idx,
				BusySeconds:   d.busySeconds,
				SwitchSeconds: d.switchSeconds,
				BytesMoved:    d.bytesMoved,
				Mounts:        d.mounts,
				Failed:        d.failed,
			})
		}
	}
	return out
}

// RobotStats summarizes one library robot.
type RobotStats struct {
	Library      int
	Stats        sim.ResourceStats
	UtilPercent  float64 // busy share of the elapsed simulated time
	WaitPerGrant float64
}

// RobotReport returns per-library robot statistics.
func (s *System) RobotReport() []RobotStats {
	elapsed := s.eng.Now()
	var out []RobotStats
	for _, l := range s.libs {
		st := l.robot.Stats()
		rs := RobotStats{Library: l.idx, Stats: st}
		if elapsed > 0 {
			rs.UtilPercent = 100 * st.BusyTotal / elapsed
		}
		if st.Acquisitions > 0 {
			rs.WaitPerGrant = st.WaitTotal / float64(st.Acquisitions)
		}
		out = append(out, rs)
	}
	return out
}

// WriteUtilization renders drive and robot utilization tables.
func (s *System) WriteUtilization(w io.Writer) error {
	elapsed := s.eng.Now()
	if _, err := fmt.Fprintf(w, "simulated time: %.1fs\n\ndrive      busy%%  switch%%  mounts  moved\n", elapsed); err != nil {
		return err
	}
	drives := s.DriveReport()
	sort.Slice(drives, func(i, j int) bool {
		if drives[i].Library != drives[j].Library {
			return drives[i].Library < drives[j].Library
		}
		return drives[i].Drive < drives[j].Drive
	})
	for _, d := range drives {
		busyPct, switchPct := 0.0, 0.0
		if elapsed > 0 {
			busyPct = 100 * d.BusySeconds / elapsed
			switchPct = 100 * d.SwitchSeconds / elapsed
		}
		flag := ""
		if d.Failed {
			flag = "  FAILED"
		}
		if _, err := fmt.Fprintf(w, "L%d.D%-2d     %5.1f  %6.1f   %5d  %8.1f GB%s\n",
			d.Library, d.Drive, busyPct, switchPct, d.Mounts, float64(d.BytesMoved)/1e9, flag); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nrobot   util%%   grants  wait/grant\n"); err != nil {
		return err
	}
	for _, r := range s.RobotReport() {
		if _, err := fmt.Fprintf(w, "L%-2d     %5.1f   %6d  %9.2fs\n",
			r.Library, r.UtilPercent, r.Stats.Acquisitions, r.WaitPerGrant); err != nil {
			return err
		}
	}
	return nil
}

// FailDrive takes a drive out of service between requests: its mounted
// tape (if any) is returned to its cell immediately (the robot operation
// is assumed to happen during the idle period) and the drive never serves
// or switches again. Pinned drives lose their pin — their content becomes
// switchable like any offline tape. It fails if the system is mid-request
// or the drive does not exist.
func (s *System) FailDrive(library, drive int) error {
	if s.eng.Pending() > 0 {
		return fmt.Errorf("tapesys: cannot fail a drive mid-request")
	}
	if library < 0 || library >= len(s.libs) {
		return fmt.Errorf("tapesys: no library %d", library)
	}
	l := s.libs[library]
	if drive < 0 || drive >= len(l.drives) {
		return fmt.Errorf("tapesys: no drive %d in library %d", drive, library)
	}
	d := l.drives[drive]
	if d.failed {
		return fmt.Errorf("tapesys: drive L%d.D%d already failed", library, drive)
	}
	d.failed = true
	d.pinned = false
	if d.mounted >= 0 {
		delete(l.byTape, d.mounted)
		d.mounted = -1
		d.headPos = 0
	}
	s.emit(Event{Kind: EvDriveFailed, Library: library, Drive: drive, Tape: -1, Request: -1})
	return nil
}

// FailedDrives returns the count of out-of-service drives.
func (s *System) FailedDrives() int {
	n := 0
	for _, l := range s.libs {
		for _, d := range l.drives {
			if d.failed {
				n++
			}
		}
	}
	return n
}
