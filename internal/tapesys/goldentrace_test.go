package tapesys

// Golden-file and determinism tests for the exported trace schema: a tiny
// two-library run must produce a byte-stable JSONL trace under a fixed
// configuration, and two identical runs must emit identical bytes. The
// golden file pins the schema documented in docs/OBSERVABILITY.md —
// regenerate it with UPDATE_GOLDEN=1 go test ./internal/tapesys -run
// Golden, and update the document when it changes.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"paralleltape/internal/tape"
	"paralleltape/internal/trace"
)

// goldenRun executes the fixed two-library scenario and returns its JSONL
// trace bytes. The three requests exercise every event kind: a mounted
// service, switches onto empty and occupied drives (rewind), multi-drive
// parallel service across libraries, robot contention (request 2 forces
// both library-0 drives to switch at once, so one queues on the robot),
// and a drive failure.
func goldenRun(t *testing.T) []byte {
	t.Helper()
	hw := testHW()
	pl := manualPlacement(t, hw, 5,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 1}: {{4, 80}},
			{Library: 0, Index: 3}: {{1, 200}},
			{Library: 0, Index: 4}: {{2, 150}},
			{Library: 1, Index: 1}: {{3, 120}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.EnableTrace(0)
	if _, err := s.Submit(req(0, 0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Tapes 0 and 1 are both offline now; retrieving them makes both
	// library-0 drives switch concurrently and contend for the robot.
	if _, err := s.Submit(req(2, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(1, 1); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := trace.WriteJSONL(&out, buf.Events); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestGoldenTraceJSONL(t *testing.T) {
	got := goldenRun(t)
	golden := filepath.Join("testdata", "trace_golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden file — the exported schema changed.\n"+
			"If intentional, regenerate with UPDATE_GOLDEN=1 and update docs/OBSERVABILITY.md.\ngot:\n%s\nwant:\n%s",
			got, want)
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := goldenRun(t)
	b := goldenRun(t)
	if !bytes.Equal(a, b) {
		t.Error("two identical-seed runs emitted different traces")
	}
}

func TestTraceCSVDeterminism(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 3}: {{0, 100}}},
		nil, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.EnableTrace(0)
	if _, err := s.Submit(req(0, 0)); err != nil {
		t.Fatal(err)
	}
	var c1, c2 bytes.Buffer
	if err := trace.WriteCSV(&c1, buf.Events); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(&c2, buf.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("CSV export not deterministic")
	}
	if !bytes.HasPrefix(c1.Bytes(), []byte("t,kind,lib,drive,tape,req,span,bytes,dur,queue,name\n")) {
		t.Errorf("CSV header wrong: %.80s", c1.Bytes())
	}
}
