package tapesys

// Degraded-mode tests for the fault-injection and recovery layer
// (recovery.go + internal/faults): a golden JSONL trace pinning the
// mid-request failure/retry event schema, bit-exact shard equivalence
// under a stochastic fault profile, request-timeout partial-result
// accounting, and the FailDrive dead-library semantics. The golden file
// regenerates with UPDATE_GOLDEN=1 go test ./internal/tapesys -run
// FaultGolden; update docs/RESILIENCE.md when the schema changes.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"paralleltape/internal/dist"
	"paralleltape/internal/faults"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/trace"
	"paralleltape/internal/workload"
)

// faultGoldenRun executes a fully scripted degraded scenario and returns
// its JSONL trace plus the per-request metrics. The three requests walk
// through every resilience event kind:
//
//	req 0: the serving drive fails mid-transfer at t=4 (drive-failed),
//	       the group is re-dispatched after backoff (op-retried), the
//	       surviving drive's switch hits a robot outage (robot-failed /
//	       robot-repaired), and delivery lands past the 28 s deadline
//	       (request-timeout).
//	req 1: the second drive fails two seconds into the transfer while
//	       the first is still down, stalling the library until the
//	       scripted repair returns it to service (drive-repaired); the
//	       re-read then hits a scripted permanent media error at half
//	       transfer (media-error), abandoning the 50 B group.
//	req 2: the surviving drive switches back to tape 0 and delivers
//	       inside the deadline — recovery leaves a consistent state.
func faultGoldenRun(t *testing.T) ([]byte, []RequestMetrics) {
	t.Helper()
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 2}: {{1, 50}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	prof := &faults.Profile{
		DriveOutages: []faults.DriveOutage{
			{Library: 0, Drive: 0, At: 4, Duration: 60},
			{Library: 0, Drive: 1, At: 44, Duration: 10},
		},
		RobotOutages: []faults.RobotOutage{{Library: 0, At: 5, Duration: 10}},
		MediaFaults:  []faults.MediaFault{{Library: 0, Tape: 2, Read: 2, Frac: 0.5}},
	}
	s, err := NewWithOptions(hw, pl, Options{
		Faults:         prof,
		RequestTimeout: 28,
		RetryBackoff:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := s.EnableTrace(0)
	var ms []RequestMetrics
	for i, rq := range []*model.Request{req(0, 0), req(1, 1), req(2, 0)} {
		m, err := s.Submit(rq)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		ms = append(ms, m)
	}
	var out bytes.Buffer
	if err := trace.WriteJSONL(&out, buf.Events); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), ms
}

func TestFaultGoldenTraceJSONL(t *testing.T) {
	got, ms := faultGoldenRun(t)
	golden := filepath.Join("testdata", "trace_faults_golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("fault golden trace updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("degraded trace differs from golden file — the resilience schema changed.\n"+
			"If intentional, regenerate with UPDATE_GOLDEN=1 and update docs/RESILIENCE.md.\ngot:\n%s\nwant:\n%s",
			got, want)
	}
	// The narrative above is load-bearing: pin the metric-level outcomes
	// so a silent behavior change cannot hide behind a regenerated file.
	if ms[0].Retries != 1 || !ms[0].TimedOut || ms[0].Response != 28 || ms[0].BytesServed != 0 {
		t.Errorf("request 0: want 1 retry, timed out at 28 s with 0 B delivered; got %+v", ms[0])
	}
	if ms[1].Retries != 1 || ms[1].MediaErrors != 1 || ms[1].FailedGroups != 1 ||
		ms[1].FailedBytes != 50 || ms[1].BytesServed != 0 || !ms[1].TimedOut {
		t.Errorf("request 1: want one retry then a 50 B media-error loss past the deadline; got %+v", ms[1])
	}
	if ms[2].Retries != 0 || ms[2].BytesServed != 100 || ms[2].TimedOut {
		t.Errorf("request 2: want fully delivered in time; got %+v", ms[2])
	}
}

func TestFaultTraceDeterminism(t *testing.T) {
	a, _ := faultGoldenRun(t)
	b, _ := faultGoldenRun(t)
	if !bytes.Equal(a, b) {
		t.Error("two identical degraded runs emitted different traces")
	}
}

// chaosTestProfile is the stochastic profile used by the cross-shard
// determinism test: aggressive enough that the 60-request session sees
// drive failures, robot outages, media errors, and retries on every
// library.
func chaosTestProfile() *faults.Profile {
	return &faults.Profile{
		Seed:              77,
		DriveMTBF:         2000,
		DriveRepair:       dist.Exponential{Mean: 300},
		RobotMTBF:         8000,
		RobotRepair:       dist.Exponential{Mean: 120},
		MediaErrorPerRead: 0.02,
	}
}

// faultShardedRun replays the fixed request sequence under the stochastic
// fault profile with the given shard count, returning all observable
// outputs plus the trace's per-kind event counts.
func faultShardedRun(t *testing.T, hw tape.Hardware, w *model.Workload, shards int) (shardedRunResult, map[trace.Kind]int) {
	t.Helper()
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(hw, pr, Options{
		Shards:         shards,
		Faults:         chaosTestProfile(),
		RequestTimeout: 3000,
		RetryBackoff:   30,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := s.EnableTrace(0)
	stream, err := workload.NewRequestStream(w, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var res shardedRunResult
	for i := 0; i < 60; i++ {
		m, err := s.Submit(stream.Next())
		if err != nil {
			t.Fatalf("shards=%d request %d: %v", shards, i, err)
		}
		res.metrics = append(res.metrics, m)
	}
	res.drives = s.DriveReport()
	res.robots = s.RobotReport()
	res.switches = s.TotalSwitches()
	res.now = s.Now()
	return res, trace.CountByKind(buf.Events)
}

// TestFaultDeterminismAcrossShards is the resilience half of the sharding
// contract (docs/RESILIENCE.md): with stochastic faults, retries, and a
// request deadline active, every per-request metric — including the
// degraded-mode fields — and every lifetime report must be bit-identical
// at any shard count, and the trace must carry the same multiset of
// events per kind.
func TestFaultDeterminismAcrossShards(t *testing.T) {
	hw, w := shardTestWorkload(t)
	base, baseKinds := faultShardedRun(t, hw, w, 0)
	// Guard against a vacuous pass: the profile must actually bite.
	if baseKinds[trace.KindDriveFailed] == 0 || baseKinds[trace.KindOpRetried] == 0 ||
		baseKinds[trace.KindMediaError] == 0 {
		t.Fatalf("fault profile too tame to exercise recovery: %v", baseKinds)
	}
	for _, shards := range []int{1, 2, 4} {
		got, kinds := faultShardedRun(t, hw, w, shards)
		for i := range base.metrics {
			if got.metrics[i] != base.metrics[i] {
				t.Fatalf("shards=%d request %d metrics diverge under faults:\n  base %+v\n  got  %+v",
					shards, i, base.metrics[i], got.metrics[i])
			}
		}
		if !reflect.DeepEqual(got.drives, base.drives) {
			t.Fatalf("shards=%d drive report diverges under faults", shards)
		}
		if !reflect.DeepEqual(got.robots, base.robots) {
			t.Fatalf("shards=%d robot report diverges under faults", shards)
		}
		if got.now != base.now {
			t.Fatalf("shards=%d clock %v, want %v", shards, got.now, base.now)
		}
		delete(baseKinds, trace.KindLatchOpen)
		delete(kinds, trace.KindLatchOpen)
		if !reflect.DeepEqual(kinds, baseKinds) {
			t.Fatalf("shards=%d event counts diverge under faults:\n  base %v\n  got  %v",
				shards, baseKinds, kinds)
		}
	}
}

// TestFaultResetReplays verifies System.Reset also rewinds the injector:
// two passes over the same stream on one faulted system are identical.
func TestFaultResetReplays(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(hw, pr, Options{
		Shards: 2, Faults: chaosTestProfile(), RequestTimeout: 3000, RetryBackoff: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	pass := func() []RequestMetrics {
		stream, err := workload.NewRequestStream(w, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		var out []RequestMetrics
		for i := 0; i < 30; i++ {
			m, err := s.Submit(stream.Next())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
		return out
	}
	first := pass()
	if err := s.Reset(pr); err != nil {
		t.Fatal(err)
	}
	second := pass()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d metrics differ after Reset under faults:\n  %+v\n  %+v",
				i, first[i], second[i])
		}
	}
}

// TestRequestTimeoutPartialAccounting pins the deadline contract: payload
// delivered by the deadline counts, later payload does not, the response
// is clamped to the timeout, and the mechanical work still runs to
// completion so the next request starts from a consistent state.
func TestRequestTimeoutPartialAccounting(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}}, // mounted: serves in 10 s
			{Library: 1, Index: 0}: {{1, 200}}, // switch 2+3 then 20 s transfer
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := NewWithOptions(hw, pl, Options{RequestTimeout: 12})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !m.TimedOut || m.Response != 12 {
		t.Errorf("want TimedOut with Response clamped to 12, got %+v", m)
	}
	if m.BytesServed != 100 {
		t.Errorf("BytesServed = %d, want 100 (only the mounted group beat the deadline)", m.BytesServed)
	}
	if math.Abs(m.Goodput()-100.0/12) > 1e-9 {
		t.Errorf("Goodput = %v, want %v", m.Goodput(), 100.0/12)
	}
	// The drives finished the full transfer: the clock sits at the slow
	// group's completion, not at the deadline.
	if s.Now() != 25 {
		t.Errorf("clock = %v, want 25 (2 s move + 3 s load + 20 s transfer)", s.Now())
	}
}

// TestFailDriveDeadLibraryDegrades covers the reworked FailDrive contract:
// with fault handling active, a library whose drives are all manually
// failed no longer makes Submit error — its groups are abandoned into the
// partial-result accounting while other libraries serve normally.
func TestFailDriveDeadLibraryDegrades(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 1, Index: 0}: {{1, 50}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	// Any non-empty profile enables the recovery layer; schedule nothing
	// before t=1e9 so only the manual failures matter.
	prof := &faults.Profile{DriveOutages: []faults.DriveOutage{
		{Library: 0, Drive: 0, At: 1e9, Duration: 1},
	}}
	s, err := NewWithOptions(hw, pl, Options{Faults: prof})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(0, 1); err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatalf("dead library must degrade, not error: %v", err)
	}
	if m.FailedGroups != 1 || m.FailedBytes != 100 {
		t.Errorf("want library 0's 100 B group abandoned, got %+v", m)
	}
	if m.BytesServed != 50 {
		t.Errorf("BytesServed = %d, want 50 from library 1", m.BytesServed)
	}
	// Manual failures are permanent: a second request degrades the same way.
	m2, err := s.Submit(req(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m2.FailedGroups != 1 || m2.BytesServed != 0 {
		t.Errorf("manual failure not permanent: %+v", m2)
	}
}

// TestDisabledProfileStaysInline checks that a zero-valued (disabled)
// profile keeps the healthy fast path: no injector is built and the run
// matches a nil-Faults run event for event.
func TestDisabledProfileStaysInline(t *testing.T) {
	hw := testHW()
	build := func(opts Options) []byte {
		pl := manualPlacement(t, hw, 1,
			map[tape.Key][]objSpec{{Library: 0, Index: 3}: {{0, 100}}},
			nil, nil, nil)
		s, err := NewWithOptions(hw, pl, opts)
		if err != nil {
			t.Fatal(err)
		}
		buf := s.EnableTrace(0)
		if _, err := s.Submit(req(0, 0)); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := trace.WriteJSONL(&out, buf.Events); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	healthy := build(Options{})
	disabled := build(Options{Faults: &faults.Profile{Seed: 99}})
	if !bytes.Equal(healthy, disabled) {
		t.Error("a disabled fault profile changed the healthy trace")
	}
}
