package tapesys

import (
	"fmt"
	"io"
	"slices"

	"paralleltape/internal/sim"
	"paralleltape/internal/trace"
)

// Tracing plumbing: the System emits typed trace events (schema in
// internal/trace, documented in docs/OBSERVABILITY.md) through an
// attached Recorder. The same recorder is installed on the simulation
// engine, so sim-level contention events (robot queue waits, grants,
// releases, latch completions) interleave with the tape-system spans in
// one time-ordered stream.

// SetRecorder attaches a trace recorder to the system and its shard
// engines; nil disables tracing. With no recorder attached the simulation
// hot path performs no tracing work at all. When the system runs more than
// one shard the recorder is wrapped in a trace.Locked so concurrent shard
// goroutines serialize into the one stream; events then stay deterministic
// per shard, but the cross-shard interleaving depends on goroutine
// scheduling (see docs/OBSERVABILITY.md).
func (s *System) SetRecorder(r trace.Recorder) {
	s.rec = r
	shared := r
	if r != nil && len(s.shards) > 1 {
		shared = trace.NewLocked(r)
	}
	for _, sh := range s.shards {
		sh.rec = shared
		sh.eng.SetRecorder(shared)
	}
}

// EnableTrace starts in-memory event recording (keeping at most limit
// events; limit <= 0 means unbounded) and returns the live buffer.
func (s *System) EnableTrace(limit int) *trace.Buffer {
	b := trace.NewBuffer(limit)
	s.SetRecorder(b)
	return b
}

// DisableTrace stops recording.
func (s *System) DisableTrace() { s.SetRecorder(nil) }

// emit stamps the event with the current simulated time and records it
// through the caller's recorder directly — valid only between requests,
// when no shard goroutine is running and all shard clocks agree.
func (s *System) emit(ev trace.Event) {
	if s.rec == nil {
		return
	}
	ev.T = s.Now()
	s.rec.Record(ev)
}

// DriveStats summarizes one drive's lifetime activity.
type DriveStats struct {
	Library, Drive int
	BusySeconds    float64 // seeking + transferring
	SwitchSeconds  float64 // rewind/unload/robot-wait/load time
	BytesMoved     int64
	Mounts         int
	Failed         bool
}

// DriveReport returns per-drive statistics in (library, drive) order.
func (s *System) DriveReport() []DriveStats {
	var out []DriveStats
	for _, l := range s.libs {
		for _, d := range l.drives {
			out = append(out, DriveStats{
				Library:       d.lib,
				Drive:         d.idx,
				BusySeconds:   d.busySeconds,
				SwitchSeconds: d.switchSeconds,
				BytesMoved:    d.bytesMoved,
				Mounts:        d.mounts,
				Failed:        d.failed,
			})
		}
	}
	return out
}

// RobotStats summarizes one library robot.
type RobotStats struct {
	Library      int
	Stats        sim.ResourceStats
	UtilPercent  float64 // busy share of the elapsed simulated time
	WaitPerGrant float64
}

// RobotReport returns per-library robot statistics.
func (s *System) RobotReport() []RobotStats {
	elapsed := s.Now()
	var out []RobotStats
	for _, l := range s.libs {
		st := l.robot.Stats()
		rs := RobotStats{Library: l.idx, Stats: st}
		if elapsed > 0 {
			rs.UtilPercent = 100 * st.BusyTotal / elapsed
		}
		if st.Acquisitions > 0 {
			rs.WaitPerGrant = st.WaitTotal / float64(st.Acquisitions)
		}
		out = append(out, rs)
	}
	return out
}

// WriteUtilization renders drive and robot utilization tables.
func (s *System) WriteUtilization(w io.Writer) error {
	elapsed := s.Now()
	if _, err := fmt.Fprintf(w, "simulated time: %.1fs\n\ndrive      busy%%  switch%%  mounts  moved\n", elapsed); err != nil {
		return err
	}
	drives := s.DriveReport()
	// One line per drive: (Library, Drive) is a total order, so the
	// unstable slices.SortFunc is deterministic.
	slices.SortFunc(drives, func(a, b DriveStats) int {
		if a.Library != b.Library {
			return a.Library - b.Library
		}
		return a.Drive - b.Drive
	})
	for _, d := range drives {
		busyPct, switchPct := 0.0, 0.0
		if elapsed > 0 {
			busyPct = 100 * d.BusySeconds / elapsed
			switchPct = 100 * d.SwitchSeconds / elapsed
		}
		flag := ""
		if d.Failed {
			flag = "  FAILED"
		}
		if _, err := fmt.Fprintf(w, "L%d.D%-2d     %5.1f  %6.1f   %5d  %8.1f GB%s\n",
			d.Library, d.Drive, busyPct, switchPct, d.Mounts, float64(d.BytesMoved)/1e9, flag); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nrobot   util%%   grants  wait/grant\n"); err != nil {
		return err
	}
	for _, r := range s.RobotReport() {
		if _, err := fmt.Fprintf(w, "L%-2d     %5.1f   %6d  %9.2fs\n",
			r.Library, r.UtilPercent, r.Stats.Acquisitions, r.WaitPerGrant); err != nil {
			return err
		}
	}
	return nil
}

// FailDrive permanently takes a drive out of service: it is never
// auto-repaired, and once failed the drive never serves or switches again.
// Pinned drives lose their pin — their content becomes switchable like any
// offline tape. Called between requests (the historical, still-convenient
// use) the mounted tape is returned to its cell immediately; if the drive
// has an operation chain in flight, the chain aborts at its next stage
// boundary and the recovery layer re-dispatches the interrupted group onto
// a surviving drive (see docs/RESILIENCE.md). It fails only if the drive
// does not exist or is already failed.
func (s *System) FailDrive(library, drive int) error {
	if library < 0 || library >= len(s.libs) {
		return fmt.Errorf("tapesys: no library %d", library)
	}
	l := s.libs[library]
	if drive < 0 || drive >= len(l.drives) {
		return fmt.Errorf("tapesys: no drive %d in library %d", drive, library)
	}
	d := l.drives[drive]
	if d.failed {
		return fmt.Errorf("tapesys: drive L%d.D%d already failed", library, drive)
	}
	d.failed = true
	d.manual = true
	d.pinned = false
	d.repairAt = 0
	if d.mounted >= 0 && !d.busy {
		d.mounted = -1
		d.headPos = 0
	}
	s.emit(trace.Event{Kind: trace.KindDriveFailed, Lib: library, Drive: drive, Tape: -1, Req: -1})
	return nil
}

// FailedDrives returns the count of out-of-service drives.
func (s *System) FailedDrives() int {
	n := 0
	for _, l := range s.libs {
		for _, d := range l.drives {
			if d.failed {
				n++
			}
		}
	}
	return n
}
