package tapesys

import (
	"math"
	"testing"

	"paralleltape/internal/catalog"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// testHW uses round numbers: locate rate 100 B/s, rewind rate 100 B/s,
// transfer 10 B/s, robot move 2 s, load 3 s, unload 4 s.
func testHW() tape.Hardware {
	return tape.Hardware{
		CellToDrive:  2,
		LoadThread:   3,
		Unload:       4,
		MaxRewind:    10, // capacity 1000 / 10 s = 100 B/s
		AvgFileSeek:  5,  // (1000/2) / 5 s = 100 B/s
		TransferRate: 10,
		Capacity:     1000,
		TapesPerLib:  5,
		DrivesPerLib: 2,
		Libraries:    2,
	}
}

// manualPlacement builds a placement by hand. layout maps tape key → list
// of (object, size); mounts/pinned defaulting to empty drives.
type objSpec struct {
	id   model.ObjectID
	size int64
}

func manualPlacement(t *testing.T, hw tape.Hardware, numObjects int,
	layouts map[tape.Key][]objSpec, mounts [][]int, pinned [][]bool,
	tapeProb map[tape.Key]float64) *placement.Result {
	t.Helper()
	cat := catalog.New(numObjects)
	// Deterministic order over map keys.
	for lib := 0; lib < hw.Libraries; lib++ {
		for idx := 0; idx < hw.TapesPerLib; idx++ {
			k := tape.Key{Library: lib, Index: idx}
			specs, ok := layouts[k]
			if !ok {
				continue
			}
			l := tape.NewLayout(k)
			for _, sp := range specs {
				if _, err := l.Append(sp.id, sp.size, hw.Capacity); err != nil {
					t.Fatal(err)
				}
			}
			if err := cat.AddLayout(l); err != nil {
				t.Fatal(err)
			}
		}
	}
	if mounts == nil {
		mounts = make([][]int, hw.Libraries)
		for i := range mounts {
			mounts[i] = make([]int, hw.DrivesPerLib)
			for d := range mounts[i] {
				mounts[i][d] = -1
			}
		}
	}
	if pinned == nil {
		pinned = make([][]bool, hw.Libraries)
		for i := range pinned {
			pinned[i] = make([]bool, hw.DrivesPerLib)
		}
	}
	if tapeProb == nil {
		tapeProb = map[tape.Key]float64{}
	}
	return &placement.Result{
		Scheme:        "manual",
		Catalog:       cat,
		InitialMounts: mounts,
		Pinned:        pinned,
		TapeProb:      tapeProb,
	}
}

func req(id model.RequestID, objs ...model.ObjectID) *model.Request {
	return &model.Request{ID: id, Prob: 1, Objects: objs}
}

func TestMountedTapeServedWithoutSwitch(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}}},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Head at BOT, object at [0,100): no seek, transfer 100/10 = 10 s.
	if math.Abs(m.Response-10) > 1e-9 {
		t.Errorf("Response = %v, want 10", m.Response)
	}
	if m.Seek != 0 || math.Abs(m.Transfer-10) > 1e-9 || m.Switch != 0 {
		t.Errorf("decomposition: seek=%v xfer=%v switch=%v", m.Seek, m.Transfer, m.Switch)
	}
	if m.Switches != 0 || m.TapesTouched != 1 || m.DrivesUsed != 1 {
		t.Errorf("counters: %+v", m)
	}
	if bw := m.Bandwidth(); math.Abs(bw-10) > 1e-9 {
		t.Errorf("Bandwidth = %v, want 10 B/s", bw)
	}
}

func TestSeekChargedFromHeadPosition(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}, {1, 200}}},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Read object 1 at [100,300): seek 100 bytes @100 B/s = 1 s, transfer 20 s.
	m, err := s.Submit(req(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Seek-1) > 1e-9 || math.Abs(m.Transfer-20) > 1e-9 {
		t.Errorf("seek=%v xfer=%v", m.Seek, m.Transfer)
	}
	// Head is now at 300. Reading object 0 at [0,100) seeks back 300 bytes.
	m2, err := s.Submit(req(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Seek-3) > 1e-9 {
		t.Errorf("second seek = %v, want 3 (head persisted)", m2.Seek)
	}
}

func TestSwitchFromEmptyDrive(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 3}: {{0, 100}}},
		nil, nil, nil) // all drives empty
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Empty drive: robot fetch 2 + load 3 + transfer 10 = 15.
	if math.Abs(m.Response-15) > 1e-9 {
		t.Errorf("Response = %v, want 15", m.Response)
	}
	if m.Switches != 1 {
		t.Errorf("Switches = %d", m.Switches)
	}
	if math.Abs(m.Switch-5) > 1e-9 {
		t.Errorf("Switch = %v, want 5", m.Switch)
	}
}

func TestSwitchWithVictimRewindsAndStows(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	// First read object 0 so tape 0's head sits at 100.
	if _, err := s.Submit(req(0, 0)); err != nil {
		t.Fatal(err)
	}
	// Now request object 1 on offline tape 3. Victim choice: drive 1 is
	// empty → preferred (prob −1): fetch 2 + load 3 + xfer 10 = 15.
	m, err := s.Submit(req(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Response-15) > 1e-9 {
		t.Errorf("Response = %v, want 15 (empty drive preferred)", m.Response)
	}
	// Request object 0 again (still mounted on drive 0): no switch.
	m2, err := s.Submit(req(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Switches != 0 {
		t.Errorf("object 0 should still be mounted; switches = %d", m2.Switches)
	}
}

func TestSwitchOccupiedVictim(t *testing.T) {
	hw := testHW()
	hw.DrivesPerLib = 1
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 200}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0}, {-1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Read object 0: head moves to 200.
	if _, err := s.Submit(req(0, 0)); err != nil {
		t.Fatal(err)
	}
	// Object 1 needs tape 3; the only drive holds tape 0 at head 200.
	// rewind 200/100=2 + unload 4 + stow 2 + fetch 2 + load 3 + xfer 10 = 23.
	m, err := s.Submit(req(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Response-23) > 1e-9 {
		t.Errorf("Response = %v, want 23", m.Response)
	}
	if math.Abs(m.Switch-13) > 1e-9 {
		t.Errorf("Switch = %v, want 13", m.Switch)
	}
}

func TestRobotSerializesWithinLibrary(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 2}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		nil, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Two empty drives, one robot. Pending sorted by bytes (tie: index):
	// tape 2 first. Drive A: fetch [0,2], load [2,5], xfer [5,15].
	// Drive B: robot wait until 2, fetch [2,4], load [4,7], xfer [7,17].
	if math.Abs(m.Response-17) > 1e-9 {
		t.Errorf("Response = %v, want 17 (robot serialized)", m.Response)
	}
	if m.RobotWait < 1.9 {
		t.Errorf("RobotWait = %v, want ≈2", m.RobotWait)
	}
	if m.DrivesUsed != 2 || m.Switches != 2 {
		t.Errorf("counters: %+v", m)
	}
}

func TestLibrariesSwitchInParallel(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 2}: {{0, 100}},
			{Library: 1, Index: 2}: {{1, 100}},
		},
		nil, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Each library mounts in parallel: fetch 2 + load 3 + xfer 10 = 15.
	if math.Abs(m.Response-15) > 1e-9 {
		t.Errorf("Response = %v, want 15 (parallel robots)", m.Response)
	}
	if m.RobotWait != 0 {
		t.Errorf("RobotWait = %v, want 0", m.RobotWait)
	}
}

func TestMountedServedBeforeSwitch(t *testing.T) {
	hw := testHW()
	hw.DrivesPerLib = 1
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0}, {-1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	// One drive; request needs the mounted tape 0 AND offline tape 3.
	// Serve mounted first: xfer [0,10]; then switch: rewind 1 (head@100)
	// + unload 4 + stow 2 + fetch 2 + load 3 → mounted at 22; xfer [22,32].
	m, err := s.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Response-32) > 1e-9 {
		t.Errorf("Response = %v, want 32", m.Response)
	}
	if m.Switches != 1 {
		t.Errorf("Switches = %d", m.Switches)
	}
	// Last-finishing drive is the only drive: seek 0, xfer 20, switch 12.
	if math.Abs(m.Transfer-20) > 1e-9 || math.Abs(m.Switch-12) > 1e-9 {
		t.Errorf("decomposition: %+v", m)
	}
}

func TestPinnedDriveNeverSwitches(t *testing.T) {
	hw := testHW()
	hw.DrivesPerLib = 2
	pl := manualPlacement(t, hw, 3,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
			{Library: 0, Index: 4}: {{2, 100}},
		},
		[][]int{{0, 3}, {-1, -1}},
		[][]bool{{true, false}, {false, false}},
		map[tape.Key]float64{
			{Library: 0, Index: 0}: 0.9,
			{Library: 0, Index: 3}: 0.1,
		})
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Request object 2 (offline tape 4): only the unpinned drive 1
	// (holding tape 3) may switch.
	if _, err := s.Submit(req(0, 2)); err != nil {
		t.Fatal(err)
	}
	mounted := s.MountedTapes()
	if len(mounted[0]) != 2 || mounted[0][0] != 0 || mounted[0][1] != 4 {
		t.Errorf("mounted after switch: %v, want [0 4]", mounted[0])
	}
}

func TestNoSwitchableDriveError(t *testing.T) {
	hw := testHW()
	hw.DrivesPerLib = 1
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0}, {-1}},
		[][]bool{{true}, {false}}, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 1)); err == nil {
		t.Error("offline tape with no switchable drive should error")
	}
}

func TestLeastPopularVictim(t *testing.T) {
	hw := testHW()
	hw.DrivesPerLib = 2
	pl := manualPlacement(t, hw, 3,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 1}: {{1, 100}},
			{Library: 0, Index: 3}: {{2, 100}},
		},
		[][]int{{0, 1}, {-1, -1}}, nil,
		map[tape.Key]float64{
			{Library: 0, Index: 0}: 0.2, // less popular → victim
			{Library: 0, Index: 1}: 0.8,
		})
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 2)); err != nil {
		t.Fatal(err)
	}
	mounted := s.MountedTapes()
	// Tape 0 (prob 0.2) must have been evicted; tape 1 stays.
	if len(mounted[0]) != 2 || mounted[0][0] != 1 || mounted[0][1] != 3 {
		t.Errorf("mounted = %v, want [1 3]", mounted[0])
	}
}

func TestSwitchTimeIncludesRobotWait(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 2}: {{0, 500}},
			{Library: 0, Index: 3}: {{1, 500}},
		},
		nil, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Last drive: robot wait [0,2], fetch [2,4], load [4,7], xfer [7,57].
	// Seek 0, xfer 50, switch = 7 (5 mechanics + 2 robot wait).
	if math.Abs(m.Response-57) > 1e-9 {
		t.Errorf("Response = %v, want 57", m.Response)
	}
	if math.Abs(m.Switch-7) > 1e-9 {
		t.Errorf("Switch = %v, want 7", m.Switch)
	}
	if m.RobotWait < 1.9 {
		t.Errorf("RobotWait = %v, want ≈2", m.RobotWait)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 12
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  300,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   12,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		pb := placement.ParallelBatch{M: 1}
		pr, err := pb.Place(w, hw)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(hw, pr)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := workload.NewRequestStream(w, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		var responses []float64
		for i := 0; i < 40; i++ {
			m, err := s.Submit(stream.Next())
			if err != nil {
				t.Fatal(err)
			}
			responses = append(responses, m.Response)
		}
		return responses
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d response %v vs %v across runs", i, a[i], b[i])
		}
	}
}

func TestAllSchemesEndToEnd(t *testing.T) {
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 4
	hw.TapesPerLib = 16
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  400,
		NumRequests: 40,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   15,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	schemes := []placement.Scheme{
		placement.ObjectProbability{},
		placement.ClusterProbability{},
		placement.ParallelBatch{M: 2},
		placement.RoundRobin{},
	}
	for _, sch := range schemes {
		pr, err := sch.Place(w, hw)
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		if err := pr.Validate(w, hw); err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		s, err := New(hw, pr)
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		stream, err := workload.NewRequestStream(w, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			m, err := s.Submit(stream.Next())
			if err != nil {
				t.Fatalf("%s request %d: %v", sch.Name(), i, err)
			}
			if m.Response <= 0 || m.Bytes <= 0 {
				t.Fatalf("%s request %d: degenerate metrics %+v", sch.Name(), i, m)
			}
			if m.Seek+m.Transfer > m.Response+1e-6 {
				t.Fatalf("%s request %d: seek+transfer %v exceeds response %v",
					sch.Name(), i, m.Seek+m.Transfer, m.Response)
			}
			if m.Switch < 0 {
				t.Fatalf("%s request %d: negative switch %v", sch.Name(), i, m.Switch)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	hw := testHW()
	if _, err := New(hw, nil); err == nil {
		t.Error("nil placement accepted")
	}
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}}}, nil, nil, nil)
	pl.InitialMounts = pl.InitialMounts[:1]
	if _, err := New(hw, pl); err == nil {
		t.Error("short mount table accepted")
	}
	// Duplicate mount.
	pl2 := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}}},
		[][]int{{0, 0}, {-1, -1}}, nil, nil)
	if _, err := New(hw, pl2); err == nil {
		t.Error("duplicate mount accepted")
	}
}

func TestMountedRatio(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 300}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MountedRatio-0.25) > 1e-9 {
		t.Errorf("MountedRatio = %v, want 0.25", m.MountedRatio)
	}
}
