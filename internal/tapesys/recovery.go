package tapesys

// recovery.go is the degraded-mode half of the simulator: how in-flight
// operation chains react when the fault injector (internal/faults, wired
// through Options.Faults) takes a drive, robot, or cartridge out from
// under them, and how interrupted work is re-dispatched onto surviving
// drives. The full contract — what fails, what retries, what is abandoned,
// and why every run stays byte-deterministic per seed at every shard
// count — is documented in docs/RESILIENCE.md.
//
// Design rules the code below follows:
//
//   - Fault outcomes are decided from the injector's deterministic
//     per-device timelines at the instants the simulation already visits
//     (serve schedule time, switch stage boundaries, robot grant time,
//     request submission). No speculative failure or repair events are
//     pushed onto the engines: a repair wakeup is scheduled only when a
//     library would otherwise deadlock (queued groups, zero alive
//     drives), so the event is always required for liveness and always
//     precedes the request's completion — the deterministic join never
//     sees a stray event.
//   - Everything here is behind an `inj != nil` (or `d.failed`) guard on
//     the healthy path, and only code that runs when a fault actually
//     fires may allocate (the retry and repair closures).
//   - All state is shard-local or owned by the library's shard, so the
//     sharded run needs no synchronization beyond the existing join.

import (
	"math"

	"paralleltape/internal/catalog"
	"paralleltape/internal/trace"
)

// retryEntry is one fault-interrupted tape group waiting in a library's
// retry queue for an idle surviving drive.
type retryEntry struct {
	g        catalog.TapeGroup
	attempts int
}

// retryOp is the pooled backoff continuation of one retried group: when the
// backoff elapses it requeues the group and pumps the library. It is a
// typed event (sim.Op), so arming a retry captures no closure; the pool
// (shard.retryPool) makes even a fault storm allocation-free in steady
// state.
type retryOp struct {
	sh  *shard
	lib int
	e   retryEntry
}

// Run implements sim.Op: the backoff elapsed — requeue and pump.
func (op *retryOp) Run(uint8) {
	sh, lib, e := op.sh, op.lib, op.e
	op.e = retryEntry{}
	sh.retryPool = append(sh.retryPool, op)
	sh.sys.retryQ[lib] = append(sh.sys.retryQ[lib], e)
	sh.pump(lib)
}

func (sh *shard) getRetryOp() *retryOp {
	if n := len(sh.retryPool); n > 0 {
		op := sh.retryPool[n-1]
		sh.retryPool[n-1] = nil
		sh.retryPool = sh.retryPool[:n-1]
		return op
	}
	return &retryOp{sh: sh}
}

// repairWake is a library's embedded repair-wakeup continuation, armed by
// stall when queued work would otherwise deadlock on a library with zero
// alive drives. Embedding it in the library makes the one recovery event
// the simulator may schedule a typed, allocation-free continuation.
type repairWake struct {
	l *library
}

// Run implements sim.Op: the earliest scheduled repair instant arrived —
// return every due drive to service and pump the library.
func (w *repairWake) Run(uint8) {
	l := w.l
	sh := l.sh
	sh.sys.repairArmed[l.idx] = false
	now := sh.eng.Now()
	for _, d := range l.drives {
		if d.failed && !d.manual && d.repairAt <= now {
			sh.repairDrive(d)
		}
	}
	sh.pump(l.idx)
}

// armServeFaults decides, at schedule time, whether the injector cuts the
// service short, returning the (possibly truncated) span to schedule. A
// media-error draw is consumed for every read so the media stream stays
// aligned regardless of drive state; an earlier drive failure overrides
// the media outcome.
func (sh *shard) armServeFaults(op *serveOp, span float64) float64 {
	s := sh.sys
	now := sh.eng.Now()
	cut := span
	if failed, frac := s.inj.MediaRead(op.d.lib, op.g.Tape.Index); failed {
		op.mode = serveMedia
		cut = span * frac
	}
	if tf := s.inj.NextDriveFailure(op.d.gidx, now); tf-now < cut {
		op.mode = serveDriveFail
		cut = tf - now
		if cut < 0 {
			cut = 0
		}
	}
	return cut
}

// interrupted is the fault branch of serveOp.finish: the service ended
// early on a media error or a drive failure (injected, or a manual
// FailDrive while the op was in flight). The time actually spent still
// counts as busy time; the payload does not count as served.
func (op *serveOp) interrupted() {
	sh, d, g := op.sh, op.d, op.g
	mode, start, attempts, span := op.mode, op.start, op.attempts, op.span
	sh.putServeOp(op)
	now := sh.eng.Now()
	elapsed := now - start
	d.busy = false
	d.busySeconds += elapsed
	sh.totalBusy += elapsed
	s := sh.sys
	if mode == serveMedia && !d.failed {
		// Permanent media error: the cartridge is bad, so retrying on
		// another drive cannot help — the group is lost.
		sh.mediaErrors++
		sh.totalMediaErrors++
		sh.emit(trace.Event{Kind: trace.KindMediaError, Lib: d.lib, Drive: d.idx,
			Tape: g.Tape.Index, Req: s.curReq, Span: span, Bytes: g.Bytes, Dur: elapsed})
		sh.failGroup(g)
		sh.afterService(d)
		return
	}
	if !d.failed {
		_, until := s.inj.DriveDown(d.gidx, now)
		sh.observeDriveFailure(d, until, g.Tape.Index, s.curReq, span)
	} else if d.mounted >= 0 {
		sh.evictMounted(d)
	}
	sh.retryGroup(g, attempts, span)
}

// abortIfDown is the switch-stage boundary check: if the switching drive
// has failed (injected window reached, or manual FailDrive), the switch
// chain stops here, the partial switch time is charged, and the group is
// re-dispatched. Returns true when the chain was aborted.
func (op *switchOp) abortIfDown() bool {
	sh, d := op.sh, op.d
	s := sh.sys
	if !d.failed {
		if s.inj == nil {
			return false
		}
		down, until := s.inj.DriveDown(d.gidx, sh.eng.Now())
		if !down {
			return false
		}
		sh.observeDriveFailure(d, until, op.g.Tape.Index, s.curReq, op.span)
	} else if d.mounted >= 0 {
		sh.evictMounted(d)
	}
	g, attempts, span := op.g, op.attempts, op.span
	d.busy = false
	d.switchSeconds += sh.eng.Now() - op.switchBegin
	if op.grant != nil {
		// Defensive: no stage aborts while holding the robot today
		// (afterMove releases before its check), but a future stage must
		// not leak the arm.
		op.grant.Release()
		op.grant = nil
	}
	sh.putSwitchOp(op)
	sh.retryGroup(g, attempts, span)
	return true
}

// observeDriveFailure transitions a drive to the failed state the instant
// the simulation first observes its (injected) failure window: the
// mounted cartridge is returned to its cell, a pinned drive loses its pin
// (its dedicated cartridge is evicted with it), and repairAt records when
// sweepFaults or a repair wakeup may return it to service. span is the
// trace span of the operation the failure interrupted (0 when the failure
// was observed between operations).
func (sh *shard) observeDriveFailure(d *drive, repairAt float64, tapeCtx int, req int64, span int64) {
	d.failed = true
	d.manual = false
	d.pinned = false
	d.repairAt = repairAt
	if d.mounted >= 0 {
		sh.evictMounted(d)
	}
	sh.emit(trace.Event{Kind: trace.KindDriveFailed, Lib: d.lib, Drive: d.idx,
		Tape: tapeCtx, Req: req, Span: span, Dur: repairAt - sh.eng.Now()})
}

// evictMounted returns a drive's mounted cartridge to its library cell
// (modeling the repair crew clearing the transport), making the tape
// mountable by other drives.
func (sh *shard) evictMounted(d *drive) {
	d.mounted = -1
	d.headPos = 0
}

// failGroup abandons one tape group of the current request: its payload is
// accounted as failed and its latch slot opens so the request can still
// complete (partial-result accounting, docs/RESILIENCE.md).
func (sh *shard) failGroup(g catalog.TapeGroup) {
	sh.failedGroups++
	sh.failedBytes += g.Bytes
	sh.latch.Done()
}

// retryGroup re-dispatches a fault-interrupted group: after the configured
// backoff it joins the library's retry queue and an idle surviving drive
// picks it up. Past the retry bound the group is abandoned. span is the
// trace span of the failed operation, so the retry edge links the
// abandoned chain to its successor in span reconstruction.
func (sh *shard) retryGroup(g catalog.TapeGroup, attempts int, span int64) {
	s := sh.sys
	if attempts+1 > s.maxRetries() {
		sh.failGroup(g)
		return
	}
	sh.retries++
	sh.totalRetries++
	backoff := s.opts.RetryBackoff
	sh.emit(trace.Event{Kind: trace.KindOpRetried, Lib: g.Tape.Library, Drive: -1,
		Tape: g.Tape.Index, Req: s.curReq, Span: span, Bytes: g.Bytes, Dur: backoff, Queue: attempts + 1})
	op := sh.getRetryOp()
	op.lib = g.Tape.Library
	op.e = retryEntry{g: g, attempts: attempts + 1}
	sh.eng.ScheduleOp(backoff, op, 0)
}

// pump dispatches a library's queued groups onto idle alive drives. If the
// library has queued work but no alive drive at all, it stalls (waiting on
// a scheduled repair, or abandoning the work if none is coming); if all
// alive drives are busy it simply returns — each will pull from the queue
// through afterService when it finishes.
func (sh *shard) pump(lib int) {
	s := sh.sys
	for sh.hasQueued(lib) {
		var idle *drive
		alive := false
		for _, d := range s.libs[lib].drives {
			if d.failed || d.pinned {
				continue
			}
			alive = true
			if !d.busy {
				idle = d
				break
			}
		}
		if !alive {
			sh.stall(lib)
			return
		}
		if idle == nil {
			return
		}
		g, attempts, _ := sh.takeQueued(lib)
		sh.startSwitch(idle, g, attempts)
	}
}

// stall handles a library with queued groups and zero alive drives: if any
// failed drive has a scheduled repair, one wakeup event is armed at the
// earliest repair instant (the guard keeps it single); otherwise no repair
// will ever come — manual failures are permanent — and everything queued
// is abandoned so the request can complete.
func (sh *shard) stall(lib int) {
	s := sh.sys
	earliest := math.Inf(1)
	for _, d := range s.libs[lib].drives {
		if d.failed && !d.manual && d.repairAt < earliest {
			earliest = d.repairAt
		}
	}
	if math.IsInf(earliest, 1) {
		for {
			pg, _, ok := sh.takeQueued(lib)
			if !ok {
				return
			}
			sh.failGroup(pg.g)
		}
	}
	if s.repairArmed[lib] {
		return
	}
	s.repairArmed[lib] = true
	delay := earliest - sh.eng.Now()
	if delay < 0 {
		delay = 0
	}
	sh.eng.ScheduleOp(delay, &s.libs[lib].repair, 0)
}

// repairDrive returns a failed drive to service mid-request.
func (sh *shard) repairDrive(d *drive) {
	d.failed = false
	d.repairAt = 0
	sh.emit(trace.Event{Kind: trace.KindDriveRepaired, Lib: d.lib, Drive: d.idx,
		Tape: -1, Req: sh.sys.curReq})
}

// sweepFaults reconciles drive state with the injector's timelines at a
// request boundary: overdue injected failures are repaired, drives inside
// a failure window are taken down (their cartridges returned to cells)
// before the request's mounted-tape lookup runs. Manual FailDrive outages
// are never auto-repaired. Robots need no sweep — outages are observed at
// grant time.
func (s *System) sweepFaults(t0 float64) {
	for _, l := range s.libs {
		for _, d := range l.drives {
			if d.manual {
				continue
			}
			if d.failed {
				if d.repairAt > t0 {
					continue
				}
				d.failed = false
				d.repairAt = 0
				s.emitAt(trace.Event{Kind: trace.KindDriveRepaired, Lib: d.lib, Drive: d.idx,
					Tape: -1, Req: -1}, t0)
			}
			if down, until := s.inj.DriveDown(d.gidx, t0); down {
				d.failed = true
				d.pinned = false
				d.repairAt = until
				if d.mounted >= 0 {
					d.mounted = -1
					d.headPos = 0
				}
				s.emitAt(trace.Event{Kind: trace.KindDriveFailed, Lib: d.lib, Drive: d.idx,
					Tape: -1, Req: -1, Dur: until - t0}, t0)
			}
		}
	}
}

// hasQueued reports whether a library has retried or pending groups
// waiting for a drive.
func (sh *shard) hasQueued(lib int) bool {
	s := sh.sys
	return s.retryHead[lib] < len(s.retryQ[lib]) || s.pendHead[lib] < len(s.pending[lib])
}

// takeQueued pops the next group for a library — retried groups first
// (they have already waited out a backoff), then the request's pending
// queue — along with its prior attempt count. Retried groups carry no
// precomputed plan (the pipeline plans only the initial dispatch); their
// serve plans from the live head position, which after a mount is
// beginning-of-tape anyway, so the bits are identical.
func (sh *shard) takeQueued(lib int) (pendingGroup, int, bool) {
	s := sh.sys
	if s.retryHead[lib] < len(s.retryQ[lib]) {
		e := s.retryQ[lib][s.retryHead[lib]]
		s.retryHead[lib]++
		return pendingGroup{g: e.g}, e.attempts, true
	}
	pg, ok := sh.takePending(lib)
	return pg, 0, ok
}

// maxRetries resolves the effective retry bound.
func (s *System) maxRetries() int {
	if s.opts.MaxRetries > 0 {
		return s.opts.MaxRetries
	}
	return DefaultMaxRetries
}

// TotalRetries returns the lifetime count of fault-interrupted operations
// re-dispatched to surviving drives, reduced over shards in fixed order.
func (s *System) TotalRetries() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.totalRetries
	}
	return n
}

// TotalMediaErrors returns the lifetime count of tape groups lost to
// permanent media errors, reduced over shards in fixed order.
func (s *System) TotalMediaErrors() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.totalMediaErrors
	}
	return n
}
