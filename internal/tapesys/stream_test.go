package tapesys

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/workload"
)

// streamRun replays n requests through SubmitStream on a fresh system and
// returns the collected metrics plus the final clock.
func streamRun(t *testing.T, shards, n int) ([]RequestMetrics, float64) {
	t.Helper()
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(hw, pr, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stream, err := workload.NewRequestStream(w, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var ms []RequestMetrics
	i := 0
	err = s.SubmitStream(
		func() *model.Request {
			if i >= n {
				return nil
			}
			i++
			return stream.Next()
		},
		func(m RequestMetrics) error {
			ms = append(ms, m)
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ms, s.Now()
}

// TestSubmitStreamMatchesSubmit is the pipeline half of the determinism
// contract: SubmitStream must produce bit-identical per-request metrics
// and final clock to a plain Submit loop, at every shard count — the
// plan-ahead phase is a pure function of the placement, so overlapping it
// with the previous request's event phase cannot change anything.
func TestSubmitStreamMatchesSubmit(t *testing.T) {
	hw, w := shardTestWorkload(t)
	const n = 60
	base := shardedRun(t, hw, w, 0)
	for _, shards := range []int{0, 1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ms, now := streamRun(t, shards, n)
			if len(ms) != len(base.metrics) {
				t.Fatalf("stream returned %d metrics, want %d", len(ms), len(base.metrics))
			}
			for i := range ms {
				if ms[i] != base.metrics[i] {
					t.Fatalf("request %d metrics diverge:\n  submit %+v\n  stream %+v",
						i, base.metrics[i], ms[i])
				}
			}
			if now != base.now {
				t.Fatalf("final clock %v, want %v", now, base.now)
			}
		})
	}
}

// TestSubmitStreamEmpty checks an immediately-exhausted stream is a no-op.
func TestSubmitStreamEmpty(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(hw, pr, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitStream(func() *model.Request { return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 {
		t.Fatalf("clock advanced to %v on an empty stream", s.Now())
	}
}

// TestSubmitStreamErrors checks both error routes: a bad request surfaces
// its grouping error in submission order, and a callback error stops the
// stream; afterwards the system keeps working.
func TestSubmitStreamErrors(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(hw, pr, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stream, err := workload.NewRequestStream(w, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}

	// Route 1: request 2 of the stream asks for an object the placement
	// has never seen; requests 0 and 1 must still deliver metrics first.
	bad := &model.Request{ID: 999, Objects: []model.ObjectID{1 << 30}}
	i, delivered := 0, 0
	err = s.SubmitStream(
		func() *model.Request {
			defer func() { i++ }()
			switch i {
			case 2:
				return bad
			case 3, 4:
				return stream.Next() // queued behind the failure, never runs
			}
			if i > 4 {
				return nil
			}
			return stream.Next()
		},
		func(m RequestMetrics) error { delivered++; return nil },
	)
	if err == nil {
		t.Fatal("bad request did not surface an error")
	}
	if delivered != 2 {
		t.Fatalf("delivered %d metrics before the failure, want 2", delivered)
	}

	// Route 2: the callback aborts the stream.
	stop := errors.New("enough")
	err = s.SubmitStream(
		func() *model.Request { return stream.Next() },
		func(m RequestMetrics) error { return stop },
	)
	if !errors.Is(err, stop) {
		t.Fatalf("callback error = %v, want %v", err, stop)
	}

	// The system stays usable after both failures.
	if _, err := s.Submit(stream.Next()); err != nil {
		t.Fatal(err)
	}
}

// waitGoroutines polls until the process goroutine count drops back to at
// most want, failing the test after a generous deadline.
func waitGoroutines(t *testing.T, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines still running, want <= %d",
				what, runtime.NumGoroutine(), want)
		}
		runtime.GC()
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseReleasesWorkers checks the explicit lifecycle: Close tears down
// the executor workers and the pipeline worker, is idempotent, and leaves
// a fully usable — now sequential — system behind, with identical results.
func TestCloseReleasesWorkers(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	s, err := NewWithOptions(hw, pr, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []RequestMetrics {
		stream, err := workload.NewRequestStream(w, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		var out []RequestMetrics
		i := 0
		err = s.SubmitStream(
			func() *model.Request {
				if i >= 20 {
					return nil
				}
				i++
				return stream.Next()
			},
			func(m RequestMetrics) error { out = append(out, m); return nil },
		)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	open := run()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	waitGoroutines(t, before, "after Close")
	if err := s.Reset(pr); err != nil {
		t.Fatal(err)
	}
	closed := run() // sequential fallback + inline prep
	for i := range open {
		if open[i] != closed[i] {
			t.Fatalf("request %d diverges after Close:\n  open   %+v\n  closed %+v",
				i, open[i], closed[i])
		}
	}
}

// TestFinalizerReleasesWorkers checks the safety net: a sharded, streamed
// system that is dropped without Close has its executor and pipeline
// goroutines reclaimed by the GC cleanup (runtime.AddCleanup — chosen over
// SetFinalizer, which never fires for cyclic structures like System ↔
// shard) once the System is collected.
func TestFinalizerReleasesWorkers(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	func() {
		s, err := NewWithOptions(hw, pr, Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := workload.NewRequestStream(w, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		err = s.SubmitStream(func() *model.Request {
			if i >= 10 {
				return nil
			}
			i++
			return stream.Next()
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// s goes out of scope here without Close.
	}()
	waitGoroutines(t, before, "after dropping the system")
}
