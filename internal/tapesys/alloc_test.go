package tapesys

import (
	"fmt"
	"runtime"
	"testing"

	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// TestSubmitSteadyStateAllocBudget pins the submit path's allocation
// contract at every shard count: with no recorder attached and the
// per-system scratch warmed to the workload's high-water mark, Submit
// performs (almost) no heap allocations. Shards 0 and 1 are the inline
// single-engine path; shards 2 and 4 exercise the sharded dispatch, which
// since the persistent executor landed must match — 0 allocs/op — because
// the handoff is an atomic wake, not a forked goroutine. (AllocsPerRun
// pins GOMAXPROCS to 1, so under this test the sharded dispatch takes the
// sequential fallback; TestShardedParallelPathAllocs covers the parallel
// handoff itself.) The budget of 2 per request leaves slack for
// map-internal rehashing in the mount table and similar runtime
// incidentals; the old implementation sat above 200.
func TestSubmitSteadyStateAllocBudget(t *testing.T) {
	hw := tape.DefaultHardware()
	hw.Libraries = 4
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 12
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  300,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   12,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pb := placement.ParallelBatch{M: 1}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// The resilience knobs must cost nothing while no fault fires: the
	// second options set exercises the deadline bookkeeping and the
	// fault-path guards with faults disabled, and must fit the same
	// budget — zero extra allocations over the healthy configuration.
	optSets := map[string]Options{
		"healthy": {},
		"resilient-idle": {
			RequestTimeout: 1e9,
			MaxRetries:     5,
			RetryBackoff:   30,
		},
	}
	for name, base := range optSets {
		for _, shards := range []int{0, 1, 2, 4} {
			opts := base
			opts.Shards = shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				s, err := NewWithOptions(hw, pr, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				stream, err := workload.NewRequestStream(w, rng.New(99))
				if err != nil {
					t.Fatal(err)
				}
				// Warm-up: grow the grouping arena, pending queues, event heap,
				// and operation pools to this workload's high-water mark.
				for i := 0; i < 50; i++ {
					if _, err := s.Submit(stream.Next()); err != nil {
						t.Fatal(err)
					}
				}
				var submitErr error
				allocs := testing.AllocsPerRun(100, func() {
					if _, err := s.Submit(stream.Next()); err != nil {
						submitErr = err
					}
				})
				if submitErr != nil {
					t.Fatal(submitErr)
				}
				// Sharded dispatch must cost nothing beyond the inline path:
				// the executor handoff is allocation-free by contract.
				budget := 2.0
				if shards > 1 {
					budget = 0
				}
				if allocs > budget {
					t.Fatalf("Submit steady state allocates %.1f per request, budget %.0f", allocs, budget)
				}
			})
		}
	}
}

// TestShardedParallelPathAllocs pins the parallel dispatch path itself:
// with GOMAXPROCS ≥ 2 the persistent executor actually runs shards
// concurrently (AllocsPerRun cannot measure this path — it pins
// GOMAXPROCS to 1, which routes Submit onto the sequential fallback), so
// this test counts mallocs around a steady-state run directly. The bound
// is a small fraction per request: the handoff allocates nothing, and the
// slack only absorbs runtime incidentals (GC bookkeeping, timer churn).
func TestShardedParallelPathAllocs(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2 to exercise the parallel dispatch path")
	}
	hw := tape.DefaultHardware()
	hw.Libraries = 4
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 12
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  300,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   12,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pb := placement.ParallelBatch{M: 1}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, err := NewWithOptions(hw, pr, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			stream, err := workload.NewRequestStream(w, rng.New(99))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ { // warm scratch, pools, and park tokens
				if _, err := s.Submit(stream.Next()); err != nil {
					t.Fatal(err)
				}
			}
			const rounds = 500
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			for i := 0; i < rounds; i++ {
				if _, err := s.Submit(stream.Next()); err != nil {
					t.Fatal(err)
				}
			}
			runtime.ReadMemStats(&after)
			perOp := float64(after.Mallocs-before.Mallocs) / rounds
			if perOp > 0.1 {
				t.Fatalf("parallel sharded Submit allocates %.3f objects per request, want ~0", perOp)
			}
		})
	}
}

// TestResetReusesAllocations verifies System.Reset replays the initial
// placement state without regrowing scratch: a reset plus a request replay
// stays within the same per-request budget as steady-state Submit.
func TestResetReusesAllocations(t *testing.T) {
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 12
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  300,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   12,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pb := placement.ParallelBatch{M: 1}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(hw, pr)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		stream, err := workload.NewRequestStream(w, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 30)
		for i := 0; i < 30; i++ {
			m, err := s.Submit(stream.Next())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m.Response)
		}
		return out
	}
	first := run()
	if err := s.Reset(pr); err != nil {
		t.Fatal(err)
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d response %v before Reset, %v after; Reset must replay the initial state exactly", i, first[i], second[i])
		}
	}
	if s.Now() == 0 {
		t.Fatal("clock did not advance on the replayed run")
	}
}
