package tapesys

import (
	"fmt"
	"testing"

	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// TestSubmitSteadyStateAllocBudget pins the submit path's allocation
// contract on the single-engine path (Shards 0 and 1 — both must stay on
// the inline, goroutine-free code): with no recorder attached and the
// per-system scratch warmed to the workload's high-water mark, Submit
// performs (almost) no heap allocations. The budget of 2 per request
// leaves slack for map-internal rehashing in the mount table and similar
// runtime incidentals; the old implementation sat above 200.
func TestSubmitSteadyStateAllocBudget(t *testing.T) {
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 12
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  300,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   12,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pb := placement.ParallelBatch{M: 1}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// The resilience knobs must cost nothing while no fault fires: the
	// second options set exercises the deadline bookkeeping and the
	// fault-path guards with faults disabled, and must fit the same
	// budget — zero extra allocations over the healthy configuration.
	optSets := map[string]Options{
		"healthy": {},
		"resilient-idle": {
			RequestTimeout: 1e9,
			MaxRetries:     5,
			RetryBackoff:   30,
		},
	}
	for name, base := range optSets {
		for _, shards := range []int{0, 1} {
			opts := base
			opts.Shards = shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				s, err := NewWithOptions(hw, pr, opts)
				if err != nil {
					t.Fatal(err)
				}
				stream, err := workload.NewRequestStream(w, rng.New(99))
				if err != nil {
					t.Fatal(err)
				}
				// Warm-up: grow the grouping arena, pending queues, event heap,
				// and operation pools to this workload's high-water mark.
				for i := 0; i < 50; i++ {
					if _, err := s.Submit(stream.Next()); err != nil {
						t.Fatal(err)
					}
				}
				var submitErr error
				allocs := testing.AllocsPerRun(100, func() {
					if _, err := s.Submit(stream.Next()); err != nil {
						submitErr = err
					}
				})
				if submitErr != nil {
					t.Fatal(submitErr)
				}
				const budget = 2
				if allocs > budget {
					t.Fatalf("Submit steady state allocates %.1f per request, budget %d", allocs, budget)
				}
			})
		}
	}
}

// TestResetReusesAllocations verifies System.Reset replays the initial
// placement state without regrowing scratch: a reset plus a request replay
// stays within the same per-request budget as steady-state Submit.
func TestResetReusesAllocations(t *testing.T) {
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 12
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  300,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   5,
		MaxReqLen:   12,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pb := placement.ParallelBatch{M: 1}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(hw, pr)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		stream, err := workload.NewRequestStream(w, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 30)
		for i := 0; i < 30; i++ {
			m, err := s.Submit(stream.Next())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m.Response)
		}
		return out
	}
	first := run()
	if err := s.Reset(pr); err != nil {
		t.Fatal(err)
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d response %v before Reset, %v after; Reset must replay the initial state exactly", i, first[i], second[i])
		}
	}
	if s.Now() == 0 {
		t.Fatal("clock did not advance on the replayed run")
	}
}
