// Package tapesys is the multiple-tape-library simulator of §6: n libraries
// each with d drives and one robot arm, executing retrieval requests
// against a placement produced by internal/placement.
//
// The simulator follows the paper's stated mechanics:
//
//   - requests are submitted one at a time with no queueing; mount state and
//     head positions persist between requests;
//   - requested objects on mounted tapes are served before those tapes can
//     be unmounted; switch drives whose mounted tape holds no requested
//     object begin switching to pending offline tapes immediately;
//   - a tape switch is rewind → unload → robot store + fetch (robots are
//     per-library and FIFO) → load + thread; the freshly loaded tape starts
//     with its head at BOT;
//   - reads within one tape follow the seek-optimal order for a linear
//     medium (tape.PlanReads);
//   - the request response time is the latest drive finish time; the
//     request's seek and transfer times are those of that last-finishing
//     drive, and switch time is the remainder (§6 "Metrics").
//
// Victim selection among switchable drives uses the least-popular
// replacement policy of [11]: the eligible drive holding the least
// accumulated probability switches first.
//
// # Sharded execution
//
// The libraries of one System are partitioned into shards (Options.Shards),
// each owning its own sim.Engine, robot Resources, and scratch arenas. A
// request's per-library operation chains are dispatched onto the shards,
// each shard's event loop runs to local quiescence, and Submit joins at the
// request boundary with a deterministic reduction: the completion time is
// the maximum over shards, per-drive accounting merges in fixed (library,
// drive) order, and every floating-point sum runs in the same order as the
// single-engine path — so metrics, reports, and exhibit tables are
// byte-identical for any shard count. Shards ≤ 1 (the default) runs the
// single engine inline on the calling goroutine with no synchronization at
// all.
//
// Busy shards run on a persistent executor (sim.Pool): one long-lived
// worker goroutine per extra shard is spawned at New and woken per request
// with an atomic-epoch park/wake handoff, so the sharded path spawns no
// goroutines per request and, like the inline path, allocates nothing in
// steady state. The workers are torn down by Close (or by a finalizer when
// a System is dropped without it). On a single-CPU runtime Submit instead
// runs the busy shards sequentially on the calling goroutine — engines are
// independent between joins, so results are byte-identical either way and
// no handoff latency is paid where no parallelism is possible. See
// docs/ARCHITECTURE.md for the contract and docs/PERFORMANCE.md for when
// sharding pays.
//
// # Streaming and plan-ahead
//
// SubmitStream accepts a request stream and overlaps the CPU-side phase of
// request k+1 — catalog.Grouper grouping and tape.Planner read planning,
// which read only the immutable placement — with the event-driven phase of
// request k, on one dedicated plan worker. Precomputed read plans are used
// only where the live run would compute the identical plan (a freshly
// mounted cartridge, head at beginning-of-tape), so streamed results are
// byte-identical to a Submit loop; see stream.go and the pipeline
// determinism argument in docs/ARCHITECTURE.md.
//
// # Observability
//
// The simulator is fully instrumented: attach a trace.Recorder with
// System.SetRecorder (or EnableTrace for an in-memory buffer) and every
// stage of every request — submission, per-drive seek/transfer spans, the
// rewind → robot → load → mounted switch pipeline, robot queue
// contention, and completion — is emitted as a typed event with library,
// drive, tape, and request IDs. The schema is defined in internal/trace
// and documented in docs/OBSERVABILITY.md; per-component timelines and
// run reports are built from the stream by internal/metrics. With no
// recorder attached tracing costs nothing on the hot path. When the system
// is sharded the recorder is automatically wrapped in a trace.Locked so
// concurrent shard goroutines serialize into one stream; events then
// remain deterministic per shard but their cross-shard interleaving is
// scheduling-dependent. Aggregate per-drive and per-robot accounting
// (DriveReport, RobotReport, WriteUtilization) is always on, trace or not.
//
// # Allocation model
//
// Submit is the simulator's hot path — a full experiment sweep issues
// hundreds of thousands of requests — so all of its per-request state is
// scratch owned by the System and its shards and reused across submissions
// (see docs/PERFORMANCE.md): request grouping runs through a catalog.Grouper
// arena, read planning through a per-shard tape.Planner, per-drive
// accounting is a dense slice, pending queues and victim rankings reuse
// their backing arrays, and the serve/switch continuations are pooled
// objects whose closures are created once. In steady state (no recorder,
// scratch grown to the workload's high-water mark) the single-engine path
// (Shards ≤ 1) performs no heap allocations, and so does the sharded path:
// handing a busy shard to its persistent executor is an atomic epoch bump
// (or a reused channel token when the worker parked), not a goroutine
// spawn.
package tapesys

import (
	"fmt"
	"math"
	"runtime"
	"slices"

	"paralleltape/internal/catalog"
	"paralleltape/internal/faults"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/sim"
	"paralleltape/internal/tape"
	"paralleltape/internal/trace"
)

// drive is the persistent state of one tape drive.
type drive struct {
	lib     int
	idx     int
	gidx    int   // global drive index (dense accounting key)
	mounted int   // library-local tape index, -1 when empty
	headPos int64 // byte offset of the head on the mounted tape
	pinned  bool
	failed  bool

	// manual marks a FailDrive'd drive: never auto-repaired. Injected
	// failures instead carry the injector's return-to-service instant in
	// repairAt (see recovery.go).
	manual   bool
	repairAt float64
	// busy marks a drive with an in-flight serve or switch continuation;
	// the recovery layer uses it to find idle drives for retried work and
	// to decide who owns a failed drive's mounted cartridge.
	busy bool

	// claimed marks the drive as occupied by the request currently being
	// dispatched (serving or switching); valid only during Submit's
	// synchronous dispatch phase.
	claimed bool

	// spanSeq numbers this drive's operations (serves and switch chains)
	// for trace span IDs; see nextSpan.
	spanSeq int64

	// lifetime accounting
	busySeconds   float64
	switchSeconds float64
	bytesMoved    int64
	mounts        int
}

// nextSpan allocates the next operation span ID for this drive: the global
// drive index in the high 31 bits, a per-drive sequence number in the low
// 32. IDs are unique within a run and opaque to consumers; because each
// drive executes its operations in a deterministic order regardless of
// sharding, the same operation gets the same span ID at every shard count.
func (d *drive) nextSpan() int64 {
	d.spanSeq++
	return int64(d.gidx+1)<<32 | d.spanSeq
}

// library is the persistent state of one tape library.
type library struct {
	idx    int
	sh     *shard // the shard whose engine runs this library's events
	robot  *sim.Resource
	drives []*drive
	// repair is the library's embedded repair-wakeup continuation
	// (recovery.go): arming the one liveness-critical recovery event is a
	// typed schedule with no closure capture.
	repair repairWake
}

// driveWithTape returns the library drive that currently has tape index ti
// mounted, or nil. The mount table is the drives themselves: d.mounted is
// authoritative, and a library has only a handful of drives, so the linear
// scan beats the map the library used to carry (no hashing on the Submit
// hot path, no mount/unmount bookkeeping to keep in sync).
func (l *library) driveWithTape(ti int) *drive {
	for _, d := range l.drives {
		if d.mounted == ti {
			return d
		}
	}
	return nil
}

// mountedService pairs a drive with the request group its mounted tape
// already holds.
type mountedService struct {
	d *drive
	g catalog.TapeGroup
}

// shard owns the event-driven half of a contiguous range of libraries: its
// own engine (clock + event queue), the robots of its libraries, a read
// planner, the request latch, and the serve/switch continuation pools.
// During a request at most one goroutine runs a shard's event loop, so all
// shard state is single-threaded; shards share nothing mutable except the
// System's per-drive accounting slice, which they write at disjoint
// indices. Between requests the shard clocks are synchronized to the
// request completion time (the maximum over shards), so every shard's
// events carry the same absolute timestamps the single-engine run would
// produce.
type shard struct {
	sys  *System
	idx  int
	eng  *sim.Engine
	libs []*library // contiguous subset of sys.libs, in library order
	rec  trace.Recorder

	// Per-request scratch.
	planner tape.Planner
	latch   *sim.Latch
	reqDone bool
	groups  int // tape groups of the current request owned by this shard
	// switches counts this request's tape switches on this shard; merged
	// into RequestMetrics in fixed shard order at the join.
	switches   int
	servePool  []*serveOp
	switchPool []*switchOp
	retryPool  []*retryOp

	// Degraded-mode per-request counters (recovery.go), merged into
	// RequestMetrics in fixed shard order at the join. All stay zero on a
	// failure-free run except served, which then equals the shard's
	// delivered bytes.
	served       int64
	retries      int
	mediaErrors  int
	failedGroups int
	failedBytes  int64

	// Lifetime accounting local to the shard, reduced in shard order.
	totalSwitches    int
	totalBusy        float64 // diagnostic: summed seek+transfer seconds
	totalRetries     int
	totalMediaErrors int
}

// Run implements sim.Op: the shard is its own latch-open continuation, so
// arming the request latch (Submit) captures no closure.
func (sh *shard) Run(uint8) { sh.reqDone = true }

// emit stamps the event with the shard's clock and records it. The nil
// check keeps the disabled path free of any tracing cost.
func (sh *shard) emit(ev trace.Event) {
	if sh.rec == nil {
		return
	}
	ev.T = sh.eng.Now()
	sh.rec.Record(ev)
}

// System is a simulated parallel tape storage system. Create with New or
// NewWithOptions, then Submit requests; state persists across submissions.
type System struct {
	hw tape.Hardware
	// locateRate caches hw.LocateRate() so the per-group read-planning call
	// passes two scalars instead of copying the Hardware struct (tape.Planner
	// doc); same divisor, bit-identical plans.
	locateRate float64
	cat        *catalog.Catalog
	prob       map[tape.Key]float64
	libs       []*library
	shards     []*shard
	opts       Options
	rec        trace.Recorder // as attached by the caller (unwrapped)

	// inj is the fault injector (nil when Options.Faults is nil or
	// injects nothing); deadline is the current request's timeout instant
	// (+Inf when timeouts are off). See recovery.go.
	inj      *faults.Injector
	deadline float64

	totalBytes int64

	// Reusable per-request scratch for the single-threaded dispatch and
	// reduction phases (see the package comment's allocation model).
	// Submit runs one request to completion before returning, so exactly
	// one request is in flight and its transient state can live on the
	// System; the event-driven phase runs through the shards.
	grouper     *catalog.Grouper
	curReq      int64
	curMet      RequestMetrics
	acct        []driveAcct      // dense, indexed by drive.gidx
	pending     [][]pendingGroup // per-library offline-group queues
	pendHead    []int            // consumption cursor per library
	retryQ      [][]retryEntry   // per-library queues of ready retried groups
	retryHead   []int            // consumption cursor per library
	repairArmed []bool           // per-library: a repair wakeup event is scheduled
	mountedSvc  []mountedService
	eligible    []*drive
	victimCmp   func(a, b *drive) int

	// exec is the persistent shard executor (len(shards)-1 workers), nil
	// on single-shard systems and after Close; Submit falls back to
	// running busy shards sequentially — byte-identical, see the package
	// comment — when it is gone.
	exec *sim.Pool
	// preps and pipe are the plan-ahead pipeline's double buffer and
	// worker (stream.go); both are created lazily by SubmitStream.
	preps [2]*prepared
	pipe  *planPipe
	// cleanup releases exec and pipe when a System is dropped without
	// Close (armCleanup); cleanupSet says it is armed.
	cleanup    runtime.Cleanup
	cleanupSet bool
	closed     bool
}

// pendingGroup is one offline tape group queued for a switch drive,
// optionally carrying a read plan precomputed by the plan-ahead pipeline.
// A precomputed plan is valid only for a freshly mounted cartridge (head
// at beginning-of-tape) — exactly the state afterLoad serves from — and
// is identical to what serve would compute live, so carrying it changes
// no simulated result.
type pendingGroup struct {
	g       catalog.TapeGroup
	plan    tape.ReadPlan
	planned bool
}

// New builds a system in the placement's initial state with the paper's
// default scheduling (largest-pending-first, least-popular victims) on a
// single engine.
func New(hw tape.Hardware, pl *placement.Result) (*System, error) {
	return NewWithOptions(hw, pl, Options{})
}

// NewWithOptions builds a system with explicit scheduling options.
func NewWithOptions(hw tape.Hardware, pl *placement.Result, opts Options) (*System, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := validatePlacementShape(hw, pl); err != nil {
		return nil, err
	}
	s := &System{
		hw:         hw,
		locateRate: hw.LocateRate(),
		opts:       opts,
		deadline:   math.Inf(1),
	}
	if opts.Faults != nil && opts.Faults.Enabled() {
		inj, err := faults.New(*opts.Faults, hw.Libraries, hw.DrivesPerLib, hw.TapesPerLib)
		if err != nil {
			return nil, err
		}
		s.inj = inj
	}
	nshards := opts.Shards
	if nshards < 1 {
		nshards = 1
	}
	if nshards > hw.Libraries {
		nshards = hw.Libraries
	}
	for i := 0; i < nshards; i++ {
		sh := &shard{sys: s, idx: i, eng: sim.NewEngine()}
		sh.latch = sim.NewLatch(0).Observe(sh.eng, "request")
		s.shards = append(s.shards, sh)
	}
	for lib := 0; lib < hw.Libraries; lib++ {
		// Contiguous partition: shard i owns libraries [i·n/k, (i+1)·n/k).
		sh := s.shards[lib*nshards/hw.Libraries]
		l := &library{
			idx:   lib,
			sh:    sh,
			robot: sim.NewResource(sh.eng, fmt.Sprintf("robot-%d", lib)),
		}
		l.repair.l = l
		for d := 0; d < hw.DrivesPerLib; d++ {
			dr := &drive{lib: lib, idx: d, gidx: lib*hw.DrivesPerLib + d, mounted: -1}
			l.drives = append(l.drives, dr)
		}
		s.libs = append(s.libs, l)
		sh.libs = append(sh.libs, l)
	}
	if nshards > 1 {
		// Persistent shard executor: one long-lived worker per shard beyond
		// the one Submit runs inline. The GC cleanup stops the workers if
		// the owner drops the System without calling Close.
		s.exec = sim.NewPool(nshards - 1)
		s.armCleanup()
	}
	s.acct = make([]driveAcct, hw.Libraries*hw.DrivesPerLib)
	s.pending = make([][]pendingGroup, hw.Libraries)
	s.pendHead = make([]int, hw.Libraries)
	s.retryQ = make([][]retryEntry, hw.Libraries)
	s.retryHead = make([]int, hw.Libraries)
	s.repairArmed = make([]bool, hw.Libraries)
	// victimLess is a total order (ties break on the unique drive index),
	// so the unstable sort ranks victims deterministically. The comparator
	// is created once so the per-request sort allocates nothing.
	s.victimCmp = func(a, b *drive) int {
		if s.victimLess(a, b) {
			return -1
		}
		if s.victimLess(b, a) {
			return 1
		}
		return 0
	}
	if err := s.applyPlacement(pl); err != nil {
		return nil, err
	}
	return s, nil
}

// Shards returns the number of engine shards the system runs on (1 for the
// single-engine configuration).
func (s *System) Shards() int { return len(s.shards) }

// validatePlacementShape checks a placement against the hardware geometry.
func validatePlacementShape(hw tape.Hardware, pl *placement.Result) error {
	if pl == nil || pl.Catalog == nil {
		return fmt.Errorf("tapesys: nil placement")
	}
	if len(pl.InitialMounts) != hw.Libraries {
		return fmt.Errorf("tapesys: placement has %d libraries, hardware %d",
			len(pl.InitialMounts), hw.Libraries)
	}
	for lib := 0; lib < hw.Libraries; lib++ {
		if len(pl.InitialMounts[lib]) != hw.DrivesPerLib || len(pl.Pinned[lib]) != hw.DrivesPerLib {
			return fmt.Errorf("tapesys: library %d mount table sized %d/%d, want %d",
				lib, len(pl.InitialMounts[lib]), len(pl.Pinned[lib]), hw.DrivesPerLib)
		}
	}
	return nil
}

// applyPlacement points the system at a placement and installs its initial
// mount state. Drive lifetime accounting is zeroed.
func (s *System) applyPlacement(pl *placement.Result) error {
	s.cat = pl.Catalog
	s.prob = pl.TapeProb
	s.grouper = catalog.NewGrouper(pl.Catalog)
	for lib, l := range s.libs {
		for d, dr := range l.drives {
			*dr = drive{lib: lib, idx: d, gidx: dr.gidx,
				mounted: pl.InitialMounts[lib][d], pinned: pl.Pinned[lib][d]}
			if dr.mounted >= 0 {
				for _, prev := range l.drives[:d] {
					if prev.mounted == dr.mounted {
						return fmt.Errorf("tapesys: library %d tape %d mounted twice", lib, dr.mounted)
					}
				}
			}
		}
	}
	return nil
}

// Reset restores the system to placement pl's initial state — fresh clocks,
// empty event queues, initial mounts, zeroed accounting — while reusing all
// engine and scratch allocations (event heaps, grouping arena, operation
// pools). The recorder attachment survives. It is the cheap way to run a
// sequence of independent simulations (e.g. one per seed) on identical
// hardware: only the placement may change, and its shape must match the
// system's hardware.
func (s *System) Reset(pl *placement.Result) error {
	if err := validatePlacementShape(s.hw, pl); err != nil {
		return err
	}
	for _, sh := range s.shards {
		sh.eng.Reset()
		sh.totalSwitches = 0
		sh.totalBusy = 0
		sh.totalRetries = 0
		sh.totalMediaErrors = 0
	}
	for _, l := range s.libs {
		l.robot.Reset()
	}
	if s.inj != nil {
		s.inj.Reset()
	}
	for lib := range s.retryQ {
		s.retryQ[lib] = s.retryQ[lib][:0]
		s.retryHead[lib] = 0
		s.repairArmed[lib] = false
	}
	s.deadline = math.Inf(1)
	s.totalBytes = 0
	return s.applyPlacement(pl)
}

// RequestMetrics is the per-request measurement set of §6.
type RequestMetrics struct {
	Request  model.RequestID
	Bytes    int64
	Response float64 // seconds from submission to last transfer completion
	Seek     float64 // seek time of the last-finishing drive
	Transfer float64 // transfer time of the last-finishing drive
	Switch   float64 // Response − Seek − Transfer (includes robot waits)
	// Diagnostics beyond the paper's metrics:
	Switches     int     // tape switches performed for this request
	TapesTouched int     // distinct cartridges read
	DrivesUsed   int     // distinct drives that transferred data
	RobotWait    float64 // summed time switches spent queued for robots
	SumSeek      float64 // seek time summed over all drives
	SumTransfer  float64 // transfer time summed over all drives
	MountedRatio float64 // fraction of bytes served from already-mounted tapes

	// Degraded-mode accounting (docs/RESILIENCE.md). On a failure-free
	// untimed run BytesServed equals Bytes and the rest stay zero.
	BytesServed  int64 // payload delivered by the request deadline
	Retries      int   // fault-interrupted operations re-dispatched to surviving drives
	MediaErrors  int   // tape groups lost to permanent media errors
	FailedGroups int   // tape groups abandoned (media errors, retry exhaustion, dead libraries)
	FailedBytes  int64 // payload of the abandoned groups
	TimedOut     bool  // the request exceeded Options.RequestTimeout
}

// Bandwidth returns the request's effective data retrieval bandwidth in
// bytes/second (§3: transferred size over response time).
func (m RequestMetrics) Bandwidth() float64 {
	if m.Response <= 0 {
		return 0
	}
	return float64(m.Bytes) / m.Response
}

// Goodput returns the delivered bandwidth in bytes/second — BytesServed
// over Response — which discounts abandoned groups and payload that
// arrived after the request deadline. On a failure-free run it equals
// Bandwidth.
func (m RequestMetrics) Goodput() float64 {
	if m.Response <= 0 {
		return 0
	}
	return float64(m.BytesServed) / m.Response
}

// driveAcct accumulates one drive's work during a single request.
type driveAcct struct {
	seek, xfer float64
	finish     float64
	moved      int64
	used       bool
}

// serveOp is the pooled continuation of one tape service: it carries the
// drive, group, and plan from schedule time to completion time, and it is
// its own completion event (sim.Op), so scheduling a service captures no
// closure and performs no allocation.
type serveOp struct {
	sh   *shard
	d    *drive
	g    catalog.TapeGroup
	plan tape.ReadPlan
	// span is the trace span ID of this service (drive.nextSpan), carried
	// onto every event the op emits.
	span int64

	// Recovery-layer state (recovery.go): mode says whether the injector
	// cut this service short and how, start is the schedule instant for
	// partial-work accounting, attempts counts prior re-dispatches of the
	// group.
	mode     serveMode
	start    float64
	attempts int
}

// serveMode tags a service continuation with its fault outcome, decided at
// schedule time from the injector's deterministic timelines.
type serveMode uint8

const (
	// serveOK completes the full seek+transfer span.
	serveOK serveMode = iota
	// serveDriveFail ends early at the serving drive's failure instant.
	serveDriveFail
	// serveMedia ends early at a permanent media error on the cartridge.
	serveMedia
)

func (sh *shard) getServeOp() *serveOp {
	if n := len(sh.servePool); n > 0 {
		op := sh.servePool[n-1]
		sh.servePool[n-1] = nil
		sh.servePool = sh.servePool[:n-1]
		return op
	}
	return &serveOp{sh: sh}
}

func (sh *shard) putServeOp(op *serveOp) {
	op.d = nil
	op.g = catalog.TapeGroup{}
	op.plan = tape.ReadPlan{}
	sh.servePool = append(sh.servePool, op)
}

// Run implements sim.Op: a service has one stage, completion.
func (op *serveOp) Run(uint8) { op.finish() }

// finish is the service-completion event: account the seek/transfer work,
// free the drive, and let it pick up pending switch work. Services the
// fault layer cut short — or whose drive was manually failed while the op
// was in flight — divert to the recovery path instead.
func (op *serveOp) finish() {
	if op.mode != serveOK || op.d.failed {
		op.interrupted()
		return
	}
	sh, d, g, plan, span := op.sh, op.d, op.g, op.plan, op.span
	sh.putServeOp(op)
	d.busy = false
	d.headPos = plan.EndPos
	a := &sh.sys.acct[d.gidx]
	a.used = true
	a.seek += plan.SeekTotal
	a.xfer += plan.XferTotal
	a.moved += g.Bytes
	a.finish = sh.eng.Now()
	sh.totalBusy += plan.SeekTotal + plan.XferTotal
	d.busySeconds += plan.SeekTotal + plan.XferTotal
	d.bytesMoved += g.Bytes
	if sh.eng.Now() <= sh.sys.deadline {
		sh.served += g.Bytes
	}
	sh.emit(trace.Event{Kind: trace.KindServeEnd, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
		Req: sh.sys.curReq, Span: span, Bytes: g.Bytes, Dur: plan.SeekTotal + plan.XferTotal})
	sh.latch.Done()
	sh.afterService(d)
}

// switchOp is the pooled continuation chain of one tape switch. The op is
// one sim.Op whose stage tags select the chain step (rewind done → robot
// outage wait → move done → load done, see switchOp.Run) and one
// sim.Grantee for the robot grant, so every stage transition schedules the
// record itself — no closures, no captures, no allocation.
type switchOp struct {
	sh          *shard
	d           *drive
	l           *library
	g           catalog.TapeGroup
	switchBegin float64
	hadTape     bool
	grant       *sim.Grant
	// span is the trace span ID of this switch chain (drive.nextSpan),
	// carried onto every event the op emits.
	span int64
	// attempts counts prior fault-interrupted dispatches of the group
	// (recovery.go); carried through to the serve so a retried group keeps
	// its retry budget.
	attempts int
	// plan/planned carry a beginning-of-tape read plan precomputed by the
	// plan-ahead pipeline (pendingGroup) through to the serve.
	plan    tape.ReadPlan
	planned bool
}

// Switch-chain stage tags: the event a switchOp schedules carries the tag
// of the stage to run next, dispatched by switchOp.Run's jump table.
const (
	tagSwitchPrep  = iota // rewind+unload finished → queue for the robot
	tagSwitchRobot        // robot outage waited out → start cell moves
	tagSwitchMove         // cell moves finished → release arm, load+thread
	tagSwitchLoad         // load+thread finished → mount and serve
)

// Run implements sim.Op, dispatching the switch chain's next stage.
func (op *switchOp) Run(tag uint8) {
	switch tag {
	case tagSwitchPrep:
		op.afterPrep()
	case tagSwitchRobot:
		op.afterRobot()
	case tagSwitchMove:
		op.afterMove()
	case tagSwitchLoad:
		op.afterLoad()
	}
}

// Granted implements sim.Grantee: the robot arm is ours.
func (op *switchOp) Granted(g *sim.Grant) { op.onGrant(g) }

func (sh *shard) getSwitchOp() *switchOp {
	if n := len(sh.switchPool); n > 0 {
		op := sh.switchPool[n-1]
		sh.switchPool[n-1] = nil
		sh.switchPool = sh.switchPool[:n-1]
		return op
	}
	return &switchOp{sh: sh}
}

func (sh *shard) putSwitchOp(op *switchOp) {
	op.d = nil
	op.l = nil
	op.g = catalog.TapeGroup{}
	op.grant = nil
	op.plan = tape.ReadPlan{}
	op.planned = false
	sh.switchPool = append(sh.switchPool, op)
}

// afterPrep runs once the outgoing cartridge has rewound and unloaded (or
// immediately for an empty drive): the cartridge has left the drive, so
// queue for the robot.
func (op *switchOp) afterPrep() {
	if op.abortIfDown() {
		return
	}
	d, l := op.d, op.l
	op.hadTape = d.mounted >= 0
	if op.hadTape {
		d.mounted = -1
	}
	l.robot.AcquireOp(op)
}

// onGrant runs holding the robot. If the arm is inside an injected outage
// window the switch rides it out while holding the grant — followers queue
// behind it, which is exactly the degraded-mode contract of
// docs/RESILIENCE.md — otherwise the cell moves start immediately.
func (op *switchOp) onGrant(grant *sim.Grant) {
	sh, d := op.sh, op.d
	op.grant = grant
	if s := sh.sys; s.inj != nil {
		now := sh.eng.Now()
		if down, until := s.inj.RobotDown(d.lib, now); down {
			sh.emit(trace.Event{Kind: trace.KindRobotFailed, Lib: d.lib, Drive: d.idx,
				Tape: op.g.Tape.Index, Req: s.curReq, Span: op.span, Dur: until - now})
			sh.eng.ScheduleOp(until-now, op, tagSwitchRobot)
			return
		}
	}
	op.moves()
}

// afterRobot resumes a switch that waited out a robot outage.
func (op *switchOp) afterRobot() {
	sh, d := op.sh, op.d
	sh.emit(trace.Event{Kind: trace.KindRobotRepaired, Lib: d.lib, Drive: d.idx,
		Tape: op.g.Tape.Index, Req: sh.sys.curReq, Span: op.span})
	op.moves()
}

// moves performs the robot cell moves (stow the outgoing cartridge if any,
// fetch the target) while holding the arm.
func (op *switchOp) moves() {
	sh, d := op.sh, op.d
	move := sh.sys.hw.CellToDrive // fetch the target cartridge
	if op.hadTape {
		move += sh.sys.hw.CellToDrive // first stow the old one
	}
	sh.emit(trace.Event{Kind: trace.KindRobot, Lib: d.lib, Drive: d.idx, Tape: op.g.Tape.Index,
		Req: sh.sys.curReq, Span: op.span, Dur: move})
	sh.eng.ScheduleOp(move, op, tagSwitchMove)
}

// afterMove runs when the robot finishes: release it and start load+thread.
func (op *switchOp) afterMove() {
	sh, d := op.sh, op.d
	op.grant.Release()
	op.grant = nil
	if op.abortIfDown() {
		return
	}
	sh.emit(trace.Event{Kind: trace.KindLoad, Lib: d.lib, Drive: d.idx, Tape: op.g.Tape.Index,
		Req: sh.sys.curReq, Span: op.span, Dur: sh.sys.hw.LoadThread})
	sh.eng.ScheduleOp(sh.sys.hw.LoadThread, op, tagSwitchLoad)
}

// afterLoad completes the mount and serves the group.
func (op *switchOp) afterLoad() {
	if op.abortIfDown() {
		return
	}
	sh, d, g := op.sh, op.d, op.g
	switchBegin, attempts, span := op.switchBegin, op.attempts, op.span
	plan, planned := op.plan, op.planned
	sh.putSwitchOp(op)
	d.mounted = g.Tape.Index
	d.headPos = 0
	d.mounts++
	d.switchSeconds += sh.eng.Now() - switchBegin
	sh.emit(trace.Event{Kind: trace.KindMounted, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
		Req: sh.sys.curReq, Span: span, Dur: sh.eng.Now() - switchBegin})
	sh.serve(d, g, attempts, plan, planned)
}

// serve schedules the seek+transfer span for group g on drive d. attempts
// is the group's prior fault-interrupted dispatch count (0 on the healthy
// path). plan, when planned is true, is a beginning-of-tape read plan the
// plan-ahead pipeline precomputed for g; it is used only when the head is
// actually at BOT (always true after a switch mount), otherwise — and on
// the live-planned path — the plan is computed here from the current head
// position. tape.Planner.PlanRates is deterministic, so the two routes
// produce bit-identical plans. With an injector attached the span may be
// cut short by a scheduled drive failure or a media error (armServeFaults);
// the emitted seek/transfer events always carry the full planned spans.
func (sh *shard) serve(d *drive, g catalog.TapeGroup, attempts int, plan tape.ReadPlan, planned bool) {
	op := sh.getServeOp()
	op.d = d
	op.g = g
	if planned && d.headPos == 0 {
		op.plan = plan
	} else {
		op.plan = sh.planner.PlanRates(sh.sys.locateRate, sh.sys.hw.TransferRate, d.headPos, g.Extents)
	}
	op.mode = serveOK
	op.start = sh.eng.Now()
	op.attempts = attempts
	op.span = d.nextSpan()
	d.busy = true
	span := op.plan.SeekTotal + op.plan.XferTotal
	if sh.sys.inj != nil {
		span = sh.armServeFaults(op, span)
	}
	if sh.rec != nil {
		sh.emit(trace.Event{Kind: trace.KindServeStart, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
			Req: sh.sys.curReq, Span: op.span, Bytes: g.Bytes})
		sh.emit(trace.Event{Kind: trace.KindSeek, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
			Req: sh.sys.curReq, Span: op.span, Dur: op.plan.SeekTotal})
		sh.emit(trace.Event{Kind: trace.KindTransfer, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
			Req: sh.sys.curReq, Span: op.span, Bytes: g.Bytes, Dur: op.plan.XferTotal})
	}
	sh.eng.ScheduleOp(span, op, 0)
}

// startSwitch begins the rewind → robot → load pipeline moving drive d to
// the cartridge of group pg.g. attempts is the group's prior
// fault-interrupted dispatch count (0 on the healthy path).
func (sh *shard) startSwitch(d *drive, pg pendingGroup, attempts int) {
	g := pg.g
	sh.switches++
	sh.totalSwitches++
	op := sh.getSwitchOp()
	op.d = d
	op.l = sh.sys.libs[d.lib]
	op.g = g
	op.plan = pg.plan
	op.planned = pg.planned
	op.attempts = attempts
	op.switchBegin = sh.eng.Now()
	op.span = d.nextSpan()
	d.busy = true
	prep := 0.0
	if d.mounted >= 0 {
		prep = sh.sys.hw.RewindTime(d.headPos) + sh.sys.hw.Unload
	}
	// Every switch chain opens with a rewind event — Dur 0 and Tape -1 for
	// an empty drive — so span reconstruction sees the chain's start even
	// when the chain aborts before any other stage.
	sh.emit(trace.Event{Kind: trace.KindRewind, Lib: d.lib, Drive: d.idx, Tape: d.mounted,
		Req: sh.sys.curReq, Span: op.span, Dur: prep})
	sh.eng.ScheduleOp(prep, op, tagSwitchPrep)
}

// takePending pops the next offline group for a library. Only the shard
// owning the library consumes its queue, so the cursor needs no locking.
func (sh *shard) takePending(lib int) (pendingGroup, bool) {
	s := sh.sys
	if s.pendHead[lib] >= len(s.pending[lib]) {
		return pendingGroup{}, false
	}
	pg := s.pending[lib][s.pendHead[lib]]
	s.pendHead[lib]++
	return pg, true
}

// afterService decides a drive's next move once it finishes a tape. With
// an injector attached it first checks whether the drive's failure window
// opened exactly at service end; queued retried groups take priority over
// the request's original pending queue.
func (sh *shard) afterService(d *drive) {
	if d.pinned {
		return
	}
	if s := sh.sys; s.inj != nil && !d.failed {
		if down, until := s.inj.DriveDown(d.gidx, sh.eng.Now()); down {
			sh.observeDriveFailure(d, until, -1, s.curReq, 0)
			sh.pump(d.lib)
			return
		}
	}
	if g, attempts, ok := sh.takeQueued(d.lib); ok {
		sh.startSwitch(d, g, attempts)
	}
}

// beginRequest resets the shard's per-request state.
func (sh *shard) beginRequest() {
	sh.groups = 0
	sh.switches = 0
	sh.reqDone = false
	sh.served = 0
	sh.retries = 0
	sh.mediaErrors = 0
	sh.failedGroups = 0
	sh.failedBytes = 0
}

// emitAt records a system-level event stamped with time t. Submit calls it
// only from the dispatch and reduction phases, when no shard goroutine is
// running, so the caller's recorder is used directly.
func (s *System) emitAt(ev trace.Event, t float64) {
	if s.rec == nil {
		return
	}
	ev.T = t
	s.rec.Record(ev)
}

// Submit executes one request to completion and returns its metrics. Each
// shard's engine runs until the system is idle again (the paper's
// zero-queueing assumption): dispatch is synchronous on the calling
// goroutine, then each busy shard's event loop runs — inline for a single
// shard, on forked goroutines otherwise — and the join reduces the shard
// results deterministically (completion time = max over shards, counters
// and floating-point sums in fixed library order). All transient state
// lives in System- and shard-owned scratch; see the package comment's
// allocation model.
func (s *System) Submit(r *model.Request) (RequestMetrics, error) {
	groups, err := s.grouper.Group(r)
	if err != nil {
		return RequestMetrics{}, err
	}
	return s.submitGrouped(r, groups, nil)
}

// submitGrouped is Submit after grouping. plans, when non-nil, carries one
// precomputed beginning-of-tape read plan per group (same order as groups)
// from the plan-ahead pipeline; nil means plans are computed live at serve
// time. Either way the simulated results are identical — see stream.go.
func (s *System) submitGrouped(r *model.Request, groups []catalog.TapeGroup, plans []tape.ReadPlan) (RequestMetrics, error) {
	// Shard clocks are synchronized at every request boundary, so any
	// shard's clock is the submission instant.
	t0 := s.shards[0].eng.Now()
	if s.inj != nil {
		s.sweepFaults(t0)
	}
	s.deadline = math.Inf(1)
	if s.opts.RequestTimeout > 0 {
		s.deadline = t0 + s.opts.RequestTimeout
	}
	s.curReq = int64(r.ID)
	s.curMet = RequestMetrics{Request: r.ID, TapesTouched: len(groups)}
	met := &s.curMet
	s.emitAt(trace.Event{Kind: trace.KindSubmit, Lib: -1, Drive: -1, Tape: -1, Req: s.curReq}, t0)

	for i := range s.acct {
		s.acct[i] = driveAcct{}
	}
	robotWait0 := s.robotWaitTotal()
	for _, sh := range s.shards {
		sh.beginRequest()
	}

	// Per-library pending queues of offline tape groups, largest first so
	// long transfers start earliest (LPT ordering keeps the makespan low).
	for lib := range s.pending {
		s.pending[lib] = s.pending[lib][:0]
		s.pendHead[lib] = 0
		if s.inj != nil {
			s.retryQ[lib] = s.retryQ[lib][:0]
			s.retryHead[lib] = 0
			s.repairArmed[lib] = false
		}
	}
	var mountedBytes int64
	mounted := s.mountedSvc[:0]
	for i, g := range groups {
		met.Bytes += g.Bytes
		l := s.libs[g.Tape.Library]
		l.sh.groups++
		if d := l.driveWithTape(g.Tape.Index); d != nil {
			// Mounted services seek from the live head position, so a
			// beginning-of-tape plan does not apply; serve computes theirs.
			mounted = append(mounted, mountedService{d: d, g: g})
			mountedBytes += g.Bytes
		} else {
			pg := pendingGroup{g: g}
			if plans != nil {
				pg.plan, pg.planned = plans[i], true
			}
			s.pending[g.Tape.Library] = append(s.pending[g.Tape.Library], pg)
		}
	}
	s.mountedSvc = mounted
	for lib := range s.pending {
		sortPending(s.pending[lib], s.opts.Pending)
	}
	if met.Bytes > 0 {
		met.MountedRatio = float64(mountedBytes) / float64(met.Bytes)
	}
	for _, sh := range s.shards {
		sh.latch.Reset(sh.groups)
	}

	// Phase 1: drives whose mounted tape holds requested objects are
	// claimed by this request first.
	for _, l := range s.libs {
		for _, d := range l.drives {
			d.claimed = false
		}
	}
	for _, ms := range mounted {
		ms.d.claimed = true
	}
	// Phase 2: eligible idle switch drives start switching immediately.
	// Eligible = not pinned, not serving this request. Victims in
	// least-popular-mounted-tape order (empty drives first).
	for lib := range s.libs {
		if len(s.pending[lib]) == 0 {
			continue
		}
		eligible := s.eligible[:0]
		for _, d := range s.libs[lib].drives {
			if d.pinned || d.failed || d.claimed {
				continue
			}
			eligible = append(eligible, d)
		}
		s.eligible = eligible
		slices.SortFunc(eligible, s.victimCmp)
		sh := s.libs[lib].sh
		for _, d := range eligible {
			pg, ok := sh.takePending(lib)
			if !ok {
				break
			}
			d.claimed = true
			sh.startSwitch(d, pg, 0)
		}
		if s.pendHead[lib] < len(s.pending[lib]) {
			// Remaining groups wait for serving drives to free up; require
			// at least one unpinned drive in this library to guarantee
			// progress.
			hasSwitcher := false
			for _, d := range s.libs[lib].drives {
				if !d.pinned && !d.failed {
					hasSwitcher = true
					break
				}
			}
			if !hasSwitcher {
				if s.inj == nil {
					return RequestMetrics{}, fmt.Errorf(
						"tapesys: library %d has offline requested tapes but no switchable drive", lib)
				}
				// Degraded mode: wait for a repair if one is scheduled,
				// abandon the stranded groups otherwise (recovery.go).
				sh.stall(lib)
			}
		}
	}
	// Kick off mounted services after switch dispatch so the claimed marks
	// were complete; simulated start time is identical (same instant).
	for _, ms := range mounted {
		s.libs[ms.d.lib].sh.serve(ms.d, ms.g, 0, tape.ReadPlan{}, false)
	}

	// Arm the request latches and run each busy shard's event loop to
	// quiescence. A latch armed at zero fires synchronously, so shards
	// without work complete here.
	for _, sh := range s.shards {
		sh.latch.WaitOp(sh, 0)
	}
	if len(s.shards) == 1 {
		s.shards[0].eng.Run()
	} else if s.exec == nil || runtime.GOMAXPROCS(0) == 1 {
		// Sequential fallback: after Close, or when the runtime owns a
		// single CPU (parallel handoff would only ping-pong the one P).
		// Shard engines share no mutable state between joins, so running
		// them back-to-back on the caller is byte-identical to the
		// parallel run.
		for _, sh := range s.shards {
			if sh.eng.Pending() > 0 {
				sh.eng.Run()
			}
		}
	} else {
		// Hand every busy shard but one to the persistent executor, run
		// that one inline on the caller, and join before touching any
		// shared state again. Steady state this path allocates nothing:
		// the handoff is an atomic epoch bump (sim.Pool).
		inline := -1
		for i, sh := range s.shards {
			if sh.eng.Pending() == 0 {
				continue
			}
			if inline < 0 {
				inline = i
				continue
			}
			s.exec.Go(sh.eng)
		}
		if inline >= 0 {
			s.shards[inline].eng.Run()
		}
		s.exec.Wait()
	}

	// Join: the request completes at the latest shard-local instant;
	// advance every shard clock to it so the next request (and all
	// persistent accounting) sees one global time base, exactly as the
	// single-engine run would.
	end := t0
	for _, sh := range s.shards {
		if n := sh.eng.Now(); n > end {
			end = n
		}
	}
	for _, sh := range s.shards {
		sh.eng.RunUntil(end) // queue already drained: clock sync only
	}
	for _, sh := range s.shards {
		if !sh.reqDone {
			return RequestMetrics{}, fmt.Errorf("tapesys: request %d did not complete (%d groups outstanding)",
				r.ID, sh.latch.Remaining())
		}
		met.Switches += sh.switches
		met.BytesServed += sh.served
		met.Retries += sh.retries
		met.MediaErrors += sh.mediaErrors
		met.FailedGroups += sh.failedGroups
		met.FailedBytes += sh.failedBytes
	}

	// §6 metrics: response from the last-finishing drive. A timed-out
	// request reports Response = RequestTimeout (the client gave up at the
	// deadline) even though the mechanical work ran to completion and the
	// clock advanced with it.
	met.Response = end - t0
	if end > s.deadline {
		met.TimedOut = true
		met.Response = s.opts.RequestTimeout
		s.emitAt(trace.Event{Kind: trace.KindRequestTimedOut, Lib: -1, Drive: -1, Tape: -1,
			Req: s.curReq, Bytes: met.BytesServed, Dur: s.opts.RequestTimeout}, s.deadline)
	}
	s.emitAt(trace.Event{Kind: trace.KindComplete, Lib: -1, Drive: -1, Tape: -1,
		Req: s.curReq, Bytes: met.Bytes, Dur: met.Response}, end)
	var last *driveAcct
	for i := range s.acct {
		a := &s.acct[i]
		if !a.used {
			continue
		}
		met.SumSeek += a.seek
		met.SumTransfer += a.xfer
		if a.moved > 0 {
			met.DrivesUsed++
		}
		if last == nil || a.finish > last.finish {
			last = a
		}
	}
	if last != nil {
		met.Seek = last.seek
		met.Transfer = last.xfer
		met.Switch = met.Response - met.Seek - met.Transfer
		if met.Switch < 0 {
			met.Switch = 0
		}
	}
	met.RobotWait = s.robotWaitTotal() - robotWait0
	s.totalBytes += met.Bytes
	return s.curMet, nil
}

// mountedProb returns the accumulated probability of the drive's mounted
// tape (−1 for an empty drive, so empty drives are preferred victims).
func (s *System) mountedProb(d *drive) float64 {
	if d.mounted < 0 {
		return -1
	}
	return s.prob[tape.Key{Library: d.lib, Index: d.mounted}]
}

func (s *System) robotWaitTotal() float64 {
	total := 0.0
	for _, l := range s.libs {
		total += l.robot.Stats().WaitTotal
	}
	return total
}

// Now returns the current simulated time (the maximum over shard clocks;
// between requests all shards agree).
func (s *System) Now() float64 {
	now := 0.0
	for _, sh := range s.shards {
		if n := sh.eng.Now(); n > now {
			now = n
		}
	}
	return now
}

// TotalSwitches returns the switch count over the system's lifetime,
// reduced over shards in fixed order.
func (s *System) TotalSwitches() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.totalSwitches
	}
	return n
}

// MountedTapes returns, per library, the sorted tape indices currently
// mounted (diagnostic).
func (s *System) MountedTapes() [][]int {
	out := make([][]int, len(s.libs))
	for i, l := range s.libs {
		for _, d := range l.drives {
			if d.mounted >= 0 {
				out[i] = append(out[i], d.mounted)
			}
		}
		slices.Sort(out[i])
	}
	return out
}
