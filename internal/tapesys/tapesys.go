// Package tapesys is the multiple-tape-library simulator of §6: n libraries
// each with d drives and one robot arm, executing retrieval requests
// against a placement produced by internal/placement.
//
// The simulator follows the paper's stated mechanics:
//
//   - requests are submitted one at a time with no queueing; mount state and
//     head positions persist between requests;
//   - requested objects on mounted tapes are served before those tapes can
//     be unmounted; switch drives whose mounted tape holds no requested
//     object begin switching to pending offline tapes immediately;
//   - a tape switch is rewind → unload → robot store + fetch (robots are
//     per-library and FIFO) → load + thread; the freshly loaded tape starts
//     with its head at BOT;
//   - reads within one tape follow the seek-optimal order for a linear
//     medium (tape.PlanReads);
//   - the request response time is the latest drive finish time; the
//     request's seek and transfer times are those of that last-finishing
//     drive, and switch time is the remainder (§6 "Metrics").
//
// Victim selection among switchable drives uses the least-popular
// replacement policy of [11]: the eligible drive holding the least
// accumulated probability switches first.
//
// # Observability
//
// The simulator is fully instrumented: attach a trace.Recorder with
// System.SetRecorder (or EnableTrace for an in-memory buffer) and every
// stage of every request — submission, per-drive seek/transfer spans, the
// rewind → robot → load → mounted switch pipeline, robot queue
// contention, and completion — is emitted as a typed event with library,
// drive, tape, and request IDs. The schema is defined in internal/trace
// and documented in docs/OBSERVABILITY.md; per-component timelines and
// run reports are built from the stream by internal/metrics. With no
// recorder attached tracing costs nothing on the hot path. Aggregate
// per-drive and per-robot accounting (DriveReport, RobotReport,
// WriteUtilization) is always on, trace or not.
package tapesys

import (
	"fmt"
	"sort"

	"paralleltape/internal/catalog"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/sim"
	"paralleltape/internal/tape"
	"paralleltape/internal/trace"
)

// drive is the persistent state of one tape drive.
type drive struct {
	lib     int
	idx     int
	mounted int   // library-local tape index, -1 when empty
	headPos int64 // byte offset of the head on the mounted tape
	pinned  bool
	failed  bool

	// lifetime accounting
	busySeconds   float64
	switchSeconds float64
	bytesMoved    int64
	mounts        int
}

// library is the persistent state of one tape library.
type library struct {
	idx    int
	robot  *sim.Resource
	drives []*drive
	// byTape maps a mounted tape index to the drive holding it.
	byTape map[int]*drive
}

// System is a simulated parallel tape storage system. Create with New or
// NewWithOptions, then Submit requests; state persists across submissions.
type System struct {
	hw   tape.Hardware
	cat  *catalog.Catalog
	prob map[tape.Key]float64
	eng  *sim.Engine
	libs []*library
	opts Options
	rec  trace.Recorder

	totalSwitches int
	totalBytes    int64
	totalBusy     float64
}

// New builds a system in the placement's initial state with the paper's
// default scheduling (largest-pending-first, least-popular victims).
func New(hw tape.Hardware, pl *placement.Result) (*System, error) {
	return NewWithOptions(hw, pl, Options{})
}

// NewWithOptions builds a system with explicit scheduling options.
func NewWithOptions(hw tape.Hardware, pl *placement.Result, opts Options) (*System, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if pl == nil || pl.Catalog == nil {
		return nil, fmt.Errorf("tapesys: nil placement")
	}
	if len(pl.InitialMounts) != hw.Libraries {
		return nil, fmt.Errorf("tapesys: placement has %d libraries, hardware %d",
			len(pl.InitialMounts), hw.Libraries)
	}
	s := &System{
		hw:   hw,
		cat:  pl.Catalog,
		prob: pl.TapeProb,
		eng:  sim.NewEngine(),
		opts: opts,
	}
	for lib := 0; lib < hw.Libraries; lib++ {
		if len(pl.InitialMounts[lib]) != hw.DrivesPerLib || len(pl.Pinned[lib]) != hw.DrivesPerLib {
			return nil, fmt.Errorf("tapesys: library %d mount table sized %d/%d, want %d",
				lib, len(pl.InitialMounts[lib]), len(pl.Pinned[lib]), hw.DrivesPerLib)
		}
		l := &library{
			idx:    lib,
			robot:  sim.NewResource(s.eng, fmt.Sprintf("robot-%d", lib)),
			byTape: make(map[int]*drive),
		}
		for d := 0; d < hw.DrivesPerLib; d++ {
			dr := &drive{lib: lib, idx: d, mounted: pl.InitialMounts[lib][d], pinned: pl.Pinned[lib][d]}
			if dr.mounted >= 0 {
				if _, dup := l.byTape[dr.mounted]; dup {
					return nil, fmt.Errorf("tapesys: library %d tape %d mounted twice", lib, dr.mounted)
				}
				l.byTape[dr.mounted] = dr
			}
			l.drives = append(l.drives, dr)
		}
		s.libs = append(s.libs, l)
	}
	return s, nil
}

// RequestMetrics is the per-request measurement set of §6.
type RequestMetrics struct {
	Request  model.RequestID
	Bytes    int64
	Response float64 // seconds from submission to last transfer completion
	Seek     float64 // seek time of the last-finishing drive
	Transfer float64 // transfer time of the last-finishing drive
	Switch   float64 // Response − Seek − Transfer (includes robot waits)
	// Diagnostics beyond the paper's metrics:
	Switches     int     // tape switches performed for this request
	TapesTouched int     // distinct cartridges read
	DrivesUsed   int     // distinct drives that transferred data
	RobotWait    float64 // summed time switches spent queued for robots
	SumSeek      float64 // seek time summed over all drives
	SumTransfer  float64 // transfer time summed over all drives
	MountedRatio float64 // fraction of bytes served from already-mounted tapes
}

// Bandwidth returns the request's effective data retrieval bandwidth in
// bytes/second (§3: transferred size over response time).
func (m RequestMetrics) Bandwidth() float64 {
	if m.Response <= 0 {
		return 0
	}
	return float64(m.Bytes) / m.Response
}

// driveAcct accumulates one drive's work during a single request.
type driveAcct struct {
	seek, xfer float64
	finish     float64
	moved      int64
}

// Submit executes one request to completion and returns its metrics. The
// engine runs until the system is idle again (the paper's zero-queueing
// assumption).
func (s *System) Submit(r *model.Request) (RequestMetrics, error) {
	groups, err := s.cat.GroupRequest(r)
	if err != nil {
		return RequestMetrics{}, err
	}
	t0 := s.eng.Now()
	met := RequestMetrics{Request: r.ID, TapesTouched: len(groups)}
	s.emit(trace.Event{Kind: trace.KindSubmit, Lib: -1, Drive: -1, Tape: -1, Req: int64(r.ID)})

	acct := make(map[*drive]*driveAcct)
	acctOf := func(d *drive) *driveAcct {
		a := acct[d]
		if a == nil {
			a = &driveAcct{}
			acct[d] = a
		}
		return a
	}
	robotWait0 := s.robotWaitTotal()

	latch := sim.NewLatch(len(groups)).Observe(s.eng, "request")

	// Per-library pending queues of offline tape groups, largest first so
	// long transfers start earliest (LPT ordering keeps the makespan low).
	pending := make([][]catalog.TapeGroup, s.hw.Libraries)
	var mountedBytes int64
	type mountedService struct {
		d *drive
		g catalog.TapeGroup
	}
	var mountedServices []mountedService
	for _, g := range groups {
		met.Bytes += g.Bytes
		l := s.libs[g.Tape.Library]
		if d, ok := l.byTape[g.Tape.Index]; ok {
			mountedServices = append(mountedServices, mountedService{d: d, g: g})
			mountedBytes += g.Bytes
		} else {
			pending[g.Tape.Library] = append(pending[g.Tape.Library], g)
		}
	}
	for lib := range pending {
		sortPending(pending[lib], s.opts.Pending)
	}
	if met.Bytes > 0 {
		met.MountedRatio = float64(mountedBytes) / float64(met.Bytes)
	}

	// busy marks drives occupied by this request (serving or switching).
	busy := make(map[*drive]bool)

	// takePending pops the next offline group for a library.
	takePending := func(lib int) (catalog.TapeGroup, bool) {
		q := pending[lib]
		if len(q) == 0 {
			return catalog.TapeGroup{}, false
		}
		g := q[0]
		pending[lib] = q[1:]
		return g, true
	}

	var serve func(d *drive, g catalog.TapeGroup)
	var startSwitch func(d *drive, g catalog.TapeGroup)

	// afterService decides a drive's next move once it finishes a tape.
	afterService := func(d *drive) {
		if d.pinned {
			return
		}
		if g, ok := takePending(d.lib); ok {
			startSwitch(d, g)
		}
	}

	serve = func(d *drive, g catalog.TapeGroup) {
		plan := tape.PlanReads(s.hw, d.headPos, g.Extents)
		a := acctOf(d)
		if s.rec != nil {
			s.emit(trace.Event{Kind: trace.KindServeStart, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
				Req: int64(r.ID), Bytes: g.Bytes})
			s.emit(trace.Event{Kind: trace.KindSeek, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
				Req: int64(r.ID), Dur: plan.SeekTotal})
			s.emit(trace.Event{Kind: trace.KindTransfer, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
				Req: int64(r.ID), Bytes: g.Bytes, Dur: plan.XferTotal})
		}
		s.eng.Schedule(plan.SeekTotal+plan.XferTotal, func() {
			d.headPos = plan.EndPos
			a.seek += plan.SeekTotal
			a.xfer += plan.XferTotal
			a.moved += g.Bytes
			a.finish = s.eng.Now()
			s.totalBusy += plan.SeekTotal + plan.XferTotal
			d.busySeconds += plan.SeekTotal + plan.XferTotal
			d.bytesMoved += g.Bytes
			s.emit(trace.Event{Kind: trace.KindServeEnd, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
				Req: int64(r.ID), Bytes: g.Bytes, Dur: plan.SeekTotal + plan.XferTotal})
			latch.Done()
			afterService(d)
		})
	}

	startSwitch = func(d *drive, g catalog.TapeGroup) {
		met.Switches++
		s.totalSwitches++
		l := s.libs[d.lib]
		switchBegin := s.eng.Now()
		prep := 0.0
		if d.mounted >= 0 {
			prep = s.hw.RewindTime(d.headPos) + s.hw.Unload
			s.emit(trace.Event{Kind: trace.KindRewind, Lib: d.lib, Drive: d.idx, Tape: d.mounted,
				Req: int64(r.ID), Dur: prep})
		}
		s.eng.Schedule(prep, func() {
			// The outgoing cartridge has left the drive.
			hadTape := d.mounted >= 0
			if hadTape {
				delete(l.byTape, d.mounted)
				d.mounted = -1
			}
			l.robot.Acquire(func(grant *sim.Grant) {
				move := s.hw.CellToDrive // fetch the target cartridge
				if hadTape {
					move += s.hw.CellToDrive // first stow the old one
				}
				s.emit(trace.Event{Kind: trace.KindRobot, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
					Req: int64(r.ID), Dur: move})
				s.eng.Schedule(move, func() {
					grant.Release()
					s.emit(trace.Event{Kind: trace.KindLoad, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
						Req: int64(r.ID), Dur: s.hw.LoadThread})
					s.eng.Schedule(s.hw.LoadThread, func() {
						d.mounted = g.Tape.Index
						d.headPos = 0
						d.mounts++
						d.switchSeconds += s.eng.Now() - switchBegin
						l.byTape[g.Tape.Index] = d
						s.emit(trace.Event{Kind: trace.KindMounted, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
							Req: int64(r.ID), Dur: s.eng.Now() - switchBegin})
						serve(d, g)
					})
				})
			})
		})
	}

	// Phase 1: drives whose mounted tape holds requested objects serve
	// them first.
	for _, ms := range mountedServices {
		busy[ms.d] = true
	}
	// Phase 2: eligible idle switch drives start switching immediately.
	// Eligible = not pinned, not serving this request. Victims in
	// least-popular-mounted-tape order (empty drives first).
	for lib := range s.libs {
		if len(pending[lib]) == 0 {
			continue
		}
		var eligible []*drive
		for _, d := range s.libs[lib].drives {
			if d.pinned || d.failed || busy[d] {
				continue
			}
			eligible = append(eligible, d)
		}
		sort.Slice(eligible, func(i, j int) bool {
			return s.victimLess(eligible[i], eligible[j])
		})
		for _, d := range eligible {
			g, ok := takePending(lib)
			if !ok {
				break
			}
			busy[d] = true
			startSwitch(d, g)
		}
		if len(pending[lib]) > 0 {
			// Remaining groups wait for serving drives to free up; require
			// at least one unpinned drive in this library to guarantee
			// progress.
			hasSwitcher := false
			for _, d := range s.libs[lib].drives {
				if !d.pinned && !d.failed {
					hasSwitcher = true
					break
				}
			}
			if !hasSwitcher {
				return RequestMetrics{}, fmt.Errorf(
					"tapesys: library %d has offline requested tapes but no switchable drive", lib)
			}
		}
	}
	// Kick off mounted services after switch dispatch so busy[] was
	// complete; simulated start time is identical (same instant).
	for _, ms := range mountedServices {
		serve(ms.d, ms.g)
	}

	done := false
	latch.Wait(func() { done = true })
	s.eng.Run()
	if !done {
		return RequestMetrics{}, fmt.Errorf("tapesys: request %d did not complete (%d groups outstanding)",
			r.ID, latch.Remaining())
	}

	// §6 metrics: response from the last-finishing drive.
	met.Response = s.eng.Now() - t0
	s.emit(trace.Event{Kind: trace.KindComplete, Lib: -1, Drive: -1, Tape: -1,
		Req: int64(r.ID), Bytes: met.Bytes, Dur: met.Response})
	var last *driveAcct
	for _, a := range acct {
		met.SumSeek += a.seek
		met.SumTransfer += a.xfer
		if a.moved > 0 {
			met.DrivesUsed++
		}
		if last == nil || a.finish > last.finish {
			last = a
		}
	}
	if last != nil {
		met.Seek = last.seek
		met.Transfer = last.xfer
		met.Switch = met.Response - met.Seek - met.Transfer
		if met.Switch < 0 {
			met.Switch = 0
		}
	}
	met.RobotWait = s.robotWaitTotal() - robotWait0
	s.totalBytes += met.Bytes
	return met, nil
}

// mountedProb returns the accumulated probability of the drive's mounted
// tape (−1 for an empty drive, so empty drives are preferred victims).
func (s *System) mountedProb(d *drive) float64 {
	if d.mounted < 0 {
		return -1
	}
	return s.prob[tape.Key{Library: d.lib, Index: d.mounted}]
}

func (s *System) robotWaitTotal() float64 {
	total := 0.0
	for _, l := range s.libs {
		total += l.robot.Stats().WaitTotal
	}
	return total
}

// Now returns the current simulated time.
func (s *System) Now() float64 { return s.eng.Now() }

// TotalSwitches returns the switch count over the system's lifetime.
func (s *System) TotalSwitches() int { return s.totalSwitches }

// MountedTapes returns, per library, the sorted tape indices currently
// mounted (diagnostic).
func (s *System) MountedTapes() [][]int {
	out := make([][]int, len(s.libs))
	for i, l := range s.libs {
		for ti := range l.byTape {
			out[i] = append(out[i], ti)
		}
		sort.Ints(out[i])
	}
	return out
}
