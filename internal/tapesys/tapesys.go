// Package tapesys is the multiple-tape-library simulator of §6: n libraries
// each with d drives and one robot arm, executing retrieval requests
// against a placement produced by internal/placement.
//
// The simulator follows the paper's stated mechanics:
//
//   - requests are submitted one at a time with no queueing; mount state and
//     head positions persist between requests;
//   - requested objects on mounted tapes are served before those tapes can
//     be unmounted; switch drives whose mounted tape holds no requested
//     object begin switching to pending offline tapes immediately;
//   - a tape switch is rewind → unload → robot store + fetch (robots are
//     per-library and FIFO) → load + thread; the freshly loaded tape starts
//     with its head at BOT;
//   - reads within one tape follow the seek-optimal order for a linear
//     medium (tape.PlanReads);
//   - the request response time is the latest drive finish time; the
//     request's seek and transfer times are those of that last-finishing
//     drive, and switch time is the remainder (§6 "Metrics").
//
// Victim selection among switchable drives uses the least-popular
// replacement policy of [11]: the eligible drive holding the least
// accumulated probability switches first.
//
// # Observability
//
// The simulator is fully instrumented: attach a trace.Recorder with
// System.SetRecorder (or EnableTrace for an in-memory buffer) and every
// stage of every request — submission, per-drive seek/transfer spans, the
// rewind → robot → load → mounted switch pipeline, robot queue
// contention, and completion — is emitted as a typed event with library,
// drive, tape, and request IDs. The schema is defined in internal/trace
// and documented in docs/OBSERVABILITY.md; per-component timelines and
// run reports are built from the stream by internal/metrics. With no
// recorder attached tracing costs nothing on the hot path. Aggregate
// per-drive and per-robot accounting (DriveReport, RobotReport,
// WriteUtilization) is always on, trace or not.
//
// # Allocation model
//
// Submit is the simulator's hot path — a full experiment sweep issues
// hundreds of thousands of requests — so all of its per-request state is
// scratch owned by the System and reused across submissions (see
// docs/PERFORMANCE.md): request grouping runs through a catalog.Grouper
// arena, read planning through a tape.Planner, per-drive accounting is a
// dense slice, pending queues and victim rankings reuse their backing
// arrays, and the serve/switch continuations are pooled objects whose
// closures are created once. In steady state (no recorder, scratch grown
// to the workload's high-water mark) Submit performs no heap allocations.
package tapesys

import (
	"fmt"
	"slices"

	"paralleltape/internal/catalog"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/sim"
	"paralleltape/internal/tape"
	"paralleltape/internal/trace"
)

// drive is the persistent state of one tape drive.
type drive struct {
	lib     int
	idx     int
	gidx    int   // global drive index (dense accounting key)
	mounted int   // library-local tape index, -1 when empty
	headPos int64 // byte offset of the head on the mounted tape
	pinned  bool
	failed  bool

	// claimed marks the drive as occupied by the request currently being
	// dispatched (serving or switching); valid only during Submit's
	// synchronous dispatch phase.
	claimed bool

	// lifetime accounting
	busySeconds   float64
	switchSeconds float64
	bytesMoved    int64
	mounts        int
}

// library is the persistent state of one tape library.
type library struct {
	idx    int
	robot  *sim.Resource
	drives []*drive
	// byTape maps a mounted tape index to the drive holding it.
	byTape map[int]*drive
}

// mountedService pairs a drive with the request group its mounted tape
// already holds.
type mountedService struct {
	d *drive
	g catalog.TapeGroup
}

// System is a simulated parallel tape storage system. Create with New or
// NewWithOptions, then Submit requests; state persists across submissions.
type System struct {
	hw   tape.Hardware
	cat  *catalog.Catalog
	prob map[tape.Key]float64
	eng  *sim.Engine
	libs []*library
	opts Options
	rec  trace.Recorder

	totalSwitches int
	totalBytes    int64
	totalBusy     float64

	// Reusable per-request scratch (see the package comment's allocation
	// model). Submit runs one request to completion before returning and
	// the engine is single-threaded, so exactly one request is in flight
	// and its transient state can live on the System.
	grouper    *catalog.Grouper
	planner    tape.Planner
	latch      *sim.Latch
	latchFn    func()
	reqDone    bool
	curReq     int64
	curMet     RequestMetrics
	acct       []driveAcct           // dense, indexed by drive.gidx
	pending    [][]catalog.TapeGroup // per-library offline-group queues
	pendHead   []int                 // consumption cursor per library
	mountedSvc []mountedService
	eligible   []*drive
	victimCmp  func(a, b *drive) int
	servePool  []*serveOp
	switchPool []*switchOp
}

// New builds a system in the placement's initial state with the paper's
// default scheduling (largest-pending-first, least-popular victims).
func New(hw tape.Hardware, pl *placement.Result) (*System, error) {
	return NewWithOptions(hw, pl, Options{})
}

// NewWithOptions builds a system with explicit scheduling options.
func NewWithOptions(hw tape.Hardware, pl *placement.Result, opts Options) (*System, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := validatePlacementShape(hw, pl); err != nil {
		return nil, err
	}
	s := &System{
		hw:   hw,
		eng:  sim.NewEngine(),
		opts: opts,
	}
	for lib := 0; lib < hw.Libraries; lib++ {
		l := &library{
			idx:    lib,
			robot:  sim.NewResource(s.eng, fmt.Sprintf("robot-%d", lib)),
			byTape: make(map[int]*drive),
		}
		for d := 0; d < hw.DrivesPerLib; d++ {
			dr := &drive{lib: lib, idx: d, gidx: lib*hw.DrivesPerLib + d, mounted: -1}
			l.drives = append(l.drives, dr)
		}
		s.libs = append(s.libs, l)
	}
	s.acct = make([]driveAcct, hw.Libraries*hw.DrivesPerLib)
	s.pending = make([][]catalog.TapeGroup, hw.Libraries)
	s.pendHead = make([]int, hw.Libraries)
	s.latch = sim.NewLatch(0).Observe(s.eng, "request")
	s.latchFn = func() { s.reqDone = true }
	// victimLess is a total order (ties break on the unique drive index),
	// so the unstable sort ranks victims deterministically. The comparator
	// is created once so the per-request sort allocates nothing.
	s.victimCmp = func(a, b *drive) int {
		if s.victimLess(a, b) {
			return -1
		}
		if s.victimLess(b, a) {
			return 1
		}
		return 0
	}
	if err := s.applyPlacement(pl); err != nil {
		return nil, err
	}
	return s, nil
}

// validatePlacementShape checks a placement against the hardware geometry.
func validatePlacementShape(hw tape.Hardware, pl *placement.Result) error {
	if pl == nil || pl.Catalog == nil {
		return fmt.Errorf("tapesys: nil placement")
	}
	if len(pl.InitialMounts) != hw.Libraries {
		return fmt.Errorf("tapesys: placement has %d libraries, hardware %d",
			len(pl.InitialMounts), hw.Libraries)
	}
	for lib := 0; lib < hw.Libraries; lib++ {
		if len(pl.InitialMounts[lib]) != hw.DrivesPerLib || len(pl.Pinned[lib]) != hw.DrivesPerLib {
			return fmt.Errorf("tapesys: library %d mount table sized %d/%d, want %d",
				lib, len(pl.InitialMounts[lib]), len(pl.Pinned[lib]), hw.DrivesPerLib)
		}
	}
	return nil
}

// applyPlacement points the system at a placement and installs its initial
// mount state. Drive lifetime accounting is zeroed.
func (s *System) applyPlacement(pl *placement.Result) error {
	s.cat = pl.Catalog
	s.prob = pl.TapeProb
	s.grouper = catalog.NewGrouper(pl.Catalog)
	for lib, l := range s.libs {
		clear(l.byTape)
		for d, dr := range l.drives {
			*dr = drive{lib: lib, idx: d, gidx: dr.gidx,
				mounted: pl.InitialMounts[lib][d], pinned: pl.Pinned[lib][d]}
			if dr.mounted >= 0 {
				if _, dup := l.byTape[dr.mounted]; dup {
					return fmt.Errorf("tapesys: library %d tape %d mounted twice", lib, dr.mounted)
				}
				l.byTape[dr.mounted] = dr
			}
		}
	}
	return nil
}

// Reset restores the system to placement pl's initial state — fresh clock,
// empty event queue, initial mounts, zeroed accounting — while reusing all
// engine and scratch allocations (event heap, grouping arena, operation
// pools). The recorder attachment survives. It is the cheap way to run a
// sequence of independent simulations (e.g. one per seed) on identical
// hardware: only the placement may change, and its shape must match the
// system's hardware.
func (s *System) Reset(pl *placement.Result) error {
	if err := validatePlacementShape(s.hw, pl); err != nil {
		return err
	}
	s.eng.Reset()
	for _, l := range s.libs {
		l.robot.Reset()
	}
	s.totalSwitches = 0
	s.totalBytes = 0
	s.totalBusy = 0
	return s.applyPlacement(pl)
}

// RequestMetrics is the per-request measurement set of §6.
type RequestMetrics struct {
	Request  model.RequestID
	Bytes    int64
	Response float64 // seconds from submission to last transfer completion
	Seek     float64 // seek time of the last-finishing drive
	Transfer float64 // transfer time of the last-finishing drive
	Switch   float64 // Response − Seek − Transfer (includes robot waits)
	// Diagnostics beyond the paper's metrics:
	Switches     int     // tape switches performed for this request
	TapesTouched int     // distinct cartridges read
	DrivesUsed   int     // distinct drives that transferred data
	RobotWait    float64 // summed time switches spent queued for robots
	SumSeek      float64 // seek time summed over all drives
	SumTransfer  float64 // transfer time summed over all drives
	MountedRatio float64 // fraction of bytes served from already-mounted tapes
}

// Bandwidth returns the request's effective data retrieval bandwidth in
// bytes/second (§3: transferred size over response time).
func (m RequestMetrics) Bandwidth() float64 {
	if m.Response <= 0 {
		return 0
	}
	return float64(m.Bytes) / m.Response
}

// driveAcct accumulates one drive's work during a single request.
type driveAcct struct {
	seek, xfer float64
	finish     float64
	moved      int64
	used       bool
}

// serveOp is the pooled continuation of one tape service: it carries the
// drive, group, and plan from schedule time to completion time, and its fn
// closure is created once per pool entry so scheduling a service performs
// no allocation.
type serveOp struct {
	s    *System
	d    *drive
	g    catalog.TapeGroup
	plan tape.ReadPlan
	fn   func()
}

func (s *System) getServeOp() *serveOp {
	if n := len(s.servePool); n > 0 {
		op := s.servePool[n-1]
		s.servePool[n-1] = nil
		s.servePool = s.servePool[:n-1]
		return op
	}
	op := &serveOp{s: s}
	op.fn = op.finish
	return op
}

func (s *System) putServeOp(op *serveOp) {
	op.d = nil
	op.g = catalog.TapeGroup{}
	op.plan = tape.ReadPlan{}
	s.servePool = append(s.servePool, op)
}

// finish is the service-completion event: account the seek/transfer work,
// free the drive, and let it pick up pending switch work.
func (op *serveOp) finish() {
	s, d, g, plan := op.s, op.d, op.g, op.plan
	s.putServeOp(op)
	d.headPos = plan.EndPos
	a := &s.acct[d.gidx]
	a.used = true
	a.seek += plan.SeekTotal
	a.xfer += plan.XferTotal
	a.moved += g.Bytes
	a.finish = s.eng.Now()
	s.totalBusy += plan.SeekTotal + plan.XferTotal
	d.busySeconds += plan.SeekTotal + plan.XferTotal
	d.bytesMoved += g.Bytes
	s.emit(trace.Event{Kind: trace.KindServeEnd, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
		Req: s.curReq, Bytes: g.Bytes, Dur: plan.SeekTotal + plan.XferTotal})
	s.latch.Done()
	s.afterService(d)
}

// switchOp is the pooled continuation chain of one tape switch. Its four
// stage closures (rewind done → robot granted → move done → load done) are
// created once per pool entry; the op carries the drive/group state across
// the stages.
type switchOp struct {
	s           *System
	d           *drive
	l           *library
	g           catalog.TapeGroup
	switchBegin float64
	hadTape     bool
	grant       *sim.Grant

	afterPrepFn func()
	onGrantFn   func(*sim.Grant)
	afterMoveFn func()
	afterLoadFn func()
}

func (s *System) getSwitchOp() *switchOp {
	if n := len(s.switchPool); n > 0 {
		op := s.switchPool[n-1]
		s.switchPool[n-1] = nil
		s.switchPool = s.switchPool[:n-1]
		return op
	}
	op := &switchOp{s: s}
	op.afterPrepFn = op.afterPrep
	op.onGrantFn = op.onGrant
	op.afterMoveFn = op.afterMove
	op.afterLoadFn = op.afterLoad
	return op
}

func (s *System) putSwitchOp(op *switchOp) {
	op.d = nil
	op.l = nil
	op.g = catalog.TapeGroup{}
	op.grant = nil
	s.switchPool = append(s.switchPool, op)
}

// afterPrep runs once the outgoing cartridge has rewound and unloaded (or
// immediately for an empty drive): the cartridge has left the drive, so
// queue for the robot.
func (op *switchOp) afterPrep() {
	d, l := op.d, op.l
	op.hadTape = d.mounted >= 0
	if op.hadTape {
		delete(l.byTape, d.mounted)
		d.mounted = -1
	}
	l.robot.Acquire(op.onGrantFn)
}

// onGrant runs holding the robot: perform the cell moves.
func (op *switchOp) onGrant(grant *sim.Grant) {
	s, d := op.s, op.d
	op.grant = grant
	move := s.hw.CellToDrive // fetch the target cartridge
	if op.hadTape {
		move += s.hw.CellToDrive // first stow the old one
	}
	s.emit(trace.Event{Kind: trace.KindRobot, Lib: d.lib, Drive: d.idx, Tape: op.g.Tape.Index,
		Req: s.curReq, Dur: move})
	s.eng.Schedule(move, op.afterMoveFn)
}

// afterMove runs when the robot finishes: release it and start load+thread.
func (op *switchOp) afterMove() {
	s, d := op.s, op.d
	op.grant.Release()
	s.emit(trace.Event{Kind: trace.KindLoad, Lib: d.lib, Drive: d.idx, Tape: op.g.Tape.Index,
		Req: s.curReq, Dur: s.hw.LoadThread})
	s.eng.Schedule(s.hw.LoadThread, op.afterLoadFn)
}

// afterLoad completes the mount and serves the group.
func (op *switchOp) afterLoad() {
	s, d, l, g := op.s, op.d, op.l, op.g
	switchBegin := op.switchBegin
	s.putSwitchOp(op)
	d.mounted = g.Tape.Index
	d.headPos = 0
	d.mounts++
	d.switchSeconds += s.eng.Now() - switchBegin
	l.byTape[g.Tape.Index] = d
	s.emit(trace.Event{Kind: trace.KindMounted, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
		Req: s.curReq, Dur: s.eng.Now() - switchBegin})
	s.serve(d, g)
}

// serve schedules the seek+transfer span for group g on drive d.
func (s *System) serve(d *drive, g catalog.TapeGroup) {
	op := s.getServeOp()
	op.d = d
	op.g = g
	op.plan = s.planner.Plan(s.hw, d.headPos, g.Extents)
	if s.rec != nil {
		s.emit(trace.Event{Kind: trace.KindServeStart, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
			Req: s.curReq, Bytes: g.Bytes})
		s.emit(trace.Event{Kind: trace.KindSeek, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
			Req: s.curReq, Dur: op.plan.SeekTotal})
		s.emit(trace.Event{Kind: trace.KindTransfer, Lib: d.lib, Drive: d.idx, Tape: g.Tape.Index,
			Req: s.curReq, Bytes: g.Bytes, Dur: op.plan.XferTotal})
	}
	s.eng.Schedule(op.plan.SeekTotal+op.plan.XferTotal, op.fn)
}

// startSwitch begins the rewind → robot → load pipeline moving drive d to
// the cartridge of group g.
func (s *System) startSwitch(d *drive, g catalog.TapeGroup) {
	s.curMet.Switches++
	s.totalSwitches++
	op := s.getSwitchOp()
	op.d = d
	op.l = s.libs[d.lib]
	op.g = g
	op.switchBegin = s.eng.Now()
	prep := 0.0
	if d.mounted >= 0 {
		prep = s.hw.RewindTime(d.headPos) + s.hw.Unload
		s.emit(trace.Event{Kind: trace.KindRewind, Lib: d.lib, Drive: d.idx, Tape: d.mounted,
			Req: s.curReq, Dur: prep})
	}
	s.eng.Schedule(prep, op.afterPrepFn)
}

// takePending pops the next offline group for a library.
func (s *System) takePending(lib int) (catalog.TapeGroup, bool) {
	if s.pendHead[lib] >= len(s.pending[lib]) {
		return catalog.TapeGroup{}, false
	}
	g := s.pending[lib][s.pendHead[lib]]
	s.pendHead[lib]++
	return g, true
}

// afterService decides a drive's next move once it finishes a tape.
func (s *System) afterService(d *drive) {
	if d.pinned {
		return
	}
	if g, ok := s.takePending(d.lib); ok {
		s.startSwitch(d, g)
	}
}

// Submit executes one request to completion and returns its metrics. The
// engine runs until the system is idle again (the paper's zero-queueing
// assumption). All transient state lives in System-owned scratch; see the
// package comment's allocation model.
func (s *System) Submit(r *model.Request) (RequestMetrics, error) {
	groups, err := s.grouper.Group(r)
	if err != nil {
		return RequestMetrics{}, err
	}
	t0 := s.eng.Now()
	s.curReq = int64(r.ID)
	s.curMet = RequestMetrics{Request: r.ID, TapesTouched: len(groups)}
	met := &s.curMet
	s.emit(trace.Event{Kind: trace.KindSubmit, Lib: -1, Drive: -1, Tape: -1, Req: s.curReq})

	for i := range s.acct {
		s.acct[i] = driveAcct{}
	}
	robotWait0 := s.robotWaitTotal()

	s.latch.Reset(len(groups))

	// Per-library pending queues of offline tape groups, largest first so
	// long transfers start earliest (LPT ordering keeps the makespan low).
	for lib := range s.pending {
		s.pending[lib] = s.pending[lib][:0]
		s.pendHead[lib] = 0
	}
	var mountedBytes int64
	mounted := s.mountedSvc[:0]
	for _, g := range groups {
		met.Bytes += g.Bytes
		l := s.libs[g.Tape.Library]
		if d, ok := l.byTape[g.Tape.Index]; ok {
			mounted = append(mounted, mountedService{d: d, g: g})
			mountedBytes += g.Bytes
		} else {
			s.pending[g.Tape.Library] = append(s.pending[g.Tape.Library], g)
		}
	}
	s.mountedSvc = mounted
	for lib := range s.pending {
		sortPending(s.pending[lib], s.opts.Pending)
	}
	if met.Bytes > 0 {
		met.MountedRatio = float64(mountedBytes) / float64(met.Bytes)
	}

	// Phase 1: drives whose mounted tape holds requested objects are
	// claimed by this request first.
	for _, l := range s.libs {
		for _, d := range l.drives {
			d.claimed = false
		}
	}
	for _, ms := range mounted {
		ms.d.claimed = true
	}
	// Phase 2: eligible idle switch drives start switching immediately.
	// Eligible = not pinned, not serving this request. Victims in
	// least-popular-mounted-tape order (empty drives first).
	for lib := range s.libs {
		if len(s.pending[lib]) == 0 {
			continue
		}
		eligible := s.eligible[:0]
		for _, d := range s.libs[lib].drives {
			if d.pinned || d.failed || d.claimed {
				continue
			}
			eligible = append(eligible, d)
		}
		s.eligible = eligible
		slices.SortFunc(eligible, s.victimCmp)
		for _, d := range eligible {
			g, ok := s.takePending(lib)
			if !ok {
				break
			}
			d.claimed = true
			s.startSwitch(d, g)
		}
		if s.pendHead[lib] < len(s.pending[lib]) {
			// Remaining groups wait for serving drives to free up; require
			// at least one unpinned drive in this library to guarantee
			// progress.
			hasSwitcher := false
			for _, d := range s.libs[lib].drives {
				if !d.pinned && !d.failed {
					hasSwitcher = true
					break
				}
			}
			if !hasSwitcher {
				return RequestMetrics{}, fmt.Errorf(
					"tapesys: library %d has offline requested tapes but no switchable drive", lib)
			}
		}
	}
	// Kick off mounted services after switch dispatch so the claimed marks
	// were complete; simulated start time is identical (same instant).
	for _, ms := range mounted {
		s.serve(ms.d, ms.g)
	}

	s.reqDone = false
	s.latch.Wait(s.latchFn)
	s.eng.Run()
	if !s.reqDone {
		return RequestMetrics{}, fmt.Errorf("tapesys: request %d did not complete (%d groups outstanding)",
			r.ID, s.latch.Remaining())
	}

	// §6 metrics: response from the last-finishing drive.
	met.Response = s.eng.Now() - t0
	s.emit(trace.Event{Kind: trace.KindComplete, Lib: -1, Drive: -1, Tape: -1,
		Req: s.curReq, Bytes: met.Bytes, Dur: met.Response})
	var last *driveAcct
	for i := range s.acct {
		a := &s.acct[i]
		if !a.used {
			continue
		}
		met.SumSeek += a.seek
		met.SumTransfer += a.xfer
		if a.moved > 0 {
			met.DrivesUsed++
		}
		if last == nil || a.finish > last.finish {
			last = a
		}
	}
	if last != nil {
		met.Seek = last.seek
		met.Transfer = last.xfer
		met.Switch = met.Response - met.Seek - met.Transfer
		if met.Switch < 0 {
			met.Switch = 0
		}
	}
	met.RobotWait = s.robotWaitTotal() - robotWait0
	s.totalBytes += met.Bytes
	return s.curMet, nil
}

// mountedProb returns the accumulated probability of the drive's mounted
// tape (−1 for an empty drive, so empty drives are preferred victims).
func (s *System) mountedProb(d *drive) float64 {
	if d.mounted < 0 {
		return -1
	}
	return s.prob[tape.Key{Library: d.lib, Index: d.mounted}]
}

func (s *System) robotWaitTotal() float64 {
	total := 0.0
	for _, l := range s.libs {
		total += l.robot.Stats().WaitTotal
	}
	return total
}

// Now returns the current simulated time.
func (s *System) Now() float64 { return s.eng.Now() }

// TotalSwitches returns the switch count over the system's lifetime.
func (s *System) TotalSwitches() int { return s.totalSwitches }

// MountedTapes returns, per library, the sorted tape indices currently
// mounted (diagnostic).
func (s *System) MountedTapes() [][]int {
	out := make([][]int, len(s.libs))
	for i, l := range s.libs {
		for ti := range l.byTape {
			out[i] = append(out[i], ti)
		}
		slices.Sort(out[i])
	}
	return out
}
