package tapesys

import (
	"fmt"
	"math"
	"slices"

	"paralleltape/internal/faults"
)

// PendingOrder selects how a library's queue of offline requested tapes is
// ordered before switch drives pull from it.
type PendingOrder int

const (
	// LargestFirst serves the tape with the most requested bytes first
	// (LPT — starts the longest transfers earliest, minimizing makespan;
	// the default and the behavior assumed throughout the paper
	// reproduction).
	LargestFirst PendingOrder = iota
	// SmallestFirst serves the tape with the fewest requested bytes first
	// (SPT — drains the queue fastest but can strand the big transfer at
	// the end).
	SmallestFirst
	// SlotOrder serves tapes by their library slot index (a FIFO-like
	// policy with no size awareness).
	SlotOrder
)

func (p PendingOrder) String() string {
	switch p {
	case LargestFirst:
		return "largest-first"
	case SmallestFirst:
		return "smallest-first"
	case SlotOrder:
		return "slot-order"
	default:
		return fmt.Sprintf("PendingOrder(%d)", int(p))
	}
}

// VictimPolicy selects which switchable drive gives up its tape when an
// offline tape must be mounted.
type VictimPolicy int

const (
	// LeastPopular evicts the mounted tape with the least accumulated
	// probability — the policy [11] proves minimizes switch count and the
	// paper's default.
	LeastPopular VictimPolicy = iota
	// MostPopular evicts the hottest mounted tape first (the adversarial
	// policy, for ablation).
	MostPopular
	// DriveOrder ignores popularity and evicts by drive index.
	DriveOrder
)

func (p VictimPolicy) String() string {
	switch p {
	case LeastPopular:
		return "least-popular"
	case MostPopular:
		return "most-popular"
	case DriveOrder:
		return "drive-order"
	default:
		return fmt.Sprintf("VictimPolicy(%d)", int(p))
	}
}

// DefaultMaxRetries is the retry bound applied when Options.MaxRetries is
// left at zero: an interrupted tape-group operation is re-dispatched at
// most this many times before the group is abandoned.
const DefaultMaxRetries = 3

// Options tunes simulator scheduling and execution. The zero value is the
// paper's behavior on a single engine.
type Options struct {
	// Pending selects how each library's queue of offline requested
	// tapes is ordered before switch drives pull from it.
	Pending PendingOrder
	// Victim selects which switchable drive gives up its tape when an
	// offline tape must be mounted.
	Victim VictimPolicy

	// Shards partitions the system's libraries into this many engine
	// shards whose event loops run on separate goroutines within each
	// Submit (see the package comment's sharded-execution section). 0 and
	// 1 both select the single-engine path, which runs entirely on the
	// calling goroutine with no synchronization; values above the library
	// count are clamped. Results are byte-identical for every value.
	Shards int

	// Faults attaches a fault-injection profile (stochastic MTBF/repair
	// timelines, scripted outages, media errors — see internal/faults and
	// docs/RESILIENCE.md). Nil, or a profile that enables nothing, runs
	// failure-free with zero overhead on the hot path.
	Faults *faults.Profile
	// RequestTimeout caps each request's client-observed response time in
	// simulated seconds: a request still running at submission+timeout is
	// reported TimedOut with Response = RequestTimeout and BytesServed
	// counting only the payload delivered by the deadline (in-flight
	// mechanical work still completes and advances the clock). 0 disables
	// timeouts.
	RequestTimeout float64
	// MaxRetries bounds how many times one tape group's operation is
	// re-dispatched after a fault interrupts it; past the bound the group
	// is abandoned and accounted in FailedGroups/FailedBytes. 0 selects
	// DefaultMaxRetries.
	MaxRetries int
	// RetryBackoff delays each re-dispatch of an interrupted group by
	// this many simulated seconds (0 retries immediately).
	RetryBackoff float64
}

// Validate checks option sanity.
func (o Options) Validate() error {
	switch o.Pending {
	case LargestFirst, SmallestFirst, SlotOrder:
	default:
		return fmt.Errorf("tapesys: unknown pending order %d", int(o.Pending))
	}
	switch o.Victim {
	case LeastPopular, MostPopular, DriveOrder:
	default:
		return fmt.Errorf("tapesys: unknown victim policy %d", int(o.Victim))
	}
	if o.Shards < 0 {
		return fmt.Errorf("tapesys: negative shard count %d", o.Shards)
	}
	if o.RequestTimeout < 0 || math.IsNaN(o.RequestTimeout) {
		return fmt.Errorf("tapesys: negative request timeout %v", o.RequestTimeout)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("tapesys: negative retry bound %d", o.MaxRetries)
	}
	if o.RetryBackoff < 0 || math.IsNaN(o.RetryBackoff) {
		return fmt.Errorf("tapesys: negative retry backoff %v", o.RetryBackoff)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// sortPending orders one library's offline tape groups per the policy.
// Every comparator is a total order (byte ties break on the unique slot
// index), so the unstable slices.SortFunc — which, unlike sort.Slice,
// allocates nothing — yields the same deterministic order.
func sortPending(p []pendingGroup, order PendingOrder) {
	switch order {
	case SmallestFirst:
		slices.SortFunc(p, func(a, b pendingGroup) int {
			if a.g.Bytes != b.g.Bytes {
				if a.g.Bytes < b.g.Bytes {
					return -1
				}
				return 1
			}
			return a.g.Tape.Index - b.g.Tape.Index
		})
	case SlotOrder:
		slices.SortFunc(p, func(a, b pendingGroup) int {
			return a.g.Tape.Index - b.g.Tape.Index
		})
	default: // LargestFirst
		slices.SortFunc(p, func(a, b pendingGroup) int {
			if a.g.Bytes != b.g.Bytes {
				if a.g.Bytes > b.g.Bytes {
					return -1
				}
				return 1
			}
			return a.g.Tape.Index - b.g.Tape.Index
		})
	}
}

// victimLess ranks eligible drives: true means a should switch before b.
func (s *System) victimLess(a, b *drive) bool {
	switch s.opts.Victim {
	case MostPopular:
		pa, pb := s.mountedProb(a), s.mountedProb(b)
		// Empty drives (prob −1) still go first: using them costs nothing.
		aEmpty, bEmpty := a.mounted < 0, b.mounted < 0
		if aEmpty != bEmpty {
			return aEmpty
		}
		if pa != pb {
			return pa > pb
		}
		return a.idx < b.idx
	case DriveOrder:
		return a.idx < b.idx
	default: // LeastPopular
		pa, pb := s.mountedProb(a), s.mountedProb(b)
		if pa != pb {
			return pa < pb
		}
		return a.idx < b.idx
	}
}
