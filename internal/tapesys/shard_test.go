package tapesys

import (
	"reflect"
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/trace"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// shardTestWorkload builds a 4-library workload exercising mounted hits,
// switches, and robot contention across all libraries.
func shardTestWorkload(t *testing.T) (tape.Hardware, *model.Workload) {
	t.Helper()
	hw := tape.DefaultHardware()
	hw.Libraries = 4
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 10
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  500,
		NumRequests: 40,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  8 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   6,
		MaxReqLen:   18,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return hw, w
}

// shardedRun replays the same request sequence on a system with the given
// shard count and returns everything observable: per-request metrics and
// the final lifetime reports.
type shardedRunResult struct {
	metrics  []RequestMetrics
	drives   []DriveStats
	robots   []RobotStats
	switches int
	now      float64
}

func shardedRun(t *testing.T, hw tape.Hardware, w *model.Workload, shards int) shardedRunResult {
	t.Helper()
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(hw, pr, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewRequestStream(w, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var res shardedRunResult
	for i := 0; i < 60; i++ {
		m, err := s.Submit(stream.Next())
		if err != nil {
			t.Fatalf("shards=%d request %d: %v", shards, i, err)
		}
		res.metrics = append(res.metrics, m)
	}
	res.drives = s.DriveReport()
	res.robots = s.RobotReport()
	res.switches = s.TotalSwitches()
	res.now = s.Now()
	return res
}

// TestShardedEquivalence is the simulator-level half of the determinism
// contract: every per-request metric (all floating-point fields bit-exact,
// not approximately equal) and every lifetime report must be identical for
// any shard count, because the reduction order is fixed regardless of how
// the event loops were scheduled.
func TestShardedEquivalence(t *testing.T) {
	hw, w := shardTestWorkload(t)
	base := shardedRun(t, hw, w, 0)
	for _, shards := range []int{1, 2, 3, 4, 8} {
		got := shardedRun(t, hw, w, shards)
		for i := range base.metrics {
			if got.metrics[i] != base.metrics[i] {
				t.Fatalf("shards=%d request %d metrics diverge:\n  base %+v\n  got  %+v",
					shards, i, base.metrics[i], got.metrics[i])
			}
		}
		if !reflect.DeepEqual(got.drives, base.drives) {
			t.Fatalf("shards=%d drive report diverges", shards)
		}
		if !reflect.DeepEqual(got.robots, base.robots) {
			t.Fatalf("shards=%d robot report diverges", shards)
		}
		if got.switches != base.switches {
			t.Fatalf("shards=%d total switches %d, want %d", shards, got.switches, base.switches)
		}
		if got.now != base.now {
			t.Fatalf("shards=%d clock %v, want %v", shards, got.now, base.now)
		}
	}
}

// TestShardedReset verifies Reset restores a sharded system exactly: two
// passes over the same stream on one system produce identical metrics.
func TestShardedReset(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(hw, pr, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	pass := func() []RequestMetrics {
		stream, err := workload.NewRequestStream(w, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		var out []RequestMetrics
		for i := 0; i < 30; i++ {
			m, err := s.Submit(stream.Next())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
		return out
	}
	first := pass()
	if err := s.Reset(pr); err != nil {
		t.Fatal(err)
	}
	second := pass()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d metrics differ after Reset:\n  %+v\n  %+v", i, first[i], second[i])
		}
	}
}

// TestShardClamp checks the shard-count clamping and accessor: 0 and 1 are
// the single-engine path, values above the library count clamp to it.
func TestShardClamp(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ opt, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 4}, {99, hw.Libraries},
	} {
		s, err := NewWithOptions(hw, pr, Options{Shards: tc.opt})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Shards(); got != tc.want {
			t.Errorf("Shards option %d: got %d shards, want %d", tc.opt, got, tc.want)
		}
	}
	if _, err := NewWithOptions(hw, pr, Options{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestShardedTraceCounts runs a traced sharded simulation and checks the
// stream carries exactly the events of the single-engine run, by kind —
// cross-shard interleaving is scheduling-dependent, but the multiset of
// events per (kind, lib, drive) must match.
func TestShardedTraceCounts(t *testing.T) {
	hw, w := shardTestWorkload(t)
	pb := placement.ParallelBatch{M: 2}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) map[trace.Kind]int {
		s, err := NewWithOptions(hw, pr, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		buf := s.EnableTrace(0)
		stream, err := workload.NewRequestStream(w, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			if _, err := s.Submit(stream.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return trace.CountByKind(buf.Events)
	}
	single := run(1)
	sharded := run(4)
	// A zero-work shard still opens its latch, so latch-open counts grow
	// with the shard count; every simulation-bearing kind must match.
	delete(single, trace.KindLatchOpen)
	delete(sharded, trace.KindLatchOpen)
	if !reflect.DeepEqual(single, sharded) {
		t.Fatalf("event counts diverge:\n  shards=1 %v\n  shards=4 %v", single, sharded)
	}
}
