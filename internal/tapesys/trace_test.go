package tapesys

import (
	"bytes"
	"strings"
	"testing"

	"paralleltape/internal/tape"
	"paralleltape/internal/trace"
)

func TestTraceRecordsLifecycle(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.EnableTrace(0)
	if _, err := s.Submit(req(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	kinds := trace.CountByKind(tr.Events)
	if kinds[trace.KindSubmit] != 1 || kinds[trace.KindComplete] != 1 {
		t.Errorf("submit/complete counts: %v", kinds)
	}
	if kinds[trace.KindServeStart] != 2 || kinds[trace.KindServeEnd] != 2 {
		t.Errorf("serve counts: %v", kinds)
	}
	if kinds[trace.KindSeek] != 2 || kinds[trace.KindTransfer] != 2 {
		t.Errorf("seek/transfer span counts: %v", kinds)
	}
	// One switch (empty drive): rewind (Dur 0 for the empty drive) +
	// robot + load + mounted — every chain opens with a rewind marker.
	if kinds[trace.KindRobot] != 1 || kinds[trace.KindLoad] != 1 || kinds[trace.KindMounted] != 1 {
		t.Errorf("switch pipeline counts: %v", kinds)
	}
	if kinds[trace.KindRewind] != 1 {
		t.Errorf("rewind events: %v", kinds)
	}
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindRewind && (ev.Dur != 0 || ev.Tape != -1) {
			t.Errorf("empty-drive rewind should carry Dur 0 / Tape -1, got %+v", ev)
		}
	}
	// Sim-level contention events interleave: one robot grant + release,
	// and the request latch opened once.
	if kinds[trace.KindResourceGrant] != 1 || kinds[trace.KindResourceRelease] != 1 {
		t.Errorf("resource event counts: %v", kinds)
	}
	if kinds[trace.KindLatchOpen] != 1 {
		t.Errorf("latch event counts: %v", kinds)
	}
	// Events are time-ordered.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].T < tr.Events[i-1].T {
			t.Fatal("trace not time-ordered")
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, tr.Events); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"submit", "serve-start", "mounted", "complete"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("trace text missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestTraceLimitAndDisable(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}}},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.EnableTrace(2)
	if _, err := s.Submit(req(0, 0)); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Errorf("limited trace has %d events", len(tr.Events))
	}
	s.DisableTrace()
	if _, err := s.Submit(req(0, 0)); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Errorf("disabled trace still grew: %d", len(tr.Events))
	}
}

func TestDriveReportAccounting(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 200}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	report := s.DriveReport()
	if len(report) != 4 {
		t.Fatalf("report rows: %d", len(report))
	}
	var moved int64
	mounts := 0
	for _, d := range report {
		moved += d.BytesMoved
		mounts += d.Mounts
	}
	if moved != 300 {
		t.Errorf("bytes moved = %d, want 300", moved)
	}
	if mounts != 1 {
		t.Errorf("mounts = %d, want 1", mounts)
	}
	// Drive 0 (mounted service): busy 10s transfer, no switch time.
	d0 := report[0]
	if d0.BusySeconds != 10 || d0.SwitchSeconds != 0 {
		t.Errorf("drive 0 accounting: %+v", d0)
	}
	// Drive 1 switched (fetch 2 + load 3 = 5s) then transferred 20s.
	d1 := report[1]
	if d1.SwitchSeconds != 5 || d1.BusySeconds != 20 {
		t.Errorf("drive 1 accounting: %+v", d1)
	}
}

func TestRobotReport(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 2}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		nil, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	robots := s.RobotReport()
	if len(robots) != 2 {
		t.Fatalf("robot rows: %d", len(robots))
	}
	if robots[0].Stats.Acquisitions != 2 {
		t.Errorf("library 0 robot grants = %d, want 2", robots[0].Stats.Acquisitions)
	}
	if robots[0].UtilPercent <= 0 {
		t.Error("library 0 robot shows zero utilization")
	}
	if robots[1].Stats.Acquisitions != 0 {
		t.Errorf("library 1 robot grants = %d, want 0", robots[1].Stats.Acquisitions)
	}
}

func TestWriteUtilization(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}}},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteUtilization(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"simulated time", "L0.D0", "robot"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("utilization missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestFailDriveReroutesService(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: object 0 is served from the mounted tape in 10 s.
	m, err := s.Submit(req(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Switches != 0 {
		t.Fatalf("warmup switched: %+v", m)
	}
	// Fail drive 0: its tape goes back to the cell.
	if err := s.FailDrive(0, 0); err != nil {
		t.Fatal(err)
	}
	if s.FailedDrives() != 1 {
		t.Errorf("FailedDrives = %d", s.FailedDrives())
	}
	// The same request now needs a switch onto the surviving drive.
	m2, err := s.Submit(req(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Switches != 1 {
		t.Errorf("post-failure switches = %d, want 1", m2.Switches)
	}
	report := s.DriveReport()
	if !report[0].Failed {
		t.Error("drive 0 not marked failed")
	}
}

func TestFailDriveAllDrivesErrors(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 3}: {{0, 100}}},
		nil, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 0)); err == nil {
		t.Error("library with no working drives served a request")
	}
}

func TestFailDriveValidation(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}}},
		nil, nil, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(9, 0); err == nil {
		t.Error("bad library accepted")
	}
	if err := s.FailDrive(0, 9); err == nil {
		t.Error("bad drive accepted")
	}
	if err := s.FailDrive(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(0, 0); err == nil {
		t.Error("double failure accepted")
	}
}

func TestFailPinnedDriveUnpins(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0, -1}, {-1, -1}},
		[][]bool{{true, false}, {false, false}}, nil)
	s, err := New(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailDrive(0, 0); err != nil {
		t.Fatal(err)
	}
	// Object 0's tape is now offline; the surviving switch drive must
	// fetch it.
	m, err := s.Submit(req(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Switches != 1 {
		t.Errorf("switches = %d, want 1", m.Switches)
	}
}
