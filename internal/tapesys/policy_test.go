package tapesys

import (
	"testing"

	"paralleltape/internal/catalog"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

func TestPolicyStrings(t *testing.T) {
	if LargestFirst.String() != "largest-first" ||
		SmallestFirst.String() != "smallest-first" ||
		SlotOrder.String() != "slot-order" {
		t.Error("pending order names wrong")
	}
	if PendingOrder(9).String() == "" {
		t.Error("unknown pending order empty")
	}
	if LeastPopular.String() != "least-popular" ||
		MostPopular.String() != "most-popular" ||
		DriveOrder.String() != "drive-order" {
		t.Error("victim policy names wrong")
	}
	if VictimPolicy(9).String() == "" {
		t.Error("unknown victim policy empty")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	if err := (Options{Pending: PendingOrder(9)}).Validate(); err == nil {
		t.Error("bad pending order accepted")
	}
	if err := (Options{Victim: VictimPolicy(9)}).Validate(); err == nil {
		t.Error("bad victim policy accepted")
	}
}

func TestNewWithOptionsRejectsBad(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 1,
		map[tape.Key][]objSpec{{Library: 0, Index: 0}: {{0, 100}}}, nil, nil, nil)
	if _, err := NewWithOptions(hw, pl, Options{Pending: PendingOrder(7)}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestSortPendingOrders(t *testing.T) {
	mk := func() []pendingGroup {
		return []pendingGroup{
			{g: catalog.TapeGroup{Tape: tape.Key{Index: 3}, Bytes: 50}},
			{g: catalog.TapeGroup{Tape: tape.Key{Index: 1}, Bytes: 200}},
			{g: catalog.TapeGroup{Tape: tape.Key{Index: 2}, Bytes: 100}},
		}
	}
	p := mk()
	sortPending(p, LargestFirst)
	if p[0].g.Bytes != 200 || p[2].g.Bytes != 50 {
		t.Errorf("LargestFirst: %+v", p)
	}
	p = mk()
	sortPending(p, SmallestFirst)
	if p[0].g.Bytes != 50 || p[2].g.Bytes != 200 {
		t.Errorf("SmallestFirst: %+v", p)
	}
	p = mk()
	sortPending(p, SlotOrder)
	if p[0].g.Tape.Index != 1 || p[2].g.Tape.Index != 3 {
		t.Errorf("SlotOrder: %+v", p)
	}
}

func TestMostPopularVictim(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 3,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 1}: {{1, 100}},
			{Library: 0, Index: 3}: {{2, 100}},
		},
		[][]int{{0, 1}, {-1, -1}}, nil,
		map[tape.Key]float64{
			{Library: 0, Index: 0}: 0.2,
			{Library: 0, Index: 1}: 0.8, // hottest → evicted under MostPopular
		})
	s, err := NewWithOptions(hw, pl, Options{Victim: MostPopular})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 2)); err != nil {
		t.Fatal(err)
	}
	mounted := s.MountedTapes()
	if len(mounted[0]) != 2 || mounted[0][0] != 0 || mounted[0][1] != 3 {
		t.Errorf("mounted = %v, want [0 3] (tape 1 evicted)", mounted[0])
	}
}

func TestDriveOrderVictim(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 3,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 1}: {{1, 100}},
			{Library: 0, Index: 3}: {{2, 100}},
		},
		[][]int{{0, 1}, {-1, -1}}, nil,
		map[tape.Key]float64{
			{Library: 0, Index: 0}: 0.9, // drive 0, hottest — still evicted first
			{Library: 0, Index: 1}: 0.1,
		})
	s, err := NewWithOptions(hw, pl, Options{Victim: DriveOrder})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 2)); err != nil {
		t.Fatal(err)
	}
	mounted := s.MountedTapes()
	if len(mounted[0]) != 2 || mounted[0][0] != 1 || mounted[0][1] != 3 {
		t.Errorf("mounted = %v, want [1 3] (drive 0 evicted)", mounted[0])
	}
}

func TestMostPopularStillPrefersEmptyDrives(t *testing.T) {
	hw := testHW()
	pl := manualPlacement(t, hw, 2,
		map[tape.Key][]objSpec{
			{Library: 0, Index: 0}: {{0, 100}},
			{Library: 0, Index: 3}: {{1, 100}},
		},
		[][]int{{0, -1}, {-1, -1}}, nil,
		map[tape.Key]float64{{Library: 0, Index: 0}: 0.9})
	s, err := NewWithOptions(hw, pl, Options{Victim: MostPopular})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Tape 0 must still be mounted: the empty drive took the switch.
	mounted := s.MountedTapes()
	if len(mounted[0]) != 2 || mounted[0][0] != 0 {
		t.Errorf("mounted = %v, want tape 0 kept", mounted[0])
	}
}

func TestLargestFirstBeatsSmallestFirstOnParallelDrives(t *testing.T) {
	// Two empty drives, one robot. The robot serializes the two fetches,
	// so the first-queued tape starts transferring ~2 s earlier. Putting
	// the big transfer first (LPT) hides the stagger:
	//   LargestFirst:  big ready at 5 → done 55; small ready 7 → done 17.
	//   SmallestFirst: small ready 5 → done 15; big ready 7 → done 57.
	pl := func() *placement.Result {
		return manualPlacement(t, testHW(), 2,
			map[tape.Key][]objSpec{
				{Library: 0, Index: 2}: {{0, 500}},
				{Library: 0, Index: 3}: {{1, 100}},
			},
			nil, nil, nil)
	}
	lpt, err := New(testHW(), pl())
	if err != nil {
		t.Fatal(err)
	}
	mLPT, err := lpt.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	spt, err := NewWithOptions(testHW(), pl(), Options{Pending: SmallestFirst})
	if err != nil {
		t.Fatal(err)
	}
	mSPT, err := spt.Submit(req(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if mLPT.Response != 55 {
		t.Errorf("LargestFirst response = %v, want 55", mLPT.Response)
	}
	if mSPT.Response != 57 {
		t.Errorf("SmallestFirst response = %v, want 57", mSPT.Response)
	}
}

func TestPolicyMatrixEndToEnd(t *testing.T) {
	// Every policy combination completes a realistic session and the
	// default (LPT + least-popular) is not beaten badly by any variant.
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 20
	hw.Capacity = 100 * units.MB
	p := workload.Params{
		NumObjects:  600,
		NumRequests: 30,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  4 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   10,
		MaxReqLen:   20,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	pb := placement.ParallelBatch{M: 1}
	pr, err := pb.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	responses := map[string]float64{}
	for _, po := range []PendingOrder{LargestFirst, SmallestFirst, SlotOrder} {
		for _, vp := range []VictimPolicy{LeastPopular, MostPopular, DriveOrder} {
			sys, err := NewWithOptions(hw, pr, Options{Pending: po, Victim: vp})
			if err != nil {
				t.Fatal(err)
			}
			stream, err := workload.NewRequestStream(w, rng.New(4))
			if err != nil {
				t.Fatal(err)
			}
			total := 0.0
			for i := 0; i < 40; i++ {
				m, err := sys.Submit(stream.Next())
				if err != nil {
					t.Fatalf("%v/%v: %v", po, vp, err)
				}
				total += m.Response
			}
			responses[po.String()+"/"+vp.String()] = total / 40
		}
	}
	def := responses["largest-first/least-popular"]
	for combo, resp := range responses {
		if def > resp*1.25 {
			t.Errorf("default policy (%.1fs) much worse than %s (%.1fs)", def, combo, resp)
		}
	}
}
