package tapesys

// Trace-kind census: every event kind the schema declares
// (trace.Kinds()) must appear in at least one golden trace fixture and
// in at least one row of the kind tables in docs/OBSERVABILITY.md. A
// kind that fails the census is either dead schema (remove it) or an
// untested, undocumented emission path (extend the golden scenario and
// the document). This keeps the fixtures and the reference honest as
// kinds are added.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paralleltape/internal/trace"
)

func TestTraceKindCensus(t *testing.T) {
	var fixtures strings.Builder
	for _, name := range []string{"trace_golden.jsonl", "trace_faults_golden.jsonl"} {
		raw, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		fixtures.Write(raw)
	}
	docs, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	kinds := trace.Kinds()
	if len(kinds) == 0 {
		t.Fatal("trace.Kinds() is empty")
	}
	for _, k := range kinds {
		if !strings.Contains(fixtures.String(), `"kind":"`+string(k)+`"`) {
			t.Errorf("kind %q appears in no golden fixture — extend the golden scenarios", k)
		}
		if !strings.Contains(string(docs), "| `"+string(k)+"` |") {
			t.Errorf("kind %q has no table row in docs/OBSERVABILITY.md", k)
		}
	}
}
