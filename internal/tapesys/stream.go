package tapesys

// stream.go is the plan-ahead request pipeline: SubmitStream overlaps the
// CPU-side phase of request k+1 — catalog grouping and beginning-of-tape
// read planning, which depend only on the placement, never on live
// simulator state — with the event-driven phase of request k. The overlap
// cannot change results: plans are pure functions of (placement, request),
// tape.Planner.PlanRates is deterministic, and a precomputed plan is used
// only where serve would have computed the identical plan live (head at
// beginning-of-tape, see pendingGroup). Every floating-point reduction
// still happens on the submit path in fixed library order.

import (
	"runtime"

	"paralleltape/internal/catalog"
	"paralleltape/internal/model"
	"paralleltape/internal/sim"
	"paralleltape/internal/tape"
)

// prepared is one plan-ahead buffer: the grouping and read-planning output
// of a single request, produced by run either inline or on the planPipe
// worker. Each buffer owns a private Grouper and Planner because both reuse
// internal scratch — two buffers double-buffer so request k+1 preps while
// request k's groups are still being consumed. A prepared deliberately
// holds no *System pointer: the pipe worker retains its last job between
// requests, and must not root the simulator (see sysCloser).
type prepared struct {
	grouper *catalog.Grouper
	// cat identifies the placement the grouper was built over; Reset with a
	// new placement invalidates the buffer (prep rebuilds it).
	cat     *catalog.Catalog
	planner tape.Planner
	locate  float64 // hardware locate rate, for PlanRates
	rate    float64 // hardware transfer rate, for PlanRates
	req     *model.Request
	groups  []catalog.TapeGroup
	plans   []tape.ReadPlan // one beginning-of-tape plan per group
	err     error
}

// run groups p.req and precomputes one beginning-of-tape read plan per
// group. Safe to call on the pipe worker: it touches only p's own state.
func (p *prepared) run() {
	p.groups, p.err = p.grouper.Group(p.req)
	if p.err != nil {
		return
	}
	plans := p.plans[:0]
	for _, g := range p.groups {
		plans = append(plans, p.planner.PlanRates(p.locate, p.rate, 0, g.Extents))
	}
	p.plans = plans
}

// planPipe is the single pipeline worker: a goroutine that runs prepared
// jobs handed to it, one in flight at a time. jobs and done are both
// buffered so neither side blocks on rendezvous; close(jobs) terminates
// the worker.
type planPipe struct {
	jobs chan *prepared
	done chan struct{}
}

// run is the pipe worker loop.
func (pp *planPipe) run() {
	for p := range pp.jobs {
		p.run()
		pp.done <- struct{}{}
	}
}

// prep returns plan-ahead buffer i, rebuilding it if the system was Reset
// onto a different placement since the buffer was created.
func (s *System) prep(i int) *prepared {
	p := s.preps[i]
	if p == nil || p.cat != s.cat {
		p = &prepared{
			cat:     s.cat,
			grouper: catalog.NewGrouper(s.cat),
			locate:  s.locateRate,
			rate:    s.hw.TransferRate,
		}
		s.preps[i] = p
	}
	return p
}

// ensurePipe returns the pipeline worker, starting it on first use. It
// returns nil — callers then prep inline, which is just as deterministic —
// when the system is closed or the runtime owns a single CPU (overlap
// there only adds handoff latency).
func (s *System) ensurePipe() *planPipe {
	if s.closed || runtime.GOMAXPROCS(0) == 1 {
		return nil
	}
	if s.pipe == nil {
		s.pipe = &planPipe{
			jobs: make(chan *prepared, 1),
			done: make(chan struct{}, 1),
		}
		go s.pipe.run()
		s.armCleanup() // re-arm so the new worker is covered too
	}
	return s.pipe
}

// submitPrepared submits a prepped request, surfacing its prep error at
// submit time so SubmitStream reports errors in the same order Submit
// would.
func (s *System) submitPrepared(p *prepared) (RequestMetrics, error) {
	if p.err != nil {
		return RequestMetrics{}, p.err
	}
	return s.submitGrouped(p.req, p.groups, p.plans)
}

// SubmitStream executes a stream of requests with plan-ahead pipelining:
// while request k's event phase runs, request k+1 is grouped and
// read-planned on a pipeline worker. next supplies requests and returns
// nil to end the stream; fn, if non-nil, observes each request's metrics
// in submission order and may stop the stream by returning an error.
//
// Results are byte-identical to calling Submit in a loop — the pipelined
// phase is a pure function of the placement, and all simulated state and
// floating-point reductions stay on the submitting goroutine — so traces,
// metrics, and clocks match the sequential path exactly at every shard
// count. next and fn are called from the submitting goroutine, never
// concurrently. On error (from a request or from fn) the stream stops with
// the pipeline quiesced; the system remains usable.
func (s *System) SubmitStream(next func() *model.Request, fn func(RequestMetrics) error) error {
	r := next()
	if r == nil {
		return nil
	}
	pipe := s.ensurePipe()
	cur := s.prep(0)
	cur.req = r
	cur.run()
	other := s.prep(1)
	for {
		nr := next()
		inFlight := false
		if nr != nil {
			other.req = nr
			if pipe != nil {
				pipe.jobs <- other
				inFlight = true
			} else {
				other.run()
			}
		}
		m, err := s.submitPrepared(cur)
		if inFlight {
			// Join the prep before any return path: the buffers must never
			// be touched while the worker owns one.
			<-pipe.done
		}
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(m); err != nil {
				return err
			}
		}
		if nr == nil {
			return nil
		}
		cur, other = other, cur
	}
}

// sysCloser bundles the background resources a System owns so the GC
// cleanup can release them. It must never reference the System itself:
// runtime.AddCleanup requires the cleanup argument not to root the
// attached pointer (a System is full of child→parent cycles — shard.sys —
// which is also why SetFinalizer cannot be used here: finalizers never run
// for objects in reference cycles).
type sysCloser struct {
	exec *sim.Pool
	pipe *planPipe
}

// release stops the executor workers and the pipeline worker. Neither
// roots the System while idle (sim.Pool workers clear their engine slot
// before parking; the pipe worker's retained job holds no System pointer),
// so a dropped System becomes unreachable and this runs.
func (c sysCloser) release() {
	if c.exec != nil {
		c.exec.Close()
	}
	if c.pipe != nil {
		close(c.pipe.jobs)
	}
}

// armCleanup (re)attaches the GC cleanup covering the system's current
// background resources; called after the executor or the pipeline worker
// is created.
func (s *System) armCleanup() {
	if s.cleanupSet {
		s.cleanup.Stop()
	}
	s.cleanup = runtime.AddCleanup(s, sysCloser.release, sysCloser{exec: s.exec, pipe: s.pipe})
	s.cleanupSet = true
}

// Close releases the system's background resources: the persistent shard
// executor and the plan-ahead pipeline worker. It is idempotent and always
// returns nil (the signature matches io.Closer for defer chains). A closed
// system remains fully usable — Submit falls back to running busy shards
// sequentially on the caller and SubmitStream preps inline, both
// byte-identical to the parallel paths — so Close is safe to call as soon
// as peak throughput is no longer needed. Systems that are simply dropped
// without Close are cleaned up when the GC collects them, but an explicit
// Close (or defer Close) releases the goroutines deterministically.
func (s *System) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cleanupSet {
		s.cleanup.Stop()
		s.cleanupSet = false
	}
	sysCloser{exec: s.exec, pipe: s.pipe}.release()
	s.exec = nil
	s.pipe = nil
	return nil
}
