package tapesys

// Cross-scheme invariant harness: every placement scheme × random workload
// must satisfy the simulator's global conservation laws. These tests are
// the closest thing the simulator has to a model checker — any future
// change to scheduling, placement, or the motion model that breaks
// causality or loses bytes fails here.

import (
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// invariantHW builds a mid-size system exercising switching.
func invariantHW() tape.Hardware {
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 3
	hw.TapesPerLib = 24
	hw.Capacity = 120 * units.MB
	return hw
}

func invariantWorkload(t *testing.T, seed uint64) *model.Workload {
	t.Helper()
	p := workload.Params{
		NumObjects:  700,
		NumRequests: 35,
		MinObjSize:  512 * units.KB,
		MaxObjSize:  3 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   8,
		MaxReqLen:   18,
		ReqLenShape: 1,
		Alpha:       0.4,
	}
	w, err := workload.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func invariantSchemes() []placement.Scheme {
	return []placement.Scheme{
		placement.ParallelBatch{M: 1},
		placement.ObjectProbability{},
		placement.ClusterProbability{},
		placement.RoundRobin{},
		placement.Online{Epochs: 3, M: 1},
	}
}

func TestSimulatorInvariants(t *testing.T) {
	hw := invariantHW()
	for _, seed := range []uint64{1, 2, 3} {
		w := invariantWorkload(t, seed)
		for _, sch := range invariantSchemes() {
			pr, err := sch.Place(w, hw)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sch.Name(), err)
			}
			if err := pr.Validate(w, hw); err != nil {
				t.Fatalf("seed %d %s: %v", seed, sch.Name(), err)
			}
			sys, err := New(hw, pr)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := workload.NewRequestStream(w, rng.New(seed*31+7))
			if err != nil {
				t.Fatal(err)
			}
			var lastNow float64
			var totalBytes int64
			var totalSwitches int
			for i := 0; i < 30; i++ {
				r := stream.Next()
				m, err := sys.Submit(r)
				if err != nil {
					t.Fatalf("seed %d %s req %d: %v", seed, sch.Name(), i, err)
				}
				// (1) Byte conservation: exactly the requested bytes move.
				if m.Bytes != w.RequestBytes(r) {
					t.Fatalf("%s: request %d moved %d bytes, want %d",
						sch.Name(), i, m.Bytes, w.RequestBytes(r))
				}
				// (2) Causality: the clock only advances, by the response.
				if sys.Now() < lastNow {
					t.Fatalf("%s: clock went backwards", sch.Name())
				}
				if diff := sys.Now() - lastNow - m.Response; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("%s: response %v inconsistent with clock advance %v",
						sch.Name(), m.Response, sys.Now()-lastNow)
				}
				lastNow = sys.Now()
				// (3) Physical floor: a request can never beat streaming
				// its largest single-tape group at the native rate.
				if m.Response < float64(m.Bytes)/(hw.TransferRate*float64(hw.TotalDrives()))-1e-6 {
					t.Fatalf("%s: response %v below the physical floor", sch.Name(), m.Response)
				}
				// (4) Decomposition: components are non-negative and the
				// last drive's seek+transfer never exceeds the response.
				if m.Switch < 0 || m.Seek < 0 || m.Transfer < 0 {
					t.Fatalf("%s: negative component %+v", sch.Name(), m)
				}
				if m.Seek+m.Transfer > m.Response+1e-6 {
					t.Fatalf("%s: seek+transfer %v exceeds response %v",
						sch.Name(), m.Seek+m.Transfer, m.Response)
				}
				// (5) Sum over drives covers the whole request's work.
				if m.SumTransfer < m.Transfer-1e-9 {
					t.Fatalf("%s: per-drive transfer sum below last drive's", sch.Name())
				}
				// (6) Structural counters.
				if m.DrivesUsed < 1 || m.DrivesUsed > hw.TotalDrives() {
					t.Fatalf("%s: DrivesUsed %d out of range", sch.Name(), m.DrivesUsed)
				}
				if m.TapesTouched < 1 || m.TapesTouched > hw.TotalTapes() {
					t.Fatalf("%s: TapesTouched %d out of range", sch.Name(), m.TapesTouched)
				}
				if m.MountedRatio < 0 || m.MountedRatio > 1+1e-9 {
					t.Fatalf("%s: MountedRatio %v out of range", sch.Name(), m.MountedRatio)
				}
				totalBytes += m.Bytes
				totalSwitches += m.Switches
			}
			// (7) Mounted tapes never exceed working drives, per library.
			for lib, mounted := range sys.MountedTapes() {
				if len(mounted) > hw.DrivesPerLib {
					t.Fatalf("%s: library %d has %d mounted tapes for %d drives",
						sch.Name(), lib, len(mounted), hw.DrivesPerLib)
				}
			}
			// (8) Lifetime counters agree.
			if sys.TotalSwitches() != totalSwitches {
				t.Fatalf("%s: lifetime switches %d vs summed %d",
					sch.Name(), sys.TotalSwitches(), totalSwitches)
			}
			// (9) Drive accounting: bytes moved across drives equals the
			// bytes requested across the session.
			var moved int64
			for _, d := range sys.DriveReport() {
				moved += d.BytesMoved
				if d.BusySeconds < 0 || d.SwitchSeconds < 0 {
					t.Fatalf("%s: negative drive accounting %+v", sch.Name(), d)
				}
			}
			if moved != totalBytes {
				t.Fatalf("%s: drives moved %d bytes, requests asked %d",
					sch.Name(), moved, totalBytes)
			}
		}
	}
}

// TestInvariantsUnderFailures reruns the core invariants while drives fail
// between requests.
func TestInvariantsUnderFailures(t *testing.T) {
	hw := invariantHW()
	w := invariantWorkload(t, 9)
	pr, err := placement.ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(hw, pr)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewRequestStream(w, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	fail := []struct{ at, lib, drive int }{
		{5, 0, 0}, {10, 1, 2}, {15, 0, 1},
	}
	fi := 0
	var healthyMean, degradedSum float64
	var degradedN int
	for i := 0; i < 25; i++ {
		if fi < len(fail) && i == fail[fi].at {
			if err := sys.FailDrive(fail[fi].lib, fail[fi].drive); err != nil {
				t.Fatal(err)
			}
			fi++
		}
		r := stream.Next()
		m, err := sys.Submit(r)
		if err != nil {
			t.Fatalf("request %d with %d failed drives: %v", i, sys.FailedDrives(), err)
		}
		if m.Bytes != w.RequestBytes(r) {
			t.Fatalf("bytes lost under failure: %d vs %d", m.Bytes, w.RequestBytes(r))
		}
		if i < 5 {
			healthyMean += m.Response / 5
		} else if sys.FailedDrives() == 3 {
			degradedSum += m.Response
			degradedN++
		}
	}
	if sys.FailedDrives() != 3 {
		t.Fatalf("FailedDrives = %d, want 3", sys.FailedDrives())
	}
	if degradedN > 0 && degradedSum/float64(degradedN) < healthyMean*0.5 {
		t.Errorf("degraded system implausibly faster: %.1fs vs healthy %.1fs",
			degradedSum/float64(degradedN), healthyMean)
	}
}
