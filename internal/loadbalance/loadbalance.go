// Package loadbalance implements §5.4's tape load balancing: the greedy
// zigzag algorithm of Figure 3 that splits one object cluster across the
// tapes of a batch so per-tape load (Σ P(O)·size(O)) stays even and a
// request transferring the cluster engages many drives in parallel.
//
// A first-fit "most free space" baseline is included for the ablation
// benchmarks.
package loadbalance

import (
	"fmt"
	"slices"
)

// Item is one object to place: its balancing load P(O)·size(O) and its
// physical size in bytes.
type Item struct {
	Load float64
	Size int64
}

// TapeState is the balancer's view of one tape in the batch. The balancer
// mutates Load and Free as it assigns items.
type TapeState struct {
	Load float64 // accumulated Σ P(O)·size(O)
	Free int64   // remaining capacity in bytes
}

// ChooseSpread picks ndrv, the number of tapes a cluster is split across
// (Figure 3's "assign ndrv a proper value based on info of C and tapes").
// §5.3 step 5: split only "if their aggregate size is big enough";
// otherwise one tape saves a switch without hurting transfer time. A
// cluster worth splitting gets one tape per splitThreshold bytes, capped by
// the batch width and the object count (an object is never split).
func ChooseSpread(clusterBytes int64, numObjects, numTapes int, splitThreshold int64) int {
	if numTapes <= 0 || numObjects <= 0 {
		return 0
	}
	if splitThreshold <= 0 {
		splitThreshold = 1
	}
	if clusterBytes <= splitThreshold {
		return 1
	}
	n := int(clusterBytes / splitThreshold)
	if clusterBytes%splitThreshold != 0 {
		n++
	}
	if n > numTapes {
		n = numTapes
	}
	if n > numObjects {
		n = numObjects
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Zigzag distributes the items of one cluster across tapes following the
// Figure 3 pseudocode: items sorted ascending by load, ndrv candidate
// tapes, and a boustrophedon index walk
// (T1,T2,…,T_{ndrv−1},T_{ndrv−1},…,T1,T0,T0,T1,…) whose repeated endpoints
// keep per-tape counts even over full cycles. The walk is capacity-aware:
// if the zigzag target cannot hold the item, the least-loaded tape with
// room takes it instead.
//
// Two details are pinned down beyond the printed pseudocode, both required
// for the algorithm to actually balance (verified by the package tests):
//
//   - The candidate tapes are the ndrv least-loaded of the batch, indexed
//     ascending by load, so the cycle's tail — which the ascending item
//     order makes the heaviest items — lands on the coldest tape. (Sorting
//     the chosen tapes hottest-first instead makes the rich richer.)
//   - ndrv is capped at ⌊len(items)/2⌋ so the cluster fills at least one
//     full 2·ndrv walk cycle; otherwise T0 is never visited and whichever
//     tape holds that rank starves.
//
// It returns, for each item (in input order), the index into tapes the
// item was assigned to — or −1 when no tape in the batch can hold the item
// (the caller spills such items to another batch) — and updates each
// tape's Load and Free.
func Zigzag(items []Item, tapes []*TapeState, ndrv int) ([]int, error) {
	var p Packer
	return p.Zigzag(items, tapes, ndrv)
}

// ordered pairs an item with its input position so the load sort can break
// ties by input order without a stable algorithm.
type ordered struct {
	item Item
	pos  int
}

// Packer is an allocation-free Zigzag/FirstFit: the sort, ranking, and
// output buffers are reused across calls, so a caller packing many
// clusters (placement's batch loop) pays for them once. Returned slices
// are owned by the Packer and valid until its next call.
type Packer struct {
	ord []ordered
	idx []int
	out []int
}

// Zigzag is the package-level Zigzag on reused buffers; identical results.
func (p *Packer) Zigzag(items []Item, tapes []*TapeState, ndrv int) ([]int, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if len(tapes) == 0 {
		return nil, fmt.Errorf("loadbalance: no tapes")
	}
	if ndrv > len(items)/2 {
		ndrv = len(items) / 2
	}
	if ndrv < 1 {
		ndrv = 1
	}
	if ndrv > len(tapes) {
		ndrv = len(tapes)
	}
	// Sort items ascending by load, remembering input positions. Ties keep
	// input order: (Load, pos) is a total order, so the allocation-free
	// unstable sort reproduces what a stable sort on Load alone would.
	if cap(p.ord) < len(items) {
		p.ord = make([]ordered, len(items))
	}
	ord := p.ord[:len(items)]
	for i, it := range items {
		ord[i] = ordered{item: it, pos: i}
	}
	slices.SortFunc(ord, func(a, b ordered) int {
		if a.item.Load != b.item.Load {
			if a.item.Load < b.item.Load {
				return -1
			}
			return 1
		}
		return a.pos - b.pos
	})

	// Candidate tapes: the ndrv least-loaded, indexed ascending by load,
	// ties by original index for determinism. The zigzag walks this
	// ranking.
	rank := p.leastLoaded(tapes)[:ndrv]

	if cap(p.out) < len(items) {
		p.out = make([]int, len(items))
	}
	out := p.out[:len(items)]
	i, flag := 0, 0
	for _, o := range ord {
		// Figure 3 index walk.
		if flag == 0 {
			i++
		} else {
			i--
		}
		if i == ndrv {
			flag = 1
			i--
		}
		if i == -1 {
			flag = 0
			i++
		}
		target := rank[i]
		if tapes[target].Free < o.item.Size {
			// Capacity fallback: least-loaded tape (any in the batch, not
			// just the ndrv window) that can hold the item. A single linear
			// min-scan selects the same tape the old sorted ranking's first
			// fitting entry did — minimum (Load, index) among tapes with
			// room — without re-sorting the whole batch per fallback item.
			target = leastLoadedWithRoom(tapes, o.item.Size)
			if target < 0 {
				// No tape can hold the item: report it unplaced (-1) and
				// let the caller spill it to another batch.
				out[o.pos] = -1
				continue
			}
		}
		tapes[target].Load += o.item.Load
		tapes[target].Free -= o.item.Size
		out[o.pos] = target
	}
	return out, nil
}

// FirstFit is the ablation baseline: every item goes to the tape with the
// most free space that can hold it, ignoring access-probability load.
// Unplaceable items are reported as −1, like Zigzag.
func FirstFit(items []Item, tapes []*TapeState) ([]int, error) {
	var p Packer
	return p.FirstFit(items, tapes)
}

// FirstFit is the first-fit baseline on the Packer's reused output buffer;
// identical results to the package-level FirstFit.
func (p *Packer) FirstFit(items []Item, tapes []*TapeState) ([]int, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if len(tapes) == 0 {
		return nil, fmt.Errorf("loadbalance: no tapes")
	}
	if cap(p.out) < len(items) {
		p.out = make([]int, len(items))
	}
	out := p.out[:len(items)]
	for k, it := range items {
		best := -1
		for ti, t := range tapes {
			if t.Free < it.Size {
				continue
			}
			if best < 0 || t.Free > tapes[best].Free {
				best = ti
			}
		}
		if best < 0 {
			// Unplaceable here: -1 signals the caller to spill the item.
			out[k] = -1
			continue
		}
		tapes[best].Load += it.Load
		tapes[best].Free -= it.Size
		out[k] = best
	}
	return out, nil
}

// Imbalance returns (maxLoad − minLoad) / meanLoad over the tapes, a
// unitless skew measure used by tests and the ablation report. Zero tapes
// or zero total load yield 0.
func Imbalance(tapes []*TapeState) float64 {
	if len(tapes) == 0 {
		return 0
	}
	minL, maxL, sum := tapes[0].Load, tapes[0].Load, 0.0
	for _, t := range tapes {
		if t.Load < minL {
			minL = t.Load
		}
		if t.Load > maxL {
			maxL = t.Load
		}
		sum += t.Load
	}
	mean := sum / float64(len(tapes))
	if mean == 0 {
		return 0
	}
	return (maxL - minL) / mean
}

func leastLoadedOrder(tapes []*TapeState) []int {
	var p Packer
	return p.leastLoaded(tapes)
}

// leastLoaded is leastLoadedOrder into the Packer's reused index buffer.
func (p *Packer) leastLoaded(tapes []*TapeState) []int {
	if cap(p.idx) < len(tapes) {
		p.idx = make([]int, len(tapes))
	}
	idx := p.idx[:len(tapes)]
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		ta, tb := tapes[a], tapes[b]
		if ta.Load != tb.Load {
			if ta.Load < tb.Load {
				return -1
			}
			return 1
		}
		return a - b
	})
	return idx
}

// leastLoadedWithRoom returns the index of the tape with the smallest
// (Load, index) among those with at least size bytes free, or −1 if none
// qualifies. Iterating ascending with a strict comparison keeps the lowest
// index on load ties, matching leastLoadedOrder's ranking.
func leastLoadedWithRoom(tapes []*TapeState, size int64) int {
	best := -1
	for i, t := range tapes {
		if t.Free < size {
			continue
		}
		if best < 0 || t.Load < tapes[best].Load {
			best = i
		}
	}
	return best
}
