package loadbalance

import (
	"testing"
	"testing/quick"

	"paralleltape/internal/rng"
)

func freshTapes(n int, free int64) []*TapeState {
	out := make([]*TapeState, n)
	for i := range out {
		out[i] = &TapeState{Free: free}
	}
	return out
}

func TestChooseSpread(t *testing.T) {
	cases := []struct {
		bytes     int64
		objects   int
		tapes     int
		threshold int64
		want      int
	}{
		{100, 10, 8, 1000, 1},    // small cluster: one tape
		{1000, 10, 8, 1000, 1},   // exactly at threshold: one tape
		{8000, 10, 8, 1000, 8},   // big cluster: full batch width
		{3500, 10, 8, 1000, 4},   // ceil(3500/1000)=4
		{80000, 3, 8, 1000, 3},   // capped by object count
		{80000, 100, 8, 1000, 8}, // capped by batch width
		{100, 0, 8, 1000, 0},     // no objects
		{100, 5, 0, 1000, 0},     // no tapes
	}
	for _, c := range cases {
		got := ChooseSpread(c.bytes, c.objects, c.tapes, c.threshold)
		if got != c.want {
			t.Errorf("ChooseSpread(%d,%d,%d,%d) = %d, want %d",
				c.bytes, c.objects, c.tapes, c.threshold, got, c.want)
		}
	}
}

func TestChooseSpreadZeroThreshold(t *testing.T) {
	if got := ChooseSpread(10, 100, 8, 0); got < 1 || got > 8 {
		t.Errorf("ChooseSpread with zero threshold = %d", got)
	}
}

func TestZigzagFollowsFigure3Walk(t *testing.T) {
	// 7 equal-load items over 3 equally-loaded fresh tapes: the Figure 3
	// walk visits ranks 1,2,2,1,0,0,1. With all tapes tied at load 0 the
	// rank order is the input order.
	items := make([]Item, 7)
	for i := range items {
		items[i] = Item{Load: 1, Size: 1}
	}
	tapes := freshTapes(3, 100)
	got, err := Zigzag(items, tapes, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 2, 1, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", got, want)
		}
	}
}

func TestZigzagBalancesLoad(t *testing.T) {
	// Many identical items must end near-perfectly balanced.
	items := make([]Item, 300)
	for i := range items {
		items[i] = Item{Load: 1, Size: 1}
	}
	tapes := freshTapes(4, 1000)
	if _, err := Zigzag(items, tapes, 4); err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(tapes); imb > 0.05 {
		t.Errorf("imbalance = %v after 300 equal items", imb)
	}
}

func TestZigzagBalancesSkewedLoads(t *testing.T) {
	// Power-law loads: zigzag should still keep imbalance modest.
	src := rng.New(1)
	items := make([]Item, 200)
	for i := range items {
		l := 1.0 / float64(1+src.Intn(50))
		items[i] = Item{Load: l, Size: 1}
	}
	tapes := freshTapes(5, 10000)
	if _, err := Zigzag(items, tapes, 5); err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(tapes); imb > 0.25 {
		t.Errorf("imbalance = %v on skewed loads", imb)
	}
}

func TestZigzagSmallClusterGoesToColdestTape(t *testing.T) {
	// A 2-item cluster caps ndrv at 1, so the whole cluster lands on the
	// least-loaded tape (§5.3 step 5: small clusters stay together).
	tapes := []*TapeState{
		{Load: 10, Free: 100},
		{Load: 0, Free: 100},
	}
	items := []Item{{Load: 1, Size: 1}, {Load: 5, Size: 1}}
	got, err := Zigzag(items, tapes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 1 {
		t.Errorf("small cluster split or mis-placed: %v", got)
	}
}

func TestZigzagRespectsCapacity(t *testing.T) {
	tapes := []*TapeState{
		{Free: 5},
		{Free: 100},
	}
	items := []Item{{Load: 1, Size: 50}, {Load: 2, Size: 50}}
	got, err := Zigzag(items, tapes, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, ti := range got {
		if ti != 1 {
			t.Errorf("item %d placed on undersized tape %d", i, ti)
		}
	}
	if tapes[1].Free != 0 {
		t.Errorf("tape 1 free = %d", tapes[1].Free)
	}
}

func TestZigzagReportsUnplaceable(t *testing.T) {
	tapes := freshTapes(2, 10)
	asg, err := Zigzag([]Item{{Load: 1, Size: 50}}, tapes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 1 || asg[0] != -1 {
		t.Errorf("oversized item assignment = %v, want [-1]", asg)
	}
	for _, tp := range tapes {
		if tp.Load != 0 || tp.Free != 10 {
			t.Errorf("unplaceable item mutated tape state: %+v", tp)
		}
	}
}

func TestZigzagEmptyItems(t *testing.T) {
	got, err := Zigzag(nil, freshTapes(2, 10), 2)
	if err != nil || got != nil {
		t.Errorf("empty items: %v, %v", got, err)
	}
}

func TestZigzagNoTapes(t *testing.T) {
	if _, err := Zigzag([]Item{{Load: 1, Size: 1}}, nil, 1); err == nil {
		t.Error("no tapes accepted")
	}
}

func TestZigzagNdrvClamped(t *testing.T) {
	items := []Item{{Load: 1, Size: 1}, {Load: 2, Size: 1}}
	// ndrv larger than tape count and smaller than 1 must both work.
	if _, err := Zigzag(items, freshTapes(2, 10), 99); err != nil {
		t.Errorf("ndrv>tapes: %v", err)
	}
	if _, err := Zigzag(items, freshTapes(2, 10), 0); err != nil {
		t.Errorf("ndrv=0: %v", err)
	}
}

func TestZigzagQuickConservation(t *testing.T) {
	// Property: total assigned load and bytes match the inputs, and no
	// tape goes negative on Free.
	f := func(rawLoads []uint8, nTapes uint8) bool {
		n := int(nTapes)%6 + 1
		items := make([]Item, len(rawLoads))
		var totalSize int64
		var totalLoad float64
		for i, r := range rawLoads {
			items[i] = Item{Load: float64(r), Size: int64(r%16) + 1}
			totalSize += items[i].Size
			totalLoad += items[i].Load
		}
		tapes := freshTapes(n, 1<<40)
		asg, err := Zigzag(items, tapes, n)
		if err != nil {
			return false
		}
		var gotLoad float64
		var gotSize int64
		for _, t := range tapes {
			gotLoad += t.Load
			gotSize += 1<<40 - t.Free
			if t.Free < 0 {
				return false
			}
		}
		for _, a := range asg {
			if a < 0 || a >= n {
				return false
			}
		}
		return gotLoad == totalLoad && gotSize == totalSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFirstFit(t *testing.T) {
	tapes := []*TapeState{{Free: 100}, {Free: 50}}
	items := []Item{{Load: 1, Size: 60}, {Load: 1, Size: 45}}
	got, err := FirstFit(items, tapes)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("first item to tape %d, want 0 (most free)", got[0])
	}
	// After the first assignment tape 0 has 40 free, tape 1 has 50.
	if got[1] != 1 {
		t.Errorf("second item to tape %d, want 1", got[1])
	}
}

func TestFirstFitUnplaceableAndNoTapes(t *testing.T) {
	asg, err := FirstFit([]Item{{Size: 99}}, freshTapes(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 1 || asg[0] != -1 {
		t.Errorf("oversized item assignment = %v, want [-1]", asg)
	}
	if _, err := FirstFit([]Item{{Size: 1}}, nil); err == nil {
		t.Error("no tapes accepted")
	}
}

func TestZigzagPerClusterBalances(t *testing.T) {
	// Figure 3 is applied once per cluster; the descending-load tape sort
	// between clusters is what evens the batch out over time. Feed 40
	// clusters of 10 skewed items and check the final balance is tight.
	src := rng.New(7)
	tapes := freshTapes(6, 1<<40)
	for c := 0; c < 40; c++ {
		items := make([]Item, 10)
		for i := range items {
			w := 1.0 / float64(1+src.Intn(100))
			items[i] = Item{Load: w * 10, Size: int64(10 * w * 1000)}
		}
		if _, err := Zigzag(items, tapes, 6); err != nil {
			t.Fatal(err)
		}
	}
	if imb := Imbalance(tapes); imb > 0.15 {
		t.Errorf("per-cluster zigzag imbalance = %v", imb)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Errorf("Imbalance(nil) = %v", got)
	}
	if got := Imbalance(freshTapes(3, 10)); got != 0 {
		t.Errorf("Imbalance(zero loads) = %v", got)
	}
	tapes := []*TapeState{{Load: 1}, {Load: 3}}
	if got := Imbalance(tapes); got != 1 {
		t.Errorf("Imbalance = %v, want 1", got)
	}
}
