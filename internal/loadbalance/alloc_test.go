package loadbalance

import "testing"

// TestPackerZeroAllocs pins the Packer's steady-state behavior: once its
// buffers are sized, Zigzag and FirstFit perform no allocations. Placement
// calls the balancer once per unit, so a per-call allocation here scales
// with the cluster count.
func TestPackerZeroAllocs(t *testing.T) {
	items := make([]Item, 32)
	for i := range items {
		items[i] = Item{Load: float64((i * 29) % 11), Size: int64(i%5 + 1)}
	}
	mkTapes := func() ([]TapeState, []*TapeState) {
		arr := make([]TapeState, 6)
		ptrs := make([]*TapeState, len(arr))
		for i := range arr {
			arr[i] = TapeState{Free: 1 << 20}
			ptrs[i] = &arr[i]
		}
		return arr, ptrs
	}
	var p Packer
	arr, tapes := mkTapes()
	if _, err := p.Zigzag(items, tapes, 4); err != nil { // size the buffers
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() {
		for i := range arr {
			arr[i] = TapeState{Free: 1 << 20}
		}
		if _, err := p.Zigzag(items, tapes, 4); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("Packer.Zigzag allocates %.0f/run after warm-up, want 0", n)
	}
	n = testing.AllocsPerRun(100, func() {
		for i := range arr {
			arr[i] = TapeState{Free: 1 << 20}
		}
		if _, err := p.FirstFit(items, tapes); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("Packer.FirstFit allocates %.0f/run after warm-up, want 0", n)
	}
}
