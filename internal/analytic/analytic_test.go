package analytic

import (
	"math"
	"testing"

	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

func setup(t *testing.T, seed uint64) (tape.Hardware, *model.Workload) {
	t.Helper()
	hw := tape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 4
	hw.TapesPerLib = 24
	hw.Capacity = 200 * units.MB
	p := workload.Params{
		NumObjects:  800,
		NumRequests: 40,
		MinObjSize:  1 * units.MB,
		MaxObjSize:  5 * units.MB,
		ObjShape:    1.1,
		MinReqLen:   8,
		MaxReqLen:   16,
		ReqLenShape: 1,
		Alpha:       0.3,
	}
	w, err := workload.Generate(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return hw, w
}

func TestNewModelValidation(t *testing.T) {
	hw, w := setup(t, 1)
	if _, err := NewModel(hw, nil); err == nil {
		t.Error("nil placement accepted")
	}
	pr, err := placement.ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	bad := hw
	bad.Libraries = 5
	if _, err := NewModel(bad, pr); err == nil {
		t.Error("library mismatch accepted")
	}
	if _, err := NewModel(hw, pr); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestEstimateBasicConsistency(t *testing.T) {
	hw, w := setup(t, 2)
	pr, err := placement.ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(hw, pr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Requests {
		r := &w.Requests[i]
		e, err := m.EstimateRequest(r)
		if err != nil {
			t.Fatal(err)
		}
		if e.Bytes != w.RequestBytes(r) {
			t.Fatalf("request %d: bytes %d vs %d", i, e.Bytes, w.RequestBytes(r))
		}
		if e.Response <= 0 || e.Transfer <= 0 {
			t.Fatalf("request %d: degenerate estimate %+v", i, e)
		}
		// The estimate can never beat the physical floor.
		if e.Response < MinResponse(hw, e.Bytes)-1e-9 {
			t.Fatalf("request %d: estimate %v below physical floor %v",
				i, e.Response, MinResponse(hw, e.Bytes))
		}
		if e.OfflineTapes > e.TapesTouched {
			t.Fatalf("request %d: offline %d > touched %d", i, e.OfflineTapes, e.TapesTouched)
		}
	}
}

// TestEstimateTracksSimulation is the core validation: the analytic mean
// response must correlate with the simulated mean response across schemes
// (same ordering, same rough magnitude).
func TestEstimateTracksSimulation(t *testing.T) {
	hw, w := setup(t, 3)
	schemes := []placement.Scheme{
		placement.ParallelBatch{M: 2},
		placement.ObjectProbability{},
		placement.ClusterProbability{},
	}
	type pair struct {
		name      string
		est, simd float64
	}
	var pairs []pair
	for _, sch := range schemes {
		pr, err := sch.Place(w, hw)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := NewModel(hw, pr)
		if err != nil {
			t.Fatal(err)
		}
		est, err := mod.EstimateSession(w)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := tapesys.New(hw, pr)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := workload.NewRequestStream(w, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		const n = 60
		for i := 0; i < n; i++ {
			mtr, err := sys.Submit(stream.Next())
			if err != nil {
				t.Fatal(err)
			}
			total += mtr.Response
		}
		pairs = append(pairs, pair{name: sch.Name(), est: est.Response, simd: total / n})
	}
	for _, p := range pairs {
		t.Logf("%-22s analytic=%.1fs simulated=%.1fs ratio=%.2f",
			p.name, p.est, p.simd, p.est/p.simd)
		// Magnitude: within 3x either way.
		if p.est > 3*p.simd || p.est < p.simd/3 {
			t.Errorf("%s: analytic %v vs simulated %v out of range", p.name, p.est, p.simd)
		}
	}
	// Ordering: cluster probability must be the slowest under both views.
	var cpEst, cpSim, pbEst, pbSim float64
	for _, p := range pairs {
		switch p.name {
		case "cluster-probability":
			cpEst, cpSim = p.est, p.simd
		case "parallel-batch":
			pbEst, pbSim = p.est, p.simd
		}
	}
	if (cpSim > pbSim) != (cpEst > pbEst) {
		t.Errorf("analytic ordering disagrees with simulation: est %v/%v, sim %v/%v",
			cpEst, pbEst, cpSim, pbSim)
	}
}

func TestEstimateSessionWeights(t *testing.T) {
	hw, w := setup(t, 4)
	pr, err := placement.ParallelBatch{M: 2}.Place(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(hw, pr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.EstimateSession(w)
	if err != nil {
		t.Fatal(err)
	}
	// The session mean must lie within the per-request range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range w.Requests {
		e, err := m.EstimateRequest(&w.Requests[i])
		if err != nil {
			t.Fatal(err)
		}
		lo = math.Min(lo, e.Response)
		hi = math.Max(hi, e.Response)
	}
	if sess.Response < lo || sess.Response > hi {
		t.Errorf("session mean %v outside [%v, %v]", sess.Response, lo, hi)
	}
}

func TestIdealBandwidthAndFloor(t *testing.T) {
	hw := tape.DefaultHardware()
	if got := IdealBandwidth(hw); got != 24*80e6 {
		t.Errorf("IdealBandwidth = %v", got)
	}
	if got := MinResponse(hw, 192*units.GB); math.Abs(got-100) > 1e-9 {
		t.Errorf("MinResponse = %v, want 100", got)
	}
	if MinResponse(hw, 0) != 0 {
		t.Error("MinResponse(0) != 0")
	}
}

func TestEstimateBandwidthHelper(t *testing.T) {
	e := Estimate{Response: 10, Bytes: 100}
	if e.Bandwidth() != 10 {
		t.Errorf("Bandwidth = %v", e.Bandwidth())
	}
	if (Estimate{}).Bandwidth() != 0 {
		t.Error("zero estimate bandwidth != 0")
	}
}
