// Package analytic derives closed-form estimates of request response time
// from a placement, without running the discrete-event simulator. The
// estimates assume the stationary mount state equals the placement's
// initial mounts (requests are independent, so mounted switch tapes drift
// with history — the simulator captures that; the analytic model brackets
// it). They serve three purposes:
//
//   - sanity-check the simulator (estimates and measurements must agree on
//     ordering and rough magnitude — tested in this package);
//   - give library users instant capacity answers without simulating;
//   - expose the structural quantities (tapes touched, offline groups,
//     switch serialization) that explain the paper's figures.
package analytic

import (
	"fmt"
	"math"

	"paralleltape/internal/catalog"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/tape"
)

// Estimate is the analytic decomposition of one request's expected
// response time (seconds).
type Estimate struct {
	Response float64
	Switch   float64
	Seek     float64
	Transfer float64

	TapesTouched  int
	OfflineTapes  int
	Bytes         int64
	BottleneckLib int // library whose pipeline dominates the estimate
}

// Bandwidth returns the estimated effective bandwidth in bytes/second.
func (e Estimate) Bandwidth() float64 {
	if e.Response <= 0 {
		return 0
	}
	return float64(e.Bytes) / e.Response
}

// Model holds the immutable inputs of the estimator.
type Model struct {
	hw      tape.Hardware
	cat     *catalog.Catalog
	mounted map[tape.Key]bool
	// switchable drives per library under the placement's pinning.
	switchable []int
}

// NewModel builds an estimator from hardware and a placement.
func NewModel(hw tape.Hardware, pl *placement.Result) (*Model, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if pl == nil || pl.Catalog == nil {
		return nil, fmt.Errorf("analytic: nil placement")
	}
	if len(pl.InitialMounts) != hw.Libraries {
		return nil, fmt.Errorf("analytic: placement has %d libraries, hardware %d",
			len(pl.InitialMounts), hw.Libraries)
	}
	m := &Model{
		hw:         hw,
		cat:        pl.Catalog,
		mounted:    make(map[tape.Key]bool),
		switchable: make([]int, hw.Libraries),
	}
	for lib := range pl.InitialMounts {
		for d, ti := range pl.InitialMounts[lib] {
			if ti >= 0 {
				m.mounted[tape.Key{Library: lib, Index: ti}] = true
			}
			if !pl.Pinned[lib][d] {
				m.switchable[lib]++
			}
		}
	}
	return m, nil
}

// EstimateRequest computes the expected response decomposition for one
// request under the stationary-mounts assumption:
//
//   - every tape group transfers at the native rate after an average
//     half-span seek within its extent range;
//   - offline groups in a library serialize through its switchable drives
//     in rounds, each round costing one average switch (rewind/2 + unload
//   - robot stow/fetch + load);
//   - the response is the max over libraries of (switch rounds + the
//     largest single-tape seek+transfer chain in that library), and at
//     least the largest mounted-tape service anywhere.
func (m *Model) EstimateRequest(r *model.Request) (Estimate, error) {
	groups, err := m.cat.GroupRequest(r)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{TapesTouched: len(groups)}

	// Per-library aggregation.
	type libAgg struct {
		offline      int
		offlineWork  float64 // summed seek+transfer of offline groups
		maxChain     float64 // largest single-group seek+transfer
		mountedChain float64 // largest mounted-group seek+transfer
	}
	aggs := make([]libAgg, m.hw.Libraries)
	avgSwitch := m.hw.AverageSwitchTime()

	for _, g := range groups {
		est.Bytes += g.Bytes
		xfer := m.hw.TransferTime(g.Bytes)
		seek := m.groupSeek(g)
		a := &aggs[g.Tape.Library]
		chain := seek + xfer
		if m.mounted[g.Tape] {
			if chain > a.mountedChain {
				a.mountedChain = chain
			}
		} else {
			est.OfflineTapes++
			a.offline++
			a.offlineWork += chain
			if chain > a.maxChain {
				a.maxChain = chain
			}
		}
		est.Seek += seek
		est.Transfer += xfer
	}

	// Library pipeline estimates.
	worst := 0.0
	for lib := range aggs {
		a := &aggs[lib]
		t := a.mountedChain
		if a.offline > 0 {
			drives := m.switchable[lib]
			if drives == 0 {
				return Estimate{}, fmt.Errorf("analytic: library %d has offline groups but no switchable drives", lib)
			}
			rounds := math.Ceil(float64(a.offline) / float64(drives))
			// Each switchable drive processes its share of switch+service
			// chains back to back; the robot serializes the per-switch
			// handling (2 moves) within the library.
			perDrive := rounds*avgSwitch + a.offlineWork/float64(drives)
			robotSerial := float64(a.offline) * (2 * m.hw.CellToDrive) / 1 // one robot
			pipeline := math.Max(perDrive, robotSerial)
			pipeline = math.Max(pipeline, a.maxChain+avgSwitch)
			if pipeline > t {
				t = pipeline
			}
		}
		if t > worst {
			worst = t
			est.BottleneckLib = lib
		}
	}
	est.Response = worst
	// Attribute the switch share as the non-seek/transfer remainder of the
	// bottleneck pipeline, floored at zero (mirrors the §6 metric).
	est.Switch = est.Response
	if a := aggs[est.BottleneckLib]; true {
		est.Switch = est.Response - a.maxChain - a.mountedChain
		if est.Switch < 0 {
			est.Switch = 0
		}
	}
	return est, nil
}

// groupSeek estimates head positioning for one tape group: locate to the
// first requested extent (half the tape's used span on average for a fresh
// mount) plus the internal gaps between requested extents.
func (m *Model) groupSeek(g catalog.TapeGroup) float64 {
	if len(g.Extents) == 0 {
		return 0
	}
	first := g.Extents[0].Start
	last := g.Extents[len(g.Extents)-1].End()
	span := last - first
	var inner int64
	if span > g.Bytes {
		inner = span - g.Bytes
	}
	return m.hw.SeekTime(0, first/2) + m.hw.SeekTime(0, inner)
}

// EstimateSession returns the popularity-weighted mean estimate over the
// workload's predefined requests.
func (m *Model) EstimateSession(w *model.Workload) (Estimate, error) {
	var out Estimate
	var probSum float64
	var tapesW, offlineW float64
	for i := range w.Requests {
		r := &w.Requests[i]
		e, err := m.EstimateRequest(r)
		if err != nil {
			return Estimate{}, err
		}
		p := r.Prob
		probSum += p
		out.Response += p * e.Response
		out.Switch += p * e.Switch
		out.Seek += p * e.Seek
		out.Transfer += p * e.Transfer
		out.Bytes += int64(p * float64(e.Bytes))
		tapesW += p * float64(e.TapesTouched)
		offlineW += p * float64(e.OfflineTapes)
	}
	if probSum > 0 {
		inv := 1 / probSum
		out.Response *= inv
		out.Switch *= inv
		out.Seek *= inv
		out.Transfer *= inv
		out.Bytes = int64(float64(out.Bytes) * inv)
		out.TapesTouched = int(math.Round(tapesW * inv))
		out.OfflineTapes = int(math.Round(offlineW * inv))
	}
	return out, nil
}

// IdealBandwidth returns the hardware ceiling: every drive streaming at
// the native rate.
func IdealBandwidth(hw tape.Hardware) float64 {
	return float64(hw.TotalDrives()) * hw.TransferRate
}

// MinResponse returns the physical floor for transferring `bytes` with the
// whole system: perfect spread over all drives at the native rate.
func MinResponse(hw tape.Hardware, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / IdealBandwidth(hw)
}
