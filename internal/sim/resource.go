package sim

import "paralleltape/internal/trace"

// Resource is an exclusive, FIFO-queued simulated resource. The paper's
// robot arm (one per tape library, serializing all mount/unmount traffic in
// that library) maps directly onto it: each tape switch acquires the robot,
// holds it for the cartridge moves, and releases it.
//
// Acquire never blocks the caller; instead the grant callback fires (via the
// engine) once the resource is free, at which point the holder must
// eventually call Release exactly once.
//
// The grant path is allocation-free in steady state: the resource is
// exclusive, so a single embedded Grant is recycled across ownership
// periods, the resource schedules itself as the grant-dispatch Op (no
// closure, no capture), and waiters queue in a reusable ring buffer.
type Resource struct {
	eng  *Engine
	name string
	busy bool

	// waiters is a FIFO ring buffer: head is the next waiter, count the
	// number queued. A ring (rather than slicing the head off an append
	// queue) keeps long acquire/release sequences from reallocating.
	waiters []waiter
	head    int
	count   int

	// grant is the recycled ownership token (at most one holder exists at
	// a time) and next the waiter being dispatched; the dispatch event is
	// the resource itself (Run), so arming it costs no allocation.
	grant Grant
	next  waiter

	// accounting
	acquisitions int
	busySince    Time
	busyTotal    float64
	waitTotal    float64
	maxQueue     int
}

// Grantee receives ownership of a Resource. Pooled continuation records
// implement it directly so queueing for a resource captures no closure;
// plain func(*Grant) callbacks are adapted for free by Acquire (grantFunc
// is pointer-shaped).
type Grantee interface {
	// Granted is invoked through the engine once the resource is owned by
	// this waiter; the holder must eventually call g.Release exactly once.
	Granted(g *Grant)
}

// grantFunc adapts a plain grant callback to Grantee without allocating.
type grantFunc func(g *Grant)

// Granted implements Grantee by calling the wrapped callback.
func (f grantFunc) Granted(g *Grant) { f(g) }

// waiter is one queued acquisition: the grantee plus the request instant
// (for wait-time accounting).
type waiter struct {
	gr        Grantee
	requested Time
}

// Grant represents one ownership period of a Resource. Release it when the
// simulated work holding the resource finishes.
type Grant struct {
	r        *Resource
	released bool
}

// emit records a contention event when the engine has a trace recorder.
// The guard keeps the disabled path allocation-free.
func (r *Resource) emit(kind trace.Kind, dur float64, queue int) {
	rec := r.eng.rec
	if rec == nil {
		return
	}
	rec.Record(trace.Event{
		T: r.eng.now, Kind: kind, Lib: -1, Drive: -1, Tape: -1, Req: -1,
		Dur: dur, Queue: queue, Name: r.name,
	})
}

// NewResource creates a named resource attached to an engine.
func NewResource(eng *Engine, name string) *Resource {
	if eng == nil {
		panic("sim: NewResource with nil engine")
	}
	r := &Resource{eng: eng, name: name}
	r.grant.r = r
	return r
}

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Run implements Op: the resource is its own grant-dispatch event, handing
// the recycled grant to the armed waiter. At most one dispatch is pending
// per resource at any instant, because a new one is only scheduled by
// Release (which requires the previous grant to have fired) or by an
// Acquire that found the resource free.
func (r *Resource) Run(uint8) {
	w := r.next
	r.next = waiter{}
	r.waitTotal += r.eng.Now() - w.requested
	r.emit(trace.KindResourceGrant, r.eng.Now()-w.requested, r.count)
	r.grant.released = false
	w.gr.Granted(&r.grant)
}

// enqueue appends a waiter to the ring, growing it when full.
func (r *Resource) enqueue(w waiter) {
	if r.count == len(r.waiters) {
		grown := make([]waiter, max(4, 2*len(r.waiters)))
		for i := 0; i < r.count; i++ {
			grown[i] = r.waiters[(r.head+i)%len(r.waiters)]
		}
		r.waiters = grown
		r.head = 0
	}
	r.waiters[(r.head+r.count)%len(r.waiters)] = w
	r.count++
}

// dequeue pops the oldest waiter; the vacated slot is zeroed so the
// grantee is collectible.
func (r *Resource) dequeue() waiter {
	w := r.waiters[r.head]
	r.waiters[r.head] = waiter{}
	r.head = (r.head + 1) % len(r.waiters)
	r.count--
	return w
}

// Acquire requests exclusive use. fn is invoked (through the engine, at the
// current instant or later) once the resource is granted.
func (r *Resource) Acquire(fn func(g *Grant)) {
	if fn == nil {
		panic("sim: Acquire with nil callback")
	}
	r.AcquireOp(grantFunc(fn))
}

// AcquireOp is the typed-continuation form of Acquire: gr.Granted fires
// (through the engine) once the resource is granted. A pooled record
// queueing itself this way costs no allocation.
func (r *Resource) AcquireOp(gr Grantee) {
	if gr == nil {
		panic("sim: Acquire with nil callback")
	}
	if !r.busy {
		r.busy = true
		r.busySince = r.eng.Now()
		r.acquisitions++
		r.next = waiter{gr: gr, requested: r.eng.Now()}
		r.eng.ImmediatelyOp(r, 0)
		return
	}
	r.enqueue(waiter{gr: gr, requested: r.eng.Now()})
	if r.count > r.maxQueue {
		r.maxQueue = r.count
	}
	r.emit(trace.KindResourceWait, 0, r.count)
}

// Release ends the grant and hands the resource to the next waiter, if any.
// Releasing twice panics — double release means two simulated activities
// believed they owned the robot at once.
func (g *Grant) Release() {
	if g.released {
		panic("sim: Grant released twice on resource " + g.r.name)
	}
	g.released = true
	r := g.r
	// busySince is the grant instant of the current holder, so the hold
	// time of this ownership period is now − busySince.
	r.busyTotal += r.eng.Now() - r.busySince
	r.emit(trace.KindResourceRelease, r.eng.Now()-r.busySince, r.count)
	if r.count == 0 {
		r.busy = false
		return
	}
	r.next = r.dequeue()
	r.busySince = r.eng.Now()
	r.acquisitions++
	r.eng.ImmediatelyOp(r, 0)
}

// Reset returns the resource to its initial idle state with zeroed
// accounting, keeping the ring buffer's backing array. Pair it with
// Engine.Reset when replaying a fresh run on reused infrastructure.
func (r *Resource) Reset() {
	for i := range r.waiters {
		r.waiters[i] = waiter{}
	}
	r.head, r.count = 0, 0
	r.busy = false
	r.next = waiter{}
	r.grant.released = false
	r.acquisitions = 0
	r.busySince = 0
	r.busyTotal = 0
	r.waitTotal = 0
	r.maxQueue = 0
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters.
func (r *Resource) QueueLen() int { return r.count }

// Stats summarizes utilization over the run so far.
type ResourceStats struct {
	Acquisitions int     // completed Acquire calls, queued or not
	BusyTotal    float64 // total seconds held
	WaitTotal    float64 // total seconds waiters spent queued
	MaxQueue     int     // high-water mark of the waiter queue
}

// Stats returns a snapshot of the resource accounting.
func (r *Resource) Stats() ResourceStats {
	busy := r.busyTotal
	if r.busy {
		busy += r.eng.Now() - r.busySince
	}
	return ResourceStats{
		Acquisitions: r.acquisitions,
		BusyTotal:    busy,
		WaitTotal:    r.waitTotal,
		MaxQueue:     r.maxQueue,
	}
}

// Latch is a countdown latch: Done must be called Count times, after which
// the completion continuation fires. It detects "last drive finished
// serving this request".
type Latch struct {
	remaining int
	fired     bool
	onZero    Op
	zeroTag   uint8
	eng       *Engine // optional, for trace emission only
	name      string
}

// NewLatch returns a latch expecting count completions. count 0 fires
// immediately when Wait is armed.
func NewLatch(count int) *Latch {
	if count < 0 {
		panic("sim: NewLatch with negative count")
	}
	return &Latch{remaining: count}
}

// Reset rearms the latch for count completions with no waiter, keeping any
// Observe attachment. It lets a long-lived owner (one latch per simulated
// system, rather than one per request) reuse the allocation.
func (l *Latch) Reset(count int) {
	if count < 0 {
		panic("sim: Latch.Reset with negative count")
	}
	l.remaining = count
	l.fired = false
	l.onZero = nil
	l.zeroTag = 0
}

// Observe names the latch and attaches it to an engine so its completion
// emits a trace event (kind "latch-open") through the engine's recorder.
// Without Observe — or with tracing disabled — the latch stays silent.
func (l *Latch) Observe(eng *Engine, name string) *Latch {
	l.eng = eng
	l.name = name
	return l
}

// Add increases the expected completion count. It panics if the latch
// already fired — adding after completion is a scheduling bug.
func (l *Latch) Add(n int) {
	if l.fired {
		panic("sim: Latch.Add after completion")
	}
	if n < 0 {
		panic("sim: Latch.Add with negative n")
	}
	l.remaining += n
}

// Wait arms the completion callback. If the count is already zero the
// callback fires synchronously.
func (l *Latch) Wait(fn func()) {
	if fn == nil {
		panic("sim: Latch.Wait with nil callback")
	}
	l.WaitOp(funcOp(fn), 0)
}

// WaitOp is the typed-continuation form of Wait: op.Run(tag) fires —
// synchronously, in engine context — when the count reaches zero, which may
// be during this call if it already has.
func (l *Latch) WaitOp(op Op, tag uint8) {
	if l.onZero != nil {
		panic("sim: Latch.Wait called twice")
	}
	if op == nil {
		panic("sim: Latch.Wait with nil callback")
	}
	l.onZero = op
	l.zeroTag = tag
	l.maybeFire()
}

// Done records one completion.
func (l *Latch) Done() {
	if l.remaining <= 0 {
		panic("sim: Latch.Done called more times than Add'ed")
	}
	l.remaining--
	l.maybeFire()
}

// Remaining returns the outstanding completion count.
func (l *Latch) Remaining() int { return l.remaining }

func (l *Latch) maybeFire() {
	if l.remaining == 0 && l.onZero != nil && !l.fired {
		l.fired = true
		if l.eng != nil && l.eng.rec != nil {
			l.eng.rec.Record(trace.Event{
				T: l.eng.now, Kind: trace.KindLatchOpen,
				Lib: -1, Drive: -1, Tape: -1, Req: -1, Name: l.name,
			})
		}
		l.onZero.Run(l.zeroTag)
	}
}
