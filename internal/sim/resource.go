package sim

import "paralleltape/internal/trace"

// Resource is an exclusive, FIFO-queued simulated resource. The paper's
// robot arm (one per tape library, serializing all mount/unmount traffic in
// that library) maps directly onto it: each tape switch acquires the robot,
// holds it for the cartridge moves, and releases it.
//
// Acquire never blocks the caller; instead the grant callback fires (via the
// engine) once the resource is free, at which point the holder must
// eventually call Release exactly once.
type Resource struct {
	eng   *Engine
	name  string
	busy  bool
	queue []func(g *Grant)

	// accounting
	acquisitions int
	busySince    Time
	busyTotal    float64
	waitTotal    float64
	maxQueue     int
}

// Grant represents one ownership period of a Resource. Release it when the
// simulated work holding the resource finishes.
type Grant struct {
	r        *Resource
	released bool
}

// emit records a contention event when the engine has a trace recorder.
// The guard keeps the disabled path allocation-free.
func (r *Resource) emit(kind trace.Kind, dur float64, queue int) {
	rec := r.eng.rec
	if rec == nil {
		return
	}
	rec.Record(trace.Event{
		T: r.eng.now, Kind: kind, Lib: -1, Drive: -1, Tape: -1, Req: -1,
		Dur: dur, Queue: queue, Name: r.name,
	})
}

// NewResource creates a named resource attached to an engine.
func NewResource(eng *Engine, name string) *Resource {
	if eng == nil {
		panic("sim: NewResource with nil engine")
	}
	return &Resource{eng: eng, name: name}
}

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire requests exclusive use. fn is invoked (through the engine, at the
// current instant or later) once the resource is granted.
func (r *Resource) Acquire(fn func(g *Grant)) {
	if fn == nil {
		panic("sim: Acquire with nil callback")
	}
	requested := r.eng.Now()
	wrapped := func(g *Grant) {
		r.waitTotal += r.eng.Now() - requested
		r.emit(trace.KindResourceGrant, r.eng.Now()-requested, len(r.queue))
		fn(g)
	}
	if !r.busy {
		r.busy = true
		r.busySince = r.eng.Now()
		r.acquisitions++
		r.eng.Immediately(func() { wrapped(&Grant{r: r}) })
		return
	}
	r.queue = append(r.queue, wrapped)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	r.emit(trace.KindResourceWait, 0, len(r.queue))
}

// Release ends the grant and hands the resource to the next waiter, if any.
// Releasing twice panics — double release means two simulated activities
// believed they owned the robot at once.
func (g *Grant) Release() {
	if g.released {
		panic("sim: Grant released twice on resource " + g.r.name)
	}
	g.released = true
	r := g.r
	// busySince is the grant instant of the current holder, so the hold
	// time of this ownership period is now − busySince.
	r.busyTotal += r.eng.Now() - r.busySince
	r.emit(trace.KindResourceRelease, r.eng.Now()-r.busySince, len(r.queue))
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	next := r.queue[0]
	r.queue = r.queue[1:]
	r.busySince = r.eng.Now()
	r.acquisitions++
	r.eng.Immediately(func() { next(&Grant{r: r}) })
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Stats summarizes utilization over the run so far.
type ResourceStats struct {
	Acquisitions int
	BusyTotal    float64 // total seconds held
	WaitTotal    float64 // total seconds waiters spent queued
	MaxQueue     int
}

// Stats returns a snapshot of the resource accounting.
func (r *Resource) Stats() ResourceStats {
	busy := r.busyTotal
	if r.busy {
		busy += r.eng.Now() - r.busySince
	}
	return ResourceStats{
		Acquisitions: r.acquisitions,
		BusyTotal:    busy,
		WaitTotal:    r.waitTotal,
		MaxQueue:     r.maxQueue,
	}
}

// Latch is a countdown latch: Done must be called Count times, after which
// the completion callback fires. It detects "last drive finished serving
// this request".
type Latch struct {
	remaining int
	fired     bool
	onZero    func()
	eng       *Engine // optional, for trace emission only
	name      string
}

// NewLatch returns a latch expecting count completions. count 0 fires
// immediately when Wait is armed.
func NewLatch(count int) *Latch {
	if count < 0 {
		panic("sim: NewLatch with negative count")
	}
	return &Latch{remaining: count}
}

// Observe names the latch and attaches it to an engine so its completion
// emits a trace event (kind "latch-open") through the engine's recorder.
// Without Observe — or with tracing disabled — the latch stays silent.
func (l *Latch) Observe(eng *Engine, name string) *Latch {
	l.eng = eng
	l.name = name
	return l
}

// Add increases the expected completion count. It panics if the latch
// already fired — adding after completion is a scheduling bug.
func (l *Latch) Add(n int) {
	if l.fired {
		panic("sim: Latch.Add after completion")
	}
	if n < 0 {
		panic("sim: Latch.Add with negative n")
	}
	l.remaining += n
}

// Wait arms the completion callback. If the count is already zero the
// callback fires synchronously.
func (l *Latch) Wait(fn func()) {
	if l.onZero != nil {
		panic("sim: Latch.Wait called twice")
	}
	if fn == nil {
		panic("sim: Latch.Wait with nil callback")
	}
	l.onZero = fn
	l.maybeFire()
}

// Done records one completion.
func (l *Latch) Done() {
	if l.remaining <= 0 {
		panic("sim: Latch.Done called more times than Add'ed")
	}
	l.remaining--
	l.maybeFire()
}

// Remaining returns the outstanding completion count.
func (l *Latch) Remaining() int { return l.remaining }

func (l *Latch) maybeFire() {
	if l.remaining == 0 && l.onZero != nil && !l.fired {
		l.fired = true
		if l.eng != nil && l.eng.rec != nil {
			l.eng.rec.Record(trace.Event{
				T: l.eng.now, Kind: trace.KindLatchOpen,
				Lib: -1, Drive: -1, Tape: -1, Req: -1, Name: l.name,
			})
		}
		l.onZero()
	}
}
