package sim

// Process-style modeling on top of the callback engine. The tape simulator
// itself uses callbacks (simple, allocation-light), but extensions often
// read more naturally as sequential processes: a goroutine that sleeps in
// simulated time and acquires resources with blocking calls.
//
// Determinism is preserved by a strict run-to-completion handshake: the
// engine never advances while a process goroutine is runnable, and at most
// one process goroutine runs at any instant. A process therefore behaves
// exactly like a callback chain, written straight-line.

// Proc is the handle a process uses to interact with simulated time. It is
// only valid inside the function passed to Engine.Go.
type Proc struct {
	eng    *Engine
	resume chan struct{}
	yield  chan struct{}
}

// Go starts fn as a simulated process at the current instant. fn runs on
// its own goroutine but in lockstep with the engine: the engine waits
// whenever the process is runnable, and the process waits (via Sleep /
// Acquire) for its next simulated event. fn must block only through the
// Proc methods — blocking on anything else deadlocks the simulation.
func (e *Engine) Go(fn func(p *Proc)) {
	if fn == nil {
		panic("sim: Go with nil process body")
	}
	p := &Proc{eng: e, resume: make(chan struct{}), yield: make(chan struct{})}
	e.Immediately(func() {
		go func() {
			fn(p)
			p.yield <- struct{}{} // final yield: process finished
		}()
		<-p.yield // run the process until its first block (or completion)
	})
}

// block parks the process and hands control back to the engine; the
// returned function is called by an engine event to resume the process and
// wait for its next block.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// wake is the engine-side half: resume the process, then wait until it
// blocks again (or finishes).
func (p *Proc) wake() {
	p.resume <- struct{}{}
	<-p.yield
}

// Run implements Op: the process is its own wake-up event, so Sleep arms a
// typed continuation instead of allocating a method-value closure per call.
func (p *Proc) Run(uint8) { p.wake() }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Sleep suspends the process for d simulated seconds.
func (p *Proc) Sleep(d float64) {
	p.eng.ScheduleOp(d, p, 0)
	p.block()
}

// Acquire blocks the process until the resource is granted and returns the
// grant (release it with Grant.Release, immediately or after more Sleeps).
func (p *Proc) Acquire(r *Resource) *Grant {
	var g *Grant
	r.Acquire(func(grant *Grant) {
		g = grant
		p.wake()
	})
	p.block()
	return g
}

// WaitLatch blocks the process until the latch completes. The latch must
// not already have a waiter. If the latch is already complete the process
// continues immediately.
func (p *Proc) WaitLatch(l *Latch) {
	fired := false
	blocked := false
	l.Wait(func() {
		fired = true
		if blocked {
			// Fired later, from engine context: resume the process.
			p.wake()
		}
	})
	if fired {
		return // fired synchronously while the process was running
	}
	blocked = true
	p.block()
}
