package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEngines checks the basic handoff: engines dispatched with Go
// run to quiescence before Wait returns, across many request cycles.
func TestPoolRunsEngines(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	engines := make([]*Engine, 3)
	fired := make([]int, 3)
	for i := range engines {
		engines[i] = NewEngine()
	}
	for cycle := 0; cycle < 50; cycle++ {
		for i, e := range engines {
			i := i
			e.Schedule(float64(i+1), func() { fired[i]++ })
			p.Go(e)
		}
		p.Wait()
		for i, e := range engines {
			if fired[i] != cycle+1 {
				t.Fatalf("cycle %d: engine %d fired %d events", cycle, i, fired[i])
			}
			if e.Pending() != 0 {
				t.Fatalf("cycle %d: engine %d still has %d pending events after Wait", cycle, i, e.Pending())
			}
		}
	}
}

// TestPoolWaitWithoutWork checks Wait is a no-op when nothing was
// dispatched since the last join.
func TestPoolWaitWithoutWork(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	done := make(chan struct{})
	go func() {
		p.Wait()
		p.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait blocked with no engines in flight")
	}
}

// TestPoolSteadyStateAllocs pins the executor's allocation contract: after
// the first cycle warms the park/wake machinery, a full Go+Wait cycle
// allocates nothing.
func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	e1, e2 := NewEngine(), NewEngine()
	var n atomic.Int64
	tick := func() { n.Add(1) }
	cycle := func() {
		e1.Schedule(1, tick)
		e2.Schedule(1, tick)
		p.Go(e1)
		p.Go(e2)
		p.Wait()
	}
	for i := 0; i < 100; i++ {
		cycle() // warm the engines' event arenas and the channel tokens
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs > 0 {
		t.Fatalf("steady-state Go/Wait cycle allocates %.1f per request, want 0", allocs)
	}
	if n.Load() == 0 {
		t.Fatal("no events ran")
	}
}

// TestPoolGoPastWorkerCountPanics checks the dispatch-contract guard.
func TestPoolGoPastWorkerCountPanics(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.Go(NewEngine())
	defer func() {
		if recover() == nil {
			t.Fatal("second Go before Wait did not panic")
		}
		p.Wait()
	}()
	p.Go(NewEngine())
}

// TestPoolCloseStopsWorkers checks Close terminates every worker
// goroutine and is idempotent.
func TestPoolCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	e := NewEngine()
	ran := false
	e.Schedule(1, func() { ran = true })
	p.Go(e)
	p.Wait()
	if !ran {
		t.Fatal("engine did not run")
	}
	p.Close()
	p.Close() // idempotent
	if !p.Closed() {
		t.Fatal("Closed() false after Close")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines still running after Close: %d > %d",
				runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestPoolConcurrentStress exercises the park/wake protocol under the race
// detector: many short cycles across several workers, with engine work
// touching shared-but-synchronized state.
func TestPoolConcurrentStress(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	engines := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	var total atomic.Int64
	for cycle := 0; cycle < 2000; cycle++ {
		for _, e := range engines {
			e.Schedule(0.5, func() { total.Add(1) })
			p.Go(e)
		}
		p.Wait()
	}
	if got := total.Load(); got != 3*2000 {
		t.Fatalf("ran %d events, want %d", got, 3*2000)
	}
}
