package sim

// exec.go is the persistent engine executor: a fixed set of long-lived
// worker goroutines that run Engine event loops handed to them by a
// single submitter, replacing a goroutine-per-run fork/join. The handoff
// is an atomic epoch bump plus a spin-then-park protocol, so in steady
// state a full dispatch/join cycle performs no heap allocation — the
// property the sharded simulator's 0 allocs/op contract rests on
// (docs/PERFORMANCE.md "Shard scaling").

import (
	"runtime"
	"sync/atomic"
)

// parkSpin is how many epoch loads a parker burns before blocking on its
// channel. The inter-request gap of the simulator's submit loop is a few
// microseconds; this budget covers it on multi-core hosts, so consecutive
// requests hand off without a futex round trip.
const parkSpin = 4096

// spinBudget returns the active spin budget: zero when the runtime owns a
// single P — spinning there only steals the CPU the wake must come from —
// and parkSpin otherwise.
func spinBudget() int {
	if runtime.GOMAXPROCS(0) == 1 {
		return 0
	}
	return parkSpin
}

// parker is a one-owner park/wake cell. One goroutine (the owner) blocks
// in await; any other wakes it with wake. The protocol is the classic
// flag-and-recheck handshake: the owner publishes parked=true and
// re-reads the epoch before blocking, the waker bumps the epoch before
// reading parked — with Go's sequentially consistent atomics every
// interleaving either shows the waker parked=true (it deposits a token)
// or shows the owner the new epoch (it never blocks). Stale tokens left
// by wakes that raced a non-blocking exit are absorbed by the re-check
// loop: every blocking path re-reads its condition after waking.
type parker struct {
	epoch  atomic.Uint32
	parked atomic.Bool
	ch     chan struct{}
}

// newParker returns a ready cell (token channel of capacity one).
func newParker() parker {
	return parker{ch: make(chan struct{}, 1)}
}

// wake advances the epoch and unparks the owner if it is (or is about to
// be) blocked. The buffered non-blocking send makes wake safe to call
// whether or not the owner is parked.
func (p *parker) wake() {
	p.epoch.Add(1)
	if p.parked.Load() {
		select {
		case p.ch <- struct{}{}:
		default:
		}
	}
}

// await blocks until the epoch moves past seen, spinning before parking,
// and returns the epoch observed.
func (p *parker) await(seen uint32) uint32 {
	for i := spinBudget(); i > 0; i-- {
		if e := p.epoch.Load(); e != seen {
			return e
		}
	}
	for {
		if e := p.epoch.Load(); e != seen {
			return e
		}
		p.parked.Store(true)
		if e := p.epoch.Load(); e != seen {
			p.parked.Store(false)
			return e
		}
		<-p.ch
		p.parked.Store(false)
	}
}

// poolWorker is one persistent executor goroutine's shared state: its
// park cell and the engine slot the submitter hands work through. The
// worker clears the slot before running the engine, so between runs a
// parked worker references only pool-internal memory — never the engines
// or the simulator that owns them — which keeps a dropped simulator
// collectible (its GC cleanup can then close the pool).
type poolWorker struct {
	cell parker
	eng  *Engine
}

// Pool runs engines on persistent worker goroutines. One goroutine per
// worker is spawned at NewPool and lives until Close; Go hands an engine
// to the next idle worker, Wait joins on the completion counter. The
// intended shape is one request cycle at a time from a single submitter:
//
//	pool.Go(engA)        // dispatch up to len(workers) engines
//	pool.Go(engB)
//	inline.Run()         // the submitter runs one engine itself
//	pool.Wait()          // join; all handed-off engines have quiesced
//
// Go and Wait must be called from one goroutine at a time, at most
// Workers engines may be in flight between Waits, and Close must not
// overlap an active cycle. In steady state a Go/Wait cycle allocates
// nothing: the wake path is an atomic epoch bump, the park path a reused
// channel token.
type Pool struct {
	workers []*poolWorker
	// pending counts engines handed off and not yet quiesced; the worker
	// that decrements it to zero wakes the submitter.
	pending atomic.Int32
	// done is the submitter's park cell for Wait.
	done parker
	// next is the round-robin dispatch cursor, reset by Wait.
	next   int
	closed atomic.Bool
}

// NewPool starts workers persistent executor goroutines and returns the
// pool. workers must be positive.
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic("sim: NewPool needs at least one worker")
	}
	p := &Pool{done: newParker()}
	for i := 0; i < workers; i++ {
		w := &poolWorker{cell: newParker()}
		p.workers = append(p.workers, w)
		go p.run(w)
	}
	return p
}

// Workers returns the number of persistent worker goroutines.
func (p *Pool) Workers() int { return len(p.workers) }

// Go hands e to the next idle worker, which runs e.Run() concurrently
// with the caller. At most Workers engines may be handed off between
// Waits; Go panics past that (the caller owns the dispatch plan).
func (p *Pool) Go(e *Engine) {
	if p.next >= len(p.workers) {
		panic("sim: Pool.Go exceeds the worker count; Wait first")
	}
	w := p.workers[p.next]
	p.next++
	p.pending.Add(1)
	w.eng = e // published by the epoch bump in wake
	w.cell.wake()
}

// Wait blocks until every engine handed off since the previous Wait has
// run to quiescence, then resets the dispatch cursor. With nothing in
// flight it returns immediately.
func (p *Pool) Wait() {
	for i := spinBudget(); i > 0; i-- {
		if p.pending.Load() == 0 {
			p.next = 0
			return
		}
	}
	for p.pending.Load() != 0 {
		p.done.parked.Store(true)
		if p.pending.Load() != 0 {
			<-p.done.ch
		}
		p.done.parked.Store(false)
	}
	p.next = 0
}

// Close terminates the worker goroutines. It is idempotent and safe to
// call from a finalizer; it must not overlap an active Go/Wait cycle.
// After Close the pool must not be used again.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for _, w := range p.workers {
		w.cell.wake()
	}
}

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool { return p.closed.Load() }

// run is one worker goroutine's loop: park until woken, exit if the pool
// closed, otherwise take the engine out of the slot (clearing it, so a
// parked worker roots no simulator state), run it, and report completion
// — waking the submitter when this was the last outstanding engine.
func (p *Pool) run(w *poolWorker) {
	var seen uint32
	for {
		seen = w.cell.await(seen)
		if p.closed.Load() {
			return
		}
		e := w.eng
		if e == nil {
			continue // stale wake; nothing was handed off
		}
		w.eng = nil
		e.Run()
		if p.pending.Add(-1) == 0 {
			if p.done.parked.Load() {
				select {
				case p.done.ch <- struct{}{}:
				default:
				}
			}
		}
	}
}
