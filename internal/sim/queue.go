package sim

import (
	"math"
	"slices"
)

// The event queue is a ladder queue (after Tang & Wainer): a sorted
// near-future tier ("bottom") consumed by a cursor, one or more lazily
// sorted far-future rungs of equal-width buckets keyed on the event time,
// an unsorted far-future tier ("top"), and the previous 4-ary min-heap as a
// fallback for structural overflow. The common operations are O(1): a push
// lands in an unsorted bucket or appends to the sorted tier's tail, and a
// pop takes the bottom cursor's next slot; sorting happens one bucket at a
// time, only when the bottom drains into that bucket's time range.
//
// Determinism is structural, not incidental: seq is unique, so (at, seq) is
// a total order and any correct min-queue — heap, ladder, or otherwise —
// yields the identical pop sequence (locked by TestLadderMatchesHeapOrder).
// The tiers partition future time contiguously,
//
//	[ .. bottomLim ) → bottom   [ rung coverage.. ) → rungs   [ .. ∞ ) → top
//
// so routing an event is a comparison walk, and bucket membership is
// verified against the multiplication-form boundaries (place) so floating-
// point division on the boundary of a bucket can never file an event into a
// range the pop cursor has already passed.

const (
	// ladderBuckets is the bucket count per rung; a power of two keeps the
	// per-rung footprint predictable.
	ladderBuckets = 32
	// spawnThreshold is the bucket population above which a refill
	// subdivides the bucket into a child rung instead of sorting it.
	spawnThreshold = 48
	// bottomCap bounds the sorted tier while the far-future tiers are
	// empty: a fresh burst that outgrows it is split, keeping sorted
	// inserts cheap (the tail moves to the unsorted top in one pass).
	bottomCap = 64
	// maxRungs bounds the subdivision depth; a bucket that would exceed it
	// falls back to the 4-ary heap.
	maxRungs = 6
)

// event is one pending continuation. The engine's sequence number and the
// continuation's stage tag share one word — key = seq<<8 | tag — which
// keeps the struct at 32 bytes (one pointer pair, one cache line for two
// events) and makes the (at, seq) comparison a single integer compare: seq
// is monotone, so ordering by key is ordering by seq.
type event struct {
	at  Time
	key uint64 // seq<<8 | tag; seq is the tie-break for equal times
	op  Op
}

// tag returns the continuation stage tag the event was scheduled under.
func (e *event) tag() uint8 { return uint8(e.key) }

// before reports whether e fires before o under the (at, seq) contract.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.key < o.key
}

// cmpEvent is the (at, seq) total order as a sort comparator.
func cmpEvent(a, b event) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.key < b.key {
		return -1
	}
	return 1 // seq is unique, equality cannot happen
}

// rung is one lazily-sorted ladder tier: ladderBuckets equal-width buckets
// of unsorted events covering [origin, end). cur is the first unconsumed
// bucket; the refill path has already drained everything below it.
type rung struct {
	origin  Time
	end     Time
	width   Time
	cur     int
	count   int
	buckets [ladderBuckets][]event
}

// curStart returns the lower bound of the first unconsumed bucket, in the
// same multiplication form place uses, so routing and binning agree.
func (r *rung) curStart() Time { return r.origin + Time(r.cur)*r.width }

// bucketEnd returns bucket i's exclusive upper bound. The last bucket ends
// at the rung's explicit end, which may exceed origin+ladderBuckets·width
// (clamped binning files boundary events there).
func (r *rung) bucketEnd(i int) Time {
	if i == ladderBuckets-1 {
		return r.end
	}
	return r.origin + Time(i+1)*r.width
}

// place files an event into its bucket. The division gives the candidate
// index; the two adjustment loops verify it against the multiplication-form
// boundaries, so an event exactly on a bucket edge lands consistently with
// curStart/bucketEnd no matter how the division rounded. low is the
// smallest admissible index (the consumption cursor for live inserts, 0
// when populating a fresh rung).
func (r *rung) place(e event, low int) {
	idx := int((e.at - r.origin) / r.width)
	if idx < low {
		idx = low
	}
	if idx > ladderBuckets-1 {
		idx = ladderBuckets - 1
	}
	for idx > low && e.at < r.origin+Time(idx)*r.width {
		idx--
	}
	for idx < ladderBuckets-1 && e.at >= r.origin+Time(idx+1)*r.width {
		idx++
	}
	r.buckets[idx] = append(r.buckets[idx], e)
	r.count++
}

// ladderQueue is the engine's pending-event container. The zero value is
// ready to use; all tiers keep their backing arrays across pops and Reset,
// so steady-state operation at or below the high-water mark allocates
// nothing.
type ladderQueue struct {
	size int // events queued across all tiers

	// bottom is the sorted near-future tier, ascending by (at, seq),
	// consumed at bhead. It holds every queued event with at < bottomLim;
	// bottomLim is +Inf when the rungs and top are empty (then bottom is
	// the whole queue).
	bottom    []event
	bhead     int
	bottomLim Time
	primed    bool // bottomLim initialized to +Inf

	// rungs are ordered by coverage, earliest first; rungs[0] is being
	// consumed. Children spawned by subdividing a bucket are pushed on the
	// front. Retired rungs park in rungPool so their bucket arrays are
	// reused.
	rungs    []*rung
	rungPool []*rung

	// top is the unsorted far-future tier: everything past the last rung's
	// coverage. topMin/topMax (valid while top is non-empty) size the rung
	// it is scattered into when the nearer tiers drain.
	top    []event
	topMin Time
	topMax Time

	// heap is the 4-ary fallback: it absorbs buckets that are too popular
	// to sort but too narrow (or too deep) to subdivide — equal-time
	// bursts, pathological clustering. Pop compares its minimum against
	// the bottom cursor, so fallback events interleave correctly.
	heap eventHeap
}

// push files an event by time tier.
func (q *ladderQueue) push(e event) {
	if !q.primed {
		q.primed = true
		q.bottomLim = math.Inf(1)
	}
	q.size++
	if e.at < q.bottomLim {
		q.pushBottom(e)
		return
	}
	for _, r := range q.rungs {
		if e.at < r.end {
			r.place(e, r.cur)
			return
		}
	}
	if len(q.top) == 0 {
		q.topMin, q.topMax = e.at, e.at
	} else if e.at < q.topMin {
		q.topMin = e.at
	} else if e.at > q.topMax {
		q.topMax = e.at
	}
	q.top = append(q.top, e)
}

// pushBottom inserts into the sorted tier. The tail append covers monotone
// schedules and same-instant bursts (a new event always has the largest
// seq); everything else binary-searches bottom[bhead:] (insertBottom).
func (q *ladderQueue) pushBottom(e event) {
	b := q.bottom
	if n := len(b); n == q.bhead || b[n-1].before(&e) {
		q.bottom = append(b, e)
	} else {
		q.insertBottom(e)
	}
	if len(q.bottom)-q.bhead > bottomCap && math.IsInf(q.bottomLim, 1) {
		q.splitBottom()
	}
}

// insertBottom is pushBottom's out-of-order path: binary-search the sorted
// tier, then shift whichever side of the insertion point is shorter. Pops
// leave zeroed slots behind the cursor, so when the head side is shorter —
// in particular for an Immediately event, which lands exactly at the
// cursor — the head half slides one slot left into reclaimed space: the
// grant-dispatch pattern (schedule at now, fire, repeat) costs O(1) instead
// of shifting the whole pending tail on every push.
func (q *ladderQueue) insertBottom(e event) {
	b := q.bottom
	lo, hi := q.bhead, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].before(&e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if h := q.bhead; h > 0 && lo-h <= len(b)-lo {
		copy(b[h-1:lo-1], b[h:lo])
		b[lo-1] = e
		q.bhead = h - 1
		return
	}
	b = append(b, event{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	q.bottom = b
}

// splitBottom caps a fresh burst: while bottom is the whole queue, move its
// far half to the unsorted top so further inserts stop paying the sorted-
// insert memmove. The cut must sit on an at boundary (equal-time events
// stay together with their tier); a single-instant bottom is left alone —
// its inserts are tail appends anyway.
func (q *ladderQueue) splitBottom() {
	s := q.bottom[q.bhead:]
	cut := len(s) / 2
	for cut < len(s) && s[cut].at == s[cut-1].at {
		cut++
	}
	if cut == len(s) {
		for cut = len(s) / 2; cut > 1 && s[cut].at == s[cut-1].at; cut-- {
		}
		if s[cut].at == s[cut-1].at {
			return
		}
	}
	moved := s[cut:]
	q.top = append(q.top[:0], moved...)
	q.topMin = moved[0].at
	q.topMax = moved[len(moved)-1].at
	q.bottomLim = moved[0].at
	for i := range moved {
		moved[i] = event{}
	}
	q.bottom = q.bottom[:q.bhead+cut]
}

// settle restores the pop invariant — the globally minimal event is at the
// bottom cursor or the fallback heap's root — by refilling the bottom from
// the rungs and top until it has an event or only the heap remains. The
// wrapper is a single compare so the common (bottom occupied) case inlines
// into pop and minAt.
func (q *ladderQueue) settle() {
	if q.bhead >= len(q.bottom) {
		q.refill()
	}
}

// refill is settle's slow path.
func (q *ladderQueue) refill() {
	for q.bhead >= len(q.bottom) {
		q.bhead = 0
		q.bottom = q.bottom[:0]
		if len(q.rungs) > 0 {
			q.refillFromRung()
			continue
		}
		if len(q.top) > 0 {
			q.scatterTop()
			continue
		}
		q.bottomLim = math.Inf(1)
		return
	}
}

// refillFromRung advances the first rung one step: retire it if exhausted,
// subdivide or spill an oversized bucket, or sort the next bucket into the
// bottom. settle loops until the bottom has an event.
func (q *ladderQueue) refillFromRung() {
	r := q.rungs[0]
	for r.cur < ladderBuckets && len(r.buckets[r.cur]) == 0 {
		r.cur++
	}
	if r.cur == ladderBuckets {
		q.retireRung()
		if len(q.rungs) > 0 {
			q.bottomLim = q.rungs[0].curStart()
		}
		return
	}
	b := r.buckets[r.cur]
	bs, be := r.curStart(), r.bucketEnd(r.cur)
	if len(b) > spawnThreshold {
		if len(q.rungs) < maxRungs && bs+(be-bs)/ladderBuckets > bs {
			// Subdivide: the bucket becomes a child rung consumed before
			// the remainder of this one.
			child := q.newRung()
			child.origin, child.end = bs, be
			child.width = (be - bs) / ladderBuckets
			for i := range b {
				child.place(b[i], 0)
				b[i] = event{}
			}
			r.count -= child.count
			r.buckets[r.cur] = b[:0]
			r.cur++
			q.rungs = append(q.rungs, nil)
			copy(q.rungs[1:], q.rungs)
			q.rungs[0] = child
			q.bottomLim = bs
			return
		}
		// Too deep or too narrow to subdivide (an equal-time burst has
		// zero usable width): overflow to the 4-ary heap.
		for i := range b {
			q.heap.push(b[i])
			b[i] = event{}
		}
		r.count -= len(b)
		r.buckets[r.cur] = b[:0]
		r.cur++
		q.bottomLim = be
		return
	}
	q.bottom = append(q.bottom, b...)
	slices.SortFunc(q.bottom, cmpEvent)
	for i := range b {
		b[i] = event{}
	}
	r.count -= len(b)
	r.buckets[r.cur] = b[:0]
	r.cur++
	q.bottomLim = be
}

// scatterTop turns the unsorted far-future tier into a fresh rung sized to
// its time span. A (near-)zero span cannot be bucketed — the whole tier is
// one instant — so it sorts straight into the bottom.
func (q *ladderQueue) scatterTop() {
	width := (q.topMax - q.topMin) / ladderBuckets
	if !(q.topMin+width > q.topMin) {
		q.bottom = append(q.bottom, q.top...)
		slices.SortFunc(q.bottom, cmpEvent)
		for i := range q.top {
			q.top[i] = event{}
		}
		q.top = q.top[:0]
		q.bottomLim = math.Inf(1)
		return
	}
	r := q.newRung()
	r.origin = q.topMin
	r.width = width
	r.end = q.topMax + width // strictly past topMax, so every event fits
	for i := range q.top {
		r.place(q.top[i], 0)
		q.top[i] = event{}
	}
	q.top = q.top[:0]
	q.rungs = append(q.rungs, nil)
	copy(q.rungs[1:], q.rungs)
	q.rungs[0] = r
	q.bottomLim = r.origin
}

// newRung takes a rung from the pool or allocates one (only until the
// run's high-water depth is reached).
func (q *ladderQueue) newRung() *rung {
	if n := len(q.rungPool); n > 0 {
		r := q.rungPool[n-1]
		q.rungPool[n-1] = nil
		q.rungPool = q.rungPool[:n-1]
		return r
	}
	return &rung{}
}

// retireRung parks the exhausted first rung in the pool, keeping its bucket
// arrays for reuse.
func (q *ladderQueue) retireRung() {
	r := q.rungs[0]
	copy(q.rungs, q.rungs[1:])
	q.rungs[len(q.rungs)-1] = nil
	q.rungs = q.rungs[:len(q.rungs)-1]
	r.cur, r.count = 0, 0
	r.origin, r.end, r.width = 0, 0, 0
	q.rungPool = append(q.rungPool, r)
}

// pop removes and returns the minimum event under (at, seq). The vacated
// slot is zeroed so the popped continuation (and everything it references)
// becomes collectible immediately.
func (q *ladderQueue) pop() event {
	q.settle()
	if q.heap.len() > 0 &&
		(q.bhead >= len(q.bottom) || q.heap.ev[0].before(&q.bottom[q.bhead])) {
		e := q.heap.pop()
		if q.size--; q.size == 0 {
			q.rest()
		}
		return e
	}
	e := q.bottom[q.bhead]
	q.bottom[q.bhead] = event{}
	q.bhead++
	if q.size--; q.size == 0 {
		q.rest()
	}
	return e
}

// minAt returns the earliest queued event time without popping. The queue
// must be non-empty.
func (q *ladderQueue) minAt() Time {
	q.settle()
	m := math.Inf(1)
	if q.bhead < len(q.bottom) {
		m = q.bottom[q.bhead].at
	}
	if q.heap.len() > 0 && q.heap.ev[0].at < m {
		m = q.heap.ev[0].at
	}
	return m
}

// rest resets the tier boundaries when the queue fully drains, so the
// next burst builds in the sorted bottom from scratch — the steady state of
// a drain-between-requests workload stays rung-free and O(1) per event.
func (q *ladderQueue) rest() {
	q.bottom = q.bottom[:0] // slots were zeroed as they were consumed
	q.bhead = 0
	q.bottomLim = math.Inf(1)
	for len(q.rungs) > 0 { // empty by count, retire for reuse
		q.retireRung()
	}
}

// reset empties the queue, zeroing every occupied slot so pending
// continuations are collectible, while keeping all backing arrays (bottom,
// buckets, top, heap, rung pool) for reuse.
func (q *ladderQueue) reset() {
	for i := range q.bottom {
		q.bottom[i] = event{}
	}
	q.bottom = q.bottom[:0]
	q.bhead = 0
	for _, r := range q.rungs {
		for i := range r.buckets {
			b := r.buckets[i]
			for j := range b {
				b[j] = event{}
			}
			r.buckets[i] = b[:0]
		}
	}
	for len(q.rungs) > 0 {
		q.retireRung()
	}
	for i := range q.top {
		q.top[i] = event{}
	}
	q.top = q.top[:0]
	q.heap.reset()
	q.size = 0
	q.primed = true
	q.bottomLim = math.Inf(1)
}

// rungDepth returns the active rung count (diagnostics and tests).
func (q *ladderQueue) rungDepth() int { return len(q.rungs) }

// eventHeap is the concrete-typed 4-ary min-heap ordered by (at, seq) over
// a reusable backing array — the previous generation's whole event queue,
// retained as the ladder's overflow fallback. A 4-ary layout halves the
// tree depth of a binary heap and keeps sibling comparisons within one or
// two cache lines; seq is unique, so the order is total and independent of
// heap shape.
type eventHeap struct {
	ev []event
}

func (q *eventHeap) len() int { return len(q.ev) }

// push inserts an event, growing only when the backing array is full.
func (q *eventHeap) push(e event) {
	q.ev = append(q.ev, e)
	// Sift up.
	s := q.ev
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s[i].before(&s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the popped continuation becomes collectible immediately rather
// than being pinned by the backing array.
func (q *eventHeap) pop() event {
	s := q.ev
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the op so fired continuations are collectible
	s = s[:n]
	q.ev = s
	// Sift down.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if s[j].before(&s[best]) {
				best = j
			}
		}
		if !s[best].before(&s[i]) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// reset empties the heap, zeroing occupied slots so pending continuations
// are collectible, while keeping the backing array for reuse.
func (q *eventHeap) reset() {
	s := q.ev
	for i := range s {
		s[i] = event{}
	}
	q.ev = s[:0]
}
