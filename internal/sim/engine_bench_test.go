package sim

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// BenchmarkSchedule measures the bare Schedule→dispatch cycle: one event
// pushed and fired per op. This is the kernel's innermost loop; it must be
// allocation-free in steady state (see TestScheduleSteadyStateAllocs).
func BenchmarkSchedule(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, fn)
		eng.Run()
	}
}

// BenchmarkScheduleSkewed interleaves near and far deadlines so the heap
// holds a standing population of far events while near ones churn through —
// the shape a busy multi-library simulation produces (imminent transfers
// mixed with distant switch completions). Sift depth and cache behavior
// differ markedly from the FIFO-ish pattern of BenchmarkSchedule.
func BenchmarkScheduleSkewed(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	delays := [...]float64{0.001, 1800, 0.01, 700, 0.1, 2400, 1, 300}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(delays[i%len(delays)], fn)
		if i%256 == 255 {
			// Drain everything scheduled so far (max delay < 4000) so the
			// heap's high-water mark stays bounded and steady state is
			// allocation-free.
			eng.RunUntil(eng.Now() + 4000)
		}
	}
	eng.Run()
}

// BenchmarkScheduleChurn keeps a standing population migrating between the
// ladder's tiers: every op schedules a near event (sorted-bottom churn) and
// a far event (rung/top population), then drains one event, so far events
// continually migrate top → rung → bottom while near ones cut through the
// cursor. This is the rung-refill stress the skewed benchmark's periodic
// full drains do not produce; tracked as engine-schedule-churn.
func BenchmarkScheduleChurn(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	far := [...]float64{30000, 1200, 90000, 400, 7000, 250000, 2600, 45000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(float64(i%13)*0.25, fn)
		eng.Schedule(far[i%len(far)], fn)
		if i%64 == 63 {
			// Drain the near tier; far events stay standing in the rungs.
			eng.RunUntil(eng.Now() + 30)
		}
		if i%1024 == 1023 {
			// Advance deep enough to pull standing rungs through refill
			// (all but the quarter-million-second stragglers).
			eng.RunUntil(eng.Now() + 100000)
		}
	}
	eng.Run()
}

// TestScheduleSteadyStateAllocs pins the kernel's allocation contract:
// once the event queue's backing array has grown to the run's high-water
// mark, Schedule plus dispatch allocate nothing.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm the queue past the steady-state population so the backing array
	// has its final capacity.
	for i := 0; i < 128; i++ {
		eng.Schedule(float64(i%7), fn)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			eng.Schedule(float64(i%7), fn)
		}
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+dispatch steady state allocates %.1f per run, want 0", allocs)
	}
}

// TestScheduleSteadyStateAllocsLadder pins the allocation contract at the
// ladder queue's structural high-water mark: a standing far-future
// population large enough to have built rungs (and split the bottom) plus
// near-future churn through the sorted tier and the cursor fast path. Once
// every tier's arrays have grown, Schedule plus dispatch allocate nothing.
func TestScheduleSteadyStateAllocsLadder(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	delays := [...]float64{0, 0.001, 1800, 0.01, 700, 0.1, 2400, 1, 300, 90000}
	churn := func() {
		for i := 0; i < 512; i++ {
			eng.Schedule(delays[i%len(delays)], fn)
			if i%128 == 127 {
				eng.RunUntil(eng.Now() + 4000) // drain near, keep far standing
			}
		}
		eng.RunUntil(eng.Now() + 200000) // drain through the rungs and top
	}
	churn() // grow every tier to its high-water mark
	if allocs := testing.AllocsPerRun(20, churn); allocs != 0 {
		t.Fatalf("ladder steady state allocates %.1f per run, want 0", allocs)
	}
}

// TestRungGrowthAllocBudget puts an explicit budget on first-contact rung
// growth: draining a fresh far-future population through tiers that have
// never grown may allocate (rung structs, bucket arrays, tier backing), but
// within a fixed budget — and a second pass over recycled rungs must
// allocate nothing.
func TestRungGrowthAllocBudget(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	r := rand.New(rand.NewSource(1))
	fill := func() {
		for i := 0; i < 600; i++ {
			eng.Schedule(r.Float64()*100000, fn)
		}
	}
	allocs := testing.AllocsPerRun(1, func() { fill(); eng.Run() })
	// One rung is 32 bucket slices plus the rung struct and pool/tier
	// bookkeeping; a few levels may spawn while the population drains.
	// 256 bounds the whole first-growth transient with slack for the
	// testing harness itself, while still catching a per-event leak (600
	// events would show up as ≥ 600).
	if allocs > 256 {
		t.Fatalf("first-contact rung growth allocates %.1f, budget 256", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { fill(); eng.Run() }); allocs != 0 {
		t.Fatalf("recycled rungs allocate %.1f per run, want 0", allocs)
	}
}

// TestResetSteadyStateAllocs verifies Engine.Reset keeps the queue's
// backing array: a reset-and-refill cycle at the same population allocates
// nothing.
func TestResetSteadyStateAllocs(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.Schedule(float64(i), fn)
	}
	allocs := testing.AllocsPerRun(50, func() {
		eng.Reset()
		for i := 0; i < 64; i++ {
			eng.Schedule(float64(i), fn)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset+refill allocates %.1f per run, want 0", allocs)
	}
}

// TestFiredEventsCollectible verifies the queue does not pin fired
// callbacks: pop zeroes the vacated slot, so a callback's captures become
// garbage as soon as it has run, even while the engine (and its reusable
// backing array) stays alive.
func TestFiredEventsCollectible(t *testing.T) {
	eng := NewEngine()
	type payload struct{ buf [4096]byte }
	collected := make(chan struct{})
	obj := &payload{}
	// The finalizer runs on the runtime's finalizer goroutine; signal
	// through a channel so the handoff is race-free.
	runtime.SetFinalizer(obj, func(*payload) { close(collected) })
	eng.Schedule(0, func() { _ = obj.buf[0] })
	eng.Run()
	obj = nil
	done := false
	for i := 0; i < 20 && !done; i++ {
		runtime.GC()
		select {
		case <-collected:
			done = true
		case <-time.After(10 * time.Millisecond):
		}
	}
	if !done {
		t.Fatal("callback captures still reachable after the event fired; the queue is pinning popped events")
	}
	// Keep the engine alive past the GC loop so collection can only be
	// explained by the slot-zeroing, not by the whole queue dying.
	if eng.Pending() != 0 {
		t.Fatalf("queue not empty: %d", eng.Pending())
	}
}
