package sim

// Typed continuation dispatch. The event queue stores an Op plus a one-byte
// stage tag instead of a bare func(): long-lived continuation records (the
// simulator's pooled serve and switch ops, resource grant dispatch, latch
// opens, fault-retry and repair wakeups) implement Op once, select their
// stage with a dense tag switch, and schedule themselves with ScheduleOp —
// no closure is captured and dispatch is one interface call into the
// record's jump table. Plain callbacks still schedule through
// Schedule/At/Immediately: funcOp is pointer-shaped, so wrapping a func()
// in the Op interface does not allocate, which keeps the closure API as a
// zero-cost escape hatch for cold paths and tests.

// Op is a schedulable continuation record. The engine invokes Run with the
// tag the event was scheduled under; a record with several stages
// dispatches on the tag (a dense switch compiles to a jump table), a
// single-stage record ignores it.
type Op interface {
	// Run executes the continuation stage selected by tag. It is called by
	// the engine with the clock already advanced to the event's time.
	Run(tag uint8)
}

// funcOp adapts a plain callback to Op; the tag is ignored. func values are
// pointer-shaped, so converting one to Op allocates nothing.
type funcOp func()

// Run implements Op by calling the wrapped callback.
func (f funcOp) Run(uint8) { f() }
