package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("final time = %v, want 5", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("fired %d events, want 5", len(order))
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() {
			times = append(times, e.Now())
			e.Schedule(3, func() { times = append(times, e.Now()) })
		})
	})
	e.Run()
	want := []float64{1, 3, 6}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestEngineImmediatelyOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(0, func() { order = append(order, "a") })
	e.Immediately(func() { order = append(order, "b") })
	e.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v", order)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	NewEngine().At(0, nil)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []float64{1, 2, 3, 4} {
		e.Schedule(d, func() { fired++ })
	}
	drained := e.RunUntil(2.5)
	if drained {
		t.Error("RunUntil(2.5) claimed drained")
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Now() != 2.5 {
		t.Errorf("Now = %v, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	if !e.RunUntil(100) {
		t.Error("second RunUntil should drain")
	}
	if fired != 4 {
		t.Errorf("fired = %d, want 4", fired)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Errorf("Now = %v, want 42", e.Now())
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("event limit did not panic")
		}
	}()
	e.Run()
}

// TestEngineEventLimitRunUntil covers the runaway guard on the bounded
// run loop, which checks the limit independently of Run.
func TestEngineEventLimitRunUntil(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("event limit did not panic in RunUntil")
		}
	}()
	e.RunUntil(1e9)
}

// TestEngineRunUntilUnderLimit pins the guard's boundary: exactly limit
// events is fine, and a bounded run that stops at its deadline leaves the
// remaining events (and budget) intact.
func TestEngineRunUntilUnderLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(3)
	for i := 0; i < 3; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Schedule(100, func() {})
	if e.RunUntil(50) {
		t.Error("RunUntil(50) reported a drained queue with an event at t=100")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineSteps(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Errorf("Steps = %d, want 7", e.Steps())
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var trace []float64
		var recur func(depth int)
		recur = func(depth int) {
			trace = append(trace, e.Now())
			if depth == 0 {
				return
			}
			e.Schedule(0.5, func() { recur(depth - 1) })
			e.Schedule(1.5, func() { recur(depth - 1) })
		}
		e.Schedule(0, func() { recur(6) })
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineQuickSortedFiring(t *testing.T) {
	// Property: however delays are chosen, firing order is non-decreasing.
	f := func(raw []uint16) bool {
		e := NewEngine()
		var seen []float64
		for _, r := range raw {
			d := float64(r) / 100
			e.Schedule(d, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(seen) && len(seen) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
