package sim

import (
	"fmt"
	"testing"
)

func TestProcSleepSequence(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Go(func(p *Proc) {
		log = append(log, fmt.Sprintf("start@%v", p.Now()))
		p.Sleep(5)
		log = append(log, fmt.Sprintf("mid@%v", p.Now()))
		p.Sleep(2.5)
		log = append(log, fmt.Sprintf("end@%v", p.Now()))
	})
	e.Run()
	want := []string{"start@0", "mid@5", "end@7.5"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

func TestProcInterleavesDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		e.Go(func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(2)
				log = append(log, fmt.Sprintf("A%v", p.Now()))
			}
		})
		e.Go(func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(3)
				log = append(log, fmt.Sprintf("B%v", p.Now()))
			}
		})
		e.Run()
		return log
	}
	a := run()
	// At the t=6 tie, B's wake event was scheduled first (at t=3, vs A's
	// at t=4), so B runs first — FIFO among same-instant events.
	want := []string{"A2", "B3", "A4", "B6", "A6"}
	if len(a) != len(want) {
		t.Fatalf("log = %v", a)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("log = %v, want %v", a, want)
		}
	}
	// Bit-identical across repetitions.
	for trial := 0; trial < 20; trial++ {
		b := run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", a, b)
			}
		}
	}
}

func TestProcMixedWithCallbacks(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Schedule(1, func() { log = append(log, "cb1") })
	e.Go(func(p *Proc) {
		p.Sleep(0.5)
		log = append(log, "proc0.5")
		p.Sleep(1)
		log = append(log, "proc1.5")
	})
	e.Schedule(2, func() { log = append(log, "cb2") })
	e.Run()
	want := []string{"proc0.5", "cb1", "proc1.5", "cb2"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

func TestProcAcquireResource(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "robot")
	var log []string
	worker := func(name string, hold float64) func(*Proc) {
		return func(p *Proc) {
			g := p.Acquire(r)
			log = append(log, fmt.Sprintf("%s-acq@%v", name, p.Now()))
			p.Sleep(hold)
			g.Release()
			log = append(log, fmt.Sprintf("%s-rel@%v", name, p.Now()))
		}
	}
	e.Go(worker("a", 4))
	e.Go(worker("b", 2))
	e.Run()
	want := []string{"a-acq@0", "a-rel@4", "b-acq@4", "b-rel@6"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

func TestProcWaitLatch(t *testing.T) {
	e := NewEngine()
	l := NewLatch(2)
	var doneAt float64 = -1
	e.Go(func(p *Proc) {
		p.WaitLatch(l)
		doneAt = p.Now()
	})
	e.Schedule(3, l.Done)
	e.Schedule(7, l.Done)
	e.Run()
	if doneAt != 7 {
		t.Errorf("latch released process at %v, want 7", doneAt)
	}
}

func TestProcWaitLatchAlreadyFired(t *testing.T) {
	e := NewEngine()
	l := NewLatch(0)
	reached := false
	e.Go(func(p *Proc) {
		p.WaitLatch(l)
		reached = true
	})
	e.Run()
	if !reached {
		t.Error("process stuck on completed latch")
	}
}

func TestProcNilBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil process body accepted")
		}
	}()
	NewEngine().Go(nil)
}

// TestProcPipeline models a two-stage pipeline (fetch robot → stream) as
// processes, the style extensions can use instead of callbacks.
func TestProcPipeline(t *testing.T) {
	e := NewEngine()
	robot := NewResource(e, "robot")
	finished := make([]float64, 0, 3)
	for i := 0; i < 3; i++ {
		e.Go(func(p *Proc) {
			g := p.Acquire(robot)
			p.Sleep(7.6) // fetch
			g.Release()
			p.Sleep(19)  // load
			p.Sleep(100) // stream
			finished = append(finished, p.Now())
		})
	}
	e.Run()
	want := []float64{126.6, 134.2, 141.8}
	if len(finished) != 3 {
		t.Fatalf("finished = %v", finished)
	}
	for i := range want {
		if diff := finished[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("finished[%d] = %v, want %v", i, finished[i], want[i])
		}
	}
}

// ExampleEngine_Go demonstrates process-style simulation.
func ExampleEngine_Go() {
	e := NewEngine()
	drive := NewResource(e, "drive")
	for i := 1; i <= 2; i++ {
		id := i
		e.Go(func(p *Proc) {
			g := p.Acquire(drive)
			p.Sleep(10) // stream one object
			g.Release()
			fmt.Printf("job %d done at t=%v\n", id, p.Now())
		})
	}
	e.Run()
	// Output:
	// job 1 done at t=10
	// job 2 done at t=20
}
