package sim

import (
	"testing"
)

func TestResourceExclusive(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "robot")
	var order []string
	// Holder 1 takes the resource for 10s; holder 2 requests at t=1 and
	// must wait until t=10.
	e.Schedule(0, func() {
		r.Acquire(func(g *Grant) {
			order = append(order, "a-acquired")
			e.Schedule(10, func() {
				order = append(order, "a-release")
				g.Release()
			})
		})
	})
	e.Schedule(1, func() {
		r.Acquire(func(g *Grant) {
			if e.Now() != 10 {
				t.Errorf("second grant at t=%v, want 10", e.Now())
			}
			order = append(order, "b-acquired")
			g.Release()
		})
	})
	e.Run()
	want := []string{"a-acquired", "a-release", "b-acquired"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "robot")
	var served []int
	e.Schedule(0, func() {
		r.Acquire(func(g *Grant) {
			e.Schedule(5, func() { g.Release() })
		})
	})
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(float64(i)+0.1, func() {
			r.Acquire(func(g *Grant) {
				served = append(served, i)
				e.Schedule(1, func() { g.Release() })
			})
		})
	}
	e.Run()
	for i, v := range served {
		if v != i {
			t.Fatalf("service order %v not FIFO", served)
		}
	}
}

func TestResourceImmediateWhenFree(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "robot")
	granted := -1.0
	e.Schedule(3, func() {
		r.Acquire(func(g *Grant) {
			granted = e.Now()
			g.Release()
		})
	})
	e.Run()
	if granted != 3 {
		t.Errorf("grant at t=%v, want 3 (no artificial delay)", granted)
	}
}

func TestResourceDoubleReleasePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "robot")
	e.Schedule(0, func() {
		r.Acquire(func(g *Grant) {
			g.Release()
			defer func() {
				if recover() == nil {
					t.Error("double release did not panic")
				}
			}()
			g.Release()
		})
	})
	e.Run()
}

func TestResourceStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "robot")
	// Two holders, 10s each, second queues at t=0 and waits 10s.
	for i := 0; i < 2; i++ {
		e.Schedule(0, func() {
			r.Acquire(func(g *Grant) {
				e.Schedule(10, func() { g.Release() })
			})
		})
	}
	e.Run()
	s := r.Stats()
	if s.Acquisitions != 2 {
		t.Errorf("Acquisitions = %d, want 2", s.Acquisitions)
	}
	if s.BusyTotal != 20 {
		t.Errorf("BusyTotal = %v, want 20", s.BusyTotal)
	}
	if s.WaitTotal != 10 {
		t.Errorf("WaitTotal = %v, want 10", s.WaitTotal)
	}
	if s.MaxQueue != 1 {
		t.Errorf("MaxQueue = %d, want 1", s.MaxQueue)
	}
}

func TestResourceBusyAndQueueLen(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "robot")
	if r.Busy() {
		t.Error("fresh resource busy")
	}
	e.Schedule(0, func() {
		r.Acquire(func(g *Grant) { e.Schedule(5, g.Release) })
		r.Acquire(func(g *Grant) { g.Release() })
		r.Acquire(func(g *Grant) { g.Release() })
	})
	e.Schedule(1, func() {
		if !r.Busy() {
			t.Error("resource not busy at t=1")
		}
		if r.QueueLen() != 2 {
			t.Errorf("QueueLen = %d, want 2", r.QueueLen())
		}
	})
	e.Run()
	if r.Busy() {
		t.Error("resource busy after drain")
	}
}

func TestResourceNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewResource(nil) did not panic")
		}
	}()
	NewResource(nil, "x")
}

func TestLatchFiresAtZero(t *testing.T) {
	e := NewEngine()
	l := NewLatch(3)
	firedAt := -1.0
	l.Wait(func() { firedAt = e.Now() })
	for _, d := range []float64{2, 4, 9} {
		e.Schedule(d, l.Done)
	}
	e.Run()
	if firedAt != 9 {
		t.Errorf("latch fired at %v, want 9", firedAt)
	}
}

func TestLatchZeroCountFiresOnWait(t *testing.T) {
	fired := false
	NewLatch(0).Wait(func() { fired = true })
	if !fired {
		t.Error("zero-count latch did not fire on Wait")
	}
}

func TestLatchAdd(t *testing.T) {
	l := NewLatch(1)
	l.Add(2)
	fired := false
	l.Wait(func() { fired = true })
	l.Done()
	l.Done()
	if fired {
		t.Error("latch fired early")
	}
	l.Done()
	if !fired {
		t.Error("latch never fired")
	}
	if l.Remaining() != 0 {
		t.Errorf("Remaining = %d", l.Remaining())
	}
}

func TestLatchOverdonePanics(t *testing.T) {
	l := NewLatch(1)
	l.Done()
	defer func() {
		if recover() == nil {
			t.Error("extra Done did not panic")
		}
	}()
	l.Done()
}

func TestLatchDoubleWaitPanics(t *testing.T) {
	l := NewLatch(1)
	l.Wait(func() {})
	defer func() {
		if recover() == nil {
			t.Error("double Wait did not panic")
		}
	}()
	l.Wait(func() {})
}

func TestLatchAddAfterFirePanics(t *testing.T) {
	l := NewLatch(0)
	l.Wait(func() {})
	defer func() {
		if recover() == nil {
			t.Error("Add after fire did not panic")
		}
	}()
	l.Add(1)
}

// TestRobotScenario models the paper's core contention pattern: three tape
// switches contending for one robot; each needs the robot for 2×7.6s of
// cartridge moves; switches requested simultaneously serialize.
func TestRobotScenario(t *testing.T) {
	e := NewEngine()
	robot := NewResource(e, "robot")
	const moveTime = 7.6
	var finishTimes []float64
	for i := 0; i < 3; i++ {
		e.Schedule(0, func() {
			robot.Acquire(func(g *Grant) {
				e.Schedule(2*moveTime, func() {
					finishTimes = append(finishTimes, e.Now())
					g.Release()
				})
			})
		})
	}
	e.Run()
	want := []float64{15.2, 30.4, 45.6}
	if len(finishTimes) != 3 {
		t.Fatalf("finishTimes = %v", finishTimes)
	}
	for i := range want {
		if diff := finishTimes[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("switch %d finished at %v, want %v", i, finishTimes[i], want[i])
		}
	}
}
