package sim

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins the scheduler-determinism contract structurally: (at, seq)
// is a total order, so ANY correct min-queue yields the identical pop
// sequence regardless of internal shape. The reference implementation below
// is a verbatim copy of the 4-ary heap the engine used before the ladder
// queue (event struct included), and the property test drives both through
// randomized schedules — equal-time bursts, near/far mixes, zero-delay
// storms, mid-stream reuse after reset — checking every pop agrees.

// heapEvent is the pre-ladder event record, copied unchanged.
type heapEvent struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  func()
}

// before reports whether e fires before o under the (at, seq) contract.
func (e *heapEvent) before(o *heapEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// refQueue is the pre-ladder concrete-typed 4-ary min-heap, copied
// unchanged (modulo renames) from the old engine.
type refQueue struct {
	ev []heapEvent
}

func (q *refQueue) len() int { return len(q.ev) }

// push inserts an event, growing only when the backing array is full.
func (q *refQueue) push(e heapEvent) {
	q.ev = append(q.ev, e)
	// Sift up.
	s := q.ev
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s[i].before(&s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the minimum event.
func (q *refQueue) pop() heapEvent {
	s := q.ev
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = heapEvent{} // release the fn so fired callbacks are collectible
	s = s[:n]
	q.ev = s
	// Sift down.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if s[j].before(&s[best]) {
				best = j
			}
		}
		if !s[best].before(&s[i]) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// reset empties the queue, keeping the backing array for reuse.
func (q *refQueue) reset() {
	s := q.ev
	for i := range s {
		s[i] = heapEvent{}
	}
	q.ev = s[:0]
}

// delayProfile generates the next scheduling delay for one workload shape.
type delayProfile struct {
	name string
	next func(r *rand.Rand) float64
}

var delayProfiles = []delayProfile{
	// Tight near-future traffic: the drain-between-requests steady state.
	{"near", func(r *rand.Rand) float64 { return r.Float64() * 10 }},
	// Near/far mix: most events soon, a long tail far out — the shape that
	// builds rungs and a top tier and forces refills across tiers.
	{"skewed", func(r *rand.Rand) float64 {
		if r.Intn(4) == 0 {
			return 1000 + r.Float64()*100000
		}
		return r.Float64()
	}},
	// Zero-delay storms: Immediately-style dispatch, maximal (at, seq)
	// tie-breaking through the cursor fast path.
	{"immediate", func(r *rand.Rand) float64 {
		if r.Intn(3) == 0 {
			return r.Float64() * 5
		}
		return 0
	}},
	// Coarse quantized times: many exactly-equal instants landing in the
	// same bucket, driving bucket overflow into child rungs and, for big
	// enough bursts, the unsplittable-bucket heap fallback.
	{"quantized", func(r *rand.Rand) float64 { return float64(r.Intn(8)) * 2.5 }},
}

// TestLadderMatchesHeapOrder drives the ladder queue and the old 4-ary heap
// through identical randomized push/pop schedules and requires bit-identical
// pop order, including mid-stream reuse after reset.
func TestLadderMatchesHeapOrder(t *testing.T) {
	for _, prof := range delayProfiles {
		t.Run(prof.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(20060815))
			var lq ladderQueue
			var ref refQueue
			var seq uint64
			now := Time(0) // last popped instant; pushes are never in the past
			push := func(at Time) {
				seq++
				lq.push(event{at: at, key: seq << 8, op: funcOp(func() {})})
				ref.push(heapEvent{at: at, seq: seq})
			}
			popBoth := func() {
				want := ref.pop()
				got := lq.pop()
				if got.at != want.at || got.key>>8 != want.seq {
					t.Fatalf("pop mismatch: ladder (at=%v seq=%d), heap (at=%v seq=%d)",
						got.at, got.key>>8, want.at, want.seq)
				}
				now = want.at
			}
			for round := 0; round < 4; round++ {
				for i := 0; i < 3000; i++ {
					switch {
					case ref.len() == 0 || r.Intn(3) != 0:
						// Bursts share one instant to stress seq tie-breaks.
						at := now + prof.next(r)
						for n := r.Intn(4); n >= 0; n-- {
							push(at)
						}
					default:
						popBoth()
					}
					if lq.size != ref.len() {
						t.Fatalf("size mismatch: ladder %d, heap %d", lq.size, ref.len())
					}
				}
				// Drain half, then keep scheduling: pops interleaved with
				// pushes move the bottom cursor mid-structure.
				for ref.len() > 1500 {
					popBoth()
				}
				if round == 1 {
					// Mid-stream reuse: both queues reset with events still
					// pending, as Engine.Reset does between replays.
					lq.reset()
					ref.reset()
					now = 0
				}
			}
			for ref.len() > 0 {
				popBoth()
			}
			if lq.size != 0 {
				t.Fatal("ladder not empty after drain")
			}
		})
	}
}

// TestLadderOverflowPaths forces the structural overflow routes — bottom
// split, rung spawn, and the unsplittable equal-time burst that must fall
// back to the 4-ary heap tier instead of recursing — and checks pop order
// against the reference throughout.
func TestLadderOverflowPaths(t *testing.T) {
	var lq ladderQueue
	var ref refQueue
	var seq uint64
	push := func(at Time) {
		seq++
		lq.push(event{at: at, key: seq << 8, op: funcOp(func() {})})
		ref.push(heapEvent{at: at, seq: seq})
	}
	popBoth := func() {
		want := ref.pop()
		got := lq.pop()
		if got.at != want.at || got.key>>8 != want.seq {
			t.Fatalf("pop mismatch: ladder (at=%v seq=%d), heap (at=%v seq=%d)",
				got.at, got.key>>8, want.at, want.seq)
		}
	}
	// A fresh burst beyond bottomCap triggers splitBottom; draining half of
	// it forces refills from the split-off top, leaving a finite bottomLim.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		push(Time(r.Float64() * 1000))
	}
	for i := 0; i < 150; i++ {
		popBoth()
	}
	// An equal-time burst far beyond spawnThreshold cannot be subdivided by
	// time: no rung width separates its events, so it must reach the heap.
	for i := 0; i < 4*spawnThreshold; i++ {
		push(1e9)
	}
	// Clustered times over a huge range exercise rung spawning at depth.
	for i := 0; i < 2000; i++ {
		base := math.Ldexp(1, 11+r.Intn(29)) // cluster scales, 2^11..2^39
		push(Time(base) + Time(r.Float64()))
	}
	if lq.size != ref.len() {
		t.Fatalf("size mismatch: ladder %d, heap %d", lq.size, ref.len())
	}
	sawHeap, sawRung := false, false
	for ref.len() > 0 {
		popBoth()
		sawHeap = sawHeap || lq.heap.len() > 0
		sawRung = sawRung || len(lq.rungs) > 0
	}
	if lq.size != 0 || lq.heap.len() != 0 {
		t.Fatal("ladder not empty after drain")
	}
	if !sawRung {
		t.Error("schedule never built a rung; overflow coverage lost")
	}
	if !sawHeap {
		t.Error("equal-time burst never reached the heap tier; fallback coverage lost")
	}
}
