// Package sim is a small deterministic discrete-event simulation kernel.
//
// The tape-system simulator (package tapesys) is built on three primitives:
//
//   - Engine: a virtual clock plus a time-ordered event queue. Events
//     scheduled for the same instant fire in scheduling order, so runs are
//     fully deterministic.
//   - Resource: a FIFO-queued exclusive resource (the paper's robot arm —
//     one per library — is the canonical user).
//   - Latch: a countdown latch used to detect when the last of a set of
//     parallel activities (all drives serving one request) completes.
//
// The kernel is callback-based rather than goroutine-based: each simulated
// activity schedules its continuation. This keeps a full multi-library
// simulation single-threaded and reproducible; parallelism is applied one
// level up, across independent simulation runs (see internal/experiments).
//
// The kernel is also allocation-free in steady state (see
// docs/PERFORMANCE.md): the event queue is a concrete-typed heap over a
// reusable backing array, so Schedule/dispatch cost no allocations once the
// array has grown to the run's high-water mark.
package sim

import (
	"fmt"
	"math"

	"paralleltape/internal/trace"
)

// Time is a simulated instant in seconds from the start of the run.
type Time = float64

// event is one pending callback.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  func()
}

// before reports whether e fires before o under the (at, seq) contract.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a concrete-typed 4-ary min-heap ordered by (at, seq) over a
// reusable backing array. A 4-ary layout halves the tree depth of a binary
// heap and keeps sibling comparisons within one or two cache lines, and the
// concrete element type avoids the interface{} boxing container/heap forces
// on every Push/Pop — the old queue allocated twice per event for boxing
// alone. seq is unique, so the order is total and independent of heap shape.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts an event, growing only when the backing array is full.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Sift up.
	s := q.ev
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s[i].before(&s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the popped callback (and everything it captured) becomes
// collectible immediately rather than being pinned by the backing array.
func (q *eventQueue) pop() event {
	s := q.ev
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the fn so fired callbacks are collectible
	s = s[:n]
	q.ev = s
	// Sift down.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if s[j].before(&s[best]) {
				best = j
			}
		}
		if !s[best].before(&s[i]) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// reset empties the queue, zeroing occupied slots so pending callbacks are
// collectible, while keeping the backing array for reuse.
func (q *eventQueue) reset() {
	s := q.ev
	for i := range s {
		s[i] = event{}
	}
	q.ev = s[:0]
}

// Engine is the simulation clock and event queue. The zero value is ready
// to use at time 0.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stepped uint64 // events executed, for diagnostics and runaway guards
	limit   uint64 // optional max events (0 = unlimited)
	rec     trace.Recorder
}

// NewEngine returns an Engine starting at time 0.
func NewEngine() *Engine { return &Engine{} }

// Reset returns the engine to time 0 with an empty queue, retaining the
// queue's backing array (and the recorder and event limit) so a sequence of
// runs — e.g. the per-seed loop of one experiment point — reuses the
// high-water-mark allocation instead of regrowing a fresh heap each time.
func (e *Engine) Reset() {
	e.queue.reset()
	e.now = 0
	e.seq = 0
	e.stepped = 0
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// SetEventLimit installs a safety cap on the number of events Run will
// execute; Run panics when it is exceeded. Zero disables the cap.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// SetRecorder attaches a trace recorder. Components built on the engine
// (Resource, Latch) emit contention events through it; nil (the default)
// disables tracing with zero hot-path cost — every emit site nil-checks
// before constructing an event. The Engine itself emits no per-step
// events: with tens of thousands of callbacks per request, a per-step
// record would dwarf the semantic trace (see docs/OBSERVABILITY.md).
func (e *Engine) SetRecorder(r trace.Recorder) { e.rec = r }

// Recorder returns the attached trace recorder, nil when tracing is off.
func (e *Engine) Recorder() trace.Recorder { return e.rec }

// Schedule runs fn after delay simulated seconds. A negative or NaN delay
// panics: in this simulator a negative latency is always a modelling bug
// and silently clamping it would corrupt causality.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, fn: fn})
}

// Immediately runs fn at the current instant, after all callbacks already
// scheduled for this instant.
func (e *Engine) Immediately(fn func()) { e.Schedule(0, fn) }

// Run executes events in time order until the queue is empty and returns
// the final clock value.
func (e *Engine) Run() Time {
	for e.queue.len() > 0 {
		ev := e.queue.pop()
		e.now = ev.at
		e.stepped++
		if e.limit > 0 && e.stepped > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.fn()
	}
	return e.now
}

// RunUntil executes events whose time is <= deadline, leaves later events
// queued, and advances the clock to min(deadline, last event time). It
// returns true if the queue was drained.
func (e *Engine) RunUntil(deadline Time) bool {
	for e.queue.len() > 0 {
		if e.queue.ev[0].at > deadline {
			e.now = deadline
			return false
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.stepped++
		if e.limit > 0 && e.stepped > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.len() }
